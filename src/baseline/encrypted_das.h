// Encryption-based database-as-a-service baseline (Section II.A).
//
// This is the model the paper argues against: the NetDB2 / Hacigumus et
// al. design where tuples are encrypted client-side and the server only
// sees ciphertext plus coarse filtering metadata. Three server-side
// filtering strategies are provided:
//
//   * kBucketEquality  — a keyed hash of the value modulo B buckets; exact
//     match retrieves one bucket (a superset with false positives).
//   * kBucketRange     — the domain is cut into B contiguous buckets
//     (Hore et al. [2]); a range retrieves every overlapping bucket.
//   * kOpe             — order-preserving encryption of the value
//     (Agrawal et al. [3]); ranges filter exactly, at the security cost
//     the paper cites from [5].
//
// The server cannot aggregate: SUM/AVG/MIN/MAX are computed client-side
// after decrypting the (super)set — this asymmetry versus provider-side
// share aggregation is exactly experiment E4's subject. The same class
// doubles as the "trivial transfer" baseline via FetchAll().

#ifndef SSDB_BASELINE_ENCRYPTED_DAS_H_
#define SSDB_BASELINE_ENCRYPTED_DAS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/query.h"
#include "codec/schema.h"
#include "crypto/aes.h"
#include "crypto/ope.h"
#include "crypto/prf.h"
#include "net/network.h"

namespace ssdb {

enum class EncIndexKind : uint8_t {
  kBucketEquality = 0,
  kBucketRange = 1,
  kOpe = 2,
};

struct EncryptedDasOptions {
  /// Buckets per indexed column (the privacy/performance dial of §II.A).
  size_t buckets = 64;
  /// Range strategy: bucketization or order-preserving encryption.
  EncIndexKind range_index = EncIndexKind::kBucketRange;
  std::string master_key = "ssdb-enc-baseline-key";
  NetworkCostModel network;
};

/// Client-side work counters for the cost comparison.
struct EncClientStats {
  uint64_t tuples_encrypted = 0;
  uint64_t tuples_decrypted = 0;     ///< Includes false positives.
  uint64_t false_positives = 0;      ///< Decrypted then discarded.
};

/// \brief Encrypted-DAS client + single encrypted server behind a
/// simulated network.
class EncryptedDas {
 public:
  static Result<std::unique_ptr<EncryptedDas>> Create(
      TableSchema schema, EncryptedDasOptions options);

  Status Insert(const std::vector<std::vector<Value>>& rows);

  /// Exact-match via the equality bucket index; decrypts and post-filters
  /// client-side.
  Result<QueryResult> ExecuteExact(const std::string& column, const Value& v);

  /// Range query via the configured range strategy.
  Result<QueryResult> ExecuteRange(const std::string& column, const Value& lo,
                                   const Value& hi);

  /// SUM over a range predicate: ships the superset, decrypts, filters,
  /// sums at the client (no server-side aggregation over ciphertext).
  Result<int64_t> Sum(const std::string& sum_column,
                      const std::string& where_column, const Value& lo,
                      const Value& hi);

  /// The trivial protocol: download every ciphertext and filter locally.
  Result<QueryResult> FetchAllAndFilter(const std::string& column,
                                        const Value& lo, const Value& hi);

  const EncClientStats& stats() const { return stats_; }
  ChannelStats network_stats() const { return network_.TotalStats(); }
  uint64_t simulated_time_us() { return network_.clock().now_us(); }
  void ResetStats() {
    stats_ = EncClientStats();
    network_.ResetStats();
  }
  size_t num_rows() const { return next_row_id_ - 1; }

 private:
  class Server;

  EncryptedDas(TableSchema schema, EncryptedDasOptions options);

  Result<std::vector<uint8_t>> EncryptRow(uint64_t row_id,
                                          const std::vector<Value>& row) const;
  Result<std::vector<Value>> DecryptRow(uint64_t row_id,
                                        Slice blob) const;
  uint64_t EqBucket(const ColumnSpec& col, int64_t code) const;
  Result<uint64_t> RangeBucket(const ColumnSpec& col, int64_t code) const;
  Result<OrderPreservingEncryption*> GetOpe(size_t col_idx);

  /// Ships the given request, decrypts the returned blobs, post-filters
  /// with [lo_code, hi_code] on `col_idx`.
  Result<QueryResult> RoundTrip(const Buffer& request, size_t col_idx,
                                int64_t lo_code, int64_t hi_code);

  TableSchema schema_;
  EncryptedDasOptions options_;
  Prf index_prf_;
  Aes128::Key data_key_;
  Network network_;
  size_t server_index_ = 0;
  uint64_t next_row_id_ = 1;
  EncClientStats stats_;
  /// Per-column OPE instances (plain_bits depends on each column's domain).
  std::vector<std::unique_ptr<OrderPreservingEncryption>> ope_;
};

}  // namespace ssdb

#endif  // SSDB_BASELINE_ENCRYPTED_DAS_H_
