#include "baseline/encrypted_das.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "crypto/hmac.h"
#include "storage/btree.h"

namespace ssdb {

namespace {
// Private wire protocol of the encrypted baseline.
enum class EncMsg : uint8_t {
  kInsert = 1,
  kQueryEq = 2,
  kQueryRange = 3,
  kFetchAll = 4,
};
}  // namespace

/// The encrypted server: ciphertext blobs plus bucket/OPE index columns.
class EncryptedDas::Server : public ProviderEndpoint {
 public:
  explicit Server(size_t num_columns) : num_columns_(num_columns) {
    eq_index_.resize(num_columns);
    range_index_.resize(num_columns);
  }

  std::string name() const override { return "enc-das-server"; }

  Result<Buffer> Handle(Slice request) override {
    Decoder dec(request);
    uint8_t type = 0;
    SSDB_RETURN_IF_ERROR(dec.GetU8(&type));
    Buffer out;
    switch (static_cast<EncMsg>(type)) {
      case EncMsg::kInsert: {
        uint64_t n = 0;
        SSDB_RETURN_IF_ERROR(dec.GetVarint(&n));
        for (uint64_t i = 0; i < n; ++i) {
          Row row;
          SSDB_RETURN_IF_ERROR(dec.GetU64(&row.row_id));
          row.index.resize(num_columns_);
          for (auto& [eq, range] : row.index) {
            SSDB_RETURN_IF_ERROR(dec.GetU64(&eq));
            SSDB_RETURN_IF_ERROR(dec.GetU128(&range));
          }
          Slice blob;
          SSDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&blob));
          row.blob.assign(blob.data(), blob.data() + blob.size());
          const size_t pos = rows_.size();
          for (size_t c = 0; c < num_columns_; ++c) {
            eq_index_[c].emplace(row.index[c].first, pos);
            range_index_[c].Insert(row.index[c].second, pos);
          }
          rows_.push_back(std::move(row));
        }
        out.PutU8(0);
        return out;
      }
      case EncMsg::kQueryEq: {
        uint32_t col = 0;
        uint64_t bucket = 0;
        SSDB_RETURN_IF_ERROR(dec.GetU32(&col));
        SSDB_RETURN_IF_ERROR(dec.GetU64(&bucket));
        if (col >= num_columns_) {
          return Status::InvalidArgument("enc server: bad column");
        }
        std::vector<size_t> hits;
        auto range = eq_index_[col].equal_range(bucket);
        for (auto it = range.first; it != range.second; ++it) {
          hits.push_back(it->second);
        }
        std::sort(hits.begin(), hits.end());
        WriteRows(hits, &out);
        return out;
      }
      case EncMsg::kQueryRange: {
        uint32_t col = 0;
        u128 lo = 0, hi = 0;
        SSDB_RETURN_IF_ERROR(dec.GetU32(&col));
        SSDB_RETURN_IF_ERROR(dec.GetU128(&lo));
        SSDB_RETURN_IF_ERROR(dec.GetU128(&hi));
        if (col >= num_columns_) {
          return Status::InvalidArgument("enc server: bad column");
        }
        std::vector<uint64_t> positions = range_index_[col].Range(lo, hi);
        std::vector<size_t> hits(positions.begin(), positions.end());
        std::sort(hits.begin(), hits.end());
        WriteRows(hits, &out);
        return out;
      }
      case EncMsg::kFetchAll: {
        std::vector<size_t> all(rows_.size());
        for (size_t i = 0; i < all.size(); ++i) all[i] = i;
        WriteRows(all, &out);
        return out;
      }
    }
    return Status::InvalidArgument("enc server: unknown message");
  }

 private:
  struct Row {
    uint64_t row_id = 0;
    std::vector<std::pair<uint64_t, u128>> index;  // (eq bucket, range key)
    std::vector<uint8_t> blob;
  };

  void WriteRows(const std::vector<size_t>& positions, Buffer* out) {
    out->PutU8(0);
    out->PutVarint(positions.size());
    for (size_t pos : positions) {
      out->PutU64(rows_[pos].row_id);
      out->PutLengthPrefixed(Slice(rows_[pos].blob));
    }
  }

  size_t num_columns_;
  std::vector<Row> rows_;
  std::vector<std::unordered_multimap<uint64_t, size_t>> eq_index_;
  std::vector<BPlusTree> range_index_;
};

EncryptedDas::EncryptedDas(TableSchema schema, EncryptedDasOptions options)
    : schema_(std::move(schema)),
      options_(std::move(options)),
      index_prf_(Prf::Derive(Slice(options_.master_key), Slice("bucket"))),
      network_(options_.network) {
  const Sha256::Digest kd =
      DeriveSubkey(Slice(options_.master_key), Slice("data"));
  std::copy(kd.begin(), kd.begin() + Aes128::kKeySize, data_key_.begin());
}

Result<std::unique_ptr<EncryptedDas>> EncryptedDas::Create(
    TableSchema schema, EncryptedDasOptions options) {
  SSDB_RETURN_IF_ERROR(schema.Validate());
  if (options.buckets == 0) {
    return Status::InvalidArgument("enc das: buckets must be positive");
  }
  auto das = std::unique_ptr<EncryptedDas>(
      new EncryptedDas(std::move(schema), std::move(options)));
  das->server_index_ = das->network_.AddProvider(
      std::make_shared<Server>(das->schema_.columns.size()));
  return das;
}

Result<std::vector<uint8_t>> EncryptedDas::EncryptRow(
    uint64_t row_id, const std::vector<Value>& row) const {
  Buffer plain;
  for (const Value& v : row) v.EncodeTo(&plain);
  AesCtr ctr(data_key_, row_id);
  return ctr.TransformCopy(plain.AsSlice());
}

Result<std::vector<Value>> EncryptedDas::DecryptRow(uint64_t row_id,
                                                    Slice blob) const {
  AesCtr ctr(data_key_, row_id);
  const std::vector<uint8_t> plain = ctr.TransformCopy(blob);
  Decoder dec{Slice(plain)};
  std::vector<Value> row(schema_.columns.size());
  for (auto& v : row) {
    SSDB_RETURN_IF_ERROR(Value::DecodeFrom(&dec, &v));
  }
  return row;
}

uint64_t EncryptedDas::EqBucket(const ColumnSpec& col, int64_t code) const {
  return index_prf_.Eval64(static_cast<uint64_t>(code), col.DomainTag()) %
         options_.buckets;
}

Result<uint64_t> EncryptedDas::RangeBucket(const ColumnSpec& col,
                                           int64_t code) const {
  SSDB_ASSIGN_OR_RETURN(OpDomain dom, col.CodeDomain());
  const u128 w = static_cast<u128>(static_cast<uint64_t>(code) -
                                   static_cast<uint64_t>(dom.lo));
  // Contiguous equal-width buckets over the domain.
  const u128 width = (dom.size() + options_.buckets - 1) / options_.buckets;
  return static_cast<uint64_t>(w / width);
}

Result<OrderPreservingEncryption*> EncryptedDas::GetOpe(size_t col_idx) {
  if (ope_.empty()) ope_.resize(schema_.columns.size());
  if (ope_[col_idx] == nullptr) {
    SSDB_ASSIGN_OR_RETURN(OpDomain dom, schema_.columns[col_idx].CodeDomain());
    int bits = 1;
    while ((dom.size() - 1) >> bits != 0) ++bits;
    ope_[col_idx] = std::make_unique<OrderPreservingEncryption>(
        Prf::Derive(Slice(options_.master_key),
                    Slice("ope:" + schema_.columns[col_idx].name)),
        bits);
  }
  return ope_[col_idx].get();
}

Status EncryptedDas::Insert(const std::vector<std::vector<Value>>& rows) {
  Buffer req;
  req.PutU8(static_cast<uint8_t>(EncMsg::kInsert));
  req.PutVarint(rows.size());
  for (const auto& row : rows) {
    SSDB_RETURN_IF_ERROR(schema_.ValidateRow(row));
    const uint64_t row_id = next_row_id_++;
    req.PutU64(row_id);
    for (size_t c = 0; c < schema_.columns.size(); ++c) {
      const ColumnSpec& col = schema_.columns[c];
      SSDB_ASSIGN_OR_RETURN(int64_t code, col.EncodeToCode(row[c]));
      req.PutU64(EqBucket(col, code));
      u128 range_key = 0;
      if (options_.range_index == EncIndexKind::kOpe) {
        SSDB_ASSIGN_OR_RETURN(OpDomain dom, col.CodeDomain());
        SSDB_ASSIGN_OR_RETURN(OrderPreservingEncryption * ope, GetOpe(c));
        const uint64_t w = static_cast<uint64_t>(code) -
                           static_cast<uint64_t>(dom.lo);
        SSDB_ASSIGN_OR_RETURN(range_key, ope->Encrypt(w));
      } else {
        SSDB_ASSIGN_OR_RETURN(uint64_t bucket, RangeBucket(col, code));
        range_key = bucket;
      }
      req.PutU128(range_key);
    }
    SSDB_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, EncryptRow(row_id, row));
    ++stats_.tuples_encrypted;
    req.PutLengthPrefixed(Slice(blob));
  }
  SSDB_ASSIGN_OR_RETURN(std::vector<uint8_t> resp,
                        network_.Call(server_index_, req.AsSlice()));
  Decoder dec{Slice(resp)};
  uint8_t code = 0;
  SSDB_RETURN_IF_ERROR(dec.GetU8(&code));
  if (code != 0) return Status::Internal("enc das: insert failed");
  return Status::OK();
}

Result<QueryResult> EncryptedDas::RoundTrip(const Buffer& request,
                                            size_t col_idx, int64_t lo_code,
                                            int64_t hi_code) {
  SSDB_ASSIGN_OR_RETURN(std::vector<uint8_t> resp,
                        network_.Call(server_index_, request.AsSlice()));
  Decoder dec{Slice(resp)};
  uint8_t code = 0;
  SSDB_RETURN_IF_ERROR(dec.GetU8(&code));
  if (code != 0) return Status::Internal("enc das: query failed");
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec.GetVarint(&n));
  QueryResult out;
  const ColumnSpec& col = schema_.columns[col_idx];
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t row_id = 0;
    Slice blob;
    SSDB_RETURN_IF_ERROR(dec.GetU64(&row_id));
    SSDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&blob));
    SSDB_ASSIGN_OR_RETURN(std::vector<Value> row, DecryptRow(row_id, blob));
    ++stats_.tuples_decrypted;
    SSDB_ASSIGN_OR_RETURN(int64_t c, col.EncodeToCode(row[col_idx]));
    if (c < lo_code || c > hi_code) {
      ++stats_.false_positives;
      continue;
    }
    out.row_ids.push_back(row_id);
    out.rows.push_back(std::move(row));
  }
  out.count = out.rows.size();
  return out;
}

Result<QueryResult> EncryptedDas::ExecuteExact(const std::string& column,
                                               const Value& v) {
  SSDB_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(column));
  const ColumnSpec& col = schema_.columns[idx];
  SSDB_ASSIGN_OR_RETURN(int64_t code, col.EncodeToCode(v));
  Buffer req;
  req.PutU8(static_cast<uint8_t>(EncMsg::kQueryEq));
  req.PutU32(static_cast<uint32_t>(idx));
  req.PutU64(EqBucket(col, code));
  return RoundTrip(req, idx, code, code);
}

Result<QueryResult> EncryptedDas::ExecuteRange(const std::string& column,
                                               const Value& lo,
                                               const Value& hi) {
  SSDB_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(column));
  const ColumnSpec& col = schema_.columns[idx];
  SSDB_ASSIGN_OR_RETURN(int64_t lo_code, col.EncodeToCode(lo));
  SSDB_ASSIGN_OR_RETURN(int64_t hi_code, col.EncodeToCode(hi));
  if (lo_code > hi_code) return QueryResult();

  Buffer req;
  req.PutU8(static_cast<uint8_t>(EncMsg::kQueryRange));
  req.PutU32(static_cast<uint32_t>(idx));
  if (options_.range_index == EncIndexKind::kOpe) {
    SSDB_ASSIGN_OR_RETURN(OrderPreservingEncryption * ope, GetOpe(idx));
    SSDB_ASSIGN_OR_RETURN(OpDomain dom, col.CodeDomain());
    const uint64_t wlo = static_cast<uint64_t>(lo_code) -
                         static_cast<uint64_t>(dom.lo);
    const uint64_t whi = static_cast<uint64_t>(hi_code) -
                         static_cast<uint64_t>(dom.lo);
    SSDB_ASSIGN_OR_RETURN(u128 clo, ope->Encrypt(wlo));
    SSDB_ASSIGN_OR_RETURN(u128 chi, ope->Encrypt(whi));
    req.PutU128(clo);
    req.PutU128(chi);
  } else {
    SSDB_ASSIGN_OR_RETURN(uint64_t blo, RangeBucket(col, lo_code));
    SSDB_ASSIGN_OR_RETURN(uint64_t bhi, RangeBucket(col, hi_code));
    req.PutU128(blo);
    req.PutU128(bhi);
  }
  return RoundTrip(req, idx, lo_code, hi_code);
}

Result<int64_t> EncryptedDas::Sum(const std::string& sum_column,
                                  const std::string& where_column,
                                  const Value& lo, const Value& hi) {
  SSDB_ASSIGN_OR_RETURN(size_t sum_idx, schema_.ColumnIndex(sum_column));
  SSDB_ASSIGN_OR_RETURN(QueryResult matched,
                        ExecuteRange(where_column, lo, hi));
  int64_t sum = 0;
  for (const auto& row : matched.rows) {
    if (!row[sum_idx].is_int()) {
      return Status::InvalidArgument("enc das: SUM over non-integer column");
    }
    sum += row[sum_idx].AsInt();
  }
  return sum;
}

Result<QueryResult> EncryptedDas::FetchAllAndFilter(const std::string& column,
                                                    const Value& lo,
                                                    const Value& hi) {
  SSDB_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(column));
  const ColumnSpec& col = schema_.columns[idx];
  SSDB_ASSIGN_OR_RETURN(int64_t lo_code, col.EncodeToCode(lo));
  SSDB_ASSIGN_OR_RETURN(int64_t hi_code, col.EncodeToCode(hi));
  Buffer req;
  req.PutU8(static_cast<uint8_t>(EncMsg::kFetchAll));
  return RoundTrip(req, idx, lo_code, hi_code);
}

}  // namespace ssdb
