// Structured failure injection over a Network.
//
// Replaces the raw InjectFailure/HealAll surface with a small controller
// the fault-tolerance experiments (E8) read naturally:
//
//   db.faults().Down(2);                 // provider 2 stops answering
//   db.faults().Drop(0, 0.3);            // link 0 drops 30% of calls
//   db.faults().Heal(2);
//   db.faults().HealAll();
//
//   {
//     ScopedFault outage(db.faults(), 1, FailureMode::kDown);
//     ...                                // provider 1 down in this scope
//   }                                    // healed on exit
//
// All methods are thread-safe (they delegate to Network::SetFailure, which
// takes the per-link lock), so faults can be injected while a fan-out is
// in flight.

#ifndef SSDB_NET_FAULT_CONTROLLER_H_
#define SSDB_NET_FAULT_CONTROLLER_H_

#include <cstddef>

#include "net/network.h"

namespace ssdb {

/// \brief Thin, typed facade over per-link failure injection.
class FaultController {
 public:
  explicit FaultController(Network* network) : network_(network) {}

  /// Provider `i` answers nothing until healed.
  void Down(size_t i) { network_->SetFailure(i, FailureMode::kDown); }

  /// Provider `i`'s responses arrive with one byte flipped.
  void Corrupt(size_t i) {
    network_->SetFailure(i, FailureMode::kCorruptResponse);
  }

  /// Provider `i` drops each call with probability `p`.
  void Drop(size_t i, double p) {
    network_->SetFailure(i, FailureMode::kDropSome, p);
  }

  /// Arbitrary mode (escape hatch for tests).
  void Set(size_t i, FailureMode mode, double drop_probability = 0.0) {
    network_->SetFailure(i, mode, drop_probability);
  }

  /// Restores provider `i` to healthy.
  void Heal(size_t i) { network_->SetFailure(i, FailureMode::kHealthy); }

  /// Restores every provider to healthy.
  void HealAll() {
    for (size_t i = 0; i < network_->num_providers(); ++i) Heal(i);
  }

  /// Current mode of provider `i`.
  FailureMode mode(size_t i) const { return network_->failure_mode(i); }

 private:
  Network* network_;
};

/// \brief RAII fault: applies a failure on construction, heals on exit.
class ScopedFault {
 public:
  ScopedFault(FaultController& faults, size_t provider, FailureMode mode,
              double drop_probability = 0.0)
      : faults_(faults), provider_(provider) {
    faults_.Set(provider_, mode, drop_probability);
  }
  ~ScopedFault() { faults_.Heal(provider_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultController& faults_;
  size_t provider_;
};

}  // namespace ssdb

#endif  // SSDB_NET_FAULT_CONTROLLER_H_
