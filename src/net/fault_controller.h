// Structured failure injection over a Network.
//
// Replaces the raw InjectFailure/HealAll surface with a small controller
// the fault-tolerance experiments (E8) read naturally:
//
//   db.faults().Down(2);                 // provider 2 stops answering
//   db.faults().Drop(0, 0.3);            // link 0 drops 30% of calls
//   db.faults().Heal(2);
//   db.faults().HealAll();
//
//   {
//     ScopedFault outage(db.faults(), 1, FailureMode::kDown);
//     ...                                // provider 1 down in this scope
//   }                                    // healed on exit
//
// All methods are thread-safe (they delegate to Network::SetFailure, which
// takes the per-link lock), so faults can be injected while a fan-out is
// in flight.

#ifndef SSDB_NET_FAULT_CONTROLLER_H_
#define SSDB_NET_FAULT_CONTROLLER_H_

#include <cstddef>
#include <functional>

#include "common/status.h"
#include "net/network.h"

namespace ssdb {

class ProviderScoreboard;

/// \brief Thin, typed facade over per-link failure injection.
class FaultController {
 public:
  explicit FaultController(Network* network) : network_(network) {}

  /// Provider `i` answers nothing until healed.
  void Down(size_t i) { network_->SetFailure(i, FailureMode::kDown); }

  /// Provider `i`'s responses arrive with one byte flipped.
  void Corrupt(size_t i) {
    network_->SetFailure(i, FailureMode::kCorruptResponse);
  }

  /// Provider `i` drops each call with probability `p`.
  void Drop(size_t i, double p) {
    network_->SetFailure(i, FailureMode::kDropSome, p);
  }

  /// Provider `i`'s round trips take `factor` times the modelled time.
  void Slow(size_t i, double factor) {
    network_->SetFailure(i, FailureMode::kSlow, factor);
  }

  /// Provider `i` flaps: bursty outages with phase-flip probability `p`.
  void Flaky(size_t i, double p) {
    network_->SetFailure(i, FailureMode::kFlaky, p);
  }

  /// Arbitrary mode (escape hatch for tests). `param` is mode-specific
  /// (see Network::SetFailure).
  void Set(size_t i, FailureMode mode, double param = 0.0) {
    network_->SetFailure(i, mode, param);
  }

  /// Restores provider `i` to healthy. A killed provider is restarted
  /// (Restart), not merely healed — healing only the link would bring a
  /// provider back with its RAM state still lost.
  void Heal(size_t i) {
    if (mode(i) == FailureMode::kKill) {
      (void)Restart(i);
      return;
    }
    network_->SetFailure(i, FailureMode::kHealthy);
  }

  /// Kills provider `i`: the link goes to FailureMode::kKill (every call
  /// Unavailable) and the attached kill hook crashes the provider's
  /// storage engine, dropping all of its RAM state. What Restart can
  /// recover is exactly what the engine made durable (MemoryEngine:
  /// nothing; DurableEngine: snapshot + WAL).
  void Kill(size_t i);

  /// Restarts a killed provider: the restart hook reopens its storage
  /// engine (snapshot load + WAL redo replay), the client ships the
  /// writes the provider missed while dead (batched catch-up envelopes),
  /// the link heals, and the scoreboard forgets the provider's failure
  /// history so quorum ranking treats it as recovered. No-op on a
  /// provider that is not killed.
  Status Restart(size_t i);

  /// Restores every provider to healthy; killed providers are restarted
  /// (storage recovery + catch-up), and — when a scoreboard is attached —
  /// the resilience layer's health history is forgotten, so healed faults
  /// do not echo as open breakers or stale latency estimates.
  void HealAll();

  /// Registers the client's health scoreboard for HealAll resets.
  void AttachScoreboard(ProviderScoreboard* board) { scoreboard_ = board; }

  /// Registers the kill/restart lifecycle hooks (wired by
  /// OutsourcedDatabase::Create): `on_kill` crashes provider `i`'s
  /// storage engine and opens the client-side outage (missed writes start
  /// queueing); `on_restart` recovers the provider from durable storage
  /// and replays the queued writes to it. Without hooks, Kill degrades to
  /// Down and Restart to Heal.
  void AttachLifecycle(std::function<void(size_t)> on_kill,
                       std::function<Status(size_t)> on_restart) {
    on_kill_ = std::move(on_kill);
    on_restart_ = std::move(on_restart);
  }

  /// Current mode of provider `i`.
  FailureMode mode(size_t i) const { return network_->failure_mode(i); }

  /// Mode-specific parameter of provider `i`.
  double param(size_t i) const { return network_->failure_param(i); }

 private:
  Network* network_;
  ProviderScoreboard* scoreboard_ = nullptr;
  std::function<void(size_t)> on_kill_;
  std::function<Status(size_t)> on_restart_;
};

/// \brief RAII fault: applies a failure on construction and restores the
/// provider's previous failure state on exit — including exception
/// unwind, so a throwing test body never leaks an injected fault into the
/// next test. Not for FailureMode::kKill: kill/restart is a lifecycle
/// (engine crash + recovery + catch-up), not a link state — use
/// FaultController::Kill / Restart explicitly.
class ScopedFault {
 public:
  ScopedFault(FaultController& faults, size_t provider, FailureMode mode,
              double param = 0.0)
      : faults_(faults),
        provider_(provider),
        prev_mode_(faults.mode(provider)),
        prev_param_(faults.param(provider)) {
    faults_.Set(provider_, mode, param);
  }
  ~ScopedFault() { faults_.Set(provider_, prev_mode_, prev_param_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultController& faults_;
  size_t provider_;
  FailureMode prev_mode_;
  double prev_param_;
};

}  // namespace ssdb

#endif  // SSDB_NET_FAULT_CONTROLLER_H_
