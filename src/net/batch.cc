#include "net/batch.h"

namespace ssdb {

void EncodeBatchRequest(const std::vector<Slice>& ops, Buffer* out) {
  size_t total = 1 + VarintLength(ops.size());
  for (const Slice& op : ops) total += VarintLength(op.size()) + op.size();
  out->reserve(out->size() + total);
  out->PutU8(kBatchMsgTag);
  out->PutVarint(ops.size());
  for (const Slice& op : ops) out->PutLengthPrefixed(op);
}

void EncodeBatchRequest(const std::vector<Buffer>& ops, Buffer* out) {
  std::vector<Slice> slices;
  slices.reserve(ops.size());
  for (const Buffer& op : ops) slices.push_back(op.AsSlice());
  EncodeBatchRequest(slices, out);
}

Status DecodeBatchRequestPayload(Decoder* dec, std::vector<Slice>* ops) {
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&count));
  if (count == 0) {
    return Status::InvalidArgument("batch: empty envelope");
  }
  if (count > kMaxBatchOps) {
    return Status::Corruption("batch: op count exceeds decode bound");
  }
  ops->clear();
  ops->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Slice op;
    SSDB_RETURN_IF_ERROR(dec->GetLengthPrefixed(&op));
    ops->push_back(op);
  }
  return Status::OK();
}

void EncodeBatchResponsePayload(const std::vector<Buffer>& responses,
                                Buffer* out) {
  size_t total = VarintLength(responses.size());
  for (const Buffer& r : responses) total += VarintLength(r.size()) + r.size();
  out->reserve(out->size() + total);
  out->PutVarint(responses.size());
  for (const Buffer& r : responses) out->PutLengthPrefixed(r.AsSlice());
}

Status DecodeBatchResponsePayload(Decoder* dec,
                                  std::vector<Slice>* responses) {
  uint64_t count = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&count));
  if (count > kMaxBatchOps) {
    return Status::Corruption("batch: response count exceeds decode bound");
  }
  responses->clear();
  responses->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Slice r;
    SSDB_RETURN_IF_ERROR(dec->GetLengthPrefixed(&r));
    responses->push_back(r);
  }
  return Status::OK();
}

void ChargeBatchEnvelope(MetricsRegistry* registry, uint64_t ops) {
  if (registry == nullptr) return;
  registry->GetCounter("ssdb_net_batch_envelopes_total")->Inc();
  registry->GetCounter("ssdb_net_batch_ops_total")->Inc(ops);
  registry->GetHistogram("ssdb_net_batch_ops_per_envelope")->Observe(ops);
}

}  // namespace ssdb
