// Batched request/response envelope (request coalescing).
//
// The chatty client paths — lazy-log flushes, DisjunctUnion branches,
// batched point queries, join share fetches — pay one modelled round trip
// per operation per provider when sent as individual messages. The
// envelope packs a vector of complete protocol messages into ONE wire
// message:
//
//   request  := tag(16) varint(count) { varint(len) op-message }*
//   response := status(0) varint(count) { varint(len) op-response }*
//
// so the network charges a single round trip (2 x latency + transfer of
// the summed payload) per batch while every byte still flows through the
// ordinary Network accounting — ChannelStats, QueryTrace legs, the
// registry's ssdb_net_* series and the virtual clock all reconcile
// exactly, just over fewer, larger calls.
//
// The envelope is pure framing: it knows nothing about the op payloads.
// Sub-messages are complete requests (type byte first), sub-responses are
// complete responses (status byte first), so per-op errors travel inside
// an OK outer envelope and the resilience layer (deadlines, retries,
// hedging, breaker) naturally treats a batch as one call.

#ifndef SSDB_NET_BATCH_H_
#define SSDB_NET_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace ssdb {

/// Message-type byte of a batch envelope. Mirrored as MsgType::kBatch in
/// provider/protocol.h (static_asserted there) but defined here so the
/// framing layer has no provider dependency.
inline constexpr uint8_t kBatchMsgTag = 16;

/// Decode-time bound on the op count of one envelope (far above any
/// client-side batch_max_ops; guards against a corrupt count allocating
/// unbounded memory).
inline constexpr uint64_t kMaxBatchOps = 1u << 20;

/// Encodes a batch request: tag byte, op count, length-prefixed complete
/// request messages.
void EncodeBatchRequest(const std::vector<Slice>& ops, Buffer* out);
void EncodeBatchRequest(const std::vector<Buffer>& ops, Buffer* out);

/// Decodes the payload of a batch request (the tag byte must already be
/// consumed). The returned slices view the decoder's underlying bytes.
Status DecodeBatchRequestPayload(Decoder* dec, std::vector<Slice>* ops);

/// Appends the batch response payload (op count + length-prefixed complete
/// responses) after the caller wrote the OK status header.
void EncodeBatchResponsePayload(const std::vector<Buffer>& responses,
                                Buffer* out);

/// Decodes the payload of a batch response (the status header must already
/// be consumed, e.g. via DecodeResponseHeader).
Status DecodeBatchResponsePayload(Decoder* dec,
                                  std::vector<Slice>* responses);

/// Charges one sent envelope carrying `ops` sub-operations to the
/// `ssdb_net_batch_*` series (no-op when `registry` is null). Called at
/// the encode site on the client thread, so exports stay byte-identical
/// across fanout_threads settings.
void ChargeBatchEnvelope(MetricsRegistry* registry, uint64_t ops);

}  // namespace ssdb

#endif  // SSDB_NET_BATCH_H_
