#include "net/resilience.h"

#include <algorithm>

#include "common/rng.h"

namespace ssdb {

namespace {
constexpr uint64_t kProviderMix = 0x9E3779B97F4A7C15ULL;
constexpr uint64_t kRetryMix = 0xC2B2AE3D27D4EB4FULL;

bool IsTransient(const Status& s) {
  return s.IsUnavailable() || s.IsDeadlineExceeded();
}
}  // namespace

uint64_t RetryPolicy::BackoffUs(size_t retry_number, size_t provider) const {
  if (retry_number == 0) return 0;
  double base = static_cast<double>(initial_backoff_us);
  for (size_t i = 1; i < retry_number; ++i) base *= multiplier;
  base = std::min(base, static_cast<double>(max_backoff_us));
  if (jitter > 0.0) {
    // Seeded per (provider, retry number): the jitter stream never depends
    // on how legs interleave across threads.
    Rng rng(jitter_seed ^ ((provider + 1) * kProviderMix) ^
            (retry_number * kRetryMix));
    base *= 1.0 - jitter * rng.NextDouble();
  }
  return static_cast<uint64_t>(base);
}

ProviderScoreboard::Entry& ProviderScoreboard::SlotLocked(size_t provider) {
  if (provider >= entries_.size()) entries_.resize(provider + 1);
  return entries_[provider];
}

void ProviderScoreboard::AttachTelemetry(MetricsRegistry* registry,
                                         Tracer* tracer) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = registry;
  tracer_ = tracer;
}

void ProviderScoreboard::PublishTransition(size_t provider, BreakerState state,
                                           uint64_t now_us) {
  const char* to = state == BreakerState::kOpen
                       ? "open"
                       : state == BreakerState::kHalfOpen ? "half_open"
                                                          : "closed";
  if (registry_ != nullptr) {
    registry_
        ->GetCounter("ssdb_resilience_breaker_transitions_total",
                     {{"provider", std::to_string(provider)}, {"to", to}})
        ->Inc();
  }
  if (tracer_ != nullptr) {
    tracer_->Event("breaker", "resilience", now_us, tracer_->CurrentSpan(),
                   {{"provider", std::to_string(provider)}, {"to", to}});
  }
}

void ProviderScoreboard::RecordOutcome(size_t provider, bool ok,
                                       uint64_t round_trip_us,
                                       const BreakerPolicy& policy,
                                       uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = SlotLocked(provider);
  if (ok) {
    e.successes++;
    e.consecutive_failures = 0;
    e.ewma_us = e.samples == 0
                    ? static_cast<double>(round_trip_us)
                    : kEwmaAlpha * static_cast<double>(round_trip_us) +
                          (1.0 - kEwmaAlpha) * e.ewma_us;
    e.samples++;
    if (e.state != BreakerState::kClosed) {
      e.state = BreakerState::kClosed;
      e.probes_left = 0;
      PublishTransition(provider, BreakerState::kClosed, now_us);
    }
    return;
  }
  e.failures++;
  e.consecutive_failures++;
  if (!policy.enabled) return;
  if (e.state == BreakerState::kHalfOpen ||
      (e.state == BreakerState::kClosed &&
       e.consecutive_failures >= policy.failures_to_open)) {
    e.state = BreakerState::kOpen;
    e.open_until_us = now_us + policy.open_cooldown_us;
    e.probes_left = 0;
    PublishTransition(provider, BreakerState::kOpen, now_us);
  }
}

bool ProviderScoreboard::AllowRequest(size_t provider,
                                      const BreakerPolicy& policy,
                                      uint64_t now_us) {
  if (!policy.enabled) return true;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = SlotLocked(provider);
  if (e.state == BreakerState::kOpen) {
    if (now_us < e.open_until_us) return false;
    e.state = BreakerState::kHalfOpen;
    e.probes_left = policy.half_open_probes;
    PublishTransition(provider, BreakerState::kHalfOpen, now_us);
  }
  if (e.state == BreakerState::kHalfOpen) {
    if (e.probes_left == 0) return false;
    e.probes_left--;
  }
  return true;
}

std::vector<size_t> ProviderScoreboard::RankedPositions(size_t n,
                                                        uint64_t now_us) const {
  struct Key {
    bool open;
    double ewma;
    size_t pos;
  };
  std::vector<Key> keys;
  keys.reserve(n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      Key k{false, 0.0, i};
      if (i < entries_.size()) {
        const Entry& e = entries_[i];
        k.open = e.state == BreakerState::kOpen && now_us < e.open_until_us;
        k.ewma = e.ewma_us;
      }
      keys.push_back(k);
    }
  }
  std::stable_sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.open != b.open) return !a.open;
    return a.ewma < b.ewma;
  });
  std::vector<size_t> out;
  out.reserve(n);
  for (const Key& k : keys) out.push_back(k.pos);
  return out;
}

std::vector<size_t> ProviderScoreboard::RankedWithin(
    const std::vector<size_t>& providers, uint64_t now_us) const {
  struct Key {
    bool open;
    double ewma;
    size_t pos;
  };
  std::vector<Key> keys;
  keys.reserve(providers.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t pos = 0; pos < providers.size(); ++pos) {
      Key k{false, 0.0, pos};
      const size_t provider = providers[pos];
      if (provider < entries_.size()) {
        const Entry& e = entries_[provider];
        k.open = e.state == BreakerState::kOpen && now_us < e.open_until_us;
        k.ewma = e.ewma_us;
      }
      keys.push_back(k);
    }
  }
  std::stable_sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.open != b.open) return !a.open;
    return a.ewma < b.ewma;
  });
  std::vector<size_t> out;
  out.reserve(keys.size());
  for (const Key& k : keys) out.push_back(k.pos);
  return out;
}

uint64_t ProviderScoreboard::HedgeThresholdUs(const HedgePolicy& policy) const {
  if (policy.threshold_us > 0) return policy.threshold_us;
  std::vector<double> ewmas;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.samples > 0) ewmas.push_back(e.ewma_us);
    }
  }
  if (ewmas.size() < policy.min_samples) return 0;
  std::sort(ewmas.begin(), ewmas.end());
  const size_t idx = static_cast<size_t>(
      policy.quantile * static_cast<double>(ewmas.size() - 1));
  return static_cast<uint64_t>(ewmas[idx] * policy.multiplier);
}

ProviderScoreboard::Entry ProviderScoreboard::Snapshot(size_t provider) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (provider >= entries_.size()) return Entry();
  return entries_[provider];
}

void ProviderScoreboard::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void ProviderScoreboard::ResetProvider(size_t provider) {
  std::lock_guard<std::mutex> lock(mu_);
  if (provider < entries_.size()) entries_[provider] = Entry();
}

QuorumResult RunResilientQuorum(Network* network,
                                const std::vector<size_t>& providers,
                                const std::vector<Buffer>& requests,
                                size_t desired, size_t minimum,
                                const std::vector<size_t>& order,
                                const ResiliencePolicy& policy,
                                ProviderScoreboard* board) {
  QuorumResult out;
  const size_t n = providers.size();
  desired = std::min(desired, n);
  if (minimum == 0) minimum = desired;
  const bool breaker_on = policy.breaker.enabled && board != nullptr;

  // Candidate order: the caller's preference (planner ranking) or the
  // classic identity order.
  std::vector<size_t> positions;
  if (order.size() == n) {
    positions = order;
  } else {
    positions.resize(n);
    for (size_t i = 0; i < n; ++i) positions[i] = i;
  }

  auto request_slice = [&requests](size_t pos) {
    return pos < requests.size() ? requests[pos].AsSlice() : Slice();
  };

  // Admit the first `desired` positions past the breaker; everything else
  // (including skipped positions, last) forms the spare queue.
  uint64_t now_us = network->clock().now_us();
  std::vector<size_t> chosen, spares, skipped;
  for (size_t pos : positions) {
    if (chosen.size() < desired) {
      if (breaker_on &&
          !board->AllowRequest(providers[pos], policy.breaker, now_us)) {
        out.breaker_skips++;
        skipped.push_back(pos);
        continue;
      }
      chosen.push_back(pos);
    } else {
      spares.push_back(pos);
    }
  }
  spares.insert(spares.end(), skipped.begin(), skipped.end());

  // Phase 1: parallel fan-out. Legs run unclocked; this layer owns the
  // cross-leg clock arithmetic (retries, backoffs, hedges).
  const size_t m = chosen.size();
  std::vector<Result<std::vector<uint8_t>>> first(
      m, Result<std::vector<uint8_t>>(Status::Internal("fan-out leg not run")));
  std::vector<CallTrace> first_legs(m);
  network->pool().ParallelFor(m, [&](size_t i) {
    first[i] = network->CallUnclocked(providers[chosen[i]],
                                      request_slice(chosen[i]), &first_legs[i],
                                      policy.deadline_us);
  });
  out.fanout_rounds += 1;

  auto record = [&out](size_t provider, const CallTrace& t, bool ok,
                       uint32_t attempt, bool hedge) {
    ResilientLeg leg;
    leg.provider = provider;
    leg.bytes_sent = t.bytes_sent;
    leg.bytes_received = t.bytes_received;
    leg.round_trip_us = t.elapsed_us;
    leg.ok = ok;
    leg.attempt = attempt;
    leg.hedge = hedge;
    leg.deadline_exceeded = t.deadline_exceeded;
    out.legs.push_back(leg);
  };

  // Resolve each phase-1 slot: record the first attempt, then drain its
  // retry budget sequentially (per-link RNG streams make this equivalent
  // to retrying in parallel). A slot's modelled completion time is the
  // sum of its attempts' round trips plus the backoffs between them.
  struct Slot {
    size_t pos = 0;              ///< Winning position (hedge may swap it).
    bool ok = false;
    std::vector<uint8_t> bytes;
    uint64_t completion_us = 0;
  };
  std::vector<Slot> slots(m);
  for (size_t i = 0; i < m; ++i) {
    Slot& slot = slots[i];
    slot.pos = chosen[i];
    const size_t provider = providers[chosen[i]];
    record(provider, first_legs[i], first[i].ok(), 1, false);
    slot.completion_us = first_legs[i].elapsed_us;
    Status st = first[i].ok() ? Status::OK() : first[i].status();
    if (st.ok()) slot.bytes = std::move(*first[i]);
    uint32_t attempt = 1;
    while (!st.ok() && IsTransient(st) &&
           attempt < policy.retry.max_attempts) {
      const uint64_t backoff = policy.retry.BackoffUs(attempt, provider);
      attempt++;
      CallTrace t;
      auto r = network->CallUnclocked(provider, request_slice(chosen[i]), &t,
                                      policy.deadline_us);
      record(provider, t, r.ok(), attempt, false);
      slot.completion_us += backoff + t.elapsed_us;
      st = r.ok() ? Status::OK() : r.status();
      if (st.ok()) slot.bytes = std::move(*r);
    }
    slot.ok = st.ok();
  }

  // Hedging: a successful slot whose modelled completion exceeds the
  // latency threshold launches a duplicate to the next spare; the faster
  // of the two wins and the loser's clock charge is capped at the
  // winner's completion (both legs' bytes stay charged — the requests
  // really went out).
  uint64_t hedge_threshold_us = 0;
  if (policy.hedge.enabled) {
    hedge_threshold_us = policy.hedge.threshold_us > 0
                             ? policy.hedge.threshold_us
                             : (board != nullptr
                                    ? board->HedgeThresholdUs(policy.hedge)
                                    : 0);
  }
  if (hedge_threshold_us > 0) {
    size_t spare_at = 0;
    for (Slot& slot : slots) {
      if (!slot.ok || slot.completion_us <= hedge_threshold_us) continue;
      // Find an admitted spare for the hedge leg.
      size_t hedge_pos = n;
      while (spare_at < spares.size()) {
        const size_t cand = spares[spare_at];
        if (breaker_on &&
            !board->AllowRequest(providers[cand], policy.breaker, now_us)) {
          out.breaker_skips++;
          spare_at++;
          continue;
        }
        hedge_pos = cand;
        spares.erase(spares.begin() + static_cast<long>(spare_at));
        break;
      }
      if (hedge_pos == n) break;  // no spares left to hedge with
      CallTrace t;
      auto r = network->CallUnclocked(providers[hedge_pos],
                                      request_slice(hedge_pos), &t,
                                      policy.deadline_us);
      record(providers[hedge_pos], t, r.ok(), 1, true);
      out.hedges++;
      const uint64_t hedge_completion_us = hedge_threshold_us + t.elapsed_us;
      if (r.ok() && hedge_completion_us < slot.completion_us) {
        slot.pos = hedge_pos;
        slot.bytes = std::move(*r);
        slot.completion_us = hedge_completion_us;
      }
    }
    if (out.hedges > 0) out.fanout_rounds += 1;
  }

  // The phase-1 legs ran in parallel: the slowest effective completion
  // dominates the clock.
  uint64_t slowest = 0;
  for (const Slot& slot : slots) {
    slowest = std::max(slowest, slot.completion_us);
  }
  network->clock().Advance(slowest);
  out.clock_advance_us += slowest;

  for (Slot& slot : slots) {
    if (slot.ok) {
      out.responses.push_back(
          QuorumResult::Response{slot.pos, std::move(slot.bytes)});
    }
  }

  // Phase 2: sequential replacements for failed legs, each a full round
  // trip (plus its own retries) charged to the clock one by one.
  now_us = network->clock().now_us();
  size_t spare_at = 0;
  while (out.responses.size() < desired && spare_at < spares.size()) {
    const size_t pos = spares[spare_at++];
    const size_t provider = providers[pos];
    if (breaker_on &&
        !board->AllowRequest(provider, policy.breaker, now_us)) {
      out.breaker_skips++;
      continue;
    }
    uint64_t leg_advance_us = 0;
    uint32_t attempt = 0;
    Status st = Status::Unavailable("leg not run");
    std::vector<uint8_t> bytes;
    do {
      const uint64_t backoff = policy.retry.BackoffUs(attempt, provider);
      attempt++;
      CallTrace t;
      auto r = network->CallUnclocked(provider, request_slice(pos), &t,
                                      policy.deadline_us);
      record(provider, t, r.ok(), attempt, false);
      out.fanout_rounds += 1;
      leg_advance_us += backoff + t.elapsed_us;
      st = r.ok() ? Status::OK() : r.status();
      if (st.ok()) bytes = std::move(*r);
    } while (!st.ok() && IsTransient(st) &&
             attempt < policy.retry.max_attempts);
    network->clock().Advance(leg_advance_us);
    out.clock_advance_us += leg_advance_us;
    now_us = network->clock().now_us();
    if (st.ok()) {
      out.responses.push_back(QuorumResult::Response{pos, std::move(bytes)});
    }
  }

  // Fold every leg outcome into the scoreboard, sequentially in leg
  // order, at the post-fan-out clock: deterministic for any thread count.
  if (board != nullptr) {
    const uint64_t record_now_us = network->clock().now_us();
    for (const ResilientLeg& leg : out.legs) {
      board->RecordOutcome(leg.provider, leg.ok, leg.round_trip_us,
                           policy.breaker, record_now_us);
    }
  }

  out.status =
      out.responses.size() >= minimum
          ? Status::OK()
          : Status::Unavailable(
                "client: fewer than the required providers responded (" +
                std::to_string(out.responses.size()) + "/" +
                std::to_string(minimum) + ")");
  return out;
}

ScatterQuorumResult RunScatterQuorum(Network* network,
                                     const std::vector<ScatterShardSpec>& specs,
                                     const std::vector<Buffer>& requests,
                                     ProviderScoreboard* board) {
  ScatterQuorumResult out;
  out.shards.resize(specs.size());
  auto request_slice = [&requests](size_t pos) {
    return pos < requests.size() ? requests[pos].AsSlice() : Slice();
  };

  // Phase 1: every group's first-round legs travel in ONE parallel round,
  // so the clock advances once, by the slowest leg anywhere — this is
  // what makes a scatter cheaper in simulated time than sequential
  // per-group fan-outs.
  struct LegRef {
    size_t shard = 0;
    size_t pos = 0;
  };
  std::vector<LegRef> flat;
  for (size_t s = 0; s < specs.size(); ++s) {
    const size_t desired =
        std::min(specs[s].desired, specs[s].providers->size());
    for (size_t pos = 0; pos < desired; ++pos) {
      flat.push_back(LegRef{s, pos});
    }
  }
  std::vector<Result<std::vector<uint8_t>>> first(
      flat.size(),
      Result<std::vector<uint8_t>>(Status::Internal("fan-out leg not run")));
  std::vector<CallTrace> first_legs(flat.size());
  network->pool().ParallelFor(flat.size(), [&](size_t i) {
    const LegRef& ref = flat[i];
    first[i] =
        network->CallUnclocked((*specs[ref.shard].providers)[ref.pos],
                               request_slice(ref.pos), &first_legs[i], 0);
  });
  uint64_t slowest = 0;
  for (const CallTrace& t : first_legs) {
    slowest = std::max(slowest, t.elapsed_us);
  }
  network->clock().Advance(slowest);
  out.fanout_clock_us = slowest;

  for (size_t i = 0; i < flat.size(); ++i) {
    const LegRef& ref = flat[i];
    QuorumResult& q = out.shards[ref.shard];
    ResilientLeg leg;
    leg.provider = (*specs[ref.shard].providers)[ref.pos];
    leg.bytes_sent = first_legs[i].bytes_sent;
    leg.bytes_received = first_legs[i].bytes_received;
    leg.round_trip_us = first_legs[i].elapsed_us;
    leg.ok = first[i].ok();
    q.legs.push_back(leg);
    if (q.fanout_rounds == 0) q.fanout_rounds = 1;
    if (first[i].ok()) {
      q.responses.push_back(
          QuorumResult::Response{ref.pos, std::move(*first[i])});
    }
  }

  // Phase 2: sequential replacement of failed legs, per group, each a
  // full round trip charged to that group alone.
  for (size_t s = 0; s < specs.size(); ++s) {
    const std::vector<size_t>& providers = *specs[s].providers;
    const size_t desired = std::min(specs[s].desired, providers.size());
    const size_t minimum =
        specs[s].minimum == 0 ? desired : specs[s].minimum;
    QuorumResult& q = out.shards[s];
    size_t next = desired;
    while (q.responses.size() < desired && next < providers.size()) {
      const size_t pos = next++;
      CallTrace t;
      auto r =
          network->CallUnclocked(providers[pos], request_slice(pos), &t, 0);
      ResilientLeg leg;
      leg.provider = providers[pos];
      leg.bytes_sent = t.bytes_sent;
      leg.bytes_received = t.bytes_received;
      leg.round_trip_us = t.elapsed_us;
      leg.ok = r.ok();
      q.legs.push_back(leg);
      q.fanout_rounds += 1;
      network->clock().Advance(t.elapsed_us);
      q.clock_advance_us += t.elapsed_us;
      if (r.ok()) {
        q.responses.push_back(QuorumResult::Response{pos, std::move(*r)});
      }
    }
    q.status =
        q.responses.size() >= minimum
            ? Status::OK()
            : Status::Unavailable(
                  "client: fewer than the required providers responded (" +
                  std::to_string(q.responses.size()) + "/" +
                  std::to_string(minimum) + ")");
  }

  // Scoreboard fold: sequential, (group, leg) order, post-fan-out clock.
  if (board != nullptr) {
    const uint64_t record_now_us = network->clock().now_us();
    const BreakerPolicy no_breaker;
    for (const QuorumResult& q : out.shards) {
      for (const ResilientLeg& leg : q.legs) {
        board->RecordOutcome(leg.provider, leg.ok, leg.round_trip_us,
                             no_breaker, record_now_us);
      }
    }
  }
  return out;
}

}  // namespace ssdb
