#include "net/fault_controller.h"

#include "net/resilience.h"

namespace ssdb {

void FaultController::HealAll() {
  for (size_t i = 0; i < network_->num_providers(); ++i) Heal(i);
  if (scoreboard_ != nullptr) scoreboard_->Reset();
}

}  // namespace ssdb
