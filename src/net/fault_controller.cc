#include "net/fault_controller.h"

#include "net/resilience.h"

namespace ssdb {

void FaultController::Kill(size_t i) {
  network_->SetFailure(i, FailureMode::kKill);
  if (on_kill_) on_kill_(i);
}

Status FaultController::Restart(size_t i) {
  if (mode(i) != FailureMode::kKill) return Status::OK();
  // The link heals first: the restart hook's catch-up writes (batched
  // missed-mutation envelopes) travel over this same link. The hook runs
  // synchronously before control returns to the workload, so nothing can
  // observe the provider between link-heal and recovery completing.
  network_->SetFailure(i, FailureMode::kHealthy);
  if (on_restart_) SSDB_RETURN_IF_ERROR(on_restart_(i));
  if (scoreboard_ != nullptr) scoreboard_->ResetProvider(i);
  return Status::OK();
}

void FaultController::HealAll() {
  for (size_t i = 0; i < network_->num_providers(); ++i) Heal(i);
  if (scoreboard_ != nullptr) scoreboard_->Reset();
}

}  // namespace ssdb
