#include "net/network.h"

#include <algorithm>

namespace ssdb {

size_t Network::AddProvider(std::shared_ptr<ProviderEndpoint> endpoint) {
  Link link;
  link.endpoint = std::move(endpoint);
  links_.push_back(std::move(link));
  return links_.size() - 1;
}

Result<std::vector<uint8_t>> Network::CallNoClock(size_t provider,
                                                  Slice request,
                                                  uint64_t* elapsed_us) {
  *elapsed_us = 0;
  if (provider >= links_.size()) {
    return Status::InvalidArgument("network: unknown provider index");
  }
  Link& link = links_[provider];
  link.stats.calls++;

  // Failure injection happens "on the wire".
  if (link.mode == FailureMode::kDown) {
    link.stats.failures++;
    *elapsed_us = model_.latency_us;  // timeout charged as one latency
    return Status::Unavailable("provider " + link.endpoint->name() +
                               " is down");
  }
  if (link.mode == FailureMode::kDropSome &&
      failure_rng_.Bernoulli(link.drop_probability)) {
    link.stats.failures++;
    *elapsed_us = model_.latency_us;
    return Status::Unavailable("provider " + link.endpoint->name() +
                               " dropped the request");
  }

  link.stats.bytes_sent += request.size();
  Result<Buffer> response = link.endpoint->Handle(request);
  if (!response.ok()) {
    link.stats.failures++;
    *elapsed_us = model_.RoundTripUs(request.size(), 0);
    return response.status();
  }

  std::vector<uint8_t> bytes = std::move(*response).TakeBytes();
  if (link.mode == FailureMode::kCorruptResponse && !bytes.empty()) {
    const size_t pos = failure_rng_.Uniform(bytes.size());
    bytes[pos] ^= 0x5A;
  }
  link.stats.bytes_received += bytes.size();
  *elapsed_us = model_.RoundTripUs(request.size(), bytes.size());
  return bytes;
}

Result<std::vector<uint8_t>> Network::Call(size_t provider, Slice request) {
  uint64_t elapsed = 0;
  auto result = CallNoClock(provider, request, &elapsed);
  clock_.Advance(elapsed);
  return result;
}

Network::FanOutResult Network::CallMany(const std::vector<size_t>& providers,
                                        Slice request) {
  FanOutResult out;
  uint64_t slowest = 0;
  for (size_t p : providers) {
    uint64_t elapsed = 0;
    out.responses.push_back(CallNoClock(p, request, &elapsed));
    slowest = std::max(slowest, elapsed);
  }
  clock_.Advance(slowest);
  return out;
}

Network::FanOutResult Network::CallManyDistinct(
    const std::vector<size_t>& providers, const std::vector<Buffer>& requests) {
  FanOutResult out;
  uint64_t slowest = 0;
  for (size_t i = 0; i < providers.size(); ++i) {
    uint64_t elapsed = 0;
    const Slice req = i < requests.size() ? requests[i].AsSlice() : Slice();
    out.responses.push_back(CallNoClock(providers[i], req, &elapsed));
    slowest = std::max(slowest, elapsed);
  }
  clock_.Advance(slowest);
  return out;
}

void Network::SetFailure(size_t provider, FailureMode mode,
                         double drop_probability) {
  links_[provider].mode = mode;
  links_[provider].drop_probability = drop_probability;
}

ChannelStats Network::TotalStats() const {
  ChannelStats total;
  for (const Link& link : links_) total += link.stats;
  return total;
}

void Network::ResetStats() {
  for (Link& link : links_) link.stats = ChannelStats();
}

}  // namespace ssdb
