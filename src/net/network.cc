#include "net/network.h"

#include <algorithm>

namespace ssdb {

size_t Network::AddProvider(std::shared_ptr<ProviderEndpoint> endpoint) {
  links_.emplace_back();
  Link& link = links_.back();
  link.endpoint = std::move(endpoint);
  // Derive a per-link failure stream so injected drops/corruption depend
  // only on this link's own call sequence, never on fan-out interleaving.
  link.rng = Rng(failure_seed_ ^ (0x9E3779B97F4A7C15ULL * links_.size()));
  if (registry_ != nullptr) RegisterLinkMetrics(links_.size() - 1);
  return links_.size() - 1;
}

void Network::AttachMetrics(MetricsRegistry* registry) {
  registry_ = registry;
  for (size_t i = 0; i < links_.size(); ++i) RegisterLinkMetrics(i);
}

void Network::RegisterLinkMetrics(size_t provider) {
  const MetricLabels labels = {{"provider", std::to_string(provider)}};
  LinkMetrics& m = links_[provider].metrics;
  m.calls = registry_->GetCounter("ssdb_net_calls_total", labels);
  m.failures = registry_->GetCounter("ssdb_net_failures_total", labels);
  m.bytes_sent = registry_->GetCounter("ssdb_net_bytes_sent_total", labels);
  m.bytes_received =
      registry_->GetCounter("ssdb_net_bytes_received_total", labels);
  m.deadline_exceeded =
      registry_->GetCounter("ssdb_net_deadline_exceeded_total", labels);
  m.round_trip_us = registry_->GetHistogram("ssdb_net_round_trip_us", labels);
}

void Network::AttachShardMetrics(
    MetricsRegistry* registry, const std::vector<size_t>& shard_of_provider) {
  for (size_t i = 0; i < links_.size() && i < shard_of_provider.size(); ++i) {
    const MetricLabels labels = {
        {"shard", std::to_string(shard_of_provider[i])}};
    LinkMetrics& m = links_[i].metrics;
    m.shard_requests =
        registry->GetCounter("ssdb_shard_requests_total", labels);
    m.shard_bytes_sent =
        registry->GetCounter("ssdb_shard_bytes_sent_total", labels);
    m.shard_bytes_received =
        registry->GetCounter("ssdb_shard_bytes_received_total", labels);
  }
}

ThreadPool& Network::pool() {
  std::call_once(pool_once_,
                 [this] { pool_ = std::make_unique<ThreadPool>(
                              fanout_threads_); });
  return *pool_;
}

namespace {

/// Caps a failed leg's charge at the deadline: a call that would have
/// reported its failure after the deadline is seen by the client as a
/// timeout instead.
Status CapFailureAtDeadline(uint64_t deadline_us, CallTrace* trace,
                            Status original) {
  if (deadline_us > 0 && trace->elapsed_us > deadline_us) {
    trace->elapsed_us = deadline_us;
    trace->deadline_exceeded = true;
    return Status::DeadlineExceeded("network: deadline of " +
                                    std::to_string(deadline_us) +
                                    "us exceeded (" + original.message() + ")");
  }
  return original;
}

}  // namespace

Result<std::vector<uint8_t>> Network::CallNoClock(size_t provider,
                                                  Slice request,
                                                  CallTrace* trace,
                                                  uint64_t deadline_us) {
  auto result = CallNoClockImpl(provider, request, trace, deadline_us);
  // Mirror the finished leg into the registry from the same figures the
  // ChannelStats saw: trace fields are final here (deadline capping
  // included), so registry totals and stats(i) cannot diverge. Counter
  // bumps are commutative relaxed atomics — fan-out interleaving does
  // not affect the totals.
  if (provider < links_.size()) {
    const LinkMetrics& m = links_[provider].metrics;
    if (m.calls != nullptr) {
      m.calls->Inc();
      if (!result.ok()) m.failures->Inc();
      if (trace->bytes_sent) m.bytes_sent->Inc(trace->bytes_sent);
      if (trace->bytes_received) m.bytes_received->Inc(trace->bytes_received);
      if (trace->deadline_exceeded) m.deadline_exceeded->Inc();
      m.round_trip_us->Observe(trace->elapsed_us);
    }
    if (m.shard_requests != nullptr) {
      m.shard_requests->Inc();
      if (trace->bytes_sent) m.shard_bytes_sent->Inc(trace->bytes_sent);
      if (trace->bytes_received) {
        m.shard_bytes_received->Inc(trace->bytes_received);
      }
    }
  }
  return result;
}

Result<std::vector<uint8_t>> Network::CallNoClockImpl(size_t provider,
                                                      Slice request,
                                                      CallTrace* trace,
                                                      uint64_t deadline_us) {
  *trace = CallTrace();
  if (provider >= links_.size()) {
    return Status::InvalidArgument("network: unknown provider index");
  }
  Link& link = links_[provider];
  std::unique_lock<std::mutex> lock(link.mu);
  link.stats.calls++;

  // Failure injection happens "on the wire".
  if (link.mode == FailureMode::kDown || link.mode == FailureMode::kKill) {
    link.stats.failures++;
    trace->elapsed_us = model_.latency_us;  // timeout charged as one latency
    return CapFailureAtDeadline(
        deadline_us, trace,
        Status::Unavailable("provider " + link.endpoint->name() +
                            (link.mode == FailureMode::kKill ? " was killed"
                                                             : " is down")));
  }
  if (link.mode == FailureMode::kDropSome &&
      link.rng.Bernoulli(link.param)) {
    link.stats.failures++;
    trace->elapsed_us = model_.latency_us;
    return CapFailureAtDeadline(
        deadline_us, trace,
        Status::Unavailable("provider " + link.endpoint->name() +
                            " dropped the request"));
  }
  if (link.mode == FailureMode::kFlaky) {
    // Bursty outages: the link toggles between good and bad phases; while
    // bad, every call is lost. The per-link RNG keeps the phase sequence a
    // function of this link's call sequence only.
    if (link.rng.Bernoulli(link.param)) link.flaky_bad = !link.flaky_bad;
    if (link.flaky_bad) {
      link.stats.failures++;
      trace->elapsed_us = model_.latency_us;
      return CapFailureAtDeadline(
          deadline_us, trace,
          Status::Unavailable("provider " + link.endpoint->name() +
                              " is flapping"));
    }
  }
  const FailureMode mode = link.mode;
  // kSlow stretches the whole round trip by the configured multiplier.
  const double time_factor =
      mode == FailureMode::kSlow && link.param > 1.0 ? link.param : 1.0;
  link.stats.bytes_sent += request.size();
  trace->bytes_sent = request.size();

  // The provider computes outside the link lock: that is where the
  // parallelism is, and Provider/ShareTable carry their own locks.
  lock.unlock();
  Result<Buffer> response = link.endpoint->Handle(request);
  lock.lock();

  if (!response.ok()) {
    link.stats.failures++;
    trace->elapsed_us = static_cast<uint64_t>(
        static_cast<double>(model_.RoundTripUs(request.size(), 0)) *
        time_factor);
    return CapFailureAtDeadline(deadline_us, trace, response.status());
  }

  std::vector<uint8_t> bytes = std::move(*response).TakeBytes();
  const uint64_t round_trip_us = static_cast<uint64_t>(
      static_cast<double>(model_.RoundTripUs(request.size(), bytes.size())) *
      time_factor);
  if (deadline_us > 0 && round_trip_us > deadline_us) {
    // The client stopped waiting at the deadline: the response never
    // reaches it, so no received bytes are charged anywhere and the clock
    // charge is exactly the deadline.
    link.stats.failures++;
    trace->elapsed_us = deadline_us;
    trace->deadline_exceeded = true;
    return Status::DeadlineExceeded(
        "network: provider " + link.endpoint->name() + " overran the " +
        std::to_string(deadline_us) + "us deadline");
  }
  if (mode == FailureMode::kCorruptResponse && !bytes.empty()) {
    const size_t pos = link.rng.Uniform(bytes.size());
    bytes[pos] ^= 0x5A;
  }
  link.stats.bytes_received += bytes.size();
  trace->bytes_received = bytes.size();
  trace->elapsed_us = round_trip_us;
  return bytes;
}

Result<std::vector<uint8_t>> Network::Call(size_t provider, Slice request,
                                           CallTrace* trace,
                                           uint64_t deadline_us) {
  CallTrace local;
  auto result = CallNoClock(provider, request, &local, deadline_us);
  clock_.Advance(local.elapsed_us);
  if (trace != nullptr) *trace = local;
  return result;
}

Result<std::vector<uint8_t>> Network::CallUnclocked(size_t provider,
                                                    Slice request,
                                                    CallTrace* trace,
                                                    uint64_t deadline_us) {
  CallTrace local;
  auto result = CallNoClock(provider, request, &local, deadline_us);
  if (trace != nullptr) *trace = local;
  return result;
}

Network::FanOutResult Network::CallMany(const std::vector<size_t>& providers,
                                        Slice request, uint64_t deadline_us) {
  const size_t n = providers.size();
  FanOutResult out;
  out.responses.assign(
      n, Result<std::vector<uint8_t>>(Status::Internal("fan-out leg not run")));
  out.legs.assign(n, CallTrace());
  pool().ParallelFor(n, [&](size_t i) {
    out.responses[i] =
        CallNoClock(providers[i], request, &out.legs[i], deadline_us);
  });
  // The legs ran in parallel: the slowest one dominates the round trip.
  uint64_t slowest = 0;
  for (const CallTrace& leg : out.legs) {
    slowest = std::max(slowest, leg.elapsed_us);
  }
  out.clock_advance_us = slowest;
  clock_.Advance(slowest);
  return out;
}

Network::FanOutResult Network::CallManyDistinct(
    const std::vector<size_t>& providers, const std::vector<Buffer>& requests,
    uint64_t deadline_us) {
  const size_t n = providers.size();
  FanOutResult out;
  out.responses.assign(
      n, Result<std::vector<uint8_t>>(Status::Internal("fan-out leg not run")));
  out.legs.assign(n, CallTrace());
  pool().ParallelFor(n, [&](size_t i) {
    const Slice req = i < requests.size() ? requests[i].AsSlice() : Slice();
    out.responses[i] =
        CallNoClock(providers[i], req, &out.legs[i], deadline_us);
  });
  uint64_t slowest = 0;
  for (const CallTrace& leg : out.legs) {
    slowest = std::max(slowest, leg.elapsed_us);
  }
  out.clock_advance_us = slowest;
  clock_.Advance(slowest);
  return out;
}

void Network::SetFailure(size_t provider, FailureMode mode, double param) {
  std::lock_guard<std::mutex> lock(links_[provider].mu);
  links_[provider].mode = mode;
  links_[provider].param = param;
  links_[provider].flaky_bad = false;  // a new fault starts in a good phase
}

ChannelStats Network::TotalStats() const {
  ChannelStats total;
  for (const Link& link : links_) {
    std::lock_guard<std::mutex> lock(link.mu);
    total += link.stats;
  }
  return total;
}

void Network::ResetStats() {
  for (Link& link : links_) {
    std::lock_guard<std::mutex> lock(link.mu);
    link.stats = ChannelStats();
  }
}

}  // namespace ssdb
