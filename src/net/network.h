// Simulated wide-area network between the data source and the providers.
//
// The paper's cost arguments are about communication volume, round trips
// and availability — not absolute wire speed — so the network is an
// in-process message layer with:
//   * exact per-channel byte / message accounting,
//   * a configurable latency + bandwidth model charged to a VirtualClock
//     (fan-out calls run "in parallel": the slowest leg dominates),
//   * failure injection (provider down, responses corrupted, intermittent
//     drops) for the fault-tolerance experiments (E8) and the §VI(b)
//     benign/malicious failure-model challenge.

#ifndef SSDB_NET_NETWORK_H_
#define SSDB_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace ssdb {

/// \brief Endpoint interface implemented by every service provider (and by
/// baseline servers).
class ProviderEndpoint {
 public:
  virtual ~ProviderEndpoint() = default;

  /// Handles one request message; returns the response bytes.
  virtual Result<Buffer> Handle(Slice request) = 0;

  /// Diagnostic name.
  virtual std::string name() const = 0;
};

/// Latency/bandwidth model of one client<->provider link.
struct NetworkCostModel {
  /// One-way propagation latency in microseconds (default: 20 ms WAN).
  uint64_t latency_us = 20000;
  /// Link bandwidth in bytes per microsecond (default: 12.5 B/us = 100 Mbit/s).
  double bandwidth_bytes_per_us = 12.5;

  uint64_t TransferTimeUs(uint64_t bytes) const {
    if (bandwidth_bytes_per_us <= 0) return 0;
    return static_cast<uint64_t>(static_cast<double>(bytes) /
                                 bandwidth_bytes_per_us);
  }
  /// Full round trip: request out + response back.
  uint64_t RoundTripUs(uint64_t bytes_out, uint64_t bytes_in) const {
    return 2 * latency_us + TransferTimeUs(bytes_out + bytes_in);
  }
};

/// Failure injected into one provider's link.
enum class FailureMode {
  kHealthy,
  kDown,             ///< Every call returns Unavailable.
  kCorruptResponse,  ///< Responses arrive with one byte flipped.
  kDropSome,         ///< Calls fail independently with probability `param`.
  kSlow,             ///< Round trips take `param` times the modelled time.
  kFlaky,            ///< Bursty outages: each call first toggles the link
                     ///< between good and bad phases with probability
                     ///< `param` (per-link seeded stream); while bad, every
                     ///< call is dropped. Unlike kDropSome the failures are
                     ///< correlated, modelling a flapping provider.
  kKill,             ///< Provider process death: on the wire identical to
                     ///< kDown (every call Unavailable), but the mode marks
                     ///< the provider's RAM state as lost — set via
                     ///< FaultController::Kill, which also crashes the
                     ///< provider's storage engine, and cleared by
                     ///< FaultController::Restart, which recovers it from
                     ///< durable storage.
};

/// Exact accounting for one call leg, as charged to the channel stats and
/// the virtual clock. Lets callers attribute communication to individual
/// plan nodes without re-deriving the cost model.
struct CallTrace {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t elapsed_us = 0;  ///< Round-trip time of this leg.
  /// True when the leg overran its deadline; `elapsed_us` is then exactly
  /// the deadline (the client stops waiting) and no response bytes are
  /// charged.
  bool deadline_exceeded = false;
};

/// Byte/message counters for one channel (or aggregated).
struct ChannelStats {
  uint64_t calls = 0;
  uint64_t failures = 0;
  uint64_t bytes_sent = 0;      // client -> provider
  uint64_t bytes_received = 0;  // provider -> client

  uint64_t total_bytes() const { return bytes_sent + bytes_received; }
  ChannelStats& operator+=(const ChannelStats& o) {
    calls += o.calls;
    failures += o.failures;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    return *this;
  }
};

/// \brief The network: n provider links plus a virtual clock.
///
/// Fan-out calls (CallMany / CallManyDistinct) dispatch each leg to a
/// worker of an internal ThreadPool, so wall-clock tracks the slowest leg
/// instead of the sum — matching the virtual-clock model the paper's §V.A
/// cost argument assumes. Per-link failure state, statistics and the
/// failure RNG live behind a per-link mutex; the RNG stream is per link,
/// so injected drops/corruption depend only on that link's call sequence
/// and results are identical for any fan-out thread count.
class Network {
 public:
  /// `fanout_threads`: workers for the fan-out pool (0 = one per hardware
  /// thread). The pool is created lazily on the first fan-out call.
  explicit Network(NetworkCostModel model = NetworkCostModel(),
                   uint64_t failure_seed = 0xFA11, size_t fanout_threads = 0)
      : model_(model),
        failure_seed_(failure_seed),
        fanout_threads_(fanout_threads) {}

  /// Registers a provider; returns its index.
  size_t AddProvider(std::shared_ptr<ProviderEndpoint> endpoint);

  size_t num_providers() const { return links_.size(); }

  /// One round trip to provider i (advances the virtual clock by the full
  /// round-trip time of this single call). When `trace` is non-null it is
  /// filled with this leg's exact byte/clock charges. `deadline_us` (0 =
  /// none) bounds the call in virtual-clock microseconds: a leg whose
  /// modelled round trip overruns it returns Status::DeadlineExceeded and
  /// charges exactly the deadline — the response bytes never reach the
  /// client, so neither the channel stats nor the trace count them.
  Result<std::vector<uint8_t>> Call(size_t provider, Slice request,
                                    CallTrace* trace = nullptr,
                                    uint64_t deadline_us = 0);

  /// Like Call but does NOT advance the virtual clock: the caller owns the
  /// cross-leg clock arithmetic. Used by the resilience layer
  /// (net/resilience.h), whose retries, backoffs and hedges need to charge
  /// the clock once per orchestrated round rather than per leg.
  Result<std::vector<uint8_t>> CallUnclocked(size_t provider, Slice request,
                                             CallTrace* trace,
                                             uint64_t deadline_us = 0);

  /// Parallel fan-out: one request per listed provider; the virtual clock
  /// advances by the slowest leg only. Failed legs yield error Status in
  /// the result vector (the call itself succeeds if the fan-out ran).
  /// `legs` holds one CallTrace per leg (parallel to `responses`);
  /// `clock_advance_us` is the slowest leg, i.e. what the virtual clock
  /// was advanced by.
  struct FanOutResult {
    std::vector<Result<std::vector<uint8_t>>> responses;
    std::vector<CallTrace> legs;
    uint64_t clock_advance_us = 0;
  };
  FanOutResult CallMany(const std::vector<size_t>& providers, Slice request,
                        uint64_t deadline_us = 0);
  /// Fan-out with per-provider request payloads (the rewritten queries of
  /// §V.A differ per provider).
  FanOutResult CallManyDistinct(const std::vector<size_t>& providers,
                                const std::vector<Buffer>& requests,
                                uint64_t deadline_us = 0);

  /// Failure injection. `param` is mode-specific: the drop probability for
  /// kDropSome, the phase-flip probability for kFlaky, and the latency
  /// multiplier for kSlow.
  void SetFailure(size_t provider, FailureMode mode, double param = 0.0);
  FailureMode failure_mode(size_t provider) const {
    std::lock_guard<std::mutex> lock(links_[provider].mu);
    return links_[provider].mode;
  }
  /// The mode-specific parameter set with the current failure mode.
  double failure_param(size_t provider) const {
    std::lock_guard<std::mutex> lock(links_[provider].mu);
    return links_[provider].param;
  }

  /// Per-provider statistics. The reference is only safe to read while no
  /// fan-out involving this link is in flight (benchmarks and tests read
  /// between queries).
  const ChannelStats& stats(size_t provider) const {
    return links_[provider].stats;
  }
  ChannelStats TotalStats() const;
  void ResetStats();

  /// Mirrors every ChannelStats bump into `registry` under the
  /// `ssdb_net_*` series, labelled {provider: "<index>"}, plus a
  /// round-trip latency histogram per link. Handles are cached per link
  /// at attach time, so the per-call overhead is a handful of relaxed
  /// atomic adds. Registry totals reconcile with stats(i) exactly
  /// (same call sites, same values) from any common reset point.
  void AttachMetrics(MetricsRegistry* registry);

  /// Additionally mirrors every leg into per-shard-group series —
  /// `ssdb_shard_requests_total`, `ssdb_shard_bytes_sent_total`,
  /// `ssdb_shard_bytes_received_total`, labelled {shard} — where entry i
  /// of `shard_of_provider` names provider i's group. Bumped at the same
  /// call site from the same figures as the per-provider mirror, so the
  /// shard series reconcile exactly with the ChannelStats of the group's
  /// links. Only multi-shard deployments attach this: the 1-shard
  /// telemetry export stays byte-identical to the seed system.
  void AttachShardMetrics(MetricsRegistry* registry,
                          const std::vector<size_t>& shard_of_provider);

  VirtualClock& clock() { return clock_; }
  const NetworkCostModel& model() const { return model_; }

  /// The fan-out worker pool (created on first use). Shared with the
  /// client's ExecuteBatch so batched queries and their per-query fan-out
  /// legs draw from the same fixed set of workers.
  ThreadPool& pool();

 private:
  /// Cached registry handles for one link (null until AttachMetrics).
  struct LinkMetrics {
    MetricCounter* calls = nullptr;
    MetricCounter* failures = nullptr;
    MetricCounter* bytes_sent = nullptr;
    MetricCounter* bytes_received = nullptr;
    MetricCounter* deadline_exceeded = nullptr;
    MetricHistogram* round_trip_us = nullptr;
    // Per-shard-group mirror (null until AttachShardMetrics).
    MetricCounter* shard_requests = nullptr;
    MetricCounter* shard_bytes_sent = nullptr;
    MetricCounter* shard_bytes_received = nullptr;
  };

  struct Link {
    std::shared_ptr<ProviderEndpoint> endpoint;
    mutable std::mutex mu;  ///< Guards mode/param/flaky_bad/rng/stats.
    FailureMode mode = FailureMode::kHealthy;
    double param = 0.0;      ///< Mode-specific (see SetFailure).
    bool flaky_bad = false;  ///< kFlaky: currently in a bad phase.
    Rng rng;  ///< Per-link failure stream (deterministic per call sequence).
    ChannelStats stats;
    LinkMetrics metrics;  ///< Set once by AttachMetrics, then read-only.
  };

  /// Executes one call without touching the clock; reports the exact
  /// byte/clock charges through `trace`. CallNoClock wraps the impl to
  /// mirror the final per-leg accounting into the metrics registry.
  Result<std::vector<uint8_t>> CallNoClockImpl(size_t provider, Slice request,
                                               CallTrace* trace,
                                               uint64_t deadline_us);
  Result<std::vector<uint8_t>> CallNoClock(size_t provider, Slice request,
                                           CallTrace* trace,
                                           uint64_t deadline_us);

  void RegisterLinkMetrics(size_t provider);

  NetworkCostModel model_;
  VirtualClock clock_;
  uint64_t failure_seed_;
  size_t fanout_threads_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
  MetricsRegistry* registry_ = nullptr;
  std::deque<Link> links_;  // deque: stable addresses for mutex members
};

}  // namespace ssdb

#endif  // SSDB_NET_NETWORK_H_
