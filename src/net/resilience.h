// Resilient provider RPC: deadlines, backoff retries, hedged reads and a
// per-provider health scoreboard with a circuit breaker.
//
// The paper's availability argument (§V.A, §VI(b)) is that k-of-n secret
// sharing tolerates provider failures *structurally*; this layer adds the
// *temporal* half: a slow or flapping provider must not drag the whole
// query down when a spare share exists. Everything is charged to the
// simulated network's VirtualClock, and every knob is deterministic:
//  * backoff jitter is a pure function of (seed, provider, retry number),
//  * hedge decisions are made from modelled leg latencies after the
//    fan-out barrier, never from wall-clock races,
//  * scoreboard updates happen sequentially in leg order,
// so query results, byte counts and clock totals are bit-identical for
// any fan-out thread count and across same-seed runs.
//
// With the default (fully disabled) ResiliencePolicy, RunResilientQuorum
// reproduces the classic two-phase quorum fan-out byte-for-byte: parallel
// fan-out to the first `desired` providers (clock advanced by the slowest
// leg), then sequential replacement of failed legs.

#ifndef SSDB_NET_RESILIENCE_H_
#define SSDB_NET_RESILIENCE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace ssdb {

/// Backoff-retry schedule for one logical call leg. A leg is retried only
/// on transient failures (Unavailable, DeadlineExceeded); semantic errors
/// surface immediately.
struct RetryPolicy {
  /// Total attempts per leg (1 = no retries).
  size_t max_attempts = 1;
  /// Backoff before the first retry, in virtual-clock microseconds.
  uint64_t initial_backoff_us = 10000;
  /// Exponential growth factor between consecutive backoffs.
  double multiplier = 2.0;
  /// Upper bound on any single backoff.
  uint64_t max_backoff_us = 1000000;
  /// Jitter fraction in [0,1]: each backoff is scaled by
  /// (1 - jitter * u) with u drawn from a stream seeded by
  /// (jitter_seed, provider, retry number) — deterministic and
  /// independent of call interleaving.
  double jitter = 0.0;
  uint64_t jitter_seed = 0x5EEDBACC0FFULL;

  /// The backoff charged before retry `retry_number` (1-based) to
  /// `provider`. Returns 0 for retry_number == 0.
  uint64_t BackoffUs(size_t retry_number, size_t provider) const;
};

/// Hedged reads: when a quorum leg's modelled completion time exceeds a
/// latency threshold, a duplicate request is sent to a spare provider and
/// the first response wins; the loser is cancelled, so its clock charge
/// is capped at the winner's completion (its bytes are still charged to
/// the channel stats — the request really went out).
struct HedgePolicy {
  bool enabled = false;
  /// Fixed threshold in virtual-clock microseconds; 0 means derive it
  /// from the scoreboard as `multiplier` times the `quantile`-quantile of
  /// the per-provider latency EWMAs (needs >= min_samples providers with
  /// history, else no hedging).
  uint64_t threshold_us = 0;
  double quantile = 0.5;
  double multiplier = 2.0;
  size_t min_samples = 3;
};

/// Half-open circuit breaker per provider: `failures_to_open` consecutive
/// failures open the circuit for `open_cooldown_us` of virtual time;
/// afterwards up to `half_open_probes` probe requests are let through —
/// one success closes the circuit, one failure re-opens it.
struct BreakerPolicy {
  bool enabled = false;
  uint32_t failures_to_open = 3;
  uint64_t open_cooldown_us = 1000000;
  uint32_t half_open_probes = 1;
};

/// The full resilience configuration of a client. The default is fully
/// disabled: query results, provider byte streams and virtual-clock
/// totals are then byte-identical to a build without this layer.
struct ResiliencePolicy {
  RetryPolicy retry;
  HedgePolicy hedge;
  BreakerPolicy breaker;
  /// Per-call deadline in virtual-clock microseconds (0 = none).
  uint64_t deadline_us = 0;
  /// Let the planner order quorum candidates by scoreboard health.
  bool prefer_healthy = false;

  bool enabled() const {
    return retry.max_attempts > 1 || hedge.enabled || breaker.enabled ||
           deadline_us > 0 || prefer_healthy;
  }
};

/// \brief Per-provider health ledger consulted by the planner (quorum
/// selection) and the resilient quorum runner (breaker, hedge threshold).
///
/// Thread-safe; all time arguments are virtual-clock microseconds.
/// Outcomes are recorded sequentially in leg order after each quorum
/// fan-out, so the ledger's evolution is deterministic for any fan-out
/// thread count.
class ProviderScoreboard {
 public:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  struct Entry {
    double ewma_us = 0.0;  ///< EWMA of successful round trips (alpha .25).
    uint64_t samples = 0;  ///< Successful round trips folded into the EWMA.
    uint32_t consecutive_failures = 0;
    uint64_t successes = 0;
    uint64_t failures = 0;
    BreakerState state = BreakerState::kClosed;
    uint64_t open_until_us = 0;  ///< When kOpen: cooldown end.
    uint32_t probes_left = 0;    ///< When kHalfOpen: probe budget left.
  };

  /// Folds one leg outcome into the ledger and drives the breaker state
  /// machine (open on failures_to_open consecutive failures; a half-open
  /// probe success closes, a probe failure re-opens).
  void RecordOutcome(size_t provider, bool ok, uint64_t round_trip_us,
                     const BreakerPolicy& policy, uint64_t now_us);

  /// Breaker admission check. Consumes a probe when half-open; flips an
  /// expired open circuit to half-open. Always true when the policy is
  /// disabled.
  bool AllowRequest(size_t provider, const BreakerPolicy& policy,
                    uint64_t now_us);

  /// Positions [0, n) ordered healthiest-first: breaker-open providers
  /// last, others by ascending latency EWMA (no history = optimistic),
  /// ties by position. Deterministic.
  std::vector<size_t> RankedPositions(size_t n, uint64_t now_us) const;

  /// Like RankedPositions, but ranks the given network provider indices
  /// (one shard group's providers) and returns LOCAL positions into
  /// `providers`. RankedWithin({0..n-1}) == RankedPositions(n).
  std::vector<size_t> RankedWithin(const std::vector<size_t>& providers,
                                   uint64_t now_us) const;

  /// The hedge latency threshold per `policy` (see HedgePolicy); 0 means
  /// "do not hedge".
  uint64_t HedgeThresholdUs(const HedgePolicy& policy) const;

  Entry Snapshot(size_t provider) const;

  /// Forgets all history and closes every breaker (used by
  /// FaultController::HealAll so healed faults do not echo).
  void Reset();

  /// Forgets one provider's history and closes its breaker, leaving every
  /// other entry untouched. Used by FaultController::Restart so a
  /// recovered provider rejoins quorum ranking as a fresh optimistic peer
  /// instead of dragging its death around as an open breaker.
  void ResetProvider(size_t provider);

  /// Publishes breaker state changes: each transition bumps
  /// `ssdb_resilience_breaker_transitions_total{provider, to}` and emits
  /// an instant "breaker" span event under the caller's current span.
  /// Transitions fire from RecordOutcome (sequential, in leg order) and
  /// AllowRequest (called from the quorum orchestration thread), so the
  /// event stream is deterministic. Either argument may be null.
  void AttachTelemetry(MetricsRegistry* registry, Tracer* tracer);

 private:
  Entry& SlotLocked(size_t provider);

  /// Records a transition of `provider` to `state` at virtual time
  /// `now_us`. Called with mu_ held (registry/tracer have their own
  /// locks; nothing takes mu_ after them, so order is safe).
  void PublishTransition(size_t provider, BreakerState state, uint64_t now_us);

  static constexpr double kEwmaAlpha = 0.25;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  MetricsRegistry* registry_ = nullptr;
  Tracer* tracer_ = nullptr;
};

/// One physical call leg issued by RunResilientQuorum, with the exact
/// byte/clock charges as seen by the channel stats.
struct ResilientLeg {
  size_t provider = 0;  ///< Network provider index.
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t round_trip_us = 0;
  bool ok = false;
  uint32_t attempt = 1;  ///< 1-based attempt number of its logical leg.
  bool hedge = false;
  bool deadline_exceeded = false;
};

/// Outcome of one resilient quorum fan-out.
struct QuorumResult {
  struct Response {
    size_t slot;  ///< Position in `providers` (the share evaluation point).
    std::vector<uint8_t> bytes;
  };
  std::vector<Response> responses;  ///< Successful logical legs.
  std::vector<ResilientLeg> legs;   ///< Every physical leg, in issue order.
  uint64_t clock_advance_us = 0;    ///< Total charged to the virtual clock.
  uint32_t fanout_rounds = 0;       ///< Sequential round trips performed.
  uint32_t hedges = 0;              ///< Hedge legs launched.
  uint32_t breaker_skips = 0;       ///< Admissions denied by the breaker.
  Status status;                    ///< OK once >= minimum legs succeeded.
};

/// \brief Quorum fan-out with retries, deadline, hedging and breaker.
///
/// `providers[pos]` is the network index of position `pos`; `requests`
/// holds the per-position rewritten payloads. The fan-out contacts the
/// first `desired` admitted positions of `order` (a permutation of
/// positions; empty = identity) in parallel, retries transient failures
/// per RetryPolicy (backoffs charged to the clock), hedges slow legs to
/// spare positions, then sequentially replaces still-failed legs from the
/// remaining order. Succeeds once at least `minimum` (0 = `desired`)
/// responses arrived. When `board` is non-null every leg outcome is
/// recorded after the fan-out, in leg order.
QuorumResult RunResilientQuorum(Network* network,
                                const std::vector<size_t>& providers,
                                const std::vector<Buffer>& requests,
                                size_t desired, size_t minimum,
                                const std::vector<size_t>& order,
                                const ResiliencePolicy& policy,
                                ProviderScoreboard* board);

/// One shard group's quorum parameters for RunScatterQuorum. `providers`
/// lists the group's network indices; position p is share evaluation
/// point p and `requests[p]` is its payload (shared across groups —
/// share-space rewrites depend only on the evaluation point).
struct ScatterShardSpec {
  const std::vector<size_t>* providers = nullptr;
  size_t desired = 0;
  size_t minimum = 0;  ///< 0 = `desired`.
};

/// Outcome of one multi-shard scatter fan-out. The parallel phase-1
/// round is charged to the clock ONCE, by the globally slowest leg
/// (`fanout_clock_us`); each shard's QuorumResult carries only its own
/// sequential replacement-leg advances in `clock_advance_us`, so
/// fanout_clock_us + sum(shards[i].clock_advance_us) equals the
/// VirtualClock delta.
struct ScatterQuorumResult {
  std::vector<QuorumResult> shards;  ///< One per spec, same order.
  uint64_t fanout_clock_us = 0;      ///< The shared parallel-round advance.
};

/// \brief One parallel quorum fan-out across several shard groups.
///
/// All groups' phase-1 legs are issued in a single parallel round — the
/// clock advances once, by the slowest leg anywhere — then failed legs
/// are replaced sequentially per group, exactly as in the classic
/// two-phase fan-out. Resilience knobs (retries, deadlines, hedging,
/// breaker) are NOT applied: callers with an enabled ResiliencePolicy
/// must fall back to per-group RunResilientQuorum rounds. Scoreboard
/// outcomes are folded sequentially in (group, leg) order.
ScatterQuorumResult RunScatterQuorum(Network* network,
                                     const std::vector<ScatterShardSpec>& specs,
                                     const std::vector<Buffer>& requests,
                                     ProviderScoreboard* board);

}  // namespace ssdb

#endif  // SSDB_NET_RESILIENCE_H_
