// HMAC-SHA-256 (RFC 2104) and key derivation helpers.

#ifndef SSDB_CRYPTO_HMAC_H_
#define SSDB_CRYPTO_HMAC_H_

#include <array>
#include <cstdint>

#include "common/slice.h"
#include "crypto/sha256.h"

namespace ssdb {

/// HMAC-SHA-256 of `message` under `key`.
Sha256::Digest HmacSha256(Slice key, Slice message);

/// Derives a 64-bit subkey from a master key and a label, by truncating
/// HMAC(master, label). Used to give each (table, column, purpose) its own
/// independent key material.
uint64_t DeriveSubkey64(Slice master_key, Slice label);

/// Derives a full 32-byte subkey.
Sha256::Digest DeriveSubkey(Slice master_key, Slice label);

}  // namespace ssdb

#endif  // SSDB_CRYPTO_HMAC_H_
