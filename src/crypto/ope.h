// Order-preserving encryption (OPE) baseline.
//
// Section II.A of the paper cites order-preserving encryption (Agrawal,
// Kiernan, Srikant, Xu, SIGMOD'04) as the encryption-world answer to range
// queries, and notes the counter-argument that order preservation weakens
// security. This module implements a keyed, stateless OPE in the spirit of
// Boldyreva et al.: ciphertexts are produced by a recursive binary
// descent over (plaintext-domain, ciphertext-domain) pairs where each
// split point is drawn pseudo-randomly from the key. Encryption of v is
// deterministic and strictly monotone in v.

#ifndef SSDB_CRYPTO_OPE_H_
#define SSDB_CRYPTO_OPE_H_

#include <cstdint>

#include "common/status.h"
#include "common/wide_int.h"
#include "crypto/prf.h"

namespace ssdb {

/// \brief Keyed order-preserving encryption of a 64-bit plaintext domain
/// into a 96-bit ciphertext domain.
class OrderPreservingEncryption {
 public:
  /// `plain_bits` (<= 62) is the plaintext domain width; ciphertexts use
  /// plain_bits + kExpansionBits bits.
  OrderPreservingEncryption(const Prf& prf, int plain_bits);

  static constexpr int kExpansionBits = 32;

  /// Encrypts `v` (must be < 2^plain_bits). Strictly monotone in v.
  Result<u128> Encrypt(uint64_t v) const;

  /// Decrypts an exact ciphertext produced by Encrypt.
  Result<uint64_t> Decrypt(u128 c) const;

  int plain_bits() const { return plain_bits_; }

 private:
  // Recursive descent helpers (iterative implementations).
  Prf prf_;
  int plain_bits_;
};

}  // namespace ssdb

#endif  // SSDB_CRYPTO_OPE_H_
