#include "crypto/prf.h"

#include <cstring>

#include "crypto/hmac.h"

namespace ssdb {

Prf Prf::Derive(Slice master_key, Slice label) {
  const Sha256::Digest d = HmacSha256(master_key, label);
  uint64_t k0, k1;
  static_assert(Sha256::kDigestSize >= 16);
  memcpy(&k0, d.data(), sizeof(k0));
  memcpy(&k1, d.data() + 8, sizeof(k1));
  return Prf(k0, k1);
}

uint64_t Prf::EvalUniform(uint64_t message, uint64_t tweak,
                          uint64_t bound) const {
  if (bound == 0) return 0;
  // Deterministic rejection sampling: iterate the tweak until the sample
  // falls below the largest multiple of bound. Terminates in expected
  // <= 2 rounds.
  const uint64_t limit = bound * ((~0ULL) / bound);
  uint64_t round = 0;
  for (;;) {
    const uint64_t r = Eval64(message, tweak ^ (0x9E3779B97F4A7C15ULL * round));
    if (r < limit) return r % bound;
    ++round;
  }
}

u128 Prf::EvalUniform128(uint64_t message, uint64_t tweak, u128 bound) const {
  if (bound == 0) return 0;
  const u128 limit = bound * ((~static_cast<u128>(0)) / bound);
  uint64_t round = 0;
  for (;;) {
    const u128 r = Eval128(message, tweak ^ (0xC2B2AE3D27D4EB4FULL * round));
    if (r < limit) return r % bound;
    ++round;
  }
}

}  // namespace ssdb
