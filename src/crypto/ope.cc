#include "crypto/ope.h"

namespace ssdb {

OrderPreservingEncryption::OrderPreservingEncryption(const Prf& prf,
                                                     int plain_bits)
    : prf_(prf), plain_bits_(plain_bits) {}

// Both Encrypt and Decrypt walk the same binary descent: at every node the
// plaintext interval [pl, ph) is split at its midpoint pm, and a cipher
// split point cm is drawn pseudo-randomly (keyed on the node, so both
// directions agree) such that each cipher half can still hold its
// plaintext half. Two plaintexts diverge at exactly one node, where the
// smaller goes to the strictly-smaller cipher interval — hence order
// preservation and injectivity.

Result<u128> OrderPreservingEncryption::Encrypt(uint64_t v) const {
  if (plain_bits_ < 1 || plain_bits_ > 62) {
    return Status::InvalidArgument("OPE: plain_bits out of range");
  }
  if (v >> plain_bits_ != 0) {
    return Status::OutOfRange("OPE: plaintext outside domain");
  }
  uint64_t pl = 0, ph = 1ULL << plain_bits_;           // [pl, ph)
  u128 cl = 0, ch = static_cast<u128>(1)
                        << (plain_bits_ + kExpansionBits);  // [cl, ch)
  while (ph - pl > 1) {
    const uint64_t pm = pl + (ph - pl) / 2;
    const uint64_t left_n = pm - pl;
    const uint64_t right_n = ph - pm;
    const u128 lo = cl + left_n;
    const u128 hi = ch - right_n;  // cm in [lo, hi]
    const u128 span = hi - lo + 1;
    const u128 cm = lo + prf_.EvalUniform128(pl ^ (ph << 1), ph, span);
    if (v < pm) {
      ph = pm;
      ch = cm;
    } else {
      pl = pm;
      cl = cm;
    }
  }
  // Single plaintext left; place it deterministically inside its interval.
  const u128 span = ch - cl;
  return cl + prf_.EvalUniform128(pl, 0x5EAF00D, span);
}

Result<uint64_t> OrderPreservingEncryption::Decrypt(u128 c) const {
  if (plain_bits_ < 1 || plain_bits_ > 62) {
    return Status::InvalidArgument("OPE: plain_bits out of range");
  }
  if (c >> (plain_bits_ + kExpansionBits) != 0) {
    return Status::OutOfRange("OPE: ciphertext outside domain");
  }
  uint64_t pl = 0, ph = 1ULL << plain_bits_;
  u128 cl = 0, ch = static_cast<u128>(1) << (plain_bits_ + kExpansionBits);
  while (ph - pl > 1) {
    const uint64_t pm = pl + (ph - pl) / 2;
    const uint64_t left_n = pm - pl;
    const uint64_t right_n = ph - pm;
    const u128 lo = cl + left_n;
    const u128 hi = ch - right_n;
    const u128 span = hi - lo + 1;
    const u128 cm = lo + prf_.EvalUniform128(pl ^ (ph << 1), ph, span);
    if (c < cm) {
      ph = pm;
      ch = cm;
    } else {
      pl = pm;
      cl = cm;
    }
  }
  // Verify round trip (the ciphertext may be a forgery / not produced by
  // Encrypt).
  SSDB_ASSIGN_OR_RETURN(u128 expect, Encrypt(pl));
  if (expect != c) {
    return Status::Corruption("OPE: ciphertext was not produced by this key");
  }
  return pl;
}

}  // namespace ssdb
