// Keyed pseudo-random function abstraction.
//
// Deterministic secret sharing (exact-match attributes, Section V.A) and
// the order-preserving slot hashes h_a, h_b, h_c (Section IV) need
// per-value randomness that the data source can recompute but providers
// cannot predict. Prf wraps SipHash-2-4 under a derived key; PrfStream
// expands one (domain, value) pair into as many 64-bit words as needed.

#ifndef SSDB_CRYPTO_PRF_H_
#define SSDB_CRYPTO_PRF_H_

#include <cstdint>

#include "common/hash.h"
#include "common/slice.h"
#include "common/wide_int.h"

namespace ssdb {

/// \brief Keyed PRF with 64- and 128-bit outputs.
class Prf {
 public:
  /// Builds a PRF from a 128-bit key.
  Prf(uint64_t k0, uint64_t k1) : key_{k0, k1} {}
  /// Derives a PRF from a master key and a label (HMAC-based).
  static Prf Derive(Slice master_key, Slice label);

  /// PRF_64(message, tweak).
  uint64_t Eval64(uint64_t message, uint64_t tweak = 0) const {
    return SipHash24U64(key_, message, tweak);
  }

  /// PRF over arbitrary bytes.
  uint64_t EvalBytes(Slice message) const { return SipHash24(key_, message); }

  /// PRF_128(message, tweak) from two domain-separated 64-bit calls.
  u128 Eval128(uint64_t message, uint64_t tweak = 0) const {
    const uint64_t lo = Eval64(message, tweak * 2 + 1);
    const uint64_t hi = Eval64(message, tweak * 2 + 2);
    return MakeU128(hi, lo);
  }

  /// Uniform value in [0, bound) derived from (message, tweak).
  /// Bias is < 2^-64/bound * bound ~ negligible for bound << 2^64 because
  /// several rejection rounds are folded in deterministically.
  uint64_t EvalUniform(uint64_t message, uint64_t tweak, uint64_t bound) const;

  /// Uniform 128-bit value in [0, bound).
  u128 EvalUniform128(uint64_t message, uint64_t tweak, u128 bound) const;

 private:
  SipHashKey key_;
};

}  // namespace ssdb

#endif  // SSDB_CRYPTO_PRF_H_
