#include "crypto/hmac.h"

#include <cstring>

namespace ssdb {

Sha256::Digest HmacSha256(Slice key, Slice message) {
  uint8_t key_block[64] = {0};
  if (key.size() > 64) {
    const Sha256::Digest kd = Sha256::Hash(key);
    memcpy(key_block, kd.data(), kd.size());
  } else {
    memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(Slice(ipad, 64));
  inner.Update(message);
  const Sha256::Digest inner_digest = inner.Finalize();

  Sha256 outer;
  outer.Update(Slice(opad, 64));
  outer.Update(Slice(inner_digest.data(), inner_digest.size()));
  return outer.Finalize();
}

uint64_t DeriveSubkey64(Slice master_key, Slice label) {
  const Sha256::Digest d = HmacSha256(master_key, label);
  uint64_t out;
  memcpy(&out, d.data(), sizeof(out));
  return out;
}

Sha256::Digest DeriveSubkey(Slice master_key, Slice label) {
  return HmacSha256(master_key, label);
}

}  // namespace ssdb
