#include "crypto/aes.h"

#include <cstring>

namespace ssdb {

namespace {

constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

uint8_t inv_sbox[256];
bool inv_sbox_init = [] {
  for (int i = 0; i < 256; ++i) inv_sbox[kSbox[i]] = static_cast<uint8_t>(i);
  return true;
}();

constexpr uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

inline uint8_t Xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

inline uint8_t Mul(uint8_t a, uint8_t b) {
  uint8_t r = 0;
  while (b != 0) {
    if (b & 1) r ^= a;
    a = Xtime(a);
    b >>= 1;
  }
  return r;
}

}  // namespace

Aes128::Aes128(const Key& key) {
  (void)inv_sbox_init;
  for (int i = 0; i < 4; ++i) {
    round_keys_[i] = (static_cast<uint32_t>(key[4 * i]) << 24) |
                     (static_cast<uint32_t>(key[4 * i + 1]) << 16) |
                     (static_cast<uint32_t>(key[4 * i + 2]) << 8) |
                     static_cast<uint32_t>(key[4 * i + 3]);
  }
  for (int i = 4; i < 44; ++i) {
    uint32_t t = round_keys_[i - 1];
    if (i % 4 == 0) {
      t = (t << 8) | (t >> 24);  // RotWord
      t = (static_cast<uint32_t>(kSbox[(t >> 24) & 0xFF]) << 24) |
          (static_cast<uint32_t>(kSbox[(t >> 16) & 0xFF]) << 16) |
          (static_cast<uint32_t>(kSbox[(t >> 8) & 0xFF]) << 8) |
          static_cast<uint32_t>(kSbox[t & 0xFF]);
      t ^= static_cast<uint32_t>(kRcon[i / 4 - 1]) << 24;
    }
    round_keys_[i] = round_keys_[i - 4] ^ t;
  }
}

namespace {

void AddRoundKey(uint8_t state[16], const uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    state[4 * c] ^= static_cast<uint8_t>(rk[c] >> 24);
    state[4 * c + 1] ^= static_cast<uint8_t>(rk[c] >> 16);
    state[4 * c + 2] ^= static_cast<uint8_t>(rk[c] >> 8);
    state[4 * c + 3] ^= static_cast<uint8_t>(rk[c]);
  }
}

void SubBytes(uint8_t state[16]) {
  for (int i = 0; i < 16; ++i) state[i] = kSbox[state[i]];
}

void InvSubBytes(uint8_t state[16]) {
  for (int i = 0; i < 16; ++i) state[i] = inv_sbox[state[i]];
}

// State layout: state[4*c + r] = byte at row r, column c (FIPS order).
void ShiftRows(uint8_t s[16]) {
  uint8_t t;
  // Row 1: shift left 1.
  t = s[1];
  s[1] = s[5];
  s[5] = s[9];
  s[9] = s[13];
  s[13] = t;
  // Row 2: shift left 2.
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  // Row 3: shift left 3 (== right 1).
  t = s[15];
  s[15] = s[11];
  s[11] = s[7];
  s[7] = s[3];
  s[3] = t;
}

void InvShiftRows(uint8_t s[16]) {
  uint8_t t;
  // Row 1: shift right 1.
  t = s[13];
  s[13] = s[9];
  s[9] = s[5];
  s[5] = s[1];
  s[1] = t;
  // Row 2: shift right 2.
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  // Row 3: shift right 3 (== left 1).
  t = s[3];
  s[3] = s[7];
  s[7] = s[11];
  s[11] = s[15];
  s[15] = t;
}

void MixColumns(uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = s + 4 * c;
    const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<uint8_t>(Xtime(a0) ^ (Xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<uint8_t>(a0 ^ Xtime(a1) ^ (Xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<uint8_t>(a0 ^ a1 ^ Xtime(a2) ^ (Xtime(a3) ^ a3));
    col[3] = static_cast<uint8_t>((Xtime(a0) ^ a0) ^ a1 ^ a2 ^ Xtime(a3));
  }
}

void InvMixColumns(uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = s + 4 * c;
    const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = Mul(a0, 0x0e) ^ Mul(a1, 0x0b) ^ Mul(a2, 0x0d) ^ Mul(a3, 0x09);
    col[1] = Mul(a0, 0x09) ^ Mul(a1, 0x0e) ^ Mul(a2, 0x0b) ^ Mul(a3, 0x0d);
    col[2] = Mul(a0, 0x0d) ^ Mul(a1, 0x09) ^ Mul(a2, 0x0e) ^ Mul(a3, 0x0b);
    col[3] = Mul(a0, 0x0b) ^ Mul(a1, 0x0d) ^ Mul(a2, 0x09) ^ Mul(a3, 0x0e);
  }
}

}  // namespace

void Aes128::EncryptBlock(uint8_t block[kBlockSize]) const {
  AddRoundKey(block, round_keys_.data());
  for (int round = 1; round < 10; ++round) {
    SubBytes(block);
    ShiftRows(block);
    MixColumns(block);
    AddRoundKey(block, round_keys_.data() + 4 * round);
  }
  SubBytes(block);
  ShiftRows(block);
  AddRoundKey(block, round_keys_.data() + 40);
}

void Aes128::DecryptBlock(uint8_t block[kBlockSize]) const {
  AddRoundKey(block, round_keys_.data() + 40);
  for (int round = 9; round >= 1; --round) {
    InvShiftRows(block);
    InvSubBytes(block);
    AddRoundKey(block, round_keys_.data() + 4 * round);
    InvMixColumns(block);
  }
  InvShiftRows(block);
  InvSubBytes(block);
  AddRoundKey(block, round_keys_.data());
}

void AesCtr::Transform(uint8_t* data, size_t n, uint64_t counter0) const {
  uint64_t counter = counter0;
  size_t off = 0;
  while (off < n) {
    uint8_t keystream[Aes128::kBlockSize];
    memcpy(keystream, &nonce_, 8);
    memcpy(keystream + 8, &counter, 8);
    cipher_.EncryptBlock(keystream);
    const size_t take = std::min(n - off, Aes128::kBlockSize);
    for (size_t i = 0; i < take; ++i) data[off + i] ^= keystream[i];
    off += take;
    ++counter;
  }
}

std::vector<uint8_t> AesCtr::TransformCopy(Slice in, uint64_t counter0) const {
  std::vector<uint8_t> out(in.data(), in.data() + in.size());
  Transform(out.data(), out.size(), counter0);
  return out;
}

}  // namespace ssdb
