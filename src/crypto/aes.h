// AES-128 (FIPS 197), implemented from scratch, plus CTR mode.
//
// This is the workhorse of the encryption-based data-outsourcing baseline
// (NetDB2 / Hacigumus et al., Section II.A of the paper): tuples are
// AES-CTR encrypted before upload and decrypted after retrieval. It is a
// straightforward table-based implementation — adequate for measuring the
// computational overhead the paper attributes to encryption (E1/E7), not
// a constant-time production cipher.

#ifndef SSDB_CRYPTO_AES_H_
#define SSDB_CRYPTO_AES_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/slice.h"

namespace ssdb {

/// \brief AES-128 block cipher with an expanded key schedule.
class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;
  using Block = std::array<uint8_t, kBlockSize>;
  using Key = std::array<uint8_t, kKeySize>;

  explicit Aes128(const Key& key);

  /// Encrypts one 16-byte block in place.
  void EncryptBlock(uint8_t block[kBlockSize]) const;
  /// Decrypts one 16-byte block in place.
  void DecryptBlock(uint8_t block[kBlockSize]) const;

 private:
  std::array<uint32_t, 44> round_keys_;
};

/// \brief AES-128-CTR stream transform (encrypt == decrypt).
class AesCtr {
 public:
  AesCtr(const Aes128::Key& key, uint64_t nonce)
      : cipher_(key), nonce_(nonce) {}

  /// XORs the keystream for block offset `counter0` onwards into
  /// `data[0..n)` in place.
  void Transform(uint8_t* data, size_t n, uint64_t counter0 = 0) const;

  /// Convenience: returns the transformed copy of `in`.
  std::vector<uint8_t> TransformCopy(Slice in, uint64_t counter0 = 0) const;

 private:
  Aes128 cipher_;
  uint64_t nonce_;
};

}  // namespace ssdb

#endif  // SSDB_CRYPTO_AES_H_
