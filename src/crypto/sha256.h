// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by HMAC-SHA-256 (integrity tags, PRF key derivation) and by the
// encryption-based baseline the paper argues against (Section II.A).

#ifndef SSDB_CRYPTO_SHA256_H_
#define SSDB_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace ssdb {

/// \brief Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256() { Reset(); }

  /// Resets to the initial state.
  void Reset();
  /// Absorbs more input.
  void Update(Slice data);
  /// Finalizes and returns the 32-byte digest. The hasher must be Reset()
  /// before reuse.
  Digest Finalize();

  /// One-shot convenience.
  static Digest Hash(Slice data) {
    Sha256 h;
    h.Update(data);
    return h.Finalize();
  }

  /// Hex string of a digest (for tests/logs).
  static std::string ToHex(const Digest& d);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace ssdb

#endif  // SSDB_CRYPTO_SHA256_H_
