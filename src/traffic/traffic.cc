#include "traffic/traffic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>
#include <sstream>
#include <unordered_set>

#include "common/hash.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

// Per-tenant sub-streams under the tenant's forked seed. The DATA stream
// seeds the EmployeeGenerator whose rows Setup bulk loads AND whose
// regenerated name sequence is the tenant's point-read / update key pool,
// so scheduled keys always refer to loaded rows. The OP stream drives the
// arrival process and the operation dice; the INSERT stream feeds fresh
// rows for kInsert so inserts never consume the key-pool generator.
constexpr uint64_t kDataStream = 1;
constexpr uint64_t kOpStream = 2;
constexpr uint64_t kInsertStream = 3;

constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// The tenant's Fork stream id: FNV-1a of its NAME, so the stream follows
/// the tenant across spec-vector positions.
uint64_t TenantStreamKey(const std::string& name) {
  return Fnv1a64(Slice(name));
}

/// Continues an FNV-1a fold over `data` from state `h`.
uint64_t FoldFnv(uint64_t h, const std::string& data) {
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Next inter-arrival gap in virtual microseconds (always >= 1 so
/// arrivals are strictly ordered within a tenant).
uint64_t NextArrivalGapUs(Rng* rng, ArrivalProcess process, double qps) {
  const double mean_us = 1e6 / qps;
  const double u = rng->NextDouble();  // [0, 1)
  double gap_us = 0.0;
  switch (process) {
    case ArrivalProcess::kPoisson:
      gap_us = -std::log(1.0 - u) * mean_us;  // 1-u in (0, 1]
      break;
    case ArrivalProcess::kUniform:
      gap_us = u * 2.0 * mean_us;  // same mean, bounded tail
      break;
  }
  if (gap_us < 1.0) return 1;
  return static_cast<uint64_t>(gap_us);
}

/// Deterministic text form of one answer, folded into the per-tenant
/// fingerprints (rows arrive in deterministic row-id order, groups in
/// first-appearance order, so the string is run-invariant).
std::string DescribeAnswer(const QueryResult& r) {
  std::ostringstream out;
  for (const auto& row : r.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i].ToString();
    }
    out << ';';
  }
  out << "|agg=" << r.aggregate_int << ",count=" << r.count;
  for (const GroupResult& g : r.groups) {
    out << "|g=" << g.key.ToString() << ":sum=" << g.sum << ",n=" << g.count;
  }
  return out.str();
}

/// Token bucket charged in virtual time; tokens refill from the arrival
/// timeline only, so admission is a pure function of the arrival sequence.
struct TokenBucket {
  bool enabled = false;
  double tokens = 0.0;
  double burst = 0.0;
  double refill_per_us = 0.0;
  uint64_t last_us = 0;

  bool Admit(uint64_t arrival_us) {
    if (!enabled) return true;
    tokens = std::min(
        burst, tokens + static_cast<double>(arrival_us - last_us) * refill_per_us);
    last_us = arrival_us;
    if (tokens < 1.0) return false;
    tokens -= 1.0;
    return true;
  }
};

using MinHeap =
    std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<uint64_t>>;

/// Per-tenant metric handles; Run resets exactly these so each report
/// covers its own window without clobbering unrelated series.
struct TenantSeries {
  MetricCounter* offered;
  MetricCounter* completed;
  MetricCounter* failed;
  MetricCounter* admitted;
  MetricCounter* rejected_queue;
  MetricCounter* rejected_quota;
  MetricHistogram* latency;
  MetricHistogram* queue_delay;
  MetricHistogram* service;

  static TenantSeries For(MetricsRegistry* reg, const std::string& tenant) {
    const MetricLabels t = {{"tenant", tenant}};
    TenantSeries s;
    s.offered = reg->GetCounter("ssdb_traffic_offered_total", t);
    s.completed = reg->GetCounter("ssdb_traffic_completed_total", t);
    s.failed = reg->GetCounter("ssdb_traffic_failed_total", t);
    s.admitted = reg->GetCounter("ssdb_admission_admitted_total", t);
    s.rejected_queue = reg->GetCounter(
        "ssdb_admission_rejected_total",
        {{"tenant", tenant}, {"reason", "queue_depth"}});
    s.rejected_quota = reg->GetCounter(
        "ssdb_admission_rejected_total", {{"tenant", tenant}, {"reason", "quota"}});
    s.latency = reg->GetHistogram("ssdb_traffic_latency_us", t);
    s.queue_delay = reg->GetHistogram("ssdb_traffic_queue_delay_us", t);
    s.service = reg->GetHistogram("ssdb_traffic_service_us", t);
    return s;
  }

  void Reset() {
    offered->Reset();
    completed->Reset();
    failed->Reset();
    admitted->Reset();
    rejected_queue->Reset();
    rejected_quota->Reset();
    latency->Reset();
    queue_delay->Reset();
    service->Reset();
  }
};

/// Handles on the client-charged `ssdb_meter_*{tenant}` series. Run
/// resets them at entry (each report meters its own window) and reads
/// mutation meter samples as deltas around the barrier call — mutations
/// carry no QueryTrace, and they run alone, so the delta is theirs.
struct MeterSeries {
  MetricCounter* requests;
  MetricCounter* bytes_sent;
  MetricCounter* bytes_received;
  MetricCounter* rounds;
  MetricCounter* clock_us;

  static MeterSeries For(MetricsRegistry* reg, const std::string& tenant) {
    const MetricLabels t = {{"tenant", tenant}};
    MeterSeries m;
    m.requests = reg->GetCounter("ssdb_meter_requests_total", t);
    m.bytes_sent = reg->GetCounter("ssdb_meter_bytes_sent_total", t);
    m.bytes_received = reg->GetCounter("ssdb_meter_bytes_received_total", t);
    m.rounds = reg->GetCounter("ssdb_meter_rounds_total", t);
    m.clock_us = reg->GetCounter("ssdb_meter_clock_us_total", t);
    return m;
  }

  void Reset() {
    requests->Reset();
    bytes_sent->Reset();
    bytes_received->Reset();
    rounds->Reset();
    clock_us->Reset();
  }

  MeterSample Read() const {
    MeterSample m;
    m.requests = requests->value();
    m.bytes_sent = bytes_sent->value();
    m.bytes_received = bytes_received->value();
    m.rounds = rounds->value();
    m.clock_us = clock_us->value();
    return m;
  }
};

MeterSample Minus(const MeterSample& after, const MeterSample& before) {
  MeterSample d;
  d.requests = after.requests - before.requests;
  d.bytes_sent = after.bytes_sent - before.bytes_sent;
  d.bytes_received = after.bytes_received - before.bytes_received;
  d.rounds = after.rounds - before.rounds;
  d.clock_us = after.clock_us - before.clock_us;
  return d;
}

/// A read's meter sample, straight from its QueryTrace — the exact
/// figures the client charged to the tenant's meter series, so monitor
/// window sums reconcile with the registry by construction.
MeterSample MeterFromTrace(const QueryTrace& trace) {
  MeterSample m;
  m.requests = 1;
  m.bytes_sent = trace.total_bytes_sent();
  m.bytes_received = trace.total_bytes_received();
  m.rounds = trace.total_round_trips();
  m.clock_us = trace.total_clock_us();
  return m;
}

void AppendTenantJson(std::ostringstream* out, const TenantTraffic& t) {
  *out << "{\"tenant\": \"" << t.tenant << "\", \"offered\": " << t.offered
       << ", \"admitted\": " << t.admitted << ", \"completed\": " << t.completed
       << ", \"failed\": " << t.failed
       << ", \"rejected_queue\": " << t.rejected_queue
       << ", \"rejected_quota\": " << t.rejected_quota
       << ", \"p50_us\": " << t.p50_us << ", \"p99_us\": " << t.p99_us
       << ", \"p999_us\": " << t.p999_us
       << ", \"queue_delay_p99_us\": " << t.queue_delay_p99_us
       << ", \"service_p50_us\": " << t.service_p50_us
       << ", \"latency_sum_us\": " << t.latency_sum_us
       << ", \"answers_fingerprint\": \"" << t.answers_fingerprint << "\"}";
}

}  // namespace

std::vector<TrafficRequest> BuildTrafficSchedule(
    const std::vector<TenantSpec>& tenants, uint64_t seed) {
  std::vector<TrafficRequest> schedule;
  const Rng root(seed);
  for (size_t t = 0; t < tenants.size(); ++t) {
    const TenantSpec& spec = tenants[t];
    const Rng tenant_root(root.ForkSeed(TenantStreamKey(spec.name)));

    // Regenerate the preloaded name sequence: same seed as Setup's
    // generator, so these are exactly the loaded keys.
    EmployeeGenerator pool_gen(tenant_root.ForkSeed(kDataStream),
                               Distribution::kUniform);
    std::vector<std::string> keys;
    keys.reserve(spec.rows);
    for (size_t i = 0; i < spec.rows; ++i) keys.push_back(pool_gen.Next().name);

    EmployeeGenerator insert_gen(tenant_root.ForkSeed(kInsertStream),
                                 Distribution::kUniform);
    Rng op_rng = tenant_root.Fork(kOpStream);

    const double qps = spec.arrival_qps > 0 ? spec.arrival_qps : 1.0;
    double mix_total = spec.mix.total();
    uint64_t arrival_us = 0;
    for (size_t seq = 0; seq < spec.requests; ++seq) {
      arrival_us += NextArrivalGapUs(&op_rng, spec.arrivals, qps);

      TrafficRequest req;
      req.tenant = static_cast<uint32_t>(t);
      req.seq = static_cast<uint32_t>(seq);
      req.arrival_us = arrival_us;

      // Fixed draw order (dice, then op-specific draws) keeps the stream
      // a pure function of the tenant seed.
      double dice =
          mix_total > 0 ? op_rng.NextDouble() * mix_total : 0.0;
      if (mix_total <= 0 || (dice -= spec.mix.point_read) < 0) {
        req.op = TrafficOp::kPointRead;
        req.key = keys.empty() ? insert_gen.Next().name
                               : keys[op_rng.Uniform(keys.size())];
      } else if ((dice -= spec.mix.range_scan) < 0) {
        req.op = TrafficOp::kRangeScan;
        req.a = op_rng.UniformInt(EmployeeGenerator::kSalaryLo,
                                  EmployeeGenerator::kSalaryHi - 2000);
        req.b = req.a + 2000;
      } else if ((dice -= spec.mix.aggregate) < 0) {
        req.op = TrafficOp::kAggregate;
        req.a = op_rng.UniformInt(0, EmployeeGenerator::kMaxDept);
        req.b = static_cast<int64_t>(op_rng.Uniform(3));  // variant
      } else if ((dice -= spec.mix.update) < 0) {
        req.op = TrafficOp::kUpdate;
        req.key = keys.empty() ? insert_gen.Next().name
                               : keys[op_rng.Uniform(keys.size())];
        req.a = op_rng.UniformInt(EmployeeGenerator::kSalaryLo,
                                  EmployeeGenerator::kSalaryHi);
      } else if ((dice -= spec.mix.insert) < 0) {
        req.op = TrafficOp::kInsert;
        EmployeeRow row = insert_gen.Next();
        req.key = std::move(row.name);
        req.a = row.salary;
        req.b = row.dept;
      } else {
        req.op = TrafficOp::kJoin;
        req.a = op_rng.UniformInt(EmployeeGenerator::kSalaryLo,
                                  EmployeeGenerator::kSalaryHi - 5000);
        req.b = req.a + 5000;
      }
      schedule.push_back(std::move(req));
    }
  }
  // Merge the per-tenant streams; the (tenant, seq) tiebreak makes the
  // global order total and spec-order stable at equal arrival times.
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const TrafficRequest& a, const TrafficRequest& b) {
                     if (a.arrival_us != b.arrival_us)
                       return a.arrival_us < b.arrival_us;
                     if (a.tenant != b.tenant) return a.tenant < b.tenant;
                     return a.seq < b.seq;
                   });
  return schedule;
}

std::string TrafficReport::ExportJson() const {
  std::ostringstream out;
  out << "{\n  \"last_arrival_us\": " << last_arrival_us
      << ",\n  \"drained_us\": " << drained_us << ",\n  \"global\": ";
  AppendTenantJson(&out, global);
  out << ",\n  \"tenants\": [\n";
  for (size_t i = 0; i < tenants.size(); ++i) {
    out << "    ";
    AppendTenantJson(&out, tenants[i]);
    if (i + 1 < tenants.size()) out << ",";
    out << "\n";
  }
  out << "  ]";
  if (monitored) out << ",\n  \"monitor\": " << monitor.ExportJson();
  out << "\n}\n";
  return out.str();
}

TrafficHarness::TrafficHarness(OutsourcedDatabase* db,
                               std::vector<TenantSpec> tenants,
                               TrafficOptions options)
    : db_(db), tenants_(std::move(tenants)), options_(std::move(options)) {}

Status TrafficHarness::Setup() {
  if (db_ == nullptr) return Status::InvalidArgument("null database");
  if (tenants_.empty()) return Status::InvalidArgument("no tenants");
  std::unordered_set<std::string> seen;
  for (const TenantSpec& spec : tenants_) {
    if (spec.name.empty()) return Status::InvalidArgument("empty tenant name");
    if (!seen.insert(spec.name).second) {
      return Status::InvalidArgument("duplicate tenant name: " + spec.name);
    }
  }
  const Rng root(options_.seed);
  for (const TenantSpec& spec : tenants_) {
    const Rng tenant_root(root.ForkSeed(TenantStreamKey(spec.name)));
    SSDB_RETURN_IF_ERROR(
        db_->CreateTable(EmployeeGenerator::EmployeesSchema(spec.name)));
    if (spec.rows == 0) continue;
    EmployeeGenerator gen(tenant_root.ForkSeed(kDataStream),
                          Distribution::kUniform);
    SSDB_RETURN_IF_ERROR(db_->BulkLoad(spec.name, gen.Rows(spec.rows)));
  }
  setup_done_ = true;
  return Status::OK();
}

Result<TrafficReport> TrafficHarness::Run() {
  if (!setup_done_) {
    return Status::InvalidArgument("TrafficHarness::Setup must run first");
  }
  const std::vector<TrafficRequest> schedule =
      BuildTrafficSchedule(tenants_, options_.seed);

  MetricsRegistry* reg = &db_->metrics();
  std::vector<TenantSeries> series;
  series.reserve(tenants_.size());
  for (const TenantSpec& spec : tenants_) {
    series.push_back(TenantSeries::For(reg, spec.name));
    series.back().Reset();
  }
  TenantSeries global_series = TenantSeries::For(reg, "_all");
  global_series.Reset();

  // Meter series are charged by the client (every request below carries a
  // RequestContext); reset them so Σ monitor windows == registry totals.
  std::vector<MeterSeries> meters;
  meters.reserve(tenants_.size());
  for (const TenantSpec& spec : tenants_) {
    meters.push_back(MeterSeries::For(reg, spec.name));
    meters.back().Reset();
  }
  MeterSeries global_meter = MeterSeries::For(reg, "_all");
  global_meter.Reset();

  // The monitor baselines its registry-delta inputs (breaker opens, WAL
  // truncations) at construction, so it must exist BEFORE execution:
  // faults injected during the run are then window-attributed deltas.
  const bool monitored = options_.monitor;
  Monitor monitor(reg, options_.monitor_options);
  std::vector<MeterSample> samples;
  std::vector<QueryTrace> traces;
  if (monitored) {
    samples.resize(schedule.size());
    traces.resize(schedule.size());
    reg->GetCounter("ssdb_monitor_windows_total")->Reset();
    reg->GetCounter("ssdb_monitor_windows_dropped_total")->Reset();
    reg->GetCounter("ssdb_monitor_slow_queries_total")->Reset();
    for (const AlertRule& rule : options_.monitor_options.rules) {
      reg->GetCounter("ssdb_alerts_fired_total", {{"rule", rule.name}})->Reset();
      reg->GetCounter("ssdb_alerts_resolved_total", {{"rule", rule.name}})
          ->Reset();
    }
    for (const TenantSpec& spec : tenants_) {
      reg->GetCounter("ssdb_meter_cost_microcredits_total",
                      {{"tenant", spec.name}})
          ->Reset();
    }
    reg->GetCounter("ssdb_meter_cost_microcredits_total", {{"tenant", "_all"}})
        ->Reset();
  }

  // Depth admission must observe every earlier completion before ruling
  // on an arrival, so any depth limit (or the fault-drill hook, which is
  // promised request-at-a-time order) forces the sequential path.
  bool any_depth_limit = false;
  std::vector<TokenBucket> buckets(tenants_.size());
  for (size_t t = 0; t < tenants_.size(); ++t) {
    const TenantSpec& spec = tenants_[t];
    if (spec.max_queue_depth > 0) any_depth_limit = true;
    if (spec.quota_qps > 0) {
      buckets[t].enabled = true;
      buckets[t].refill_per_us = spec.quota_qps / 1e6;
      buckets[t].burst = spec.quota_burst > 0
                             ? spec.quota_burst
                             : std::max(1.0, 0.05 * spec.quota_qps);
      buckets[t].tokens = buckets[t].burst;
    }
  }
  const bool batching = options_.exec_batch && !options_.before_request &&
                        !any_depth_limit && options_.exec_batch_max > 1;

  TrafficReport report;
  report.requests.resize(schedule.size());
  std::vector<std::string> answers(schedule.size());
  if (!schedule.empty()) report.last_arrival_us = schedule.back().arrival_us;

  // FIFO queue station: earliest-free times of the modelled servers.
  MinHeap servers;
  for (size_t i = 0; i < std::max<size_t>(1, options_.service_workers); ++i) {
    servers.push(0);
  }
  std::vector<MinHeap> outstanding(tenants_.size());  // admitted completions

  // Executes schedule[i] (admitted) and fills service + answer.
  // Reads and joins are charged their exact per-query virtual-clock total
  // (QueryTrace reconciles with the deployment clock); mutations carry no
  // trace, so they are charged the clock delta they cause — they run as
  // barriers, so the delta is theirs alone.
  size_t admitted_index = 0;
  auto execute_one = [&](size_t i) {
    const TrafficRequest& req = schedule[i];
    const TenantSpec& spec = tenants_[req.tenant];
    RequestOutcome& out = report.requests[i];
    if (options_.before_request) options_.before_request(admitted_index);
    ++admitted_index;
    const RequestContext ctx{spec.name};
    // Captures a completed read's meter sample and trace for the monitor.
    auto record_read = [&](QueryResult&& qr) {
      out.service_us = qr.trace.total_clock_us();
      answers[i] = DescribeAnswer(qr);
      if (monitored) {
        samples[i] = MeterFromTrace(qr.trace);
        traces[i] = std::move(qr.trace);
      }
    };
    switch (req.op) {
      case TrafficOp::kPointRead: {
        auto r = db_->Execute(
            Query::Select(spec.name).Where(Eq("name", Value::Str(req.key))),
            ctx);
        if (!r.ok()) {
          out.status = r.status();
          return;
        }
        record_read(std::move(r.value()));
        return;
      }
      case TrafficOp::kRangeScan: {
        auto r = db_->Execute(Query::Select(spec.name).Where(Between(
                                  "salary", Value::Int(req.a), Value::Int(req.b))),
                              ctx);
        if (!r.ok()) {
          out.status = r.status();
          return;
        }
        record_read(std::move(r.value()));
        return;
      }
      case TrafficOp::kAggregate: {
        Query q = Query::Select(spec.name);
        switch (req.b) {
          case 0:
            q.Where(Eq("dept", Value::Int(req.a)))
                .Aggregate(AggregateOp::kSum, "salary");
            break;
          case 1:
            q.Where(Eq("dept", Value::Int(req.a)))
                .Aggregate(AggregateOp::kCount);
            break;
          default:
            q.Aggregate(AggregateOp::kSum, "salary").GroupBy("dept");
            break;
        }
        auto r = db_->Execute(q, ctx);
        if (!r.ok()) {
          out.status = r.status();
          return;
        }
        record_read(std::move(r.value()));
        return;
      }
      case TrafficOp::kUpdate: {
        const uint64_t t0 = db_->simulated_time_us();
        const MeterSample m0 =
            monitored ? meters[req.tenant].Read() : MeterSample();
        auto r = db_->Update(spec.name, {Eq("name", Value::Str(req.key))},
                             "salary", Value::Int(req.a), ctx);
        if (!r.ok()) {
          out.status = r.status();
          return;
        }
        out.service_us = db_->simulated_time_us() - t0;
        if (monitored) samples[i] = Minus(meters[req.tenant].Read(), m0);
        answers[i] = "|updated=" + std::to_string(r.value());
        return;
      }
      case TrafficOp::kInsert: {
        const uint64_t t0 = db_->simulated_time_us();
        const MeterSample m0 =
            monitored ? meters[req.tenant].Read() : MeterSample();
        Status s = db_->Insert(
            spec.name, {{Value::Str(req.key), Value::Int(req.a),
                         Value::Int(req.b)}},
            ctx);
        if (!s.ok()) {
          out.status = s;
          return;
        }
        out.service_us = db_->simulated_time_us() - t0;
        if (monitored) samples[i] = Minus(meters[req.tenant].Read(), m0);
        answers[i] = "|insert=1";
        return;
      }
      case TrafficOp::kJoin: {
        JoinQuery join;
        join.left_table = spec.name;
        join.left_column = "name";
        join.right_table = spec.name;
        join.right_column = "name";
        join.left_predicates = {
            Between("salary", Value::Int(req.a), Value::Int(req.b))};
        auto r = db_->Execute(join, ctx);
        if (!r.ok()) {
          out.status = r.status();
          return;
        }
        record_read(std::move(r.value()));
        return;
      }
    }
  };

  // Advances the queue model for admitted request i; requires arrival
  // order. A completion at exactly the arrival instant frees its server
  // (and its depth slot) for this arrival.
  auto queue_step = [&](size_t i) {
    const TrafficRequest& req = schedule[i];
    RequestOutcome& out = report.requests[i];
    const uint64_t start = std::max(req.arrival_us, servers.top());
    servers.pop();
    const uint64_t completion = start + out.service_us;
    servers.push(completion);
    out.queue_delay_us = start - req.arrival_us;
    out.latency_us = completion - req.arrival_us;
    outstanding[req.tenant].push(completion);
    if (completion > report.drained_us) report.drained_us = completion;
  };

  // Admission for schedule[i]: depth first (is there room in the
  // tenant's queue?), then quota (does the contract allow it?); a
  // depth-rejected arrival consumes no token. kQueue/kQuota mark the
  // rejection reason for the accounting pass.
  enum class Admit { kOk, kQueue, kQuota };
  std::vector<Admit> verdict(schedule.size(), Admit::kOk);
  auto admit = [&](size_t i) -> Admit {
    const TrafficRequest& req = schedule[i];
    const TenantSpec& spec = tenants_[req.tenant];
    if (spec.max_queue_depth > 0) {
      MinHeap& heap = outstanding[req.tenant];
      while (!heap.empty() && heap.top() <= req.arrival_us) heap.pop();
      if (heap.size() >= spec.max_queue_depth) return Admit::kQueue;
    }
    if (!buckets[req.tenant].Admit(req.arrival_us)) return Admit::kQuota;
    return Admit::kOk;
  };
  auto reject = [&](size_t i, Admit why) {
    verdict[i] = why;
    const TenantSpec& spec = tenants_[schedule[i].tenant];
    report.requests[i].status = Status::ResourceExhausted(
        "tenant " + spec.name +
        (why == Admit::kQueue ? ": queue depth limit" : ": quota exhausted"));
  };

  if (!batching) {
    // Sequential: admission, execution and the queue model advance in
    // lock-step per arrival, so depth admission sees exact occupancy.
    for (size_t i = 0; i < schedule.size(); ++i) {
      const Admit a = admit(i);
      if (a != Admit::kOk) {
        reject(i, a);
        continue;
      }
      execute_one(i);
      if (report.requests[i].status.ok()) queue_step(i);
    }
  } else {
    // Batched: quota admission is a pure function of the arrival
    // sequence, so it is decided up front; runs of consecutive admitted
    // read queries then coalesce into ExecuteBatch waves with mutations
    // and joins as barriers. Execution order equals arrival order either
    // way, so answers and counts match the sequential path exactly;
    // service charges are smaller because a wave's share fetches
    // amortize envelope rounds across its queries.
    std::vector<bool> is_admitted(schedule.size(), false);
    for (size_t i = 0; i < schedule.size(); ++i) {
      const Admit a = admit(i);
      if (a == Admit::kOk) {
        is_admitted[i] = true;
      } else {
        reject(i, a);
      }
    }
    std::vector<size_t> wave;  // indices of pending read queries
    auto flush_wave = [&]() {
      if (wave.empty()) return;
      std::vector<Query> queries;
      queries.reserve(wave.size());
      for (size_t i : wave) {
        const TrafficRequest& req = schedule[i];
        const TenantSpec& spec = tenants_[req.tenant];
        Query q = Query::Select(spec.name);
        switch (req.op) {
          case TrafficOp::kPointRead:
            q.Where(Eq("name", Value::Str(req.key)));
            break;
          case TrafficOp::kRangeScan:
            q.Where(Between("salary", Value::Int(req.a), Value::Int(req.b)));
            break;
          case TrafficOp::kAggregate:
            switch (req.b) {
              case 0:
                q.Where(Eq("dept", Value::Int(req.a)))
                    .Aggregate(AggregateOp::kSum, "salary");
                break;
              case 1:
                q.Where(Eq("dept", Value::Int(req.a)))
                    .Aggregate(AggregateOp::kCount);
                break;
              default:
                q.Aggregate(AggregateOp::kSum, "salary").GroupBy("dept");
                break;
            }
            break;
          default:
            break;  // unreachable: only reads enter waves
        }
        queries.push_back(std::move(q));
      }
      std::vector<RequestContext> ctxs;
      ctxs.reserve(wave.size());
      for (size_t i : wave) ctxs.push_back({tenants_[schedule[i].tenant].name});
      std::vector<Result<QueryResult>> results =
          db_->ExecuteBatch(queries, ctxs);
      for (size_t slot = 0; slot < wave.size(); ++slot) {
        const size_t i = wave[slot];
        RequestOutcome& out = report.requests[i];
        if (!results[slot].ok()) {
          out.status = results[slot].status();
          continue;
        }
        out.service_us = results[slot].value().trace.total_clock_us();
        answers[i] = DescribeAnswer(results[slot].value());
        if (monitored) {
          samples[i] = MeterFromTrace(results[slot].value().trace);
          traces[i] = std::move(results[slot].value().trace);
        }
      }
      admitted_index += wave.size();
      wave.clear();
    };
    for (size_t i = 0; i < schedule.size(); ++i) {
      if (!is_admitted[i]) continue;
      const TrafficOp op = schedule[i].op;
      const bool batchable = op == TrafficOp::kPointRead ||
                             op == TrafficOp::kRangeScan ||
                             op == TrafficOp::kAggregate;
      if (batchable) {
        wave.push_back(i);
        if (wave.size() >= options_.exec_batch_max) flush_wave();
      } else {
        flush_wave();  // write barrier: drain reads first
        execute_one(i);
      }
    }
    flush_wave();
    // The queue model replays admitted requests in arrival order using
    // the collected service times.
    for (size_t i = 0; i < schedule.size(); ++i) {
      if (is_admitted[i] && report.requests[i].status.ok()) queue_step(i);
    }
  }

  // Accounting pass, in arrival order so the fingerprint chain is the
  // deterministic arrival-order fold.
  report.tenants.resize(tenants_.size());
  for (size_t t = 0; t < tenants_.size(); ++t) {
    report.tenants[t].tenant = tenants_[t].name;
  }
  report.global.tenant = "_all";
  for (size_t i = 0; i < schedule.size(); ++i) {
    const TrafficRequest& req = schedule[i];
    RequestOutcome& out = report.requests[i];
    out.tenant = req.tenant;
    out.arrival_us = req.arrival_us;
    TenantTraffic& tt = report.tenants[req.tenant];
    TenantSeries& ts = series[req.tenant];

    if (monitored) {
      // The monitor ingests arrival order — the one order shared by both
      // execution modes — so its windows are batching- and
      // fanout-invariant.
      RequestObservation obs;
      obs.tenant = tenants_[req.tenant].name;
      obs.seq = req.seq;
      obs.arrival_us = req.arrival_us;
      if (out.status.IsResourceExhausted()) {
        obs.cls = RequestClass::kRejected;
      } else if (!out.status.ok()) {
        obs.cls = RequestClass::kFailed;
      } else {
        obs.cls = RequestClass::kCompleted;
        obs.latency_us = out.latency_us;
        obs.queue_delay_us = out.queue_delay_us;
        obs.service_us = out.service_us;
        obs.meter = samples[i];
        obs.trace = &traces[i];
      }
      monitor.Observe(obs);
    }

    ++tt.offered;
    ++report.global.offered;
    ts.offered->Inc();
    global_series.offered->Inc();

    if (out.status.IsResourceExhausted()) {
      if (verdict[i] == Admit::kQuota) {
        ++tt.rejected_quota;
        ++report.global.rejected_quota;
        ts.rejected_quota->Inc();
        global_series.rejected_quota->Inc();
      } else {
        ++tt.rejected_queue;
        ++report.global.rejected_queue;
        ts.rejected_queue->Inc();
        global_series.rejected_queue->Inc();
      }
      continue;
    }

    ++tt.admitted;
    ++report.global.admitted;
    ts.admitted->Inc();
    global_series.admitted->Inc();

    if (!out.status.ok()) {
      // Execution failure: no service charge, but the error is part of
      // the drill fingerprint (a drill must reproduce failures too).
      ++tt.failed;
      ++report.global.failed;
      ts.failed->Inc();
      global_series.failed->Inc();
      const std::string mark = "|failed=" + out.status.ToString();
      tt.answers_fingerprint = FoldFnv(tt.answers_fingerprint, mark);
      report.global.answers_fingerprint =
          FoldFnv(report.global.answers_fingerprint, mark);
      continue;
    }

    ++tt.completed;
    ++report.global.completed;
    tt.latency_sum_us += out.latency_us;
    report.global.latency_sum_us += out.latency_us;
    ts.completed->Inc();
    global_series.completed->Inc();
    ts.latency->Observe(out.latency_us);
    ts.queue_delay->Observe(out.queue_delay_us);
    ts.service->Observe(out.service_us);
    global_series.latency->Observe(out.latency_us);
    global_series.queue_delay->Observe(out.queue_delay_us);
    global_series.service->Observe(out.service_us);
    tt.answers_fingerprint = FoldFnv(tt.answers_fingerprint, answers[i]);
    report.global.answers_fingerprint =
        FoldFnv(report.global.answers_fingerprint, answers[i]);
  }

  // Percentiles read back from the histograms (the exported series and
  // the report agree by construction).
  auto fill_quantiles = [](TenantTraffic* tt, const TenantSeries& ts) {
    tt->p50_us = ts.latency->ValueAtQuantile(0.50);
    tt->p99_us = ts.latency->ValueAtQuantile(0.99);
    tt->p999_us = ts.latency->ValueAtQuantile(0.999);
    tt->queue_delay_p99_us = ts.queue_delay->ValueAtQuantile(0.99);
    tt->service_p50_us = ts.service->ValueAtQuantile(0.50);
  };
  for (size_t t = 0; t < tenants_.size(); ++t) {
    fill_quantiles(&report.tenants[t], series[t]);
  }
  fill_quantiles(&report.global, global_series);

  if (monitored) {
    monitor.Finish(std::max(report.drained_us, report.last_arrival_us));
    report.monitored = true;
    report.monitor = monitor.Report();
  }
  return report;
}

}  // namespace ssdb
