// Saturation-knee finder: sweeps the offered arrival rate of a tenant
// mix against fresh deployments and locates the load at which the open
// loop tips from latency-flat to queue-dominated.
//
// Below capacity an open-loop run's p99 latency is dominated by service
// time and barely moves with load; past capacity the backlog grows for
// the whole run and p99 explodes with it. The knee is the last swept
// point whose p99 still sits below `saturation_factor` times the
// lightest point's p99 — the standing capacity figure recorded per
// deployment shape (shards, n, k, batch_max_ops) in BENCH_traffic.json.
//
// Every point runs the SAME tenant specs and harness seed with only
// arrival_qps scaled, against a FRESH deployment built by the caller's
// factory, so points are independent and the whole sweep is a pure
// function of (factory, tenants, options, scales).

#ifndef SSDB_TRAFFIC_KNEE_H_
#define SSDB_TRAFFIC_KNEE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "traffic/traffic.h"

namespace ssdb {

/// Builds one fresh deployment per sweep point.
using DeploymentFactory =
    std::function<Result<std::unique_ptr<OutsourcedDatabase>>()>;

/// Sweep shape.
struct KneeSweepOptions {
  /// Multipliers applied to every tenant's arrival_qps, swept in
  /// ascending order (sorted internally). The first (lightest) point is
  /// the latency baseline.
  std::vector<double> rate_scales = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  /// A point saturates when its global p99 exceeds this multiple of the
  /// baseline point's p99.
  double saturation_factor = 3.0;
};

/// One swept load point.
struct KneePoint {
  double scale = 0.0;
  double offered_qps = 0.0;
  double completed_qps = 0.0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  bool saturated = false;
};

/// \brief Sweep result: the points and the located knee.
struct KneeReport {
  std::vector<KneePoint> points;  ///< Ascending by scale.
  /// True when the sweep straddled the knee: at least one unsaturated
  /// point followed by at least one saturated point.
  bool found = false;
  double knee_scale = 0.0;  ///< Last unsaturated scale before saturation.
  double knee_qps = 0.0;    ///< Offered qps at the knee point.
  uint64_t pre_knee_p99_us = 0;  ///< Global p99 at the knee point.

  /// Deterministic JSON (fixed float precision).
  std::string ToJson() const;
};

/// \brief Rate sweeps over the traffic harness.
class KneeFinder {
 public:
  /// Runs one harness point per scale against a fresh factory-built
  /// deployment; fails on the first Setup/Run error.
  static Result<KneeReport> Sweep(const DeploymentFactory& factory,
                                  const std::vector<TenantSpec>& tenants,
                                  const TrafficOptions& options,
                                  const KneeSweepOptions& sweep);

  /// One extra point at `rate_scale` (e.g. re-running 0.5x / 0.9x of a
  /// located knee, or an admission-control variant of the specs).
  static Result<TrafficReport> RunPoint(const DeploymentFactory& factory,
                                        std::vector<TenantSpec> tenants,
                                        double rate_scale,
                                        const TrafficOptions& options);
};

}  // namespace ssdb

#endif  // SSDB_TRAFFIC_KNEE_H_
