// Open-loop multi-tenant traffic harness (ROADMAP item 1).
//
// The paper's pitch is database management *as a service*: one operator
// amortizing hardware and DBA cost across many tenants. This harness
// exercises the system as that service. Every tenant gets its own
// outsourced table and a deterministic request stream — seeded through
// Rng::Fork keyed by the tenant's name, so adding or reordering tenants
// never perturbs another tenant's stream — whose arrivals are driven by a
// rate, NOT by completions:
//
//   * OPEN LOOP. Each request carries a scheduled virtual arrival time
//     drawn from the tenant's arrival process (Poisson or uniform
//     inter-arrival). Arrivals never wait for earlier responses, so when
//     the offered load exceeds the modelled service capacity the backlog
//     grows without bound and every later request is charged the queueing
//     delay — which is what exposes the saturation knee a closed-loop
//     driver hides (a closed loop self-throttles to the service rate).
//
//   * DETERMINISTIC QUEUE MODEL. The modelled front-end is a FIFO station
//     of `service_workers` servers. A request's service time is its exact
//     deterministic virtual-clock charge (the per-query QueryTrace total
//     for reads and joins, the clock delta for mutations), so
//       start      = max(arrival, earliest free server)
//       completion = start + service
//       latency    = completion - arrival    (queueing delay included)
//     is a pure integer function of the seed — bit-identical across
//     fanout_threads counts and same-seed runs. The deployment's
//     VirtualClock keeps its usual role as the service-cost meter; the
//     arrival timeline shares its unit (virtual microseconds).
//
//   * ADMISSION CONTROL. Per-tenant queue-depth limits (reject an arrival
//     while `max_queue_depth` admitted requests are still in the system)
//     and token-bucket quotas (`quota_qps` refill, `quota_burst` cap;
//     admission consumes one token) bound the backlog. Rejected requests
//     take the Status::ResourceExhausted path, consume no service and are
//     counted per tenant and reason under `ssdb_admission_*`; they make
//     the knee controllable instead of just observable.
//
// Request execution fans into OutsourcedDatabase::Execute /
// ExecuteBatch: runs of consecutive admitted read queries coalesce into
// one ExecuteBatch wave (serviced by the deployment's fan-out ThreadPool)
// whenever no queue-depth limit is active — depth admission needs the
// completion time of every earlier request before deciding, so it forces
// request-at-a-time execution; token quotas depend only on the arrival
// sequence and keep batching legal. Mutations are executed in arrival
// order as write barriers between waves, so interleaved read answers are
// identical in both modes; service charges are not (waves amortize
// envelope rounds — see TrafficOptions::exec_batch).
//
// Latency, queueing delay and service time are recorded in the obs
// layer's deterministic log-bucketed histograms, per tenant and global
// (`tenant="_all"`), and the p50/p99/p999 figures in TrafficReport are
// read back from those histograms via MetricHistogram::ValueAtQuantile.

#ifndef SSDB_TRAFFIC_TRAFFIC_H_
#define SSDB_TRAFFIC_TRAFFIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/outsourced_db.h"
#include "obs/monitor.h"

namespace ssdb {

/// Inter-arrival process of one tenant's request stream.
enum class ArrivalProcess : uint8_t {
  kPoisson,  ///< Exponential inter-arrival (memoryless, bursty).
  kUniform,  ///< Uniform in (0, 2/rate] — same mean, bounded burstiness.
};

/// Per-tenant operation mix (normalized internally; need not sum to 1).
struct TenantOpMix {
  double point_read = 0.55;  ///< Eq(name) fetch.
  double range_scan = 0.20;  ///< Between(salary) scan.
  double aggregate = 0.10;   ///< SUM/COUNT by dept, GROUP BY sweep.
  double update = 0.10;      ///< UPDATE salary WHERE name.
  double insert = 0.05;      ///< One-row insert.
  double join = 0.0;         ///< Self equi-join on name (off by default).

  double total() const {
    return point_read + range_scan + aggregate + update + insert + join;
  }
};

/// \brief One tenant of the simulated service: its table, key space,
/// request stream and admission-control knobs.
struct TenantSpec {
  /// Unique tenant id; doubles as the tenant's table name and as the
  /// Rng::Fork stream key (FNV-1a of the name), so a tenant's request
  /// stream depends only on (harness seed, name).
  std::string name;
  /// Rows preloaded into the tenant's Employees-schema table at Setup.
  size_t rows = 128;
  /// Requests this tenant offers during the run.
  size_t requests = 100;
  /// Mean arrival rate in requests per virtual second.
  double arrival_qps = 100.0;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  TenantOpMix mix;

  // --- Admission control (0 = disabled) ---------------------------------
  /// Reject an arrival while this many admitted requests of the tenant
  /// are still in the system (queued or in service). Enabling this for
  /// ANY tenant disables ExecuteBatch waves: depth admission must know
  /// every earlier completion time before deciding.
  size_t max_queue_depth = 0;
  /// Token-bucket refill rate in tokens per virtual second; admission
  /// consumes one token, an empty bucket rejects.
  double quota_qps = 0.0;
  /// Bucket capacity in tokens; <= 0 defaults to max(1, 0.05 * quota_qps)
  /// (50 ms of refill).
  double quota_burst = 0.0;
};

/// Harness-wide knobs.
struct TrafficOptions {
  uint64_t seed = 0x7EA44C;
  /// Modelled front-end concurrency: FIFO servers of the queue station.
  /// Capacity is roughly service_workers / mean-service-time.
  size_t service_workers = 4;
  /// Coalesce runs of consecutive admitted reads into one ExecuteBatch
  /// wave (capped at exec_batch_max). Compatible share fetches inside a
  /// wave share envelope rounds, so per-request service charges SHRINK —
  /// batching is a capacity knob (that is why batch_max_ops is part of
  /// the knee tuple), while answers, admission decisions and counts are
  /// identical with batching on or off.
  bool exec_batch = true;
  size_t exec_batch_max = 64;
  /// Fault-drill hook: invoked with the admission index (0-based count of
  /// admitted requests so far) right before that request executes. Setting
  /// it disables ExecuteBatch waves so the hook observes request-at-a-time
  /// execution order (kill/restart drills inject faults here).
  std::function<void(size_t)> before_request;
  /// Attach a continuous Monitor (obs/monitor.h) to the run: windowed
  /// time series, per-tenant metering & billing, alert rules and the
  /// top-K slow-query log land in TrafficReport::monitor. The monitor is
  /// fed from the arrival-order accounting pass, so its output is
  /// bit-identical across fanout_threads counts and same-seed runs.
  /// (Across BATCHING modes only counts and answers are invariant:
  /// waves amortize envelope rounds, so metered bytes/rounds/clock — and
  /// hence costs and latency percentiles — legitimately differ.)
  bool monitor = false;
  MonitorOptions monitor_options;
};

/// One operation of the pre-generated schedule.
enum class TrafficOp : uint8_t {
  kPointRead,
  kRangeScan,
  kAggregate,
  kUpdate,
  kInsert,
  kJoin,
};

/// A scheduled request: everything execution needs is resolved at
/// schedule-build time, so the run is a pure replay.
struct TrafficRequest {
  uint32_t tenant = 0;      ///< Index into the spec vector.
  uint32_t seq = 0;         ///< Per-tenant sequence number.
  uint64_t arrival_us = 0;  ///< Scheduled virtual arrival time.
  TrafficOp op = TrafficOp::kPointRead;
  std::string key;  ///< Point read / update / insert name.
  int64_t a = 0;    ///< Range lo, dept, new salary, or insert salary.
  int64_t b = 0;    ///< Range hi, aggregate variant, or insert dept.
};

/// Builds the merged multi-tenant schedule for `seed`: per-tenant streams
/// forked by tenant NAME (never by position), merged and stably ordered
/// by (arrival_us, tenant index, seq). Exposed for the stream-stability
/// regression tests: tenant T's subsequence is invariant under adding,
/// removing or reordering other tenants.
std::vector<TrafficRequest> BuildTrafficSchedule(
    const std::vector<TenantSpec>& tenants, uint64_t seed);

/// What happened to one scheduled request, in arrival order.
struct RequestOutcome {
  uint32_t tenant = 0;
  uint64_t arrival_us = 0;
  /// OK for completed requests, ResourceExhausted for admission
  /// rejections, the execution error otherwise.
  Status status;
  uint64_t latency_us = 0;      ///< completion - arrival (completed only).
  uint64_t queue_delay_us = 0;  ///< service start - arrival.
  uint64_t service_us = 0;      ///< Deterministic virtual service charge.
};

/// Per-tenant (or global, tenant = "_all") traffic accounting. Quantiles
/// are read back from the deterministic log-bucketed histograms, so they
/// are inclusive bucket upper bounds.
struct TenantTraffic {
  std::string tenant;
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;          ///< Admitted but errored at execution.
  uint64_t rejected_queue = 0;  ///< Queue-depth rejections.
  uint64_t rejected_quota = 0;  ///< Token-bucket rejections.
  uint64_t p50_us = 0;          ///< Completed-request virtual latency.
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  uint64_t queue_delay_p99_us = 0;
  uint64_t service_p50_us = 0;
  uint64_t latency_sum_us = 0;
  /// FNV-1a over every completed answer (and failed status) in arrival
  /// order — the drill fingerprint compared against fault-free runs.
  uint64_t answers_fingerprint = 14695981039346656037ULL;

  uint64_t rejected() const { return rejected_queue + rejected_quota; }
};

/// \brief Result of one open-loop run.
struct TrafficReport {
  std::vector<TenantTraffic> tenants;  ///< Spec order.
  TenantTraffic global;                ///< tenant = "_all".
  std::vector<RequestOutcome> requests;
  uint64_t last_arrival_us = 0;
  uint64_t drained_us = 0;  ///< Last modelled completion time.
  bool monitored = false;   ///< True when TrafficOptions::monitor was set.
  MonitorReport monitor;    ///< Windowed series, billing, alerts, slow log.

  double offered_qps() const {
    return last_arrival_us == 0
               ? 0.0
               : static_cast<double>(global.offered) * 1e6 /
                     static_cast<double>(last_arrival_us);
  }
  double completed_qps() const {
    return drained_us == 0 ? 0.0
                           : static_cast<double>(global.completed) * 1e6 /
                                 static_cast<double>(drained_us);
  }

  /// Deterministic integer-only JSON (aggregates; no per-request detail).
  /// Bit-identical across fanout_threads counts and same-seed runs.
  std::string ExportJson() const;
};

/// \brief The harness: builds tenant tables, replays the open-loop
/// schedule against one deployment, reports SLO percentiles.
class TrafficHarness {
 public:
  /// `db` must outlive the harness. Tenant names must be unique and
  /// non-empty; validation happens in Setup.
  TrafficHarness(OutsourcedDatabase* db, std::vector<TenantSpec> tenants,
                 TrafficOptions options);

  /// Creates one Employees-schema table per tenant and bulk loads its
  /// seeded rows (one batched envelope round per chunk).
  Status Setup();

  /// Builds the schedule and replays it: admission, execution, queue
  /// model, histograms. Traffic/admission series touched by this harness
  /// are reset at entry, so each Run reports exactly its own window.
  Result<TrafficReport> Run();

  const std::vector<TenantSpec>& tenants() const { return tenants_; }

 private:
  OutsourcedDatabase* db_;
  std::vector<TenantSpec> tenants_;
  TrafficOptions options_;
  bool setup_done_ = false;
};

}  // namespace ssdb

#endif  // SSDB_TRAFFIC_TRAFFIC_H_
