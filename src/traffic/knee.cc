#include "traffic/knee.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ssdb {
namespace {

/// Fixed-precision float rendering so the JSON is byte-stable.
std::string Fixed3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string KneeReport::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"found\": " << (found ? "true" : "false")
      << ",\n  \"knee_scale\": " << Fixed3(knee_scale)
      << ",\n  \"knee_qps\": " << Fixed3(knee_qps)
      << ",\n  \"pre_knee_p99_us\": " << pre_knee_p99_us
      << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const KneePoint& p = points[i];
    out << "    {\"scale\": " << Fixed3(p.scale)
        << ", \"offered_qps\": " << Fixed3(p.offered_qps)
        << ", \"completed_qps\": " << Fixed3(p.completed_qps)
        << ", \"p50_us\": " << p.p50_us << ", \"p99_us\": " << p.p99_us
        << ", \"p999_us\": " << p.p999_us
        << ", \"saturated\": " << (p.saturated ? "true" : "false") << "}";
    if (i + 1 < points.size()) out << ",";
    out << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

Result<TrafficReport> KneeFinder::RunPoint(const DeploymentFactory& factory,
                                           std::vector<TenantSpec> tenants,
                                           double rate_scale,
                                           const TrafficOptions& options) {
  if (rate_scale <= 0) return Status::InvalidArgument("rate_scale must be > 0");
  for (TenantSpec& spec : tenants) spec.arrival_qps *= rate_scale;
  SSDB_ASSIGN_OR_RETURN(std::unique_ptr<OutsourcedDatabase> db, factory());
  TrafficHarness harness(db.get(), std::move(tenants), options);
  SSDB_RETURN_IF_ERROR(harness.Setup());
  return harness.Run();
}

Result<KneeReport> KneeFinder::Sweep(const DeploymentFactory& factory,
                                     const std::vector<TenantSpec>& tenants,
                                     const TrafficOptions& options,
                                     const KneeSweepOptions& sweep) {
  if (sweep.rate_scales.empty()) {
    return Status::InvalidArgument("empty rate_scales");
  }
  std::vector<double> scales = sweep.rate_scales;
  std::sort(scales.begin(), scales.end());

  KneeReport report;
  uint64_t baseline_p99 = 0;
  for (size_t i = 0; i < scales.size(); ++i) {
    SSDB_ASSIGN_OR_RETURN(TrafficReport point_report,
                          RunPoint(factory, tenants, scales[i], options));
    KneePoint point;
    point.scale = scales[i];
    point.offered_qps = point_report.offered_qps();
    point.completed_qps = point_report.completed_qps();
    point.p50_us = point_report.global.p50_us;
    point.p99_us = point_report.global.p99_us;
    point.p999_us = point_report.global.p999_us;
    if (i == 0) baseline_p99 = point.p99_us;
    // The lightest point IS the baseline, so it is unsaturated by
    // definition; later points saturate past factor x baseline.
    point.saturated =
        i > 0 && static_cast<double>(point.p99_us) >
                     sweep.saturation_factor * static_cast<double>(baseline_p99);
    report.points.push_back(point);
  }
  for (size_t i = 0; i + 1 < report.points.size(); ++i) {
    if (!report.points[i].saturated && report.points[i + 1].saturated) {
      report.found = true;
      report.knee_scale = report.points[i].scale;
      report.knee_qps = report.points[i].offered_qps;
      report.pre_knee_p99_us = report.points[i].p99_us;
      break;
    }
  }
  return report;
}

}  // namespace ssdb
