#include "workload/query_mix.h"

namespace ssdb {

// Stream ids under the driver's seed (Rng::ForkSeed): the op-dice stream
// and the row-generator stream are independent children of one root, so
// neither perturbs the other and new streams can be added without
// re-deriving ad-hoc xor constants per call site.
namespace {
constexpr uint64_t kOpStream = 1;
constexpr uint64_t kDataStream = 2;
}  // namespace

QueryMixDriver::QueryMixDriver(OutsourcedDatabase* db, std::string table,
                               uint64_t seed, MixRatios ratios)
    : db_(db),
      table_(std::move(table)),
      rng_(Rng(seed).Fork(kOpStream)),
      gen_(Rng(seed).ForkSeed(kDataStream), Distribution::kUniform),
      ratios_(ratios) {
  total_ratio_ = ratios_.point_lookup + ratios_.range_scan +
                 ratios_.aggregate + ratios_.update + ratios_.insert +
                 ratios_.erase;
  if (total_ratio_ <= 0) total_ratio_ = 1.0;
}

Status QueryMixDriver::RunOps(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    SSDB_RETURN_IF_ERROR(RunOne());
  }
  return Status::OK();
}

Status QueryMixDriver::RunOne() {
  double dice = rng_.NextDouble() * total_ratio_;

  if ((dice -= ratios_.point_lookup) < 0) {
    ++stats_.point_lookups;
    const std::string name = gen_.Next().name;
    SSDB_ASSIGN_OR_RETURN(
        QueryResult r,
        db_->Execute(Query::Select(table_).Where(Eq("name", Value::Str(name)))));
    stats_.rows_touched += r.rows.size();
    return Status::OK();
  }
  if ((dice -= ratios_.range_scan) < 0) {
    ++stats_.range_scans;
    const int64_t lo = rng_.UniformInt(EmployeeGenerator::kSalaryLo,
                                       EmployeeGenerator::kSalaryHi - 2000);
    SSDB_ASSIGN_OR_RETURN(
        QueryResult r,
        db_->Execute(Query::Select(table_).Where(
            Between("salary", Value::Int(lo), Value::Int(lo + 2000)))));
    stats_.rows_touched += r.rows.size();
    return Status::OK();
  }
  if ((dice -= ratios_.aggregate) < 0) {
    ++stats_.aggregates;
    const int64_t dept = rng_.UniformInt(0, EmployeeGenerator::kMaxDept);
    switch (rng_.Uniform(4)) {
      case 0: {
        SSDB_ASSIGN_OR_RETURN(QueryResult r,
                              db_->Execute(Query::Select(table_)
                                               .Where(Eq("dept", Value::Int(dept)))
                                               .Aggregate(AggregateOp::kSum,
                                                          "salary")));
        stats_.rows_touched += r.count;
        break;
      }
      case 1: {
        SSDB_ASSIGN_OR_RETURN(QueryResult r,
                              db_->Execute(Query::Select(table_)
                                               .Where(Eq("dept", Value::Int(dept)))
                                               .Aggregate(AggregateOp::kCount)));
        stats_.rows_touched += r.count;
        break;
      }
      case 2: {
        SSDB_ASSIGN_OR_RETURN(
            QueryResult r,
            db_->Execute(
                Query::Select(table_).Aggregate(AggregateOp::kMedian, "salary")));
        stats_.rows_touched += r.count;
        break;
      }
      default: {
        SSDB_ASSIGN_OR_RETURN(QueryResult r,
                              db_->Execute(Query::Select(table_)
                                               .Aggregate(AggregateOp::kSum,
                                                          "salary")
                                               .GroupBy("dept")));
        stats_.rows_touched += r.count;
        break;
      }
    }
    return Status::OK();
  }
  if ((dice -= ratios_.update) < 0) {
    ++stats_.updates;
    const std::string name = gen_.Next().name;
    SSDB_ASSIGN_OR_RETURN(
        uint64_t updated,
        db_->Update(table_, {Eq("name", Value::Str(name))}, "salary",
                    Value::Int(rng_.UniformInt(EmployeeGenerator::kSalaryLo,
                                               EmployeeGenerator::kSalaryHi))));
    stats_.rows_touched += updated;
    return Status::OK();
  }
  if ((dice -= ratios_.insert) < 0) {
    ++stats_.inserts;
    SSDB_RETURN_IF_ERROR(db_->Insert(table_, gen_.Rows(1)));
    ++stats_.rows_touched;
    return Status::OK();
  }
  ++stats_.erases;
  const std::string name = gen_.Next().name;
  SSDB_ASSIGN_OR_RETURN(uint64_t erased,
                        db_->Delete(table_, {Eq("name", Value::Str(name))}));
  stats_.rows_touched += erased;
  return Status::OK();
}

}  // namespace ssdb
