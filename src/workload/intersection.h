// Privacy-preserving set intersection protocols (experiment E7).
//
// Section II.A quotes the cost of computing a privacy-preserving
// intersection with encryption (Agrawal et al. [26]): ~2 hours and
// ~3 Gbit for 10 x 100 documents of 1000 words, ~4 hours and ~8 Gbit for
// a million medical records. Two protocols reproduce the comparison:
//
//   * EncryptedIntersection — the commutative-encryption protocol of [26]:
//     both parties exponentiate hashed elements with secret exponents
//     (E_a(x) = x^a in F_{2^61-1}*; commutative since (x^a)^b = (x^b)^a),
//     exchange singly- and doubly-encrypted sets, and compare. Cost:
//     ~3 modular exponentiations and ~3 transfers per element.
//
//   * SharedIntersection — the secret-sharing / hashing alternative the
//     paper advocates ([31][32]): each party computes deterministic
//     shares of its elements and ships them to the n providers, each of
//     which intersects its two share multisets locally; the client takes
//     the k-provider majority. Cost: n PRF evaluations and n transfers
//     per element, no exponentiation.
//
// Both report elements matched, bytes moved, and heavy-op counts, so the
// benchmark can show the ratio and where it comes from.

#ifndef SSDB_WORKLOAD_INTERSECTION_H_
#define SSDB_WORKLOAD_INTERSECTION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace ssdb {

struct IntersectionReport {
  size_t matches = 0;
  uint64_t bytes_transferred = 0;
  uint64_t modexp_ops = 0;  ///< Encryption protocol only.
  uint64_t prf_ops = 0;     ///< Sharing protocol only.
};

/// Commutative-encryption intersection (Agrawal et al. [26] model).
/// Inputs are treated as sets (duplicates removed before transfer).
Result<IntersectionReport> EncryptedIntersection(
    const std::vector<uint64_t>& set_a, const std::vector<uint64_t>& set_b,
    Rng* rng);

/// Secret-sharing / deterministic-hash intersection via n providers
/// ([31][32] model). `k` providers must agree on each match.
Result<IntersectionReport> SharedIntersection(
    const std::vector<uint64_t>& set_a, const std::vector<uint64_t>& set_b,
    size_t n, size_t k, uint64_t key_seed);

}  // namespace ssdb

#endif  // SSDB_WORKLOAD_INTERSECTION_H_
