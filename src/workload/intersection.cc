#include "workload/intersection.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "crypto/prf.h"
#include "field/fp61.h"
#include "sss/shamir.h"

namespace ssdb {

namespace {

/// Hashes an element into the multiplicative group F_p^* (never 0).
Fp61 HashToGroup(uint64_t element) {
  const uint64_t h =
      SipHash24U64(SipHashKey{0x5E7A11, 0xB16B00B5}, element, 17);
  const uint64_t reduced = h % (Fp61::kP - 1) + 1;
  return Fp61::FromCanonical(reduced);
}

/// A secret exponent coprime with p-1 (odd suffices to avoid the factor 2;
/// full coprimality is unnecessary for a cost model, collisions are
/// harmless to the measurement and checked out by comparing plaintext).
uint64_t SecretExponent(Rng* rng) { return (rng->Next() | 1) % Fp61::kP; }

/// Both protocols intersect *sets*: parties deduplicate before sending
/// (the paper's experiment intersects the word sets of two sites).
std::vector<uint64_t> Dedupe(const std::vector<uint64_t>& in) {
  std::vector<uint64_t> out(in);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Result<IntersectionReport> EncryptedIntersection(
    const std::vector<uint64_t>& raw_a, const std::vector<uint64_t>& raw_b,
    Rng* rng) {
  const std::vector<uint64_t> set_a = Dedupe(raw_a);
  const std::vector<uint64_t> set_b = Dedupe(raw_b);
  IntersectionReport report;
  const uint64_t ea = SecretExponent(rng);
  const uint64_t eb = SecretExponent(rng);

  // Party A -> B: { h(x)^a : x in A }.
  std::vector<Fp61> a_once;
  a_once.reserve(set_a.size());
  for (uint64_t x : set_a) {
    a_once.push_back(HashToGroup(x).Pow(ea));
    ++report.modexp_ops;
  }
  report.bytes_transferred += a_once.size() * sizeof(uint64_t);

  // Party B -> A: { h(y)^b : y in B }.
  std::vector<Fp61> b_once;
  b_once.reserve(set_b.size());
  for (uint64_t y : set_b) {
    b_once.push_back(HashToGroup(y).Pow(eb));
    ++report.modexp_ops;
  }
  report.bytes_transferred += b_once.size() * sizeof(uint64_t);

  // B -> A: { (h(x)^a)^b } for A's set.
  std::vector<Fp61> a_twice;
  a_twice.reserve(a_once.size());
  for (const Fp61& v : a_once) {
    a_twice.push_back(v.Pow(eb));
    ++report.modexp_ops;
  }
  report.bytes_transferred += a_twice.size() * sizeof(uint64_t);

  // A locally: { (h(y)^b)^a } for B's set, then compare.
  std::unordered_set<uint64_t> b_twice;
  b_twice.reserve(b_once.size());
  for (const Fp61& v : b_once) {
    b_twice.insert(v.Pow(ea).value());
    ++report.modexp_ops;
  }
  for (const Fp61& v : a_twice) {
    if (b_twice.count(v.value()) != 0) ++report.matches;
  }
  return report;
}

Result<IntersectionReport> SharedIntersection(
    const std::vector<uint64_t>& raw_a, const std::vector<uint64_t>& raw_b,
    size_t n, size_t k, uint64_t key_seed) {
  if (n == 0 || k == 0 || k > n) {
    return Status::InvalidArgument("intersection: require 1 <= k <= n");
  }
  const std::vector<uint64_t> set_a = Dedupe(raw_a);
  const std::vector<uint64_t> set_b = Dedupe(raw_b);
  IntersectionReport report;
  Rng setup(key_seed);
  SSDB_ASSIGN_OR_RETURN(SharingContext ctx,
                        SharingContext::CreateRandom(n, k, &setup));
  const Prf prf(setup.Next(), setup.Next());
  constexpr uint64_t kDomain = 0xD0C5;

  // Each party ships its deterministic shares to every provider; the
  // providers intersect locally.
  std::vector<size_t> provider_matches(n, 0);
  for (size_t p = 0; p < n; ++p) {
    std::unordered_set<uint64_t> a_shares;
    a_shares.reserve(set_a.size());
    for (uint64_t x : set_a) {
      a_shares.insert(
          ctx.DeterministicShareFor(prf, kDomain, Fp61::FromU64(x), p)
              .value());
      ++report.prf_ops;
    }
    report.bytes_transferred += set_a.size() * sizeof(uint64_t);
    size_t hits = 0;
    for (uint64_t y : set_b) {
      const uint64_t share =
          ctx.DeterministicShareFor(prf, kDomain, Fp61::FromU64(y), p)
              .value();
      ++report.prf_ops;
      if (a_shares.count(share) != 0) ++hits;
    }
    report.bytes_transferred += set_b.size() * sizeof(uint64_t);
    // Each provider reports only its match count / positions.
    report.bytes_transferred += sizeof(uint64_t);
    provider_matches[p] = hits;
  }
  // k-provider agreement (majority of the first k answers).
  std::vector<size_t> head(provider_matches.begin(),
                           provider_matches.begin() + static_cast<long>(k));
  std::sort(head.begin(), head.end());
  report.matches = head[head.size() / 2];
  return report;
}

}  // namespace ssdb
