#include "workload/generators.h"

#include <algorithm>

namespace ssdb {

std::string NameGenerator::Next(uint32_t max_len) {
  static const char* kConsonants = "BCDFGHJKLMNPRSTVWZ";
  static const char* kVowels = "AEIOU";
  const uint32_t len = 3 + static_cast<uint32_t>(
                               rng_.Uniform(max_len >= 3 ? max_len - 2 : 1));
  std::string name;
  name.reserve(len);
  for (uint32_t i = 0; name.size() < len; ++i) {
    if (i % 2 == 0) {
      name.push_back(kConsonants[rng_.Uniform(18)]);
    } else {
      name.push_back(kVowels[rng_.Uniform(5)]);
    }
  }
  return name;
}

EmployeeRow EmployeeGenerator::Next() {
  EmployeeRow row;
  row.name = names_.Next(8);
  switch (dist_) {
    case Distribution::kUniform:
      row.salary = rng_.UniformInt(kSalaryLo, kSalaryHi);
      break;
    case Distribution::kZipf:
      row.salary = static_cast<int64_t>(zipf_.Sample(&rng_));
      break;
    case Distribution::kSequential:
      row.salary = static_cast<int64_t>(seq_++ % (kSalaryHi + 1));
      break;
  }
  row.dept = rng_.UniformInt(0, kMaxDept);
  return row;
}

std::vector<std::vector<Value>> EmployeeGenerator::Rows(size_t count) {
  std::vector<std::vector<Value>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    EmployeeRow row = Next();
    out.push_back({Value::Str(std::move(row.name)), Value::Int(row.salary),
                   Value::Int(row.dept)});
  }
  return out;
}

TableSchema EmployeeGenerator::EmployeesSchema(const std::string& table_name) {
  TableSchema schema;
  schema.table_name = table_name;
  schema.columns = {
      StringColumn("name", 8),
      IntColumn("salary", kSalaryLo, kSalaryHi),
      IntColumn("dept", 0, kMaxDept),
  };
  return schema;
}

MedicalRecord MedicalGenerator::Next() {
  MedicalRecord r;
  r.patient_id = static_cast<int64_t>(next_patient_++);
  r.age = rng_.UniformInt(0, 99);
  r.diagnosis = rng_.UniformInt(0, 9999);
  r.cost = rng_.UniformInt(1000, 10'000'000);
  return r;
}

std::vector<std::vector<Value>> MedicalGenerator::Rows(size_t count) {
  std::vector<std::vector<Value>> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const MedicalRecord r = Next();
    out.push_back({Value::Int(r.patient_id), Value::Int(r.age),
                   Value::Int(r.diagnosis), Value::Int(r.cost)});
  }
  return out;
}

TableSchema MedicalGenerator::MedicalSchema(const std::string& table_name) {
  TableSchema schema;
  schema.table_name = table_name;
  schema.columns = {
      IntColumn("patient_id", 0, 100'000'000),
      IntColumn("age", 0, 99),
      IntColumn("diagnosis", 0, 9999),
      IntColumn("cost", 0, 10'000'000),
  };
  return schema;
}

std::vector<uint64_t> DocumentGenerator::Document(size_t words) {
  std::vector<uint64_t> doc;
  doc.reserve(words);
  while (doc.size() < words) {
    const uint64_t w = zipf_.Sample(&rng_);
    if (std::find(doc.begin(), doc.end(), w) == doc.end()) doc.push_back(w);
    if (doc.size() >= vocab_) break;
  }
  return doc;
}

std::vector<uint64_t> DocumentGenerator::Corpus(size_t docs,
                                                size_t words_per_doc) {
  std::vector<uint64_t> corpus;
  corpus.reserve(docs * words_per_doc);
  for (size_t d = 0; d < docs; ++d) {
    const std::vector<uint64_t> doc = Document(words_per_doc);
    corpus.insert(corpus.end(), doc.begin(), doc.end());
  }
  return corpus;
}

}  // namespace ssdb
