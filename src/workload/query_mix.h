// A YCSB-style mixed-operation driver over an outsourced Employees table.
//
// Generates a reproducible stream of point lookups, ranges, aggregates,
// updates, deletes and inserts in configurable ratios and drives them
// through the public API — used by bench_mixed_workload to measure the
// system under a realistic operation blend rather than one query class
// at a time.

#ifndef SSDB_WORKLOAD_QUERY_MIX_H_
#define SSDB_WORKLOAD_QUERY_MIX_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {

/// Operation ratios (normalized internally; they need not sum to 1).
struct MixRatios {
  double point_lookup = 0.35;
  double range_scan = 0.25;
  double aggregate = 0.15;
  double update = 0.15;
  double insert = 0.07;
  double erase = 0.03;
};

/// Per-operation-class counters.
struct MixStats {
  uint64_t point_lookups = 0;
  uint64_t range_scans = 0;
  uint64_t aggregates = 0;
  uint64_t updates = 0;
  uint64_t inserts = 0;
  uint64_t erases = 0;
  uint64_t rows_touched = 0;

  uint64_t total_ops() const {
    return point_lookups + range_scans + aggregates + updates + inserts +
           erases;
  }
};

/// \brief Drives a reproducible mixed workload against one table created
/// with EmployeeGenerator::EmployeesSchema().
class QueryMixDriver {
 public:
  QueryMixDriver(OutsourcedDatabase* db, std::string table, uint64_t seed,
                 MixRatios ratios = MixRatios());

  /// Runs `count` operations; stops at the first hard error.
  Status RunOps(size_t count);

  const MixStats& stats() const { return stats_; }

 private:
  Status RunOne();

  OutsourcedDatabase* db_;
  std::string table_;
  Rng rng_;
  EmployeeGenerator gen_;
  MixRatios ratios_;
  double total_ratio_;
  MixStats stats_;
};

}  // namespace ssdb

#endif  // SSDB_WORKLOAD_QUERY_MIX_H_
