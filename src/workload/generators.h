// Synthetic workload generators.
//
// The paper's scenarios — the Employees table of §III, the "1 million
// medical records" cost anecdote of §II.A, and the document sets of the
// private-intersection experiment — are regenerated synthetically here.
// Generators are deterministic from a seed so every benchmark run is
// reproducible.

#ifndef SSDB_WORKLOAD_GENERATORS_H_
#define SSDB_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "codec/schema.h"
#include "codec/value.h"
#include "common/rng.h"

namespace ssdb {

/// Value distribution for numeric columns.
enum class Distribution {
  kUniform,
  kZipf,        ///< Skewed (theta = 0.9).
  kSequential,  ///< 0, 1, 2, ... (worst case for bucketization).
};

/// \brief Random fixed-width upper-case names (pronounceable syllables).
class NameGenerator {
 public:
  explicit NameGenerator(uint64_t seed) : rng_(seed) {}
  /// A name of length in [3, max_len].
  std::string Next(uint32_t max_len = 8);

 private:
  Rng rng_;
};

/// The §III Employees table: name / salary / dept.
struct EmployeeRow {
  std::string name;
  int64_t salary = 0;
  int64_t dept = 0;
};

/// \brief Generator for Employees workloads.
class EmployeeGenerator {
 public:
  static constexpr int64_t kSalaryLo = 0;
  static constexpr int64_t kSalaryHi = 200000;
  static constexpr int64_t kMaxDept = 99;

  EmployeeGenerator(uint64_t seed, Distribution salary_dist)
      : rng_(seed), names_(seed ^ 0x9E3779B9), dist_(salary_dist),
        zipf_(kSalaryHi + 1, 0.9) {}

  EmployeeRow Next();
  /// `count` rows as Value rows matching EmployeesSchema().
  std::vector<std::vector<Value>> Rows(size_t count);

  /// The matching table schema (name exact+range; salary/dept both).
  static TableSchema EmployeesSchema(const std::string& table_name = "Employees");

 private:
  Rng rng_;
  NameGenerator names_;
  Distribution dist_;
  Zipf zipf_;
  uint64_t seq_ = 0;
};

/// The §II.A medical-records anecdote: patient / age / diagnosis / cost.
struct MedicalRecord {
  int64_t patient_id = 0;
  int64_t age = 0;
  int64_t diagnosis = 0;  ///< ICD-like code in [0, 9999].
  int64_t cost = 0;       ///< Treatment cost in cents.
};

/// \brief Generator for medical-record workloads.
class MedicalGenerator {
 public:
  explicit MedicalGenerator(uint64_t seed) : rng_(seed) {}

  MedicalRecord Next();
  std::vector<std::vector<Value>> Rows(size_t count);

  static TableSchema MedicalSchema(const std::string& table_name = "Medical");

 private:
  Rng rng_;
  uint64_t next_patient_ = 1;
};

/// \brief Document sets for the private-intersection experiment (§II.A):
/// each document is a set of word ids drawn Zipf-style from a vocabulary.
class DocumentGenerator {
 public:
  DocumentGenerator(uint64_t seed, uint64_t vocabulary_size)
      : rng_(seed), vocab_(vocabulary_size), zipf_(vocabulary_size, 0.8) {}

  /// One document of `words` distinct word ids.
  std::vector<uint64_t> Document(size_t words);
  /// A corpus of `docs` documents with `words` words each, flattened into
  /// one multiset of word ids (the paper's experiment intersects the
  /// word sets of two corpora).
  std::vector<uint64_t> Corpus(size_t docs, size_t words_per_doc);

 private:
  Rng rng_;
  uint64_t vocab_;
  Zipf zipf_;
};

}  // namespace ssdb

#endif  // SSDB_WORKLOAD_GENERATORS_H_
