#include "codec/value.h"

namespace ssdb {

void Value::EncodeTo(Buffer* buf) const {
  buf->PutU8(static_cast<uint8_t>(type_));
  if (is_int()) {
    buf->PutI64(i_);
  } else {
    buf->PutLengthPrefixed(Slice(s_));
  }
}

Status Value::DecodeFrom(Decoder* dec, Value* out) {
  uint8_t tag = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU8(&tag));
  if (tag == static_cast<uint8_t>(ValueType::kInt64)) {
    int64_t v = 0;
    SSDB_RETURN_IF_ERROR(dec->GetI64(&v));
    *out = Value::Int(v);
    return Status::OK();
  }
  if (tag == static_cast<uint8_t>(ValueType::kString)) {
    std::string s;
    SSDB_RETURN_IF_ERROR(dec->GetLengthPrefixedString(&s));
    *out = Value::Str(std::move(s));
    return Status::OK();
  }
  return Status::Corruption("Value: unknown type tag");
}

}  // namespace ssdb
