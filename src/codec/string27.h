// Base-27 string encoding (Section V.B of the paper).
//
// Fixed-width strings over the alphabet {*, A..Z} (with '*' the blank
// padding character) are enumerated as numbers in base 27:
//     * = 0, A = 1, B = 2, ..., Z = 26,
// most significant character first, padded with blanks on the right. The
// paper's example: "ABC" at width 5 becomes (1 2 3 0 0)_27 = 572994.
// (The paper's prose quotes 21998878, which cannot be a width-5 code at
// all — 27^5 = 14348907 — so we reproduce the *scheme* and the tests pin
// the correct arithmetic.)
//
// The encoding is order-isomorphic to the lexicographic order of the
// padded strings, so exact-match, prefix ("starts with AB") and range
// ("between Albert and Jack") queries on names all reduce to the numeric
// machinery. Width is limited to 12 characters so encodings stay below
// 27^12 < 2^58 and fit the sharing domain.

#ifndef SSDB_CODEC_STRING27_H_
#define SSDB_CODEC_STRING27_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sss/order_preserving.h"

namespace ssdb {

/// \brief Codec between width-limited upper-case strings and base-27
/// integers.
class String27 {
 public:
  static constexpr uint32_t kMaxWidth = 12;
  static constexpr char kBlank = '*';

  /// Creates a codec for the given fixed width (1..12).
  static Result<String27> Create(uint32_t width);

  uint32_t width() const { return width_; }
  /// The numeric domain the encodings live in: [0, 27^width - 1].
  OpDomain domain() const { return OpDomain{0, max_code_}; }

  /// Encodes `s` (length <= width; upper-case letters only; lower-case is
  /// folded). Shorter strings are right-padded with blanks.
  Result<int64_t> Encode(const std::string& s) const;

  /// Decodes a code back to the unpadded string.
  Result<std::string> Decode(int64_t code) const;

  /// Numeric interval covering exactly the strings with prefix `prefix`
  /// ("name LIKE 'AB%'").
  Result<OpDomain> PrefixRange(const std::string& prefix) const;

  /// Numeric interval covering the lexicographic closed range [lo, hi]
  /// ("name BETWEEN 'ALBERT' AND 'JACK'"). A reversed range (lo > hi)
  /// matches nothing: with `empty_out` null that is an InvalidArgument
  /// error; with `empty_out` non-null it sets *empty_out and returns the
  /// (unusable) reversed interval so callers can treat the predicate as
  /// provably empty instead of failing the whole query.
  Result<OpDomain> LexRange(const std::string& lo, const std::string& hi,
                            bool* empty_out = nullptr) const;

 private:
  explicit String27(uint32_t width);

  static Result<int> CharCode(char c);

  uint32_t width_;
  int64_t max_code_;  // 27^width - 1
};

}  // namespace ssdb

#endif  // SSDB_CODEC_STRING27_H_
