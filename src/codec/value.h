// Typed values exchanged through the public API.
//
// The query surface of the paper is integer-centric (salaries) plus
// fixed-width upper-case strings that are funneled through the base-27
// numeric encoding of Section V.B (see codec/string27.h). A Value is a
// tagged union of the two.

#ifndef SSDB_CODEC_VALUE_H_
#define SSDB_CODEC_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/buffer.h"
#include "common/status.h"

namespace ssdb {

enum class ValueType : uint8_t {
  kInt64 = 0,
  kString = 1,
};

/// \brief A typed scalar: 64-bit signed integer or a string.
class Value {
 public:
  Value() : type_(ValueType::kInt64), i_(0) {}

  static Value Int(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt64;
    out.i_ = v;
    return out;
  }
  static Value Str(std::string s) {
    Value out;
    out.type_ = ValueType::kString;
    out.s_ = std::move(s);
    return out;
  }

  ValueType type() const { return type_; }
  bool is_int() const { return type_ == ValueType::kInt64; }
  bool is_string() const { return type_ == ValueType::kString; }

  int64_t AsInt() const { return i_; }
  const std::string& AsString() const { return s_; }

  bool operator==(const Value& o) const {
    if (type_ != o.type_) return false;
    return is_int() ? i_ == o.i_ : s_ == o.s_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Human-readable rendering for examples and logs.
  std::string ToString() const {
    return is_int() ? std::to_string(i_) : "'" + s_ + "'";
  }

  /// Wire encoding (type tag + payload).
  void EncodeTo(Buffer* buf) const;
  static Status DecodeFrom(Decoder* dec, Value* out);

 private:
  ValueType type_;
  int64_t i_ = 0;
  std::string s_;
};

}  // namespace ssdb

#endif  // SSDB_CODEC_VALUE_H_
