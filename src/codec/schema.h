// Table schemas and column sharing capabilities.
//
// The data source declares, per column, which provider-side operations the
// column must support; that choice determines which share representations
// are materialized at the providers:
//
//   capability        share stored at each provider        enables (§V.A)
//   ---------------   ----------------------------------   -----------------
//   (always)          random Shamir share  (Fp61)          reconstruction,
//                                                          SUM/AVG partials
//   kExactMatch       deterministic Shamir share (Fp61)    point lookups,
//                                                          same-domain joins
//   kRange            order-preserving share (u128)        range filtering,
//                                                          MIN/MAX/MEDIAN
//
// Columns carry a `domain_name`; the sharing polynomials are constructed
// per *domain*, not per attribute ("our polynomials are constructed for
// each domain not for each attribute", §V.A Join), so two columns with the
// same domain name are joinable on shares and columns with different
// domains are not (the paper's cross-domain join limitation).

#ifndef SSDB_CODEC_SCHEMA_H_
#define SSDB_CODEC_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "codec/string27.h"
#include "codec/value.h"
#include "common/buffer.h"
#include "common/hash.h"
#include "common/status.h"
#include "sss/order_preserving.h"

namespace ssdb {

/// Provider-side operations a column must support (bitmask).
enum ColumnCaps : uint32_t {
  kCapNone = 0,        ///< Reconstruction and SUM only.
  kCapExactMatch = 1,  ///< Provider-side equality / join on shares.
  kCapRange = 2,       ///< Provider-side range filtering (order-preserving).
};

/// \brief Declaration of one column.
struct ColumnSpec {
  std::string name;
  ValueType type = ValueType::kInt64;
  uint32_t caps = kCapNone;
  /// Join-compatibility class; defaults to the column name when empty.
  std::string domain_name;
  /// Value domain for kInt64 columns (inclusive); required.
  OpDomain int_domain;
  /// Fixed width for kString columns (1..12).
  uint32_t string_width = 0;

  bool exact_match() const { return (caps & kCapExactMatch) != 0; }
  bool range() const { return (caps & kCapRange) != 0; }

  /// The numeric code domain of this column (int_domain, or [0, 27^w-1]).
  Result<OpDomain> CodeDomain() const;

  /// Domain tag used to key deterministic polynomials; equal for columns
  /// of the same domain.
  uint64_t DomainTag() const {
    const std::string& d = domain_name.empty() ? name : domain_name;
    return Fnv1a64(Slice(d));
  }

  /// Maps a typed value into its numeric code (checking the domain).
  Result<int64_t> EncodeToCode(const Value& v) const;
  /// Maps a code back to a typed value.
  Result<Value> DecodeFromCode(int64_t code) const;
};

/// Convenience constructors.
ColumnSpec IntColumn(std::string name, int64_t lo, int64_t hi,
                     uint32_t caps = kCapExactMatch | kCapRange,
                     std::string domain_name = "");
ColumnSpec StringColumn(std::string name, uint32_t width,
                        uint32_t caps = kCapExactMatch | kCapRange,
                        std::string domain_name = "");

/// \brief A named table: ordered list of column declarations.
struct TableSchema {
  std::string table_name;
  std::vector<ColumnSpec> columns;

  Status Validate() const;
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Checks a row against the schema (arity, types, domains).
  Status ValidateRow(const std::vector<Value>& row) const;
};

/// What a provider is told about a column: only which share kinds exist.
/// Domains, widths, and domain names never leave the data source.
struct ProviderColumnLayout {
  bool has_det = false;
  bool has_op = false;

  void EncodeTo(Buffer* buf) const;
  static Status DecodeFrom(Decoder* dec, ProviderColumnLayout* out);
};

/// Derives the provider-visible layout of a schema.
std::vector<ProviderColumnLayout> ProviderLayout(const TableSchema& schema);

}  // namespace ssdb

#endif  // SSDB_CODEC_SCHEMA_H_
