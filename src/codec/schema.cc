#include "codec/schema.h"

namespace ssdb {

Result<OpDomain> ColumnSpec::CodeDomain() const {
  if (type == ValueType::kInt64) {
    if (int_domain.hi < int_domain.lo) {
      return Status::InvalidArgument("column '" + name +
                                     "': int domain hi < lo");
    }
    return int_domain;
  }
  SSDB_ASSIGN_OR_RETURN(String27 codec, String27::Create(string_width));
  return codec.domain();
}

Result<int64_t> ColumnSpec::EncodeToCode(const Value& v) const {
  if (v.type() != type) {
    return Status::InvalidArgument("column '" + name +
                                   "': value type mismatch");
  }
  if (type == ValueType::kInt64) {
    if (!int_domain.Contains(v.AsInt())) {
      return Status::OutOfRange("column '" + name +
                                "': value outside declared domain");
    }
    return v.AsInt();
  }
  SSDB_ASSIGN_OR_RETURN(String27 codec, String27::Create(string_width));
  return codec.Encode(v.AsString());
}

Result<Value> ColumnSpec::DecodeFromCode(int64_t code) const {
  if (type == ValueType::kInt64) {
    if (!int_domain.Contains(code)) {
      return Status::Corruption("column '" + name +
                                "': reconstructed code outside domain");
    }
    return Value::Int(code);
  }
  SSDB_ASSIGN_OR_RETURN(String27 codec, String27::Create(string_width));
  SSDB_ASSIGN_OR_RETURN(std::string s, codec.Decode(code));
  return Value::Str(std::move(s));
}

ColumnSpec IntColumn(std::string name, int64_t lo, int64_t hi, uint32_t caps,
                     std::string domain_name) {
  ColumnSpec c;
  c.name = std::move(name);
  c.type = ValueType::kInt64;
  c.caps = caps;
  c.domain_name = std::move(domain_name);
  c.int_domain = OpDomain{lo, hi};
  return c;
}

ColumnSpec StringColumn(std::string name, uint32_t width, uint32_t caps,
                        std::string domain_name) {
  ColumnSpec c;
  c.name = std::move(name);
  c.type = ValueType::kString;
  c.caps = caps;
  c.domain_name = std::move(domain_name);
  c.string_width = width;
  return c;
}

Status TableSchema::Validate() const {
  if (table_name.empty()) {
    return Status::InvalidArgument("schema: empty table name");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("schema: table needs at least one column");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    const ColumnSpec& c = columns[i];
    if (c.name.empty()) {
      return Status::InvalidArgument("schema: empty column name");
    }
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (columns[j].name == c.name) {
        return Status::AlreadyExists("schema: duplicate column '" + c.name +
                                     "'");
      }
    }
    SSDB_ASSIGN_OR_RETURN(OpDomain dom, c.CodeDomain());
    if (dom.size() > (static_cast<u128>(1)
                      << OrderPreservingScheme::kMaxDomainBits)) {
      return Status::InvalidArgument("schema: column '" + c.name +
                                     "' domain wider than 2^60 values");
    }
    // Columns sharing a domain name must declare identical code domains,
    // or deterministic shares would not align across them.
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (columns[j].DomainTag() != c.DomainTag()) continue;
      SSDB_ASSIGN_OR_RETURN(OpDomain other, columns[j].CodeDomain());
      if (other.lo != dom.lo || other.hi != dom.hi) {
        return Status::InvalidArgument(
            "schema: columns '" + c.name + "' and '" + columns[j].name +
            "' share a domain but declare different code domains");
      }
    }
  }
  return Status::OK();
}

Result<size_t> TableSchema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return i;
  }
  return Status::NotFound("schema: no column '" + name + "' in table '" +
                          table_name + "'");
}

Status TableSchema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns.size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    SSDB_ASSIGN_OR_RETURN(int64_t code, columns[i].EncodeToCode(row[i]));
    (void)code;
  }
  return Status::OK();
}

void ProviderColumnLayout::EncodeTo(Buffer* buf) const {
  buf->PutBool(has_det);
  buf->PutBool(has_op);
}

Status ProviderColumnLayout::DecodeFrom(Decoder* dec,
                                        ProviderColumnLayout* out) {
  SSDB_RETURN_IF_ERROR(dec->GetBool(&out->has_det));
  SSDB_RETURN_IF_ERROR(dec->GetBool(&out->has_op));
  return Status::OK();
}

std::vector<ProviderColumnLayout> ProviderLayout(const TableSchema& schema) {
  std::vector<ProviderColumnLayout> out(schema.columns.size());
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    out[i].has_det = schema.columns[i].exact_match();
    out[i].has_op = schema.columns[i].range();
  }
  return out;
}

}  // namespace ssdb
