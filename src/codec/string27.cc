#include "codec/string27.h"

namespace ssdb {

String27::String27(uint32_t width) : width_(width) {
  int64_t max_code = 1;
  for (uint32_t i = 0; i < width; ++i) max_code *= 27;
  max_code_ = max_code - 1;
}

Result<String27> String27::Create(uint32_t width) {
  if (width < 1 || width > kMaxWidth) {
    return Status::InvalidArgument(
        "String27: width must be in [1, 12] (27^12 < 2^58)");
  }
  return String27(width);
}

Result<int> String27::CharCode(char c) {
  if (c == kBlank) return 0;
  if (c >= 'A' && c <= 'Z') return c - 'A' + 1;
  if (c >= 'a' && c <= 'z') return c - 'a' + 1;
  return Status::InvalidArgument(
      std::string("String27: character '") + c +
      "' outside the {*, A..Z} alphabet");
}

Result<int64_t> String27::Encode(const std::string& s) const {
  if (s.size() > width_) {
    return Status::OutOfRange("String27: string longer than declared width");
  }
  int64_t code = 0;
  for (uint32_t i = 0; i < width_; ++i) {
    int digit = 0;
    if (i < s.size()) {
      SSDB_ASSIGN_OR_RETURN(digit, CharCode(s[i]));
    }
    code = code * 27 + digit;
  }
  return code;
}

Result<std::string> String27::Decode(int64_t code) const {
  if (code < 0 || code > max_code_) {
    return Status::OutOfRange("String27: code outside 27^width domain");
  }
  std::string padded(width_, kBlank);
  for (uint32_t i = width_; i-- > 0;) {
    const int digit = static_cast<int>(code % 27);
    code /= 27;
    padded[i] = digit == 0 ? kBlank : static_cast<char>('A' + digit - 1);
  }
  // Strip the right padding (interior blanks, while unusual, are kept).
  size_t end = padded.size();
  while (end > 0 && padded[end - 1] == kBlank) --end;
  return padded.substr(0, end);
}

Result<OpDomain> String27::PrefixRange(const std::string& prefix) const {
  if (prefix.size() > width_) {
    return Status::OutOfRange("String27: prefix longer than width");
  }
  // Low end: prefix padded with blanks (digit 0); high end: prefix padded
  // with 'Z' (digit 26).
  int64_t lo = 0, hi = 0;
  for (uint32_t i = 0; i < width_; ++i) {
    int lo_digit = 0, hi_digit = 26;
    if (i < prefix.size()) {
      SSDB_ASSIGN_OR_RETURN(lo_digit, CharCode(prefix[i]));
      hi_digit = lo_digit;
    }
    lo = lo * 27 + lo_digit;
    hi = hi * 27 + hi_digit;
  }
  return OpDomain{lo, hi};
}

Result<OpDomain> String27::LexRange(const std::string& lo,
                                    const std::string& hi,
                                    bool* empty_out) const {
  if (empty_out != nullptr) *empty_out = false;
  SSDB_ASSIGN_OR_RETURN(int64_t lo_code, Encode(lo));
  // The upper end is inclusive of every padded string that starts with
  // `hi`: encode hi then fill the tail with 'Z'.
  SSDB_ASSIGN_OR_RETURN(OpDomain hi_range, PrefixRange(hi));
  if (lo_code > hi_range.hi) {
    if (empty_out != nullptr) {
      *empty_out = true;
      return OpDomain{lo_code, hi_range.hi};
    }
    return Status::InvalidArgument("String27: empty lexicographic range");
  }
  return OpDomain{lo_code, hi_range.hi};
}

}  // namespace ssdb
