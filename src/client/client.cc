#include "client/client.h"

#include <algorithm>
#include <mutex>

#include "client/sql.h"
#include "field/poly.h"
#include "plan/executor.h"
#include "plan/planner.h"

namespace ssdb {

namespace {

/// Tries to reconstruct from all shares; on inconsistency, retries with
/// each single provider excluded (recovers from one corrupt provider when
/// the remaining shares still self-validate, i.e. >= k+1 of them).
Result<Fp61> RobustFieldReconstruct(const SharingContext& ctx,
                                    const std::vector<IndexedShare>& shares) {
  Result<Fp61> direct = ctx.Reconstruct(shares);
  if (direct.ok() || !direct.status().IsCorruption()) return direct;
  if (shares.size() < ctx.k() + 2) return direct;  // cannot localize
  for (size_t excluded = 0; excluded < shares.size(); ++excluded) {
    std::vector<IndexedShare> subset;
    subset.reserve(shares.size() - 1);
    for (size_t i = 0; i < shares.size(); ++i) {
      if (i != excluded) subset.push_back(shares[i]);
    }
    Result<Fp61> retry = ctx.Reconstruct(subset);
    if (retry.ok()) return retry;
  }
  return direct;
}

}  // namespace

DataSourceClient::DataSourceClient(Network* network,
                                   std::vector<size_t> providers,
                                   ClientOptions options, SharingContext ctx,
                                   std::vector<uint32_t> op_xs)
    : network_(network),
      providers_(std::move(providers)),
      options_(std::move(options)),
      topology_(options_.topology),
      ctx_(std::move(ctx)),
      op_xs_(std::move(op_xs)),
      rng_(options_.rng_seed),
      prf_det_(Prf::Derive(Slice(options_.master_key), Slice("det"))),
      prf_tag_(Prf::Derive(Slice(options_.master_key), Slice("tag"))),
      prf_op_master_(Prf::Derive(Slice(options_.master_key), Slice("op"))) {
  // Register the ssdb_client_* series once and cache the handles: these
  // replaced the ClientStats atomics, so hot-path bumps stay lock-free.
  cm_.queries = metrics_.GetCounter("ssdb_client_queries_total");
  cm_.rows_reconstructed =
      metrics_.GetCounter("ssdb_client_rows_reconstructed_total");
  cm_.corruption_retries =
      metrics_.GetCounter("ssdb_client_corruption_retries_total");
  cm_.lazy_flushes = metrics_.GetCounter("ssdb_client_lazy_flushes_total");
  cm_.traced_bytes_sent =
      metrics_.GetCounter("ssdb_client_traced_bytes_sent_total");
  cm_.traced_bytes_received =
      metrics_.GetCounter("ssdb_client_traced_bytes_received_total");
  cm_.traced_clock_us =
      metrics_.GetCounter("ssdb_client_traced_clock_us_total");
  cm_.provider_legs = metrics_.GetCounter("ssdb_client_provider_legs_total");
  cm_.plan_nodes_executed =
      metrics_.GetCounter("ssdb_client_plan_nodes_executed_total");
  cm_.retry_legs = metrics_.GetCounter("ssdb_client_retry_legs_total");
  cm_.hedged_legs = metrics_.GetCounter("ssdb_client_hedged_legs_total");
  cm_.deadline_exceeded =
      metrics_.GetCounter("ssdb_client_deadline_exceeded_total");
  cm_.breaker_skips = metrics_.GetCounter("ssdb_client_breaker_skips_total");
  scoreboard_.AttachTelemetry(&metrics_, &tracer_);
  // Slice the flat provider list into shard groups: group s owns
  // providers_[s*n_per .. (s+1)*n_per), and position p within a group is
  // share evaluation point p.
  shard_providers_.resize(topology_.shards);
  for (size_t s = 0; s < topology_.shards; ++s) {
    const size_t n_per = topology_.providers_per_shard;
    shard_providers_[s].assign(
        providers_.begin() + static_cast<long>(s * n_per),
        providers_.begin() + static_cast<long>((s + 1) * n_per));
  }
}

ClientStats DataSourceClient::stats() const {
  ClientStats s;
  s.queries = cm_.queries->value();
  s.rows_reconstructed = cm_.rows_reconstructed->value();
  s.corruption_retries = cm_.corruption_retries->value();
  s.lazy_flushes = cm_.lazy_flushes->value();
  s.traced_bytes_sent = cm_.traced_bytes_sent->value();
  s.traced_bytes_received = cm_.traced_bytes_received->value();
  s.traced_clock_us = cm_.traced_clock_us->value();
  s.provider_legs = cm_.provider_legs->value();
  s.plan_nodes_executed = cm_.plan_nodes_executed->value();
  s.attempts = cm_.retry_legs->value();
  s.hedged_legs = cm_.hedged_legs->value();
  s.deadline_exceeded = cm_.deadline_exceeded->value();
  s.breaker_skips = cm_.breaker_skips->value();
  return s;
}

Result<std::unique_ptr<DataSourceClient>> DataSourceClient::Create(
    Network* network, std::vector<size_t> providers, ClientOptions options) {
  const size_t n = providers.size();
  if (network == nullptr) {
    return Status::InvalidArgument("client: null network");
  }
  if (n == 0 ||
      (options.topology.threshold == 0 &&
       (options.k == 0 || options.k > n))) {
    return Status::InvalidArgument("client: require 1 <= k <= n, n > 0");
  }
  if (options.topology.shards <= 1 && n > 255) {
    return Status::InvalidArgument(
        "client: at most 255 providers (order-preserving x points)");
  }
  for (size_t p : providers) {
    if (p >= network->num_providers()) {
      return Status::InvalidArgument("client: provider index out of range");
    }
  }
  if (options.lazy_updates && options.lazy_flush_threshold == 0) {
    return Status::InvalidArgument(
        "client: lazy_flush_threshold must be >= 1 with lazy updates "
        "(a zero threshold would never auto-flush the write log)");
  }

  // Resolve the deployment topology: explicit Topology fields win; zeros
  // inherit the deprecated flat aliases, yielding the seed 1-shard shape.
  Topology topo = options.topology;
  if (topo.shards == 0) topo.shards = 1;
  if (topo.providers_per_shard == 0) {
    if (n % topo.shards != 0) {
      return Status::InvalidArgument(
          "client: provider count does not divide into topology.shards "
          "equal groups");
    }
    topo.providers_per_shard = n / topo.shards;
  }
  if (topo.threshold == 0) topo.threshold = options.k;
  if (topo.total_providers() != n) {
    return Status::InvalidArgument(
        "client: topology requires shards * providers_per_shard == "
        "provider count");
  }
  SSDB_RETURN_IF_ERROR(ValidateTopology(topo));
  options.topology = topo;
  options.k = topo.threshold;  // deprecated alias stays in sync
  const size_t n_per = topo.providers_per_shard;

  // Secret evaluation points X for the field sharing, derived from the
  // master key (the "secret information X, known only to the data
  // source" of §III). One set of per-position points serves every shard
  // group: a row's share at group position p is evaluated at X[p]
  // regardless of which group stores it.
  const Prf xprf = Prf::Derive(Slice(options.master_key), Slice("X"));
  std::vector<Fp61> xs;
  uint64_t tweak = 0;
  while (xs.size() < n_per) {
    const Fp61 cand =
        Fp61::FromCanonical(xprf.EvalUniform(xs.size(), tweak++,
                                             Fp61::kP - 1) +
                            1);
    if (std::find(xs.begin(), xs.end(), cand) == xs.end()) xs.push_back(cand);
  }
  SSDB_ASSIGN_OR_RETURN(SharingContext ctx,
                        SharingContext::Create(n_per, options.k,
                                               std::move(xs)));

  // Small distinct evaluation points for the order-preserving polynomials.
  std::vector<uint32_t> pool(OrderPreservingScheme::kMaxX);
  for (uint32_t i = 0; i < pool.size(); ++i) pool[i] = i + 1;
  Rng xrng(xprf.Eval64(0xFEED, 0));
  xrng.Shuffle(&pool);
  std::vector<uint32_t> op_xs(pool.begin(),
                              pool.begin() + static_cast<long>(n_per));

  return std::unique_ptr<DataSourceClient>(
      new DataSourceClient(network, std::move(providers), std::move(options),
                           std::move(ctx), std::move(op_xs)));
}

// --- Share construction ------------------------------------------------------

Result<OrderPreservingScheme*> DataSourceClient::GetOpScheme(
    const ColumnSpec& column) {
  const uint64_t tag = column.DomainTag();
  std::lock_guard<std::mutex> lock(op_mu_);
  auto it = op_schemes_.find(tag);
  if (it != op_schemes_.end()) return it->second.get();

  if (options_.k < 2) {
    return Status::InvalidArgument(
        "client: order-preserving shares need k >= 2");
  }
  SSDB_ASSIGN_OR_RETURN(OpDomain domain, column.CodeDomain());
  const int degree = static_cast<int>(std::min<size_t>(options_.k - 1, 3));
  const Prf dom_prf(prf_op_master_.Eval64(tag, 1),
                    prf_op_master_.Eval64(tag, 2));
  SSDB_ASSIGN_OR_RETURN(
      OrderPreservingScheme scheme,
      OrderPreservingScheme::Create(dom_prf, domain, degree, op_xs_,
                                    options_.op_mode));
  auto owned = std::make_unique<OrderPreservingScheme>(std::move(scheme));
  OrderPreservingScheme* raw = owned.get();
  op_schemes_.emplace(tag, std::move(owned));
  return raw;
}

uint64_t DataSourceClient::RowTag(uint32_t table_id, uint64_t row_id,
                                  const std::vector<int64_t>& codes) const {
  Buffer buf;
  buf.PutU32(table_id);
  buf.PutU64(row_id);
  for (int64_t c : codes) buf.PutI64(c);
  return prf_tag_.EvalBytes(buf.AsSlice());
}

Result<size_t> DataSourceClient::ShardOfRow(const TableInfo& info,
                                            const std::vector<Value>& row) {
  if (topology_.shards <= 1) return static_cast<size_t>(0);
  const ColumnSpec& key = info.schema.columns[0];
  SSDB_ASSIGN_OR_RETURN(int64_t code, key.EncodeToCode(row[0]));
  SSDB_ASSIGN_OR_RETURN(OpDomain dom, key.CodeDomain());
  return ShardForCode(topology_.partitioner, topology_.shards, code, dom);
}

Result<std::vector<StoredRow>> DataSourceClient::BuildShareRows(
    TableInfo* info, uint64_t row_id, const std::vector<Value>& row) {
  const TableSchema& schema = info->schema;
  SSDB_RETURN_IF_ERROR(schema.ValidateRow(row));

  const size_t num_providers = topology_.providers_per_shard;
  std::vector<StoredRow> out(num_providers);
  for (size_t p = 0; p < num_providers; ++p) {
    out[p].row_id = row_id;
    out[p].cells.resize(schema.columns.size());
  }

  std::vector<int64_t> codes(schema.columns.size());
  for (size_t c = 0; c < schema.columns.size(); ++c) {
    const ColumnSpec& col = schema.columns[c];
    SSDB_ASSIGN_OR_RETURN(int64_t code, col.EncodeToCode(row[c]));
    codes[c] = code;
    SSDB_ASSIGN_OR_RETURN(OpDomain dom, col.CodeDomain());
    const uint64_t w =
        static_cast<uint64_t>(code) - static_cast<uint64_t>(dom.lo);
    const Fp61 secret = Fp61::FromU64(w);

    const std::vector<Fp61> random_shares = ctx_.Split(secret, &rng_);
    for (size_t p = 0; p < num_providers; ++p) {
      out[p].cells[c].secret = random_shares[p].value();
    }
    if (col.exact_match()) {
      const std::vector<Fp61> det =
          ctx_.SplitDeterministic(prf_det_, col.DomainTag(), secret);
      for (size_t p = 0; p < num_providers; ++p) {
        out[p].cells[c].det = det[p].value();
      }
    }
    if (col.range()) {
      SSDB_ASSIGN_OR_RETURN(OrderPreservingScheme * scheme, GetOpScheme(col));
      SSDB_ASSIGN_OR_RETURN(std::vector<u128> op, scheme->ShareAll(code));
      for (size_t p = 0; p < num_providers; ++p) {
        out[p].cells[c].op = op[p];
      }
    }
  }

  const uint64_t tag = RowTag(info->id, row_id, codes);
  for (size_t p = 0; p < num_providers; ++p) out[p].tag = tag;
  return out;
}

// --- Transport ----------------------------------------------------------------

namespace {
/// True when `request` is a mutating wire message (type byte inspection).
bool IsMutatingRequest(const Buffer& request) {
  Slice bytes = request.AsSlice();
  return !bytes.empty() && IsMutatingMessage(static_cast<MsgType>(bytes[0]));
}
}  // namespace

Status DataSourceClient::CallGroup(const std::vector<size_t>& providers,
                                   const std::vector<Buffer>& requests) {
  // Killed providers absorb their mutating legs into the resync queue:
  // the write succeeds on the survivors and the exact bytes replay at
  // Restart. Non-mutating legs still travel (and fail Unavailable),
  // matching kDown semantics.
  std::vector<size_t> live;
  std::vector<Buffer> live_requests;
  {
    std::lock_guard<std::mutex> lock(outage_mu_);
    if (!out_providers_.empty()) {
      for (size_t i = 0; i < providers.size(); ++i) {
        if (out_providers_.count(providers[i]) != 0 &&
            IsMutatingRequest(requests[i])) {
          Buffer copy;
          copy.Append(requests[i].AsSlice());
          pending_resync_[providers[i]].push_back(std::move(copy));
          continue;
        }
        live.push_back(providers[i]);
        Buffer copy;
        copy.Append(requests[i].AsSlice());
        live_requests.push_back(std::move(copy));
      }
      if (live.empty()) return Status::OK();
    }
  }
  const bool intercepted = !live.empty();
  const std::vector<size_t>& group = intercepted ? live : providers;
  const std::vector<Buffer>& payloads =
      intercepted ? live_requests : requests;
  fanout_rounds_.fetch_add(1, std::memory_order_relaxed);
  Network::FanOutResult fan = network_->CallManyDistinct(group, payloads);
  for (size_t i = 0; i < fan.responses.size(); ++i) {
    if (!fan.responses[i].ok()) return fan.responses[i].status();
    Decoder dec(Slice(*fan.responses[i]));
    SSDB_RETURN_IF_ERROR(DecodeResponseHeader(&dec));
  }
  return Status::OK();
}

Status DataSourceClient::CallAll(const std::vector<Buffer>& requests) {
  return CallGroup(providers_, requests);
}

Status DataSourceClient::CallGroupSame(const std::vector<size_t>& providers,
                                       const Buffer& request) {
  std::vector<Buffer> requests(providers.size());
  for (auto& b : requests) b.Append(request.AsSlice());
  return CallGroup(providers, requests);
}

Status DataSourceClient::CallAllSame(const Buffer& request) {
  return CallGroupSame(providers_, request);
}

Status DataSourceClient::CallAllBatched(
    const std::vector<std::vector<Buffer>>& per_provider_ops) {
  if (per_provider_ops.size() != providers_.size()) {
    return Status::Internal("client: batched fan-out arity mismatch");
  }
  // Killed providers absorb their ops into the resync queue BEFORE
  // enveloping: the queue holds individual wire messages, never batch
  // envelopes, so catch-up replay can re-chunk them by batch_max_ops.
  std::vector<bool> skip(per_provider_ops.size(), false);
  {
    std::lock_guard<std::mutex> lock(outage_mu_);
    if (!out_providers_.empty()) {
      for (size_t p = 0; p < providers_.size(); ++p) {
        if (out_providers_.count(providers_[p]) == 0) continue;
        skip[p] = true;
        for (const Buffer& op : per_provider_ops[p]) {
          Buffer copy;
          copy.Append(op.AsSlice());
          pending_resync_[providers_[p]].push_back(std::move(copy));
        }
      }
    }
  }

  size_t total = 0;
  for (size_t p = 0; p < per_provider_ops.size(); ++p) {
    if (skip[p]) continue;
    total = std::max(total, per_provider_ops[p].size());
  }
  if (total == 0) return Status::OK();

  const size_t max_ops = std::max<size_t>(options_.batch_max_ops, 1);
  for (size_t begin = 0; begin < total; begin += max_ops) {
    // Round r covers ops [begin, begin+max_ops) of each provider's own
    // list; providers with nothing left sit the round out (sharded writes
    // produce ragged lists — all shard groups advance in parallel).
    std::vector<size_t> group;
    std::vector<Buffer> requests;
    std::vector<size_t> spans;
    for (size_t p = 0; p < providers_.size(); ++p) {
      if (skip[p]) continue;
      const std::vector<Buffer>& ops = per_provider_ops[p];
      if (begin >= ops.size()) continue;
      const size_t end = std::min(ops.size(), begin + max_ops);
      const size_t span = end - begin;
      Buffer req;
      if (span == 1) {
        // A lone op travels unwrapped: identical bytes to a plain call.
        req.Append(ops[begin].AsSlice());
      } else {
        std::vector<Slice> slices;
        slices.reserve(span);
        for (size_t i = begin; i < end; ++i) {
          slices.push_back(ops[i].AsSlice());
        }
        EncodeBatchRequest(slices, &req);
        ChargeBatchEnvelope(&metrics_, span);
      }
      group.push_back(providers_[p]);
      requests.push_back(std::move(req));
      spans.push_back(span);
    }
    fanout_rounds_.fetch_add(1, std::memory_order_relaxed);
    Network::FanOutResult fan = network_->CallManyDistinct(group, requests);
    for (size_t i = 0; i < fan.responses.size(); ++i) {
      if (!fan.responses[i].ok()) return fan.responses[i].status();
      Decoder dec(Slice(*fan.responses[i]));
      SSDB_RETURN_IF_ERROR(DecodeResponseHeader(&dec));
      if (spans[i] == 1) continue;
      std::vector<Slice> subs;
      SSDB_RETURN_IF_ERROR(DecodeBatchResponsePayload(&dec, &subs));
      if (subs.size() != spans[i]) {
        return Status::Corruption("client: batch response arity mismatch");
      }
      for (const Slice& sub : subs) {
        Decoder sub_dec(sub);
        SSDB_RETURN_IF_ERROR(DecodeResponseHeader(&sub_dec));
      }
    }
  }
  return Status::OK();
}

// --- Kill/restart recovery ------------------------------------------------------

void DataSourceClient::BeginProviderOutage(size_t network_index) {
  std::lock_guard<std::mutex> lock(outage_mu_);
  out_providers_.insert(network_index);
  pending_resync_[network_index];  // ensure the queue exists (may be empty)
}

bool DataSourceClient::provider_out(size_t network_index) const {
  std::lock_guard<std::mutex> lock(outage_mu_);
  return out_providers_.count(network_index) != 0;
}

size_t DataSourceClient::pending_resync_ops(size_t network_index) const {
  std::lock_guard<std::mutex> lock(outage_mu_);
  auto it = pending_resync_.find(network_index);
  return it == pending_resync_.end() ? 0 : it->second.size();
}

Status DataSourceClient::ResyncProvider(size_t network_index) {
  std::vector<Buffer> queued;
  {
    std::lock_guard<std::mutex> lock(outage_mu_);
    if (out_providers_.erase(network_index) == 0) return Status::OK();
    auto it = pending_resync_.find(network_index);
    if (it != pending_resync_.end()) {
      queued = std::move(it->second);
      pending_resync_.erase(it);
    }
  }

  const uint64_t start_us = network_->clock().now_us();
  // Ship the missed writes in their original order, re-chunked into batch
  // envelopes exactly like a bulk load (a lone op travels unwrapped).
  const size_t max_ops = std::max<size_t>(options_.batch_max_ops, 1);
  for (size_t begin = 0; begin < queued.size(); begin += max_ops) {
    const size_t end = std::min(queued.size(), begin + max_ops);
    const size_t span = end - begin;
    Buffer req;
    if (span == 1) {
      req.Append(queued[begin].AsSlice());
    } else {
      std::vector<Slice> slices;
      slices.reserve(span);
      for (size_t i = begin; i < end; ++i) slices.push_back(queued[i].AsSlice());
      EncodeBatchRequest(slices, &req);
      ChargeBatchEnvelope(&metrics_, span);
    }
    SSDB_ASSIGN_OR_RETURN(std::vector<uint8_t> response,
                          network_->Call(network_index, req.AsSlice()));
    Decoder dec{Slice(response)};
    SSDB_RETURN_IF_ERROR(DecodeResponseHeader(&dec));
    if (span > 1) {
      std::vector<Slice> subs;
      SSDB_RETURN_IF_ERROR(DecodeBatchResponsePayload(&dec, &subs));
      if (subs.size() != span) {
        return Status::Corruption("client: resync response arity mismatch");
      }
      for (const Slice& sub : subs) {
        Decoder sub_dec(sub);
        SSDB_RETURN_IF_ERROR(DecodeResponseHeader(&sub_dec));
      }
    }
  }

  if (!queued.empty()) {
    metrics_
        .GetCounter("ssdb_recovery_resync_ops_total",
                    {{"provider", std::to_string(network_index)}})
        ->Inc(queued.size());
  }
  tracer_.AddSpan("resync provider " + std::to_string(network_index),
                  "recovery", start_us, network_->clock().now_us() - start_us,
                  0, {{"ops", std::to_string(queued.size())}});
  return Status::OK();
}

// --- Schema & data -------------------------------------------------------------

Status DataSourceClient::CreateTable(TableSchema schema) {
  // Qualify default domain names with the table name: two tables may both
  // have a "salary" column with different domains, and they must not
  // collide in the per-domain sharing schemes. Cross-table joins require
  // an explicitly shared domain_name (the paper's per-domain polynomials).
  for (ColumnSpec& col : schema.columns) {
    if (col.domain_name.empty()) {
      col.domain_name = schema.table_name + "." + col.name;
    }
  }
  SSDB_RETURN_IF_ERROR(schema.Validate());
  if (tables_.count(schema.table_name) != 0) {
    return Status::AlreadyExists("client: table '" + schema.table_name +
                                 "' already registered");
  }
  for (const ColumnSpec& col : schema.columns) {
    if (col.range() && options_.k < 2) {
      return Status::InvalidArgument(
          "client: range column '" + col.name + "' requires k >= 2");
    }
    // Columns sharing a domain across tables must agree on the domain.
    SSDB_ASSIGN_OR_RETURN(OpDomain dom, col.CodeDomain());
    for (const auto& [other_name, other] : tables_) {
      for (const ColumnSpec& existing : other.schema.columns) {
        if (existing.DomainTag() != col.DomainTag()) continue;
        SSDB_ASSIGN_OR_RETURN(OpDomain other_dom, existing.CodeDomain());
        if (other_dom.lo != dom.lo || other_dom.hi != dom.hi) {
          return Status::InvalidArgument(
              "client: column '" + col.name + "' shares domain '" +
              col.domain_name + "' with '" + other_name + "." +
              existing.name + "' but declares a different code domain");
        }
      }
    }
  }

  TableInfo info;
  info.id = next_table_id_++;
  info.layout = ProviderLayout(schema);
  info.schema = std::move(schema);

  Buffer req;
  EncodeCreateTable(info.id, info.layout, &req);
  SSDB_RETURN_IF_ERROR(CallAllSame(req));
  const std::string name = info.schema.table_name;
  tables_.emplace(name, std::move(info));
  return Status::OK();
}

Result<const TableSchema*> DataSourceClient::GetSchema(
    const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("client: unknown table '" + table + "'");
  }
  return &it->second.schema;
}

Status DataSourceClient::Insert(const std::string& table,
                                const std::vector<std::vector<Value>>& rows) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("client: unknown table '" + table + "'");
  }
  TableInfo& info = it->second;

  if (options_.lazy_updates) {
    for (const auto& row : rows) {
      SSDB_RETURN_IF_ERROR(info.schema.ValidateRow(row));
      LazyOp op;
      op.kind = LazyOp::Kind::kInsert;
      op.table = table;
      op.row_id = info.next_row_id++;
      op.row = row;
      SSDB_ASSIGN_OR_RETURN(op.shard, ShardOfRow(info, row));
      SSDB_RETURN_IF_ERROR(AppendLazy(std::move(op)));
    }
    return Status::OK();
  }

  // Eager: one batched insert message per provider; a row's shares go
  // only to its owning shard group, all groups in one fan-out round.
  const size_t n_per = topology_.providers_per_shard;
  std::vector<std::vector<StoredRow>> per_provider(providers_.size());
  for (const auto& row : rows) {
    const uint64_t row_id = info.next_row_id++;
    SSDB_ASSIGN_OR_RETURN(size_t shard, ShardOfRow(info, row));
    SSDB_ASSIGN_OR_RETURN(std::vector<StoredRow> shares,
                          BuildShareRows(&info, row_id, row));
    for (size_t p = 0; p < n_per; ++p) {
      per_provider[shard * n_per + p].push_back(std::move(shares[p]));
    }
  }
  std::vector<size_t> group;
  std::vector<Buffer> requests;
  for (size_t g = 0; g < providers_.size(); ++g) {
    if (topology_.shards > 1 && per_provider[g].empty()) continue;
    Buffer req;
    EncodeInsertRows(info.id, info.layout, per_provider[g], &req);
    group.push_back(providers_[g]);
    requests.push_back(std::move(req));
  }
  return CallGroup(group, requests);
}

Status DataSourceClient::Insert(const std::string& table,
                                const std::vector<std::vector<Value>>& rows,
                                const RequestContext& ctx) {
  if (ctx.tenant.empty()) return Insert(table, rows);
  const ChannelStats before = network_->TotalStats();
  const uint64_t clock_before = network_->clock().now_us();
  const uint64_t rounds_before =
      fanout_rounds_.load(std::memory_order_relaxed);
  const Status st = Insert(table, rows);
  if (st.ok()) {
    const ChannelStats after = network_->TotalStats();
    ChargeMeter(ctx.tenant, 1, after.bytes_sent - before.bytes_sent,
                after.bytes_received - before.bytes_received,
                fanout_rounds_.load(std::memory_order_relaxed) - rounds_before,
                network_->clock().now_us() - clock_before);
  }
  return st;
}

Status DataSourceClient::BulkLoad(
    const std::string& table, const std::vector<std::vector<Value>>& rows) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("client: unknown table '" + table + "'");
  }
  TableInfo& info = it->second;
  if (rows.empty()) return Status::OK();

  // Shard assignment first (row ids run in input order), then each
  // group's run is cut into kInsertRows chunks of at most batch_max_ops
  // rows; CallAllBatched ships round r of every shard group in one
  // parallel envelope round. Sharing is CPU-bound client side.
  const size_t chunk_rows = std::max<size_t>(options_.batch_max_ops, 1);
  const size_t n_per = topology_.providers_per_shard;
  std::vector<std::vector<std::pair<uint64_t, size_t>>> shard_rows(
      topology_.shards);  // (row id, input index) per owning group
  for (size_t r = 0; r < rows.size(); ++r) {
    SSDB_RETURN_IF_ERROR(info.schema.ValidateRow(rows[r]));
    const uint64_t row_id = info.next_row_id++;
    SSDB_ASSIGN_OR_RETURN(size_t shard, ShardOfRow(info, rows[r]));
    shard_rows[shard].emplace_back(row_id, r);
  }
  std::vector<std::vector<Buffer>> per_provider_ops(providers_.size());
  for (size_t s = 0; s < topology_.shards; ++s) {
    const auto& assigned = shard_rows[s];
    for (size_t begin = 0; begin < assigned.size(); begin += chunk_rows) {
      const size_t end = std::min(assigned.size(), begin + chunk_rows);
      std::vector<std::vector<StoredRow>> per_pos(n_per);
      for (size_t i = begin; i < end; ++i) {
        SSDB_ASSIGN_OR_RETURN(
            std::vector<StoredRow> shares,
            BuildShareRows(&info, assigned[i].first, rows[assigned[i].second]));
        for (size_t p = 0; p < n_per; ++p) {
          per_pos[p].push_back(std::move(shares[p]));
        }
      }
      for (size_t p = 0; p < n_per; ++p) {
        Buffer msg;
        EncodeInsertRows(info.id, info.layout, per_pos[p], &msg);
        per_provider_ops[s * n_per + p].push_back(std::move(msg));
      }
    }
  }
  return CallAllBatched(per_provider_ops);
}

// --- Query rewriting (§V.A) -----------------------------------------------------

Result<SharePredicate> DataSourceClient::RewriteForProvider(
    const TableSchema& schema, const Predicate& pred, size_t provider,
    bool* always_empty) {
  SSDB_ASSIGN_OR_RETURN(size_t col_idx, schema.ColumnIndex(pred.column));
  const ColumnSpec& col = schema.columns[col_idx];
  SharePredicate out;
  out.column = static_cast<uint32_t>(col_idx);

  switch (pred.kind) {
    case Predicate::Kind::kEq: {
      if (!col.exact_match()) {
        return Status::NotSupported("client: column '" + col.name +
                                    "' was not declared kCapExactMatch");
      }
      auto code = col.EncodeToCode(pred.eq);
      if (code.status().IsOutOfRange()) {
        *always_empty = true;  // a value outside the domain matches nothing
        return out;
      }
      SSDB_RETURN_IF_ERROR(code.status());
      SSDB_ASSIGN_OR_RETURN(OpDomain dom, col.CodeDomain());
      const uint64_t w = static_cast<uint64_t>(*code) -
                         static_cast<uint64_t>(dom.lo);
      out.kind = PredicateKind::kExactDet;
      out.det_share = ctx_.DeterministicShareFor(prf_det_, col.DomainTag(),
                                                 Fp61::FromU64(w), provider)
                          .value();
      return out;
    }
    case Predicate::Kind::kBetween: {
      if (!col.range()) {
        return Status::NotSupported("client: column '" + col.name +
                                    "' was not declared kCapRange");
      }
      SSDB_ASSIGN_OR_RETURN(OpDomain dom, col.CodeDomain());
      int64_t lo_code = 0, hi_code = 0;
      if (col.type == ValueType::kInt64) {
        if (!pred.lo.is_int() || !pred.hi.is_int()) {
          return Status::InvalidArgument(
              "client: BETWEEN bounds must match the column type");
        }
        lo_code = std::max(pred.lo.AsInt(), dom.lo);
        hi_code = std::min(pred.hi.AsInt(), dom.hi);
      } else {
        if (!pred.lo.is_string() || !pred.hi.is_string()) {
          return Status::InvalidArgument(
              "client: BETWEEN bounds must match the column type");
        }
        SSDB_ASSIGN_OR_RETURN(String27 codec,
                              String27::Create(col.string_width));
        bool lex_empty = false;
        SSDB_ASSIGN_OR_RETURN(
            OpDomain lex, codec.LexRange(pred.lo.AsString(),
                                         pred.hi.AsString(), &lex_empty));
        if (lex_empty) {  // reversed range matches nothing, not an error
          *always_empty = true;
          return out;
        }
        lo_code = lex.lo;
        hi_code = lex.hi;
      }
      if (lo_code > hi_code) {
        *always_empty = true;
        return out;
      }
      SSDB_ASSIGN_OR_RETURN(OrderPreservingScheme * scheme, GetOpScheme(col));
      out.kind = PredicateKind::kRangeOp;
      SSDB_ASSIGN_OR_RETURN(out.op_lo, scheme->Share(lo_code, provider));
      SSDB_ASSIGN_OR_RETURN(out.op_hi, scheme->Share(hi_code, provider));
      return out;
    }
    case Predicate::Kind::kPrefix: {
      if (col.type != ValueType::kString) {
        return Status::InvalidArgument(
            "client: prefix predicate needs a string column");
      }
      if (!col.range()) {
        return Status::NotSupported("client: column '" + col.name +
                                    "' was not declared kCapRange");
      }
      SSDB_ASSIGN_OR_RETURN(String27 codec, String27::Create(col.string_width));
      SSDB_ASSIGN_OR_RETURN(OpDomain range, codec.PrefixRange(pred.prefix));
      SSDB_ASSIGN_OR_RETURN(OrderPreservingScheme * scheme, GetOpScheme(col));
      out.kind = PredicateKind::kRangeOp;
      SSDB_ASSIGN_OR_RETURN(out.op_lo, scheme->Share(range.lo, provider));
      SSDB_ASSIGN_OR_RETURN(out.op_hi, scheme->Share(range.hi, provider));
      return out;
    }
  }
  return Status::Internal("client: unhandled predicate kind");
}

// --- Reconstruction -------------------------------------------------------------

Result<Value> DataSourceClient::ReconstructColumn(
    const ColumnSpec& column, const std::vector<IndexedShare>& shares,
    int64_t* code_out) const {
  SSDB_ASSIGN_OR_RETURN(Fp61 w, RobustFieldReconstruct(ctx_, shares));
  return DecodeColumnValue(column, w, code_out);
}

Result<Value> DataSourceClient::DecodeColumnValue(const ColumnSpec& column,
                                                  Fp61 w,
                                                  int64_t* code_out) const {
  SSDB_ASSIGN_OR_RETURN(OpDomain dom, column.CodeDomain());
  if (static_cast<u128>(w.value()) >= dom.size()) {
    return Status::Corruption("client: reconstructed offset outside domain");
  }
  const int64_t code = dom.lo + static_cast<int64_t>(w.value());
  if (code_out != nullptr) *code_out = code;
  return column.DecodeFromCode(code);
}

Result<std::vector<Value>> DataSourceClient::ReconstructStoredRow(
    const PlanTable& table, const std::vector<const ColumnSpec*>& columns,
    bool full_row,
    const std::vector<std::pair<size_t, const StoredRow*>>& provider_rows) {
  std::vector<Value> row(columns.size());
  std::vector<int64_t> codes(columns.size());
  // The provider subset is fixed for the whole row, so the Lagrange basis
  // is resolved once here and every column reconstructs through it with a
  // k-term dot product. GetBasis fails with exactly the statuses the
  // per-column Reconstruct would have produced (too few shares, bad or
  // duplicate provider) — never Corruption, so no robust-retry path is
  // bypassed by returning it directly.
  std::vector<size_t> providers(provider_rows.size());
  for (size_t i = 0; i < provider_rows.size(); ++i) {
    providers[i] = provider_rows[i].first;
  }
  SSDB_ASSIGN_OR_RETURN(SharingContext::BasisRef basis,
                        ctx_.GetBasis(providers));
  std::vector<Fp61> ys(provider_rows.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    for (size_t i = 0; i < provider_rows.size(); ++i) {
      ys[i] = Fp61::FromCanonical(provider_rows[i].second->cells[c].secret);
    }
    Result<Fp61> w = ctx_.ReconstructWithBasis(basis, ys);
    if (w.ok()) {
      SSDB_ASSIGN_OR_RETURN(row[c],
                            DecodeColumnValue(*columns[c], *w, &codes[c]));
    } else {
      // Inconsistent shares: drop to the robust per-column path, which
      // retries with each provider excluded before reporting Corruption.
      std::vector<IndexedShare> shares;
      shares.reserve(provider_rows.size());
      for (const auto& [p, srow] : provider_rows) {
        shares.push_back(
            IndexedShare{p, Fp61::FromCanonical(srow->cells[c].secret)});
      }
      SSDB_ASSIGN_OR_RETURN(row[c],
                            ReconstructColumn(*columns[c], shares, &codes[c]));
    }
  }
  // Tags cover every column, so they can only be checked on full rows.
  if (options_.verify_tags && full_row) {
    const uint64_t expect =
        RowTag(table.id, provider_rows.front().second->row_id, codes);
    size_t matches = 0;
    for (const auto& [p, srow] : provider_rows) {
      if (srow->tag == expect) ++matches;
    }
    if (matches * 2 <= provider_rows.size()) {
      return Status::Corruption("client: row integrity tag mismatch");
    }
  }
  return row;
}

// --- PlanHost hooks ------------------------------------------------------------

Result<PlanTable> DataSourceClient::ResolveTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("client: unknown table '" + name + "'");
  }
  PlanTable out;
  out.name = name;
  out.id = it->second.id;
  out.schema = &it->second.schema;
  out.layout = &it->second.layout;
  return out;
}

Result<Fp61> DataSourceClient::ReconstructField(
    const std::vector<IndexedShare>& shares) {
  return RobustFieldReconstruct(ctx_, shares);
}

Result<Value> DataSourceClient::ReconstructColumnValue(
    const ColumnSpec& column, const std::vector<IndexedShare>& shares,
    int64_t* code_out) {
  return ReconstructColumn(column, shares, code_out);
}

void DataSourceClient::OnRowsReconstructed(uint64_t rows) {
  cm_.rows_reconstructed->Inc(rows);
}

void DataSourceClient::OnCorruptionRetry() { cm_.corruption_retries->Inc(); }

void DataSourceClient::OnTraceFinalized(const QueryTrace& trace) {
  cm_.traced_bytes_sent->Inc(trace.total_bytes_sent());
  cm_.traced_bytes_received->Inc(trace.total_bytes_received());
  cm_.traced_clock_us->Inc(trace.total_clock_us());
  cm_.provider_legs->Inc(trace.total_provider_legs());
  uint64_t executed = 0;
  for (const PlanNodeTrace& node : trace.nodes) {
    if (node.executed) ++executed;
  }
  cm_.plan_nodes_executed->Inc(executed);
  cm_.retry_legs->Inc(trace.total_attempts());
  cm_.hedged_legs->Inc(trace.total_hedged());
  cm_.deadline_exceeded->Inc(trace.total_deadline_exceeded());
  cm_.breaker_skips->Inc(trace.total_breaker_skips());
  // Traces finalize only on success, so the meter bills exactly the
  // requests a tenant got answers for.
  ChargeMeter(trace.tenant, 1, trace.total_bytes_sent(),
              trace.total_bytes_received(), trace.total_round_trips(),
              trace.total_clock_us());
}

void DataSourceClient::ChargeMeter(const std::string& tenant,
                                   uint64_t requests, uint64_t bytes_sent,
                                   uint64_t bytes_received, uint64_t rounds,
                                   uint64_t clock_us) {
  if (tenant.empty()) return;
  // Per-tenant stratum plus the "_all" aggregate: Σ tenants == "_all"
  // holds by construction (same figures, same call site). GetCounter
  // takes the registration mutex, but the charge is per REQUEST (not per
  // leg) and tenant sets are small — cold-map lookups, warm handles.
  for (const std::string& t : {tenant, std::string("_all")}) {
    const MetricLabels labels = {{"tenant", t}};
    metrics_.GetCounter("ssdb_meter_requests_total", labels)->Inc(requests);
    metrics_.GetCounter("ssdb_meter_bytes_sent_total", labels)->Inc(bytes_sent);
    metrics_.GetCounter("ssdb_meter_bytes_received_total", labels)
        ->Inc(bytes_received);
    metrics_.GetCounter("ssdb_meter_rounds_total", labels)->Inc(rounds);
    metrics_.GetCounter("ssdb_meter_clock_us_total", labels)->Inc(clock_us);
  }
}

// --- Query execution -------------------------------------------------------------

Result<QueryResult> DataSourceClient::Execute(const Query& query,
                                              const RequestContext& ctx) {
  cm_.queries->Inc();
  // Aggregates cannot be merged with a pending client-side log; flush first.
  if (!lazy_log_.empty() && query.aggregate() != AggregateOp::kNone) {
    SSDB_RETURN_IF_ERROR(Flush());
  }
  Planner planner(this);
  SSDB_ASSIGN_OR_RETURN(QueryPlan plan, planner.Plan(query));
  Executor executor(this);
  executor.set_tenant(ctx.tenant);
  return executor.Execute(plan);
}

Result<std::string> DataSourceClient::Explain(const Query& query) {
  Planner planner(this);
  SSDB_ASSIGN_OR_RETURN(QueryPlan plan, planner.Plan(query));
  return plan.Render();
}

Result<std::string> DataSourceClient::Explain(const JoinQuery& join) {
  Planner planner(this);
  SSDB_ASSIGN_OR_RETURN(QueryPlan plan, planner.Plan(join));
  return plan.Render();
}

// --- Join -----------------------------------------------------------------------

Result<QueryResult> DataSourceClient::Execute(const JoinQuery& join,
                                              const RequestContext& ctx) {
  cm_.queries->Inc();
  if (!lazy_log_.empty()) SSDB_RETURN_IF_ERROR(Flush());
  Planner planner(this);
  SSDB_ASSIGN_OR_RETURN(QueryPlan plan, planner.Plan(join));
  Executor executor(this);
  executor.set_tenant(ctx.tenant);
  return executor.Execute(plan);
}

Result<QueryResult> DataSourceClient::Execute(const std::string& sql,
                                              const RequestContext& ctx) {
  SSDB_ASSIGN_OR_RETURN(SqlCommand cmd, ParseSql(sql));
  switch (cmd.kind) {
    case SqlCommand::Kind::kSelect:
      return Execute(cmd.query, ctx);
    case SqlCommand::Kind::kUpdate: {
      SSDB_ASSIGN_OR_RETURN(
          uint64_t updated,
          Update(cmd.table, cmd.where, cmd.set_column, cmd.set_value, ctx));
      QueryResult out;
      out.count = updated;
      out.aggregate_int = static_cast<int64_t>(updated);
      return out;
    }
    case SqlCommand::Kind::kDelete: {
      SSDB_ASSIGN_OR_RETURN(uint64_t deleted,
                            Delete(cmd.table, cmd.where, ctx));
      QueryResult out;
      out.count = deleted;
      out.aggregate_int = static_cast<int64_t>(deleted);
      return out;
    }
  }
  return Status::Internal("unhandled SQL command kind");
}

std::vector<Result<QueryResult>> DataSourceClient::ExecuteBatch(
    const std::vector<Query>& queries,
    const std::vector<RequestContext>& ctxs) {
  std::vector<Result<QueryResult>> out(
      queries.size(),
      Result<QueryResult>(Status::Internal("batch query not run")));
  if (queries.empty()) return out;
  if (!ctxs.empty() && ctxs.size() != queries.size()) {
    for (auto& slot : out) {
      slot = Status::InvalidArgument("client: batch context arity mismatch");
    }
    return out;
  }

  // Flush the lazy write log up front: per-query flushes would otherwise
  // race each other, and a batch of reads over a settled log is exactly
  // the §V.C "batch then read" pattern anyway.
  if (!lazy_log_.empty()) {
    const Status st = Flush();
    if (!st.ok()) {
      for (auto& slot : out) slot = st;
      return out;
    }
  }

  if (options_.batch_max_ops < 2) {
    // Each query runs its own quorum fan-out; the pool's caller-
    // participating ParallelFor makes the nesting (batch -> per-query
    // legs) deadlock-free.
    network_->pool().ParallelFor(queries.size(), [&](size_t i) {
      out[i] = Execute(queries[i], ctxs.empty() ? RequestContext() : ctxs[i]);
    });
    return out;
  }

  // Coalescing path: plan every query up front, then let the executor
  // fuse compatible point fan-outs into batch envelopes (one round trip
  // per chunk of batch_max_ops queries per provider).
  Planner planner(this);
  std::vector<QueryPlan> plans;
  plans.reserve(queries.size());
  std::vector<size_t> plan_slots;
  for (size_t i = 0; i < queries.size(); ++i) {
    cm_.queries->Inc();
    Result<QueryPlan> plan = planner.Plan(queries[i]);
    if (!plan.ok()) {
      out[i] = plan.status();
      continue;
    }
    plans.push_back(std::move(*plan));
    plan_slots.push_back(i);
  }
  std::vector<const QueryPlan*> plan_ptrs;
  plan_ptrs.reserve(plans.size());
  for (const QueryPlan& p : plans) plan_ptrs.push_back(&p);
  std::vector<std::string> tenants;
  if (!ctxs.empty()) {
    tenants.reserve(plan_slots.size());
    for (size_t slot : plan_slots) tenants.push_back(ctxs[slot].tenant);
  }
  Executor executor(this);
  std::vector<Result<QueryResult>> results =
      executor.ExecuteBatch(plan_ptrs, tenants);
  for (size_t j = 0; j < results.size(); ++j) {
    out[plan_slots[j]] = std::move(results[j]);
  }
  return out;
}

std::vector<Result<QueryResult>> DataSourceClient::ExecuteBatch(
    const std::vector<JoinQuery>& joins) {
  std::vector<Result<QueryResult>> out(
      joins.size(),
      Result<QueryResult>(Status::Internal("batch join not run")));
  if (joins.empty()) return out;

  if (!lazy_log_.empty()) {
    const Status st = Flush();
    if (!st.ok()) {
      for (auto& slot : out) slot = st;
      return out;
    }
  }

  if (options_.batch_max_ops < 2) {
    network_->pool().ParallelFor(joins.size(), [&](size_t i) {
      out[i] = Execute(joins[i]);
    });
    return out;
  }

  // Coalescing path: the joins' share fetches batch per provider.
  Planner planner(this);
  std::vector<QueryPlan> plans;
  plans.reserve(joins.size());
  std::vector<size_t> plan_slots;
  for (size_t i = 0; i < joins.size(); ++i) {
    cm_.queries->Inc();
    Result<QueryPlan> plan = planner.Plan(joins[i]);
    if (!plan.ok()) {
      out[i] = plan.status();
      continue;
    }
    plans.push_back(std::move(*plan));
    plan_slots.push_back(i);
  }
  std::vector<const QueryPlan*> plan_ptrs;
  plan_ptrs.reserve(plans.size());
  for (const QueryPlan& p : plans) plan_ptrs.push_back(&p);
  Executor executor(this);
  std::vector<Result<QueryResult>> results = executor.ExecuteBatch(plan_ptrs);
  for (size_t j = 0; j < results.size(); ++j) {
    out[plan_slots[j]] = std::move(results[j]);
  }
  return out;
}

// --- Updates (§V.C) ---------------------------------------------------------------

Result<uint64_t> DataSourceClient::Update(const std::string& table,
                                          const std::vector<Predicate>& where,
                                          const std::string& set_column,
                                          const Value& value) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("client: unknown table '" + table + "'");
  }
  TableInfo& info = it->second;
  SSDB_ASSIGN_OR_RETURN(size_t set_idx, info.schema.ColumnIndex(set_column));
  SSDB_ASSIGN_OR_RETURN(int64_t check,
                        info.schema.columns[set_idx].EncodeToCode(value));
  (void)check;

  // Read-reconstruct phase (merged with any pending client-side ops).
  Query q = Query::Select(table);
  for (const Predicate& p : where) q.Where(p);
  SSDB_ASSIGN_OR_RETURN(QueryResult matched, Execute(q));

  uint64_t updated = 0;
  if (options_.lazy_updates) {
    for (size_t i = 0; i < matched.rows.size(); ++i) {
      std::vector<Value> new_row = matched.rows[i];
      new_row[set_idx] = value;
      SSDB_ASSIGN_OR_RETURN(size_t shard, ShardOfRow(info, matched.rows[i]));
      SSDB_ASSIGN_OR_RETURN(size_t new_shard, ShardOfRow(info, new_row));
      if (new_shard != shard) {
        return Status::NotSupported(
            "client: UPDATE would move the partition key to another shard "
            "group; DELETE and re-INSERT instead");
      }
      // Coalesce with a pending op on the same row if present.
      bool coalesced = false;
      for (LazyOp& op : lazy_log_) {
        if (op.table == table && op.row_id == matched.row_ids[i] &&
            op.kind != LazyOp::Kind::kDelete) {
          op.row = new_row;
          coalesced = true;
          break;
        }
      }
      if (!coalesced) {
        LazyOp op;
        op.kind = LazyOp::Kind::kUpdate;
        op.table = table;
        op.row_id = matched.row_ids[i];
        op.row = std::move(new_row);
        op.shard = shard;
        SSDB_RETURN_IF_ERROR(AppendLazy(std::move(op)));
      }
      ++updated;
    }
    return updated;
  }

  // Eager reshare: fresh polynomials for every updated row (§V.C). The
  // reshare stays on the row's owning shard group; updates that would
  // move the partition key across groups are rejected.
  const size_t n_per = topology_.providers_per_shard;
  std::vector<std::vector<StoredRow>> per_provider(providers_.size());
  for (size_t i = 0; i < matched.rows.size(); ++i) {
    std::vector<Value> new_row = matched.rows[i];
    new_row[set_idx] = value;
    SSDB_ASSIGN_OR_RETURN(size_t shard, ShardOfRow(info, matched.rows[i]));
    SSDB_ASSIGN_OR_RETURN(size_t new_shard, ShardOfRow(info, new_row));
    if (new_shard != shard) {
      return Status::NotSupported(
          "client: UPDATE would move the partition key to another shard "
          "group; DELETE and re-INSERT instead");
    }
    SSDB_ASSIGN_OR_RETURN(
        std::vector<StoredRow> shares,
        BuildShareRows(&info, matched.row_ids[i], new_row));
    for (size_t p = 0; p < n_per; ++p) {
      per_provider[shard * n_per + p].push_back(std::move(shares[p]));
    }
    ++updated;
  }
  if (updated == 0) return updated;
  std::vector<size_t> group;
  std::vector<Buffer> requests;
  for (size_t g = 0; g < providers_.size(); ++g) {
    if (topology_.shards > 1 && per_provider[g].empty()) continue;
    Buffer req;
    EncodeUpdateRows(info.id, info.layout, per_provider[g], &req);
    group.push_back(providers_[g]);
    requests.push_back(std::move(req));
  }
  SSDB_RETURN_IF_ERROR(CallGroup(group, requests));
  return updated;
}

Result<uint64_t> DataSourceClient::Update(const std::string& table,
                                          const std::vector<Predicate>& where,
                                          const std::string& set_column,
                                          const Value& value,
                                          const RequestContext& ctx) {
  if (ctx.tenant.empty()) return Update(table, where, set_column, value);
  const ChannelStats before = network_->TotalStats();
  const uint64_t clock_before = network_->clock().now_us();
  const uint64_t rounds_before =
      fanout_rounds_.load(std::memory_order_relaxed);
  Result<uint64_t> r = Update(table, where, set_column, value);
  if (r.ok()) {
    const ChannelStats after = network_->TotalStats();
    ChargeMeter(ctx.tenant, 1, after.bytes_sent - before.bytes_sent,
                after.bytes_received - before.bytes_received,
                fanout_rounds_.load(std::memory_order_relaxed) - rounds_before,
                network_->clock().now_us() - clock_before);
  }
  return r;
}

Result<uint64_t> DataSourceClient::Delete(const std::string& table,
                                          const std::vector<Predicate>& where) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("client: unknown table '" + table + "'");
  }
  TableInfo& info = it->second;

  Query q = Query::Select(table);
  for (const Predicate& p : where) q.Where(p);
  SSDB_ASSIGN_OR_RETURN(QueryResult matched, Execute(q));
  if (matched.row_ids.empty()) return static_cast<uint64_t>(0);

  if (options_.lazy_updates) {
    for (size_t i = 0; i < matched.row_ids.size(); ++i) {
      const uint64_t id = matched.row_ids[i];
      // A pending insert/update of this row is simply dropped.
      bool was_pending_insert = false;
      for (auto op_it = lazy_log_.begin(); op_it != lazy_log_.end();) {
        if (op_it->table == table && op_it->row_id == id) {
          was_pending_insert = (op_it->kind == LazyOp::Kind::kInsert);
          op_it = lazy_log_.erase(op_it);
        } else {
          ++op_it;
        }
      }
      if (!was_pending_insert) {
        LazyOp op;
        op.kind = LazyOp::Kind::kDelete;
        op.table = table;
        op.row_id = id;
        SSDB_ASSIGN_OR_RETURN(op.shard, ShardOfRow(info, matched.rows[i]));
        SSDB_RETURN_IF_ERROR(AppendLazy(std::move(op)));
      }
    }
    return static_cast<uint64_t>(matched.row_ids.size());
  }

  if (topology_.shards <= 1) {
    Buffer req;
    EncodeDeleteRows(info.id, matched.row_ids, &req);
    SSDB_RETURN_IF_ERROR(CallAllSame(req));
    return static_cast<uint64_t>(matched.row_ids.size());
  }

  // Sharded delete: each group is told only about the row ids it stores
  // (a provider rejects deletes of ids it never held), one fan-out round
  // across all affected groups.
  std::vector<std::vector<uint64_t>> shard_ids(topology_.shards);
  for (size_t i = 0; i < matched.row_ids.size(); ++i) {
    SSDB_ASSIGN_OR_RETURN(size_t shard, ShardOfRow(info, matched.rows[i]));
    shard_ids[shard].push_back(matched.row_ids[i]);
  }
  std::vector<size_t> group;
  std::vector<Buffer> requests;
  for (size_t s = 0; s < topology_.shards; ++s) {
    if (shard_ids[s].empty()) continue;
    Buffer req;
    EncodeDeleteRows(info.id, shard_ids[s], &req);
    for (size_t p : shard_providers_[s]) {
      group.push_back(p);
      Buffer copy;
      copy.Append(req.AsSlice());
      requests.push_back(std::move(copy));
    }
  }
  SSDB_RETURN_IF_ERROR(CallGroup(group, requests));
  return static_cast<uint64_t>(matched.row_ids.size());
}

Result<uint64_t> DataSourceClient::Delete(const std::string& table,
                                          const std::vector<Predicate>& where,
                                          const RequestContext& ctx) {
  if (ctx.tenant.empty()) return Delete(table, where);
  const ChannelStats before = network_->TotalStats();
  const uint64_t clock_before = network_->clock().now_us();
  const uint64_t rounds_before =
      fanout_rounds_.load(std::memory_order_relaxed);
  Result<uint64_t> r = Delete(table, where);
  if (r.ok()) {
    const ChannelStats after = network_->TotalStats();
    ChargeMeter(ctx.tenant, 1, after.bytes_sent - before.bytes_sent,
                after.bytes_received - before.bytes_received,
                fanout_rounds_.load(std::memory_order_relaxed) - rounds_before,
                network_->clock().now_us() - clock_before);
  }
  return r;
}

Status DataSourceClient::AppendLazy(LazyOp op) {
  lazy_log_.push_back(std::move(op));
  if (lazy_log_.size() >= options_.lazy_flush_threshold) {
    return Flush();
  }
  return Status::OK();
}

Status DataSourceClient::Flush() {
  if (lazy_log_.empty()) return Status::OK();
  cm_.lazy_flushes->Inc();

  // Coalesce per (table, row_id), preserving op order. A row's shard is
  // fixed at append time and survives coalescing (cross-shard partition
  // key moves are rejected at Update).
  struct Final {
    LazyOp::Kind kind;
    std::vector<Value> row;
    size_t shard = 0;
  };
  std::map<std::pair<std::string, uint64_t>, Final> final_ops;
  for (const LazyOp& op : lazy_log_) {
    auto key = std::make_pair(op.table, op.row_id);
    auto fit = final_ops.find(key);
    if (fit == final_ops.end()) {
      final_ops.emplace(key, Final{op.kind, op.row, op.shard});
      continue;
    }
    switch (op.kind) {
      case LazyOp::Kind::kInsert:
        fit->second = Final{LazyOp::Kind::kInsert, op.row, op.shard};
        break;
      case LazyOp::Kind::kUpdate:
        // insert+update stays an insert with the newer payload.
        fit->second.row = op.row;
        break;
      case LazyOp::Kind::kDelete:
        fit->second = Final{LazyOp::Kind::kDelete, {}, fit->second.shard};
        break;
    }
  }

  // Build batched per-table, per-provider messages. With coalescing
  // enabled every table's insert/update/delete messages are collected and
  // shipped as ONE envelope round per provider instead of up to three
  // sequential rounds per table.
  const bool coalesce = options_.batch_max_ops >= 2;
  const size_t n_per = topology_.providers_per_shard;
  const bool sharded = topology_.shards > 1;
  // With shard groups, a provider's slot holds only its group's rows;
  // providers with nothing to do for a message kind are skipped entirely.
  auto any_rows = [](const std::vector<std::vector<StoredRow>>& v) {
    for (const auto& rows : v) {
      if (!rows.empty()) return true;
    }
    return false;
  };
  std::vector<std::vector<Buffer>> flush_ops(providers_.size());
  for (auto& [table_name, info] : tables_) {
    std::vector<std::vector<StoredRow>> inserts(providers_.size());
    std::vector<std::vector<StoredRow>> updates(providers_.size());
    std::vector<std::vector<uint64_t>> deletes(topology_.shards);
    bool any_deletes = false;
    for (auto& [key, final_op] : final_ops) {
      if (key.first != table_name) continue;
      switch (final_op.kind) {
        case LazyOp::Kind::kInsert: {
          SSDB_ASSIGN_OR_RETURN(
              std::vector<StoredRow> shares,
              BuildShareRows(&info, key.second, final_op.row));
          for (size_t p = 0; p < n_per; ++p) {
            inserts[final_op.shard * n_per + p].push_back(
                std::move(shares[p]));
          }
          break;
        }
        case LazyOp::Kind::kUpdate: {
          SSDB_ASSIGN_OR_RETURN(
              std::vector<StoredRow> shares,
              BuildShareRows(&info, key.second, final_op.row));
          for (size_t p = 0; p < n_per; ++p) {
            updates[final_op.shard * n_per + p].push_back(
                std::move(shares[p]));
          }
          break;
        }
        case LazyOp::Kind::kDelete:
          deletes[final_op.shard].push_back(key.second);
          any_deletes = true;
          break;
      }
    }
    if (any_rows(inserts)) {
      if (coalesce) {
        for (size_t g = 0; g < providers_.size(); ++g) {
          if (sharded && inserts[g].empty()) continue;
          Buffer msg;
          EncodeInsertRows(info.id, info.layout, inserts[g], &msg);
          flush_ops[g].push_back(std::move(msg));
        }
      } else {
        std::vector<size_t> group;
        std::vector<Buffer> reqs;
        for (size_t g = 0; g < providers_.size(); ++g) {
          if (sharded && inserts[g].empty()) continue;
          Buffer req;
          EncodeInsertRows(info.id, info.layout, inserts[g], &req);
          group.push_back(providers_[g]);
          reqs.push_back(std::move(req));
        }
        SSDB_RETURN_IF_ERROR(CallGroup(group, reqs));
      }
    }
    if (any_rows(updates)) {
      if (coalesce) {
        for (size_t g = 0; g < providers_.size(); ++g) {
          if (sharded && updates[g].empty()) continue;
          Buffer msg;
          EncodeUpdateRows(info.id, info.layout, updates[g], &msg);
          flush_ops[g].push_back(std::move(msg));
        }
      } else {
        std::vector<size_t> group;
        std::vector<Buffer> reqs;
        for (size_t g = 0; g < providers_.size(); ++g) {
          if (sharded && updates[g].empty()) continue;
          Buffer req;
          EncodeUpdateRows(info.id, info.layout, updates[g], &req);
          group.push_back(providers_[g]);
          reqs.push_back(std::move(req));
        }
        SSDB_RETURN_IF_ERROR(CallGroup(group, reqs));
      }
    }
    if (any_deletes) {
      std::vector<size_t> group;
      std::vector<Buffer> reqs;
      for (size_t s = 0; s < topology_.shards; ++s) {
        if (deletes[s].empty()) continue;
        Buffer req;
        EncodeDeleteRows(info.id, deletes[s], &req);
        for (size_t p = 0; p < n_per; ++p) {
          if (coalesce) {
            Buffer msg;
            msg.Append(req.AsSlice());
            flush_ops[s * n_per + p].push_back(std::move(msg));
          } else {
            group.push_back(shard_providers_[s][p]);
            Buffer copy;
            copy.Append(req.AsSlice());
            reqs.push_back(std::move(copy));
          }
        }
      }
      if (!coalesce) SSDB_RETURN_IF_ERROR(CallGroup(group, reqs));
    }
  }
  if (coalesce) SSDB_RETURN_IF_ERROR(CallAllBatched(flush_ops));
  lazy_log_.clear();
  return Status::OK();
}

Status DataSourceClient::RefreshTable(const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("client: unknown table '" + table + "'");
  }
  TableInfo& info = it->second;
  SSDB_RETURN_IF_ERROR(Flush());

  // Probe every provider first: a refresh applied by only a subset of the
  // providers would desynchronize the sharing (some shares on the new
  // polynomial, some on the old), so abort early if anyone is unreachable.
  // This narrows, but does not close, the partial-failure window — a
  // crash mid-refresh still requires re-running the refresh to completion
  // before reads that mix refreshed and stale providers reconstruct.
  Buffer probe;
  EncodeTableStats(info.id, &probe);
  SSDB_RETURN_IF_ERROR(CallAllSame(probe));

  // Fetch each shard group's row id set from that group's read quorum,
  // then ship fresh zero-shares per (row, column). Every provider of a
  // group must apply its deltas or the group's sharing desynchronizes,
  // so within a group this is the seed's n-of-n refresh.
  const size_t n_per = topology_.providers_per_shard;
  QueryRequest idq;
  idq.table_id = info.id;
  idq.action = QueryAction::kFetchRowIds;
  Buffer id_request;
  EncodeQuery(idq, &id_request);
  std::vector<std::vector<RefreshDelta>> per_provider(providers_.size());
  for (size_t s = 0; s < topology_.shards; ++s) {
    std::vector<Buffer> requests(n_per);
    for (auto& b : requests) b.Append(id_request.AsSlice());
    SSDB_ASSIGN_OR_RETURN(
        std::vector<Executor::ProviderResponse> responses,
        Executor::CallQuorum(network_, shard_providers_[s], requests,
                             options_.k, /*minimum=*/0, /*trace=*/nullptr,
                             options_.resilience, &scoreboard_,
                             /*order=*/{}, &metrics_));
    std::vector<uint64_t> row_ids;
    Status last = Status::Unavailable("client: no usable id response");
    for (const auto& r : responses) {
      Decoder dec(Slice(r.bytes));
      last = DecodeResponseHeader(&dec);
      if (!last.ok()) continue;
      last = DecodeRowIdsResponse(&dec, &row_ids);
      if (last.ok()) break;
    }
    SSDB_RETURN_IF_ERROR(last);

    for (uint64_t row_id : row_ids) {
      for (size_t p = 0; p < n_per; ++p) {
        per_provider[s * n_per + p].push_back(RefreshDelta{row_id, {}});
        per_provider[s * n_per + p].back().column_deltas.resize(
            info.schema.columns.size());
      }
      for (size_t c = 0; c < info.schema.columns.size(); ++c) {
        const std::vector<Fp61> zeros = ctx_.ZeroShares(&rng_);
        for (size_t p = 0; p < n_per; ++p) {
          per_provider[s * n_per + p].back().column_deltas[c] =
              zeros[p].value();
        }
      }
    }
  }
  std::vector<Buffer> refresh_requests(providers_.size());
  for (size_t g = 0; g < providers_.size(); ++g) {
    EncodeRefreshRows(info.id, per_provider[g], &refresh_requests[g]);
  }
  return CallAll(refresh_requests);
}

Result<bool> DataSourceClient::MatchesPlain(
    const TableSchema& schema, const std::vector<Value>& row,
    const std::vector<Predicate>& preds) const {
  for (const Predicate& pred : preds) {
    SSDB_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(pred.column));
    const ColumnSpec& col = schema.columns[idx];
    SSDB_ASSIGN_OR_RETURN(int64_t code, col.EncodeToCode(row[idx]));
    switch (pred.kind) {
      case Predicate::Kind::kEq: {
        auto target = col.EncodeToCode(pred.eq);
        if (!target.ok()) return false;
        if (code != *target) return false;
        break;
      }
      case Predicate::Kind::kBetween: {
        int64_t lo, hi;
        if (col.type == ValueType::kInt64) {
          lo = pred.lo.AsInt();
          hi = pred.hi.AsInt();
        } else {
          SSDB_ASSIGN_OR_RETURN(String27 codec,
                                String27::Create(col.string_width));
          bool lex_empty = false;
          SSDB_ASSIGN_OR_RETURN(
              OpDomain lex,
              codec.LexRange(pred.lo.AsString(), pred.hi.AsString(),
                             &lex_empty));
          if (lex_empty) return false;  // reversed range matches nothing
          lo = lex.lo;
          hi = lex.hi;
        }
        if (code < lo || code > hi) return false;
        break;
      }
      case Predicate::Kind::kPrefix: {
        SSDB_ASSIGN_OR_RETURN(String27 codec,
                              String27::Create(col.string_width));
        SSDB_ASSIGN_OR_RETURN(OpDomain range, codec.PrefixRange(pred.prefix));
        if (code < range.lo || code > range.hi) return false;
        break;
      }
    }
  }
  return true;
}

Status DataSourceClient::ApplyLazyOverlay(const PlanTable& table,
                                          const Query& query,
                                          QueryResult* result) {
  if (lazy_log_.empty() || query.aggregate() != AggregateOp::kNone) {
    return Status::OK();
  }
  // Last pending op per row id for this table.
  std::map<uint64_t, const LazyOp*> pending;
  for (const LazyOp& op : lazy_log_) {
    if (op.table == table.schema->table_name) pending[op.row_id] = &op;
  }
  if (pending.empty()) return Status::OK();

  QueryResult merged;
  for (size_t i = 0; i < result->rows.size(); ++i) {
    auto pit = pending.find(result->row_ids[i]);
    if (pit == pending.end()) {
      merged.row_ids.push_back(result->row_ids[i]);
      merged.rows.push_back(std::move(result->rows[i]));
      continue;
    }
    // Row has a pending op; it is re-evaluated below from the log.
  }
  for (auto& [row_id, op] : pending) {
    if (op->kind == LazyOp::Kind::kDelete) continue;
    SSDB_ASSIGN_OR_RETURN(
        bool matches,
        MatchesPlain(*table.schema, op->row, query.predicates()));
    if (matches) {
      merged.row_ids.push_back(row_id);
      merged.rows.push_back(op->row);
    }
  }
  merged.count = merged.rows.size();
  *result = std::move(merged);
  return Status::OK();
}

// --- Public data mash-up (§V.D) -----------------------------------------------------

Status DataSourceClient::PublishPublicTable(
    const std::string& name, std::vector<ColumnSpec> columns,
    const std::vector<std::vector<Value>>& rows) {
  if (public_tables_.count(name) != 0) {
    return Status::AlreadyExists("client: public table '" + name +
                                 "' already exists");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("client: public table needs columns");
  }
  for (const auto& row : rows) {
    if (row.size() != columns.size()) {
      return Status::InvalidArgument("client: public row arity mismatch");
    }
  }
  PublicInfo info;
  info.id = next_table_id_++;
  info.columns = std::move(columns);
  for (ColumnSpec& col : info.columns) {
    if (col.domain_name.empty()) {
      col.domain_name = name + "." + col.name;
    }
  }
  info.subscribed.assign(info.columns.size(), false);
  info.num_rows = rows.size();

  Buffer create;
  EncodeCreatePublicTable(info.id,
                          static_cast<uint32_t>(info.columns.size()), &create);
  SSDB_RETURN_IF_ERROR(CallAllSame(create));
  Buffer insert;
  EncodeInsertPublicRows(info.id, rows, &insert);
  SSDB_RETURN_IF_ERROR(CallAllSame(insert));
  public_tables_.emplace(name, std::move(info));
  return Status::OK();
}

Status DataSourceClient::SubscribePublicColumn(const std::string& name,
                                               const std::string& column) {
  auto it = public_tables_.find(name);
  if (it == public_tables_.end()) {
    return Status::NotFound("client: unknown public table '" + name + "'");
  }
  PublicInfo& info = it->second;
  size_t col_idx = info.columns.size();
  for (size_t i = 0; i < info.columns.size(); ++i) {
    if (info.columns[i].name == column) col_idx = i;
  }
  if (col_idx == info.columns.size()) {
    return Status::NotFound("client: unknown public column '" + column + "'");
  }
  const ColumnSpec& spec = info.columns[col_idx];

  // One-time download of the (public) column from any single provider.
  Buffer fetch;
  EncodeFetchPublicColumn(info.id, static_cast<uint32_t>(col_idx), &fetch);
  std::vector<std::vector<Value>> rows;
  std::vector<uint64_t> row_ids;
  Status last = Status::Unavailable("client: no provider reachable");
  for (size_t p = 0; p < providers_.size(); ++p) {
    auto r = network_->Call(providers_[p], fetch.AsSlice());
    if (!r.ok()) {
      last = r.status();
      continue;
    }
    Decoder dec{Slice(*r)};
    last = DecodeResponseHeader(&dec);
    if (!last.ok()) continue;
    last = DecodePublicRowsResponse(&dec, &rows, &row_ids);
    if (last.ok()) break;
  }
  SSDB_RETURN_IF_ERROR(last);

  // Build the private share index under this column's domain keys and
  // attach it to every provider.
  SSDB_ASSIGN_OR_RETURN(OpDomain dom, spec.CodeDomain());
  SSDB_ASSIGN_OR_RETURN(OrderPreservingScheme * scheme, GetOpScheme(spec));
  // Public tables replicate to every provider; a provider's index uses
  // its within-group evaluation position (p mod providers_per_shard).
  const size_t n_per = topology_.providers_per_shard;
  std::vector<Buffer> requests(providers_.size());
  std::vector<std::vector<ShareIndexEntry>> entries(providers_.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    SSDB_ASSIGN_OR_RETURN(int64_t code, spec.EncodeToCode(rows[i][0]));
    const uint64_t w =
        static_cast<uint64_t>(code) - static_cast<uint64_t>(dom.lo);
    for (size_t p = 0; p < providers_.size(); ++p) {
      ShareIndexEntry e;
      e.row_id = row_ids[i];
      e.det_share = ctx_.DeterministicShareFor(prf_det_, spec.DomainTag(),
                                               Fp61::FromU64(w), p % n_per)
                        .value();
      SSDB_ASSIGN_OR_RETURN(e.op_share, scheme->Share(code, p % n_per));
      entries[p].push_back(e);
    }
  }
  for (size_t p = 0; p < providers_.size(); ++p) {
    EncodeAttachShareIndex(info.id, static_cast<uint32_t>(col_idx),
                           entries[p], &requests[p]);
  }
  SSDB_RETURN_IF_ERROR(CallAll(requests));
  info.subscribed[col_idx] = true;
  return Status::OK();
}

Result<QueryResult> DataSourceClient::QueryPublic(const std::string& name,
                                                  const Predicate& predicate) {
  cm_.queries->Inc();
  auto it = public_tables_.find(name);
  if (it == public_tables_.end()) {
    return Status::NotFound("client: unknown public table '" + name + "'");
  }
  PublicInfo& info = it->second;
  size_t col_idx = info.columns.size();
  for (size_t i = 0; i < info.columns.size(); ++i) {
    if (info.columns[i].name == predicate.column) col_idx = i;
  }
  if (col_idx == info.columns.size()) {
    return Status::NotFound("client: unknown public column '" +
                            predicate.column + "'");
  }
  if (!info.subscribed[col_idx]) {
    return Status::NotSupported(
        "client: subscribe to the public column before querying it");
  }

  // Reuse the private rewriting machinery via a synthetic schema view.
  TableSchema view;
  view.table_name = name;
  view.columns = info.columns;
  bool always_empty = false;

  Status last = Status::Unavailable("client: no provider reachable");
  const size_t n_per = topology_.providers_per_shard;
  for (size_t p = 0; p < providers_.size(); ++p) {
    SSDB_ASSIGN_OR_RETURN(
        SharePredicate sp,
        RewriteForProvider(view, predicate, p % n_per, &always_empty));
    if (always_empty) return QueryResult();
    Buffer req;
    EncodePublicFilter(info.id, static_cast<uint32_t>(col_idx), sp, &req);
    auto r = network_->Call(providers_[p], req.AsSlice());
    if (!r.ok()) {
      last = r.status();
      continue;
    }
    Decoder dec{Slice(*r)};
    last = DecodeResponseHeader(&dec);
    if (!last.ok()) continue;
    std::vector<std::vector<Value>> rows;
    std::vector<uint64_t> row_ids;
    last = DecodePublicRowsResponse(&dec, &rows, &row_ids);
    if (!last.ok()) continue;
    QueryResult out;
    out.rows = std::move(rows);
    out.row_ids = std::move(row_ids);
    out.count = out.rows.size();
    return out;
  }
  return last;
}

}  // namespace ssdb
