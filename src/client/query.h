// Client-side query description (the public query surface).
//
// Queries are built programmatically and cover exactly the classes the
// paper enumerates in §III/§V.A:
//   * exact match        — Eq("name", Value::Str("JOHN"))
//   * range              — Between("salary", 10'000, 40'000)
//   * string prefix      — Prefix("name", "AB")   (via §V.B encoding)
//   * aggregation        — Count / Sum / Avg / Min / Max / Median over
//                          exact matches or ranges
//   * same-domain joins  — JoinQuery
// Predicates combine conjunctively.

#ifndef SSDB_CLIENT_QUERY_H_
#define SSDB_CLIENT_QUERY_H_

#include <string>
#include <utility>
#include <vector>

#include "codec/value.h"
#include "plan/trace.h"

namespace ssdb {

/// One conjunct of a WHERE clause.
struct Predicate {
  enum class Kind { kEq, kBetween, kPrefix };

  std::string column;
  Kind kind = Kind::kEq;
  Value eq;          ///< kEq
  Value lo, hi;      ///< kBetween (inclusive)
  std::string prefix;  ///< kPrefix
};

inline Predicate Eq(std::string column, Value v) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Predicate::Kind::kEq;
  p.eq = std::move(v);
  return p;
}

inline Predicate Between(std::string column, Value lo, Value hi) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Predicate::Kind::kBetween;
  p.lo = std::move(lo);
  p.hi = std::move(hi);
  return p;
}

inline Predicate Prefix(std::string column, std::string prefix) {
  Predicate p;
  p.column = std::move(column);
  p.kind = Predicate::Kind::kPrefix;
  p.prefix = std::move(prefix);
  return p;
}

enum class AggregateOp {
  kNone = 0,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kMedian,
};

/// \brief A single-table query.
class Query {
 public:
  static Query Select(std::string table) {
    Query q;
    q.table_ = std::move(table);
    return q;
  }

  Query& Where(Predicate p) {
    predicates_.push_back(std::move(p));
    return *this;
  }

  /// Disjunction: the query matches rows satisfying ALL Where() conjuncts
  /// AND at least one WhereAny() disjunct. Only row-fetching queries (no
  /// aggregate) support disjunctions.
  Query& WhereAny(std::vector<Predicate> disjuncts) {
    disjuncts_ = std::move(disjuncts);
    return *this;
  }

  Query& Aggregate(AggregateOp op, std::string column = "") {
    aggregate_ = op;
    aggregate_column_ = std::move(column);
    return *this;
  }

  /// GROUP BY for SUM/AVG/COUNT aggregates: one result group per distinct
  /// value of `column` (which must be kCapExactMatch).
  Query& GroupBy(std::string column) {
    group_by_ = std::move(column);
    return *this;
  }

  /// Projection: return only the named columns, in the given order.
  /// Projection is pushed to the providers (unrequested shares never
  /// travel), so row integrity tags cannot be verified on projected reads.
  Query& Project(std::vector<std::string> columns) {
    projection_ = std::move(columns);
    return *this;
  }

  const std::string& table() const { return table_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<Predicate>& disjuncts() const { return disjuncts_; }
  AggregateOp aggregate() const { return aggregate_; }
  const std::string& aggregate_column() const { return aggregate_column_; }
  const std::string& group_by() const { return group_by_; }
  const std::vector<std::string>& projection() const { return projection_; }

 private:
  std::string table_;
  std::vector<Predicate> predicates_;
  std::vector<Predicate> disjuncts_;
  AggregateOp aggregate_ = AggregateOp::kNone;
  std::string aggregate_column_;
  std::string group_by_;
  std::vector<std::string> projection_;
};

/// \brief A same-domain equi-join between two outsourced tables.
struct JoinQuery {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
  std::vector<Predicate> left_predicates;
  std::vector<Predicate> right_predicates;
};

/// One group of a GROUP BY aggregate.
struct GroupResult {
  Value key;
  int64_t sum = 0;
  uint64_t count = 0;
  double average = 0.0;
  /// Smallest row id in the group (providers order groups by it; the
  /// shard-merge path uses it to keep the merged order deterministic).
  uint64_t rep_row_id = 0;
};

/// \brief Result of a query: reconstructed plaintext rows and/or an
/// aggregate.
struct QueryResult {
  std::vector<uint64_t> row_ids;
  std::vector<std::vector<Value>> rows;
  /// For kCount/kSum/kMin/kMax/kMedian.
  int64_t aggregate_int = 0;
  /// For kAvg.
  double aggregate_double = 0.0;
  uint64_t count = 0;  ///< Matching-row count (all aggregate paths).
  /// For GROUP BY aggregates, ordered by first appearance (row id).
  std::vector<GroupResult> groups;
  /// For joins executed through the unified Execute(JoinQuery) API: each
  /// row is the left row's values followed by the right row's, and this is
  /// the number of left columns (0 for non-join results), so the pair can
  /// be split losslessly.
  uint32_t join_left_columns = 0;
  /// Per-node execution trace: provider legs, exact bytes up/down, and
  /// virtual-clock charges for every plan node the executor ran.
  QueryTrace trace;
};

}  // namespace ssdb

#endif  // SSDB_CLIENT_QUERY_H_
