#include "client/sql.h"

#include <cctype>
#include <cstdlib>

namespace ssdb {

namespace {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // ( ) , = * ;
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // verbatim spelling
  std::string upper;  // upper-cased (idents only; for keyword matching)
  int64_t number = 0;
  char symbol = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < input_.size()) {
      const char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '\'') {
        // Quoted string ('' escapes a quote).
        std::string s;
        ++i;
        bool closed = false;
        while (i < input_.size()) {
          if (input_[i] == '\'') {
            if (i + 1 < input_.size() && input_[i + 1] == '\'') {
              s.push_back('\'');
              i += 2;
              continue;
            }
            ++i;
            closed = true;
            break;
          }
          s.push_back(input_[i++]);
        }
        if (!closed) {
          return Status::InvalidArgument("sql: unterminated string literal");
        }
        Token t;
        t.kind = TokKind::kString;
        t.text = std::move(s);
        out.push_back(std::move(t));
        continue;
      }
      if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i + (c == '-' ? 1 : 0);
        if (j >= input_.size() ||
            !std::isdigit(static_cast<unsigned char>(input_[j]))) {
          return Status::InvalidArgument("sql: stray '-'");
        }
        while (j < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[j]))) {
          ++j;
        }
        Token t;
        t.kind = TokKind::kNumber;
        t.number = std::strtoll(input_.substr(i, j - i).c_str(), nullptr, 10);
        out.push_back(t);
        i = j;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[j])) ||
                input_[j] == '_')) {
          ++j;
        }
        Token t;
        t.kind = TokKind::kIdent;
        t.text = input_.substr(i, j - i);
        t.upper = t.text;
        for (char& ch : t.upper) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
        out.push_back(std::move(t));
        i = j;
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '=' || c == '*' ||
          c == ';') {
        Token t;
        t.kind = TokKind::kSymbol;
        t.symbol = c;
        out.push_back(t);
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("sql: unexpected character '") +
                                     c + "'");
    }
    out.push_back(Token{});  // kEnd sentinel
    return out;
  }

 private:
  const std::string& input_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SqlCommand> Parse() {
    if (AcceptKeyword("SELECT")) return ParseSelect();
    if (AcceptKeyword("UPDATE")) return ParseUpdate();
    if (AcceptKeyword("DELETE")) return ParseDelete();
    return Status::InvalidArgument(
        "sql: statement must start with SELECT, UPDATE or DELETE");
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool AcceptKeyword(const char* kw) {
    if (Peek().kind == TokKind::kIdent && Peek().upper == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(char s) {
    if (Peek().kind == TokKind::kSymbol && Peek().symbol == s) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(std::string("sql: expected ") + kw);
    }
    return Status::OK();
  }
  Status ExpectSymbol(char s) {
    if (!AcceptSymbol(s)) {
      return Status::InvalidArgument(std::string("sql: expected '") + s + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("sql: expected an identifier");
    }
    return Next().text;
  }
  Result<Value> ExpectLiteral() {
    if (Peek().kind == TokKind::kNumber) return Value::Int(Next().number);
    if (Peek().kind == TokKind::kString) return Value::Str(Next().text);
    return Status::InvalidArgument("sql: expected a literal");
  }
  Status ExpectEnd() {
    (void)AcceptSymbol(';');
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument("sql: trailing input after statement");
    }
    return Status::OK();
  }

  /// column = lit | column BETWEEN a AND b | column LIKE 'p%'.
  Result<Predicate> ParsePredicate() {
    SSDB_ASSIGN_OR_RETURN(std::string column, ExpectIdent());
    if (AcceptSymbol('=')) {
      SSDB_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
      return Eq(column, std::move(v));
    }
    if (AcceptKeyword("BETWEEN")) {
      SSDB_ASSIGN_OR_RETURN(Value lo, ExpectLiteral());
      SSDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
      SSDB_ASSIGN_OR_RETURN(Value hi, ExpectLiteral());
      return Between(column, std::move(lo), std::move(hi));
    }
    if (AcceptKeyword("LIKE")) {
      if (Peek().kind != TokKind::kString) {
        return Status::InvalidArgument("sql: LIKE needs a string pattern");
      }
      std::string pattern = Next().text;
      if (pattern.empty() || pattern.back() != '%' ||
          pattern.find('%') != pattern.size() - 1) {
        return Status::NotSupported(
            "sql: only prefix patterns ('AB%') are supported");
      }
      pattern.pop_back();
      return Prefix(column, std::move(pattern));
    }
    return Status::InvalidArgument("sql: expected =, BETWEEN or LIKE");
  }

  /// condition := term (AND term)*; term := pred | '(' pred (OR pred)+ ')'.
  Status ParseCondition(std::vector<Predicate>* conjuncts,
                        std::vector<Predicate>* disjuncts) {
    for (;;) {
      if (AcceptSymbol('(')) {
        std::vector<Predicate> group;
        SSDB_ASSIGN_OR_RETURN(Predicate first, ParsePredicate());
        group.push_back(std::move(first));
        while (AcceptKeyword("OR")) {
          SSDB_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
          group.push_back(std::move(p));
        }
        SSDB_RETURN_IF_ERROR(ExpectSymbol(')'));
        if (group.size() == 1) {
          conjuncts->push_back(std::move(group.front()));
        } else {
          if (!disjuncts->empty()) {
            return Status::NotSupported(
                "sql: at most one OR group per statement");
          }
          *disjuncts = std::move(group);
        }
      } else {
        SSDB_ASSIGN_OR_RETURN(Predicate p, ParsePredicate());
        conjuncts->push_back(std::move(p));
      }
      if (!AcceptKeyword("AND")) return Status::OK();
    }
  }

  Result<SqlCommand> ParseSelect() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kSelect;

    // Select list.
    bool star = false;
    AggregateOp agg = AggregateOp::kNone;
    std::string agg_column;
    std::vector<std::string> projection;
    if (AcceptSymbol('*')) {
      star = true;
    } else {
      for (;;) {
        if (Peek().kind != TokKind::kIdent) {
          return Status::InvalidArgument("sql: expected a select item");
        }
        const std::string upper = Peek().upper;
        std::string item = Next().text;
        AggregateOp op = AggregateOp::kNone;
        if (upper == "SUM") op = AggregateOp::kSum;
        if (upper == "AVG") op = AggregateOp::kAvg;
        if (upper == "MIN") op = AggregateOp::kMin;
        if (upper == "MAX") op = AggregateOp::kMax;
        if (upper == "MEDIAN") op = AggregateOp::kMedian;
        if (upper == "COUNT") op = AggregateOp::kCount;
        if (op != AggregateOp::kNone && AcceptSymbol('(')) {
          if (agg != AggregateOp::kNone) {
            return Status::NotSupported("sql: one aggregate per statement");
          }
          agg = op;
          if (op == AggregateOp::kCount) {
            if (!AcceptSymbol('*')) {
              SSDB_ASSIGN_OR_RETURN(agg_column, ExpectIdent());
            }
          } else {
            SSDB_ASSIGN_OR_RETURN(agg_column, ExpectIdent());
          }
          SSDB_RETURN_IF_ERROR(ExpectSymbol(')'));
        } else {
          projection.push_back(std::move(item));
        }
        if (!AcceptSymbol(',')) break;
      }
    }

    SSDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SSDB_ASSIGN_OR_RETURN(std::string table, ExpectIdent());
    Query q = Query::Select(table);  // identifiers keep their spelling

    if (AcceptKeyword("WHERE")) {
      std::vector<Predicate> conjuncts, disjuncts;
      SSDB_RETURN_IF_ERROR(ParseCondition(&conjuncts, &disjuncts));
      for (Predicate& p : conjuncts) q.Where(std::move(p));
      if (!disjuncts.empty()) q.WhereAny(std::move(disjuncts));
    }
    if (AcceptKeyword("GROUP")) {
      SSDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      SSDB_ASSIGN_OR_RETURN(std::string group, ExpectIdent());
      q.GroupBy(std::move(group));
    }
    SSDB_RETURN_IF_ERROR(ExpectEnd());

    if (agg != AggregateOp::kNone) {
      q.Aggregate(agg, agg_column);
      if (!projection.empty()) {
        return Status::NotSupported(
            "sql: mixing an aggregate with plain columns is not supported");
      }
    } else if (!star) {
      q.Project(std::move(projection));
    }
    cmd.query = std::move(q);
    return cmd;
  }

  Result<SqlCommand> ParseUpdate() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kUpdate;
    SSDB_ASSIGN_OR_RETURN(cmd.table, ExpectIdent());
    SSDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
    SSDB_ASSIGN_OR_RETURN(cmd.set_column, ExpectIdent());
    SSDB_RETURN_IF_ERROR(ExpectSymbol('='));
    SSDB_ASSIGN_OR_RETURN(cmd.set_value, ExpectLiteral());
    if (AcceptKeyword("WHERE")) {
      SSDB_RETURN_IF_ERROR(ParseCondition(&cmd.where, &cmd.where_any));
      if (!cmd.where_any.empty()) {
        return Status::NotSupported("sql: OR is not supported in UPDATE");
      }
    }
    SSDB_RETURN_IF_ERROR(ExpectEnd());
    return cmd;
  }

  Result<SqlCommand> ParseDelete() {
    SqlCommand cmd;
    cmd.kind = SqlCommand::Kind::kDelete;
    SSDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SSDB_ASSIGN_OR_RETURN(cmd.table, ExpectIdent());
    if (AcceptKeyword("WHERE")) {
      SSDB_RETURN_IF_ERROR(ParseCondition(&cmd.where, &cmd.where_any));
      if (!cmd.where_any.empty()) {
        return Status::NotSupported("sql: OR is not supported in DELETE");
      }
    }
    SSDB_RETURN_IF_ERROR(ExpectEnd());
    return cmd;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SqlCommand> ParseSql(const std::string& sql) {
  Lexer lexer(sql);
  SSDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace ssdb
