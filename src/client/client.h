// The data source D: the trusted client that owns the keys.
//
// DataSourceClient is the only component that ever sees plaintext. It
//   * turns rows into share rows (random + deterministic + order-preserving
//     representations per codec/schema.h) and distributes them to the n
//     providers,
//   * rewrites queries into per-provider share-space requests (§V.A),
//   * reconstructs results from any k provider responses (Lagrange), with
//     consistency checks, integrity tags, and single-corrupt-provider
//     recovery when n is large enough,
//   * runs updates eagerly (read-reconstruct-reshare, §V.C) or lazily
//     (client-side batched log, the paper's "lazy update" future-work
//     direction),
//   * manages private x public mash-ups (§V.D) by subscribing to public
//     columns and attaching private share indexes at the providers.

#ifndef SSDB_CLIENT_CLIENT_H_
#define SSDB_CLIENT_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "client/query.h"
#include "codec/schema.h"
#include "common/rng.h"
#include "core/topology.h"
#include "crypto/prf.h"
#include "net/network.h"
#include "plan/host.h"
#include "provider/protocol.h"
#include "sss/order_preserving.h"
#include "sss/shamir.h"

namespace ssdb {

/// Configuration of a data source.
struct ClientOptions {
  /// Deployment shape: shard groups, providers per group, threshold and
  /// partitioner (core/topology.h). Zero-valued fields derive from the
  /// provider list and the deprecated `k` alias below, yielding the
  /// seed system's 1-shard topology.
  Topology topology;
  /// Deprecated alias for `topology.threshold`: reconstruction threshold
  /// k (1 <= k <= providers_per_shard). Range-capable columns
  /// additionally require k >= 2. Ignored when topology.threshold != 0.
  size_t k = 2;
  /// Master secret; all PRF keys and the secret points X derive from it.
  std::string master_key = "ssdb-demo-master-key";
  /// Seed for the (non-secret-critical) randomness of fresh shares.
  uint64_t rng_seed = 0x5EED;
  /// Coefficient construction for order-preserving shares (Section IV
  /// paper slots vs. hardened recursive mode; see sss/order_preserving.h).
  OpSlotMode op_mode = OpSlotMode::kPaperSlots;
  /// Buffer writes client-side and flush in batches (§V.C lazy updates).
  bool lazy_updates = false;
  /// Auto-flush the lazy log at this many buffered operations. Zero is
  /// rejected at Create with lazy_updates on: it would disable the
  /// auto-flush guard entirely and let the log grow without bound.
  size_t lazy_flush_threshold = 64;
  /// Max sub-operations coalesced into one batch envelope per provider
  /// (net/batch.h): lazy-log flushes, BulkLoad chunks, DisjunctUnion
  /// branches, ExecuteBatch point fetches and join share fetches. Values
  /// below 2 disable request coalescing and reproduce the per-op wire
  /// traffic byte-for-byte.
  size_t batch_max_ops = 128;
  /// Verify per-row integrity tags on reads.
  bool verify_tags = true;
  /// Resilient RPC configuration (deadlines, backoff retries, hedged
  /// reads, circuit breaker — see net/resilience.h). The default is fully
  /// disabled: results, provider byte streams and virtual-clock totals
  /// are then identical to a client without the resilience layer.
  ResiliencePolicy resilience;
};

/// Client-side operation counters: a point-in-time snapshot read back
/// from the metrics registry's `ssdb_client_*` series (the registry is
/// the single source of truth; concurrent batch queries bump its atomic
/// counters racelessly and this struct is just the materialized view).
struct ClientStats {
  uint64_t queries = 0;
  uint64_t rows_reconstructed = 0;
  uint64_t corruption_retries = 0;
  uint64_t lazy_flushes = 0;
  // Aggregated from the per-query QueryTrace of every executed plan.
  uint64_t traced_bytes_sent = 0;
  uint64_t traced_bytes_received = 0;
  uint64_t traced_clock_us = 0;
  uint64_t provider_legs = 0;
  uint64_t plan_nodes_executed = 0;
  // Resilience counters (zero while ClientOptions::resilience is
  // disabled), aggregated from the same traces.
  uint64_t attempts = 0;           ///< Backoff-retry legs.
  uint64_t hedged_legs = 0;        ///< Hedge legs launched.
  uint64_t deadline_exceeded = 0;  ///< Legs past their deadline.
  uint64_t breaker_skips = 0;      ///< Breaker admission denials.
};

/// \brief The data source / query front-end.
///
/// Query execution is delegated to the plan layer: every Execute overload
/// builds a QueryPlan through Planner and walks it with Executor; the
/// client implements PlanHost, keeping keys, PRFs and the sharing context
/// private while the plan layer sees only shares and reconstructed
/// plaintext.
class DataSourceClient : private PlanHost {
 public:
  /// Creates a client over `providers` (indexes into `network`). The
  /// sharing context (n = |providers|, k, secret X) is derived from the
  /// master key.
  static Result<std::unique_ptr<DataSourceClient>> Create(
      Network* network, std::vector<size_t> providers, ClientOptions options);

  // --- Schema & data ---------------------------------------------------

  /// Registers a table and creates it at every provider.
  Status CreateTable(TableSchema schema);

  /// Inserts plaintext rows (shared and distributed; lazy mode buffers).
  Status Insert(const std::string& table,
                const std::vector<std::vector<Value>>& rows);
  /// Metered insert: on success the whole call's network bytes, write
  /// fan-out rounds and virtual-clock delta are charged to
  /// `ctx.tenant`'s `ssdb_meter_*` series (plus the `_all` stratum).
  /// Mutations run serialized (write barriers in the harness, sequential
  /// shells), so the deltas are exactly this call's.
  Status Insert(const std::string& table,
                const std::vector<std::vector<Value>>& rows,
                const RequestContext& ctx);

  /// Initial outsourcing path: shares and ships `rows` in one batched
  /// envelope round per `batch_max_ops`-row chunk, bypassing the lazy
  /// write log even in lazy mode. Equivalent to Insert row-for-row but
  /// pays one network round trip per envelope instead of one per call.
  Status BulkLoad(const std::string& table,
                  const std::vector<std::vector<Value>>& rows);

  // --- Queries ----------------------------------------------------------
  //
  // The unified Execute family: every way of asking a question goes
  // through one overloaded entry point returning QueryResult.

  /// Executes a single-table query (exact match / range / aggregates).
  /// A non-empty `ctx.tenant` is stamped on the result's QueryTrace and,
  /// on success, the query's requests/bytes/rounds/clock are charged to
  /// the tenant's `ssdb_meter_*` series (plus the `_all` stratum).
  Result<QueryResult> Execute(const Query& query,
                              const RequestContext& ctx = {});

  /// Executes a same-domain equi-join (§V.A Join). Each result row is the
  /// left row's values followed by the right row's;
  /// QueryResult::join_left_columns gives the split point. Cross-domain
  /// joins return NotSupported, as in the paper.
  Result<QueryResult> Execute(const JoinQuery& join,
                              const RequestContext& ctx = {});

  /// Parses and runs one SQL statement (SELECT / UPDATE / DELETE — see
  /// client/sql.h for the grammar). UPDATE/DELETE report the affected row
  /// count through QueryResult::count.
  Result<QueryResult> Execute(const std::string& sql,
                              const RequestContext& ctx = {});

  /// Runs independent queries concurrently on the network's worker pool;
  /// slot i of the result corresponds to queries[i]. The virtual clock
  /// still advances by every query's slowest leg (batching buys wall-clock
  /// time, not modelled time). Flushes the lazy write log up front.
  /// `ctxs` (empty, or one per query) attributes each slot's metering to
  /// its own tenant — a fused wave may mix tenants.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<Query>& queries,
      const std::vector<RequestContext>& ctxs = {});

  /// Runs independent equi-joins; compatible join share fetches are
  /// coalesced into one batch envelope per provider (batch_max_ops < 2
  /// falls back to per-join execution).
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<JoinQuery>& joins);

  /// Renders the execution plan of a query — which share representation
  /// answers each predicate, the provider-side action, and the quorum —
  /// without contacting any provider. The text is generated from the same
  /// QueryPlan the executor runs, so EXPLAIN and execution cannot drift.
  Result<std::string> Explain(const Query& query);

  /// Renders the execution plan of an equi-join.
  Result<std::string> Explain(const JoinQuery& join);

  // --- Updates (§V.C) ----------------------------------------------------

  /// UPDATE table SET set_column = value WHERE predicates.
  /// Returns the number of rows updated.
  Result<uint64_t> Update(const std::string& table,
                          const std::vector<Predicate>& where,
                          const std::string& set_column, const Value& value);
  /// Metered update (see the metered Insert overload): the read phase's
  /// bytes and clock are part of the charge; meter rounds count the
  /// write fan-out rounds only.
  Result<uint64_t> Update(const std::string& table,
                          const std::vector<Predicate>& where,
                          const std::string& set_column, const Value& value,
                          const RequestContext& ctx);

  /// DELETE FROM table WHERE predicates. Returns rows deleted.
  Result<uint64_t> Delete(const std::string& table,
                          const std::vector<Predicate>& where);
  /// Metered delete (see the metered Insert overload).
  Result<uint64_t> Delete(const std::string& table,
                          const std::vector<Predicate>& where,
                          const RequestContext& ctx);

  /// Flushes the lazy write log (no-op when empty / eager mode).
  Status Flush();
  size_t pending_lazy_ops() const override { return lazy_log_.size(); }

  /// Proactively re-randomizes every stored random share of `table` by
  /// adding fresh shares of zero (§VI(b)): secrets are unchanged, but
  /// shares captured before the refresh become useless to an adversary
  /// gathering k of them over time. Requires all n providers reachable
  /// (a partially applied refresh would desynchronize the sharing).
  Status RefreshTable(const std::string& table);

  // --- Private x public mash-up (§V.D) -----------------------------------

  /// Publishes a plaintext table to every provider (acting as the public
  /// data owner for the simulation).
  Status PublishPublicTable(const std::string& name,
                            std::vector<ColumnSpec> columns,
                            const std::vector<std::vector<Value>>& rows);

  /// Downloads one public column once and attaches a private share index
  /// at every provider; afterwards QueryPublic filters without revealing
  /// per-query interests.
  Status SubscribePublicColumn(const std::string& name,
                               const std::string& column);

  /// Filters a public table through the private share index.
  Result<QueryResult> QueryPublic(const std::string& name,
                                  const Predicate& predicate);

  // --- Kill/restart recovery (storage/engine.h, net/fault_controller.h) ---

  /// Opens a client-side outage for network provider `network_index`
  /// (called by the FaultController kill hook): from now on every
  /// mutating request targeted at it is queued verbatim instead of sent,
  /// while reads keep failing over to spare shares as with kDown. The
  /// queue preserves send order, so catch-up replay applies the missed
  /// writes exactly as the survivors saw them.
  void BeginProviderOutage(size_t network_index);

  /// Closes the outage and ships the queued writes to the restarted
  /// provider as batch envelopes of at most batch_max_ops sub-ops (a lone
  /// op travels unwrapped), validating every sub-response. Never reshares
  /// rows — resharing for one provider would break the polynomial
  /// consistency of existing shares across the group; the queue holds the
  /// exact bytes the provider would have received live. No-op when no
  /// outage is open.
  Status ResyncProvider(size_t network_index);

  /// True while an outage is open for `network_index`.
  bool provider_out(size_t network_index) const;

  /// Mutating requests currently queued for `network_index`.
  size_t pending_resync_ops(size_t network_index) const;

  // --- Introspection ------------------------------------------------------

  size_t n() const { return providers_.size(); }
  size_t k() const { return options_.k; }
  /// The resolved deployment shape (fields never zero after Create).
  const Topology& topology() const { return topology_; }
  size_t shards() const { return topology_.shards; }
  size_t providers_per_shard() const { return topology_.providers_per_shard; }
  /// Snapshot of the client-side counters, read from the registry.
  ClientStats stats() const;
  /// The deployment's metrics registry, owned by this client; the
  /// network, providers and scoreboard are attached to it at Create time
  /// (OutsourcedDatabase::Create) so all layers share one namespace.
  MetricsRegistry* metrics() override { return &metrics_; }
  const MetricsRegistry* metrics() const { return &metrics_; }
  /// The span tracer (disabled by default; Tracer::Enable opts in).
  Tracer* tracer() override { return &tracer_; }
  Network* network() override { return network_; }
  const ResiliencePolicy& resilience() const override {
    return options_.resilience;
  }
  /// The provider health scoreboard (EWMA latency, breaker state).
  ProviderScoreboard* scoreboard() override { return &scoreboard_; }
  /// Schema of a registered table.
  Result<const TableSchema*> GetSchema(const std::string& table) const;

 private:
  struct TableInfo {
    uint32_t id = 0;
    TableSchema schema;
    std::vector<ProviderColumnLayout> layout;
    uint64_t next_row_id = 1;
  };
  struct PublicInfo {
    uint32_t id = 0;
    std::vector<ColumnSpec> columns;
    std::vector<bool> subscribed;
    uint64_t num_rows = 0;
  };
  struct LazyOp {
    enum class Kind { kInsert, kUpdate, kDelete } kind;
    std::string table;
    uint64_t row_id = 0;
    std::vector<Value> row;  // kInsert / kUpdate
    size_t shard = 0;        ///< Owning shard group, fixed at append time.
  };

  DataSourceClient(Network* network, std::vector<size_t> providers,
                   ClientOptions options, SharingContext ctx,
                   std::vector<uint32_t> op_xs);

  // Share construction.
  Result<OrderPreservingScheme*> GetOpScheme(const ColumnSpec& column);
  /// Builds the providers_per_shard share rows of `row` for its owning
  /// shard group (position p in the result goes to the group's p-th
  /// provider). Share bytes depend only on the position, never the shard.
  Result<std::vector<StoredRow>> BuildShareRows(TableInfo* info,
                                                uint64_t row_id,
                                                const std::vector<Value>& row);
  uint64_t RowTag(uint32_t table_id, uint64_t row_id,
                  const std::vector<int64_t>& codes) const;
  /// The shard group owning `row` (partition key = first schema column).
  Result<size_t> ShardOfRow(const TableInfo& info,
                            const std::vector<Value>& row);

  // Transport (writes / management; reads go through Executor::CallQuorum).
  Status CallAll(const std::vector<Buffer>& requests);
  Status CallAllSame(const Buffer& request);
  /// One parallel fan-out round over an arbitrary provider subset;
  /// requests[i] goes to network index `providers[i]`. CallAll is the
  /// all-providers case.
  Status CallGroup(const std::vector<size_t>& providers,
                   const std::vector<Buffer>& requests);
  Status CallGroupSame(const std::vector<size_t>& providers,
                       const Buffer& request);
  /// Sends `per_provider_ops[p]` to provider p, coalescing multiple
  /// messages into batch envelopes of at most batch_max_ops sub-ops (one
  /// round trip per envelope). Op counts may differ per provider (sharded
  /// writes): round r carries ops [r*max, (r+1)*max) of each provider's
  /// own list and providers with nothing left sit the round out. A
  /// provider whose round slice is a single op receives it unwrapped
  /// (identical bytes to CallAll). Fails on the first transport, envelope
  /// or sub-response error.
  Status CallAllBatched(
      const std::vector<std::vector<Buffer>>& per_provider_ops);

  // Reconstruction.
  Result<Value> ReconstructColumn(const ColumnSpec& column,
                                  const std::vector<IndexedShare>& shares,
                                  int64_t* code_out) const;
  /// Maps a reconstructed field element into the column's value domain
  /// (shared tail of ReconstructColumn and the batched row path).
  Result<Value> DecodeColumnValue(const ColumnSpec& column, Fp61 w,
                                  int64_t* code_out) const;

  // --- PlanHost (the plan layer's view of this client) -------------------
  Result<PlanTable> ResolveTable(const std::string& name) override;
  size_t num_providers() const override {
    return topology_.providers_per_shard;
  }
  size_t threshold_k() const override { return options_.k; }
  size_t num_shards() const override { return topology_.shards; }
  Partitioner partitioner() const override { return topology_.partitioner; }
  OpSlotMode op_mode() const override { return options_.op_mode; }
  size_t batch_max_ops() const override { return options_.batch_max_ops; }
  const std::vector<size_t>& provider_indices() const override {
    return providers_;
  }
  const std::vector<size_t>& shard_provider_indices(
      size_t shard) const override {
    return shard_providers_[shard];
  }
  /// Query rewriting (§V.A): plaintext predicate -> provider i's share
  /// space.
  Result<SharePredicate> RewriteForProvider(const TableSchema& schema,
                                            const Predicate& pred,
                                            size_t provider,
                                            bool* always_empty) override;
  Result<Fp61> ReconstructField(
      const std::vector<IndexedShare>& shares) override;
  Result<Value> ReconstructColumnValue(const ColumnSpec& column,
                                       const std::vector<IndexedShare>& shares,
                                       int64_t* code_out) override;
  /// Reconstructs one row. `columns` names the (possibly projected)
  /// schema columns the stored cells correspond to; tags are verified only
  /// for unprojected reads (`full_row`).
  Result<std::vector<Value>> ReconstructStoredRow(
      const PlanTable& table, const std::vector<const ColumnSpec*>& columns,
      bool full_row,
      const std::vector<std::pair<size_t, const StoredRow*>>& provider_rows)
      override;
  Status ApplyLazyOverlay(const PlanTable& table, const Query& query,
                          QueryResult* result) override;
  void OnRowsReconstructed(uint64_t rows) override;
  void OnCorruptionRetry() override;
  void OnTraceFinalized(const QueryTrace& trace) override;

  /// Charges one metered request to `tenant`'s `ssdb_meter_*` series and
  /// the `tenant="_all"` aggregate stratum. No-op for empty tenants.
  void ChargeMeter(const std::string& tenant, uint64_t requests,
                   uint64_t bytes_sent, uint64_t bytes_received,
                   uint64_t rounds, uint64_t clock_us);

  // Lazy log.
  Status AppendLazy(LazyOp op);
  Result<bool> MatchesPlain(const TableSchema& schema,
                            const std::vector<Value>& row,
                            const std::vector<Predicate>& preds) const;

  Network* network_;
  std::vector<size_t> providers_;
  ClientOptions options_;
  /// Resolved topology (all fields concrete; shards * providers_per_shard
  /// == providers_.size()).
  Topology topology_;
  /// providers_ sliced into shard groups: shard_providers_[s][p] is the
  /// network index of group s's p-th provider (= share evaluation point p).
  std::vector<std::vector<size_t>> shard_providers_;
  SharingContext ctx_;
  std::vector<uint32_t> op_xs_;
  Rng rng_;
  Prf prf_det_;
  Prf prf_tag_;
  Prf prf_op_master_;

  uint32_t next_table_id_ = 1;
  std::map<std::string, TableInfo> tables_;
  std::map<std::string, PublicInfo> public_tables_;
  /// Guards lazy creation of op_schemes_ entries: concurrent batch queries
  /// rewriting range predicates may race to instantiate a domain's scheme.
  mutable std::mutex op_mu_;
  std::map<uint64_t, std::unique_ptr<OrderPreservingScheme>> op_schemes_;
  std::vector<LazyOp> lazy_log_;
  ProviderScoreboard scoreboard_;

  /// Guards out_providers_/pending_resync_ (read on every write fan-out;
  /// kill/restart drills may overlap a running workload).
  mutable std::mutex outage_mu_;
  /// Network indices with an open outage.
  std::set<size_t> out_providers_;
  /// Per-provider queue of missed mutating requests, in send order.
  std::map<size_t, std::vector<Buffer>> pending_resync_;

  /// Write fan-out rounds issued so far (one per CallGroup fan-out, one
  /// per CallAllBatched envelope round). Metered mutations read its delta
  /// as their `rounds` charge.
  std::atomic<uint64_t> fanout_rounds_{0};

  // Telemetry. The registry/tracer live here (one per deployment); the
  // `ssdb_client_*` handles are cached at construction — the former
  // ClientStats atomics, now registry series.
  MetricsRegistry metrics_;
  Tracer tracer_;
  struct ClientMetrics {
    MetricCounter* queries;
    MetricCounter* rows_reconstructed;
    MetricCounter* corruption_retries;
    MetricCounter* lazy_flushes;
    MetricCounter* traced_bytes_sent;
    MetricCounter* traced_bytes_received;
    MetricCounter* traced_clock_us;
    MetricCounter* provider_legs;
    MetricCounter* plan_nodes_executed;
    MetricCounter* retry_legs;
    MetricCounter* hedged_legs;
    MetricCounter* deadline_exceeded;
    MetricCounter* breaker_skips;
  };
  ClientMetrics cm_;
};

}  // namespace ssdb

#endif  // SSDB_CLIENT_CLIENT_H_
