// A small SQL front-end over the query API.
//
// The paper phrases every workload in SQL prose ("Retrieve the names of
// all employees whose salary is 20", "SELECT SUM(salary) ..."); this
// parser lets examples and applications say exactly that. Supported
// grammar (keywords case-insensitive):
//
//   SELECT select_list FROM table [WHERE condition] [GROUP BY column]
//   UPDATE table SET column = literal [WHERE condition]
//   DELETE FROM table [WHERE condition]
//
//   select_list := '*' | item (',' item)*
//   item        := column
//                | SUM|AVG|MIN|MAX|MEDIAN '(' column ')'
//                | COUNT '(' '*' ')'
//   condition   := term (AND term)*
//   term        := predicate
//                | '(' predicate (OR predicate)+ ')'   -- one OR group
//   predicate   := column '=' literal
//                | column BETWEEN literal AND literal
//                | column LIKE 'PREFIX%'
//   literal     := integer | 'string'
//
// The grammar deliberately mirrors what the secret-sharing engine can
// push to providers — anything else fails to parse rather than silently
// degrading.

#ifndef SSDB_CLIENT_SQL_H_
#define SSDB_CLIENT_SQL_H_

#include <string>
#include <vector>

#include "client/query.h"
#include "common/status.h"

namespace ssdb {

/// A parsed SQL statement.
struct SqlCommand {
  enum class Kind { kSelect, kUpdate, kDelete };

  Kind kind = Kind::kSelect;
  /// For kSelect: the full query.
  Query query = Query::Select("");
  /// For kUpdate / kDelete.
  std::string table;
  std::vector<Predicate> where;
  std::vector<Predicate> where_any;
  std::string set_column;  ///< kUpdate only.
  Value set_value;         ///< kUpdate only.
};

/// Parses one SQL statement (optionally ';'-terminated).
Result<SqlCommand> ParseSql(const std::string& sql);

}  // namespace ssdb

#endif  // SSDB_CLIENT_SQL_H_
