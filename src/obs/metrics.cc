#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ssdb {
namespace {

/// Escapes a label value for the Prometheus text format (backslash,
/// double quote, newline). Our label values are short identifiers, so
/// this rarely does anything, but the exposition format requires it.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Escapes a string for JSON output (quotes, backslash, control chars).
std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Renders {k="v",...} for the Prometheus exposition (empty string when
/// there are no labels).
std::string PrometheusLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

MetricLabels SortedLabels(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

size_t MetricHistogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // bucket i >= 1 holds [2^(i-1), 2^i): i = floor(log2(v)) + 1.
  size_t i = 0;
  while (value) {
    value >>= 1;
    ++i;
  }
  return i;  // in [1, 64]
}

uint64_t MetricHistogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

uint64_t MetricHistogram::ValueAtQuantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
  if (static_cast<double>(rank) < q * static_cast<double>(n)) ++rank;  // ceil
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += bucket(i);
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

void MetricHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string MetricsRegistry::SeriesKey(const std::string& name,
                                       const MetricLabels& labels) {
  std::string key = name;
  key += '{';
  for (const auto& [k, v] : SortedLabels(labels)) {
    key += k;
    key += '=';
    key += v;
    key += ',';
  }
  key += '}';
  return key;
}

// Callers hold mu_. std::map nodes are stable, so returned pointers
// survive later insertions.
MetricsRegistry::Series* MetricsRegistry::GetOrCreate(
    const std::string& name, const MetricLabels& labels) {
  std::string key = SeriesKey(name, labels);
  auto it = series_.find(key);
  if (it == series_.end()) {
    Series s;
    s.name = name;
    s.labels = SortedLabels(labels);
    it = series_.emplace(std::move(key), std::move(s)).first;
  }
  return &it->second;
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name,
                                           const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* s = GetOrCreate(name, labels);
  if (!s->counter) s->counter = std::make_unique<MetricCounter>();
  return s->counter.get();
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& name,
                                       const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* s = GetOrCreate(name, labels);
  if (!s->gauge) s->gauge = std::make_unique<MetricGauge>();
  return s->gauge.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                               const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series* s = GetOrCreate(name, labels);
  if (!s->histogram) s->histogram = std::make_unique<MetricHistogram>();
  return s->histogram.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const MetricLabels& labels) const {
  std::string key = SeriesKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  if (it == series_.end() || !it->second.counter) return 0;
  return it->second.counter->value();
}

uint64_t MetricsRegistry::CounterTotal(const std::string& name) const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, s] : series_) {
    if (s.name == name && s.counter) total += s.counter->value();
  }
  return total;
}

uint64_t MetricsRegistry::CounterTotal(const std::string& name,
                                       const std::string& label_key,
                                       const std::string& label_value) const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, s] : series_) {
    if (s.name != name || !s.counter) continue;
    for (const auto& [k, v] : s.labels) {
      if (k == label_key && v == label_value) {
        total += s.counter->value();
        break;
      }
    }
  }
  return total;
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(mu_);
  // std::map keys are "name{sorted labels}", so series are already
  // grouped by name and label-sorted within a name.
  std::string last_name;
  for (const auto& [key, s] : series_) {
    if (s.counter) {
      if (s.name != last_name) {
        out << "# TYPE " << s.name << " counter\n";
        last_name = s.name;
      }
      out << s.name << PrometheusLabels(s.labels) << " " << s.counter->value()
          << "\n";
    } else if (s.gauge) {
      if (s.name != last_name) {
        out << "# TYPE " << s.name << " gauge\n";
        last_name = s.name;
      }
      out << s.name << PrometheusLabels(s.labels) << " " << s.gauge->value()
          << "\n";
    } else if (s.histogram) {
      if (s.name != last_name) {
        out << "# TYPE " << s.name << " histogram\n";
        last_name = s.name;
      }
      const MetricHistogram& h = *s.histogram;
      uint64_t cumulative = 0;
      size_t last_nonzero = 0;
      for (size_t i = 0; i < MetricHistogram::kBuckets; ++i) {
        if (h.bucket(i)) last_nonzero = i;
      }
      for (size_t i = 0; i <= last_nonzero; ++i) {
        cumulative += h.bucket(i);
        MetricLabels with_le = s.labels;
        with_le.emplace_back("le",
                             std::to_string(MetricHistogram::BucketUpperBound(i)));
        out << s.name << "_bucket" << PrometheusLabels(with_le) << " "
            << cumulative << "\n";
      }
      MetricLabels with_inf = s.labels;
      with_inf.emplace_back("le", "+Inf");
      out << s.name << "_bucket" << PrometheusLabels(with_inf) << " "
          << h.count() << "\n";
      out << s.name << "_sum" << PrometheusLabels(s.labels) << " " << h.sum()
          << "\n";
      out << s.name << "_count" << PrometheusLabels(s.labels) << " "
          << h.count() << "\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::ExportJson() const {
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\n  \"series\": [\n";
  bool first = true;
  for (const auto& [key, s] : series_) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"name\": \"" << EscapeJson(s.name) << "\", \"labels\": {";
    for (size_t i = 0; i < s.labels.size(); ++i) {
      if (i) out << ", ";
      out << "\"" << EscapeJson(s.labels[i].first) << "\": \""
          << EscapeJson(s.labels[i].second) << "\"";
    }
    out << "}, ";
    if (s.counter) {
      out << "\"type\": \"counter\", \"value\": " << s.counter->value();
    } else if (s.gauge) {
      out << "\"type\": \"gauge\", \"value\": " << s.gauge->value();
    } else if (s.histogram) {
      const MetricHistogram& h = *s.histogram;
      out << "\"type\": \"histogram\", \"count\": " << h.count()
          << ", \"sum\": " << h.sum() << ", \"buckets\": [";
      size_t last_nonzero = 0;
      bool any = false;
      for (size_t i = 0; i < MetricHistogram::kBuckets; ++i) {
        if (h.bucket(i)) {
          last_nonzero = i;
          any = true;
        }
      }
      if (any) {
        for (size_t i = 0; i <= last_nonzero; ++i) {
          if (i) out << ", ";
          out << h.bucket(i);
        }
      }
      out << "]";
    } else {
      out << "\"type\": \"unset\"";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, s] : series_) {
    if (s.counter) s.counter->Reset();
    if (s.gauge) s.gauge->Reset();
    if (s.histogram) s.histogram->Reset();
  }
}

}  // namespace ssdb
