// Unified metrics registry: named counters, gauges and deterministic
// log-bucketed histograms, labelled by small {key: value} sets (provider
// index, table, query kind, ...).
//
// The paper's §V cost argument is about communication volume and rounds;
// this registry is the single place those figures accumulate, replacing
// the hand-rolled counter structs that used to live in four disconnected
// layers. Design constraints:
//   * Hot paths are lock-free: Get{Counter,Gauge,Histogram} registers a
//     series once (under the registration mutex) and returns a stable
//     handle whose updates are relaxed atomics. Instrumented layers cache
//     handles (the Network caches per-link handles at AttachMetrics).
//   * Everything is integer-valued and order-independent (sums and
//     bucket counts), so registry totals are bit-identical for any
//     fan-out thread count and reconcile exactly with the ChannelStats /
//     QueryTrace figures bumped at the same call sites.
//   * Export is deterministic: series sort by (name, labels) and the
//     formats (Prometheus text exposition, JSON snapshot) contain no
//     floats, timestamps or addresses.
//
// Histogram buckets are base-2 log buckets: bucket 0 counts value 0,
// bucket i >= 1 counts values v with 2^(i-1) <= v < 2^i. Bucket
// boundaries are fixed (no adaptation), so counts depend only on the
// observed multiset of values.

#ifndef SSDB_OBS_METRICS_H_
#define SSDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ssdb {

/// Sorted {key: value} label set attached to one metric series.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Updates are relaxed atomic adds, so concurrent
/// fan-out legs can bump one series racelessly and the total is
/// order-independent.
class MetricCounter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time gauge (set/add; signed).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Deterministic base-2 log-bucketed histogram of uint64 samples.
class MetricHistogram {
 public:
  /// Bucket 0 holds value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  static constexpr size_t kBuckets = 65;

  /// The bucket index a value falls into (pure function of the value).
  static size_t BucketIndex(uint64_t value);
  /// Inclusive upper bound of bucket `i` ("le" in the exports);
  /// bucket 0 -> 0, bucket i -> 2^i - 1.
  static uint64_t BucketUpperBound(size_t i);

  void Observe(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Deterministic quantile estimate with a ceil-rank convention: the
  /// result is the inclusive upper bound of the bucket holding the
  /// rank-th smallest sample, where rank = ceil(q * count) clamped to
  /// [1, count] (q itself is clamped to [0, 1] first, so q = 0 reads the
  /// smallest sample's bucket). An EMPTY histogram returns 0 without
  /// reading any bucket bound — callers never see a fabricated upper
  /// bound for data that was never observed. Integer-only, a pure
  /// function of the observed multiset, so p50/p99/p999 reports are
  /// bit-identical across runs and thread counts. Only meaningful while
  /// no concurrent Observe is in flight.
  uint64_t ValueAtQuantile(double q) const;
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// \brief The registry: one instance per deployment, shared by every
/// instrumented layer (network links, providers, resilience, plan
/// executor, client).
///
/// Series handles returned by the getters stay valid for the registry's
/// lifetime; Reset() zeroes values but keeps every registration (and its
/// handles) intact, so cached handles never dangle.
class MetricsRegistry {
 public:
  MetricCounter* GetCounter(const std::string& name,
                            const MetricLabels& labels = {});
  MetricGauge* GetGauge(const std::string& name,
                        const MetricLabels& labels = {});
  MetricHistogram* GetHistogram(const std::string& name,
                                const MetricLabels& labels = {});

  /// Current value of a counter series (0 when never registered) —
  /// reconciliation tests read totals through this.
  uint64_t CounterValue(const std::string& name,
                        const MetricLabels& labels = {}) const;
  /// Sum of a counter over every label combination it was registered
  /// with. Beware metrics that keep both per-tenant series and a
  /// `tenant="_all"` aggregate: this overload sums BOTH, so the result is
  /// double the logical total — use the label-filtered overload below to
  /// select one stratum.
  uint64_t CounterTotal(const std::string& name) const;
  /// Sum of a counter over the series whose label set contains
  /// `label_key == label_value` (0 when no series matches). With
  /// label_key = "tenant" and label_value = "_all" this reads exactly the
  /// aggregate stratum of a per-tenant metric, avoiding the
  /// double-counting of the unfiltered overload.
  uint64_t CounterTotal(const std::string& name, const std::string& label_key,
                        const std::string& label_value) const;

  /// Prometheus text exposition (sorted, integer-only, deterministic).
  std::string ExportPrometheus() const;
  /// JSON snapshot (sorted, integer-only, deterministic). Histograms
  /// list only buckets up to the last non-empty one.
  std::string ExportJson() const;

  /// Zeroes every series value; registrations and handles stay valid.
  void Reset();

 private:
  /// One registered series; exactly one of the pointers is set.
  struct Series {
    std::string name;
    MetricLabels labels;
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
  };

  /// Canonical "name{k=v,...}" key; label keys are sorted.
  static std::string SeriesKey(const std::string& name,
                               const MetricLabels& labels);

  Series* GetOrCreate(const std::string& name, const MetricLabels& labels);

  mutable std::mutex mu_;  ///< Guards the map; values are atomic.
  std::map<std::string, Series> series_;
};

}  // namespace ssdb

#endif  // SSDB_OBS_METRICS_H_
