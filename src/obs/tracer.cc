#include "obs/tracer.h"

#include <cstdio>
#include <sstream>

namespace ssdb {
namespace {

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

uint64_t Tracer::StartSpan(const std::string& name,
                           const std::string& category, uint64_t ts_us) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  SpanRecord rec;
  rec.id = next_id_++;
  auto& stack = stacks_[std::this_thread::get_id()];
  rec.parent = stack.empty() ? 0 : stack.back();
  rec.name = name;
  rec.category = category;
  rec.ts_us = ts_us;
  open_index_[rec.id] = spans_.size();
  spans_.push_back(std::move(rec));
  stack.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id, uint64_t end_ts_us) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_index_.find(id);
  if (it == open_index_.end()) return;
  SpanRecord& rec = spans_[it->second];
  rec.dur_us = end_ts_us >= rec.ts_us ? end_ts_us - rec.ts_us : 0;
  open_index_.erase(it);
  auto& stack = stacks_[std::this_thread::get_id()];
  if (!stack.empty() && stack.back() == id) stack.pop_back();
}

uint64_t Tracer::AddSpan(
    const std::string& name, const std::string& category, uint64_t ts_us,
    uint64_t dur_us, uint64_t parent,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  SpanRecord rec;
  rec.id = next_id_++;
  rec.parent = parent;
  rec.name = name;
  rec.category = category;
  rec.ts_us = ts_us;
  rec.dur_us = dur_us;
  rec.args = std::move(args);
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void Tracer::Event(const std::string& name, const std::string& category,
                   uint64_t ts_us, uint64_t parent,
                   std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanRecord rec;
  rec.id = next_id_++;
  rec.parent = parent;
  rec.name = name;
  rec.category = category;
  rec.ts_us = ts_us;
  rec.instant = true;
  rec.args = std::move(args);
  spans_.push_back(std::move(rec));
}

uint64_t Tracer::CurrentSpan() const {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stacks_.find(std::this_thread::get_id());
  if (it == stacks_.end() || it->second.empty()) return 0;
  return it->second.back();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string Tracer::ExportChromeTrace() const {
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\"traceEvents\": [\n";
  bool first = true;
  for (const SpanRecord& s : spans_) {
    if (!first) out << ",\n";
    first = false;
    // pid/tid are fixed: the simulation is one logical process, and
    // encoding real worker-thread ids would break run-to-run identity.
    out << "  {\"name\": \"" << EscapeJson(s.name) << "\", \"cat\": \""
        << EscapeJson(s.category) << "\", \"ph\": \""
        << (s.instant ? "i" : "X") << "\", \"ts\": " << s.ts_us;
    if (!s.instant) out << ", \"dur\": " << s.dur_us;
    out << ", \"pid\": 1, \"tid\": 1";
    if (s.instant) out << ", \"s\": \"t\"";
    out << ", \"args\": {\"id\": " << s.id << ", \"parent\": " << s.parent;
    for (const auto& [k, v] : s.args) {
      out << ", \"" << EscapeJson(k) << "\": \"" << EscapeJson(v) << "\"";
    }
    out << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  open_index_.clear();
  stacks_.clear();
  next_id_ = 1;
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace ssdb
