// Continuous monitor: windowed time series, per-tenant metering &
// billing, SLO alert rules and a top-K slow-query log (ROADMAP:
// observability as the service's standing SLA/billing instrument).
//
// The paper's DaaS pitch is pay-per-use economics: a provider amortizes
// hardware and DBA cost across tenants, which only works if it can METER
// each tenant's resource consumption and PROVE SLA compliance. The
// MetricsRegistry gives cumulative totals; the Monitor adds the time
// dimension: it cuts the virtual-clock timeline into fixed windows
// ([k*window_us, (k+1)*window_us)) and aggregates per-window counts,
// latency percentiles, per-tenant meter samples and billing cost into a
// bounded ring buffer.
//
// Determinism contract: the Monitor is fed observations in ARRIVAL
// order by a deterministic driver (the TrafficHarness accounting pass,
// the sql_shell statement loop). Every observation's figures — service
// charges from QueryTrace, meter samples from the `ssdb_meter_*`
// charges — are pure integer functions of the seed and invariant under
// `fanout_threads`, so every windowed rate, percentile, billing row,
// alert event and slow-query entry is bit-identical across
// fanout_threads {1,4,8} and same-seed runs.
//
// Low-frequency fault telemetry (circuit-breaker opens, WAL torn-tail
// truncations) is not observation-borne: the Monitor snapshots the
// registry totals at each window close and attributes the delta to the
// closing window. Those charges happen at deterministic program points
// of the driver's replay, so the attribution is deterministic too.
//
// Alert rules are declarative: `value(input) > threshold` for
// `for_windows` CONSECUTIVE windows fires the rule (one "firing" event);
// the first non-breaching window afterwards resolves it (one "resolved"
// event). Events carry the virtual end time of the transition window.

#ifndef SSDB_OBS_MONITOR_H_
#define SSDB_OBS_MONITOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "plan/trace.h"

namespace ssdb {

/// Deterministic integer cost model, in microcredits (1e-6 credit):
///   cost = a·requests + b·(bytes_sent + bytes_received) + c·clock_us
/// The defaults make a WAN point read cost a few thousand microcredits;
/// coefficients are part of the tenant's contract (docs/PROTOCOL.md).
struct CostModel {
  uint64_t a_per_request = 1000;  ///< Flat per-request charge.
  uint64_t b_per_byte = 2;        ///< Communication volume charge.
  uint64_t c_per_clock_us = 1;    ///< Service-time (virtual clock) charge.

  uint64_t Cost(uint64_t requests, uint64_t bytes, uint64_t clock_us) const {
    return a_per_request * requests + b_per_byte * bytes +
           c_per_clock_us * clock_us;
  }
};

/// One request's metered resource consumption — the same figures the
/// client charges to the `ssdb_meter_*{tenant}` series, so window sums
/// reconcile exactly with the registry meter totals.
struct MeterSample {
  uint64_t requests = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t rounds = 0;
  uint64_t clock_us = 0;

  uint64_t bytes() const { return bytes_sent + bytes_received; }
  MeterSample& operator+=(const MeterSample& o) {
    requests += o.requests;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    rounds += o.rounds;
    clock_us += o.clock_us;
    return *this;
  }
};

/// The windowed figure an alert rule thresholds on.
enum class AlertInput : uint8_t {
  kLatencyP99Us,           ///< Completed-request latency p99 (SLO burn).
  kRejectedRatioPermille,  ///< rejected * 1000 / offered.
  kFailedRequests,         ///< Execution failures in the window.
  kBreakerOpens,           ///< Breaker open transitions (registry delta).
  kWalTruncatedBytes,      ///< WAL torn-tail truncation bytes (delta).
};

/// Stable grammar name of an input (used in exports and docs).
const char* AlertInputName(AlertInput input);

/// One declarative rule: fires when `value(input) > threshold` holds for
/// `for_windows` consecutive windows; resolves on the first window that
/// does not breach.
struct AlertRule {
  std::string name;
  AlertInput input = AlertInput::kLatencyP99Us;
  uint64_t threshold = 0;
  uint32_t for_windows = 1;
};

/// The standard rule set: p99 latency burn vs. `p99_slo_us` (2 windows),
/// >10% admission rejections, any breaker open, any WAL truncation.
std::vector<AlertRule> DefaultAlertRules(uint64_t p99_slo_us);

/// One structured alert-log event, stamped with virtual time.
struct AlertEvent {
  uint64_t window_end_us = 0;
  std::string rule;
  bool firing = false;  ///< true = fired, false = resolved.
  uint64_t value = 0;   ///< The input value at the transition window.
  uint64_t threshold = 0;
};

/// One slow-query log entry: the full QueryTrace of a top-K service-time
/// query of its window (mutations carry no plan trace; their entry keeps
/// an empty one).
struct SlowQuery {
  std::string tenant;
  uint32_t seq = 0;  ///< The tenant's per-stream sequence number.
  uint64_t arrival_us = 0;
  uint64_t service_us = 0;
  uint64_t latency_us = 0;
  QueryTrace trace;
};

/// Per-tenant meter roll-up (one window, or the cumulative bill).
struct TenantMeter {
  std::string tenant;
  MeterSample meter;
  uint64_t cost_microcredits = 0;
};

/// One closed window of the ring.
struct MonitorWindow {
  uint64_t index = 0;     ///< 0-based window number since the origin.
  uint64_t start_us = 0;  ///< Inclusive.
  uint64_t end_us = 0;    ///< Exclusive (== start of the next window).
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t rejected = 0;
  uint64_t latency_p50_us = 0;  ///< Ceil-rank log-bucket upper bounds.
  uint64_t latency_p99_us = 0;
  uint64_t latency_max_us = 0;  ///< Exact (not a bucket bound).
  uint64_t latency_sum_us = 0;
  uint64_t queue_delay_p99_us = 0;
  MeterSample meter;  ///< All tenants of the window.
  uint64_t cost_microcredits = 0;
  std::vector<TenantMeter> tenants;  ///< Sorted by tenant name.
  uint64_t breaker_opens = 0;
  uint64_t wal_truncated_bytes = 0;
  std::vector<SlowQuery> slow;  ///< Top-K by (service desc, arrival asc).
};

/// \brief Everything the monitor accumulated, as one copyable value.
struct MonitorReport {
  uint64_t window_us = 0;
  uint64_t windows_total = 0;    ///< Closed windows, dropped included.
  uint64_t windows_dropped = 0;  ///< Evicted from the bounded ring.
  std::vector<MonitorWindow> windows;  ///< Ring contents, oldest first.
  std::vector<AlertEvent> alerts;      ///< Full event log, in fire order.
  std::vector<TenantMeter> billing;    ///< Cumulative, sorted by tenant.
  TenantMeter total;                   ///< Cumulative, tenant = "_all".

  /// Deterministic integer-only JSON (plus tenant/rule names):
  /// bit-identical across fanout_threads counts and same-seed runs.
  std::string ExportJson() const;
};

struct MonitorOptions {
  /// Window width in virtual microseconds; boundaries are multiples of
  /// it, so windowing is a pure function of the observation timeline.
  uint64_t window_us = 1000000;
  /// Ring capacity: closing window N+capacity evicts window N (counted
  /// in windows_dropped; billing totals are unaffected by eviction).
  size_t ring_capacity = 64;
  /// Slow-query log entries kept per window.
  size_t slow_k = 4;
  CostModel cost;
  std::vector<AlertRule> rules;
};

/// What happened to one observed request.
enum class RequestClass : uint8_t { kCompleted, kFailed, kRejected };

/// One request fed to Monitor::Observe, in arrival order.
struct RequestObservation {
  std::string tenant;
  uint32_t seq = 0;
  uint64_t arrival_us = 0;
  RequestClass cls = RequestClass::kCompleted;
  uint64_t latency_us = 0;      ///< Completed only.
  uint64_t queue_delay_us = 0;  ///< Completed only.
  uint64_t service_us = 0;      ///< Completed only.
  /// The request's meter charge (zero for rejected/failed requests —
  /// the service bills answers, not attempts).
  MeterSample meter;
  /// Borrowed plan trace; copied only if the request enters the top-K
  /// slow log. May be null (mutations, rejections).
  const QueryTrace* trace = nullptr;
};

/// \brief The monitor. Single-threaded by design: it is driven from the
/// deterministic accounting pass of a harness (or a sequential shell),
/// never from fan-out workers.
class Monitor {
 public:
  /// `registry` may be null: registry-delta inputs (breaker opens, WAL
  /// truncations) then read as zero and no self-series are charged.
  Monitor(MetricsRegistry* registry, MonitorOptions options);

  /// Feeds one request; `obs.arrival_us` must be non-decreasing across
  /// calls. Crossing a window boundary first closes every window whose
  /// end is <= the arrival (empty gap windows included — alerts resolve
  /// during quiet periods).
  void Observe(const RequestObservation& obs);

  /// Closes every window up to `now_us`, then the final partial window
  /// [start, now_us) if non-empty in time. Call exactly once, after the
  /// last Observe.
  void Finish(uint64_t now_us);

  /// Snapshot of everything accumulated so far.
  MonitorReport Report() const;

  const MonitorOptions& options() const { return options_; }

 private:
  /// Single-threaded base-2 log-bucket histogram sharing the registry
  /// histogram's bucket layout and ceil-rank quantile convention.
  struct LocalHist {
    uint64_t buckets[MetricHistogram::kBuckets] = {};
    uint64_t count = 0;
    void Observe(uint64_t v) {
      ++buckets[MetricHistogram::BucketIndex(v)];
      ++count;
    }
    uint64_t Quantile(double q) const;
    void Reset();
  };

  void CloseWindowsUpTo(uint64_t t_us);
  void CloseWindow(uint64_t end_us);
  void EvaluateAlerts(const MonitorWindow& w);

  MetricsRegistry* registry_;
  MonitorOptions options_;
  bool finished_ = false;

  // Current (open) window accumulators.
  uint64_t cur_start_us_ = 0;
  uint64_t cur_index_ = 0;
  uint64_t offered_ = 0, completed_ = 0, failed_ = 0, rejected_ = 0;
  uint64_t latency_max_us_ = 0, latency_sum_us_ = 0;
  LocalHist latency_, queue_delay_;
  MeterSample meter_;
  std::map<std::string, MeterSample> tenant_meter_;
  std::vector<SlowQuery> slow_;  ///< Current top-K candidates, ranked.

  // Registry snapshot at the last window close (delta inputs).
  uint64_t breaker_opens_last_ = 0;
  uint64_t wal_truncated_last_ = 0;

  // Per-rule consecutive-breach state.
  struct RuleState {
    uint32_t breaches = 0;  ///< Consecutive breaching windows.
    bool firing = false;
  };
  std::vector<RuleState> rule_state_;

  // Closed state.
  std::deque<MonitorWindow> ring_;
  uint64_t windows_total_ = 0;
  uint64_t windows_dropped_ = 0;
  std::vector<AlertEvent> alerts_;
  std::map<std::string, TenantMeter> billing_;
  TenantMeter total_;
};

}  // namespace ssdb

#endif  // SSDB_OBS_MONITOR_H_
