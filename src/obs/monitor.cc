#include "obs/monitor.h"

#include <algorithm>
#include <sstream>

namespace ssdb {
namespace {

// Registry series the monitor snapshots at window close (delta inputs)
// and the self-series it charges. Names are literals here so the
// catalogue lint sees them.
constexpr char kBreakerSeries[] = "ssdb_resilience_breaker_transitions_total";
constexpr char kWalTruncatedSeries[] = "ssdb_recovery_truncated_bytes_total";
constexpr char kWindowsSeries[] = "ssdb_monitor_windows_total";
constexpr char kDroppedSeries[] = "ssdb_monitor_windows_dropped_total";
constexpr char kSlowSeries[] = "ssdb_monitor_slow_queries_total";
constexpr char kAlertsFired[] = "ssdb_alerts_fired_total";
constexpr char kAlertsResolved[] = "ssdb_alerts_resolved_total";
constexpr char kCostSeries[] = "ssdb_meter_cost_microcredits_total";

void AppendMeterJson(std::ostringstream* out, const MeterSample& m,
                     uint64_t cost) {
  *out << "{\"requests\": " << m.requests
       << ", \"bytes_sent\": " << m.bytes_sent
       << ", \"bytes_received\": " << m.bytes_received
       << ", \"rounds\": " << m.rounds << ", \"clock_us\": " << m.clock_us
       << ", \"cost_microcredits\": " << cost << "}";
}

void AppendTenantMeterJson(std::ostringstream* out, const TenantMeter& t) {
  *out << "{\"tenant\": \"" << t.tenant << "\", \"meter\": ";
  AppendMeterJson(out, t.meter, t.cost_microcredits);
  *out << "}";
}

}  // namespace

const char* AlertInputName(AlertInput input) {
  switch (input) {
    case AlertInput::kLatencyP99Us: return "latency_p99_us";
    case AlertInput::kRejectedRatioPermille: return "rejected_ratio_permille";
    case AlertInput::kFailedRequests: return "failed_requests";
    case AlertInput::kBreakerOpens: return "breaker_opens";
    case AlertInput::kWalTruncatedBytes: return "wal_truncated_bytes";
  }
  return "unknown";
}

std::vector<AlertRule> DefaultAlertRules(uint64_t p99_slo_us) {
  return {
      // Two consecutive breaching windows before paging on latency: one
      // bursty window is noise, a sustained burn is an SLO violation.
      {"latency_p99_burn", AlertInput::kLatencyP99Us, p99_slo_us, 2},
      // > 10% of offered load rejected at admission.
      {"admission_reject_ratio", AlertInput::kRejectedRatioPermille, 100, 1},
      {"execution_failures", AlertInput::kFailedRequests, 0, 1},
      {"breaker_open", AlertInput::kBreakerOpens, 0, 1},
      {"wal_torn_tail", AlertInput::kWalTruncatedBytes, 0, 1},
  };
}

uint64_t Monitor::LocalHist::Quantile(double q) const {
  // Same ceil-rank convention as MetricHistogram::ValueAtQuantile; an
  // empty histogram returns 0 without reading any bucket bound.
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < MetricHistogram::kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return MetricHistogram::BucketUpperBound(i);
  }
  return MetricHistogram::BucketUpperBound(MetricHistogram::kBuckets - 1);
}

void Monitor::LocalHist::Reset() {
  for (uint64_t& b : buckets) b = 0;
  count = 0;
}

Monitor::Monitor(MetricsRegistry* registry, MonitorOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.window_us == 0) options_.window_us = 1;
  rule_state_.resize(options_.rules.size());
  total_.tenant = "_all";
  if (registry_ != nullptr) {
    // Baseline for the delta inputs: only what happens DURING the
    // monitored run is attributed to its windows.
    breaker_opens_last_ = registry_->CounterTotal(kBreakerSeries, "to", "open");
    wal_truncated_last_ = registry_->CounterTotal(kWalTruncatedSeries);
  }
}

void Monitor::Observe(const RequestObservation& obs) {
  if (finished_) return;
  CloseWindowsUpTo(obs.arrival_us);

  ++offered_;
  meter_ += obs.meter;
  tenant_meter_[obs.tenant] += obs.meter;
  switch (obs.cls) {
    case RequestClass::kRejected:
      ++rejected_;
      return;
    case RequestClass::kFailed:
      ++failed_;
      return;
    case RequestClass::kCompleted:
      break;
  }
  ++completed_;
  latency_.Observe(obs.latency_us);
  queue_delay_.Observe(obs.queue_delay_us);
  latency_sum_us_ += obs.latency_us;
  if (obs.latency_us > latency_max_us_) latency_max_us_ = obs.latency_us;

  // Top-K slow log: the trace is copied only when the request actually
  // enters the ranking. Order: service desc, then (arrival, tenant, seq)
  // ascending — a total order, so the log is run-invariant.
  if (options_.slow_k == 0) return;
  auto rank_before = [](const SlowQuery& a, const SlowQuery& b) {
    if (a.service_us != b.service_us) return a.service_us > b.service_us;
    if (a.arrival_us != b.arrival_us) return a.arrival_us < b.arrival_us;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return a.seq < b.seq;
  };
  SlowQuery entry;
  entry.tenant = obs.tenant;
  entry.seq = obs.seq;
  entry.arrival_us = obs.arrival_us;
  entry.service_us = obs.service_us;
  entry.latency_us = obs.latency_us;
  if (slow_.size() >= options_.slow_k && !rank_before(entry, slow_.back())) {
    return;  // Ranks at or below the current worst: not a new entry.
  }
  if (obs.trace != nullptr) entry.trace = *obs.trace;
  slow_.push_back(std::move(entry));
  std::sort(slow_.begin(), slow_.end(), rank_before);
  if (slow_.size() > options_.slow_k) slow_.resize(options_.slow_k);
}

void Monitor::CloseWindowsUpTo(uint64_t t_us) {
  while (t_us >= cur_start_us_ + options_.window_us) {
    CloseWindow(cur_start_us_ + options_.window_us);
  }
}

void Monitor::CloseWindow(uint64_t end_us) {
  MonitorWindow w;
  w.index = cur_index_;
  w.start_us = cur_start_us_;
  w.end_us = end_us;
  w.offered = offered_;
  w.completed = completed_;
  w.failed = failed_;
  w.rejected = rejected_;
  w.latency_p50_us = latency_.Quantile(0.50);
  w.latency_p99_us = latency_.Quantile(0.99);
  w.latency_max_us = latency_max_us_;
  w.latency_sum_us = latency_sum_us_;
  w.queue_delay_p99_us = queue_delay_.Quantile(0.99);
  w.meter = meter_;
  w.cost_microcredits =
      options_.cost.Cost(meter_.requests, meter_.bytes(), meter_.clock_us);
  for (const auto& [tenant, meter] : tenant_meter_) {
    TenantMeter tm;
    tm.tenant = tenant;
    tm.meter = meter;
    tm.cost_microcredits =
        options_.cost.Cost(meter.requests, meter.bytes(), meter.clock_us);
    w.tenants.push_back(std::move(tm));
  }
  if (registry_ != nullptr) {
    const uint64_t opens =
        registry_->CounterTotal(kBreakerSeries, "to", "open");
    const uint64_t truncated = registry_->CounterTotal(kWalTruncatedSeries);
    w.breaker_opens = opens - breaker_opens_last_;
    w.wal_truncated_bytes = truncated - wal_truncated_last_;
    breaker_opens_last_ = opens;
    wal_truncated_last_ = truncated;
  }
  w.slow = std::move(slow_);

  EvaluateAlerts(w);

  // Billing accumulates at window close, independent of ring retention
  // (evicting a window never un-bills it). The cost model is linear, so
  // summing window costs equals costing the summed meters.
  for (const TenantMeter& tm : w.tenants) {
    TenantMeter& bill = billing_[tm.tenant];
    bill.tenant = tm.tenant;
    bill.meter += tm.meter;
    bill.cost_microcredits += tm.cost_microcredits;
  }
  total_.meter += w.meter;
  total_.cost_microcredits += w.cost_microcredits;

  if (registry_ != nullptr) {
    registry_->GetCounter(kWindowsSeries)->Inc();
    registry_->GetCounter(kSlowSeries)->Inc(w.slow.size());
    for (const TenantMeter& tm : w.tenants) {
      registry_->GetCounter(kCostSeries, {{"tenant", tm.tenant}})
          ->Inc(tm.cost_microcredits);
    }
    registry_->GetCounter(kCostSeries, {{"tenant", "_all"}})
        ->Inc(w.cost_microcredits);
  }

  ring_.push_back(std::move(w));
  if (ring_.size() > std::max<size_t>(1, options_.ring_capacity)) {
    ring_.pop_front();
    ++windows_dropped_;
    if (registry_ != nullptr) registry_->GetCounter(kDroppedSeries)->Inc();
  }
  ++windows_total_;

  // Reset the open-window accumulators.
  cur_start_us_ = end_us;
  ++cur_index_;
  offered_ = completed_ = failed_ = rejected_ = 0;
  latency_max_us_ = latency_sum_us_ = 0;
  latency_.Reset();
  queue_delay_.Reset();
  meter_ = MeterSample();
  tenant_meter_.clear();
  slow_.clear();
}

void Monitor::EvaluateAlerts(const MonitorWindow& w) {
  for (size_t i = 0; i < options_.rules.size(); ++i) {
    const AlertRule& rule = options_.rules[i];
    RuleState& state = rule_state_[i];
    uint64_t value = 0;
    switch (rule.input) {
      case AlertInput::kLatencyP99Us:
        value = w.latency_p99_us;
        break;
      case AlertInput::kRejectedRatioPermille:
        value = w.offered == 0 ? 0 : w.rejected * 1000 / w.offered;
        break;
      case AlertInput::kFailedRequests:
        value = w.failed;
        break;
      case AlertInput::kBreakerOpens:
        value = w.breaker_opens;
        break;
      case AlertInput::kWalTruncatedBytes:
        value = w.wal_truncated_bytes;
        break;
    }
    if (value > rule.threshold) {
      ++state.breaches;
      const uint32_t need = std::max<uint32_t>(1, rule.for_windows);
      if (!state.firing && state.breaches >= need) {
        state.firing = true;
        alerts_.push_back({w.end_us, rule.name, true, value, rule.threshold});
        if (registry_ != nullptr) {
          registry_->GetCounter(kAlertsFired, {{"rule", rule.name}})->Inc();
        }
      }
    } else {
      state.breaches = 0;
      if (state.firing) {
        state.firing = false;
        alerts_.push_back({w.end_us, rule.name, false, value, rule.threshold});
        if (registry_ != nullptr) {
          registry_->GetCounter(kAlertsResolved, {{"rule", rule.name}})->Inc();
        }
      }
    }
  }
}

void Monitor::Finish(uint64_t now_us) {
  if (finished_) return;
  CloseWindowsUpTo(now_us);
  if (now_us > cur_start_us_) CloseWindow(now_us);
  finished_ = true;
}

MonitorReport Monitor::Report() const {
  MonitorReport report;
  report.window_us = options_.window_us;
  report.windows_total = windows_total_;
  report.windows_dropped = windows_dropped_;
  report.windows.assign(ring_.begin(), ring_.end());
  report.alerts = alerts_;
  for (const auto& [tenant, bill] : billing_) report.billing.push_back(bill);
  report.total = total_;
  return report;
}

std::string MonitorReport::ExportJson() const {
  std::ostringstream out;
  out << "{\n    \"window_us\": " << window_us
      << ",\n    \"windows_total\": " << windows_total
      << ",\n    \"windows_dropped\": " << windows_dropped
      << ",\n    \"windows\": [\n";
  for (size_t i = 0; i < windows.size(); ++i) {
    const MonitorWindow& w = windows[i];
    out << "      {\"index\": " << w.index << ", \"start_us\": " << w.start_us
        << ", \"end_us\": " << w.end_us << ", \"offered\": " << w.offered
        << ", \"completed\": " << w.completed << ", \"failed\": " << w.failed
        << ", \"rejected\": " << w.rejected
        << ", \"latency_p50_us\": " << w.latency_p50_us
        << ", \"latency_p99_us\": " << w.latency_p99_us
        << ", \"latency_max_us\": " << w.latency_max_us
        << ", \"latency_sum_us\": " << w.latency_sum_us
        << ", \"queue_delay_p99_us\": " << w.queue_delay_p99_us
        << ", \"breaker_opens\": " << w.breaker_opens
        << ", \"wal_truncated_bytes\": " << w.wal_truncated_bytes
        << ", \"meter\": ";
    AppendMeterJson(&out, w.meter, w.cost_microcredits);
    out << ", \"tenants\": [";
    for (size_t t = 0; t < w.tenants.size(); ++t) {
      if (t) out << ", ";
      AppendTenantMeterJson(&out, w.tenants[t]);
    }
    out << "], \"slow\": [";
    for (size_t s = 0; s < w.slow.size(); ++s) {
      const SlowQuery& sq = w.slow[s];
      if (s) out << ", ";
      out << "{\"tenant\": \"" << sq.tenant << "\", \"seq\": " << sq.seq
          << ", \"arrival_us\": " << sq.arrival_us
          << ", \"service_us\": " << sq.service_us
          << ", \"latency_us\": " << sq.latency_us
          << ", \"trace_bytes_sent\": " << sq.trace.total_bytes_sent()
          << ", \"trace_bytes_received\": " << sq.trace.total_bytes_received()
          << ", \"trace_rounds\": " << sq.trace.total_round_trips()
          << ", \"trace_legs\": " << sq.trace.total_provider_legs() << "}";
    }
    out << "]}";
    if (i + 1 < windows.size()) out << ",";
    out << "\n";
  }
  out << "    ],\n    \"alerts\": [\n";
  for (size_t i = 0; i < alerts.size(); ++i) {
    const AlertEvent& e = alerts[i];
    out << "      {\"window_end_us\": " << e.window_end_us << ", \"rule\": \""
        << e.rule << "\", \"event\": \"" << (e.firing ? "firing" : "resolved")
        << "\", \"value\": " << e.value << ", \"threshold\": " << e.threshold
        << "}";
    if (i + 1 < alerts.size()) out << ",";
    out << "\n";
  }
  out << "    ],\n    \"billing\": {\"tenants\": [";
  for (size_t i = 0; i < billing.size(); ++i) {
    if (i) out << ", ";
    AppendTenantMeterJson(&out, billing[i]);
  }
  out << "], \"total\": ";
  AppendTenantMeterJson(&out, total);
  out << "}\n  }";
  return out.str();
}

}  // namespace ssdb
