// Hierarchical span tracer with VirtualClock timestamps.
//
// Spans follow the query path: query -> plan node -> quorum round ->
// provider leg -> retry/hedge attempt. Determinism is the design driver:
//   * Timestamps come from the deployment's VirtualClock, never from
//     wall time, so a trace of a seeded run is bit-identical across
//     fanout_threads counts and across repeat runs.
//   * Spans are emitted only from the thread that executes the query
//     (the plan executor / client thread), never from network worker
//     threads — worker interleaving therefore cannot reorder the trace.
//     ExecuteBatch runs each query wholly on one pool thread, so a
//     per-thread span stack keeps parentage correct there too.
//   * Span ids are allocated from a registry-order counter, and export
//     walks spans in creation order.
//
// The tracer is disabled by default (zero allocation, a single relaxed
// atomic load per call site); benches pay nothing unless they opt in.
// Export is Chrome trace-event JSON ("X" complete events for spans, "i"
// instant events), loadable in chrome://tracing or Perfetto.

#ifndef SSDB_OBS_TRACER_H_
#define SSDB_OBS_TRACER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ssdb {

/// One finished span (or instant event when `instant` is true), as
/// snapshotted for tests and export.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  ///< 0 = root.
  std::string name;
  std::string category;  ///< "query", "node", "leg", "resilience", ...
  uint64_t ts_us = 0;    ///< VirtualClock start.
  uint64_t dur_us = 0;   ///< VirtualClock duration (0 allowed).
  bool instant = false;  ///< True for point events (breaker flips, ...).
  /// Small sorted key/value payload ("provider": "2", "rows": "17", ...).
  std::vector<std::pair<std::string, std::string>> args;
};

/// \brief Collects spans when enabled; no-ops (cheaply) when disabled.
///
/// Two emission styles coexist:
///   * Scoped: StartSpan/EndSpan maintain a per-thread parent stack for
///     code that brackets live execution (the query span).
///   * Post-hoc: AddSpan records a complete span with an explicit
///     parent, used by the executor to lay out node/leg spans from the
///     finished QueryTrace (whose clock figures are already exact).
class Tracer {
 public:
  /// Spans retained per run; beyond this, spans are counted as dropped
  /// instead of recorded (keeps chaos workloads bounded).
  static constexpr size_t kMaxSpans = 1 << 18;

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Opens a span at `ts_us` under the calling thread's current span;
  /// returns its id (0 when disabled or over budget).
  uint64_t StartSpan(const std::string& name, const std::string& category,
                     uint64_t ts_us);
  /// Closes the span — must be the top of the calling thread's stack.
  void EndSpan(uint64_t id, uint64_t end_ts_us);

  /// Records a complete span with an explicit parent (0 = root, or pass
  /// CurrentSpan()). Returns its id (0 when disabled or over budget).
  uint64_t AddSpan(const std::string& name, const std::string& category,
                   uint64_t ts_us, uint64_t dur_us, uint64_t parent,
                   std::vector<std::pair<std::string, std::string>> args = {});

  /// Records an instant event under `parent` (0 = root).
  void Event(const std::string& name, const std::string& category,
             uint64_t ts_us, uint64_t parent,
             std::vector<std::pair<std::string, std::string>> args = {});

  /// Id of the calling thread's innermost open span (0 when none).
  uint64_t CurrentSpan() const;

  /// Spans in creation order (copy; safe to inspect after more traffic).
  std::vector<SpanRecord> Snapshot() const;
  size_t span_count() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Chrome trace-event JSON: {"traceEvents": [...]} with "X" events
  /// for spans and "i" events for instants. Deterministic: creation
  /// order, integer microseconds, ids as "parent"/"id" args.
  std::string ExportChromeTrace() const;

  /// Drops all recorded spans and open stacks; keeps enabled state.
  void Clear();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;          ///< Finished + open, creation order.
  std::map<uint64_t, size_t> open_index_;  ///< Open span id -> spans_ index.
  std::map<std::thread::id, std::vector<uint64_t>> stacks_;
  uint64_t next_id_ = 1;
};

}  // namespace ssdb

#endif  // SSDB_OBS_TRACER_H_
