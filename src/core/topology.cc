#include "core/topology.h"

#include "common/hash.h"

namespace ssdb {

const char* PartitionerName(Partitioner partitioner) {
  return partitioner == Partitioner::kRange ? "range" : "hash";
}

Status ValidateTopology(const Topology& topology) {
  if (topology.shards == 0) {
    return Status::InvalidArgument("topology: shards must be >= 1");
  }
  if (topology.providers_per_shard == 0) {
    return Status::InvalidArgument(
        "topology: providers_per_shard must be >= 1");
  }
  if (topology.providers_per_shard > 255) {
    return Status::InvalidArgument(
        "topology: at most 255 providers per shard (share evaluation "
        "points are one byte)");
  }
  if (topology.threshold == 0 ||
      topology.threshold > topology.providers_per_shard) {
    return Status::InvalidArgument(
        "topology: threshold k must satisfy 1 <= k <= providers_per_shard");
  }
  return Status::OK();
}

size_t ShardForCode(Partitioner partitioner, size_t shards, int64_t code,
                    const OpDomain& domain) {
  if (shards <= 1) return 0;
  // Offset into the domain; clamp out-of-domain codes to the edges so the
  // mapping is total (routing for provably-empty predicates is decided
  // before this function).
  u128 w = 0;
  if (code > domain.lo) {
    w = static_cast<u128>(static_cast<uint64_t>(code) -
                          static_cast<uint64_t>(domain.lo));
    if (w >= domain.size()) w = domain.size() - 1;
  }
  if (partitioner == Partitioner::kRange) {
    return static_cast<size_t>((w * shards) / domain.size());
  }
  const uint64_t w64 = static_cast<uint64_t>(w);
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<uint8_t>(w64 >> (8 * i));
  }
  return static_cast<size_t>(Fnv1a64(Slice(bytes, sizeof(bytes))) % shards);
}

}  // namespace ssdb
