// OutsourcedDatabase — the library's top-level public API.
//
// One object assembles the full deployment of the paper: n simulated
// Database Service Providers behind a cost-modelled network, plus the
// trusted data source client holding the keys. Most applications only
// need this header:
//
//   OutsourcedDbOptions options;
//   options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
//   auto db = OutsourcedDatabase::Create(options).value();
//   db->CreateTable(...);
//   db->Insert("Employees", rows);
//
//   // One Execute family covers built queries, joins and SQL text:
//   auto result = db->Execute(
//       Query::Select("Employees")
//           .Where(Between("salary", Value::Int(10000), Value::Int(40000))));
//   auto by_sql = db->Execute("SELECT name FROM Employees WHERE salary = 20");
//   auto joined = db->Execute(JoinQuery{...});  // rows = left ++ right
//
//   // Independent queries can share the fan-out worker pool:
//   auto batch = db->ExecuteBatch({q1, q2, q3});
//
//   // Fault injection for the availability experiments:
//   db->faults().Down(1);
//   db->faults().HealAll();
//
// See examples/quickstart.cc for the full Figure 1 walk-through.

#ifndef SSDB_CORE_OUTSOURCED_DB_H_
#define SSDB_CORE_OUTSOURCED_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "client/query.h"
#include "client/sql.h"
#include "net/fault_controller.h"
#include "net/network.h"
#include "provider/provider.h"

namespace ssdb {

/// Provider-side storage configuration (storage/engine.h).
struct StorageOptions {
  enum class Backend {
    kMemory,   ///< RAM only (the seed system); nothing survives a kill.
    kDurable,  ///< Per-provider WAL + snapshots under `dir`; providers
               ///< survive faults().Kill + Restart with state intact.
  };
  Backend backend = Backend::kMemory;
  /// Root directory for durable provider state; each provider gets the
  /// subdirectory `dir/<provider name>` (created on open). Required for
  /// kDurable.
  std::string dir;
  /// Checkpoint cadence: snapshot the full state and truncate the WAL
  /// after this many logged mutations (0 = never; WAL grows unbounded).
  size_t wal_snapshot_every = 256;
};

/// Options assembling a full deployment.
struct OutsourcedDbOptions {
  /// Deployment shape: shard groups, providers per group, threshold and
  /// partitioner (core/topology.h). Zero-valued fields inherit the
  /// deprecated flat aliases (`n` below, `client.k`), yielding the seed
  /// system's 1-shard topology:
  ///
  ///   options.topology = Topology(/*m=*/4, /*n_per=*/4, /*k=*/2,
  ///                               Partitioner::kRange);
  ///
  /// builds 16 providers in 4 range-partitioned shard groups.
  Topology topology;
  /// Deprecated alias for the provider count: with a default `topology`
  /// this is the seed system's flat n; with `topology.shards > 1` and
  /// `topology.providers_per_shard == 0` it is split into `shards` equal
  /// groups. Ignored when `topology.providers_per_shard != 0`.
  size_t n = 4;
  /// Network latency/bandwidth model for every client<->provider link.
  NetworkCostModel network;
  /// Data source configuration (threshold k, keys, update mode, ...).
  ClientOptions client;
  /// Worker threads for the provider fan-out pool (0 = one per hardware
  /// thread). 1 reproduces the serial execution order exactly.
  size_t fanout_threads = 0;
  /// Provider storage backend. The default MemoryEngine deployment is
  /// byte-identical to the seed system (results, wire bytes, virtual
  /// clock, telemetry exports); kDurable adds WAL + snapshot recovery and
  /// the `ssdb_wal_*` / `ssdb_recovery_*` telemetry series.
  StorageOptions storage;
};

/// \brief A complete simulated deployment: n providers + network + client.
class OutsourcedDatabase {
 public:
  static Result<std::unique_ptr<OutsourcedDatabase>> Create(
      OutsourcedDbOptions options);

  // --- Data management (delegates to the data source client) -----------

  Status CreateTable(TableSchema schema) {
    return client_->CreateTable(std::move(schema));
  }
  Status Insert(const std::string& table,
                const std::vector<std::vector<Value>>& rows) {
    return client_->Insert(table, rows);
  }
  /// Metered insert: on success the call's bytes, write fan-out rounds
  /// and clock delta are charged to ctx.tenant's `ssdb_meter_*` series.
  Status Insert(const std::string& table,
                const std::vector<std::vector<Value>>& rows,
                const RequestContext& ctx) {
    return client_->Insert(table, rows, ctx);
  }
  /// Initial outsourcing: ships the rows in batched envelope rounds (one
  /// round trip per ClientOptions::batch_max_ops-row chunk) instead of
  /// per-call inserts; bypasses the lazy write log.
  Status BulkLoad(const std::string& table,
                  const std::vector<std::vector<Value>>& rows) {
    return client_->BulkLoad(table, rows);
  }
  // --- Queries: the unified Execute family ------------------------------

  /// Executes a built single-table query. A non-empty `ctx.tenant`
  /// stamps the result's QueryTrace and bills the query to the tenant's
  /// `ssdb_meter_*` series (see docs/PROTOCOL.md, "Continuous monitoring
  /// & metering").
  Result<QueryResult> Execute(const Query& query,
                              const RequestContext& ctx = {}) {
    return client_->Execute(query, ctx);
  }
  /// Executes a same-domain equi-join; each result row is left ++ right
  /// values, split at QueryResult::join_left_columns.
  Result<QueryResult> Execute(const JoinQuery& join,
                              const RequestContext& ctx = {}) {
    return client_->Execute(join, ctx);
  }
  /// Parses and runs one SQL statement (SELECT / UPDATE / DELETE — see
  /// client/sql.h for the grammar). UPDATE/DELETE report the affected row
  /// count through QueryResult::count.
  Result<QueryResult> Execute(const std::string& sql,
                              const RequestContext& ctx = {}) {
    return client_->Execute(sql, ctx);
  }
  /// Runs independent queries concurrently on the fan-out worker pool;
  /// slot i corresponds to queries[i]. `ctxs` (empty, or one per query)
  /// meters each slot under its own tenant.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<Query>& queries,
      const std::vector<RequestContext>& ctxs = {}) {
    return client_->ExecuteBatch(queries, ctxs);
  }
  /// Runs independent equi-joins; compatible share fetches coalesce into
  /// one batch envelope per provider.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<JoinQuery>& joins) {
    return client_->ExecuteBatch(joins);
  }

  /// Renders a query's execution plan without running it. The text is
  /// generated from the same QueryPlan the executor walks; the per-query
  /// QueryTrace on QueryResult::trace records what actually ran.
  Result<std::string> Explain(const Query& query) {
    return client_->Explain(query);
  }
  Result<std::string> Explain(const JoinQuery& join) {
    return client_->Explain(join);
  }
  Result<uint64_t> Update(const std::string& table,
                          const std::vector<Predicate>& where,
                          const std::string& set_column, const Value& value) {
    return client_->Update(table, where, set_column, value);
  }
  /// Metered update (read phase billed in bytes/clock; rounds count the
  /// write fan-out only).
  Result<uint64_t> Update(const std::string& table,
                          const std::vector<Predicate>& where,
                          const std::string& set_column, const Value& value,
                          const RequestContext& ctx) {
    return client_->Update(table, where, set_column, value, ctx);
  }
  Result<uint64_t> Delete(const std::string& table,
                          const std::vector<Predicate>& where) {
    return client_->Delete(table, where);
  }
  /// Metered delete.
  Result<uint64_t> Delete(const std::string& table,
                          const std::vector<Predicate>& where,
                          const RequestContext& ctx) {
    return client_->Delete(table, where, ctx);
  }
  Status Flush() { return client_->Flush(); }
  Status RefreshTable(const std::string& table) {
    return client_->RefreshTable(table);
  }

  Status PublishPublicTable(const std::string& name,
                            std::vector<ColumnSpec> columns,
                            const std::vector<std::vector<Value>>& rows) {
    return client_->PublishPublicTable(name, std::move(columns), rows);
  }
  Status SubscribePublicColumn(const std::string& name,
                               const std::string& column) {
    return client_->SubscribePublicColumn(name, column);
  }
  Result<QueryResult> QueryPublic(const std::string& name,
                                  const Predicate& predicate) {
    return client_->QueryPublic(name, predicate);
  }

  // --- Simulation controls ----------------------------------------------

  /// Structured fault injection (E8 fault tolerance): db.faults().Down(i),
  /// .Drop(i, p), .Corrupt(i), .Slow(i, f), .Flaky(i, p), .Heal(i),
  /// .HealAll(), or RAII ScopedFault. HealAll also resets the resilience
  /// scoreboard, so healed faults do not echo as open breakers.
  ///
  /// Kill/restart (the durable-provider chaos drill): db.faults().Kill(i)
  /// drops provider i's RAM state and takes its link down; writes issued
  /// while it is dead succeed on the survivors and queue client-side.
  /// db.faults().Restart(i) recovers it from durable storage (snapshot +
  /// WAL replay), ships the queued writes, and resets its scoreboard
  /// entry so it rejoins quorums as a fresh peer. With the default
  /// MemoryEngine backend a restart recovers only the queued writes —
  /// use StorageOptions::Backend::kDurable for full recovery.
  FaultController& faults() { return faults_; }

  /// The client's provider health scoreboard (resilience layer).
  ProviderScoreboard& scoreboard() { return *client_->scoreboard(); }

  // --- Introspection ------------------------------------------------------

  /// Total provider count across all shard groups.
  size_t n() const { return options_.n; }
  size_t k() const { return options_.client.k; }
  /// The resolved deployment shape (fields never zero after Create).
  const Topology& topology() const { return client_->topology(); }
  size_t shards() const { return client_->shards(); }
  size_t providers_per_shard() const { return client_->providers_per_shard(); }
  /// Aggregated channel stats of shard group `shard`'s links; returns
  /// InvalidArgument when `shard >= shards()`.
  Result<ChannelStats> shard_stats(size_t shard) const;
  DataSourceClient& client() { return *client_; }
  Network& network() { return *network_; }
  Provider& provider(size_t i) { return *providers_[i]; }
  ClientStats client_stats() const { return client_->stats(); }
  ChannelStats network_stats() const { return network_->TotalStats(); }
  /// Simulated wall-clock time spent on the wire so far (microseconds).
  uint64_t simulated_time_us() { return network_->clock().now_us(); }

  // --- Telemetry ----------------------------------------------------------

  /// The deployment's metrics registry: every layer (network links,
  /// providers, resilience, plan executor, client) charges its ssdb_*
  /// series here. Export with ExportPrometheus() / ExportJson().
  MetricsRegistry& metrics() { return *client_->metrics(); }
  const MetricsRegistry& metrics() const { return *client_->metrics(); }
  /// The span tracer (disabled by default): db.tracer().Enable(true),
  /// run queries, then ExportChromeTrace() for chrome://tracing/Perfetto.
  Tracer& tracer() { return *client_->tracer(); }

  /// Resets client, network and provider statistics, the metrics
  /// registry and recorded spans in one call. The virtual clock keeps
  /// running: registry/stats reconciliation holds for deltas from any
  /// common reset point.
  void ResetAllStats();

 private:
  OutsourcedDatabase(OutsourcedDbOptions options,
                     std::unique_ptr<Network> network,
                     std::vector<std::shared_ptr<Provider>> providers,
                     std::unique_ptr<DataSourceClient> client)
      : options_(std::move(options)),
        network_(std::move(network)),
        providers_(std::move(providers)),
        client_(std::move(client)),
        faults_(network_.get()) {
    faults_.AttachScoreboard(client_->scoreboard());
    // Kill/restart lifecycle: Kill crashes the engine (RAM state gone)
    // and opens the client-side outage so missed writes queue; Restart
    // recovers from durable storage, then replays the queue. Provider i's
    // network index is i (AddProvider assigns sequentially at Create).
    faults_.AttachLifecycle(
        [this](size_t i) {
          providers_[i]->Crash();
          client_->BeginProviderOutage(i);
        },
        [this](size_t i) {
          SSDB_RETURN_IF_ERROR(providers_[i]->Restart());
          return client_->ResyncProvider(i);
        });
  }

  OutsourcedDbOptions options_;
  std::unique_ptr<Network> network_;
  std::vector<std::shared_ptr<Provider>> providers_;
  std::unique_ptr<DataSourceClient> client_;
  FaultController faults_;
};

}  // namespace ssdb

#endif  // SSDB_CORE_OUTSOURCED_DB_H_
