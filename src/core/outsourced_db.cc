#include "core/outsourced_db.h"

namespace ssdb {

Result<std::unique_ptr<OutsourcedDatabase>> OutsourcedDatabase::Create(
    OutsourcedDbOptions options) {
  if (options.n == 0) {
    return Status::InvalidArgument("OutsourcedDatabase: n must be positive");
  }
  auto network = std::make_unique<Network>(
      options.network, /*failure_seed=*/0xFA11, options.fanout_threads);
  std::vector<std::shared_ptr<Provider>> providers;
  std::vector<size_t> indices;
  for (size_t i = 0; i < options.n; ++i) {
    auto p = std::make_shared<Provider>("DAS" + std::to_string(i + 1));
    indices.push_back(network->AddProvider(p));
    providers.push_back(std::move(p));
  }
  SSDB_ASSIGN_OR_RETURN(
      std::unique_ptr<DataSourceClient> client,
      DataSourceClient::Create(network.get(), indices, options.client));
  return std::unique_ptr<OutsourcedDatabase>(
      new OutsourcedDatabase(std::move(options), std::move(network),
                             std::move(providers), std::move(client)));
}

}  // namespace ssdb
