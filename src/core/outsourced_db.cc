#include "core/outsourced_db.h"

namespace ssdb {

Result<std::unique_ptr<OutsourcedDatabase>> OutsourcedDatabase::Create(
    OutsourcedDbOptions options) {
  // Resolve the deployment shape: an explicit Topology (on these options
  // or on the client options) wins; the deprecated flat `n` alias yields
  // the seed 1-shard layout. Full validation happens once, in
  // DataSourceClient::Create.
  Topology topo = options.topology;
  const bool db_set = topo.shards != 1 || topo.providers_per_shard != 0 ||
                      topo.threshold != 0 ||
                      topo.partitioner != Partitioner::kHash;
  if (!db_set) topo = options.client.topology;
  if (topo.shards == 0) topo.shards = 1;
  if (topo.shards > 1 && topo.providers_per_shard == 0) {
    if (options.n % topo.shards != 0) {
      return Status::InvalidArgument(
          "OutsourcedDatabase: n does not divide into topology.shards equal "
          "groups");
    }
    topo.providers_per_shard = options.n / topo.shards;
  }
  const size_t total =
      topo.providers_per_shard != 0 ? topo.total_providers() : options.n;
  if (total == 0) {
    return Status::InvalidArgument("OutsourcedDatabase: n must be positive");
  }
  options.n = total;  // deprecated alias reports the total provider count
  options.client.topology = topo;

  auto network = std::make_unique<Network>(
      options.network, /*failure_seed=*/0xFA11, options.fanout_threads);
  std::vector<std::shared_ptr<Provider>> providers;
  std::vector<size_t> indices;
  for (size_t i = 0; i < total; ++i) {
    // The 1-shard names are the seed system's; multi-shard names carry
    // the group ("S2-DAS3" = shard group 1's evaluation point 2).
    const std::string name =
        topo.shards <= 1
            ? "DAS" + std::to_string(i + 1)
            : "S" + std::to_string(i / topo.providers_per_shard + 1) +
                  "-DAS" + std::to_string(i % topo.providers_per_shard + 1);
    auto p = std::make_shared<Provider>(name);
    indices.push_back(network->AddProvider(p));
    providers.push_back(std::move(p));
  }
  SSDB_ASSIGN_OR_RETURN(
      std::unique_ptr<DataSourceClient> client,
      DataSourceClient::Create(network.get(), indices, options.client));
  // Keep the option aliases in sync with the resolved topology, so n()/k()
  // report what was actually built.
  options.client.topology = client->topology();
  options.client.k = client->topology().threshold;
  // One registry per deployment: network links and providers mirror
  // their counters into the client's registry so every layer shares a
  // single exportable namespace.
  network->AttachMetrics(client->metrics());
  if (client->shards() > 1) {
    std::vector<size_t> shard_of(network->num_providers(), 0);
    for (size_t i = 0; i < indices.size(); ++i) {
      shard_of[indices[i]] = i / client->providers_per_shard();
    }
    network->AttachShardMetrics(client->metrics(), shard_of);
  }
  for (size_t i = 0; i < providers.size(); ++i) {
    providers[i]->AttachMetrics(client->metrics(), std::to_string(indices[i]));
  }
  return std::unique_ptr<OutsourcedDatabase>(
      new OutsourcedDatabase(std::move(options), std::move(network),
                             std::move(providers), std::move(client)));
}

ChannelStats OutsourcedDatabase::shard_stats(size_t shard) const {
  ChannelStats total;
  const size_t per = client_->providers_per_shard();
  for (size_t p = shard * per; p < (shard + 1) * per; ++p) {
    total += network_->stats(p);
  }
  return total;
}

void OutsourcedDatabase::ResetAllStats() {
  // One call, every layer: client counters, per-link channel stats,
  // provider work counters, every registry series, recorded spans, and
  // the resilience scoreboard's health history (EWMAs, breaker state).
  // The virtual clock is NOT reset — reconciliation guarantees hold for
  // deltas from any common reset point, and tests diff the clock
  // separately. (EncryptedDas::ResetStats set the one-call shape.)
  metrics().Reset();
  tracer().Clear();
  network_->ResetStats();
  for (auto& p : providers_) p->ResetStats();
  client_->scoreboard()->Reset();
}

}  // namespace ssdb
