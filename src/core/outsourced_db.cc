#include "core/outsourced_db.h"

#include <cstdio>
#include <mutex>

#include "storage/engine.h"

namespace ssdb {

Result<std::unique_ptr<OutsourcedDatabase>> OutsourcedDatabase::Create(
    OutsourcedDbOptions options) {
  // Resolve the deployment shape: an explicit Topology (on these options
  // or on the client options) wins; the deprecated flat `n` alias yields
  // the seed 1-shard topology. Full validation happens once, in
  // DataSourceClient::Create.
  Topology topo = options.topology;
  const bool db_set = topo.shards != 1 || topo.providers_per_shard != 0 ||
                      topo.threshold != 0 ||
                      topo.partitioner != Partitioner::kHash;
  const bool client_set = topo.providers_per_shard == 0 &&
                          options.client.topology.providers_per_shard != 0;
  if (!db_set) topo = options.client.topology;
  if (topo.shards == 0) topo.shards = 1;
  if (!db_set && !client_set) {
    // The deployment shape came from the deprecated flat aliases
    // (OutsourcedDbOptions::n / ClientOptions::k). Say so once per
    // process — existing callers keep working unchanged.
    static std::once_flag deprecation_once;
    std::call_once(deprecation_once, [] {
      std::fprintf(stderr,
                   "ssdb: note: OutsourcedDbOptions::n and ClientOptions::k "
                   "are deprecated aliases; set options.topology = "
                   "Topology(shards, providers_per_shard, threshold, "
                   "partitioner) instead (core/topology.h).\n");
    });
  }
  if (topo.shards > 1 && topo.providers_per_shard == 0) {
    if (options.n % topo.shards != 0) {
      return Status::InvalidArgument(
          "OutsourcedDatabase: n does not divide into topology.shards equal "
          "groups");
    }
    topo.providers_per_shard = options.n / topo.shards;
  }
  const size_t total =
      topo.providers_per_shard != 0 ? topo.total_providers() : options.n;
  if (total == 0) {
    return Status::InvalidArgument("OutsourcedDatabase: n must be positive");
  }
  options.n = total;  // deprecated alias reports the total provider count
  options.client.topology = topo;

  const bool durable =
      options.storage.backend == StorageOptions::Backend::kDurable;
  if (durable && options.storage.dir.empty()) {
    return Status::InvalidArgument(
        "OutsourcedDatabase: storage.dir is required for the durable "
        "backend");
  }

  auto network = std::make_unique<Network>(
      options.network, /*failure_seed=*/0xFA11, options.fanout_threads);
  std::vector<std::shared_ptr<Provider>> providers;
  std::vector<size_t> indices;
  for (size_t i = 0; i < total; ++i) {
    // The 1-shard names are the seed system's; multi-shard names carry
    // the group ("S2-DAS3" = shard group 1's evaluation point 2).
    const std::string name =
        topo.shards <= 1
            ? "DAS" + std::to_string(i + 1)
            : "S" + std::to_string(i / topo.providers_per_shard + 1) +
                  "-DAS" + std::to_string(i % topo.providers_per_shard + 1);
    std::unique_ptr<StorageEngine> engine;
    if (durable) {
      DurableEngineOptions eng;
      eng.dir = options.storage.dir + "/" + name;
      eng.snapshot_every = options.storage.wal_snapshot_every;
      engine = std::make_unique<DurableEngine>(std::move(eng));
    }
    auto p = std::make_shared<Provider>(name, std::move(engine));
    // Open recovers whatever an earlier deployment left under the
    // provider's directory (snapshot + WAL replay); MemoryEngine is a
    // no-op. Runs before any client traffic, so recovered state is
    // visible to the first request.
    SSDB_RETURN_IF_ERROR(p->OpenStorage());
    indices.push_back(network->AddProvider(p));
    providers.push_back(std::move(p));
  }
  SSDB_ASSIGN_OR_RETURN(
      std::unique_ptr<DataSourceClient> client,
      DataSourceClient::Create(network.get(), indices, options.client));
  // Keep the option aliases in sync with the resolved topology, so n()/k()
  // report what was actually built.
  options.client.topology = client->topology();
  options.client.k = client->topology().threshold;
  // One registry per deployment: network links and providers mirror
  // their counters into the client's registry so every layer shares a
  // single exportable namespace.
  network->AttachMetrics(client->metrics());
  if (client->shards() > 1) {
    std::vector<size_t> shard_of(network->num_providers(), 0);
    for (size_t i = 0; i < indices.size(); ++i) {
      shard_of[indices[i]] = i / client->providers_per_shard();
    }
    network->AttachShardMetrics(client->metrics(), shard_of);
  }
  for (size_t i = 0; i < providers.size(); ++i) {
    providers[i]->AttachMetrics(client->metrics(), std::to_string(indices[i]));
    // Only durable deployments grow the ssdb_wal_* / ssdb_recovery_*
    // series: the MemoryEngine telemetry export stays byte-identical to
    // the seed system (the AttachShardMetrics m>1-only pattern).
    if (durable) {
      providers[i]->AttachDurabilityMetrics(client->metrics(),
                                            std::to_string(indices[i]));
    }
  }
  return std::unique_ptr<OutsourcedDatabase>(
      new OutsourcedDatabase(std::move(options), std::move(network),
                             std::move(providers), std::move(client)));
}

Result<ChannelStats> OutsourcedDatabase::shard_stats(size_t shard) const {
  if (shard >= client_->shards()) {
    return Status::InvalidArgument(
        "OutsourcedDatabase: shard " + std::to_string(shard) +
        " out of range (shards = " + std::to_string(client_->shards()) + ")");
  }
  ChannelStats total;
  const size_t per = client_->providers_per_shard();
  for (size_t p = shard * per; p < (shard + 1) * per; ++p) {
    total += network_->stats(p);
  }
  return total;
}

void OutsourcedDatabase::ResetAllStats() {
  // One call, every layer: client counters, per-link channel stats,
  // provider work counters, every registry series, recorded spans, and
  // the resilience scoreboard's health history (EWMAs, breaker state).
  // The virtual clock is NOT reset — reconciliation guarantees hold for
  // deltas from any common reset point, and tests diff the clock
  // separately. (EncryptedDas::ResetStats set the one-call shape.)
  metrics().Reset();
  tracer().Clear();
  network_->ResetStats();
  for (auto& p : providers_) p->ResetStats();
  client_->scoreboard()->Reset();
}

}  // namespace ssdb
