#include "core/outsourced_db.h"

namespace ssdb {

Result<std::unique_ptr<OutsourcedDatabase>> OutsourcedDatabase::Create(
    OutsourcedDbOptions options) {
  if (options.n == 0) {
    return Status::InvalidArgument("OutsourcedDatabase: n must be positive");
  }
  auto network = std::make_unique<Network>(
      options.network, /*failure_seed=*/0xFA11, options.fanout_threads);
  std::vector<std::shared_ptr<Provider>> providers;
  std::vector<size_t> indices;
  for (size_t i = 0; i < options.n; ++i) {
    auto p = std::make_shared<Provider>("DAS" + std::to_string(i + 1));
    indices.push_back(network->AddProvider(p));
    providers.push_back(std::move(p));
  }
  SSDB_ASSIGN_OR_RETURN(
      std::unique_ptr<DataSourceClient> client,
      DataSourceClient::Create(network.get(), indices, options.client));
  // One registry per deployment: network links and providers mirror
  // their counters into the client's registry so every layer shares a
  // single exportable namespace.
  network->AttachMetrics(client->metrics());
  for (size_t i = 0; i < providers.size(); ++i) {
    providers[i]->AttachMetrics(client->metrics(), std::to_string(indices[i]));
  }
  return std::unique_ptr<OutsourcedDatabase>(
      new OutsourcedDatabase(std::move(options), std::move(network),
                             std::move(providers), std::move(client)));
}

void OutsourcedDatabase::ResetAllStats() {
  // One call, every layer: client counters, per-link channel stats,
  // provider work counters, every registry series, and recorded spans.
  // The virtual clock is NOT reset — reconciliation guarantees hold for
  // deltas from any common reset point, and tests diff the clock
  // separately. (EncryptedDas::ResetStats set the one-call shape.)
  metrics().Reset();
  tracer().Clear();
  network_->ResetStats();
  for (auto& p : providers_) p->ResetStats();
}

}  // namespace ssdb
