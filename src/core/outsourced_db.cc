#include "core/outsourced_db.h"

namespace ssdb {

Result<std::unique_ptr<OutsourcedDatabase>> OutsourcedDatabase::Create(
    OutsourcedDbOptions options) {
  if (options.n == 0) {
    return Status::InvalidArgument("OutsourcedDatabase: n must be positive");
  }
  auto network = std::make_unique<Network>(options.network);
  std::vector<std::shared_ptr<Provider>> providers;
  std::vector<size_t> indices;
  for (size_t i = 0; i < options.n; ++i) {
    auto p = std::make_shared<Provider>("DAS" + std::to_string(i + 1));
    indices.push_back(network->AddProvider(p));
    providers.push_back(std::move(p));
  }
  SSDB_ASSIGN_OR_RETURN(
      std::unique_ptr<DataSourceClient> client,
      DataSourceClient::Create(network.get(), indices, options.client));
  return std::unique_ptr<OutsourcedDatabase>(
      new OutsourcedDatabase(std::move(options), std::move(network),
                             std::move(providers), std::move(client)));
}

Result<QueryResult> OutsourcedDatabase::ExecuteSql(const std::string& sql) {
  SSDB_ASSIGN_OR_RETURN(SqlCommand cmd, ParseSql(sql));
  switch (cmd.kind) {
    case SqlCommand::Kind::kSelect:
      return client_->Execute(cmd.query);
    case SqlCommand::Kind::kUpdate: {
      SSDB_ASSIGN_OR_RETURN(
          uint64_t updated,
          client_->Update(cmd.table, cmd.where, cmd.set_column,
                          cmd.set_value));
      QueryResult out;
      out.count = updated;
      out.aggregate_int = static_cast<int64_t>(updated);
      return out;
    }
    case SqlCommand::Kind::kDelete: {
      SSDB_ASSIGN_OR_RETURN(uint64_t deleted,
                            client_->Delete(cmd.table, cmd.where));
      QueryResult out;
      out.count = deleted;
      out.aggregate_int = static_cast<int64_t>(deleted);
      return out;
    }
  }
  return Status::Internal("unhandled SQL command kind");
}

}  // namespace ssdb
