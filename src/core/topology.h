// Shard topology of an outsourced deployment.
//
// The row space of every table is partitioned across `shards` independent
// provider groups of `providers_per_shard` providers each. Every row lives
// on exactly one shard group, chosen by the partitioner from the row's key
// attribute (the first schema column): hash partitioning by default, or
// contiguous range partitioning over the key's order-preserving domain.
// Within a shard group the seed system's k-of-n secret sharing applies
// unchanged — `threshold` shares reconstruct, fewer reveal nothing — so a
// shard group is exactly the paper's n-provider deployment in miniature.
//
// The degenerate 1-shard topology is the seed system: same share streams,
// same provider byte traffic, same virtual-clock charges.

#ifndef SSDB_CORE_TOPOLOGY_H_
#define SSDB_CORE_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "common/wide_int.h"
#include "sss/order_preserving.h"

namespace ssdb {

/// How key codes map to shard groups.
enum class Partitioner : uint8_t {
  /// FNV-1a of the key code modulo `shards`. Spreads any key distribution
  /// evenly; point lookups route to one shard, range scans scatter.
  kHash,
  /// The key's order-preserving domain cut into `shards` contiguous
  /// intervals of equal width. Point lookups AND range scans prune to the
  /// owning shard interval.
  kRange,
};

/// Stable lower-case name ("hash" / "range") for traces, EXPLAIN and docs.
const char* PartitionerName(Partitioner partitioner);

/// \brief The unified deployment shape consumed by OutsourcedDatabase::Create.
///
/// Zero-valued fields inherit from the deprecated flat aliases
/// (`OutsourcedDbOptions::n`, `ClientOptions::k`), which populate a 1-shard
/// topology — existing callers keep working unchanged.
struct Topology {
  size_t shards = 1;               ///< Number of shard groups (m >= 1).
  size_t providers_per_shard = 0;  ///< Providers per group; 0 = derive.
  size_t threshold = 0;            ///< Reconstruction threshold k; 0 = derive.
  Partitioner partitioner = Partitioner::kHash;

  Topology() = default;
  Topology(size_t m, size_t n_per, size_t k,
           Partitioner part = Partitioner::kHash)
      : shards(m),
        providers_per_shard(n_per),
        threshold(k),
        partitioner(part) {}

  /// Total provider count across all shard groups.
  size_t total_providers() const { return shards * providers_per_shard; }
};

/// Validates a fully-resolved topology (no zero placeholders left):
/// shards >= 1, 1 <= threshold <= providers_per_shard <= 255.
Status ValidateTopology(const Topology& topology);

/// The shard group owning key code `code` drawn from `domain`. Codes
/// outside the domain clamp to the edge shards (range) or hash like any
/// other value — callers that can prove emptiness route before this.
size_t ShardForCode(Partitioner partitioner, size_t shards, int64_t code,
                    const OpDomain& domain);

}  // namespace ssdb

#endif  // SSDB_CORE_TOPOLOGY_H_
