// Keyed and unkeyed hashing.
//
// SipHash-2-4 is the keyed hash used by the order-preserving polynomial
// construction of Section IV (the per-value slot hashes h_a, h_b, h_c) and
// by deterministic coefficient derivation. FNV-1a is the cheap unkeyed hash
// for in-memory hash indexes.

#ifndef SSDB_COMMON_HASH_H_
#define SSDB_COMMON_HASH_H_

#include <cstdint>

#include "common/slice.h"

namespace ssdb {

/// 128-bit SipHash key.
struct SipHashKey {
  uint64_t k0 = 0;
  uint64_t k1 = 0;
};

/// SipHash-2-4 of `data` under `key` (64-bit output).
uint64_t SipHash24(const SipHashKey& key, Slice data);

/// Convenience: SipHash of a 64-bit message with a 64-bit tweak mixed in.
uint64_t SipHash24U64(const SipHashKey& key, uint64_t message,
                      uint64_t tweak = 0);

/// FNV-1a 64-bit (unkeyed, non-cryptographic).
uint64_t Fnv1a64(Slice data);

/// FNV-1a initial state and incremental step: folding the 8 little-endian
/// bytes of `v` into `h` yields exactly Fnv1a64 over the concatenated
/// byte string, without materializing it.
inline constexpr uint64_t kFnv1a64Init = 0xCBF29CE484222325ULL;
inline uint64_t Fnv1a64FoldU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<uint8_t>(v >> (8 * i));
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace ssdb

#endif  // SSDB_COMMON_HASH_H_
