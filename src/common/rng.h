// Deterministic pseudo-random number generation.
//
// Everything random in the library (polynomial coefficients, secret
// evaluation points, workload generation) flows through Rng so that runs
// are reproducible from a seed. The generator is xoshiro256** (Blackman &
// Vigna), which is fast and passes BigCrush; it is NOT used where
// cryptographic strength is claimed — key-derived randomness for
// deterministic shares uses crypto::Prf instead.

#ifndef SSDB_COMMON_RNG_H_
#define SSDB_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/wide_int.h"

namespace ssdb {

/// \brief xoshiro256** seeded PRNG.
class Rng {
 public:
  /// Seeds the state via splitmix64 of `seed` (any seed is acceptable,
  /// including 0).
  explicit Rng(uint64_t seed = 0xB0BACAFEDEADBEEFULL);

  /// Derives the seed of a named child stream. The result is a pure
  /// function of this generator's CONSTRUCTION seed and `stream_id` —
  /// never of how much the parent stream has been consumed and never of
  /// any other stream id — so forking stream 7 yields the same child no
  /// matter how many sibling streams were forked before it. This is the
  /// single seed-derivation point for multi-stream workloads (one stream
  /// per tenant / generator): adding a tenant never perturbs another
  /// tenant's stream.
  uint64_t ForkSeed(uint64_t stream_id) const;

  /// A child generator seeded with ForkSeed(stream_id).
  Rng Fork(uint64_t stream_id) const { return Rng(ForkSeed(stream_id)); }

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound) using rejection sampling (unbiased).
  /// `bound` must be non-zero.
  uint64_t Uniform(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform 128-bit value in [0, bound); `bound` must be non-zero.
  u128 Uniform128(u128 bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fills `out` with random bytes.
  void FillBytes(uint8_t* out, size_t n);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t seed_;  ///< Construction seed, kept for ForkSeed.
  uint64_t s_[4];
};

/// \brief Zipfian distribution over [0, n) with exponent `theta`
/// (YCSB-style), used by workload generators.
class Zipf {
 public:
  Zipf(uint64_t n, double theta);
  /// Draws one sample in [0, n).
  uint64_t Sample(Rng* rng) const;

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace ssdb

#endif  // SSDB_COMMON_RNG_H_
