#include "common/rng.h"

#include <cmath>
#include <cstring>

namespace ssdb {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(&x);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::ForkSeed(uint64_t stream_id) const {
  // Decorrelate consecutive stream ids before mixing the parent seed in;
  // two splitmix rounds so child seeds share no low-bit structure with
  // either input.
  uint64_t x = stream_id;
  uint64_t h = SplitMix64(&x);
  x = seed_ ^ h;
  return SplitMix64(&x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Lemire-style rejection to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + Uniform(span));
}

u128 Rng::Uniform128(u128 bound) {
  const u128 threshold = (static_cast<u128>(0) - bound) % bound;
  for (;;) {
    const u128 r = MakeU128(Next(), Next());
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void Rng::FillBytes(uint8_t* out, size_t n) {
  while (n >= 8) {
    const uint64_t v = Next();
    memcpy(out, &v, 8);
    out += 8;
    n -= 8;
  }
  if (n > 0) {
    const uint64_t v = Next();
    memcpy(out, &v, n);
  }
}

Zipf::Zipf(uint64_t n, double theta) : n_(n == 0 ? 1 : n), theta_(theta) {
  double zetan = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) zetan += 1.0 / std::pow(i, theta_);
  zetan_ = zetan;
  zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t Zipf::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < zeta2_) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace ssdb
