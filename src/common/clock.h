// Wall-clock and simulated-clock utilities.
//
// The simulated network (src/net) charges latency and transmission time to
// a VirtualClock so benchmarks can report modelled wide-area costs that are
// independent of the host machine, alongside real CPU time measured with
// StopWatch.

#ifndef SSDB_COMMON_CLOCK_H_
#define SSDB_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace ssdb {

/// \brief Monotonic real-time stopwatch (microsecond resolution).
class StopWatch {
 public:
  StopWatch() { Reset(); }
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  /// Microseconds since construction or the last Reset().
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief Logical clock advanced by the network simulator.
///
/// Time is in microseconds. Channels advance the clock by
/// latency + bytes/bandwidth for every message; parallel round trips are
/// modelled by `AdvanceToAtLeast` (the slowest provider in a fan-out
/// dominates).
class VirtualClock {
 public:
  uint64_t now_us() const { return now_us_; }
  void Advance(uint64_t delta_us) { now_us_ += delta_us; }
  void AdvanceToAtLeast(uint64_t t_us) {
    if (t_us > now_us_) now_us_ = t_us;
  }
  void Reset() { now_us_ = 0; }

 private:
  uint64_t now_us_ = 0;
};

}  // namespace ssdb

#endif  // SSDB_COMMON_CLOCK_H_
