// Wall-clock and simulated-clock utilities.
//
// The simulated network (src/net) charges latency and transmission time to
// a VirtualClock so benchmarks can report modelled wide-area costs that are
// independent of the host machine, alongside real CPU time measured with
// StopWatch.

#ifndef SSDB_COMMON_CLOCK_H_
#define SSDB_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ssdb {

/// \brief Monotonic real-time stopwatch (microsecond resolution).
class StopWatch {
 public:
  StopWatch() { Reset(); }
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  /// Microseconds since construction or the last Reset().
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief Logical clock advanced by the network simulator.
///
/// Time is in microseconds. Channels advance the clock by
/// latency + bytes/bandwidth for every message; parallel round trips are
/// modelled by `AdvanceToAtLeast` (the slowest provider in a fan-out
/// dominates).
///
/// Thread-safe: concurrent queries (ExecuteBatch) advance the clock from
/// several pool workers at once. Advance is a commutative addition, so
/// the total is deterministic regardless of thread interleaving.
class VirtualClock {
 public:
  uint64_t now_us() const { return now_us_.load(std::memory_order_relaxed); }
  void Advance(uint64_t delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_relaxed);
  }
  void AdvanceToAtLeast(uint64_t t_us) {
    uint64_t cur = now_us_.load(std::memory_order_relaxed);
    while (cur < t_us && !now_us_.compare_exchange_weak(
                             cur, t_us, std::memory_order_relaxed)) {
    }
  }
  void Reset() { now_us_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_us_{0};
};

}  // namespace ssdb

#endif  // SSDB_COMMON_CLOCK_H_
