#include "common/hash.h"

#include <cstring>

namespace ssdb {

namespace {
inline uint64_t Rotl(uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

#define SSDB_SIPROUND     \
  do {                    \
    v0 += v1;             \
    v1 = Rotl(v1, 13);    \
    v1 ^= v0;             \
    v0 = Rotl(v0, 32);    \
    v2 += v3;             \
    v3 = Rotl(v3, 16);    \
    v3 ^= v2;             \
    v0 += v3;             \
    v3 = Rotl(v3, 21);    \
    v3 ^= v0;             \
    v2 += v1;             \
    v1 = Rotl(v1, 17);    \
    v1 ^= v2;             \
    v2 = Rotl(v2, 32);    \
  } while (0)
}  // namespace

uint64_t SipHash24(const SipHashKey& key, Slice data) {
  uint64_t v0 = 0x736F6D6570736575ULL ^ key.k0;
  uint64_t v1 = 0x646F72616E646F6DULL ^ key.k1;
  uint64_t v2 = 0x6C7967656E657261ULL ^ key.k0;
  uint64_t v3 = 0x7465646279746573ULL ^ key.k1;

  const uint8_t* in = data.data();
  const size_t len = data.size();
  const size_t left = len & 7;
  const uint8_t* end = in + len - left;

  for (; in != end; in += 8) {
    uint64_t m;
    memcpy(&m, in, 8);
    v3 ^= m;
    SSDB_SIPROUND;
    SSDB_SIPROUND;
    v0 ^= m;
  }

  uint64_t b = static_cast<uint64_t>(len) << 56;
  for (size_t i = 0; i < left; ++i) {
    b |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  v3 ^= b;
  SSDB_SIPROUND;
  SSDB_SIPROUND;
  v0 ^= b;

  v2 ^= 0xFF;
  SSDB_SIPROUND;
  SSDB_SIPROUND;
  SSDB_SIPROUND;
  SSDB_SIPROUND;
  return v0 ^ v1 ^ v2 ^ v3;
}

#undef SSDB_SIPROUND

uint64_t SipHash24U64(const SipHashKey& key, uint64_t message, uint64_t tweak) {
  uint8_t buf[16];
  memcpy(buf, &message, 8);
  memcpy(buf + 8, &tweak, 8);
  return SipHash24(key, Slice(buf, sizeof(buf)));
}

uint64_t Fnv1a64(Slice data) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace ssdb
