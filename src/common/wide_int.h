// 128-bit and 256-bit integer support.
//
// Order-preserving shares (src/sss/order_preserving.h) are evaluations of
// degree-3 integer polynomials with large coefficients; they do not fit in
// 64 bits, and exact Lagrange reconstruction of their constant term needs
// intermediate products beyond 128 bits. This header provides:
//   * `u128` / `i128`  — aliases of the compiler's __int128 types plus
//      helpers (decimal formatting, parsing halves).
//   * `Int256`         — a minimal signed 256-bit integer (two's complement
//      over four 64-bit limbs) supporting exactly the operations the exact
//      interpolation path needs: add, sub, negate, multiply by i128,
//      divide by i128, and comparison.

#ifndef SSDB_COMMON_WIDE_INT_H_
#define SSDB_COMMON_WIDE_INT_H_

#include <array>
#include <cstdint>
#include <string>

namespace ssdb {

using u128 = unsigned __int128;
using i128 = __int128;

/// Formats an unsigned 128-bit integer in decimal.
std::string U128ToString(u128 v);
/// Formats a signed 128-bit integer in decimal.
std::string I128ToString(i128 v);

constexpr uint64_t U128Lo(u128 v) { return static_cast<uint64_t>(v); }
constexpr uint64_t U128Hi(u128 v) { return static_cast<uint64_t>(v >> 64); }
constexpr u128 MakeU128(uint64_t hi, uint64_t lo) {
  return (static_cast<u128>(hi) << 64) | lo;
}

/// \brief Signed 256-bit integer (two's complement, little-endian limbs).
///
/// Only the operations required by exact rational Lagrange interpolation of
/// order-preserving shares are implemented; all arithmetic wraps modulo
/// 2^256 like ordinary machine integers (callers are responsible for
/// choosing operand magnitudes that cannot overflow; see
/// sss/order_preserving.cc for the bound derivation).
class Int256 {
 public:
  Int256() : limbs_{0, 0, 0, 0} {}
  Int256(int64_t v);   // NOLINT(runtime/explicit): numeric promotion
  Int256(i128 v);      // NOLINT(runtime/explicit)
  static Int256 FromU128(u128 v);

  bool is_negative() const { return (limbs_[3] >> 63) != 0; }
  bool is_zero() const {
    return limbs_[0] == 0 && limbs_[1] == 0 && limbs_[2] == 0 &&
           limbs_[3] == 0;
  }

  // Add/sub/negate are inline single-pass limb chains: the
  // __builtin_*_overflow carries compile to add/adc (resp. sub/sbb)
  // sequences, and += / -= update limbs in place instead of routing
  // through a temporary.
  Int256& operator+=(const Int256& o) {
    uint64_t c = 0;
    for (int i = 0; i < 4; ++i) {
      uint64_t s;
      const uint64_t c1 = __builtin_add_overflow(limbs_[i], o.limbs_[i], &s);
      const uint64_t c2 = __builtin_add_overflow(s, c, &limbs_[i]);
      c = c1 | c2;
    }
    return *this;
  }
  Int256& operator-=(const Int256& o) {
    uint64_t b = 0;
    for (int i = 0; i < 4; ++i) {
      uint64_t s;
      const uint64_t b1 = __builtin_sub_overflow(limbs_[i], o.limbs_[i], &s);
      const uint64_t b2 = __builtin_sub_overflow(s, b, &limbs_[i]);
      b = b1 | b2;
    }
    return *this;
  }
  Int256 operator+(const Int256& o) const {
    Int256 r = *this;
    r += o;
    return r;
  }
  Int256 operator-(const Int256& o) const {
    Int256 r = *this;
    r -= o;
    return r;
  }
  Int256 operator-() const {
    Int256 r;
    r -= *this;
    return r;
  }

  /// Full signed product of two 128-bit values (never overflows 256 bits).
  static Int256 Mul128(i128 a, i128 b);
  /// this * m, wrapping mod 2^256.
  Int256 MulSmall(i128 m) const;

  /// Exact division by a non-zero 128-bit divisor; `*exact` is set to
  /// whether the remainder was zero. Truncates toward zero.
  Int256 DivSmall(i128 d, bool* exact) const;

  /// Truncating conversion to i128 (caller must know the value fits).
  i128 ToI128() const;
  /// True iff the value is representable in a signed 128-bit integer.
  bool FitsInI128() const;

  int Compare(const Int256& o) const;
  bool operator==(const Int256& o) const { return Compare(o) == 0; }
  bool operator!=(const Int256& o) const { return Compare(o) != 0; }
  bool operator<(const Int256& o) const { return Compare(o) < 0; }
  bool operator>(const Int256& o) const { return Compare(o) > 0; }
  bool operator<=(const Int256& o) const { return Compare(o) <= 0; }
  bool operator>=(const Int256& o) const { return Compare(o) >= 0; }

  /// Decimal string (for diagnostics and tests).
  std::string ToString() const;

 private:
  static Int256 MulU128(u128 a, u128 b);  // unsigned full product
  Int256 UDivSmall(u128 d, u128* rem) const;

  std::array<uint64_t, 4> limbs_;  // little-endian
};

}  // namespace ssdb

#endif  // SSDB_COMMON_WIDE_INT_H_
