// Status / Result error model for ShamirDB.
//
// The library does not throw exceptions on anticipated failure paths
// (bad input, unavailable providers, corrupt shares, ...). Every fallible
// public API returns either a Status or a Result<T> carrying a Status.
// The style follows the RocksDB / Arrow convention.

#ifndef SSDB_COMMON_STATUS_H_
#define SSDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ssdb {

/// Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed something malformed.
  kNotFound = 2,          ///< Table / column / row / key does not exist.
  kAlreadyExists = 3,     ///< Create of an object that is already present.
  kUnavailable = 4,       ///< Too few providers reachable (< k).
  kCorruption = 5,        ///< Share / message failed an integrity check.
  kNotSupported = 6,      ///< Operation outside the scheme's capability
                          ///< (e.g. cross-domain join, Section V.A).
  kOutOfRange = 7,        ///< Value outside its declared domain.
  kInternal = 8,          ///< Invariant violation inside the library.
  kPermissionDenied = 9,  ///< Provider rejected an unauthorized request.
  kDeadlineExceeded = 10,  ///< Call overran its virtual-clock deadline.
  kResourceExhausted = 11,  ///< Admission control rejected the request
                            ///< (per-tenant queue-depth limit or
                            ///< token-bucket quota; see src/traffic/).
};

/// \brief Result of an operation that can fail without a payload.
///
/// A Status is cheap to copy (a code plus an optional message). Use the
/// static constructors (`Status::InvalidArgument(...)`) to build errors and
/// `Status::OK()` for success.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status PermissionDenied(std::string m) {
    return Status(StatusCode::kPermissionDenied, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string for logs and tests.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief A value-or-error container, analogous to arrow::Result.
///
/// Holds either a T (when `ok()`) or a non-OK Status. Accessing the value of
/// an errored Result is a programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the current function.
#define SSDB_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::ssdb::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Assigns the value of a Result to `lhs`, or propagates its error status.
#define SSDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define SSDB_CONCAT_INNER(a, b) a##b
#define SSDB_CONCAT(a, b) SSDB_CONCAT_INNER(a, b)
#define SSDB_ASSIGN_OR_RETURN(lhs, rexpr) \
  SSDB_ASSIGN_OR_RETURN_IMPL(SSDB_CONCAT(_ssdb_res_, __LINE__), lhs, rexpr)

}  // namespace ssdb

#endif  // SSDB_COMMON_STATUS_H_
