// Fixed-size worker pool used by the network fan-out layer and the batch
// execution API.
//
// The pool is deliberately small and deadlock-proof: ParallelFor never
// parks the calling thread behind the queue. The caller claims indices
// from the same atomic counter the enqueued helpers use, so forward
// progress is guaranteed even when every worker is busy — which makes
// nested ParallelFor (a batched query whose fan-out legs themselves run
// on the pool) safe by construction.

#ifndef SSDB_COMMON_THREAD_POOL_H_
#define SSDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ssdb {

/// \brief A fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 = std::thread::hardware_concurrency,
  /// at least 1). A pool of size 1 still owns a real worker thread, so
  /// Submit never runs inline.
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains the queue and joins all workers. Pending tasks DO run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Runs fn(0) .. fn(n-1), potentially concurrently, and returns once
  /// every call has finished. The calling thread participates in the
  /// work, so this is safe to call from inside a pool task (nested
  /// parallelism) and never deadlocks when all workers are busy.
  ///
  /// Calls to fn with distinct indices may run on distinct threads; fn
  /// must only touch index-local state or synchronize internally.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace ssdb

#endif  // SSDB_COMMON_THREAD_POOL_H_
