// Byte buffer with a little-endian wire encoder/decoder.
//
// All messages exchanged between the data source and the service providers
// (src/net) and all persisted provider state are encoded with this format:
// fixed-width little-endian integers, LEB128 varints, and length-prefixed
// byte strings. The decoder is bounds-checked and returns Status on
// truncated or malformed input so a corrupt message can never crash a
// provider.

#ifndef SSDB_COMMON_BUFFER_H_
#define SSDB_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/wide_int.h"

namespace ssdb {

/// Unaligned little-endian load/store primitives for fixed-width codecs on
/// hot paths (memcpy compiles to one unaligned access on common targets).
inline uint64_t LoadU64LE(const uint8_t* p) {
  uint64_t v;
  memcpy(&v, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap64(v);
#endif
  return v;
}

/// Encoded size of a LEB128 varint, for reserve-exact envelope assembly.
inline size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline uint8_t* StoreU64LE(uint8_t* p, uint64_t v) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap64(v);
#endif
  memcpy(p, &v, 8);
  return p + 8;
}

/// \brief Growable byte buffer used as the target of wire encoding.
class Buffer {
 public:
  Buffer() = default;

  const uint8_t* data() const { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  void clear() { bytes_.clear(); }
  void reserve(size_t n) { bytes_.reserve(n); }

  Slice AsSlice() const { return Slice(bytes_.data(), bytes_.size()); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t>&& TakeBytes() { return std::move(bytes_); }

  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v) { PutLE(v, 2); }
  void PutU32(uint32_t v) { PutLE(v, 4); }
  void PutU64(uint64_t v) { PutLE(v, 8); }
  void PutU128(u128 v) { PutLE(v, 16); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  /// LEB128 unsigned varint (1..10 bytes).
  void PutVarint(uint64_t v);
  /// Varint length prefix followed by the raw bytes.
  void PutLengthPrefixed(Slice s);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// Appends raw bytes with no framing.
  void Append(Slice s) {
    bytes_.insert(bytes_.end(), s.data(), s.data() + s.size());
  }

 private:
  // Stages the little-endian bytes locally and appends with one insert, so
  // each Put pays one grow check instead of one per byte.
  template <typename T>
  void PutLE(T v, size_t n) {
    uint8_t b[16];
    for (size_t i = 0; i < n; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    bytes_.insert(bytes_.end(), b, b + n);
  }

  std::vector<uint8_t> bytes_;
};

/// \brief Bounds-checked reader over an encoded byte range.
///
/// Every Get* returns Status::Corruption on truncation; the cursor is only
/// advanced on success.
class Decoder {
 public:
  explicit Decoder(Slice input) : input_(input) {}

  size_t remaining() const { return input_.size(); }
  bool done() const { return input_.empty(); }

  Status GetU8(uint8_t* out);
  Status GetU16(uint16_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetU128(u128* out);
  Status GetI64(int64_t* out);
  Status GetDouble(double* out);
  Status GetVarint(uint64_t* out);
  /// Reads a varint length prefix then views that many bytes (no copy).
  Status GetLengthPrefixed(Slice* out);
  /// Reads a length-prefixed byte string into an owned std::string.
  Status GetLengthPrefixedString(std::string* out);
  Status GetBool(bool* out);
  /// Views `n` raw bytes.
  Status GetRaw(size_t n, Slice* out);

 private:
  Slice input_;
};

}  // namespace ssdb

#endif  // SSDB_COMMON_BUFFER_H_
