// A non-owning view over a byte range, in the spirit of rocksdb::Slice.

#ifndef SSDB_COMMON_SLICE_H_
#define SSDB_COMMON_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace ssdb {

/// \brief A pointer + length view of immutable bytes.
///
/// A Slice never owns its data; the caller must keep the underlying storage
/// alive for the lifetime of the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  /// From a NUL-terminated C string (not including the terminator).
  Slice(const char* cstr)  // NOLINT(runtime/explicit): mirrors rocksdb
      : data_(reinterpret_cast<const uint8_t*>(cstr)),
        size_(cstr ? strlen(cstr) : 0) {}
  Slice(const std::string& s)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}
  Slice(const std::vector<uint8_t>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Drops the first `n` bytes from the view.
  void remove_prefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  /// Returns a copy of the viewed bytes as a std::string.
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }
  /// Returns the viewed bytes as a std::string_view (no copy).
  std::string_view ToStringView() const {
    return std::string_view(reinterpret_cast<const char*>(data_), size_);
  }

  /// Three-way lexicographic comparison (memcmp order).
  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = (min_len == 0) ? 0 : memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

  bool operator==(const Slice& other) const { return compare(other) == 0; }
  bool operator!=(const Slice& other) const { return compare(other) != 0; }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           (prefix.size_ == 0 ||
            memcmp(data_, prefix.data_, prefix.size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace ssdb

#endif  // SSDB_COMMON_SLICE_H_
