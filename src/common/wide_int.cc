#include "common/wide_int.h"

#include <algorithm>
#include <cassert>

namespace ssdb {

std::string U128ToString(u128 v) {
  if (v == 0) return "0";
  std::string out;
  while (v != 0) {
    out.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string I128ToString(i128 v) {
  if (v < 0) return "-" + U128ToString(static_cast<u128>(-(v + 1)) + 1);
  return U128ToString(static_cast<u128>(v));
}

Int256::Int256(int64_t v) {
  const uint64_t ext = v < 0 ? ~0ULL : 0ULL;
  limbs_ = {static_cast<uint64_t>(v), ext, ext, ext};
}

Int256::Int256(i128 v) {
  const uint64_t ext = v < 0 ? ~0ULL : 0ULL;
  const u128 uv = static_cast<u128>(v);
  limbs_ = {U128Lo(uv), U128Hi(uv), ext, ext};
}

Int256 Int256::FromU128(u128 v) {
  Int256 r;
  r.limbs_ = {U128Lo(v), U128Hi(v), 0, 0};
  return r;
}

Int256 Int256::MulU128(u128 a, u128 b) {
  const uint64_t a0 = U128Lo(a), a1 = U128Hi(a);
  const uint64_t b0 = U128Lo(b), b1 = U128Hi(b);
  const u128 p00 = static_cast<u128>(a0) * b0;
  const u128 p01 = static_cast<u128>(a0) * b1;
  const u128 p10 = static_cast<u128>(a1) * b0;
  const u128 p11 = static_cast<u128>(a1) * b1;

  Int256 r;
  r.limbs_[0] = U128Lo(p00);
  u128 mid = static_cast<u128>(U128Hi(p00)) + U128Lo(p01) + U128Lo(p10);
  r.limbs_[1] = U128Lo(mid);
  u128 hi = static_cast<u128>(U128Hi(mid)) + U128Hi(p01) + U128Hi(p10) +
            U128Lo(p11);
  r.limbs_[2] = U128Lo(hi);
  r.limbs_[3] = U128Hi(hi) + U128Hi(p11);
  return r;
}

Int256 Int256::Mul128(i128 a, i128 b) {
  const bool neg = (a < 0) != (b < 0);
  const u128 ua = a < 0 ? static_cast<u128>(-(a + 1)) + 1 : static_cast<u128>(a);
  const u128 ub = b < 0 ? static_cast<u128>(-(b + 1)) + 1 : static_cast<u128>(b);
  Int256 r = MulU128(ua, ub);
  return neg ? -r : r;
}

Int256 Int256::MulSmall(i128 m) const {
  const bool neg_this = is_negative();
  const bool neg = neg_this != (m < 0);
  const Int256 mag_this = neg_this ? -*this : *this;
  const u128 um = m < 0 ? static_cast<u128>(-(m + 1)) + 1 : static_cast<u128>(m);
  const uint64_t m0 = U128Lo(um), m1 = U128Hi(um);

  // Magnitude multiply, wrapping mod 2^256.
  Int256 r;
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    u128 p = static_cast<u128>(mag_this.limbs_[i]) * m0 + U128Lo(carry);
    r.limbs_[i] = U128Lo(p);
    carry = (p >> 64) + U128Hi(carry);
  }
  if (m1 != 0) {
    carry = 0;
    for (int i = 0; i + 1 < 4; ++i) {
      u128 p = static_cast<u128>(mag_this.limbs_[i]) * m1 +
               r.limbs_[i + 1] + U128Lo(carry);
      r.limbs_[i + 1] = U128Lo(p);
      carry = (p >> 64) + U128Hi(carry);
    }
  }
  return neg ? -r : r;
}

Int256 Int256::UDivSmall(u128 d, u128* rem) const {
  assert(d != 0);
  Int256 q;
  // Base-2^64 long division by a (possibly) 128-bit divisor. We divide the
  // running remainder (< d <= 2^128) extended by one limb, using 128/128
  // hardware division when the divisor fits in 64 bits and a bitwise loop
  // otherwise.
  u128 r = 0;
  for (int i = 3; i >= 0; --i) {
    if (U128Hi(d) == 0) {
      // r < d <= 2^64-1, so (r << 64) | limb fits in 128 bits.
      u128 cur = (r << 64) | limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      r = cur % d;
    } else {
      // Divisor is wider than 64 bits: shift in the limb bit by bit.
      uint64_t limb = limbs_[i];
      uint64_t qword = 0;
      for (int b = 63; b >= 0; --b) {
        r = (r << 1) | ((limb >> b) & 1);
        qword <<= 1;
        if (r >= d) {
          r -= d;
          qword |= 1;
        }
      }
      q.limbs_[i] = qword;
    }
  }
  *rem = r;
  return q;
}

Int256 Int256::DivSmall(i128 d, bool* exact) const {
  assert(d != 0);
  const bool neg_this = is_negative();
  const bool neg = neg_this != (d < 0);
  const Int256 mag = neg_this ? -*this : *this;
  const u128 ud = d < 0 ? static_cast<u128>(-(d + 1)) + 1 : static_cast<u128>(d);
  u128 rem = 0;
  Int256 q = mag.UDivSmall(ud, &rem);
  if (exact != nullptr) *exact = (rem == 0);
  return neg ? -q : q;
}

i128 Int256::ToI128() const {
  return static_cast<i128>(MakeU128(limbs_[1], limbs_[0]));
}

bool Int256::FitsInI128() const {
  const uint64_t ext = (limbs_[1] >> 63) != 0 ? ~0ULL : 0ULL;
  return limbs_[2] == ext && limbs_[3] == ext;
}

int Int256::Compare(const Int256& o) const {
  const bool an = is_negative(), bn = o.is_negative();
  if (an != bn) return an ? -1 : 1;
  for (int i = 3; i >= 0; --i) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::string Int256::ToString() const {
  if (is_zero()) return "0";
  const bool neg = is_negative();
  Int256 mag = neg ? -*this : *this;
  std::string digits;
  while (!mag.is_zero()) {
    u128 rem = 0;
    mag = mag.UDivSmall(10, &rem);
    digits.push_back(static_cast<char>('0' + static_cast<int>(rem)));
  }
  if (neg) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

}  // namespace ssdb
