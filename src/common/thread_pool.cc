#include "common/thread_pool.h"

#include <atomic>
#include <memory>

namespace ssdb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }

  // Control block shared with the enqueued helpers. It owns no task data:
  // `fn` lives on the caller's stack, which is safe because the caller
  // only returns once `completed == n`, i.e. after the last fn() call has
  // finished; helpers that wake later claim no index and never touch fn.
  struct Ctl {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::mutex mu;
    std::condition_variable done;
  };
  auto ctl = std::make_shared<Ctl>();
  ctl->fn = &fn;
  ctl->n = n;

  auto work = [ctl] {
    size_t i;
    while ((i = ctl->next.fetch_add(1, std::memory_order_relaxed)) < ctl->n) {
      (*ctl->fn)(i);
      if (ctl->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          ctl->n) {
        std::lock_guard<std::mutex> lock(ctl->mu);
        ctl->done.notify_all();
      }
    }
  };

  // The caller is one executor, so at most n-1 helpers are useful.
  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) Submit(work);
  work();

  std::unique_lock<std::mutex> lock(ctl->mu);
  ctl->done.wait(lock, [&] {
    return ctl->completed.load(std::memory_order_acquire) >= ctl->n;
  });
}

}  // namespace ssdb
