#include "common/status.h"

namespace ssdb {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace ssdb
