#include "common/buffer.h"

#include <cstring>

namespace ssdb {

void Buffer::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void Buffer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Buffer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Buffer::PutU128(u128 v) {
  PutU64(U128Lo(v));
  PutU64(U128Hi(v));
}

void Buffer::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Buffer::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void Buffer::PutLengthPrefixed(Slice s) {
  PutVarint(s.size());
  Append(s);
}

namespace {
Status Truncated(const char* what) {
  return Status::Corruption(std::string("decode: truncated ") + what);
}
}  // namespace

Status Decoder::GetRaw(size_t n, Slice* out) {
  if (input_.size() < n) return Truncated("raw bytes");
  *out = Slice(input_.data(), n);
  input_.remove_prefix(n);
  return Status::OK();
}

Status Decoder::GetU8(uint8_t* out) {
  if (input_.empty()) return Truncated("u8");
  *out = input_[0];
  input_.remove_prefix(1);
  return Status::OK();
}

Status Decoder::GetU16(uint16_t* out) {
  Slice raw;
  SSDB_RETURN_IF_ERROR(GetRaw(2, &raw));
  *out = static_cast<uint16_t>(raw[0]) |
         static_cast<uint16_t>(static_cast<uint16_t>(raw[1]) << 8);
  return Status::OK();
}

Status Decoder::GetU32(uint32_t* out) {
  Slice raw;
  SSDB_RETURN_IF_ERROR(GetRaw(4, &raw));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | raw[static_cast<size_t>(i)];
  *out = v;
  return Status::OK();
}

Status Decoder::GetU64(uint64_t* out) {
  Slice raw;
  SSDB_RETURN_IF_ERROR(GetRaw(8, &raw));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | raw[static_cast<size_t>(i)];
  *out = v;
  return Status::OK();
}

Status Decoder::GetU128(u128* out) {
  uint64_t lo = 0, hi = 0;
  SSDB_RETURN_IF_ERROR(GetU64(&lo));
  SSDB_RETURN_IF_ERROR(GetU64(&hi));
  *out = MakeU128(hi, lo);
  return Status::OK();
}

Status Decoder::GetI64(int64_t* out) {
  uint64_t v = 0;
  SSDB_RETURN_IF_ERROR(GetU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status Decoder::GetDouble(double* out) {
  uint64_t bits = 0;
  SSDB_RETURN_IF_ERROR(GetU64(&bits));
  memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status Decoder::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  Slice cursor = input_;
  while (!cursor.empty()) {
    const uint8_t byte = cursor[0];
    cursor.remove_prefix(1);
    if (shift >= 64 || (shift == 63 && (byte & 0x7E) != 0)) {
      return Status::Corruption("decode: varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      input_ = cursor;
      return Status::OK();
    }
    shift += 7;
  }
  return Truncated("varint");
}

Status Decoder::GetLengthPrefixed(Slice* out) {
  uint64_t len = 0;
  Slice saved = input_;
  SSDB_RETURN_IF_ERROR(GetVarint(&len));
  if (input_.size() < len) {
    input_ = saved;
    return Truncated("length-prefixed bytes");
  }
  *out = Slice(input_.data(), len);
  input_.remove_prefix(len);
  return Status::OK();
}

Status Decoder::GetLengthPrefixedString(std::string* out) {
  Slice s;
  SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&s));
  *out = s.ToString();
  return Status::OK();
}

Status Decoder::GetBool(bool* out) {
  uint8_t v = 0;
  SSDB_RETURN_IF_ERROR(GetU8(&v));
  if (v > 1) return Status::Corruption("decode: bool out of range");
  *out = (v == 1);
  return Status::OK();
}

}  // namespace ssdb
