#include "common/buffer.h"

#include <cstring>

namespace ssdb {

void Buffer::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Buffer::PutVarint(uint64_t v) {
  uint8_t b[10];
  size_t n = 0;
  while (v >= 0x80) {
    b[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  b[n++] = static_cast<uint8_t>(v);
  bytes_.insert(bytes_.end(), b, b + n);
}

void Buffer::PutLengthPrefixed(Slice s) {
  PutVarint(s.size());
  Append(s);
}

namespace {
Status Truncated(const char* what) {
  return Status::Corruption(std::string("decode: truncated ") + what);
}
}  // namespace

Status Decoder::GetRaw(size_t n, Slice* out) {
  if (input_.size() < n) return Truncated("raw bytes");
  *out = Slice(input_.data(), n);
  input_.remove_prefix(n);
  return Status::OK();
}

Status Decoder::GetU8(uint8_t* out) {
  if (input_.empty()) return Truncated("u8");
  *out = input_[0];
  input_.remove_prefix(1);
  return Status::OK();
}

// Fixed-width loads go through memcpy (one unaligned load on common
// targets) instead of per-byte shifts; the byte swap keeps the wire format
// little-endian everywhere.
namespace {
template <typename T>
inline T LoadLE(const uint8_t* p) {
  T v;
  memcpy(&v, p, sizeof(T));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  if constexpr (sizeof(T) == 2) v = __builtin_bswap16(v);
  if constexpr (sizeof(T) == 4) v = __builtin_bswap32(v);
  if constexpr (sizeof(T) == 8) v = __builtin_bswap64(v);
#endif
  return v;
}
}  // namespace

Status Decoder::GetU16(uint16_t* out) {
  Slice raw;
  SSDB_RETURN_IF_ERROR(GetRaw(2, &raw));
  *out = LoadLE<uint16_t>(raw.data());
  return Status::OK();
}

Status Decoder::GetU32(uint32_t* out) {
  Slice raw;
  SSDB_RETURN_IF_ERROR(GetRaw(4, &raw));
  *out = LoadLE<uint32_t>(raw.data());
  return Status::OK();
}

Status Decoder::GetU64(uint64_t* out) {
  Slice raw;
  SSDB_RETURN_IF_ERROR(GetRaw(8, &raw));
  *out = LoadLE<uint64_t>(raw.data());
  return Status::OK();
}

Status Decoder::GetU128(u128* out) {
  uint64_t lo = 0, hi = 0;
  SSDB_RETURN_IF_ERROR(GetU64(&lo));
  SSDB_RETURN_IF_ERROR(GetU64(&hi));
  *out = MakeU128(hi, lo);
  return Status::OK();
}

Status Decoder::GetI64(int64_t* out) {
  uint64_t v = 0;
  SSDB_RETURN_IF_ERROR(GetU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status Decoder::GetDouble(double* out) {
  uint64_t bits = 0;
  SSDB_RETURN_IF_ERROR(GetU64(&bits));
  memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status Decoder::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  Slice cursor = input_;
  while (!cursor.empty()) {
    const uint8_t byte = cursor[0];
    cursor.remove_prefix(1);
    if (shift >= 64 || (shift == 63 && (byte & 0x7E) != 0)) {
      return Status::Corruption("decode: varint overflow");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      input_ = cursor;
      return Status::OK();
    }
    shift += 7;
  }
  return Truncated("varint");
}

Status Decoder::GetLengthPrefixed(Slice* out) {
  uint64_t len = 0;
  Slice saved = input_;
  SSDB_RETURN_IF_ERROR(GetVarint(&len));
  if (input_.size() < len) {
    input_ = saved;
    return Truncated("length-prefixed bytes");
  }
  *out = Slice(input_.data(), len);
  input_.remove_prefix(len);
  return Status::OK();
}

Status Decoder::GetLengthPrefixedString(std::string* out) {
  Slice s;
  SSDB_RETURN_IF_ERROR(GetLengthPrefixed(&s));
  *out = s.ToString();
  return Status::OK();
}

Status Decoder::GetBool(bool* out) {
  uint8_t v = 0;
  SSDB_RETURN_IF_ERROR(GetU8(&v));
  if (v > 1) return Status::Corruption("decode: bool out of range");
  *out = (v == 1);
  return Status::OK();
}

}  // namespace ssdb
