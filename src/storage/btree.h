// In-memory B+-tree keyed by 128-bit order-preserving shares.
//
// Each provider indexes every range-capable column with one of these trees
// (key = order-preserving share, value = row id). Because the Section IV
// construction preserves order, a client range predicate rewrites to a
// share-space [lo, hi] scan that this tree answers without the provider
// ever seeing plaintext values. Duplicate keys are supported (equal values
// share equal order-preserving shares).
//
// Thread-safety: every public method takes an internal reader/writer lock
// (shared for lookups/scans, exclusive for Insert/Erase), so one tree can
// serve concurrent fan-out legs. Scan visitors run under the shared lock
// and must not call back into mutating methods of the same tree. Move
// construction/assignment are NOT synchronized against concurrent use of
// the source.

#ifndef SSDB_STORAGE_BTREE_H_
#define SSDB_STORAGE_BTREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/wide_int.h"

namespace ssdb {

/// \brief B+-tree multimap from u128 keys to uint64 values.
class BPlusTree {
 public:
  /// Maximum entries per node; split at capacity.
  static constexpr size_t kFanout = 64;

  BPlusTree();
  ~BPlusTree();
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts a (key, value) pair. Duplicates (same key, even same value)
  /// are kept.
  void Insert(u128 key, uint64_t value);

  /// Removes one occurrence of (key, value); returns whether found.
  bool Erase(u128 key, uint64_t value);

  /// Visits all entries with lo <= key <= hi in ascending key order; the
  /// visitor returns false to stop early.
  void Scan(u128 lo, u128 hi,
            const std::function<bool(u128, uint64_t)>& visit) const;

  /// Collects the values for keys in [lo, hi].
  std::vector<uint64_t> Range(u128 lo, u128 hi) const;

  /// Collects values with key exactly `key`.
  std::vector<uint64_t> Equal(u128 key) const { return Range(key, key); }

  /// Smallest / largest key with at least one entry in [lo, hi]; false if
  /// the interval is empty.
  bool MinInRange(u128 lo, u128 hi, u128* key, uint64_t* value) const;
  bool MaxInRange(u128 lo, u128 hi, u128* key, uint64_t* value) const;

  /// Number of entries in [lo, hi].
  size_t CountInRange(u128 lo, u128 hi) const;

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  /// Structural invariant check (tests): sorted keys, balanced depth,
  /// correct leaf chaining. Returns false on violation.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  LeafNode* FindLeaf(u128 key) const;
  void InsertIntoParent(Node* left, u128 split_key, Node* right);
  void FreeSubtree(Node* node);
  /// Scan body; caller must hold mu_ (shared or exclusive).
  void ScanUnlocked(u128 lo, u128 hi,
                    const std::function<bool(u128, uint64_t)>& visit) const;

  mutable std::shared_mutex mu_;
  Node* root_;
  std::atomic<size_t> size_;
};

}  // namespace ssdb

#endif  // SSDB_STORAGE_BTREE_H_
