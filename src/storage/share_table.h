// Provider-side storage of share rows.
//
// A provider never sees plaintext. For every client row it stores, per
// column, up to three share representations (see codec/schema.h):
//   secret : uint64  — random Shamir share (always present),
//   det    : uint64  — deterministic Shamir share (exact-match columns),
//   op     : u128    — order-preserving share (range columns).
// Rows carry the client-assigned row id (shared across providers so
// responses can be joined back together) and an optional client-computed
// integrity tag.
//
// Indexes: a hash index per exact-match column (det share -> row ids) and
// a B+-tree per range column (op share -> row ids).
//
// Thread-safety: each table owns a reader/writer lock — mutators take it
// exclusively, read paths take it shared — so concurrent fan-out legs can
// read one table while another is being written. Pointers returned by Get
// stay valid under concurrent reads (node-based map) but not across a
// concurrent Delete/Update of the same row; the provider serializes
// mutating messages against reads, which upholds that. Move
// construction/assignment are NOT synchronized against concurrent use.

#ifndef SSDB_STORAGE_SHARE_TABLE_H_
#define SSDB_STORAGE_SHARE_TABLE_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "codec/schema.h"
#include "common/buffer.h"
#include "common/status.h"
#include "storage/btree.h"

namespace ssdb {

/// One column's stored shares within a row.
struct StoredCell {
  uint64_t secret = 0;  ///< Random Shamir share (Fp61 canonical value).
  uint64_t det = 0;     ///< Deterministic share; valid iff layout.has_det.
  u128 op = 0;          ///< Order-preserving share; valid iff layout.has_op.
};

/// One stored row of shares.
struct StoredRow {
  uint64_t row_id = 0;
  std::vector<StoredCell> cells;
  uint64_t tag = 0;  ///< Client integrity tag (HMAC truncation); 0 if unused.
};

/// Wire encoding of rows (used in updates and query responses).
void EncodeStoredRow(const StoredRow& row,
                     const std::vector<ProviderColumnLayout>& layout,
                     Buffer* buf);
/// Encodes the projection `columns` of `row`: byte-identical to projecting
/// the row into a temporary and encoding that with the projected layout,
/// without materializing the copy. `layout[c]` describes `columns[c]`.
void EncodeStoredRowProjected(const StoredRow& row,
                              const std::vector<ProviderColumnLayout>& layout,
                              const std::vector<uint32_t>& columns,
                              Buffer* buf);
/// Exact wire size of EncodeStoredRow output for one row under `layout`
/// (rows are fixed-width per layout), for reserve-exact encoding.
size_t StoredRowWireSize(const std::vector<ProviderColumnLayout>& layout);
Status DecodeStoredRow(Decoder* dec,
                       const std::vector<ProviderColumnLayout>& layout,
                       StoredRow* out);

/// \brief One table's share storage plus its indexes at a single provider.
class ShareTable {
 public:
  explicit ShareTable(std::vector<ProviderColumnLayout> layout);

  ShareTable(const ShareTable&) = delete;
  ShareTable& operator=(const ShareTable&) = delete;
  ShareTable(ShareTable&&) noexcept;
  ShareTable& operator=(ShareTable&&) noexcept;

  const std::vector<ProviderColumnLayout>& layout() const { return layout_; }
  size_t num_columns() const { return layout_.size(); }
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return rows_.size();
  }

  /// Inserts a row (row_id must be new); maintains all indexes.
  Status Insert(StoredRow row);

  /// Removes a row by id.
  Status Delete(uint64_t row_id);

  /// Replaces an existing row (same row_id) with new shares.
  Status Update(StoredRow row);

  /// Adds `deltas[c]` (mod p) to every column's random secret share of the
  /// row. Deterministic and order-preserving shares are untouched, so no
  /// index maintenance is needed — this is the proactive-refresh path.
  Status AddSecretDeltas(uint64_t row_id, const std::vector<uint64_t>& deltas);

  /// Point read by row id.
  Result<const StoredRow*> Get(uint64_t row_id) const;

  /// Visits the listed rows, in list order, under ONE shared-lock
  /// acquisition — the batched form of Get for handlers that touch many
  /// rows per request. Fails with Get's NotFound on the first missing id;
  /// a non-OK status from `visit` aborts the walk and is returned as-is.
  /// The rows passed to `visit` follow the same lifetime rules as Get's
  /// pointers (stable under concurrent reads, not across Delete/Update).
  template <typename Fn>
  Status VisitRows(const std::vector<uint64_t>& ids, Fn&& visit) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (uint64_t id : ids) {
      auto it = rows_.find(id);
      if (it == rows_.end()) {
        return Status::NotFound("share row id not stored");
      }
      Status st = visit(it->second);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  /// Visits every live row in ascending row-id order under one shared-lock
  /// acquisition. Byte-for-byte equivalent to VisitRows(AllRowIds(), fn)
  /// without materializing the id list or paying a map lookup per row.
  template <typename Fn>
  Status VisitAllRows(Fn&& visit) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [id, row] : rows_) {
      Status st = visit(row);
      if (!st.ok()) return st;
    }
    return Status::OK();
  }

  /// Row ids whose deterministic share in `column` equals `det_share`.
  Result<std::vector<uint64_t>> ExactMatch(size_t column,
                                           uint64_t det_share) const;

  /// Row ids whose order-preserving share in `column` is within
  /// [op_lo, op_hi], in ascending share order.
  Result<std::vector<uint64_t>> RangeScan(size_t column, u128 op_lo,
                                          u128 op_hi) const;

  /// Row ids of the minimal / maximal order-preserving share within
  /// [op_lo, op_hi] (all ties). Empty if no row qualifies.
  Result<std::vector<uint64_t>> ArgMinInRange(size_t column, u128 op_lo,
                                              u128 op_hi) const;
  Result<std::vector<uint64_t>> ArgMaxInRange(size_t column, u128 op_lo,
                                              u128 op_hi) const;

  /// Visits every live row.
  void ScanAll(const std::function<bool(const StoredRow&)>& visit) const;

  /// All row ids (ascending).
  std::vector<uint64_t> AllRowIds() const;

  /// Serializes layout + all rows (snapshot format, versioned).
  void SaveSnapshot(Buffer* out) const;
  /// Rebuilds a table (including its indexes) from a snapshot.
  static Result<ShareTable> LoadSnapshot(Decoder* dec);

 private:
  Status CheckRowShape(const StoredRow& row) const;
  void IndexRow(const StoredRow& row);
  void UnindexRow(const StoredRow& row);

  mutable std::shared_mutex mu_;
  std::vector<ProviderColumnLayout> layout_;
  std::map<uint64_t, StoredRow> rows_;  // row_id -> row
  // Per-column indexes (empty containers for columns without the share).
  std::vector<std::unordered_multimap<uint64_t, uint64_t>> det_index_;
  std::vector<BPlusTree> op_index_;
};

}  // namespace ssdb

#endif  // SSDB_STORAGE_SHARE_TABLE_H_
