#include "storage/engine.h"

#include <filesystem>
#include <vector>

#include "common/hash.h"

namespace ssdb {

// --- PSNP snapshot codec -----------------------------------------------------

namespace {
constexpr uint32_t kProviderSnapshotMagic = 0x50534E50;  // "PSNP"
}  // namespace

void EncodeProviderState(const ProviderState& state, const std::string& name,
                         Buffer* out) {
  out->PutU32(kProviderSnapshotMagic);
  out->PutLengthPrefixed(Slice(name));
  out->PutVarint(state.tables.size());
  for (const auto& [id, table] : state.tables) {
    out->PutU32(id);
    table.SaveSnapshot(out);
  }
  out->PutVarint(state.public_tables.size());
  for (const auto& [id, table] : state.public_tables) {
    out->PutU32(id);
    out->PutU32(table.num_columns);
    out->PutVarint(table.rows.size());
    for (const auto& row : table.rows) {
      for (const Value& v : row) v.EncodeTo(out);
    }
    out->PutVarint(table.share_index.size());
    for (const auto& [col, idx] : table.share_index) {
      out->PutU32(col);
      out->PutVarint(idx.det.size());
      for (const auto& [det, row_id] : idx.det) {
        out->PutU64(det);
        out->PutU64(row_id);
      }
      out->PutVarint(idx.op.size());
      idx.op.Scan(0, ~static_cast<u128>(0), [&](u128 key, uint64_t row_id) {
        out->PutU128(key);
        out->PutU64(row_id);
        return true;
      });
    }
  }
}

Status DecodeProviderState(Slice snapshot, std::string* name,
                           ProviderState* state) {
  Decoder dec(snapshot);
  uint32_t magic = 0;
  SSDB_RETURN_IF_ERROR(dec.GetU32(&magic));
  if (magic != kProviderSnapshotMagic) {
    return Status::Corruption("provider snapshot: bad magic");
  }
  std::string decoded_name;
  SSDB_RETURN_IF_ERROR(dec.GetLengthPrefixedString(&decoded_name));

  ProviderState out;
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec.GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t id = 0;
    SSDB_RETURN_IF_ERROR(dec.GetU32(&id));
    SSDB_ASSIGN_OR_RETURN(ShareTable table, ShareTable::LoadSnapshot(&dec));
    out.tables.emplace(id, std::move(table));
  }

  SSDB_RETURN_IF_ERROR(dec.GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t id = 0;
    PublicTable table;
    SSDB_RETURN_IF_ERROR(dec.GetU32(&id));
    SSDB_RETURN_IF_ERROR(dec.GetU32(&table.num_columns));
    if (table.num_columns == 0 || table.num_columns > 4096) {
      return Status::Corruption("provider snapshot: bad public column count");
    }
    uint64_t rows = 0;
    SSDB_RETURN_IF_ERROR(dec.GetVarint(&rows));
    for (uint64_t r = 0; r < rows; ++r) {
      std::vector<Value> row(table.num_columns);
      for (auto& v : row) SSDB_RETURN_IF_ERROR(Value::DecodeFrom(&dec, &v));
      table.rows.push_back(std::move(row));
    }
    uint64_t indexes = 0;
    SSDB_RETURN_IF_ERROR(dec.GetVarint(&indexes));
    for (uint64_t x = 0; x < indexes; ++x) {
      uint32_t col = 0;
      SSDB_RETURN_IF_ERROR(dec.GetU32(&col));
      PublicColumnIndex& idx = table.share_index[col];
      uint64_t det_entries = 0;
      SSDB_RETURN_IF_ERROR(dec.GetVarint(&det_entries));
      for (uint64_t e = 0; e < det_entries; ++e) {
        uint64_t det = 0, row_id = 0;
        SSDB_RETURN_IF_ERROR(dec.GetU64(&det));
        SSDB_RETURN_IF_ERROR(dec.GetU64(&row_id));
        idx.det.emplace(det, row_id);
      }
      uint64_t op_entries = 0;
      SSDB_RETURN_IF_ERROR(dec.GetVarint(&op_entries));
      for (uint64_t e = 0; e < op_entries; ++e) {
        u128 key = 0;
        uint64_t row_id = 0;
        SSDB_RETURN_IF_ERROR(dec.GetU128(&key));
        SSDB_RETURN_IF_ERROR(dec.GetU64(&row_id));
        idx.op.Insert(key, row_id);
      }
    }
    out.public_tables.emplace(id, std::move(table));
  }

  *name = std::move(decoded_name);
  *state = std::move(out);
  return Status::OK();
}

// --- DurableEngine -----------------------------------------------------------

namespace {

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("storage engine: cannot open " + path);
  }
  out->clear();
  uint8_t chunk[4096];
  size_t got = 0;
  while ((got = fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->insert(out->end(), chunk, chunk + got);
  }
  fclose(f);
  return Status::OK();
}

Status WriteFileBytes(const std::string& path, Slice bytes) {
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("storage engine: cannot open " + path +
                            " for writing");
  }
  const size_t written = fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_rc = fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    return Status::Internal("storage engine: short write to " + path);
  }
  return Status::OK();
}

}  // namespace

DurableEngine::~DurableEngine() {
  if (wal_ != nullptr) fclose(wal_);
}

void DurableEngine::AttachMetrics(MetricsRegistry* registry,
                                  const std::string& label) {
  const MetricLabels labels = {{"provider", label}};
  metric_appends_ = registry->GetCounter("ssdb_wal_appends_total", labels);
  metric_bytes_ = registry->GetCounter("ssdb_wal_bytes_total", labels);
  metric_checkpoints_ =
      registry->GetCounter("ssdb_wal_checkpoints_total", labels);
  metric_replayed_ =
      registry->GetCounter("ssdb_recovery_replayed_records_total", labels);
  metric_truncated_bytes_ =
      registry->GetCounter("ssdb_recovery_truncated_bytes_total", labels);
  metric_restarts_ =
      registry->GetCounter("ssdb_recovery_restarts_total", labels);
}

Status DurableEngine::OpenWalForAppend(
    const std::vector<uint8_t>& good_prefix) {
  // Rewrite the surviving prefix (drops any torn tail) and keep the
  // handle positioned at the end for appends.
  wal_ = fopen(wal_path().c_str(), "wb");
  if (wal_ == nullptr) {
    return Status::Internal("storage engine: cannot open " + wal_path());
  }
  if (!good_prefix.empty() &&
      fwrite(good_prefix.data(), 1, good_prefix.size(), wal_) !=
          good_prefix.size()) {
    return Status::Internal("storage engine: short WAL rewrite");
  }
  if (fflush(wal_) != 0) {
    return Status::Internal("storage engine: WAL flush failed");
  }
  return Status::OK();
}

Status DurableEngine::Open(const std::string& provider_name,
                           const ReplayFn& replay) {
  if (options_.dir.empty()) {
    return Status::InvalidArgument("storage engine: empty durable dir");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::Internal("storage engine: cannot create " + options_.dir +
                            ": " + ec.message());
  }
  name_ = provider_name;
  if (wal_ != nullptr) {
    fclose(wal_);
    wal_ = nullptr;
  }
  state_.Clear();
  replayed_records_ = 0;
  truncated_bytes_ = 0;

  // 1. Last checkpoint, if any.
  std::vector<uint8_t> snap;
  Status snap_st = ReadFileBytes(snapshot_path(), &snap);
  if (snap_st.ok()) {
    std::string snap_name;
    SSDB_RETURN_IF_ERROR(DecodeProviderState(Slice(snap), &snap_name, &state_));
  } else if (!snap_st.IsNotFound()) {
    return snap_st;
  }

  // 2. Redo-replay the WAL suffix. A record is varint(len) + u64 FNV-1a
  // checksum + payload; the first undecodable or checksum-failing record
  // marks a torn tail (the process died mid-append) and everything from
  // its offset on is truncated.
  std::vector<uint8_t> wal_bytes;
  Status wal_st = ReadFileBytes(wal_path(), &wal_bytes);
  if (!wal_st.ok() && !wal_st.IsNotFound()) return wal_st;
  size_t good_len = 0;
  uint64_t records = 0;
  if (wal_st.ok() && !wal_bytes.empty()) {
    Decoder dec{Slice(wal_bytes)};
    while (dec.remaining() > 0) {
      uint64_t len = 0;
      uint64_t checksum = 0;
      Slice payload;
      if (!dec.GetVarint(&len).ok() || !dec.GetU64(&checksum).ok() ||
          dec.remaining() < len ||
          !dec.GetRaw(static_cast<size_t>(len), &payload).ok()) {
        break;  // torn tail
      }
      if (Fnv1a64(payload) != checksum) break;  // corrupt tail
      // Replay ignores semantic errors: handlers are deterministic, so a
      // live error recurs identically and state cannot drift.
      (void)replay(payload);
      ++records;
      good_len = wal_bytes.size() - dec.remaining();
    }
  }
  truncated_bytes_ = wal_bytes.size() - good_len;
  wal_bytes.resize(good_len);
  replayed_records_ = records;
  wal_records_ = records;
  if (metric_replayed_ != nullptr && records) metric_replayed_->Inc(records);
  if (metric_truncated_bytes_ != nullptr && truncated_bytes_) {
    metric_truncated_bytes_->Inc(truncated_bytes_);
  }
  if (crashed_) {
    crashed_ = false;
    if (metric_restarts_ != nullptr) metric_restarts_->Inc();
  }
  return OpenWalForAppend(wal_bytes);
}

Status DurableEngine::LogMutation(Slice request) {
  if (wal_ == nullptr) {
    return Status::Internal("storage engine: WAL not open (crashed?)");
  }
  Buffer record;
  record.PutVarint(request.size());
  record.PutU64(Fnv1a64(request));
  record.Append(request);
  if (fwrite(record.data(), 1, record.size(), wal_) != record.size() ||
      fflush(wal_) != 0) {
    return Status::Internal("storage engine: WAL append failed");
  }
  ++wal_records_;
  if (metric_appends_ != nullptr) metric_appends_->Inc();
  if (metric_bytes_ != nullptr) metric_bytes_->Inc(record.size());
  if (options_.snapshot_every > 0 && wal_records_ >= options_.snapshot_every) {
    return Checkpoint();
  }
  return Status::OK();
}

Status DurableEngine::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::Internal("storage engine: WAL not open (crashed?)");
  }
  Buffer snap;
  EncodeProviderState(state_, name_, &snap);
  const std::string tmp = options_.dir + "/snapshot.tmp";
  SSDB_RETURN_IF_ERROR(WriteFileBytes(tmp, snap.AsSlice()));
  if (rename(tmp.c_str(), snapshot_path().c_str()) != 0) {
    return Status::Internal("storage engine: cannot publish snapshot");
  }
  // The snapshot covers everything: truncate the WAL.
  fclose(wal_);
  wal_ = nullptr;
  wal_records_ = 0;
  ++checkpoints_;
  if (metric_checkpoints_ != nullptr) metric_checkpoints_->Inc();
  return OpenWalForAppend({});
}

void DurableEngine::Crash() {
  // Process death: nothing is flushed or checkpointed. The WAL handle is
  // dropped as-is (every append was already flushed record-by-record, so
  // what is on disk is exactly the applied mutation stream).
  if (wal_ != nullptr) {
    fclose(wal_);
    wal_ = nullptr;
  }
  state_.Clear();
  crashed_ = true;
}

}  // namespace ssdb
