#include "storage/btree.h"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <shared_mutex>

namespace ssdb {

struct BPlusTree::Node {
  bool leaf = false;
  InternalNode* parent = nullptr;
};

struct BPlusTree::LeafNode : BPlusTree::Node {
  std::vector<u128> keys;
  std::vector<uint64_t> vals;
  LeafNode* next = nullptr;
};

struct BPlusTree::InternalNode : BPlusTree::Node {
  // children.size() == keys.size() + 1. keys[i] is the smallest key in
  // the subtree children[i+1].
  std::vector<u128> keys;
  std::vector<Node*> children;
};

BPlusTree::BPlusTree() : size_(0) {
  auto* leaf = new LeafNode();
  leaf->leaf = true;
  root_ = leaf;
}

BPlusTree::~BPlusTree() { FreeSubtree(root_); }

BPlusTree::BPlusTree(BPlusTree&& o) noexcept
    : root_(o.root_), size_(o.size_.load(std::memory_order_relaxed)) {
  auto* leaf = new LeafNode();
  leaf->leaf = true;
  o.root_ = leaf;
  o.size_.store(0, std::memory_order_relaxed);
}

BPlusTree& BPlusTree::operator=(BPlusTree&& o) noexcept {
  if (this != &o) {
    FreeSubtree(root_);
    root_ = o.root_;
    size_.store(o.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    auto* leaf = new LeafNode();
    leaf->leaf = true;
    o.root_ = leaf;
    o.size_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

void BPlusTree::FreeSubtree(Node* node) {
  if (node == nullptr) return;
  if (!node->leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    for (Node* child : internal->children) FreeSubtree(child);
    delete internal;
  } else {
    delete static_cast<LeafNode*>(node);
  }
}

// Descends to the first leaf that can contain an entry >= key.
BPlusTree::LeafNode* BPlusTree::FindLeaf(u128 key) const {
  Node* node = root_;
  while (!node->leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    const size_t idx = static_cast<size_t>(
        std::lower_bound(internal->keys.begin(), internal->keys.end(), key) -
        internal->keys.begin());
    node = internal->children[idx];
  }
  return static_cast<LeafNode*>(node);
}

void BPlusTree::Insert(u128 key, uint64_t value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Descend with upper_bound so duplicates append after existing ones.
  Node* node = root_;
  while (!node->leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    const size_t idx = static_cast<size_t>(
        std::upper_bound(internal->keys.begin(), internal->keys.end(), key) -
        internal->keys.begin());
    node = internal->children[idx];
  }
  auto* leaf = static_cast<LeafNode*>(node);
  const size_t pos = static_cast<size_t>(
      std::upper_bound(leaf->keys.begin(), leaf->keys.end(), key) -
      leaf->keys.begin());
  leaf->keys.insert(leaf->keys.begin() + static_cast<long>(pos), key);
  leaf->vals.insert(leaf->vals.begin() + static_cast<long>(pos), value);
  ++size_;

  if (leaf->keys.size() > kFanout) {
    // Split: upper half moves into a new right sibling.
    auto* right = new LeafNode();
    right->leaf = true;
    const size_t mid = leaf->keys.size() / 2;
    right->keys.assign(leaf->keys.begin() + static_cast<long>(mid),
                       leaf->keys.end());
    right->vals.assign(leaf->vals.begin() + static_cast<long>(mid),
                       leaf->vals.end());
    leaf->keys.resize(mid);
    leaf->vals.resize(mid);
    right->next = leaf->next;
    leaf->next = right;
    InsertIntoParent(leaf, right->keys.front(), right);
  }
}

void BPlusTree::InsertIntoParent(Node* left, u128 split_key, Node* right) {
  if (left->parent == nullptr) {
    auto* new_root = new InternalNode();
    new_root->keys.push_back(split_key);
    new_root->children.push_back(left);
    new_root->children.push_back(right);
    left->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }
  InternalNode* parent = left->parent;
  const size_t pos = static_cast<size_t>(
      std::upper_bound(parent->keys.begin(), parent->keys.end(), split_key) -
      parent->keys.begin());
  parent->keys.insert(parent->keys.begin() + static_cast<long>(pos),
                      split_key);
  parent->children.insert(parent->children.begin() + static_cast<long>(pos) + 1,
                          right);
  right->parent = parent;

  if (parent->keys.size() > kFanout) {
    // Split the internal node; the middle key moves up.
    auto* new_right = new InternalNode();
    const size_t mid = parent->keys.size() / 2;
    const u128 up_key = parent->keys[mid];
    new_right->keys.assign(parent->keys.begin() + static_cast<long>(mid) + 1,
                           parent->keys.end());
    new_right->children.assign(
        parent->children.begin() + static_cast<long>(mid) + 1,
        parent->children.end());
    parent->keys.resize(mid);
    parent->children.resize(mid + 1);
    for (Node* child : new_right->children) child->parent = new_right;
    InsertIntoParent(parent, up_key, new_right);
  }
}

bool BPlusTree::Erase(u128 key, uint64_t value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Lazy deletion: remove the entry, keep the structure (no merging).
  LeafNode* leaf = FindLeaf(key);
  while (leaf != nullptr) {
    bool past = false;
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] > key) {
        past = true;
        break;
      }
      if (leaf->keys[i] == key && leaf->vals[i] == value) {
        leaf->keys.erase(leaf->keys.begin() + static_cast<long>(i));
        leaf->vals.erase(leaf->vals.begin() + static_cast<long>(i));
        --size_;
        return true;
      }
    }
    if (past) break;
    leaf = leaf->next;
  }
  return false;
}

void BPlusTree::Scan(u128 lo, u128 hi,
                     const std::function<bool(u128, uint64_t)>& visit) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ScanUnlocked(lo, hi, visit);
}

void BPlusTree::ScanUnlocked(
    u128 lo, u128 hi, const std::function<bool(u128, uint64_t)>& visit) const {
  if (lo > hi) return;
  const LeafNode* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    const size_t start = static_cast<size_t>(
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
        leaf->keys.begin());
    for (size_t i = start; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] > hi) return;
      if (!visit(leaf->keys[i], leaf->vals[i])) return;
    }
    leaf = leaf->next;
  }
}

std::vector<uint64_t> BPlusTree::Range(u128 lo, u128 hi) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<uint64_t> out;
  ScanUnlocked(lo, hi, [&](u128, uint64_t v) {
    out.push_back(v);
    return true;
  });
  return out;
}

bool BPlusTree::MinInRange(u128 lo, u128 hi, u128* key, uint64_t* value) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  bool found = false;
  ScanUnlocked(lo, hi, [&](u128 k, uint64_t v) {
    *key = k;
    *value = v;
    found = true;
    return false;  // first hit is the minimum
  });
  return found;
}

bool BPlusTree::MaxInRange(u128 lo, u128 hi, u128* key, uint64_t* value) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  bool found = false;
  ScanUnlocked(lo, hi, [&](u128 k, uint64_t v) {
    *key = k;
    *value = v;
    found = true;
    return true;  // last hit is the maximum
  });
  return found;
}

size_t BPlusTree::CountInRange(u128 lo, u128 hi) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  ScanUnlocked(lo, hi, [&](u128, uint64_t) {
    ++n;
    return true;
  });
  return n;
}

bool BPlusTree::CheckInvariants() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // 1. Uniform depth.
  size_t depth = 0;
  const Node* node = root_;
  while (!node->leaf) {
    node = static_cast<const InternalNode*>(node)->children.front();
    ++depth;
  }
  // Recursive structural check.
  struct Checker {
    size_t expected_depth;
    bool ok = true;
    void Check(const Node* n, size_t d) {
      if (!ok) return;
      if (n->leaf) {
        if (d != expected_depth) ok = false;
        const auto* leaf = static_cast<const LeafNode*>(n);
        if (leaf->keys.size() != leaf->vals.size()) ok = false;
        if (!std::is_sorted(leaf->keys.begin(), leaf->keys.end())) ok = false;
        return;
      }
      const auto* in = static_cast<const InternalNode*>(n);
      if (in->children.size() != in->keys.size() + 1) {
        ok = false;
        return;
      }
      if (!std::is_sorted(in->keys.begin(), in->keys.end())) ok = false;
      for (const Node* c : in->children) {
        if (c->parent != in) ok = false;
        Check(c, d + 1);
      }
    }
  } checker{depth};
  checker.Check(root_, 0);
  if (!checker.ok) return false;

  // 2. Leaf chain is globally sorted and covers exactly size_ entries.
  const Node* first = root_;
  while (!first->leaf) {
    first = static_cast<const InternalNode*>(first)->children.front();
  }
  size_t count = 0;
  bool have_prev = false;
  u128 prev = 0;
  for (const LeafNode* leaf = static_cast<const LeafNode*>(first);
       leaf != nullptr; leaf = leaf->next) {
    for (u128 k : leaf->keys) {
      if (have_prev && k < prev) return false;
      prev = k;
      have_prev = true;
      ++count;
    }
  }
  return count == size_;
}

}  // namespace ssdb
