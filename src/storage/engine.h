// Pluggable provider storage engines.
//
// A Provider's durable obligations (the paper's "reliable data storage"
// service promise, §II) are factored out of the protocol handler into a
// StorageEngine: the engine owns the provider's entire state — share
// tables plus hosted public tables and their attached share indexes —
// and decides what surviving a process death means.
//
//   * MemoryEngine: the seed system's behavior. State lives only in RAM;
//     Crash() loses everything and Open() starts empty. Byte-identical
//     to the pre-engine provider in results, wire bytes, virtual clock
//     and telemetry exports at any fanout_threads.
//   * DurableEngine: layers a per-provider append-only write-ahead log
//     plus periodic snapshots under a directory. Every applied mutating
//     wire message is appended to the WAL as a length-prefixed,
//     checksummed record (the records ARE wire messages — the WAL reuses
//     the provider protocol codec); every `snapshot_every` records the
//     full state is checkpointed (snapshot.tmp + rename) and the WAL is
//     truncated. Open() loads the last snapshot and redo-replays the
//     surviving WAL suffix; a torn or corrupt tail (killed mid-append)
//     is truncated at the last intact record.
//
// The WAL is a redo log of raw request messages: replay re-dispatches
// each record through the provider's own handlers, so recovery cannot
// drift from live execution. Records are logged whether or not the
// handler reported success — handlers are deterministic, so a partially
// applied message (e.g. an insert batch failing at row j) partially
// re-applies identically on replay.

#ifndef SSDB_STORAGE_ENGINE_H_
#define SSDB_STORAGE_ENGINE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "codec/value.h"
#include "common/buffer.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/btree.h"
#include "storage/share_table.h"

namespace ssdb {

/// Private share index attached over one public column (§V.D mash-up).
struct PublicColumnIndex {
  std::unordered_multimap<uint64_t, uint64_t> det;  ///< det share -> row id
  BPlusTree op;                                     ///< op share -> row id
};

/// A plaintext public table hosted at a provider.
struct PublicTable {
  uint32_t num_columns = 0;
  std::vector<std::vector<Value>> rows;  ///< row id = position
  std::map<uint32_t, PublicColumnIndex> share_index;
};

/// Everything a provider stores: its share tables and hosted public
/// tables. Owned by the engine; the Provider's protocol handlers operate
/// on it under the provider's state lock.
struct ProviderState {
  std::map<uint32_t, ShareTable> tables;
  std::map<uint32_t, PublicTable> public_tables;

  void Clear() {
    tables.clear();
    public_tables.clear();
  }
};

/// Serializes a full provider state ("PSNP" snapshot format: magic,
/// provider name, share tables with indexes, public tables with share
/// indexes). The same codec backs Provider::SaveSnapshot and the
/// DurableEngine's checkpoint files.
void EncodeProviderState(const ProviderState& state, const std::string& name,
                         Buffer* out);

/// Decodes a PSNP snapshot. On success `state`/`name` are replaced;
/// on error they are untouched.
Status DecodeProviderState(Slice snapshot, std::string* name,
                           ProviderState* state);

/// \brief Storage engine interface: owns the provider state and its
/// durability story. All methods are called under the owning Provider's
/// exclusive state lock (never concurrently).
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  ProviderState& state() { return state_; }
  const ProviderState& state() const { return state_; }

  /// Applies one logged WAL record (a complete mutating wire message) to
  /// the state during recovery. Semantic errors are ignored by replay:
  /// handlers are deterministic, so an error recurs exactly as it did
  /// live and the resulting state is identical either way.
  using ReplayFn = std::function<Status(Slice record)>;

  /// Brings the engine to its post-recovery state. MemoryEngine: no-op
  /// (state starts/stays as it is in RAM). DurableEngine: loads the last
  /// snapshot, truncates any torn WAL tail, replays the surviving
  /// records through `replay`, and readies the WAL for appends.
  virtual Status Open(const std::string& provider_name,
                      const ReplayFn& replay) = 0;

  /// Records one applied mutating wire message. DurableEngine appends a
  /// checksummed WAL record and checkpoints at the configured cadence.
  virtual Status LogMutation(Slice request) = 0;

  /// Simulates process death: all in-memory state is dropped without any
  /// flush or checkpoint. What Open() can rebuild afterwards is exactly
  /// what the engine made durable beforehand.
  virtual void Crash() = 0;

  /// True when state survives Crash()+Open() (drives the kill/restart
  /// fault drill and the durable-only telemetry attach).
  virtual bool durable() const { return false; }

  /// Mirrors durability counters into `registry` under the `ssdb_wal_*`
  /// / `ssdb_recovery_*` series labelled {provider: `label`}. Base
  /// engines expose nothing; only durable deployments attach, so
  /// MemoryEngine telemetry exports stay byte-identical to the seed.
  virtual void AttachMetrics(MetricsRegistry* registry,
                             const std::string& label) {
    (void)registry;
    (void)label;
  }

 protected:
  ProviderState state_;
};

/// \brief The seed system's engine: RAM only, nothing survives a crash.
class MemoryEngine : public StorageEngine {
 public:
  Status Open(const std::string& provider_name,
              const ReplayFn& replay) override {
    (void)provider_name;
    (void)replay;
    return Status::OK();
  }
  Status LogMutation(Slice request) override {
    (void)request;
    return Status::OK();
  }
  void Crash() override { state_.Clear(); }
};

/// Configuration of a DurableEngine.
struct DurableEngineOptions {
  /// Directory holding this provider's wal.log / snapshot.bin (created
  /// on Open; one directory per provider).
  std::string dir;
  /// Checkpoint the state and truncate the WAL after this many appended
  /// records. 0 disables periodic checkpoints (explicit Checkpoint()
  /// still works).
  size_t snapshot_every = 256;
};

/// \brief WAL + snapshot engine: state survives Crash()+Open().
///
/// File layout under `dir`:
///   wal.log      varint(payload len) | u64 FNV-1a checksum | payload
///   snapshot.bin PSNP provider state (EncodeProviderState)
///   snapshot.tmp checkpoint staging; renamed over snapshot.bin
///
/// All I/O content is a pure function of the applied request byte
/// streams, so WAL/snapshot files are deterministic under seed and
/// identical at any fanout_threads.
class DurableEngine : public StorageEngine {
 public:
  explicit DurableEngine(DurableEngineOptions options)
      : options_(std::move(options)) {}
  ~DurableEngine() override;

  Status Open(const std::string& provider_name,
              const ReplayFn& replay) override;
  Status LogMutation(Slice request) override;
  void Crash() override;
  bool durable() const override { return true; }
  void AttachMetrics(MetricsRegistry* registry,
                     const std::string& label) override;

  /// Snapshots the full state (snapshot.tmp + atomic rename) and
  /// truncates the WAL. Called automatically every
  /// `snapshot_every` appends; public for drills and tests.
  Status Checkpoint();

  // Introspection (tests / drills).
  uint64_t wal_records() const { return wal_records_; }
  uint64_t replayed_records() const { return replayed_records_; }
  uint64_t truncated_bytes() const { return truncated_bytes_; }
  uint64_t checkpoints() const { return checkpoints_; }
  const std::string& dir() const { return options_.dir; }
  std::string wal_path() const { return options_.dir + "/wal.log"; }
  std::string snapshot_path() const { return options_.dir + "/snapshot.bin"; }

 private:
  Status OpenWalForAppend(const std::vector<uint8_t>& good_prefix);

  DurableEngineOptions options_;
  std::string name_;
  FILE* wal_ = nullptr;
  uint64_t wal_records_ = 0;  ///< Records in the WAL since last checkpoint.
  uint64_t replayed_records_ = 0;  ///< Replayed by the most recent Open.
  uint64_t truncated_bytes_ = 0;   ///< Torn-tail bytes cut by the last Open.
  uint64_t checkpoints_ = 0;
  bool crashed_ = false;  ///< Set by Crash(); the next Open is a restart.

  MetricCounter* metric_appends_ = nullptr;
  MetricCounter* metric_bytes_ = nullptr;
  MetricCounter* metric_checkpoints_ = nullptr;
  MetricCounter* metric_replayed_ = nullptr;
  MetricCounter* metric_truncated_bytes_ = nullptr;
  MetricCounter* metric_restarts_ = nullptr;
};

}  // namespace ssdb

#endif  // SSDB_STORAGE_ENGINE_H_
