#include "storage/share_table.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "field/fp61.h"

namespace ssdb {

namespace {

// Rows are staged in a stack buffer and appended with one insert, so each
// row pays one Buffer grow check instead of one per field. Rows wider than
// the stage (16-byte header + at most 32 bytes per column) fall back to
// field-at-a-time Puts with identical output bytes.
constexpr size_t kRowStageBytes = 512;

inline bool RowFitsStage(size_t columns) {
  return 16 + 32 * columns <= kRowStageBytes;
}

template <typename CellAt>
inline void EncodeRowCells(uint64_t row_id, uint64_t tag,
                           const std::vector<ProviderColumnLayout>& layout,
                           const CellAt& cell_at, Buffer* buf) {
  if (RowFitsStage(layout.size())) {
    uint8_t stage[kRowStageBytes];
    uint8_t* p = StoreU64LE(stage, row_id);
    p = StoreU64LE(p, tag);
    for (size_t c = 0; c < layout.size(); ++c) {
      const StoredCell& cell = cell_at(c);
      p = StoreU64LE(p, cell.secret);
      if (layout[c].has_det) p = StoreU64LE(p, cell.det);
      if (layout[c].has_op) {
        p = StoreU64LE(p, U128Lo(cell.op));
        p = StoreU64LE(p, U128Hi(cell.op));
      }
    }
    buf->Append(Slice(stage, static_cast<size_t>(p - stage)));
    return;
  }
  buf->PutU64(row_id);
  buf->PutU64(tag);
  for (size_t c = 0; c < layout.size(); ++c) {
    const StoredCell& cell = cell_at(c);
    buf->PutU64(cell.secret);
    if (layout[c].has_det) buf->PutU64(cell.det);
    if (layout[c].has_op) buf->PutU128(cell.op);
  }
}

}  // namespace

void EncodeStoredRow(const StoredRow& row,
                     const std::vector<ProviderColumnLayout>& layout,
                     Buffer* buf) {
  EncodeRowCells(
      row.row_id, row.tag, layout,
      [&](size_t c) -> const StoredCell& { return row.cells[c]; }, buf);
}

void EncodeStoredRowProjected(const StoredRow& row,
                              const std::vector<ProviderColumnLayout>& layout,
                              const std::vector<uint32_t>& columns,
                              Buffer* buf) {
  EncodeRowCells(
      row.row_id, row.tag, layout,
      [&](size_t c) -> const StoredCell& { return row.cells[columns[c]]; },
      buf);
}

size_t StoredRowWireSize(const std::vector<ProviderColumnLayout>& layout) {
  size_t bytes = 8 + 8;  // row_id + tag
  for (const ProviderColumnLayout& c : layout) {
    bytes += 8;                    // secret share
    if (c.has_det) bytes += 8;     // deterministic share
    if (c.has_op) bytes += 16;     // order-preserving share
  }
  return bytes;
}

Status DecodeStoredRow(Decoder* dec,
                       const std::vector<ProviderColumnLayout>& layout,
                       StoredRow* out) {
  // Rows are fixed-width under a layout: one bounds check for the whole
  // row, then unaligned loads straight off the wire view.
  Slice raw;
  SSDB_RETURN_IF_ERROR(dec->GetRaw(StoredRowWireSize(layout), &raw));
  const uint8_t* p = raw.data();
  out->row_id = LoadU64LE(p);
  out->tag = LoadU64LE(p + 8);
  p += 16;
  out->cells.assign(layout.size(), StoredCell());
  for (size_t c = 0; c < layout.size(); ++c) {
    StoredCell& cell = out->cells[c];
    cell.secret = LoadU64LE(p);
    p += 8;
    if (layout[c].has_det) {
      cell.det = LoadU64LE(p);
      p += 8;
    }
    if (layout[c].has_op) {
      cell.op = MakeU128(LoadU64LE(p + 8), LoadU64LE(p));
      p += 16;
    }
  }
  return Status::OK();
}

ShareTable::ShareTable(std::vector<ProviderColumnLayout> layout)
    : layout_(std::move(layout)),
      det_index_(layout_.size()),
      op_index_(layout_.size()) {}

// Moves transfer the data but not the lock; callers must ensure no thread
// touches either side during the move (providers only move tables while
// holding their own exclusive state lock).
ShareTable::ShareTable(ShareTable&& o) noexcept
    : layout_(std::move(o.layout_)),
      rows_(std::move(o.rows_)),
      det_index_(std::move(o.det_index_)),
      op_index_(std::move(o.op_index_)) {}

ShareTable& ShareTable::operator=(ShareTable&& o) noexcept {
  if (this != &o) {
    layout_ = std::move(o.layout_);
    rows_ = std::move(o.rows_);
    det_index_ = std::move(o.det_index_);
    op_index_ = std::move(o.op_index_);
  }
  return *this;
}

Status ShareTable::CheckRowShape(const StoredRow& row) const {
  if (row.cells.size() != layout_.size()) {
    return Status::InvalidArgument("share row arity mismatch");
  }
  return Status::OK();
}

void ShareTable::IndexRow(const StoredRow& row) {
  for (size_t c = 0; c < layout_.size(); ++c) {
    if (layout_[c].has_det) {
      det_index_[c].emplace(row.cells[c].det, row.row_id);
    }
    if (layout_[c].has_op) {
      op_index_[c].Insert(row.cells[c].op, row.row_id);
    }
  }
}

void ShareTable::UnindexRow(const StoredRow& row) {
  for (size_t c = 0; c < layout_.size(); ++c) {
    if (layout_[c].has_det) {
      auto range = det_index_[c].equal_range(row.cells[c].det);
      for (auto it = range.first; it != range.second; ++it) {
        if (it->second == row.row_id) {
          det_index_[c].erase(it);
          break;
        }
      }
    }
    if (layout_[c].has_op) {
      op_index_[c].Erase(row.cells[c].op, row.row_id);
    }
  }
}

Status ShareTable::Insert(StoredRow row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  SSDB_RETURN_IF_ERROR(CheckRowShape(row));
  if (rows_.count(row.row_id) != 0) {
    return Status::AlreadyExists("share row id already stored");
  }
  IndexRow(row);
  rows_.emplace(row.row_id, std::move(row));
  return Status::OK();
}

Status ShareTable::Delete(uint64_t row_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = rows_.find(row_id);
  if (it == rows_.end()) {
    return Status::NotFound("share row id not stored");
  }
  UnindexRow(it->second);
  rows_.erase(it);
  return Status::OK();
}

Status ShareTable::Update(StoredRow row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  SSDB_RETURN_IF_ERROR(CheckRowShape(row));
  auto it = rows_.find(row.row_id);
  if (it == rows_.end()) {
    return Status::NotFound("share row id not stored");
  }
  UnindexRow(it->second);
  IndexRow(row);
  it->second = std::move(row);
  return Status::OK();
}

Status ShareTable::AddSecretDeltas(uint64_t row_id,
                                   const std::vector<uint64_t>& deltas) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = rows_.find(row_id);
  if (it == rows_.end()) {
    return Status::NotFound("share row id not stored");
  }
  if (deltas.size() != layout_.size()) {
    return Status::InvalidArgument("refresh delta arity mismatch");
  }
  for (size_t c = 0; c < deltas.size(); ++c) {
    if (deltas[c] >= Fp61::kP) {
      return Status::InvalidArgument("refresh delta not a field element");
    }
    it->second.cells[c].secret =
        (Fp61::FromCanonical(it->second.cells[c].secret) +
         Fp61::FromCanonical(deltas[c]))
            .value();
  }
  return Status::OK();
}

Result<const StoredRow*> ShareTable::Get(uint64_t row_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = rows_.find(row_id);
  if (it == rows_.end()) {
    return Status::NotFound("share row id not stored");
  }
  return &it->second;
}

Result<std::vector<uint64_t>> ShareTable::ExactMatch(size_t column,
                                                     uint64_t det_share) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (column >= layout_.size()) {
    return Status::InvalidArgument("exact match: bad column index");
  }
  if (!layout_[column].has_det) {
    return Status::NotSupported(
        "exact match: column has no deterministic shares");
  }
  std::vector<uint64_t> out;
  auto range = det_index_[column].equal_range(det_share);
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<uint64_t>> ShareTable::RangeScan(size_t column, u128 op_lo,
                                                    u128 op_hi) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (column >= layout_.size()) {
    return Status::InvalidArgument("range scan: bad column index");
  }
  if (!layout_[column].has_op) {
    return Status::NotSupported(
        "range scan: column has no order-preserving shares");
  }
  return op_index_[column].Range(op_lo, op_hi);
}

Result<std::vector<uint64_t>> ShareTable::ArgMinInRange(size_t column,
                                                        u128 op_lo,
                                                        u128 op_hi) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (column >= layout_.size() || !layout_[column].has_op) {
    return Status::NotSupported("argmin: column has no order-preserving shares");
  }
  u128 key = 0;
  uint64_t value = 0;
  if (!op_index_[column].MinInRange(op_lo, op_hi, &key, &value)) {
    return std::vector<uint64_t>();
  }
  return op_index_[column].Equal(key);
}

Result<std::vector<uint64_t>> ShareTable::ArgMaxInRange(size_t column,
                                                        u128 op_lo,
                                                        u128 op_hi) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (column >= layout_.size() || !layout_[column].has_op) {
    return Status::NotSupported("argmax: column has no order-preserving shares");
  }
  u128 key = 0;
  uint64_t value = 0;
  if (!op_index_[column].MaxInRange(op_lo, op_hi, &key, &value)) {
    return std::vector<uint64_t>();
  }
  return op_index_[column].Equal(key);
}

void ShareTable::ScanAll(
    const std::function<bool(const StoredRow&)>& visit) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [id, row] : rows_) {
    if (!visit(row)) return;
  }
}

std::vector<uint64_t> ShareTable::AllRowIds() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(rows_.size());
  for (const auto& [id, row] : rows_) out.push_back(id);
  return out;
}

namespace {
constexpr uint32_t kSnapshotMagic = 0x53534442;  // "SSDB"
constexpr uint8_t kSnapshotVersion = 1;
}  // namespace

void ShareTable::SaveSnapshot(Buffer* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  out->PutU32(kSnapshotMagic);
  out->PutU8(kSnapshotVersion);
  out->PutVarint(layout_.size());
  for (const ProviderColumnLayout& c : layout_) c.EncodeTo(out);
  out->PutVarint(rows_.size());
  for (const auto& [id, row] : rows_) {
    EncodeStoredRow(row, layout_, out);
  }
}

Result<ShareTable> ShareTable::LoadSnapshot(Decoder* dec) {
  uint32_t magic = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::Corruption("share table snapshot: bad magic");
  }
  uint8_t version = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU8(&version));
  if (version != kSnapshotVersion) {
    return Status::NotSupported("share table snapshot: unknown version");
  }
  uint64_t cols = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&cols));
  if (cols == 0 || cols > 4096) {
    return Status::Corruption("share table snapshot: implausible column count");
  }
  std::vector<ProviderColumnLayout> layout(cols);
  for (auto& c : layout) {
    SSDB_RETURN_IF_ERROR(ProviderColumnLayout::DecodeFrom(dec, &c));
  }
  ShareTable table(std::move(layout));
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    StoredRow row;
    SSDB_RETURN_IF_ERROR(DecodeStoredRow(dec, table.layout(), &row));
    SSDB_RETURN_IF_ERROR(table.Insert(std::move(row)));
  }
  return table;
}

}  // namespace ssdb
