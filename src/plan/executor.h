// The Executor: walks a QueryPlan, issuing Network::CallMany fan-outs
// and Lagrange reconstruction through the PlanHost hooks.
//
// Execution is a faithful re-organization of the client's former
// monolithic query paths: the same per-provider rewrites, the same
// quorum fan-out with sequential replacement of failed legs, the same
// majority grouping and corruption-retry policy — so results, provider
// byte streams and virtual-clock totals are identical to the
// pre-plan-layer code. What is new is the QueryTrace: every plan node
// records the provider legs it issued, exact bytes up/down, the
// virtual-clock time charged, and row/share counters.

#ifndef SSDB_PLAN_EXECUTOR_H_
#define SSDB_PLAN_EXECUTOR_H_

#include <map>
#include <vector>

#include "plan/host.h"
#include "plan/plan.h"
#include "plan/trace.h"

namespace ssdb {

class Executor {
 public:
  explicit Executor(PlanHost* host) : host_(host) {}

  /// Tenant attribution stamped on every trace this executor finalizes
  /// (QueryTrace::tenant); empty = unattributed. The metering layer in
  /// the client reads it from OnTraceFinalized.
  void set_tenant(std::string tenant) { tenant_ = std::move(tenant); }

  /// Executes the plan; on success the QueryResult carries the trace.
  Result<QueryResult> Execute(const QueryPlan& plan);

  /// Executes many independent plans, coalescing compatible fan-outs into
  /// batch envelopes (net/batch.h): single-pipeline plans and join plans
  /// with matching quorum settings share one round trip per chunk of
  /// `PlanHost::batch_max_ops()` plans. Plans the fused path cannot carry
  /// (unions, lone chunks) and plans whose fused leg fails (partial-batch
  /// corruption, quorum loss) re-run individually through Execute's full
  /// retry ladder. Slot i holds plan i's result.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<const QueryPlan*>& plans);

  /// ExecuteBatch with per-plan tenant attribution: `tenants[i]` is
  /// stamped on plan i's finalized trace (empty vector = none; otherwise
  /// sizes must match). A wave mixing tenants still fuses — only the
  /// trace stamp differs per slot.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<const QueryPlan*>& plans,
      const std::vector<std::string>& tenants);

  /// One provider's successful response; `provider` is the client-local
  /// leg index (the share evaluation point index).
  struct ProviderResponse {
    size_t provider;
    std::vector<uint8_t> bytes;
  };

  /// Quorum fan-out shared with the client's management paths
  /// (RefreshTable): parallel fan-out to the first `desired` providers,
  /// then sequential replacement of failed legs; succeeds once at least
  /// `minimum` responses arrived (`minimum` = 0 means `desired`). When
  /// `trace` is non-null every leg and the clock advance are recorded.
  /// Every leg runs through the resilience layer (net/resilience.h):
  /// `policy` adds deadlines, backoff retries, hedged reads and breaker
  /// admission; the default policy reproduces the classic two-phase
  /// fan-out byte-for-byte. `order` overrides the contact order
  /// (planner's scoreboard ranking; empty = identity). When `registry`
  /// is non-null, retry/hedge legs and breaker skips are charged to the
  /// `ssdb_resilience_*` series, mirroring the trace's leg flags.
  static Result<std::vector<ProviderResponse>> CallQuorum(
      Network* network, const std::vector<size_t>& providers,
      const std::vector<Buffer>& requests, size_t desired, size_t minimum,
      PlanNodeTrace* trace, const ResiliencePolicy& policy = ResiliencePolicy(),
      ProviderScoreboard* board = nullptr,
      const std::vector<size_t>& order = {},
      MetricsRegistry* registry = nullptr);

 private:
  /// Scatter-gather over the plan's routed shard groups: one parallel
  /// fan-out round across every group (clock advanced once, by the
  /// globally slowest leg — charged to the ShardMerge root) when the
  /// resilience policy is disabled, else sequential per-group rounds
  /// through the full resilient path. Partial results merge client-side
  /// per plan.scatter_action.
  Result<QueryResult> RunScatter(const QueryPlan& plan, QueryTrace* trace);
  /// The client-side merge half of RunScatter; `parts[i]` is pipeline
  /// i's decoded result.
  Result<QueryResult> MergeScatter(const QueryPlan& plan,
                                   std::vector<QueryResult>* parts,
                                   QueryTrace* trace);
  /// Providers a pipeline fans out to: its shard group's list in a
  /// sharded plan, the flat provider list otherwise.
  const std::vector<size_t>& PipeProviders(const PipelinePlan& pipe) const;
  /// Stamps the pipeline's shard on its trace records (sharded plans
  /// only; 1-shard traces stay identical to the seed system).
  void StampShard(const PipelinePlan& pipe, QueryTrace* trace);
  Result<QueryResult> RunUnion(const QueryPlan& plan, QueryTrace* trace);
  /// Fused union: all active disjunct branches travel in one batch
  /// envelope per provider. Returns NotSupported when the plan cannot be
  /// fused (fewer than two active branches, mismatched branch quorums) or
  /// when an envelope round fails outright — the caller then falls back
  /// to the classic per-branch path.
  Result<QueryResult> RunUnionBatched(const QueryPlan& plan,
                                      QueryTrace* trace);
  Result<QueryResult> RunPipelineWithRetry(const PipelinePlan& pipe,
                                           QueryTrace* trace);
  Result<QueryResult> RunPipeline(const PipelinePlan& pipe, size_t quorum,
                                  QueryTrace* trace);
  /// Builds the per-provider share-space requests; returns true when the
  /// predicates provably match nothing (no communication needed).
  Result<bool> BuildPipelineRequests(const PipelinePlan& pipe,
                                     std::vector<Buffer>* requests);
  /// The zero-communication result of a provably-empty pipeline: marks
  /// the pipeline's nodes executed with zero legs.
  Result<QueryResult> EmptyPipeline(const PipelinePlan& pipe,
                                    QueryTrace* trace);
  /// Response half of RunPipeline: majority-groups the (complete, header
  /// included) per-provider responses and evaluates the action.
  Result<QueryResult> DecodePipeline(
      const PipelinePlan& pipe,
      const std::vector<ProviderResponse>& responses, QueryTrace* trace);
  Result<QueryResult> RunFetch(const PipelinePlan& pipe,
                               const std::vector<ProviderResponse>& responses,
                               QueryTrace* trace);
  Result<QueryResult> RunJoin(const QueryPlan& plan, QueryTrace* trace);
  Result<bool> BuildJoinRequests(const QueryPlan& plan,
                                 std::vector<Buffer>* requests);
  Result<QueryResult> DecodeJoin(const QueryPlan& plan,
                                 const std::vector<ProviderResponse>& responses,
                                 QueryTrace* trace);
  Status ApplyOverlay(const PipelinePlan& pipe, QueryResult* result,
                      QueryTrace* trace);

  /// The trace record of `node` (skeleton built in Execute).
  PlanNodeTrace* Rec(const PlanNode* node, QueryTrace* trace);

  /// Charges the finished trace to the registry: per-kind query counter
  /// and clock histogram, per-node clock/row counters.
  void EmitQueryMetrics(const char* kind, const QueryTrace& trace);
  /// Lays out node/leg spans under `query_span` from the finished trace
  /// (pre-order depth-stack reproduces the plan tree's parentage).
  void EmitNodeSpans(const QueryTrace& trace, uint64_t query_span,
                     uint64_t query_start_us, Tracer* tracer);

  PlanHost* host_;
  std::map<const PlanNode*, size_t> record_index_;
  /// Stamped on finalized traces (set_tenant / per-plan batch tenants).
  std::string tenant_;
};

}  // namespace ssdb

#endif  // SSDB_PLAN_EXECUTOR_H_
