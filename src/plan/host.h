// The narrow interface the plan layer needs from the data source.
//
// The Planner consults only the catalog half (table metadata, n, k,
// sharing mode); the Executor additionally uses the share-space half:
// predicate rewriting into a provider's share space and k-of-n
// reconstruction. Keys, PRFs and the sharing context never leave the
// client — the plan layer sees shares and reconstructed plaintext only
// through these hooks.

#ifndef SSDB_PLAN_HOST_H_
#define SSDB_PLAN_HOST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "client/query.h"
#include "core/topology.h"
#include "field/fp61.h"
#include "net/network.h"
#include "net/resilience.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "plan/plan.h"
#include "provider/protocol.h"
#include "sss/order_preserving.h"
#include "sss/shamir.h"
#include "storage/share_table.h"

namespace ssdb {

/// \brief Catalog + share-space services the plan layer runs against.
/// Implemented by DataSourceClient.
class PlanHost {
 public:
  virtual ~PlanHost() = default;

  // --- Catalog (Planner) ------------------------------------------------
  virtual Result<PlanTable> ResolveTable(const std::string& name) = 0;
  /// Providers per shard group (the seed system's n when num_shards()==1).
  virtual size_t num_providers() const = 0;
  virtual size_t threshold_k() const = 0;
  /// Number of shard groups the row space is partitioned across (>= 1).
  virtual size_t num_shards() const = 0;
  /// How key codes map to shard groups (meaningful when num_shards() > 1).
  virtual Partitioner partitioner() const = 0;
  virtual OpSlotMode op_mode() const = 0;
  virtual size_t pending_lazy_ops() const = 0;
  /// Max sub-operations coalesced into one batch envelope per provider
  /// (net/batch.h); values below 2 disable executor-side batching and
  /// reproduce the per-op fan-outs byte-for-byte.
  virtual size_t batch_max_ops() const = 0;

  // --- Transport (Executor) ---------------------------------------------
  virtual Network* network() = 0;
  /// Network indices of the client's providers, in fan-out order.
  virtual const std::vector<size_t>& provider_indices() const = 0;
  /// Network indices of shard group `shard`'s providers; position p within
  /// the returned vector is share evaluation point p. Equals
  /// provider_indices() when num_shards() == 1.
  virtual const std::vector<size_t>& shard_provider_indices(
      size_t shard) const = 0;
  /// The client's resilience configuration (default: fully disabled).
  virtual const ResiliencePolicy& resilience() const = 0;
  /// The client's provider health scoreboard (never null; idle when the
  /// policy is disabled).
  virtual ProviderScoreboard* scoreboard() = 0;

  // --- Telemetry (Executor) ---------------------------------------------
  /// The deployment's metrics registry (never null). The executor charges
  /// per-query-kind, per-node and resilience series to it.
  virtual MetricsRegistry* metrics() = 0;
  /// The deployment's span tracer (never null; disabled by default).
  virtual Tracer* tracer() = 0;

  // --- Share space (Executor) -------------------------------------------
  /// Rewrites one plaintext predicate into provider `provider`'s share
  /// space (§V.A). Sets *always_empty when the predicate provably
  /// matches nothing (value outside the domain).
  virtual Result<SharePredicate> RewriteForProvider(const TableSchema& schema,
                                                    const Predicate& pred,
                                                    size_t provider,
                                                    bool* always_empty) = 0;
  /// Robust Lagrange reconstruction of one field element (tolerates one
  /// corrupt provider when >= k+2 shares are supplied).
  virtual Result<Fp61> ReconstructField(
      const std::vector<IndexedShare>& shares) = 0;
  /// Reconstructs one column value (decoded through the column codec).
  virtual Result<Value> ReconstructColumnValue(
      const ColumnSpec& column, const std::vector<IndexedShare>& shares,
      int64_t* code_out) = 0;
  /// Reconstructs one stored row from >= k provider copies, verifying the
  /// integrity tag on unprojected reads.
  /// `provider_rows` holds borrowed pointers into the caller's decoded
  /// responses; they are only read during the call.
  virtual Result<std::vector<Value>> ReconstructStoredRow(
      const PlanTable& table, const std::vector<const ColumnSpec*>& columns,
      bool full_row,
      const std::vector<std::pair<size_t, const StoredRow*>>& provider_rows) = 0;

  // --- Result post-processing / stats (Executor) ------------------------
  /// Merges the client-side pending write log over a row result (§V.C).
  virtual Status ApplyLazyOverlay(const PlanTable& table, const Query& query,
                                  QueryResult* result) = 0;
  virtual void OnRowsReconstructed(uint64_t rows) = 0;
  virtual void OnCorruptionRetry() = 0;
  /// Called once per executed plan with the finished trace, for
  /// aggregation into ClientStats.
  virtual void OnTraceFinalized(const QueryTrace& trace) = 0;
};

}  // namespace ssdb

#endif  // SSDB_PLAN_HOST_H_
