#include "plan/plan.h"

namespace ssdb {

const char* PlanNodeKindName(PlanNodeKind kind) {
  switch (kind) {
    case PlanNodeKind::kExactMatchScan:
      return "ExactMatchScan";
    case PlanNodeKind::kRangeScan:
      return "RangeScan";
    case PlanNodeKind::kFetchAllScan:
      return "FetchAllScan";
    case PlanNodeKind::kDisjunctUnion:
      return "DisjunctUnion";
    case PlanNodeKind::kAggregate:
      return "Aggregate";
    case PlanNodeKind::kEquiJoin:
      return "EquiJoin";
    case PlanNodeKind::kReconstruct:
      return "Reconstruct";
    case PlanNodeKind::kLazyOverlay:
      return "LazyOverlay";
    case PlanNodeKind::kShardMerge:
      return "ShardMerge";
  }
  return "Unknown";
}

namespace {

void RenderNode(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.label;
  *out += "\n";
  for (const std::string& detail : node.details) {
    out->append(static_cast<size_t>(depth) * 2 + 2, ' ');
    *out += detail;
    *out += "\n";
  }
  for (const auto& child : node.children) {
    RenderNode(*child, depth + 1, out);
  }
}

}  // namespace

std::string QueryPlan::Render() const {
  std::string out;
  if (root != nullptr) RenderNode(*root, 0, &out);
  out += "read quorum: " + std::to_string(k) + " of " + std::to_string(n) +
         " providers; writes fan out to " + std::to_string(n) + "\n";
  if (shards > 1) {
    out += "shard groups: " + std::to_string(routed_shards.size()) + " of " +
           std::to_string(shards) + " routed {";
    for (size_t i = 0; i < routed_shards.size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string(routed_shards[i]);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace ssdb
