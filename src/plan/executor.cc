#include "plan/executor.h"

#include <algorithm>
#include <optional>
#include <tuple>
#include <unordered_map>

#include "common/hash.h"
#include "net/batch.h"

namespace ssdb {

namespace {

/// Signature of a response payload, used to majority-group providers that
/// agree on a result set.
uint64_t PayloadSignature(const std::vector<uint8_t>& bytes) {
  return Fnv1a64(Slice(bytes));
}

void RecordLeg(PlanNodeTrace* trace, size_t provider, uint64_t bytes_sent,
               uint64_t bytes_received, uint64_t round_trip_us, bool ok) {
  if (trace == nullptr) return;
  PlanLegTrace leg;
  leg.provider = static_cast<uint32_t>(provider);
  leg.bytes_sent = bytes_sent;
  leg.bytes_received = bytes_received;
  leg.round_trip_us = round_trip_us;
  leg.ok = ok;
  trace->legs.push_back(leg);
  trace->bytes_sent += bytes_sent;
  trace->bytes_received += bytes_received;
}

void BuildSkeleton(const PlanNode* node, int depth, QueryTrace* trace,
                   std::map<const PlanNode*, size_t>* index) {
  if (node == nullptr) return;
  PlanNodeTrace rec;
  rec.name = PlanNodeKindName(node->kind);
  rec.label = node->label;
  rec.depth = depth;
  (*index)[node] = trace->nodes.size();
  trace->nodes.push_back(std::move(rec));
  for (const auto& child : node->children) {
    BuildSkeleton(child.get(), depth + 1, trace, index);
  }
}

}  // namespace

PlanNodeTrace* Executor::Rec(const PlanNode* node, QueryTrace* trace) {
  if (node == nullptr) return nullptr;
  auto it = record_index_.find(node);
  if (it == record_index_.end()) return nullptr;
  return &trace->nodes[it->second];
}

const std::vector<size_t>& Executor::PipeProviders(
    const PipelinePlan& pipe) const {
  return pipe.sharded ? host_->shard_provider_indices(pipe.shard)
                      : host_->provider_indices();
}

void Executor::StampShard(const PipelinePlan& pipe, QueryTrace* trace) {
  if (!pipe.sharded) return;
  const int shard = static_cast<int>(pipe.shard);
  for (const PlanNode* node :
       {pipe.scan, pipe.reconstruct, pipe.aggregate, pipe.overlay}) {
    if (PlanNodeTrace* rec = Rec(node, trace)) rec->shard = shard;
  }
}

Result<std::vector<Executor::ProviderResponse>> Executor::CallQuorum(
    Network* network, const std::vector<size_t>& providers,
    const std::vector<Buffer>& requests, size_t desired, size_t minimum,
    PlanNodeTrace* trace, const ResiliencePolicy& policy,
    ProviderScoreboard* board, const std::vector<size_t>& order,
    MetricsRegistry* registry) {
  const uint64_t start_us = network->clock().now_us();
  QuorumResult q = RunResilientQuorum(network, providers, requests, desired,
                                      minimum, order, policy, board);
  if (trace != nullptr) {
    if (trace->round_trips == 0) trace->clock_start_us = start_us;
    trace->round_trips += q.fanout_rounds;
    trace->clock_us += q.clock_advance_us;
    trace->hedged += q.hedges;
    trace->breaker_skips += q.breaker_skips;
    for (const ResilientLeg& leg : q.legs) {
      RecordLeg(trace, leg.provider, leg.bytes_sent, leg.bytes_received,
                leg.round_trip_us, leg.ok);
      PlanLegTrace& rec = trace->legs.back();
      rec.attempt = leg.attempt;
      rec.hedge = leg.hedge;
      rec.deadline_exceeded = leg.deadline_exceeded;
      if (leg.attempt > 1) trace->attempts++;
      if (leg.deadline_exceeded) trace->deadline_exceeded++;
    }
  }
  if (registry != nullptr) {
    for (const ResilientLeg& leg : q.legs) {
      const MetricLabels by_provider = {
          {"provider", std::to_string(leg.provider)}};
      if (leg.attempt > 1) {
        registry->GetCounter("ssdb_resilience_retry_legs_total", by_provider)
            ->Inc();
      }
      if (leg.hedge) {
        registry->GetCounter("ssdb_resilience_hedge_legs_total", by_provider)
            ->Inc();
      }
    }
    if (q.breaker_skips) {
      // Skipped providers never became legs, so the trace cannot name
      // them; the counter is therefore unlabelled.
      registry->GetCounter("ssdb_resilience_breaker_skips_total")
          ->Inc(q.breaker_skips);
    }
  }
  if (!q.status.ok()) return q.status;
  std::vector<ProviderResponse> ok;
  ok.reserve(q.responses.size());
  for (QuorumResult::Response& r : q.responses) {
    ok.push_back(ProviderResponse{r.slot, std::move(r.bytes)});
  }
  return ok;
}

namespace {

/// Query taxonomy for the `{kind}` metric label and the query span name.
const char* QueryKindName(const QueryPlan& plan) {
  if (plan.is_join) return "join";
  if (plan.is_union) return "union";
  // A scattered MEDIAN runs per-shard fetch pipelines; the logical kind
  // is still the scatter action.
  switch (plan.is_scatter ? plan.scatter_action
                          : plan.pipelines.front().action) {
    case QueryAction::kFetchRows: return "fetch";
    case QueryAction::kFetchRowIds: return "fetch_ids";
    case QueryAction::kCount: return "count";
    case QueryAction::kPartialSum: return "sum";
    case QueryAction::kArgMin: return "argmin";
    case QueryAction::kArgMax: return "argmax";
    case QueryAction::kMedian: return "median";
    case QueryAction::kGroupedSum: return "grouped_sum";
  }
  return "unknown";
}

}  // namespace

Result<QueryResult> Executor::Execute(const QueryPlan& plan) {
  QueryTrace trace;
  record_index_.clear();
  BuildSkeleton(plan.root.get(), 0, &trace, &record_index_);

  // The query span brackets live execution on this thread (breaker
  // events fired mid-query attach to it); node/leg spans are laid out
  // post-hoc from the finished trace, whose clock figures are exact.
  const char* kind = QueryKindName(plan);
  Tracer* tracer = host_->tracer();
  uint64_t query_span = 0;
  uint64_t query_start_us = 0;
  if (tracer != nullptr && tracer->enabled()) {
    query_start_us = host_->network()->clock().now_us();
    query_span = tracer->StartSpan(std::string("query:") + kind, "query",
                                   query_start_us);
  }

  Result<QueryResult> result =
      plan.is_join      ? RunJoin(plan, &trace)
      : plan.is_scatter ? RunScatter(plan, &trace)
      : plan.is_union   ? RunUnion(plan, &trace)
                        : RunPipelineWithRetry(plan.pipelines.front(), &trace);

  if (query_span != 0) {
    EmitNodeSpans(trace, query_span, query_start_us, tracer);
    tracer->EndSpan(query_span, host_->network()->clock().now_us());
  }
  if (result.ok()) {
    trace.tenant = tenant_;
    host_->OnTraceFinalized(trace);
    EmitQueryMetrics(kind, trace);
    result->trace = std::move(trace);
  }
  return result;
}

void Executor::EmitQueryMetrics(const char* kind, const QueryTrace& trace) {
  MetricsRegistry* registry = host_->metrics();
  if (registry == nullptr) return;
  const MetricLabels by_kind = {{"kind", kind}};
  registry->GetCounter("ssdb_query_total", by_kind)->Inc();
  registry->GetHistogram("ssdb_query_clock_us", by_kind)
      ->Observe(trace.total_clock_us());
  for (const PlanNodeTrace& node : trace.nodes) {
    if (!node.executed) continue;
    const MetricLabels by_node = {{"node", node.name}};
    registry->GetCounter("ssdb_plan_node_clock_us_total", by_node)
        ->Inc(node.clock_us);
    registry->GetCounter("ssdb_plan_node_rows_scanned_total", by_node)
        ->Inc(node.rows_scanned);
  }
}

void Executor::EmitNodeSpans(const QueryTrace& trace, uint64_t query_span,
                             uint64_t query_start_us, Tracer* tracer) {
  // Pre-order + depth reproduces the plan tree: the innermost ancestor
  // on the depth stack is the parent. A node that never contacted a
  // provider inherits its parent's start time (it did no clocked work).
  struct Frame {
    int depth;
    uint64_t span;
    uint64_t ts;
  };
  std::vector<Frame> stack;
  for (const PlanNodeTrace& node : trace.nodes) {
    while (!stack.empty() && stack.back().depth >= node.depth) {
      stack.pop_back();
    }
    const uint64_t parent = stack.empty() ? query_span : stack.back().span;
    const uint64_t parent_ts =
        stack.empty() ? query_start_us : stack.back().ts;
    const uint64_t ts =
        node.clock_start_us != 0 ? node.clock_start_us : parent_ts;
    const uint64_t span = tracer->AddSpan(
        "node:" + node.name, "node", ts, node.clock_us, parent,
        {{"label", node.label},
         {"executed", node.executed ? "1" : "0"},
         {"rows_scanned", std::to_string(node.rows_scanned)},
         {"rows_reconstructed", std::to_string(node.rows_reconstructed)},
         {"shares_used", std::to_string(node.shares_used)}});
    for (const PlanLegTrace& leg : node.legs) {
      // Legs are placed at the node's start with their modelled round
      // trip as duration: in the cost model every leg of a fan-out round
      // departs when the round does.
      tracer->AddSpan(
          "leg:p" + std::to_string(leg.provider), "leg", ts,
          leg.round_trip_us, span,
          {{"provider", std::to_string(leg.provider)},
           {"ok", leg.ok ? "1" : "0"},
           {"attempt", std::to_string(leg.attempt)},
           {"hedge", leg.hedge ? "1" : "0"},
           {"deadline_exceeded", leg.deadline_exceeded ? "1" : "0"},
           {"bytes_sent", std::to_string(leg.bytes_sent)},
           {"bytes_received", std::to_string(leg.bytes_received)}});
    }
    stack.push_back(Frame{node.depth, span, ts});
  }
}

std::vector<Result<QueryResult>> Executor::ExecuteBatch(
    const std::vector<const QueryPlan*>& plans) {
  return ExecuteBatch(plans, {});
}

std::vector<Result<QueryResult>> Executor::ExecuteBatch(
    const std::vector<const QueryPlan*>& plans,
    const std::vector<std::string>& tenants) {
  // Per-slot attribution; falls back to the executor-wide set_tenant
  // stamp when the caller passed no per-plan tenants.
  auto tenant_of = [&](size_t slot) -> const std::string& {
    return slot < tenants.size() ? tenants[slot] : tenant_;
  };
  std::vector<std::optional<Result<QueryResult>>> slots(plans.size());
  const size_t batch_max = host_->batch_max_ops();
  Tracer* tracer = host_->tracer();

  // Plans the envelope cannot carry — unions (they batch internally),
  // provably-empty fan-outs, lone chunk remainders — and every fused leg
  // that fails run individually at the end, where Execute may freely
  // rebuild the node->trace index.
  std::vector<size_t> individual;
  std::vector<QueryTrace> traces(plans.size());
  record_index_.clear();

  struct Item {
    size_t slot;
    std::vector<Buffer> requests;  // per provider
  };
  // Only identical fan-outs can share an envelope: group by (join?,
  // shard group, desired, minimum, contact order).
  std::map<std::tuple<bool, size_t, size_t, size_t, std::vector<size_t>>,
           std::vector<Item>>
      groups;
  for (size_t i = 0; i < plans.size(); ++i) {
    const QueryPlan& plan = *plans[i];
    // Scatter plans and multi-shard joins fan out to several shard
    // groups at once; they run individually where Execute owns the
    // cross-group orchestration.
    if (batch_max < 2 || plan.is_union || plan.is_scatter ||
        (plan.is_join && plan.shards > 1)) {
      individual.push_back(i);
      continue;
    }
    BuildSkeleton(plan.root.get(), 0, &traces[i], &record_index_);
    std::vector<Buffer> requests;
    Result<bool> always_empty =
        plan.is_join
            ? BuildJoinRequests(plan, &requests)
            : BuildPipelineRequests(plan.pipelines.front(), &requests);
    if (!always_empty.ok() || *always_empty) {
      individual.push_back(i);  // zero communication or an error: run plain
      continue;
    }
    const size_t desired = plan.is_join
                               ? plan.join.quorum_desired
                               : plan.pipelines.front().quorum_desired;
    const size_t minimum = plan.is_join ? plan.join.quorum_min
                                        : plan.pipelines.front().quorum_min;
    const std::vector<size_t>& order =
        plan.is_join ? plan.join.quorum_order
                     : plan.pipelines.front().quorum_order;
    const size_t shard =
        plan.is_join ? 0 : plan.pipelines.front().shard;
    groups[{plan.is_join, shard, desired, minimum, order}].push_back(
        Item{i, std::move(requests)});
  }

  const auto fanout_node = [](const QueryPlan& p) -> const PlanNode* {
    return p.is_join ? p.join.join : p.pipelines.front().scan;
  };
  for (auto& [key, items] : groups) {
    const std::vector<size_t>& providers =
        host_->shard_provider_indices(std::get<1>(key));
    const size_t desired = std::get<2>(key);
    const size_t minimum = std::get<3>(key);
    const std::vector<size_t>& order = std::get<4>(key);
    for (size_t begin = 0; begin < items.size(); begin += batch_max) {
      const size_t end = std::min(items.size(), begin + batch_max);
      const size_t span = end - begin;
      if (span == 1) {
        individual.push_back(items[begin].slot);
        continue;
      }

      // One envelope per provider carrying this chunk's requests; the
      // resilience layer treats it as a single call.
      std::vector<Buffer> envelopes(providers.size());
      for (size_t p = 0; p < providers.size(); ++p) {
        std::vector<Slice> ops;
        ops.reserve(span);
        for (size_t j = begin; j < end; ++j) {
          ops.push_back(items[j].requests[p].AsSlice());
        }
        EncodeBatchRequest(ops, &envelopes[p]);
        ChargeBatchEnvelope(host_->metrics(), span);
      }
      // Legs and clock are recorded once, on the first plan's fan-out
      // node: the envelope's bytes belong to exactly one trace so the
      // per-provider totals still reconcile with ChannelStats.
      const size_t lead_slot = items[begin].slot;
      PlanNodeTrace* lead_rec =
          Rec(fanout_node(*plans[lead_slot]), &traces[lead_slot]);
      const uint64_t start_us = host_->network()->clock().now_us();
      Result<std::vector<ProviderResponse>> resp_r = CallQuorum(
          host_->network(), providers, envelopes, desired, minimum, lead_rec,
          host_->resilience(), host_->scoreboard(), order, host_->metrics());
      if (!resp_r.ok()) {
        for (size_t j = begin; j < end; ++j) {
          individual.push_back(items[j].slot);
        }
        continue;
      }

      // Split each provider's envelope into per-plan sub-responses; a
      // provider whose envelope does not parse is dropped for the whole
      // chunk.
      std::vector<std::vector<ProviderResponse>> per_item(span);
      for (const ProviderResponse& r : *resp_r) {
        Decoder dec(Slice(r.bytes));
        if (!DecodeResponseHeader(&dec).ok()) continue;
        std::vector<Slice> subs;
        if (!DecodeBatchResponsePayload(&dec, &subs).ok()) continue;
        if (subs.size() != span) continue;
        for (size_t j = 0; j < span; ++j) {
          per_item[j].push_back(ProviderResponse{
              r.provider,
              std::vector<uint8_t>(subs[j].data(),
                                   subs[j].data() + subs[j].size())});
        }
      }

      for (size_t j = 0; j < span; ++j) {
        const size_t slot = items[begin + j].slot;
        const QueryPlan& plan = *plans[slot];
        QueryTrace* trace = &traces[slot];
        if (PlanNodeTrace* rec = Rec(fanout_node(plan), trace)) {
          rec->executed = true;
        }
        if (!plan.is_join) StampShard(plan.pipelines.front(), trace);
        Result<QueryResult> part =
            plan.is_join
                ? DecodeJoin(plan, per_item[j], trace)
                : DecodePipeline(plan.pipelines.front(), per_item[j], trace);
        if (part.ok() && !plan.is_join) {
          const Status st =
              ApplyOverlay(plan.pipelines.front(), &part.value(), trace);
          if (!st.ok()) part = st;
        }
        if (!part.ok()) {
          const Status& st = part.status();
          if (st.IsNotFound() || st.IsNotSupported() ||
              st.IsInvalidArgument()) {
            // The query's own fault; re-running cannot change the answer.
            slots[slot] = std::move(part);
          } else {
            // Partial-batch failure (corruption, quorum loss): this plan
            // alone re-runs through Execute's full retry ladder.
            individual.push_back(slot);
          }
          continue;
        }
        const char* kind = QueryKindName(plan);
        if (tracer != nullptr && tracer->enabled()) {
          const uint64_t span_id =
              tracer->StartSpan(std::string("query:") + kind, "query",
                                start_us);
          EmitNodeSpans(*trace, span_id, start_us, tracer);
          tracer->EndSpan(span_id, host_->network()->clock().now_us());
        }
        trace->tenant = tenant_of(slot);
        host_->OnTraceFinalized(*trace);
        EmitQueryMetrics(kind, *trace);
        part->trace = std::move(*trace);
        slots[slot] = std::move(part);
      }
    }
  }

  std::sort(individual.begin(), individual.end());
  const std::string saved_tenant = tenant_;
  for (size_t slot : individual) {
    tenant_ = tenant_of(slot);
    slots[slot] = Execute(*plans[slot]);
  }
  tenant_ = saved_tenant;
  std::vector<Result<QueryResult>> out;
  out.reserve(plans.size());
  for (auto& s : slots) {
    if (s.has_value()) {
      out.push_back(std::move(*s));
    } else {
      out.push_back(Status::Internal("client: batch plan not executed"));
    }
  }
  return out;
}

Result<QueryResult> Executor::RunUnion(const QueryPlan& plan,
                                       QueryTrace* trace) {
  // One sub-query per disjunct (conjuncts are applied to each); results
  // are unioned by row id, first branch winning on duplicates. With
  // coalescing enabled the branches share one envelope round trip per
  // provider instead of one fan-out each.
  if (host_->batch_max_ops() >= 2 && plan.pipelines.size() >= 2) {
    Result<QueryResult> fused = RunUnionBatched(plan, trace);
    if (fused.ok() || !fused.status().IsNotSupported()) return fused;
    // NotSupported = the plan cannot travel as one envelope (or the
    // envelope round failed outright): classic per-branch path below.
  }
  std::map<uint64_t, std::vector<Value>> merged;
  for (const PipelinePlan& pipe : plan.pipelines) {
    SSDB_ASSIGN_OR_RETURN(QueryResult part, RunPipelineWithRetry(pipe, trace));
    for (size_t i = 0; i < part.rows.size(); ++i) {
      merged.emplace(part.row_ids[i], std::move(part.rows[i]));
    }
  }
  QueryResult out;
  for (auto& [id, row] : merged) {
    out.row_ids.push_back(id);
    out.rows.push_back(std::move(row));
  }
  out.count = out.rows.size();
  if (PlanNodeTrace* rec = Rec(plan.root.get(), trace)) {
    rec->executed = true;
    rec->rows_reconstructed = out.rows.size();
  }
  return out;
}

Result<QueryResult> Executor::RunUnionBatched(const QueryPlan& plan,
                                              QueryTrace* trace) {
  const size_t num_providers = host_->num_providers();
  const size_t batch_max = host_->batch_max_ops();

  // Build every branch's per-provider requests up front; provably-empty
  // branches complete with zero communication and contribute no rows.
  std::vector<const PipelinePlan*> active;
  std::vector<std::vector<Buffer>> branch_requests;
  for (const PipelinePlan& pipe : plan.pipelines) {
    std::vector<Buffer> reqs;
    SSDB_ASSIGN_OR_RETURN(bool branch_empty,
                          BuildPipelineRequests(pipe, &reqs));
    if (branch_empty) {
      SSDB_RETURN_IF_ERROR(EmptyPipeline(pipe, trace).status());
      continue;
    }
    active.push_back(&pipe);
    branch_requests.push_back(std::move(reqs));
  }
  if (active.size() < 2) {
    return Status::NotSupported("batch: too few active union branches");
  }
  const PipelinePlan* lead = active.front();
  for (const PipelinePlan* pipe : active) {
    if (pipe->quorum_desired != lead->quorum_desired ||
        pipe->quorum_min != lead->quorum_min ||
        pipe->quorum_order != lead->quorum_order) {
      return Status::NotSupported("batch: union branch quorums differ");
    }
    // A batch envelope travels to exactly one shard group's providers;
    // branches routed to different groups fall back to per-branch
    // fan-outs.
    if (pipe->shard != lead->shard) {
      return Status::NotSupported("batch: union branches span shard groups");
    }
  }
  const std::vector<size_t>& providers = PipeProviders(*lead);

  PlanNodeTrace* root_rec = Rec(plan.root.get(), trace);
  std::map<uint64_t, std::vector<Value>> merged;
  for (size_t begin = 0; begin < active.size(); begin += batch_max) {
    const size_t end = std::min(active.size(), begin + batch_max);
    const size_t span = end - begin;
    if (span == 1) {
      // A lone trailing branch gains nothing from an envelope.
      SSDB_ASSIGN_OR_RETURN(QueryResult part,
                            RunPipelineWithRetry(*active[begin], trace));
      for (size_t i = 0; i < part.rows.size(); ++i) {
        merged.emplace(part.row_ids[i], std::move(part.rows[i]));
      }
      continue;
    }

    // One envelope per provider carrying this chunk's branch requests;
    // the resilience layer sees it as a single call (deadline, retries,
    // hedging and the scoreboard all charge one request).
    std::vector<Buffer> requests(num_providers);
    for (size_t p = 0; p < num_providers; ++p) {
      std::vector<Slice> ops;
      ops.reserve(span);
      for (size_t b = begin; b < end; ++b) {
        ops.push_back(branch_requests[b][p].AsSlice());
      }
      EncodeBatchRequest(ops, &requests[p]);
      ChargeBatchEnvelope(host_->metrics(), span);
    }
    Result<std::vector<ProviderResponse>> resp_r = CallQuorum(
        host_->network(), providers, requests, lead->quorum_desired,
        lead->quorum_min, root_rec, host_->resilience(), host_->scoreboard(),
        lead->quorum_order, host_->metrics());
    if (!resp_r.ok()) {
      // Envelope round lost: let the caller fall back to the classic
      // per-branch path with its own retry ladder.
      return Status::NotSupported("batch: union envelope round failed");
    }

    // Split each provider's envelope into per-branch sub-responses; a
    // provider whose envelope does not parse is dropped for the whole
    // chunk (its sub-responses are untrustworthy).
    std::vector<std::vector<ProviderResponse>> per_branch(span);
    for (const ProviderResponse& r : *resp_r) {
      Decoder dec(Slice(r.bytes));
      if (!DecodeResponseHeader(&dec).ok()) continue;
      std::vector<Slice> subs;
      if (!DecodeBatchResponsePayload(&dec, &subs).ok()) continue;
      if (subs.size() != span) continue;
      for (size_t b = 0; b < span; ++b) {
        per_branch[b].push_back(ProviderResponse{
            r.provider,
            std::vector<uint8_t>(subs[b].data(),
                                 subs[b].data() + subs[b].size())});
      }
    }

    for (size_t b = 0; b < span; ++b) {
      const PipelinePlan& pipe = *active[begin + b];
      StampShard(pipe, trace);
      if (PlanNodeTrace* rec = Rec(pipe.scan, trace)) rec->executed = true;
      Result<QueryResult> part = DecodePipeline(pipe, per_branch[b], trace);
      // Partial-batch failures retry at sub-batch granularity: only the
      // affected branch re-runs, individually, at the widest quorum —
      // mirroring RunPipelineWithRetry's ladder.
      if (!part.ok() && part.status().IsUnavailable() &&
          host_->resilience().enabled() &&
          pipe.quorum_desired < host_->num_providers()) {
        host_->metrics()->GetCounter("ssdb_plan_replans_total")->Inc();
        part = RunPipeline(pipe, host_->num_providers(), trace);
      }
      if (!part.ok() && part.status().IsCorruption() &&
          host_->threshold_k() < host_->num_providers()) {
        host_->OnCorruptionRetry();
        part = RunPipeline(pipe, host_->num_providers(), trace);
      }
      if (!part.ok()) return part.status();
      SSDB_RETURN_IF_ERROR(ApplyOverlay(pipe, &part.value(), trace));
      for (size_t i = 0; i < part->rows.size(); ++i) {
        merged.emplace(part->row_ids[i], std::move(part->rows[i]));
      }
    }
  }

  QueryResult out;
  for (auto& [id, row] : merged) {
    out.row_ids.push_back(id);
    out.rows.push_back(std::move(row));
  }
  out.count = out.rows.size();
  if (root_rec != nullptr) {
    root_rec->executed = true;
    root_rec->rows_reconstructed = out.rows.size();
  }
  return out;
}

Status Executor::ApplyOverlay(const PipelinePlan& pipe, QueryResult* result,
                              QueryTrace* trace) {
  // The host no-ops when the log is empty or the query aggregates, so
  // this mirrors the former unconditional ApplyLazyToResult call even
  // when the planner emitted no overlay node.
  SSDB_RETURN_IF_ERROR(
      host_->ApplyLazyOverlay(pipe.table, pipe.query, result));
  if (PlanNodeTrace* rec = Rec(pipe.overlay, trace)) {
    rec->executed = true;
    rec->rows_reconstructed = result->rows.size();
  }
  return Status::OK();
}

Result<QueryResult> Executor::RunPipelineWithRetry(const PipelinePlan& pipe,
                                                   QueryTrace* trace) {
  Result<QueryResult> first = RunPipeline(pipe, pipe.quorum_desired, trace);
  if (!first.ok() && first.status().IsUnavailable() &&
      host_->resilience().enabled() &&
      pipe.quorum_desired < host_->num_providers()) {
    // Graceful degradation: too few providers answered the preferred
    // quorum (breaker skips, flapping links). Re-plan once with the
    // widest quorum — the breaker still gates every contact.
    host_->metrics()->GetCounter("ssdb_plan_replans_total")->Inc();
    first = RunPipeline(pipe, host_->num_providers(), trace);
  }
  if (first.ok() || !first.status().IsCorruption() ||
      host_->threshold_k() == host_->num_providers()) {
    if (first.ok()) {
      SSDB_RETURN_IF_ERROR(ApplyOverlay(pipe, &first.value(), trace));
    }
    return first;
  }
  // A corrupt or inconsistent quorum: retry once against every provider,
  // letting the consistency checks localize the bad one.
  host_->OnCorruptionRetry();
  Result<QueryResult> retry =
      RunPipeline(pipe, host_->num_providers(), trace);
  if (retry.ok()) {
    SSDB_RETURN_IF_ERROR(ApplyOverlay(pipe, &retry.value(), trace));
  }
  return retry;
}

Result<bool> Executor::BuildPipelineRequests(const PipelinePlan& pipe,
                                             std::vector<Buffer>* requests) {
  // One request per share evaluation point; the rewrites depend only on
  // the point, so the same vector serves any shard group.
  const size_t num_providers = host_->num_providers();
  const TableSchema& schema = *pipe.table.schema;

  // Rewrite per provider (§V.A).
  requests->clear();
  requests->resize(num_providers);
  bool always_empty = false;
  for (size_t p = 0; p < num_providers; ++p) {
    QueryRequest q;
    q.table_id = pipe.table.id;
    q.action = pipe.action;
    q.target_column = pipe.target_column;
    q.group_column = pipe.group_column;
    q.projection = pipe.projection;
    for (const Predicate& pred : pipe.query.predicates()) {
      SSDB_ASSIGN_OR_RETURN(
          SharePredicate sp,
          host_->RewriteForProvider(schema, pred, p, &always_empty));
      if (always_empty) break;
      q.predicates.push_back(sp);
    }
    if (always_empty) break;
    EncodeQuery(q, &(*requests)[p]);
  }
  return always_empty;
}

Result<QueryResult> Executor::EmptyPipeline(const PipelinePlan& pipe,
                                            QueryTrace* trace) {
  // Provably no matches; zero communication. A median over nothing has no
  // defined value, so it reports the empty set instead of a silent zero.
  if (pipe.action == QueryAction::kMedian) {
    return Status::NotFound("client: MEDIAN over an empty result set");
  }
  // The whole pipeline still "ran" (trivially) for trace purposes.
  StampShard(pipe, trace);
  if (PlanNodeTrace* rec = Rec(pipe.scan, trace)) rec->executed = true;
  if (PlanNodeTrace* rec = Rec(pipe.aggregate, trace)) rec->executed = true;
  if (PlanNodeTrace* rec = Rec(pipe.reconstruct, trace)) rec->executed = true;
  return QueryResult();
}

Result<QueryResult> Executor::RunPipeline(const PipelinePlan& pipe,
                                          size_t quorum, QueryTrace* trace) {
  const std::vector<size_t>& providers = PipeProviders(pipe);
  StampShard(pipe, trace);
  PlanNodeTrace* scan_rec = Rec(pipe.scan, trace);

  std::vector<Buffer> requests;
  SSDB_ASSIGN_OR_RETURN(bool always_empty,
                        BuildPipelineRequests(pipe, &requests));
  if (always_empty) return EmptyPipeline(pipe, trace);

  SSDB_ASSIGN_OR_RETURN(
      std::vector<ProviderResponse> responses,
      CallQuorum(host_->network(), providers, requests, quorum,
                 pipe.quorum_min, scan_rec, host_->resilience(),
                 host_->scoreboard(), pipe.quorum_order, host_->metrics()));
  if (scan_rec != nullptr) scan_rec->executed = true;
  return DecodePipeline(pipe, responses, trace);
}

Result<QueryResult> Executor::DecodePipeline(
    const PipelinePlan& pipe, const std::vector<ProviderResponse>& responses,
    QueryTrace* trace) {
  const TableSchema& schema = *pipe.table.schema;
  PlanNodeTrace* agg_rec = Rec(pipe.aggregate, trace);

  // Majority-group identical payloads to tolerate corrupt responses.
  std::unordered_map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < responses.size(); ++i) {
    groups[PayloadSignature(responses[i].bytes)].push_back(i);
  }

  switch (pipe.action) {
    case QueryAction::kCount: {
      std::vector<size_t> best;
      for (auto& [sig, members] : groups) {
        if (members.size() > best.size()) best = members;
      }
      // Require a strict majority (or unanimity) of the responses; a
      // split vote means someone is corrupt and triggers the wider retry.
      if (best.size() != responses.size() &&
          best.size() * 2 <= responses.size()) {
        return Status::Corruption("client: providers disagree on the count");
      }
      const auto& r = responses[best.front()];
      Decoder dec(Slice(r.bytes));
      SSDB_RETURN_IF_ERROR(DecodeResponseHeader(&dec));
      QueryResult out;
      SSDB_RETURN_IF_ERROR(DecodeCountResponse(&dec, &out.count));
      out.aggregate_int = static_cast<int64_t>(out.count);
      if (agg_rec != nullptr) {
        agg_rec->executed = true;
        agg_rec->shares_used = best.size();
      }
      return out;
    }
    case QueryAction::kPartialSum: {
      // Sum shares legitimately differ per provider; only counts must
      // agree.
      std::vector<IndexedShare> sum_shares;
      std::vector<uint64_t> counts;
      for (const auto& r : responses) {
        Decoder dec(Slice(r.bytes));
        Status st = DecodeResponseHeader(&dec);
        if (!st.ok()) continue;
        PartialAggregate agg;
        if (!DecodeAggResponse(&dec, &agg).ok()) continue;
        sum_shares.push_back(
            IndexedShare{r.provider, Fp61::FromCanonical(agg.sum_share)});
        counts.push_back(agg.count);
      }
      if (sum_shares.size() < host_->threshold_k()) {
        return Status::Unavailable("client: too few aggregate responses");
      }
      // Majority count.
      std::sort(counts.begin(), counts.end());
      const uint64_t count = counts[counts.size() / 2];
      SSDB_ASSIGN_OR_RETURN(Fp61 sum_w, host_->ReconstructField(sum_shares));
      const ColumnSpec& col = schema.columns[pipe.target_column];
      SSDB_ASSIGN_OR_RETURN(OpDomain dom, col.CodeDomain());
      QueryResult out;
      out.count = count;
      out.aggregate_int = static_cast<int64_t>(sum_w.value()) +
                          static_cast<int64_t>(count) * dom.lo;
      out.aggregate_double = count == 0
                                 ? 0.0
                                 : static_cast<double>(out.aggregate_int) /
                                       static_cast<double>(count);
      if (agg_rec != nullptr) {
        agg_rec->executed = true;
        agg_rec->shares_used = sum_shares.size();
        agg_rec->rows_reconstructed = 1;
      }
      return out;
    }
    case QueryAction::kGroupedSum: {
      // Zip the per-provider group lists (ordered by representative row
      // id at every provider) and reconstruct key + sum per group.
      struct ParsedGroups {
        size_t provider;
        std::vector<GroupPartial> groups;
      };
      std::vector<ParsedGroups> parsed;
      for (const auto& r : responses) {
        Decoder dec(Slice(r.bytes));
        Status st = DecodeResponseHeader(&dec);
        if (!st.ok()) {
          if (st.IsNotSupported() || st.IsInvalidArgument()) return st;
          continue;
        }
        ParsedGroups p;
        p.provider = r.provider;
        if (!DecodeGroupedAggResponse(&dec, &p.groups).ok()) continue;
        parsed.push_back(std::move(p));
      }
      if (parsed.size() < host_->threshold_k()) {
        return Status::Unavailable("client: too few grouped responses");
      }
      const size_t num_groups = parsed.front().groups.size();
      for (const auto& p : parsed) {
        if (p.groups.size() != num_groups) {
          return Status::Corruption(
              "client: providers disagree on the group count");
        }
      }
      const ColumnSpec& key_col = schema.columns[pipe.group_column];
      const ColumnSpec& sum_col = schema.columns[pipe.target_column];
      SSDB_ASSIGN_OR_RETURN(OpDomain sum_dom, sum_col.CodeDomain());
      QueryResult out;
      for (size_t g = 0; g < num_groups; ++g) {
        std::vector<IndexedShare> key_shares, sum_shares;
        uint64_t count = parsed.front().groups[g].count;
        for (const auto& p : parsed) {
          const GroupPartial& gp = p.groups[g];
          if (gp.rep_row_id != parsed.front().groups[g].rep_row_id ||
              gp.count != count) {
            return Status::Corruption(
                "client: providers disagree on a group's membership");
          }
          key_shares.push_back(
              IndexedShare{p.provider, Fp61::FromCanonical(gp.key_share)});
          sum_shares.push_back(
              IndexedShare{p.provider, Fp61::FromCanonical(gp.sum_share)});
        }
        GroupResult group;
        group.rep_row_id = parsed.front().groups[g].rep_row_id;
        SSDB_ASSIGN_OR_RETURN(
            group.key,
            host_->ReconstructColumnValue(key_col, key_shares, nullptr));
        SSDB_ASSIGN_OR_RETURN(Fp61 sum_w, host_->ReconstructField(sum_shares));
        group.count = count;
        group.sum = static_cast<int64_t>(sum_w.value()) +
                    static_cast<int64_t>(count) * sum_dom.lo;
        group.average = count == 0 ? 0.0
                                   : static_cast<double>(group.sum) /
                                         static_cast<double>(count);
        out.count += count;
        out.groups.push_back(std::move(group));
      }
      if (agg_rec != nullptr) {
        agg_rec->executed = true;
        agg_rec->shares_used = parsed.size();
        agg_rec->rows_reconstructed = num_groups;
      }
      return out;
    }
    case QueryAction::kFetchRows:
    case QueryAction::kArgMin:
    case QueryAction::kArgMax:
    case QueryAction::kMedian: {
      SSDB_ASSIGN_OR_RETURN(QueryResult out,
                            RunFetch(pipe, responses, trace));
      if (pipe.action == QueryAction::kMedian && out.rows.empty()) {
        // No matching rows: the median is undefined, and silently
        // returning aggregate 0 would be indistinguishable from a real
        // median of zero.
        return Status::NotFound("client: MEDIAN over an empty result set");
      }
      if (pipe.action != QueryAction::kFetchRows && !out.rows.empty()) {
        // With projection the aggregate column may sit at a new position;
        // find it in the result columns.
        size_t pos = pipe.result_columns.size();
        for (size_t c = 0; c < pipe.result_columns.size(); ++c) {
          if (pipe.result_columns[c] ==
              &schema.columns[pipe.target_column]) {
            pos = c;
          }
        }
        if (pos < pipe.result_columns.size()) {
          SSDB_ASSIGN_OR_RETURN(
              int64_t code,
              pipe.result_columns[pos]->EncodeToCode(out.rows.front()[pos]));
          out.aggregate_int = code;
          out.aggregate_double = static_cast<double>(code);
        }
      }
      out.count = out.rows.size();
      if (agg_rec != nullptr) agg_rec->executed = true;
      return out;
    }
    case QueryAction::kFetchRowIds:
      break;
  }
  return Status::Internal("client: unhandled action");
}

Result<QueryResult> Executor::RunFetch(
    const PipelinePlan& pipe, const std::vector<ProviderResponse>& responses,
    QueryTrace* trace) {
  PlanNodeTrace* scan_rec = Rec(pipe.scan, trace);
  PlanNodeTrace* rec_rec = Rec(pipe.reconstruct, trace);
  // Decode rows per provider; majority-group by the row id sequence.
  struct Parsed {
    size_t provider;
    std::vector<StoredRow> rows;
  };
  std::vector<Parsed> parsed;
  for (const auto& r : responses) {
    Decoder dec(Slice(r.bytes));
    Status st = DecodeResponseHeader(&dec);
    if (!st.ok()) {
      if (st.IsNotSupported() || st.IsInvalidArgument() || st.IsNotFound()) {
        return st;  // a semantic error is the query's fault, not noise
      }
      continue;
    }
    Parsed p;
    p.provider = r.provider;
    if (!DecodeRowsResponse(&dec, pipe.response_layout, &p.rows).ok()) {
      continue;
    }
    if (scan_rec != nullptr) scan_rec->rows_scanned += p.rows.size();
    parsed.push_back(std::move(p));
  }

  std::unordered_map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < parsed.size(); ++i) {
    uint64_t sig = kFnv1a64Init;
    for (const StoredRow& row : parsed[i].rows) {
      sig = Fnv1a64FoldU64(sig, row.row_id);
    }
    groups[sig].push_back(i);
  }
  std::vector<size_t> best;
  for (auto& [sig, members] : groups) {
    if (members.size() > best.size()) best = members;
  }
  if (best.size() < host_->threshold_k()) {
    return Status::Corruption(
        "client: providers disagree on the matching row set");
  }

  const std::vector<StoredRow>& reference = parsed[best.front()].rows;
  QueryResult out;
  std::vector<std::pair<size_t, const StoredRow*>> per_provider;
  per_provider.reserve(best.size());
  for (size_t row_idx = 0; row_idx < reference.size(); ++row_idx) {
    per_provider.clear();
    for (size_t member : best) {
      per_provider.emplace_back(parsed[member].provider,
                                &parsed[member].rows[row_idx]);
    }
    SSDB_ASSIGN_OR_RETURN(
        std::vector<Value> row,
        host_->ReconstructStoredRow(pipe.table, pipe.result_columns,
                                    pipe.full_row, per_provider));
    host_->OnRowsReconstructed(1);
    out.row_ids.push_back(reference[row_idx].row_id);
    out.rows.push_back(std::move(row));
  }
  out.count = out.rows.size();
  if (rec_rec != nullptr) {
    rec_rec->executed = true;
    rec_rec->shares_used = best.size();
    rec_rec->rows_reconstructed += out.rows.size();
  }
  return out;
}

Result<bool> Executor::BuildJoinRequests(const QueryPlan& plan,
                                         std::vector<Buffer>* requests) {
  const JoinPlanSpec& spec = plan.join;
  const size_t num_providers = host_->num_providers();
  requests->clear();
  requests->resize(num_providers);
  bool always_empty = false;
  for (size_t p = 0; p < num_providers; ++p) {
    JoinRequest jr;
    jr.left_table = spec.left.id;
    jr.left_column = spec.left_column;
    jr.right_table = spec.right.id;
    jr.right_column = spec.right_column;
    for (const Predicate& pred : spec.query.left_predicates) {
      SSDB_ASSIGN_OR_RETURN(
          SharePredicate sp,
          host_->RewriteForProvider(*spec.left.schema, pred, p,
                                    &always_empty));
      if (always_empty) break;
      jr.left_predicates.push_back(sp);
    }
    for (const Predicate& pred : spec.query.right_predicates) {
      if (always_empty) break;
      SSDB_ASSIGN_OR_RETURN(
          SharePredicate sp,
          host_->RewriteForProvider(*spec.right.schema, pred, p,
                                    &always_empty));
      if (always_empty) break;
      jr.right_predicates.push_back(sp);
    }
    if (always_empty) break;
    EncodeJoin(jr, &(*requests)[p]);
  }
  return always_empty;
}

Result<QueryResult> Executor::RunJoin(const QueryPlan& plan,
                                      QueryTrace* trace) {
  const JoinPlanSpec& spec = plan.join;
  const size_t num_providers = host_->num_providers();
  PlanNodeTrace* join_rec = Rec(spec.join, trace);

  std::vector<Buffer> requests;
  SSDB_ASSIGN_OR_RETURN(bool always_empty,
                        BuildJoinRequests(plan, &requests));
  if (always_empty) {
    QueryResult empty;
    empty.join_left_columns =
        static_cast<uint32_t>(spec.left.schema->columns.size());
    if (join_rec != nullptr) join_rec->executed = true;
    if (PlanNodeTrace* rec = Rec(spec.reconstruct, trace)) {
      rec->executed = true;
    }
    return empty;
  }

  // One quorum round per shard group (matching join keys co-locate: both
  // sides partition on the key attribute); the per-group pair sets
  // concatenate in group order. With one shard this is the seed system's
  // single round against the flat provider list.
  std::vector<size_t> shard_list = plan.routed_shards;
  if (shard_list.empty()) shard_list.push_back(0);
  QueryResult total;
  total.join_left_columns =
      static_cast<uint32_t>(spec.left.schema->columns.size());
  for (size_t shard : shard_list) {
    const std::vector<size_t>& providers =
        plan.shards > 1 ? host_->shard_provider_indices(shard)
                        : host_->provider_indices();
    Result<std::vector<ProviderResponse>> responses_r =
        CallQuorum(host_->network(), providers, requests, spec.quorum_desired,
                   spec.quorum_min, join_rec, host_->resilience(),
                   host_->scoreboard(), spec.quorum_order, host_->metrics());
    if (!responses_r.ok() && responses_r.status().IsUnavailable() &&
        host_->resilience().enabled() &&
        spec.quorum_desired < num_providers) {
      // Graceful degradation, as in RunPipelineWithRetry: one wider round.
      host_->metrics()->GetCounter("ssdb_plan_replans_total")->Inc();
      responses_r =
          CallQuorum(host_->network(), providers, requests, num_providers,
                     spec.quorum_min, join_rec, host_->resilience(),
                     host_->scoreboard(), spec.quorum_order, host_->metrics());
    }
    if (!responses_r.ok()) return responses_r.status();
    if (join_rec != nullptr) join_rec->executed = true;
    SSDB_ASSIGN_OR_RETURN(QueryResult part,
                          DecodeJoin(plan, *responses_r, trace));
    if (plan.shards <= 1) return part;
    total.rows.insert(total.rows.end(),
                      std::make_move_iterator(part.rows.begin()),
                      std::make_move_iterator(part.rows.end()));
  }
  total.count = total.rows.size();
  return total;
}

Result<QueryResult> Executor::DecodeJoin(
    const QueryPlan& plan, const std::vector<ProviderResponse>& responses,
    QueryTrace* trace) {
  const JoinPlanSpec& spec = plan.join;
  PlanNodeTrace* join_rec = Rec(spec.join, trace);
  PlanNodeTrace* rec_rec = Rec(spec.reconstruct, trace);

  QueryResult empty;
  empty.join_left_columns =
      static_cast<uint32_t>(spec.left.schema->columns.size());

  struct Parsed {
    size_t provider;
    std::vector<JoinedRowPair> pairs;
  };
  std::vector<Parsed> parsed;
  for (const auto& r : responses) {
    Decoder dec(Slice(r.bytes));
    Status st = DecodeResponseHeader(&dec);
    if (!st.ok()) {
      if (st.IsNotSupported() || st.IsInvalidArgument()) return st;
      continue;
    }
    Parsed p;
    p.provider = r.provider;
    if (!DecodeJoinResponse(&dec, *spec.left.layout, *spec.right.layout,
                            &p.pairs)
             .ok()) {
      continue;
    }
    if (join_rec != nullptr) join_rec->rows_scanned += p.pairs.size();
    parsed.push_back(std::move(p));
  }
  std::unordered_map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < parsed.size(); ++i) {
    uint64_t sig = kFnv1a64Init;
    for (const auto& pr : parsed[i].pairs) {
      sig = Fnv1a64FoldU64(sig, pr.left.row_id);
      sig = Fnv1a64FoldU64(sig, pr.right.row_id);
    }
    groups[sig].push_back(i);
  }
  std::vector<size_t> best;
  for (auto& [sig, members] : groups) {
    if (members.size() > best.size()) best = members;
  }
  if (best.size() < host_->threshold_k()) {
    return Status::Corruption("client: providers disagree on the join result");
  }

  std::vector<const ColumnSpec*> lcols, rcols;
  for (const ColumnSpec& c : spec.left.schema->columns) lcols.push_back(&c);
  for (const ColumnSpec& c : spec.right.schema->columns) rcols.push_back(&c);

  const auto& reference = parsed[best.front()].pairs;
  QueryResult out = std::move(empty);
  std::vector<std::pair<size_t, const StoredRow*>> lrows, rrows;
  lrows.reserve(best.size());
  rrows.reserve(best.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    lrows.clear();
    rrows.clear();
    for (size_t member : best) {
      lrows.emplace_back(parsed[member].provider,
                         &parsed[member].pairs[i].left);
      rrows.emplace_back(parsed[member].provider,
                         &parsed[member].pairs[i].right);
    }
    SSDB_ASSIGN_OR_RETURN(
        std::vector<Value> row,
        host_->ReconstructStoredRow(spec.left, lcols, /*full_row=*/true,
                                    lrows));
    SSDB_ASSIGN_OR_RETURN(
        std::vector<Value> rvals,
        host_->ReconstructStoredRow(spec.right, rcols, /*full_row=*/true,
                                    rrows));
    host_->OnRowsReconstructed(2);
    row.insert(row.end(), std::make_move_iterator(rvals.begin()),
               std::make_move_iterator(rvals.end()));
    out.rows.push_back(std::move(row));
  }
  out.count = out.rows.size();
  if (rec_rec != nullptr) {
    rec_rec->executed = true;
    rec_rec->shares_used = best.size();
    rec_rec->rows_reconstructed += 2 * out.rows.size();
  }
  return out;
}

Result<QueryResult> Executor::RunScatter(const QueryPlan& plan,
                                         QueryTrace* trace) {
  PlanNodeTrace* root_rec = Rec(plan.root.get(), trace);
  const size_t n_per = host_->num_providers();

  // Every per-shard pipeline carries the same query, so one per-position
  // request vector serves all routed shard groups.
  const PipelinePlan& proto = plan.pipelines.front();
  std::vector<Buffer> requests;
  SSDB_ASSIGN_OR_RETURN(bool always_empty,
                        BuildPipelineRequests(proto, &requests));

  std::vector<Result<QueryResult>> parts;
  parts.reserve(plan.pipelines.size());
  if (always_empty) {
    for (const PipelinePlan& pipe : plan.pipelines) {
      parts.push_back(EmptyPipeline(pipe, trace));
    }
  } else if (!host_->resilience().enabled()) {
    // One parallel fan-out round across every routed shard group: the
    // clock advances once, by the globally slowest leg, charged to the
    // ShardMerge root; sequential replacement legs charge their own
    // shard's scan node, so node clock totals still sum to the
    // VirtualClock delta.
    std::vector<ScatterShardSpec> specs;
    specs.reserve(plan.pipelines.size());
    for (const PipelinePlan& pipe : plan.pipelines) {
      specs.push_back(
          ScatterShardSpec{&host_->shard_provider_indices(pipe.shard),
                           pipe.quorum_desired, pipe.quorum_min});
    }
    const uint64_t start_us = host_->network()->clock().now_us();
    ScatterQuorumResult sq = RunScatterQuorum(host_->network(), specs,
                                              requests, host_->scoreboard());
    if (root_rec != nullptr) {
      if (root_rec->round_trips == 0) root_rec->clock_start_us = start_us;
      root_rec->round_trips += 1;
      root_rec->clock_us += sq.fanout_clock_us;
    }
    for (size_t i = 0; i < plan.pipelines.size(); ++i) {
      const PipelinePlan& pipe = plan.pipelines[i];
      StampShard(pipe, trace);
      QuorumResult& q = sq.shards[i];
      if (PlanNodeTrace* scan_rec = Rec(pipe.scan, trace)) {
        if (scan_rec->round_trips == 0) scan_rec->clock_start_us = start_us;
        scan_rec->round_trips += q.fanout_rounds;
        scan_rec->clock_us += q.clock_advance_us;
        for (const ResilientLeg& leg : q.legs) {
          RecordLeg(scan_rec, leg.provider, leg.bytes_sent,
                    leg.bytes_received, leg.round_trip_us, leg.ok);
        }
        scan_rec->executed = true;
      }
      if (!q.status.ok()) {
        parts.push_back(q.status);
        continue;
      }
      std::vector<ProviderResponse> responses;
      responses.reserve(q.responses.size());
      for (QuorumResult::Response& r : q.responses) {
        responses.push_back(ProviderResponse{r.slot, std::move(r.bytes)});
      }
      parts.push_back(DecodePipeline(pipe, responses, trace));
    }
  } else {
    // Resilience knobs on: sequential per-group rounds through the full
    // resilient quorum path (retries, deadlines, hedging, breaker).
    for (const PipelinePlan& pipe : plan.pipelines) {
      parts.push_back(RunPipeline(pipe, pipe.quorum_desired, trace));
    }
  }

  // Per-shard retry ladder, mirroring RunPipelineWithRetry.
  std::vector<QueryResult> results;
  results.reserve(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    const PipelinePlan& pipe = plan.pipelines[i];
    Result<QueryResult>& part = parts[i];
    if (!part.ok() && part.status().IsUnavailable() &&
        host_->resilience().enabled() && pipe.quorum_desired < n_per) {
      host_->metrics()->GetCounter("ssdb_plan_replans_total")->Inc();
      part = RunPipeline(pipe, n_per, trace);
    }
    if (!part.ok() && part.status().IsCorruption() &&
        host_->threshold_k() < n_per) {
      host_->OnCorruptionRetry();
      part = RunPipeline(pipe, n_per, trace);
    }
    if (!part.ok()) return part.status();
    if (plan.scatter_action == QueryAction::kFetchRows) {
      // Row results overlay the pending write log per shard, like union
      // branches; the row-id merge dedups. (Aggregates flushed the log
      // at submit time, and their overlay is a no-op anyway.)
      SSDB_RETURN_IF_ERROR(ApplyOverlay(pipe, &part.value(), trace));
    }
    results.push_back(std::move(*part));
  }
  return MergeScatter(plan, &results, trace);
}

Result<QueryResult> Executor::MergeScatter(const QueryPlan& plan,
                                           std::vector<QueryResult>* parts,
                                           QueryTrace* trace) {
  const PipelinePlan& proto = plan.pipelines.front();
  const TableSchema& schema = *proto.table.schema;
  PlanNodeTrace* root_rec = Rec(plan.root.get(), trace);
  QueryResult out;
  switch (plan.scatter_action) {
    case QueryAction::kFetchRows: {
      // Shard groups hold disjoint row-id sets; the ordered merge makes
      // the result independent of group order.
      std::map<uint64_t, std::vector<Value>> merged;
      for (QueryResult& part : *parts) {
        for (size_t i = 0; i < part.rows.size(); ++i) {
          merged.emplace(part.row_ids[i], std::move(part.rows[i]));
        }
      }
      for (auto& [id, row] : merged) {
        out.row_ids.push_back(id);
        out.rows.push_back(std::move(row));
      }
      out.count = out.rows.size();
      break;
    }
    case QueryAction::kCount: {
      for (const QueryResult& part : *parts) out.count += part.count;
      out.aggregate_int = static_cast<int64_t>(out.count);
      break;
    }
    case QueryAction::kPartialSum: {
      for (const QueryResult& part : *parts) {
        out.aggregate_int += part.aggregate_int;
        out.count += part.count;
      }
      out.aggregate_double = out.count == 0
                                 ? 0.0
                                 : static_cast<double>(out.aggregate_int) /
                                       static_cast<double>(out.count);
      break;
    }
    case QueryAction::kArgMin:
    case QueryAction::kArgMax: {
      // Each part carries its group's extreme rows with the extreme code
      // in aggregate_int; groups with no matching rows have no extreme.
      // Ties across groups merge by row id.
      bool have = false;
      int64_t best = 0;
      for (const QueryResult& part : *parts) {
        if (part.rows.empty()) continue;
        if (!have || (plan.scatter_action == QueryAction::kArgMin
                          ? part.aggregate_int < best
                          : part.aggregate_int > best)) {
          best = part.aggregate_int;
          have = true;
        }
      }
      if (have) {
        std::map<uint64_t, std::vector<Value>> merged;
        for (QueryResult& part : *parts) {
          if (part.rows.empty() || part.aggregate_int != best) continue;
          for (size_t i = 0; i < part.rows.size(); ++i) {
            merged.emplace(part.row_ids[i], std::move(part.rows[i]));
          }
        }
        for (auto& [id, row] : merged) {
          out.row_ids.push_back(id);
          out.rows.push_back(std::move(row));
        }
        if (!plan.scatter_strip_appended) {
          out.aggregate_int = best;
          out.aggregate_double = static_cast<double>(best);
        }
      }
      out.count = out.rows.size();
      break;
    }
    case QueryAction::kMedian: {
      // The per-shard pipelines fetched every matching row; the global
      // (lower) median is picked client-side by (code, row id), exactly
      // the provider's (op share, row id) order.
      size_t pos = proto.result_columns.size();
      for (size_t c = 0; c < proto.result_columns.size(); ++c) {
        if (proto.result_columns[c] ==
            &schema.columns[plan.scatter_target_column]) {
          pos = c;
        }
      }
      if (pos >= proto.result_columns.size()) {
        return Status::Internal(
            "client: scattered MEDIAN lost its target column");
      }
      struct Cand {
        int64_t code;
        uint64_t row_id;
        size_t part;
        size_t idx;
      };
      std::vector<Cand> cands;
      for (size_t p = 0; p < parts->size(); ++p) {
        QueryResult& part = (*parts)[p];
        for (size_t i = 0; i < part.rows.size(); ++i) {
          SSDB_ASSIGN_OR_RETURN(
              int64_t code,
              proto.result_columns[pos]->EncodeToCode(part.rows[i][pos]));
          cands.push_back(Cand{code, part.row_ids[i], p, i});
        }
      }
      if (cands.empty()) {
        return Status::NotFound("client: MEDIAN over an empty result set");
      }
      std::sort(cands.begin(), cands.end(),
                [](const Cand& a, const Cand& b) {
                  return a.code != b.code ? a.code < b.code
                                          : a.row_id < b.row_id;
                });
      const Cand& pick = cands[(cands.size() - 1) / 2];
      out.row_ids.push_back(pick.row_id);
      out.rows.push_back(std::move((*parts)[pick.part].rows[pick.idx]));
      out.count = 1;
      if (!plan.scatter_strip_appended) {
        out.aggregate_int = pick.code;
        out.aggregate_double = static_cast<double>(pick.code);
      }
      break;
    }
    case QueryAction::kGroupedSum: {
      // Merge groups by key code; order by the smallest representative
      // row id, matching the provider-side first-appearance order.
      const ColumnSpec& key_col = schema.columns[proto.group_column];
      std::map<int64_t, GroupResult> by_code;
      for (QueryResult& part : *parts) {
        for (GroupResult& group : part.groups) {
          SSDB_ASSIGN_OR_RETURN(int64_t code,
                                key_col.EncodeToCode(group.key));
          auto it = by_code.find(code);
          if (it == by_code.end()) {
            by_code.emplace(code, std::move(group));
          } else {
            GroupResult& merged = it->second;
            merged.sum += group.sum;
            merged.count += group.count;
            merged.rep_row_id =
                std::min(merged.rep_row_id, group.rep_row_id);
          }
        }
      }
      std::vector<GroupResult> groups;
      groups.reserve(by_code.size());
      for (auto& [code, group] : by_code) {
        group.average = group.count == 0
                            ? 0.0
                            : static_cast<double>(group.sum) /
                                  static_cast<double>(group.count);
        out.count += group.count;
        groups.push_back(std::move(group));
      }
      std::sort(groups.begin(), groups.end(),
                [](const GroupResult& a, const GroupResult& b) {
                  return a.rep_row_id < b.rep_row_id;
                });
      out.groups = std::move(groups);
      break;
    }
    case QueryAction::kFetchRowIds:
      return Status::Internal("client: unhandled scatter action");
  }
  if (plan.scatter_strip_appended) {
    // The aggregate target column was appended to the projection solely
    // for the client-side pick; the caller never asked for it.
    for (std::vector<Value>& row : out.rows) row.pop_back();
  }
  if (root_rec != nullptr) {
    root_rec->executed = true;
    root_rec->rows_reconstructed =
        out.groups.empty() ? out.rows.size() : out.groups.size();
  }
  return out;
}

}  // namespace ssdb
