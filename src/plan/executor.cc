#include "plan/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"

namespace ssdb {

namespace {

/// Signature of a response payload, used to majority-group providers that
/// agree on a result set.
uint64_t PayloadSignature(const std::vector<uint8_t>& bytes) {
  return Fnv1a64(Slice(bytes));
}

void RecordLeg(PlanNodeTrace* trace, size_t provider, uint64_t bytes_sent,
               uint64_t bytes_received, uint64_t round_trip_us, bool ok) {
  if (trace == nullptr) return;
  PlanLegTrace leg;
  leg.provider = static_cast<uint32_t>(provider);
  leg.bytes_sent = bytes_sent;
  leg.bytes_received = bytes_received;
  leg.round_trip_us = round_trip_us;
  leg.ok = ok;
  trace->legs.push_back(leg);
  trace->bytes_sent += bytes_sent;
  trace->bytes_received += bytes_received;
}

void BuildSkeleton(const PlanNode* node, int depth, QueryTrace* trace,
                   std::map<const PlanNode*, size_t>* index) {
  if (node == nullptr) return;
  PlanNodeTrace rec;
  rec.name = PlanNodeKindName(node->kind);
  rec.label = node->label;
  rec.depth = depth;
  (*index)[node] = trace->nodes.size();
  trace->nodes.push_back(std::move(rec));
  for (const auto& child : node->children) {
    BuildSkeleton(child.get(), depth + 1, trace, index);
  }
}

}  // namespace

PlanNodeTrace* Executor::Rec(const PlanNode* node, QueryTrace* trace) {
  if (node == nullptr) return nullptr;
  auto it = record_index_.find(node);
  if (it == record_index_.end()) return nullptr;
  return &trace->nodes[it->second];
}

Result<std::vector<Executor::ProviderResponse>> Executor::CallQuorum(
    Network* network, const std::vector<size_t>& providers,
    const std::vector<Buffer>& requests, size_t desired, size_t minimum,
    PlanNodeTrace* trace, const ResiliencePolicy& policy,
    ProviderScoreboard* board, const std::vector<size_t>& order,
    MetricsRegistry* registry) {
  const uint64_t start_us = network->clock().now_us();
  QuorumResult q = RunResilientQuorum(network, providers, requests, desired,
                                      minimum, order, policy, board);
  if (trace != nullptr) {
    if (trace->round_trips == 0) trace->clock_start_us = start_us;
    trace->round_trips += q.fanout_rounds;
    trace->clock_us += q.clock_advance_us;
    trace->hedged += q.hedges;
    trace->breaker_skips += q.breaker_skips;
    for (const ResilientLeg& leg : q.legs) {
      RecordLeg(trace, leg.provider, leg.bytes_sent, leg.bytes_received,
                leg.round_trip_us, leg.ok);
      PlanLegTrace& rec = trace->legs.back();
      rec.attempt = leg.attempt;
      rec.hedge = leg.hedge;
      rec.deadline_exceeded = leg.deadline_exceeded;
      if (leg.attempt > 1) trace->attempts++;
      if (leg.deadline_exceeded) trace->deadline_exceeded++;
    }
  }
  if (registry != nullptr) {
    for (const ResilientLeg& leg : q.legs) {
      const MetricLabels by_provider = {
          {"provider", std::to_string(leg.provider)}};
      if (leg.attempt > 1) {
        registry->GetCounter("ssdb_resilience_retry_legs_total", by_provider)
            ->Inc();
      }
      if (leg.hedge) {
        registry->GetCounter("ssdb_resilience_hedge_legs_total", by_provider)
            ->Inc();
      }
    }
    if (q.breaker_skips) {
      // Skipped providers never became legs, so the trace cannot name
      // them; the counter is therefore unlabelled.
      registry->GetCounter("ssdb_resilience_breaker_skips_total")
          ->Inc(q.breaker_skips);
    }
  }
  if (!q.status.ok()) return q.status;
  std::vector<ProviderResponse> ok;
  ok.reserve(q.responses.size());
  for (QuorumResult::Response& r : q.responses) {
    ok.push_back(ProviderResponse{r.slot, std::move(r.bytes)});
  }
  return ok;
}

namespace {

/// Query taxonomy for the `{kind}` metric label and the query span name.
const char* QueryKindName(const QueryPlan& plan) {
  if (plan.is_join) return "join";
  if (plan.is_union) return "union";
  switch (plan.pipelines.front().action) {
    case QueryAction::kFetchRows: return "fetch";
    case QueryAction::kFetchRowIds: return "fetch_ids";
    case QueryAction::kCount: return "count";
    case QueryAction::kPartialSum: return "sum";
    case QueryAction::kArgMin: return "argmin";
    case QueryAction::kArgMax: return "argmax";
    case QueryAction::kMedian: return "median";
    case QueryAction::kGroupedSum: return "grouped_sum";
  }
  return "unknown";
}

}  // namespace

Result<QueryResult> Executor::Execute(const QueryPlan& plan) {
  QueryTrace trace;
  record_index_.clear();
  BuildSkeleton(plan.root.get(), 0, &trace, &record_index_);

  // The query span brackets live execution on this thread (breaker
  // events fired mid-query attach to it); node/leg spans are laid out
  // post-hoc from the finished trace, whose clock figures are exact.
  const char* kind = QueryKindName(plan);
  Tracer* tracer = host_->tracer();
  uint64_t query_span = 0;
  uint64_t query_start_us = 0;
  if (tracer != nullptr && tracer->enabled()) {
    query_start_us = host_->network()->clock().now_us();
    query_span = tracer->StartSpan(std::string("query:") + kind, "query",
                                   query_start_us);
  }

  Result<QueryResult> result =
      plan.is_join    ? RunJoin(plan, &trace)
      : plan.is_union ? RunUnion(plan, &trace)
                      : RunPipelineWithRetry(plan.pipelines.front(), &trace);

  if (query_span != 0) {
    EmitNodeSpans(trace, query_span, query_start_us, tracer);
    tracer->EndSpan(query_span, host_->network()->clock().now_us());
  }
  if (result.ok()) {
    host_->OnTraceFinalized(trace);
    EmitQueryMetrics(kind, trace);
    result->trace = std::move(trace);
  }
  return result;
}

void Executor::EmitQueryMetrics(const char* kind, const QueryTrace& trace) {
  MetricsRegistry* registry = host_->metrics();
  if (registry == nullptr) return;
  const MetricLabels by_kind = {{"kind", kind}};
  registry->GetCounter("ssdb_query_total", by_kind)->Inc();
  registry->GetHistogram("ssdb_query_clock_us", by_kind)
      ->Observe(trace.total_clock_us());
  for (const PlanNodeTrace& node : trace.nodes) {
    if (!node.executed) continue;
    const MetricLabels by_node = {{"node", node.name}};
    registry->GetCounter("ssdb_plan_node_clock_us_total", by_node)
        ->Inc(node.clock_us);
    registry->GetCounter("ssdb_plan_node_rows_scanned_total", by_node)
        ->Inc(node.rows_scanned);
  }
}

void Executor::EmitNodeSpans(const QueryTrace& trace, uint64_t query_span,
                             uint64_t query_start_us, Tracer* tracer) {
  // Pre-order + depth reproduces the plan tree: the innermost ancestor
  // on the depth stack is the parent. A node that never contacted a
  // provider inherits its parent's start time (it did no clocked work).
  struct Frame {
    int depth;
    uint64_t span;
    uint64_t ts;
  };
  std::vector<Frame> stack;
  for (const PlanNodeTrace& node : trace.nodes) {
    while (!stack.empty() && stack.back().depth >= node.depth) {
      stack.pop_back();
    }
    const uint64_t parent = stack.empty() ? query_span : stack.back().span;
    const uint64_t parent_ts =
        stack.empty() ? query_start_us : stack.back().ts;
    const uint64_t ts =
        node.clock_start_us != 0 ? node.clock_start_us : parent_ts;
    const uint64_t span = tracer->AddSpan(
        "node:" + node.name, "node", ts, node.clock_us, parent,
        {{"label", node.label},
         {"executed", node.executed ? "1" : "0"},
         {"rows_scanned", std::to_string(node.rows_scanned)},
         {"rows_reconstructed", std::to_string(node.rows_reconstructed)},
         {"shares_used", std::to_string(node.shares_used)}});
    for (const PlanLegTrace& leg : node.legs) {
      // Legs are placed at the node's start with their modelled round
      // trip as duration: in the cost model every leg of a fan-out round
      // departs when the round does.
      tracer->AddSpan(
          "leg:p" + std::to_string(leg.provider), "leg", ts,
          leg.round_trip_us, span,
          {{"provider", std::to_string(leg.provider)},
           {"ok", leg.ok ? "1" : "0"},
           {"attempt", std::to_string(leg.attempt)},
           {"hedge", leg.hedge ? "1" : "0"},
           {"deadline_exceeded", leg.deadline_exceeded ? "1" : "0"},
           {"bytes_sent", std::to_string(leg.bytes_sent)},
           {"bytes_received", std::to_string(leg.bytes_received)}});
    }
    stack.push_back(Frame{node.depth, span, ts});
  }
}

Result<QueryResult> Executor::RunUnion(const QueryPlan& plan,
                                       QueryTrace* trace) {
  // One sub-query per disjunct (conjuncts are applied to each); results
  // are unioned by row id, first branch winning on duplicates.
  std::map<uint64_t, std::vector<Value>> merged;
  for (const PipelinePlan& pipe : plan.pipelines) {
    SSDB_ASSIGN_OR_RETURN(QueryResult part, RunPipelineWithRetry(pipe, trace));
    for (size_t i = 0; i < part.rows.size(); ++i) {
      merged.emplace(part.row_ids[i], std::move(part.rows[i]));
    }
  }
  QueryResult out;
  for (auto& [id, row] : merged) {
    out.row_ids.push_back(id);
    out.rows.push_back(std::move(row));
  }
  out.count = out.rows.size();
  if (PlanNodeTrace* rec = Rec(plan.root.get(), trace)) {
    rec->executed = true;
    rec->rows_reconstructed = out.rows.size();
  }
  return out;
}

Status Executor::ApplyOverlay(const PipelinePlan& pipe, QueryResult* result,
                              QueryTrace* trace) {
  // The host no-ops when the log is empty or the query aggregates, so
  // this mirrors the former unconditional ApplyLazyToResult call even
  // when the planner emitted no overlay node.
  SSDB_RETURN_IF_ERROR(
      host_->ApplyLazyOverlay(pipe.table, pipe.query, result));
  if (PlanNodeTrace* rec = Rec(pipe.overlay, trace)) {
    rec->executed = true;
    rec->rows_reconstructed = result->rows.size();
  }
  return Status::OK();
}

Result<QueryResult> Executor::RunPipelineWithRetry(const PipelinePlan& pipe,
                                                   QueryTrace* trace) {
  Result<QueryResult> first = RunPipeline(pipe, pipe.quorum_desired, trace);
  if (!first.ok() && first.status().IsUnavailable() &&
      host_->resilience().enabled() &&
      pipe.quorum_desired < host_->num_providers()) {
    // Graceful degradation: too few providers answered the preferred
    // quorum (breaker skips, flapping links). Re-plan once with the
    // widest quorum — the breaker still gates every contact.
    host_->metrics()->GetCounter("ssdb_plan_replans_total")->Inc();
    first = RunPipeline(pipe, host_->num_providers(), trace);
  }
  if (first.ok() || !first.status().IsCorruption() ||
      host_->threshold_k() == host_->num_providers()) {
    if (first.ok()) {
      SSDB_RETURN_IF_ERROR(ApplyOverlay(pipe, &first.value(), trace));
    }
    return first;
  }
  // A corrupt or inconsistent quorum: retry once against every provider,
  // letting the consistency checks localize the bad one.
  host_->OnCorruptionRetry();
  Result<QueryResult> retry =
      RunPipeline(pipe, host_->num_providers(), trace);
  if (retry.ok()) {
    SSDB_RETURN_IF_ERROR(ApplyOverlay(pipe, &retry.value(), trace));
  }
  return retry;
}

Result<QueryResult> Executor::RunPipeline(const PipelinePlan& pipe,
                                          size_t quorum, QueryTrace* trace) {
  const std::vector<size_t>& providers = host_->provider_indices();
  const size_t num_providers = providers.size();
  const TableSchema& schema = *pipe.table.schema;
  PlanNodeTrace* scan_rec = Rec(pipe.scan, trace);
  PlanNodeTrace* agg_rec = Rec(pipe.aggregate, trace);

  // Rewrite per provider (§V.A).
  std::vector<Buffer> requests(num_providers);
  bool always_empty = false;
  for (size_t p = 0; p < num_providers; ++p) {
    QueryRequest q;
    q.table_id = pipe.table.id;
    q.action = pipe.action;
    q.target_column = pipe.target_column;
    q.group_column = pipe.group_column;
    q.projection = pipe.projection;
    for (const Predicate& pred : pipe.query.predicates()) {
      SSDB_ASSIGN_OR_RETURN(
          SharePredicate sp,
          host_->RewriteForProvider(schema, pred, p, &always_empty));
      if (always_empty) break;
      q.predicates.push_back(sp);
    }
    if (always_empty) break;
    EncodeQuery(q, &requests[p]);
  }
  if (always_empty) {
    // Provably no matches; zero communication. The whole pipeline still
    // "ran" (trivially) for trace purposes.
    if (scan_rec != nullptr) scan_rec->executed = true;
    if (agg_rec != nullptr) agg_rec->executed = true;
    if (PlanNodeTrace* rec = Rec(pipe.reconstruct, trace)) {
      rec->executed = true;
    }
    return QueryResult();
  }

  SSDB_ASSIGN_OR_RETURN(
      std::vector<ProviderResponse> responses,
      CallQuorum(host_->network(), providers, requests, quorum,
                 pipe.quorum_min, scan_rec, host_->resilience(),
                 host_->scoreboard(), pipe.quorum_order, host_->metrics()));
  if (scan_rec != nullptr) scan_rec->executed = true;

  // Majority-group identical payloads to tolerate corrupt responses.
  std::unordered_map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < responses.size(); ++i) {
    groups[PayloadSignature(responses[i].bytes)].push_back(i);
  }

  switch (pipe.action) {
    case QueryAction::kCount: {
      std::vector<size_t> best;
      for (auto& [sig, members] : groups) {
        if (members.size() > best.size()) best = members;
      }
      // Require a strict majority (or unanimity) of the responses; a
      // split vote means someone is corrupt and triggers the wider retry.
      if (best.size() != responses.size() &&
          best.size() * 2 <= responses.size()) {
        return Status::Corruption("client: providers disagree on the count");
      }
      const auto& r = responses[best.front()];
      Decoder dec(Slice(r.bytes));
      SSDB_RETURN_IF_ERROR(DecodeResponseHeader(&dec));
      QueryResult out;
      SSDB_RETURN_IF_ERROR(DecodeCountResponse(&dec, &out.count));
      out.aggregate_int = static_cast<int64_t>(out.count);
      if (agg_rec != nullptr) {
        agg_rec->executed = true;
        agg_rec->shares_used = best.size();
      }
      return out;
    }
    case QueryAction::kPartialSum: {
      // Sum shares legitimately differ per provider; only counts must
      // agree.
      std::vector<IndexedShare> sum_shares;
      std::vector<uint64_t> counts;
      for (const auto& r : responses) {
        Decoder dec(Slice(r.bytes));
        Status st = DecodeResponseHeader(&dec);
        if (!st.ok()) continue;
        PartialAggregate agg;
        if (!DecodeAggResponse(&dec, &agg).ok()) continue;
        sum_shares.push_back(
            IndexedShare{r.provider, Fp61::FromCanonical(agg.sum_share)});
        counts.push_back(agg.count);
      }
      if (sum_shares.size() < host_->threshold_k()) {
        return Status::Unavailable("client: too few aggregate responses");
      }
      // Majority count.
      std::sort(counts.begin(), counts.end());
      const uint64_t count = counts[counts.size() / 2];
      SSDB_ASSIGN_OR_RETURN(Fp61 sum_w, host_->ReconstructField(sum_shares));
      const ColumnSpec& col = schema.columns[pipe.target_column];
      SSDB_ASSIGN_OR_RETURN(OpDomain dom, col.CodeDomain());
      QueryResult out;
      out.count = count;
      out.aggregate_int = static_cast<int64_t>(sum_w.value()) +
                          static_cast<int64_t>(count) * dom.lo;
      out.aggregate_double = count == 0
                                 ? 0.0
                                 : static_cast<double>(out.aggregate_int) /
                                       static_cast<double>(count);
      if (agg_rec != nullptr) {
        agg_rec->executed = true;
        agg_rec->shares_used = sum_shares.size();
        agg_rec->rows_reconstructed = 1;
      }
      return out;
    }
    case QueryAction::kGroupedSum: {
      // Zip the per-provider group lists (ordered by representative row
      // id at every provider) and reconstruct key + sum per group.
      struct ParsedGroups {
        size_t provider;
        std::vector<GroupPartial> groups;
      };
      std::vector<ParsedGroups> parsed;
      for (const auto& r : responses) {
        Decoder dec(Slice(r.bytes));
        Status st = DecodeResponseHeader(&dec);
        if (!st.ok()) {
          if (st.IsNotSupported() || st.IsInvalidArgument()) return st;
          continue;
        }
        ParsedGroups p;
        p.provider = r.provider;
        if (!DecodeGroupedAggResponse(&dec, &p.groups).ok()) continue;
        parsed.push_back(std::move(p));
      }
      if (parsed.size() < host_->threshold_k()) {
        return Status::Unavailable("client: too few grouped responses");
      }
      const size_t num_groups = parsed.front().groups.size();
      for (const auto& p : parsed) {
        if (p.groups.size() != num_groups) {
          return Status::Corruption(
              "client: providers disagree on the group count");
        }
      }
      const ColumnSpec& key_col = schema.columns[pipe.group_column];
      const ColumnSpec& sum_col = schema.columns[pipe.target_column];
      SSDB_ASSIGN_OR_RETURN(OpDomain sum_dom, sum_col.CodeDomain());
      QueryResult out;
      for (size_t g = 0; g < num_groups; ++g) {
        std::vector<IndexedShare> key_shares, sum_shares;
        uint64_t count = parsed.front().groups[g].count;
        for (const auto& p : parsed) {
          const GroupPartial& gp = p.groups[g];
          if (gp.rep_row_id != parsed.front().groups[g].rep_row_id ||
              gp.count != count) {
            return Status::Corruption(
                "client: providers disagree on a group's membership");
          }
          key_shares.push_back(
              IndexedShare{p.provider, Fp61::FromCanonical(gp.key_share)});
          sum_shares.push_back(
              IndexedShare{p.provider, Fp61::FromCanonical(gp.sum_share)});
        }
        GroupResult group;
        SSDB_ASSIGN_OR_RETURN(
            group.key,
            host_->ReconstructColumnValue(key_col, key_shares, nullptr));
        SSDB_ASSIGN_OR_RETURN(Fp61 sum_w, host_->ReconstructField(sum_shares));
        group.count = count;
        group.sum = static_cast<int64_t>(sum_w.value()) +
                    static_cast<int64_t>(count) * sum_dom.lo;
        group.average = count == 0 ? 0.0
                                   : static_cast<double>(group.sum) /
                                         static_cast<double>(count);
        out.count += count;
        out.groups.push_back(std::move(group));
      }
      if (agg_rec != nullptr) {
        agg_rec->executed = true;
        agg_rec->shares_used = parsed.size();
        agg_rec->rows_reconstructed = num_groups;
      }
      return out;
    }
    case QueryAction::kFetchRows:
    case QueryAction::kArgMin:
    case QueryAction::kArgMax:
    case QueryAction::kMedian: {
      SSDB_ASSIGN_OR_RETURN(QueryResult out,
                            RunFetch(pipe, responses, trace));
      if (pipe.action != QueryAction::kFetchRows && !out.rows.empty()) {
        // With projection the aggregate column may sit at a new position;
        // find it in the result columns.
        size_t pos = pipe.result_columns.size();
        for (size_t c = 0; c < pipe.result_columns.size(); ++c) {
          if (pipe.result_columns[c] ==
              &schema.columns[pipe.target_column]) {
            pos = c;
          }
        }
        if (pos < pipe.result_columns.size()) {
          SSDB_ASSIGN_OR_RETURN(
              int64_t code,
              pipe.result_columns[pos]->EncodeToCode(out.rows.front()[pos]));
          out.aggregate_int = code;
          out.aggregate_double = static_cast<double>(code);
        }
      }
      out.count = out.rows.size();
      if (agg_rec != nullptr) agg_rec->executed = true;
      return out;
    }
    case QueryAction::kFetchRowIds:
      break;
  }
  return Status::Internal("client: unhandled action");
}

Result<QueryResult> Executor::RunFetch(
    const PipelinePlan& pipe, const std::vector<ProviderResponse>& responses,
    QueryTrace* trace) {
  PlanNodeTrace* scan_rec = Rec(pipe.scan, trace);
  PlanNodeTrace* rec_rec = Rec(pipe.reconstruct, trace);
  // Decode rows per provider; majority-group by the row id sequence.
  struct Parsed {
    size_t provider;
    std::vector<StoredRow> rows;
  };
  std::vector<Parsed> parsed;
  for (const auto& r : responses) {
    Decoder dec(Slice(r.bytes));
    Status st = DecodeResponseHeader(&dec);
    if (!st.ok()) {
      if (st.IsNotSupported() || st.IsInvalidArgument() || st.IsNotFound()) {
        return st;  // a semantic error is the query's fault, not noise
      }
      continue;
    }
    Parsed p;
    p.provider = r.provider;
    if (!DecodeRowsResponse(&dec, pipe.response_layout, &p.rows).ok()) {
      continue;
    }
    if (scan_rec != nullptr) scan_rec->rows_scanned += p.rows.size();
    parsed.push_back(std::move(p));
  }

  std::unordered_map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < parsed.size(); ++i) {
    Buffer sig;
    for (const StoredRow& row : parsed[i].rows) sig.PutU64(row.row_id);
    groups[Fnv1a64(sig.AsSlice())].push_back(i);
  }
  std::vector<size_t> best;
  for (auto& [sig, members] : groups) {
    if (members.size() > best.size()) best = members;
  }
  if (best.size() < host_->threshold_k()) {
    return Status::Corruption(
        "client: providers disagree on the matching row set");
  }

  const std::vector<StoredRow>& reference = parsed[best.front()].rows;
  QueryResult out;
  for (size_t row_idx = 0; row_idx < reference.size(); ++row_idx) {
    std::vector<std::pair<size_t, StoredRow>> per_provider;
    for (size_t member : best) {
      per_provider.emplace_back(parsed[member].provider,
                                parsed[member].rows[row_idx]);
    }
    SSDB_ASSIGN_OR_RETURN(
        std::vector<Value> row,
        host_->ReconstructStoredRow(pipe.table, pipe.result_columns,
                                    pipe.full_row, per_provider));
    host_->OnRowsReconstructed(1);
    out.row_ids.push_back(reference[row_idx].row_id);
    out.rows.push_back(std::move(row));
  }
  out.count = out.rows.size();
  if (rec_rec != nullptr) {
    rec_rec->executed = true;
    rec_rec->shares_used = best.size();
    rec_rec->rows_reconstructed += out.rows.size();
  }
  return out;
}

Result<QueryResult> Executor::RunJoin(const QueryPlan& plan,
                                      QueryTrace* trace) {
  const JoinPlanSpec& spec = plan.join;
  const std::vector<size_t>& providers = host_->provider_indices();
  const size_t num_providers = providers.size();
  PlanNodeTrace* join_rec = Rec(spec.join, trace);
  PlanNodeTrace* rec_rec = Rec(spec.reconstruct, trace);

  QueryResult empty;
  empty.join_left_columns =
      static_cast<uint32_t>(spec.left.schema->columns.size());

  std::vector<Buffer> requests(num_providers);
  bool always_empty = false;
  for (size_t p = 0; p < num_providers; ++p) {
    JoinRequest jr;
    jr.left_table = spec.left.id;
    jr.left_column = spec.left_column;
    jr.right_table = spec.right.id;
    jr.right_column = spec.right_column;
    for (const Predicate& pred : spec.query.left_predicates) {
      SSDB_ASSIGN_OR_RETURN(
          SharePredicate sp,
          host_->RewriteForProvider(*spec.left.schema, pred, p,
                                    &always_empty));
      if (always_empty) break;
      jr.left_predicates.push_back(sp);
    }
    for (const Predicate& pred : spec.query.right_predicates) {
      if (always_empty) break;
      SSDB_ASSIGN_OR_RETURN(
          SharePredicate sp,
          host_->RewriteForProvider(*spec.right.schema, pred, p,
                                    &always_empty));
      if (always_empty) break;
      jr.right_predicates.push_back(sp);
    }
    if (always_empty) break;
    EncodeJoin(jr, &requests[p]);
  }
  if (always_empty) {
    if (join_rec != nullptr) join_rec->executed = true;
    if (rec_rec != nullptr) rec_rec->executed = true;
    return empty;
  }

  Result<std::vector<ProviderResponse>> responses_r =
      CallQuorum(host_->network(), providers, requests, spec.quorum_desired,
                 spec.quorum_min, join_rec, host_->resilience(),
                 host_->scoreboard(), spec.quorum_order, host_->metrics());
  if (!responses_r.ok() && responses_r.status().IsUnavailable() &&
      host_->resilience().enabled() &&
      spec.quorum_desired < num_providers) {
    // Graceful degradation, as in RunPipelineWithRetry: one wider round.
    host_->metrics()->GetCounter("ssdb_plan_replans_total")->Inc();
    responses_r =
        CallQuorum(host_->network(), providers, requests, num_providers,
                   spec.quorum_min, join_rec, host_->resilience(),
                   host_->scoreboard(), spec.quorum_order, host_->metrics());
  }
  if (!responses_r.ok()) return responses_r.status();
  std::vector<ProviderResponse> responses = std::move(*responses_r);
  if (join_rec != nullptr) join_rec->executed = true;

  struct Parsed {
    size_t provider;
    std::vector<JoinedRowPair> pairs;
  };
  std::vector<Parsed> parsed;
  for (const auto& r : responses) {
    Decoder dec(Slice(r.bytes));
    Status st = DecodeResponseHeader(&dec);
    if (!st.ok()) {
      if (st.IsNotSupported() || st.IsInvalidArgument()) return st;
      continue;
    }
    Parsed p;
    p.provider = r.provider;
    if (!DecodeJoinResponse(&dec, *spec.left.layout, *spec.right.layout,
                            &p.pairs)
             .ok()) {
      continue;
    }
    if (join_rec != nullptr) join_rec->rows_scanned += p.pairs.size();
    parsed.push_back(std::move(p));
  }
  std::unordered_map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < parsed.size(); ++i) {
    Buffer sig;
    for (const auto& pr : parsed[i].pairs) {
      sig.PutU64(pr.left.row_id);
      sig.PutU64(pr.right.row_id);
    }
    groups[Fnv1a64(sig.AsSlice())].push_back(i);
  }
  std::vector<size_t> best;
  for (auto& [sig, members] : groups) {
    if (members.size() > best.size()) best = members;
  }
  if (best.size() < host_->threshold_k()) {
    return Status::Corruption("client: providers disagree on the join result");
  }

  std::vector<const ColumnSpec*> lcols, rcols;
  for (const ColumnSpec& c : spec.left.schema->columns) lcols.push_back(&c);
  for (const ColumnSpec& c : spec.right.schema->columns) rcols.push_back(&c);

  const auto& reference = parsed[best.front()].pairs;
  QueryResult out = std::move(empty);
  for (size_t i = 0; i < reference.size(); ++i) {
    std::vector<std::pair<size_t, StoredRow>> lrows, rrows;
    for (size_t member : best) {
      lrows.emplace_back(parsed[member].provider,
                         parsed[member].pairs[i].left);
      rrows.emplace_back(parsed[member].provider,
                         parsed[member].pairs[i].right);
    }
    SSDB_ASSIGN_OR_RETURN(
        std::vector<Value> row,
        host_->ReconstructStoredRow(spec.left, lcols, /*full_row=*/true,
                                    lrows));
    SSDB_ASSIGN_OR_RETURN(
        std::vector<Value> rvals,
        host_->ReconstructStoredRow(spec.right, rcols, /*full_row=*/true,
                                    rrows));
    host_->OnRowsReconstructed(2);
    row.insert(row.end(), std::make_move_iterator(rvals.begin()),
               std::make_move_iterator(rvals.end()));
    out.rows.push_back(std::move(row));
  }
  out.count = out.rows.size();
  if (rec_rec != nullptr) {
    rec_rec->executed = true;
    rec_rec->shares_used = best.size();
    rec_rec->rows_reconstructed = 2 * out.rows.size();
  }
  return out;
}

}  // namespace ssdb
