// Per-query execution traces.
//
// Every query executed through the Planner/Executor pair carries a
// QueryTrace on its QueryResult: one record per plan node (pre-order),
// with the provider legs the node contacted, exact bytes up/down, the
// virtual-clock time charged, and row/share counters. The byte and
// clock figures are taken from the same accounting the Network charges
// to its ChannelStats and VirtualClock, so a trace's totals always
// reconcile exactly with the channel statistics for the query — and,
// like the channel statistics, they are identical for any
// fanout_threads setting.
//
// This header is standalone (no project includes) so QueryResult can
// embed a QueryTrace without pulling the plan layer into every client.

#ifndef SSDB_PLAN_TRACE_H_
#define SSDB_PLAN_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ssdb {

/// Caller-supplied context threaded from OutsourcedDatabase::Execute /
/// ExecuteBatch through the Executor into the finalized QueryTrace, so
/// the metering layer can attribute a request's resources to a tenant.
/// Empty tenant = unattributed (no meter series are charged).
struct RequestContext {
  std::string tenant;
};

/// One provider leg issued by a plan node.
struct PlanLegTrace {
  /// Network provider index of the leg.
  uint32_t provider = 0;
  uint64_t bytes_sent = 0;      ///< client -> provider
  uint64_t bytes_received = 0;  ///< provider -> client
  /// Modelled round-trip time of this leg (the slowest leg of a fan-out
  /// round is what the virtual clock advances by).
  uint64_t round_trip_us = 0;
  /// False when the leg failed (down / dropped / handler error).
  bool ok = true;
  /// 1-based attempt number of the logical leg this call served (> 1 for
  /// backoff retries).
  uint32_t attempt = 1;
  /// True for a hedge duplicate sent to a spare provider.
  bool hedge = false;
  /// True when the leg overran its deadline (no response bytes counted).
  bool deadline_exceeded = false;
};

/// Execution record of one plan node.
struct PlanNodeTrace {
  /// Node kind name, e.g. "RangeScan" (PlanNodeKindName).
  std::string name;
  /// Full display label, e.g. "RangeScan('Employees')".
  std::string label;
  /// Depth in the plan tree (root = 0), for indentation.
  int depth = 0;
  /// True once the executor ran this node.
  bool executed = false;
  /// Shard group this node fanned out to; -1 when the node is not bound
  /// to a single group (merge/join roots) or the deployment has one
  /// shard (keeping 1-shard traces identical to the seed system).
  int shard = -1;

  /// Provider legs issued by this node, in provider order per round.
  std::vector<PlanLegTrace> legs;
  uint64_t bytes_sent = 0;      ///< Sum over legs.
  uint64_t bytes_received = 0;  ///< Sum over legs.
  /// Virtual-clock advance attributed to this node: slowest leg per
  /// fan-out round plus any sequential replacement legs.
  uint64_t clock_us = 0;
  /// Virtual-clock reading when the node issued its first fan-out round
  /// (0 when the node never contacted a provider). Spans exported by the
  /// Tracer place the node at [clock_start_us, clock_start_us + clock_us].
  uint64_t clock_start_us = 0;
  /// Fan-out rounds issued (a corruption retry adds a second round).
  uint64_t round_trips = 0;
  /// Share rows (or join pairs / group partials) decoded from providers.
  uint64_t rows_scanned = 0;
  /// Plaintext rows (or aggregate values) reconstructed client-side.
  uint64_t rows_reconstructed = 0;
  /// Shares fed to Lagrange per reconstructed value (the k of k-of-n).
  uint64_t shares_used = 0;

  // Resilience counters (all zero when the resilience policy is
  // disabled). Each reconciles with the node's legs: `attempts` counts
  // legs with attempt > 1, `hedged` counts hedge legs,
  // `deadline_exceeded` counts legs that overran their deadline.
  uint64_t attempts = 0;           ///< Backoff-retry legs issued.
  uint64_t hedged = 0;             ///< Hedge legs launched.
  uint64_t deadline_exceeded = 0;  ///< Legs that overran their deadline.
  uint64_t breaker_skips = 0;      ///< Providers skipped breaker-open.
};

/// \brief Trace of one executed query plan (pre-order node records).
struct QueryTrace {
  std::vector<PlanNodeTrace> nodes;
  /// Tenant attribution stamped from the RequestContext the query was
  /// executed under (empty when the caller supplied none).
  std::string tenant;

  uint64_t total_bytes_sent() const;
  uint64_t total_bytes_received() const;
  /// Total virtual-clock advance across all nodes (equals the
  /// VirtualClock delta the query caused).
  uint64_t total_clock_us() const;
  uint64_t total_provider_legs() const;
  /// Envelope fan-out rounds across all nodes (a fused ExecuteBatch wave
  /// records its shared envelope rounds once, on the lead plan's fan-out
  /// node — "lead pays" attribution).
  uint64_t total_round_trips() const;
  /// Resilience totals across all nodes (zero with resilience disabled).
  uint64_t total_attempts() const;
  uint64_t total_hedged() const;
  uint64_t total_deadline_exceeded() const;
  uint64_t total_breaker_skips() const;

  /// Per-provider (bytes_sent, bytes_received) totals, keyed by network
  /// provider index; reconciles exactly with Network::stats(i) deltas.
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> PerProviderBytes() const;

  /// Human-readable rendering (the sql_shell TRACE command output).
  std::string ToString() const;
};

}  // namespace ssdb

#endif  // SSDB_PLAN_TRACE_H_
