#include "plan/planner.h"

#include <algorithm>

#include "codec/string27.h"

namespace ssdb {

namespace {

/// Provider-side action names (indexed by QueryAction).
const char* const kActionNames[] = {
    "FetchRows",  "FetchRowIds", "Count",  "PartialSum(provider-side)",
    "ArgMin",     "ArgMax",      "Median", "GroupedSum(provider-side)"};

std::unique_ptr<PlanNode> MakeNode(PlanNodeKind kind, std::string label) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->label = std::move(label);
  return node;
}

}  // namespace

Status Planner::ResolveAction(const Query& query, PlanTable* table,
                              QueryAction* action, uint32_t* target_column) {
  SSDB_ASSIGN_OR_RETURN(*table, host_->ResolveTable(query.table()));
  const TableSchema& schema = *table->schema;

  *target_column = 0;
  const bool grouped = !query.group_by().empty();
  if (grouped) {
    if (query.aggregate() != AggregateOp::kSum &&
        query.aggregate() != AggregateOp::kAvg &&
        query.aggregate() != AggregateOp::kCount) {
      return Status::NotSupported(
          "client: GROUP BY supports SUM/AVG/COUNT only");
    }
    SSDB_ASSIGN_OR_RETURN(size_t gidx, schema.ColumnIndex(query.group_by()));
    if (!schema.columns[gidx].exact_match()) {
      return Status::NotSupported(
          "client: GROUP BY column must be declared kCapExactMatch");
    }
    *action = QueryAction::kGroupedSum;
    // For COUNT the summed column is irrelevant; reuse the group column.
    const std::string& target = query.aggregate() == AggregateOp::kCount
                                    ? query.group_by()
                                    : query.aggregate_column();
    SSDB_ASSIGN_OR_RETURN(size_t tidx, schema.ColumnIndex(target));
    *target_column = static_cast<uint32_t>(tidx);
    return Status::OK();
  }
  switch (query.aggregate()) {
    case AggregateOp::kNone:
      *action = QueryAction::kFetchRows;
      return Status::OK();
    case AggregateOp::kCount:
      *action = QueryAction::kCount;
      return Status::OK();
    case AggregateOp::kSum:
    case AggregateOp::kAvg:
      *action = QueryAction::kPartialSum;
      break;
    case AggregateOp::kMin:
      *action = QueryAction::kArgMin;
      break;
    case AggregateOp::kMax:
      *action = QueryAction::kArgMax;
      break;
    case AggregateOp::kMedian:
      *action = QueryAction::kMedian;
      break;
  }
  SSDB_ASSIGN_OR_RETURN(size_t idx,
                        schema.ColumnIndex(query.aggregate_column()));
  const ColumnSpec& col = schema.columns[idx];
  if ((*action == QueryAction::kArgMin || *action == QueryAction::kArgMax ||
       *action == QueryAction::kMedian) &&
      !col.range()) {
    return Status::NotSupported(
        "client: MIN/MAX/MEDIAN need kCapRange on the aggregate column");
  }
  *target_column = static_cast<uint32_t>(idx);
  return Status::OK();
}

Result<std::string> Planner::DescribePredicate(const TableSchema& schema,
                                               const Predicate& pred) {
  SSDB_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(pred.column));
  const ColumnSpec& col = schema.columns[idx];
  switch (pred.kind) {
    case Predicate::Kind::kEq:
      return pred.column + " = " + pred.eq.ToString() +
             "  -> provider equality on deterministic shares (column " +
             std::to_string(idx) + ")";
    case Predicate::Kind::kBetween: {
      const int degree =
          static_cast<int>(std::min<size_t>(host_->threshold_k() - 1, 3));
      return pred.column + " BETWEEN " + pred.lo.ToString() + " AND " +
             pred.hi.ToString() +
             "  -> provider range scan on order-preserving shares (column " +
             std::to_string(idx) + ", degree-" + std::to_string(degree) +
             " polynomials, " +
             (host_->op_mode() == OpSlotMode::kPaperSlots
                  ? "paper slots"
                  : "recursive coefficients") +
             ")";
    }
    case Predicate::Kind::kPrefix: {
      if (col.type != ValueType::kString) {
        return Status::InvalidArgument(
            "client: prefix predicate needs a string column");
      }
      SSDB_ASSIGN_OR_RETURN(String27 codec, String27::Create(col.string_width));
      SSDB_ASSIGN_OR_RETURN(OpDomain range, codec.PrefixRange(pred.prefix));
      return pred.column + " LIKE '" + pred.prefix + "%'  -> base-27 codes [" +
             std::to_string(range.lo) + ", " + std::to_string(range.hi) +
             "], provider range scan on order-preserving shares";
    }
  }
  return Status::Internal("planner: unhandled predicate kind");
}

std::vector<size_t> Planner::RouteShards(const Query& query,
                                         const TableSchema& schema) const {
  const size_t shards = host_->num_shards();
  std::vector<size_t> all(shards);
  for (size_t s = 0; s < shards; ++s) all[s] = s;
  if (shards <= 1) return all;
  const ColumnSpec& key = schema.columns[0];
  Result<OpDomain> dom_r = key.CodeDomain();
  if (!dom_r.ok()) return all;
  const OpDomain& dom = *dom_r;

  bool any = false;
  std::vector<bool> routed(shards, true);
  auto intersect = [&](const std::vector<bool>& with) {
    for (size_t s = 0; s < shards; ++s) routed[s] = routed[s] && with[s];
    any = true;
  };
  auto interval = [&](int64_t lo, int64_t hi) {
    // A code interval maps to a contiguous shard interval only under
    // range partitioning (ShardForCode is monotone there).
    std::vector<bool> with(shards, false);
    if (lo <= hi) {
      const size_t s_lo = ShardForCode(Partitioner::kRange, shards, lo, dom);
      const size_t s_hi = ShardForCode(Partitioner::kRange, shards, hi, dom);
      for (size_t s = s_lo; s <= s_hi; ++s) with[s] = true;
    }
    intersect(with);
  };
  for (const Predicate& pred : query.predicates()) {
    if (pred.column != key.name) continue;
    switch (pred.kind) {
      case Predicate::Kind::kEq: {
        Result<int64_t> code = key.EncodeToCode(pred.eq);
        if (!code.ok()) break;  // Execution reproduces the 1-shard outcome.
        std::vector<bool> with(shards, false);
        with[ShardForCode(host_->partitioner(), shards, *code, dom)] = true;
        intersect(with);
        break;
      }
      case Predicate::Kind::kBetween: {
        if (host_->partitioner() != Partitioner::kRange) break;
        Result<int64_t> lo = key.EncodeToCode(pred.lo);
        Result<int64_t> hi = key.EncodeToCode(pred.hi);
        if (!lo.ok() || !hi.ok()) break;
        interval(*lo, *hi);
        break;
      }
      case Predicate::Kind::kPrefix: {
        if (host_->partitioner() != Partitioner::kRange) break;
        if (key.type != ValueType::kString) break;
        Result<String27> codec = String27::Create(key.string_width);
        if (!codec.ok()) break;
        Result<OpDomain> range = codec->PrefixRange(pred.prefix);
        if (!range.ok()) break;
        interval(range->lo, range->hi);
        break;
      }
    }
  }
  if (!any) return all;
  std::vector<size_t> out;
  for (size_t s = 0; s < shards; ++s) {
    if (routed[s]) out.push_back(s);
  }
  // A contradictory conjunction owns no shard; any single group answers
  // (with the provably empty result).
  if (out.empty()) out.push_back(0);
  return out;
}

void Planner::BindShard(PipelinePlan* pipe, size_t shard) {
  pipe->shard = shard;
  pipe->sharded = true;
  if (host_->resilience().prefer_healthy) {
    pipe->quorum_order = host_->scoreboard()->RankedWithin(
        host_->shard_provider_indices(shard),
        host_->network()->clock().now_us());
  }
  if (pipe->scan != nullptr) {
    pipe->scan->details.push_back("routed to shard group " +
                                  std::to_string(shard) + " of " +
                                  std::to_string(host_->num_shards()));
  }
}

Result<std::unique_ptr<PlanNode>> Planner::PlanPipeline(const Query& query,
                                                        PipelinePlan* out) {
  SSDB_RETURN_IF_ERROR(
      ResolveAction(query, &out->table, &out->action, &out->target_column));
  const TableSchema& schema = *out->table.schema;
  out->query = query;

  // Resolve GROUP BY and projection to provider column indices.
  if (out->action == QueryAction::kGroupedSum) {
    SSDB_ASSIGN_OR_RETURN(size_t gidx, schema.ColumnIndex(query.group_by()));
    out->group_column = static_cast<uint32_t>(gidx);
  }
  out->full_row = query.projection().empty();
  if (out->full_row) {
    for (const ColumnSpec& col : schema.columns) {
      out->result_columns.push_back(&col);
    }
    out->response_layout = *out->table.layout;
  } else {
    for (const std::string& name : query.projection()) {
      SSDB_ASSIGN_OR_RETURN(size_t idx, schema.ColumnIndex(name));
      out->projection.push_back(static_cast<uint32_t>(idx));
      out->result_columns.push_back(&schema.columns[idx]);
      out->response_layout.push_back((*out->table.layout)[idx]);
    }
  }

  // Read quorum (§III): k shares reconstruct. Scalar aggregate responses
  // (PartialSum / GroupedSum / Count) carry no integrity tags and a bare
  // k-share reconstruction has zero redundancy, so one extra provider is
  // consulted when available.
  const size_t n = host_->num_providers();
  const size_t k = host_->threshold_k();
  out->quorum_desired = k;
  if (query.aggregate() == AggregateOp::kSum ||
      query.aggregate() == AggregateOp::kAvg ||
      query.aggregate() == AggregateOp::kCount) {
    out->quorum_desired = std::min(n, k + 1);
  }
  out->quorum_min = k;
  // Scoreboard-aware quorum selection: contact the healthiest providers
  // first (breaker-open ones last). The ranking changes only which
  // positions serve the quorum, never the plan shape or labels. A
  // provider recovered from a kill (FaultController::Restart) rejoins
  // here automatically: ResetProvider cleared its scoreboard entry, so
  // the ranking treats it as a fresh optimistic peer instead of
  // deprioritizing it for its pre-crash failure history.
  if (host_->resilience().prefer_healthy) {
    out->quorum_order = host_->scoreboard()->RankedPositions(
        n, host_->network()->clock().now_us());
  }

  // Access-path selection: an equality predicate answers on deterministic
  // shares; otherwise a range/prefix predicate answers on
  // order-preserving shares; with no predicate the providers scan.
  bool has_eq = false, has_range = false;
  for (const Predicate& pred : query.predicates()) {
    if (pred.kind == Predicate::Kind::kEq) has_eq = true;
    if (pred.kind == Predicate::Kind::kBetween ||
        pred.kind == Predicate::Kind::kPrefix) {
      has_range = true;
    }
  }
  const PlanNodeKind scan_kind = has_eq      ? PlanNodeKind::kExactMatchScan
                                 : has_range ? PlanNodeKind::kRangeScan
                                             : PlanNodeKind::kFetchAllScan;

  auto scan = MakeNode(
      scan_kind, std::string(PlanNodeKindName(scan_kind)) + "('" +
                     out->table.name + "' table id " +
                     std::to_string(out->table.id) + ", quorum " +
                     std::to_string(out->quorum_desired) + " of " +
                     std::to_string(n) + ")");
  for (const Predicate& pred : query.predicates()) {
    SSDB_ASSIGN_OR_RETURN(std::string line, DescribePredicate(schema, pred));
    scan->details.push_back(std::move(line));
  }
  if (!out->full_row) {
    std::string proj = "projection:";
    for (const std::string& c : query.projection()) proj += " " + c;
    proj += " (pushed to providers; integrity tags unverifiable)";
    scan->details.push_back(std::move(proj));
  }
  out->scan = scan.get();
  std::unique_ptr<PlanNode> top = std::move(scan);

  const std::string kofn =
      std::to_string(k) + "-of-" + std::to_string(n);
  const bool fetches_rows = out->action == QueryAction::kFetchRows ||
                            out->action == QueryAction::kArgMin ||
                            out->action == QueryAction::kArgMax ||
                            out->action == QueryAction::kMedian;
  if (fetches_rows) {
    auto rec = MakeNode(PlanNodeKind::kReconstruct,
                        "Reconstruct[" + kofn + " Lagrange]");
    rec->details.push_back(
        out->full_row ? "row integrity tags checked on full-row reads"
                      : "projected read; integrity tags unverifiable");
    out->reconstruct = rec.get();
    rec->children.push_back(std::move(top));
    top = std::move(rec);
  }

  if (out->action != QueryAction::kFetchRows) {
    std::string label =
        "Aggregate[" +
        std::string(kActionNames[static_cast<int>(out->action)]) + "]";
    if (out->action != QueryAction::kCount) {
      label += " on column " + std::to_string(out->target_column);
    }
    auto agg = MakeNode(PlanNodeKind::kAggregate, std::move(label));
    switch (out->action) {
      case QueryAction::kCount:
        agg->details.push_back("majority vote over provider match counts");
        break;
      case QueryAction::kPartialSum:
        agg->details.push_back(
            "provider-side partial sums; client reconstructs the total (" +
            kofn + ")");
        break;
      case QueryAction::kGroupedSum:
        agg->details.push_back(
            "GROUP BY column " + std::to_string(out->group_column) +
            " on deterministic shares; per-group partials zipped by "
            "representative row id");
        break;
      default:
        agg->details.push_back(
            "client-side pick from reconstructed candidate rows");
        break;
    }
    out->aggregate = agg.get();
    agg->children.push_back(std::move(top));
    top = std::move(agg);
  }

  // The client-side pending write log overlays row results only; when the
  // log is non-empty at plan time (aggregates flush it beforehand), the
  // merge is an explicit plan step.
  if (query.aggregate() == AggregateOp::kNone &&
      host_->pending_lazy_ops() > 0) {
    auto overlay =
        MakeNode(PlanNodeKind::kLazyOverlay,
                 "LazyOverlay[" + std::to_string(host_->pending_lazy_ops()) +
                     " pending client-side ops]");
    out->overlay = overlay.get();
    overlay->children.push_back(std::move(top));
    top = std::move(overlay);
  }
  return top;
}

namespace {

/// The ShardMerge root's merge rule, by logical action.
const char* MergeRuleName(QueryAction action) {
  switch (action) {
    case QueryAction::kCount:
      return "counts summed";
    case QueryAction::kPartialSum:
      return "partial sums added";
    case QueryAction::kArgMin:
    case QueryAction::kArgMax:
      return "global extreme picked client-side";
    case QueryAction::kMedian:
      return "global median picked client-side";
    case QueryAction::kGroupedSum:
      return "groups merged by key";
    default:
      return "merged by row id";
  }
}

}  // namespace

Result<QueryPlan> Planner::Plan(const Query& query) {
  QueryPlan plan;
  plan.n = host_->num_providers();
  plan.k = host_->threshold_k();
  plan.shards = host_->num_shards();

  if (!query.disjuncts().empty()) {
    if (query.aggregate() != AggregateOp::kNone) {
      return Status::NotSupported(
          "client: disjunctive predicates only support row-fetching queries");
    }
    plan.is_union = true;
    auto root = MakeNode(
        PlanNodeKind::kDisjunctUnion,
        "DisjunctUnion[" + std::to_string(query.disjuncts().size()) +
            " branches, merged by row id]");
    std::vector<bool> branch_shards(plan.shards, false);
    for (const Predicate& disjunct : query.disjuncts()) {
      // One sub-query per disjunct; the conjuncts apply to each branch.
      Query sub = Query::Select(query.table());
      for (const Predicate& p : query.predicates()) sub.Where(p);
      sub.Where(disjunct);
      if (!query.projection().empty()) sub.Project(query.projection());
      if (plan.shards <= 1) {
        PipelinePlan pipeline;
        SSDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> child,
                              PlanPipeline(sub, &pipeline));
        root->children.push_back(std::move(child));
        plan.pipelines.push_back(std::move(pipeline));
        continue;
      }
      // Multi-shard: one pipeline per (branch, routed shard group); the
      // row-id merge dedups across both axes.
      SSDB_ASSIGN_OR_RETURN(PlanTable table,
                            host_->ResolveTable(query.table()));
      for (size_t s : RouteShards(sub, *table.schema)) {
        PipelinePlan pipeline;
        SSDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> child,
                              PlanPipeline(sub, &pipeline));
        BindShard(&pipeline, s);
        branch_shards[s] = true;
        root->children.push_back(std::move(child));
        plan.pipelines.push_back(std::move(pipeline));
      }
    }
    for (size_t s = 0; s < branch_shards.size(); ++s) {
      if (branch_shards[s]) plan.routed_shards.push_back(s);
    }
    plan.root = std::move(root);
    return plan;
  }

  if (plan.shards <= 1) {
    PipelinePlan pipeline;
    SSDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> root,
                          PlanPipeline(query, &pipeline));
    plan.pipelines.push_back(std::move(pipeline));
    plan.root = std::move(root);
    return plan;
  }

  // Multi-shard: route on the partition key's conjuncts.
  PlanTable table;
  QueryAction action = QueryAction::kFetchRows;
  uint32_t target_column = 0;
  SSDB_RETURN_IF_ERROR(ResolveAction(query, &table, &action, &target_column));
  plan.routed_shards = RouteShards(query, *table.schema);

  if (plan.routed_shards.size() == 1) {
    // Every matching row lives in one shard group; the plan is the seed
    // system's, aimed at that group (aggregates stay provider-side).
    PipelinePlan pipeline;
    SSDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> root,
                          PlanPipeline(query, &pipeline));
    BindShard(&pipeline, plan.routed_shards.front());
    plan.pipelines.push_back(std::move(pipeline));
    plan.root = std::move(root);
    return plan;
  }

  // Scatter-gather: one pipeline per routed shard group under a
  // ShardMerge root; partial results merge client-side.
  plan.is_scatter = true;
  plan.scatter_action = action;
  Query sub = query;
  if (action == QueryAction::kMedian) {
    // Per-shard medians do not compose; each group returns its matching
    // rows and the client picks the global median by key code.
    plan.scatter_target_column = target_column;
    sub.Aggregate(AggregateOp::kNone);
  }
  if (action == QueryAction::kMedian || action == QueryAction::kArgMin ||
      action == QueryAction::kArgMax) {
    const std::string& target = table.schema->columns[target_column].name;
    bool present = query.projection().empty();
    for (const std::string& c : query.projection()) present |= (c == target);
    if (!present) {
      // The client-side pick needs the aggregate target; append it to the
      // projection and strip it from the merged rows.
      std::vector<std::string> proj = query.projection();
      proj.push_back(target);
      sub.Project(std::move(proj));
      plan.scatter_target_column = target_column;
      plan.scatter_strip_appended = true;
    }
  }

  auto root = MakeNode(
      PlanNodeKind::kShardMerge,
      "ShardMerge[" + std::to_string(plan.routed_shards.size()) + " of " +
          std::to_string(plan.shards) + " shard groups, " +
          MergeRuleName(action) + "]");
  root->details.push_back(
      std::string(PartitionerName(host_->partitioner())) +
      " partitioning on key column '" + table.schema->columns[0].name + "'");
  for (size_t s : plan.routed_shards) {
    PipelinePlan pipeline;
    SSDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> child,
                          PlanPipeline(sub, &pipeline));
    BindShard(&pipeline, s);
    root->children.push_back(std::move(child));
    plan.pipelines.push_back(std::move(pipeline));
  }
  plan.root = std::move(root);
  return plan;
}

Result<QueryPlan> Planner::Plan(const JoinQuery& join) {
  QueryPlan plan;
  plan.is_join = true;
  plan.n = host_->num_providers();
  plan.k = host_->threshold_k();
  plan.shards = host_->num_shards();
  JoinPlanSpec& spec = plan.join;
  spec.query = join;

  Result<PlanTable> left = host_->ResolveTable(join.left_table);
  Result<PlanTable> right = host_->ResolveTable(join.right_table);
  if (!left.ok() || !right.ok()) {
    return Status::NotFound("client: unknown table in join");
  }
  spec.left = *left;
  spec.right = *right;
  SSDB_ASSIGN_OR_RETURN(size_t lcol,
                        spec.left.schema->ColumnIndex(join.left_column));
  SSDB_ASSIGN_OR_RETURN(size_t rcol,
                        spec.right.schema->ColumnIndex(join.right_column));
  spec.left_column = static_cast<uint32_t>(lcol);
  spec.right_column = static_cast<uint32_t>(rcol);
  const ColumnSpec& lspec = spec.left.schema->columns[lcol];
  const ColumnSpec& rspec = spec.right.schema->columns[rcol];
  if (!lspec.exact_match() || !rspec.exact_match()) {
    return Status::NotSupported(
        "client: join columns must be declared kCapExactMatch");
  }
  // The paper's limitation: joins work only within one domain (§V.A).
  if (lspec.DomainTag() != rspec.DomainTag()) {
    return Status::NotSupported(
        "client: cross-domain joins are not supported by the secret-sharing "
        "scheme (columns '" + lspec.name + "' and '" + rspec.name +
        "' are in different domains)");
  }
  SSDB_ASSIGN_OR_RETURN(OpDomain ldom, lspec.CodeDomain());
  SSDB_ASSIGN_OR_RETURN(OpDomain rdom, rspec.CodeDomain());
  if (ldom.lo != rdom.lo || ldom.hi != rdom.hi) {
    return Status::NotSupported(
        "client: join columns declare different code domains");
  }
  if (plan.shards > 1) {
    // Shard groups partition each table on its first column; only a join
    // on both partition keys is co-located (matching codes hash or range
    // to the same group on both sides).
    if (lcol != 0 || rcol != 0) {
      return Status::NotSupported(
          "client: sharded joins need the partition key (the first schema "
          "column) on both sides");
    }
    for (size_t s = 0; s < plan.shards; ++s) plan.routed_shards.push_back(s);
  }
  spec.quorum_desired = plan.k;
  spec.quorum_min = plan.k;
  if (host_->resilience().prefer_healthy && plan.shards <= 1) {
    spec.quorum_order = host_->scoreboard()->RankedPositions(
        plan.n, host_->network()->clock().now_us());
  }

  auto join_node = MakeNode(
      PlanNodeKind::kEquiJoin,
      "EquiJoin('" + join.left_table + "'." + join.left_column + " = '" +
          join.right_table + "'." + join.right_column + ", quorum " +
          std::to_string(spec.quorum_desired) + " of " +
          std::to_string(plan.n) + ")");
  join_node->details.push_back(
      "provider-side same-domain join on deterministic shares (domain '" +
      lspec.domain_name + "')");
  if (plan.shards > 1) {
    join_node->details.push_back(
        "runs in every one of the " + std::to_string(plan.shards) +
        " shard groups (key-partitioned rows join co-located)");
  }
  for (const Predicate& pred : join.left_predicates) {
    SSDB_ASSIGN_OR_RETURN(std::string line,
                          DescribePredicate(*spec.left.schema, pred));
    join_node->details.push_back("left: " + line);
  }
  for (const Predicate& pred : join.right_predicates) {
    SSDB_ASSIGN_OR_RETURN(std::string line,
                          DescribePredicate(*spec.right.schema, pred));
    join_node->details.push_back("right: " + line);
  }
  spec.join = join_node.get();

  auto rec = MakeNode(PlanNodeKind::kReconstruct,
                      "Reconstruct[" + std::to_string(plan.k) + "-of-" +
                          std::to_string(plan.n) + " Lagrange]");
  rec->details.push_back("row integrity tags checked on full-row reads");
  spec.reconstruct = rec.get();
  rec->children.push_back(std::move(join_node));
  plan.root = std::move(rec);
  return plan;
}

}  // namespace ssdb
