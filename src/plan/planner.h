// The Planner: turns a Query / JoinQuery into an executable QueryPlan.
//
// Owns the strategy selection that used to live inside the client's
// execution methods: which share representation answers each predicate
// (deterministic equality vs order-preserving range), the provider-side
// action (fetch / count / partial sums / grouped sums / arg-extrema /
// join), the read quorum (k, widened to k+1 for unauthenticated scalar
// aggregates), and whether a client-side lazy overlay applies. Planning
// never contacts a provider and performs no share arithmetic — EXPLAIN
// is exactly a rendered plan.

#ifndef SSDB_PLAN_PLANNER_H_
#define SSDB_PLAN_PLANNER_H_

#include "plan/host.h"
#include "plan/plan.h"

namespace ssdb {

class Planner {
 public:
  explicit Planner(PlanHost* host) : host_(host) {}

  /// Plans a single-table query (exact match / range / aggregates /
  /// disjunct unions).
  Result<QueryPlan> Plan(const Query& query);

  /// Plans a same-domain equi-join (§V.A Join).
  Result<QueryPlan> Plan(const JoinQuery& join);

 private:
  /// Builds one scan pipeline (Scan -> [Reconstruct] -> [Aggregate] ->
  /// [LazyOverlay]) and returns its root node.
  Result<std::unique_ptr<PlanNode>> PlanPipeline(const Query& query,
                                                 PipelinePlan* out);
  /// Shard groups the query's conjuncts on the partition key (the first
  /// schema column) allow: equality routes under both partitioners,
  /// range/prefix prune to a contiguous shard interval under range
  /// partitioning. Predicates that fail to encode are skipped (execution
  /// reproduces the 1-shard outcome); a contradictory conjunction routes
  /// to a single arbitrary group (the result is provably empty).
  std::vector<size_t> RouteShards(const Query& query,
                                  const TableSchema& schema) const;
  /// Binds a pipeline to one shard group: shard-local scoreboard quorum
  /// order and an EXPLAIN routing line on the scan node.
  void BindShard(PipelinePlan* pipe, size_t shard);
  /// Resolves table, validates the aggregate clause and selects the
  /// provider-side action (the former ResolveTableAndPreds).
  Status ResolveAction(const Query& query, PlanTable* table,
                       QueryAction* action, uint32_t* target_column);
  Result<std::string> DescribePredicate(const TableSchema& schema,
                                        const Predicate& pred);

  PlanHost* host_;
};

}  // namespace ssdb

#endif  // SSDB_PLAN_PLANNER_H_
