#include "plan/trace.h"

#include <cinttypes>
#include <cstdio>

namespace ssdb {

uint64_t QueryTrace::total_bytes_sent() const {
  uint64_t total = 0;
  for (const PlanNodeTrace& n : nodes) total += n.bytes_sent;
  return total;
}

uint64_t QueryTrace::total_bytes_received() const {
  uint64_t total = 0;
  for (const PlanNodeTrace& n : nodes) total += n.bytes_received;
  return total;
}

uint64_t QueryTrace::total_clock_us() const {
  uint64_t total = 0;
  for (const PlanNodeTrace& n : nodes) total += n.clock_us;
  return total;
}

uint64_t QueryTrace::total_provider_legs() const {
  uint64_t total = 0;
  for (const PlanNodeTrace& n : nodes) total += n.legs.size();
  return total;
}

uint64_t QueryTrace::total_round_trips() const {
  uint64_t total = 0;
  for (const PlanNodeTrace& n : nodes) total += n.round_trips;
  return total;
}

uint64_t QueryTrace::total_attempts() const {
  uint64_t total = 0;
  for (const PlanNodeTrace& n : nodes) total += n.attempts;
  return total;
}

uint64_t QueryTrace::total_hedged() const {
  uint64_t total = 0;
  for (const PlanNodeTrace& n : nodes) total += n.hedged;
  return total;
}

uint64_t QueryTrace::total_deadline_exceeded() const {
  uint64_t total = 0;
  for (const PlanNodeTrace& n : nodes) total += n.deadline_exceeded;
  return total;
}

uint64_t QueryTrace::total_breaker_skips() const {
  uint64_t total = 0;
  for (const PlanNodeTrace& n : nodes) total += n.breaker_skips;
  return total;
}

std::map<uint32_t, std::pair<uint64_t, uint64_t>> QueryTrace::PerProviderBytes()
    const {
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> per;
  for (const PlanNodeTrace& n : nodes) {
    for (const PlanLegTrace& leg : n.legs) {
      auto& slot = per[leg.provider];
      slot.first += leg.bytes_sent;
      slot.second += leg.bytes_received;
    }
  }
  return per;
}

std::string QueryTrace::ToString() const {
  std::string out;
  char line[256];
  for (const PlanNodeTrace& n : nodes) {
    out.append(static_cast<size_t>(n.depth) * 2, ' ');
    out += n.label;
    if (n.shard >= 0) {
      std::snprintf(line, sizeof(line), "  [shard %d]", n.shard);
      out += line;
    }
    if (!n.executed) {
      out += "  [not executed]\n";
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  legs=%zu up=%" PRIu64 "B down=%" PRIu64 "B clock=%" PRIu64
                  "us rounds=%" PRIu64,
                  n.legs.size(), n.bytes_sent, n.bytes_received, n.clock_us,
                  n.round_trips);
    out += line;
    if (n.rows_scanned != 0) {
      std::snprintf(line, sizeof(line), " scanned=%" PRIu64, n.rows_scanned);
      out += line;
    }
    if (n.rows_reconstructed != 0) {
      std::snprintf(line, sizeof(line), " reconstructed=%" PRIu64,
                    n.rows_reconstructed);
      out += line;
    }
    if (n.shares_used != 0) {
      std::snprintf(line, sizeof(line), " shares=%" PRIu64, n.shares_used);
      out += line;
    }
    if (n.attempts != 0) {
      std::snprintf(line, sizeof(line), " retries=%" PRIu64, n.attempts);
      out += line;
    }
    if (n.hedged != 0) {
      std::snprintf(line, sizeof(line), " hedged=%" PRIu64, n.hedged);
      out += line;
    }
    if (n.deadline_exceeded != 0) {
      std::snprintf(line, sizeof(line), " deadline_exceeded=%" PRIu64,
                    n.deadline_exceeded);
      out += line;
    }
    if (n.breaker_skips != 0) {
      std::snprintf(line, sizeof(line), " breaker_skips=%" PRIu64,
                    n.breaker_skips);
      out += line;
    }
    out += "\n";
    for (const PlanLegTrace& leg : n.legs) {
      out.append(static_cast<size_t>(n.depth) * 2 + 2, ' ');
      std::snprintf(line, sizeof(line),
                    "leg provider=%u up=%" PRIu64 "B down=%" PRIu64
                    "B rtt=%" PRIu64 "us%s%s%s%s\n",
                    leg.provider, leg.bytes_sent, leg.bytes_received,
                    leg.round_trip_us, leg.attempt > 1 ? " RETRY" : "",
                    leg.hedge ? " HEDGE" : "",
                    leg.deadline_exceeded ? " DEADLINE" : "",
                    leg.ok ? "" : " FAILED");
      out += line;
    }
  }
  return out;
}

}  // namespace ssdb
