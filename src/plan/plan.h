// The query plan IR.
//
// The §V.A provider-side strategies — exact match on deterministic
// shares, range filtering on order-preserving shares, provider-side
// aggregation, same-domain equi-joins — are represented as an explicit
// tree of plan nodes built by the Planner (plan/planner.h) and walked
// by the Executor (plan/executor.h). EXPLAIN output is rendered from
// this tree, and the per-query QueryTrace records one entry per node,
// so what is explained, what is executed, and what is traced can never
// drift apart.

#ifndef SSDB_PLAN_PLAN_H_
#define SSDB_PLAN_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/query.h"
#include "codec/schema.h"
#include "provider/protocol.h"

namespace ssdb {

enum class PlanNodeKind : uint8_t {
  kExactMatchScan,  ///< Provider equality filter on deterministic shares.
  kRangeScan,       ///< Provider range filter on order-preserving shares.
  kFetchAllScan,    ///< Unfiltered provider scan (no predicates).
  kDisjunctUnion,   ///< Union of per-disjunct sub-plans by row id.
  kAggregate,       ///< Provider-side partials or client-side pick.
  kEquiJoin,        ///< Provider-side same-domain equi-join.
  kReconstruct,     ///< k-of-n Lagrange reconstruction of share rows.
  kLazyOverlay,     ///< Merge of the client-side pending write log.
  kShardMerge,      ///< Client-side merge of per-shard-group pipelines.
};

const char* PlanNodeKindName(PlanNodeKind kind);

/// One node of a query plan. Labels and details are what EXPLAIN prints
/// and what the node's QueryTrace record carries.
struct PlanNode {
  PlanNodeKind kind = PlanNodeKind::kFetchAllScan;
  /// Display label, e.g. "RangeScan('Employees')".
  std::string label;
  /// Indented annotation lines (predicate rewrites, quorum, codec notes).
  std::vector<std::string> details;
  std::vector<std::unique_ptr<PlanNode>> children;
};

/// Resolved catalog metadata of one table; the pointers reference the
/// client's registration and stay valid for the plan's lifetime.
struct PlanTable {
  std::string name;
  uint32_t id = 0;
  const TableSchema* schema = nullptr;
  const std::vector<ProviderColumnLayout>* layout = nullptr;
};

/// One scan pipeline: Scan -> [Reconstruct] -> [Aggregate] ->
/// [LazyOverlay]. A plain query has one pipeline; a disjunctive query
/// has one per disjunct under a DisjunctUnion root.
struct PipelinePlan {
  /// The (sub)query this pipeline answers. For disjunct children this is
  /// the synthesized conjuncts+disjunct query.
  Query query = Query::Select("");
  PlanTable table;
  QueryAction action = QueryAction::kFetchRows;
  uint32_t target_column = 0;
  uint32_t group_column = 0;
  std::vector<uint32_t> projection;  ///< Provider column indices.
  bool full_row = true;
  std::vector<const ColumnSpec*> result_columns;
  std::vector<ProviderColumnLayout> response_layout;
  size_t quorum_desired = 0;  ///< Providers contacted in the first round.
  size_t quorum_min = 0;      ///< Responses required (the threshold k).
  /// Provider positions in contact order, healthiest first (scoreboard
  /// ranking); empty = the classic identity order.
  std::vector<size_t> quorum_order;
  /// Shard group this pipeline fans out to (always 0 at one shard).
  size_t shard = 0;
  /// True only in a multi-shard deployment: the executor then resolves
  /// providers through shard_provider_indices(shard) and stamps the shard
  /// on the pipeline's trace records.
  bool sharded = false;

  // Non-owning pointers into the plan tree (null when the node is absent).
  PlanNode* scan = nullptr;
  PlanNode* reconstruct = nullptr;
  PlanNode* aggregate = nullptr;
  PlanNode* overlay = nullptr;
};

/// Resolved equi-join plan: Reconstruct -> EquiJoin.
struct JoinPlanSpec {
  JoinQuery query;
  PlanTable left, right;
  uint32_t left_column = 0;
  uint32_t right_column = 0;
  size_t quorum_desired = 0;
  size_t quorum_min = 0;
  /// Provider positions in contact order (see PipelinePlan::quorum_order).
  std::vector<size_t> quorum_order;

  PlanNode* join = nullptr;
  PlanNode* reconstruct = nullptr;
};

/// \brief A complete, executable query plan.
struct QueryPlan {
  std::unique_ptr<PlanNode> root;
  bool is_join = false;
  /// Root is a DisjunctUnion over pipelines (is_join == false).
  bool is_union = false;
  /// Root is a ShardMerge over per-shard-group pipelines: the fan-out
  /// goes to every routed group in one parallel round and the partial
  /// results merge client-side according to scatter_action.
  bool is_scatter = false;
  /// The logical provider-side action of a scatter plan (the action the
  /// 1-shard plan would have run); per-shard pipelines may differ (a
  /// scattered MEDIAN fetches rows per shard and picks client-side).
  QueryAction scatter_action = QueryAction::kFetchRows;
  /// Schema column index of the aggregate target of a scattered MEDIAN
  /// (its per-shard fetch pipelines carry no aggregate of their own).
  uint32_t scatter_target_column = 0;
  /// True when the aggregate target column was appended to the per-shard
  /// projection solely for the client-side pick; the merge strips the
  /// extra trailing value from every result row.
  bool scatter_strip_appended = false;
  std::vector<PipelinePlan> pipelines;
  JoinPlanSpec join;
  size_t n = 0;  ///< Providers per shard group.
  size_t k = 0;  ///< Reconstruction threshold.
  /// Shard groups in the deployment (1 = the seed system).
  size_t shards = 1;
  /// Shard groups this plan routes to (subset of 0..shards-1; every
  /// group for unrouted scans). Singleton for exact-match queries under
  /// any partitioner and pruned ranges under range partitioning.
  std::vector<size_t> routed_shards;

  /// Renders the EXPLAIN text from the node tree.
  std::string Render() const;
};

}  // namespace ssdb

#endif  // SSDB_PLAN_PLAN_H_
