#include "field/poly.h"

namespace ssdb {

Fp61 FpPoly::Eval(Fp61 x) const {
  Fp61 acc;
  for (size_t i = coeffs_.size(); i-- > 0;) {
    acc = acc * x + coeffs_[i];
  }
  return acc;
}

Result<std::vector<Fp61>> LagrangeBasisAtZero(const std::vector<Fp61>& xs) {
  if (xs.empty()) {
    return Status::InvalidArgument("LagrangeBasisAtZero: no points");
  }
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i].is_zero()) {
      return Status::InvalidArgument(
          "LagrangeBasisAtZero: x = 0 is reserved for the secret");
    }
    for (size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[i] == xs[j]) {
        return Status::InvalidArgument(
            "LagrangeBasisAtZero: duplicate x coordinate");
      }
    }
  }
  // basis_i = prod_{j != i} x_j / (x_j - x_i)
  std::vector<Fp61> basis(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    Fp61 num = Fp61::FromCanonical(1);
    Fp61 den = Fp61::FromCanonical(1);
    for (size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      num *= xs[j];
      den *= xs[j] - xs[i];
    }
    SSDB_ASSIGN_OR_RETURN(Fp61 inv, den.Inverse());
    basis[i] = num * inv;
  }
  return basis;
}

Result<std::vector<Fp61>> LagrangeBasisAt(const std::vector<Fp61>& xs,
                                          Fp61 x) {
  if (xs.empty()) {
    return Status::InvalidArgument("LagrangeBasisAt: no points");
  }
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[i] == xs[j]) {
        return Status::InvalidArgument(
            "LagrangeBasisAt: duplicate x coordinate");
      }
    }
  }
  // w_i = prod_{j != i} (x - x_j) / (x_i - x_j)
  std::vector<Fp61> basis(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    Fp61 num = Fp61::FromCanonical(1);
    Fp61 den = Fp61::FromCanonical(1);
    for (size_t j = 0; j < xs.size(); ++j) {
      if (j == i) continue;
      num *= x - xs[j];
      den *= xs[i] - xs[j];
    }
    SSDB_ASSIGN_OR_RETURN(Fp61 inv, den.Inverse());
    basis[i] = num * inv;
  }
  return basis;
}

Result<Fp61> LagrangeAtZero(const std::vector<FpPoint>& points) {
  std::vector<Fp61> xs(points.size());
  for (size_t i = 0; i < points.size(); ++i) xs[i] = points[i].x;
  SSDB_ASSIGN_OR_RETURN(std::vector<Fp61> basis, LagrangeBasisAtZero(xs));
  Fp61 acc;
  for (size_t i = 0; i < points.size(); ++i) {
    acc += basis[i] * points[i].y;
  }
  return acc;
}

Result<FpPoly> Interpolate(const std::vector<FpPoint>& points) {
  const size_t n = points.size();
  if (n == 0) return Status::InvalidArgument("Interpolate: no points");
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (points[i].x == points[j].x) {
        return Status::InvalidArgument("Interpolate: duplicate x coordinate");
      }
    }
  }
  // Newton divided differences.
  std::vector<Fp61> dd(n);
  for (size_t i = 0; i < n; ++i) dd[i] = points[i].y;
  std::vector<Fp61> newton(n);  // Newton coefficients c_0..c_{n-1}
  newton[0] = dd[0];
  for (size_t level = 1; level < n; ++level) {
    for (size_t i = n - 1; i >= level; --i) {
      Fp61 denom = points[i].x - points[i - level].x;
      SSDB_ASSIGN_OR_RETURN(Fp61 inv, denom.Inverse());
      dd[i] = (dd[i] - dd[i - 1]) * inv;
      if (i == level) break;  // avoid size_t underflow
    }
    newton[level] = dd[level];
  }
  // Expand Newton form into monomial coefficients:
  // p(x) = c_0 + c_1 (x-x_0) + c_2 (x-x_0)(x-x_1) + ...
  std::vector<Fp61> coeffs(n);
  std::vector<Fp61> basis(n);  // current product polynomial
  basis[0] = Fp61::FromCanonical(1);
  size_t basis_len = 1;
  for (size_t level = 0; level < n; ++level) {
    for (size_t i = 0; i < basis_len; ++i) {
      coeffs[i] += newton[level] * basis[i];
    }
    if (level + 1 < n) {
      // basis *= (x - x_level)
      Fp61 neg_x = -points[level].x;
      for (size_t i = basis_len; i-- > 0;) {
        basis[i + 1] += basis[i];
        basis[i] *= neg_x;
      }
      ++basis_len;
    }
  }
  return FpPoly(std::move(coeffs));
}

}  // namespace ssdb
