#include "field/linalg.h"

namespace ssdb {

Result<std::vector<Fp61>> SolveLinearSystem(FpMatrix a, std::vector<Fp61> b) {
  const size_t n = a.n();
  if (b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: dimension mismatch");
  }
  // Forward elimination.
  for (size_t col = 0; col < n; ++col) {
    // Find a non-zero pivot (any non-zero works in an exact field).
    size_t pivot = col;
    while (pivot < n && a.at(pivot, col).is_zero()) ++pivot;
    if (pivot == n) {
      return Status::Corruption("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(a.at(pivot, j), a.at(col, j));
      std::swap(b[pivot], b[col]);
    }
    SSDB_ASSIGN_OR_RETURN(Fp61 inv, a.at(col, col).Inverse());
    for (size_t j = col; j < n; ++j) a.at(col, j) *= inv;
    b[col] *= inv;
    for (size_t row = col + 1; row < n; ++row) {
      const Fp61 factor = a.at(row, col);
      if (factor.is_zero()) continue;
      for (size_t j = col; j < n; ++j) {
        a.at(row, j) -= factor * a.at(col, j);
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<Fp61> x(n);
  for (size_t row = n; row-- > 0;) {
    Fp61 acc = b[row];
    for (size_t j = row + 1; j < n; ++j) {
      acc -= a.at(row, j) * x[j];
    }
    x[row] = acc;  // diagonal normalized to 1
  }
  return x;
}

}  // namespace ssdb
