#include "field/fp61.h"

namespace ssdb {

Fp61 Fp61::Pow(uint64_t e) const {
  Fp61 base = *this;
  Fp61 acc = Fp61::FromCanonical(1);
  while (e != 0) {
    if (e & 1) acc *= base;
    base *= base;
    e >>= 1;
  }
  return acc;
}

Result<Fp61> Fp61::Inverse() const {
  if (is_zero()) {
    return Status::InvalidArgument("Fp61::Inverse: zero has no inverse");
  }
  return Pow(kP - 2);
}

}  // namespace ssdb
