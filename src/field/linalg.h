// Dense linear algebra over F_{2^61-1}.
//
// Used by the Woodruff-Yekhanin PIR client to solve the confluent
// (Hermite) interpolation system, and available for share-reconstruction
// variants that prefer a direct solve over Lagrange.

#ifndef SSDB_FIELD_LINALG_H_
#define SSDB_FIELD_LINALG_H_

#include <vector>

#include "common/status.h"
#include "field/fp61.h"

namespace ssdb {

/// \brief Square dense matrix over F_p (row-major).
class FpMatrix {
 public:
  explicit FpMatrix(size_t n) : n_(n), cells_(n * n) {}

  size_t n() const { return n_; }
  Fp61& at(size_t row, size_t col) { return cells_[row * n_ + col]; }
  const Fp61& at(size_t row, size_t col) const {
    return cells_[row * n_ + col];
  }

 private:
  size_t n_;
  std::vector<Fp61> cells_;
};

/// Solves A x = b by Gaussian elimination with partial (non-zero) pivoting.
/// Returns InvalidArgument on dimension mismatch and Corruption when A is
/// singular.
Result<std::vector<Fp61>> SolveLinearSystem(FpMatrix a,
                                            std::vector<Fp61> b);

}  // namespace ssdb

#endif  // SSDB_FIELD_LINALG_H_
