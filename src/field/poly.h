// Polynomials over F_{2^61-1}: evaluation, interpolation, Vandermonde solve.
//
// These are the mathematical primitives behind Shamir sharing (Section III):
// a secret v becomes the constant term of a degree-(k-1) polynomial q, the
// i-th provider stores q(x_i), and the data source recovers v = q(0) by
// Lagrange interpolation from any k shares.

#ifndef SSDB_FIELD_POLY_H_
#define SSDB_FIELD_POLY_H_

#include <vector>

#include "common/status.h"
#include "field/fp61.h"

namespace ssdb {

/// \brief Dense polynomial over F_p, coefficients in ascending-degree order
/// (`coeffs[0]` is the constant term).
class FpPoly {
 public:
  FpPoly() = default;
  explicit FpPoly(std::vector<Fp61> coeffs) : coeffs_(std::move(coeffs)) {}

  /// Degree-(k-1) polynomial with constant term `secret` and the remaining
  /// k-1 coefficients supplied by `coeff_source(j)` for j in [1, k).
  template <typename CoeffFn>
  static FpPoly Random(Fp61 secret, size_t k, CoeffFn&& coeff_source) {
    std::vector<Fp61> c(k);
    c[0] = secret;
    for (size_t j = 1; j < k; ++j) c[j] = coeff_source(j);
    return FpPoly(std::move(c));
  }

  const std::vector<Fp61>& coeffs() const { return coeffs_; }
  size_t size() const { return coeffs_.size(); }

  /// Horner evaluation q(x).
  Fp61 Eval(Fp61 x) const;

  bool operator==(const FpPoly& o) const { return coeffs_ == o.coeffs_; }

 private:
  std::vector<Fp61> coeffs_;
};

/// Evaluates Lagrange interpolation at x = 0 through `points`.
///
/// This is the share-reconstruction kernel: given k (x_i, q(x_i)) pairs
/// with distinct non-zero x_i it returns q(0), i.e. the secret. Returns
/// InvalidArgument on duplicate or zero x coordinates or an empty input.
Result<Fp61> LagrangeAtZero(const std::vector<FpPoint>& points);

/// Precomputed Lagrange basis coefficients at x = 0 for a fixed point set:
/// secret = sum_i basis[i] * y_i. Reconstruction of many values from the
/// same provider subset amortizes the inversions.
Result<std::vector<Fp61>> LagrangeBasisAtZero(const std::vector<Fp61>& xs);

/// Lagrange basis weights at an arbitrary point `x`: for the unique
/// degree < |xs| polynomial q through (xs[i], y_i), q(x) = sum_i w[i]*y_i.
/// Used to turn the ">k shares consistent?" check into one cached dot
/// product per extra share instead of a full re-interpolation.
Result<std::vector<Fp61>> LagrangeBasisAt(const std::vector<Fp61>& xs, Fp61 x);

/// Full interpolation: returns the unique degree < n polynomial through the
/// n points (Newton's divided differences). Distinct x required.
Result<FpPoly> Interpolate(const std::vector<FpPoint>& points);

}  // namespace ssdb

#endif  // SSDB_FIELD_POLY_H_
