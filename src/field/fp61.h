// Arithmetic in the prime field F_p with p = 2^61 - 1 (a Mersenne prime).
//
// All information-theoretic Shamir shares (Section III of the paper) live
// in this field. The Mersenne structure gives branch-light reduction:
// a 122-bit product reduces with two shifts and adds. 2^61-1 comfortably
// holds 60-bit application values (salaries, encoded names up to 12
// characters, row ids) while keeping sums of ~2^60 values exact for the
// SUM/AVERAGE aggregation path as long as the true sum stays below p.

#ifndef SSDB_FIELD_FP61_H_
#define SSDB_FIELD_FP61_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/wide_int.h"

namespace ssdb {

/// \brief Element of F_{2^61-1} in canonical form (value < p).
class Fp61 {
 public:
  /// The field modulus 2^61 - 1.
  static constexpr uint64_t kP = (1ULL << 61) - 1;

  constexpr Fp61() : v_(0) {}
  /// Reduces an arbitrary 64-bit value into the field.
  static Fp61 FromU64(uint64_t v) { return Fp61(Reduce64(v)); }
  /// Reduces a 128-bit value into the field.
  static Fp61 FromU128(u128 v) { return Fp61(Reduce128(v)); }
  /// Wraps a value already known to satisfy v < p (checked in debug).
  static constexpr Fp61 FromCanonical(uint64_t v) { return Fp61(v); }

  uint64_t value() const { return v_; }
  bool is_zero() const { return v_ == 0; }

  Fp61 operator+(Fp61 o) const {
    uint64_t s = v_ + o.v_;  // < 2^62, no overflow
    if (s >= kP) s -= kP;
    return Fp61(s);
  }
  Fp61 operator-(Fp61 o) const {
    uint64_t s = v_ + kP - o.v_;
    if (s >= kP) s -= kP;
    return Fp61(s);
  }
  Fp61 operator-() const { return Fp61(v_ == 0 ? 0 : kP - v_); }
  Fp61 operator*(Fp61 o) const {
    return Fp61(Reduce128(static_cast<u128>(v_) * o.v_));
  }
  Fp61& operator+=(Fp61 o) { return *this = *this + o; }
  Fp61& operator-=(Fp61 o) { return *this = *this - o; }
  Fp61& operator*=(Fp61 o) { return *this = *this * o; }

  bool operator==(Fp61 o) const { return v_ == o.v_; }
  bool operator!=(Fp61 o) const { return v_ != o.v_; }

  /// x^e by square-and-multiply.
  Fp61 Pow(uint64_t e) const;

  /// Multiplicative inverse via Fermat (x^(p-2)); requires non-zero.
  Result<Fp61> Inverse() const;

 private:
  explicit constexpr Fp61(uint64_t v) : v_(v) {}

  /// Reduces v (any 64-bit) mod 2^61-1 into canonical form.
  static uint64_t Reduce64(uint64_t v) {
    v = (v & kP) + (v >> 61);  // <= kP + 7
    if (v >= kP) v -= kP;
    return v;
  }
  /// Reduces a full 128-bit value mod 2^61-1.
  static uint64_t Reduce128(u128 v) {
    // Split into 61-bit chunks: v = lo + mid*2^61 + hi*2^122
    // and 2^61 ≡ 1 (mod p).
    const uint64_t lo = static_cast<uint64_t>(v) & kP;
    const uint64_t mid = static_cast<uint64_t>(v >> 61) & kP;
    const uint64_t hi = static_cast<uint64_t>(v >> 122);  // < 2^6
    uint64_t s = lo + mid + hi;  // < 3 * 2^61, fits
    s = (s & kP) + (s >> 61);
    if (s >= kP) s -= kP;
    return s;
  }

  uint64_t v_;
};

/// A point/evaluation pair (x_i, q(x_i)) — one provider's share.
struct FpPoint {
  Fp61 x;
  Fp61 y;
};

}  // namespace ssdb

#endif  // SSDB_FIELD_FP61_H_
