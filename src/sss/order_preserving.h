// Order-preserving polynomial share construction (Section IV).
//
// To let a provider filter range predicates locally, the shares of values
// from one ordered domain must themselves be ordered:
//     v1 < v2  ==>  share(v1, i) < share(v2, i)  at every provider i.
// The paper's construction draws each coefficient of the degree-d sharing
// polynomial from a *per-value slot* of a coefficient domain:
//     DOM_a is cut into N = |DOM| equal slots; a_v = slot(v).base + h_a(v)
// with h_a a keyed hash into the slot. Coefficients of different values
// never cross slots, so every coefficient — and therefore the polynomial
// value at any positive x — is strictly increasing in v, while a provider
// only learns order, not values (the slot hashes destroy the linear
// structure that breaks the straw-man scheme; see StrawmanOrderPreserving
// below and bench/bench_op_ablation.cc).
//
// The paper presents degree 3 (k = 4) "without loss of generality"; we
// support degree 1..3 so deployments with n < 4 providers (e.g. the
// Figure 1 example, n = 3, k = 2) can still use order-preserving shares
// with degree k-1. Reconstruction of the constant term from degree+1
// shares is exact rational Lagrange interpolation carried out in 256-bit
// integers (see the overflow analysis in order_preserving.cc).

#ifndef SSDB_SSS_ORDER_PRESERVING_H_
#define SSDB_SSS_ORDER_PRESERVING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/wide_int.h"
#include "crypto/prf.h"

namespace ssdb {

/// Inclusive integer domain of an order-preserving attribute.
struct OpDomain {
  int64_t lo = 0;
  int64_t hi = 0;

  /// Number of values in the domain (lo..hi inclusive).
  u128 size() const {
    return static_cast<u128>(static_cast<uint64_t>(hi - lo)) + 1;
  }
  bool Contains(int64_t v) const { return v >= lo && v <= hi; }
};

/// One provider's order-preserving share contribution.
struct IndexedOpShare {
  size_t provider;
  u128 y;
};

/// How the per-value polynomial coefficients are drawn.
enum class OpSlotMode {
  /// The paper's Section IV construction: coefficient domains are cut into
  /// |DOM| equal slots and a keyed hash picks a point inside the value's
  /// slot. Exactly order-preserving, but — as the E11 ablation shows — the
  /// equal-width slots make every share *approximately* affine in the
  /// value, so a known-plaintext affine fit recovers values to within ±1.
  kPaperSlots,
  /// Hardened extension: coefficients come from a keyed binary-descent
  /// order-preserving function (crypto/ope.h) whose local slope varies
  /// wildly, defeating the affine fit while keeping strict monotonicity.
  kRecursive,
};

/// \brief The Section IV scheme: slotted-coefficient order-preserving
/// polynomial sharing over a fixed integer domain.
class OrderPreservingScheme {
 public:
  /// Maximum domain width in bits (values are offset to [0, 2^kMaxDomainBits)).
  static constexpr int kMaxDomainBits = 60;
  /// Slot width: each coefficient slot holds 2^kSlotBits hash values.
  static constexpr int kSlotBits = 16;
  /// Evaluation points are small positive integers (<= kMaxX) so that
  /// degree-3 shares and their interpolation fit in 128/256 bits.
  static constexpr uint32_t kMaxX = 255;

  /// Creates a scheme with `degree` in [1,3] and one evaluation point per
  /// provider (`xs[i]` distinct, in [1, kMaxX]). The PRF supplies the slot
  /// hashes h_a, h_b, h_c and is secret to the data source.
  static Result<OrderPreservingScheme> Create(
      const Prf& prf, OpDomain domain, int degree, std::vector<uint32_t> xs,
      OpSlotMode mode = OpSlotMode::kPaperSlots);

  OpSlotMode mode() const { return mode_; }

  int degree() const { return degree_; }
  size_t n() const { return xs_.size(); }
  /// Shares needed to reconstruct (= degree + 1).
  size_t threshold() const { return static_cast<size_t>(degree_) + 1; }
  const OpDomain& domain() const { return domain_; }
  const std::vector<uint32_t>& xs() const { return xs_; }

  /// Share of `v` for provider i. Deterministic; strictly monotone in v.
  Result<u128> Share(int64_t v, size_t provider) const;

  /// Shares of `v` for all n providers.
  Result<std::vector<u128>> ShareAll(int64_t v) const;

  /// Reconstructs `v` from >= degree+1 shares (distinct providers) by exact
  /// integer Lagrange interpolation at x = 0. Shares beyond the threshold
  /// are checked for consistency; non-integral or out-of-domain results
  /// return Corruption.
  Result<int64_t> Reconstruct(const std::vector<IndexedOpShare>& shares) const;

  /// Inverts a *single* share by binary search over the domain, using the
  /// fact that Share(., provider) is strictly monotone and recomputable by
  /// the key holder. Returns NotFound if no domain value maps to `y`.
  Result<int64_t> InvertSingle(u128 y, size_t provider) const;

 private:
  OrderPreservingScheme(const Prf& prf, OpDomain domain, int degree,
                        std::vector<uint32_t> xs, OpSlotMode mode,
                        int domain_bits)
      : prf_(prf), domain_(domain), degree_(degree), xs_(std::move(xs)),
        mode_(mode), domain_bits_(domain_bits) {}

  /// Slotted coefficient for x^power (power in [1, degree]); strictly
  /// increasing in w.
  u128 Coefficient(uint64_t w, int power) const;
  /// All non-constant coefficients for offset value w: entry p-1 is the
  /// coefficient of x^p. The PRF/OPE work is per value, not per provider,
  /// so multi-provider paths compute this once and Horner per x.
  std::vector<u128> Coefficients(uint64_t w) const;
  /// Horner evaluation at x given precomputed Coefficients(w).
  u128 EvalWithCoefficients(const std::vector<u128>& coeffs, uint64_t w,
                            uint32_t x) const;
  /// Polynomial value at x for offset value w.
  u128 EvalAt(uint64_t w, uint32_t x) const;

  Prf prf_;
  OpDomain domain_;
  int degree_;
  std::vector<uint32_t> xs_;
  OpSlotMode mode_;
  int domain_bits_;  // bits needed to index the (offset) domain
};

/// \brief The paper's INSECURE straw-man (Section IV): coefficients are
/// globally monotone affine functions f_a(v) = alpha_a * v + beta_a, so
/// every share is an affine function of v and a provider that learns two
/// (value, share) pairs recovers every value. Implemented for the E11
/// ablation; never use for real data.
class StrawmanOrderPreserving {
 public:
  static Result<StrawmanOrderPreserving> Create(OpDomain domain,
                                                std::vector<uint32_t> xs,
                                                uint64_t alpha_seed);

  Result<u128> Share(int64_t v, size_t provider) const;
  size_t n() const { return xs_.size(); }
  const OpDomain& domain() const { return domain_; }

  /// The known-plaintext attack: given two (value, share) pairs observed at
  /// `provider` plus that provider's full share column, recover every
  /// value. Returns the recovered values aligned with `column`.
  Result<std::vector<int64_t>> Attack(
      size_t provider, std::pair<int64_t, u128> known1,
      std::pair<int64_t, u128> known2, const std::vector<u128>& column) const;

 private:
  StrawmanOrderPreserving(OpDomain domain, std::vector<uint32_t> xs,
                          uint64_t a1, uint64_t b1, uint64_t a2, uint64_t b2,
                          uint64_t a3, uint64_t b3)
      : domain_(domain), xs_(std::move(xs)),
        fa_{a1, b1}, fb_{a2, b2}, fc_{a3, b3} {}

  struct Affine {
    uint64_t slope;
    uint64_t intercept;
  };

  OpDomain domain_;
  std::vector<uint32_t> xs_;
  Affine fa_, fb_, fc_;
};

}  // namespace ssdb

#endif  // SSDB_SSS_ORDER_PRESERVING_H_
