#include "sss/order_preserving.h"

#include <algorithm>

#include "crypto/ope.h"

namespace ssdb {

// --- Overflow analysis -----------------------------------------------------
// Offset values w < 2^60 (kMaxDomainBits). A slotted coefficient is
// (w << 16) + h(w) < 2^76. Horner evaluation at x <= 255 = 2^8 - 1 for
// degree <= 3 peaks below 2^76 * 2^24 + lower terms < 2^101 — comfortably
// inside u128.
//
// Reconstruction (threshold t = degree+1 <= 4) computes
//     w = ( sum_i  y_i * N_i * (D / D_i) ) / D
// with N_i = prod_{j != i} x_j  < 2^24,
//      D_i = prod_{j != i} (x_j - x_i), |D_i| < 2^24,
//      D   = prod_i D_i, |D| < 2^96  (fits i128),
// so each summand is bounded by 2^101 * 2^24 * 2^72 = 2^197 and the sum of
// four by 2^199 — inside Int256. The division by D is exact because w is
// the true constant term of an integer polynomial through the points.
// ---------------------------------------------------------------------------

Result<OrderPreservingScheme> OrderPreservingScheme::Create(
    const Prf& prf, OpDomain domain, int degree, std::vector<uint32_t> xs,
    OpSlotMode mode) {
  if (degree < 1 || degree > 3) {
    return Status::InvalidArgument(
        "OrderPreservingScheme: degree must be in [1, 3]");
  }
  if (domain.hi < domain.lo) {
    return Status::InvalidArgument("OrderPreservingScheme: hi < lo");
  }
  if (domain.size() > (static_cast<u128>(1) << kMaxDomainBits)) {
    return Status::InvalidArgument(
        "OrderPreservingScheme: domain wider than 2^60 values");
  }
  if (xs.size() < static_cast<size_t>(degree) + 1) {
    return Status::InvalidArgument(
        "OrderPreservingScheme: need at least degree+1 providers");
  }
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] < 1 || xs[i] > kMaxX) {
      return Status::InvalidArgument(
          "OrderPreservingScheme: x must be in [1, 255]");
    }
    for (size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[i] == xs[j]) {
        return Status::InvalidArgument(
            "OrderPreservingScheme: evaluation points must be distinct");
      }
    }
  }
  int domain_bits = 1;
  while ((domain.size() - 1) >> domain_bits != 0) ++domain_bits;
  return OrderPreservingScheme(prf, domain, degree, std::move(xs), mode,
                               domain_bits);
}

u128 OrderPreservingScheme::Coefficient(uint64_t w, int power) const {
  if (mode_ == OpSlotMode::kPaperSlots) {
    // Slot base (w << kSlotBits) keeps slots of different values disjoint;
    // the keyed hash picks an unpredictable point inside the slot.
    const uint64_t h = prf_.EvalUniform(
        w, 0xC0EFF00DULL + static_cast<uint64_t>(power), 1ULL << kSlotBits);
    return (static_cast<u128>(w) << kSlotBits) + h;
  }
  // kRecursive: a keyed binary-descent order-preserving function per
  // coefficient position. Strictly monotone in w but with locally erratic
  // slope; ciphertext < 2^(domain_bits + 32) <= 2^92, which keeps the
  // overflow analysis above valid (shares < 2^117, summands < 2^213).
  const Prf sub(prf_.Eval64(0xD15C0000ULL + static_cast<uint64_t>(power), 1),
                prf_.Eval64(0xD15C0000ULL + static_cast<uint64_t>(power), 2));
  OrderPreservingEncryption opf(sub, domain_bits_);
  auto c = opf.Encrypt(w);
  // w < domain size by construction, so Encrypt cannot fail.
  return c.value_or(0);
}

std::vector<u128> OrderPreservingScheme::Coefficients(uint64_t w) const {
  std::vector<u128> coeffs(static_cast<size_t>(degree_));
  for (int power = 1; power <= degree_; ++power) {
    coeffs[static_cast<size_t>(power) - 1] = Coefficient(w, power);
  }
  return coeffs;
}

u128 OrderPreservingScheme::EvalWithCoefficients(
    const std::vector<u128>& coeffs, uint64_t w, uint32_t x) const {
  u128 acc = 0;
  for (int power = degree_; power >= 1; --power) {
    acc = (acc + coeffs[static_cast<size_t>(power) - 1]) * x;
  }
  return acc + w;
}

u128 OrderPreservingScheme::EvalAt(uint64_t w, uint32_t x) const {
  u128 acc = 0;
  for (int power = degree_; power >= 1; --power) {
    acc = (acc + Coefficient(w, power)) * x;
  }
  return acc + w;
}

Result<u128> OrderPreservingScheme::Share(int64_t v, size_t provider) const {
  if (provider >= xs_.size()) {
    return Status::InvalidArgument("OP Share: provider index out of range");
  }
  if (!domain_.Contains(v)) {
    return Status::OutOfRange("OP Share: value outside declared domain");
  }
  const uint64_t w = static_cast<uint64_t>(v) - static_cast<uint64_t>(domain_.lo);
  return EvalAt(w, xs_[provider]);
}

Result<std::vector<u128>> OrderPreservingScheme::ShareAll(int64_t v) const {
  if (!domain_.Contains(v)) {
    return Status::OutOfRange("OP Share: value outside declared domain");
  }
  const uint64_t w =
      static_cast<uint64_t>(v) - static_cast<uint64_t>(domain_.lo);
  // One PRF/OPE pass for the coefficients, then a cheap Horner per
  // provider — identical values to calling Share(v, i) n times.
  const std::vector<u128> coeffs = Coefficients(w);
  std::vector<u128> out(xs_.size());
  for (size_t i = 0; i < xs_.size(); ++i) {
    out[i] = EvalWithCoefficients(coeffs, w, xs_[i]);
  }
  return out;
}

Result<int64_t> OrderPreservingScheme::Reconstruct(
    const std::vector<IndexedOpShare>& shares) const {
  const size_t t = threshold();
  if (shares.size() < t) {
    return Status::Unavailable("OP Reconstruct: fewer than degree+1 shares");
  }
  for (size_t i = 0; i < shares.size(); ++i) {
    if (shares[i].provider >= xs_.size()) {
      return Status::InvalidArgument("OP Reconstruct: bad provider index");
    }
    for (size_t j = i + 1; j < shares.size(); ++j) {
      if (shares[i].provider == shares[j].provider) {
        return Status::InvalidArgument(
            "OP Reconstruct: duplicate share from one provider");
      }
    }
  }

  // Exact Lagrange at x = 0 over the first t shares.
  std::vector<i128> x(t);
  for (size_t i = 0; i < t; ++i) {
    x[i] = static_cast<i128>(xs_[shares[i].provider]);
  }
  i128 d_total = 1;
  std::vector<i128> d(t), nume(t);
  for (size_t i = 0; i < t; ++i) {
    i128 di = 1, ni = 1;
    for (size_t j = 0; j < t; ++j) {
      if (j == i) continue;
      di *= (x[j] - x[i]);
      ni *= x[j];
    }
    d[i] = di;
    nume[i] = ni;
    d_total *= di;
  }

  // Fast path: the whole sum usually fits in i128 (degree-1 schemes always
  // do; higher degrees whenever the shares are small enough). Exact integer
  // arithmetic either way, so falling back on overflow cannot change the
  // result — only where it is computed.
  i128 w;
  bool exact = true;
  bool have_w = false;
  {
    i128 acc = 0;
    bool overflow = false;
    for (size_t i = 0; i < t && !overflow; ++i) {
      const i128 y = static_cast<i128>(shares[i].y);
      i128 term;
      overflow = __builtin_mul_overflow(y, nume[i], &term) ||
                 __builtin_mul_overflow(term, d_total / d[i], &term) ||
                 __builtin_add_overflow(acc, term, &acc);
    }
    if (!overflow) {
      exact = acc % d_total == 0;
      w = exact ? acc / d_total : 0;
      have_w = true;
    }
  }
  if (!have_w) {
    Int256 sum;
    for (size_t i = 0; i < t; ++i) {
      const i128 y = static_cast<i128>(shares[i].y);
      Int256 term = Int256::Mul128(y, nume[i]);
      term = term.MulSmall(d_total / d[i]);
      sum += term;
    }
    const Int256 w256 = sum.DivSmall(d_total, &exact);
    if (exact && !w256.FitsInI128()) exact = false;
    w = exact ? w256.ToI128() : 0;
  }
  if (!exact) {
    return Status::Corruption(
        "OP Reconstruct: shares do not interpolate to an integer");
  }
  if (w < 0 || static_cast<u128>(w) >= domain_.size()) {
    return Status::Corruption(
        "OP Reconstruct: interpolated value outside the domain");
  }
  const int64_t v = domain_.lo + static_cast<int64_t>(w);

  // The scheme is deterministic: validate every supplied share (including
  // the t used above) against a recomputation. This catches corrupt or
  // inconsistent shares regardless of which subset was interpolated. The
  // coefficients are per value, so they are recovered once and only the
  // Horner evaluation runs per provider.
  const uint64_t w_off = static_cast<uint64_t>(w);
  const std::vector<u128> coeffs = Coefficients(w_off);
  for (const IndexedOpShare& s : shares) {
    const u128 expect =
        EvalWithCoefficients(coeffs, w_off, xs_[s.provider]);
    if (expect != s.y) {
      return Status::Corruption("OP Reconstruct: share consistency check failed");
    }
  }
  return v;
}

Result<int64_t> OrderPreservingScheme::InvertSingle(u128 y,
                                                    size_t provider) const {
  if (provider >= xs_.size()) {
    return Status::InvalidArgument("OP InvertSingle: bad provider index");
  }
  int64_t lo = domain_.lo, hi = domain_.hi;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    SSDB_ASSIGN_OR_RETURN(u128 s, Share(mid, provider));
    if (s < y) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  SSDB_ASSIGN_OR_RETURN(u128 s, Share(lo, provider));
  if (s != y) {
    return Status::NotFound("OP InvertSingle: no domain value has this share");
  }
  return lo;
}

// ---------------------------------------------------------------------------
// Straw-man (insecure) construction and its break.
// ---------------------------------------------------------------------------

Result<StrawmanOrderPreserving> StrawmanOrderPreserving::Create(
    OpDomain domain, std::vector<uint32_t> xs, uint64_t alpha_seed) {
  if (domain.hi < domain.lo) {
    return Status::InvalidArgument("Strawman: hi < lo");
  }
  if (xs.size() < 4) {
    return Status::InvalidArgument("Strawman: need >= 4 providers (degree 3)");
  }
  // Monotone affine coefficient functions in the spirit of the paper's
  // example f_a(v)=3v+10, f_b(v)=v+27, f_c(v)=5v+1, perturbed by the seed.
  const uint64_t a1 = 2 + (alpha_seed % 8);
  const uint64_t b1 = 1 + ((alpha_seed >> 8) % 64);
  const uint64_t a2 = 1 + ((alpha_seed >> 16) % 8);
  const uint64_t b2 = 1 + ((alpha_seed >> 24) % 64);
  const uint64_t a3 = 3 + ((alpha_seed >> 32) % 8);
  const uint64_t b3 = 1 + ((alpha_seed >> 40) % 64);
  return StrawmanOrderPreserving(domain, std::move(xs), a1, b1, a2, b2, a3,
                                 b3);
}

Result<u128> StrawmanOrderPreserving::Share(int64_t v, size_t provider) const {
  if (provider >= xs_.size()) {
    return Status::InvalidArgument("Strawman Share: bad provider index");
  }
  if (!domain_.Contains(v)) {
    return Status::OutOfRange("Strawman Share: value outside domain");
  }
  const u128 w = static_cast<u128>(static_cast<uint64_t>(v) -
                                   static_cast<uint64_t>(domain_.lo));
  const u128 x = xs_[provider];
  const u128 fa = fa_.slope * w + fa_.intercept;
  const u128 fb = fb_.slope * w + fb_.intercept;
  const u128 fc = fc_.slope * w + fc_.intercept;
  return fa * x * x * x + fb * x * x + fc * x + w;
}

Result<std::vector<int64_t>> StrawmanOrderPreserving::Attack(
    size_t provider, std::pair<int64_t, u128> known1,
    std::pair<int64_t, u128> known2, const std::vector<u128>& column) const {
  // Every share at provider i is affine in the offset value:
  //   share = A*w + B  with
  //   A = a1*x^3 + a2*x^2 + a3*x + 1,  B = b1*x^3 + b2*x^2 + b3*x.
  // Two known (value, share) pairs determine A and B by a linear solve —
  // the attacker needs neither the key nor x_i.
  if (known1.first == known2.first) {
    return Status::InvalidArgument("Strawman Attack: need distinct plaintexts");
  }
  const i128 w1 = known1.first - domain_.lo;
  const i128 w2 = known2.first - domain_.lo;
  const i128 s1 = static_cast<i128>(known1.second);
  const i128 s2 = static_cast<i128>(known2.second);
  const i128 num = s1 - s2;
  const i128 den = w1 - w2;
  if (num % den != 0) {
    return Status::InvalidArgument(
        "Strawman Attack: pairs not from one affine map");
  }
  const i128 a = num / den;
  const i128 b = s1 - a * w1;
  (void)provider;

  std::vector<int64_t> out;
  out.reserve(column.size());
  for (u128 share : column) {
    const i128 w = (static_cast<i128>(share) - b) / a;
    out.push_back(domain_.lo + static_cast<int64_t>(w));
  }
  return out;
}

}  // namespace ssdb
