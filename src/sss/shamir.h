// Shamir secret sharing over F_{2^61-1} (Section III of the paper).
//
// A SharingContext is owned by the data source. It fixes:
//   * n  — the number of database service providers DAS_1..DAS_n,
//   * k  — the reconstruction threshold (polynomial degree k-1),
//   * X  — the n secret, distinct, non-zero evaluation points x_i, known
//          only to the data source ("some secret information X" in §III).
//
// Two sharing modes are provided:
//   * Split        — fresh uniform coefficients per call
//                    (information-theoretically secure; used for columns
//                    that only need reconstruction and SUM aggregation).
//   * SplitDeterministic — coefficients derived from a PRF of the value, so
//                    equal values yield equal shares at each provider. This
//                    is what makes the provider-side exact-match rewriting
//                    of §V.A ("salary = share(20, i)") and the same-domain
//                    share joins work. It trades information-theoretic
//                    secrecy for PRF security and leaks the equality
//                    pattern, exactly like deterministic encryption.
//
// Shares are additively homomorphic: all polynomials for provider i are
// evaluated at the same x_i, so the sum of stored shares is a valid share
// of the sum of the secrets. Providers exploit this to compute SUM/AVERAGE
// partial aggregates locally (§V.A Aggregation Queries).

#ifndef SSDB_SSS_SHAMIR_H_
#define SSDB_SSS_SHAMIR_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "crypto/prf.h"
#include "field/fp61.h"
#include "field/poly.h"

namespace ssdb {

/// One provider's contribution to a reconstruction: (provider index, y).
struct IndexedShare {
  size_t provider;
  Fp61 y;
};

/// \brief The data source's sharing state for a fixed (n, k, X).
class SharingContext {
 public:
  /// Largest accepted threshold. DeterministicShareFor derives coefficient
  /// j of domain d from PRF tweak d*131 + j; with k > 131 the tweaks of
  /// adjacent domains would collide (d*131 + 131 == (d+1)*131 + 0),
  /// silently correlating shares across attribute domains, so Create
  /// rejects such k outright.
  static constexpr size_t kMaxThreshold = 131;

  /// Creates a context with explicit evaluation points (|xs| = n, all
  /// distinct and non-zero).
  static Result<SharingContext> Create(size_t n, size_t k,
                                       std::vector<Fp61> xs);

  /// Creates a context with pseudo-random secret points drawn from `rng`.
  static Result<SharingContext> CreateRandom(size_t n, size_t k, Rng* rng);

  size_t n() const { return xs_.size(); }
  size_t k() const { return k_; }
  const std::vector<Fp61>& xs() const { return xs_; }

  /// Splits `secret` into n shares with fresh random coefficients.
  std::vector<Fp61> Split(Fp61 secret, Rng* rng) const;

  /// Splits with coefficients PRF-derived from (domain_tag, secret): equal
  /// secrets give equal shares. `domain_tag` separates attribute domains
  /// (the paper builds "polynomials ... for each domain, not for each
  /// attribute", §V.A Join).
  std::vector<Fp61> SplitDeterministic(const Prf& prf, uint64_t domain_tag,
                                       Fp61 secret) const;

  /// Computes only provider i's share under deterministic splitting —
  /// this is the query-rewriting kernel: share(v, i) of §V.A.
  Fp61 DeterministicShareFor(const Prf& prf, uint64_t domain_tag, Fp61 secret,
                             size_t provider) const;

  /// Reconstructs the secret from >= k shares (any subset of providers).
  /// Extra shares beyond k are used for consistency checking: if the
  /// points do not lie on one degree-(k-1) polynomial, returns Corruption.
  ///
  /// Internally this resolves the cached Lagrange basis for the share's
  /// provider subset (see GetBasis) — reconstruction is a k-term dot
  /// product plus one cached dot product per extra share, not a fresh
  /// Newton interpolation per value.
  Result<Fp61> Reconstruct(const std::vector<IndexedShare>& shares) const;

  /// Handle to one cached Lagrange basis. Valid for the lifetime of the
  /// SharingContext that produced it (entries are never evicted); cheap to
  /// copy/move. Also remembers the caller's provider order, so share
  /// vectors passed to ReconstructWithBasis must list providers in the
  /// same order as the GetBasis call.
  class BasisRef {
   public:
    BasisRef() = default;
    bool valid() const { return entry_ != nullptr; }

   private:
    friend class SharingContext;
    const void* entry_ = nullptr;     // BasisEntry*, owned by the cache
    std::vector<uint32_t> order_;     // sorted slot -> caller position
  };

  /// Resolves (building and caching on first use) the Lagrange basis for
  /// a provider subset. The cache key is the *sorted* provider-index
  /// subset, so every caller ordering of the same subset shares one entry.
  /// Validates bounds and duplicates exactly like Reconstruct. Callers
  /// reconstructing a whole row fetch the basis once and reuse it across
  /// every column (the provider subset is per row, not per cell).
  Result<BasisRef> GetBasis(const std::vector<size_t>& providers) const;

  /// Reconstructs one value through a previously resolved basis. `ys[i]`
  /// must be the share of the i-th provider passed to GetBasis. Returns
  /// the same statuses as Reconstruct (Corruption on inconsistent >k
  /// sets).
  Result<Fp61> ReconstructWithBasis(const BasisRef& basis,
                                    const std::vector<Fp61>& ys) const;

  /// Shares of zero with fresh randomness; adding them to existing shares
  /// re-randomizes the sharing without changing the secret (proactive
  /// refresh, a §VI(b) extension).
  std::vector<Fp61> ZeroShares(Rng* rng) const;

  // The basis cache is per-context state behind a unique_ptr: moves carry
  // it along, copies start with a fresh (empty) cache — the cache is a
  // performance artifact, never semantic state.
  SharingContext(SharingContext&&) noexcept;
  SharingContext& operator=(SharingContext&&) noexcept;
  SharingContext(const SharingContext& o);
  SharingContext& operator=(const SharingContext& o);
  ~SharingContext();

 private:
  struct BasisEntry;
  struct BasisCache;

  SharingContext(size_t k, std::vector<Fp61> xs);

  const BasisEntry* ResolveBasis(const std::vector<uint32_t>& order,
                                 const std::vector<size_t>& providers) const;

  size_t k_;
  std::vector<Fp61> xs_;
  std::unique_ptr<BasisCache> cache_;
};

}  // namespace ssdb

#endif  // SSDB_SSS_SHAMIR_H_
