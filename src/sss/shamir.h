// Shamir secret sharing over F_{2^61-1} (Section III of the paper).
//
// A SharingContext is owned by the data source. It fixes:
//   * n  — the number of database service providers DAS_1..DAS_n,
//   * k  — the reconstruction threshold (polynomial degree k-1),
//   * X  — the n secret, distinct, non-zero evaluation points x_i, known
//          only to the data source ("some secret information X" in §III).
//
// Two sharing modes are provided:
//   * Split        — fresh uniform coefficients per call
//                    (information-theoretically secure; used for columns
//                    that only need reconstruction and SUM aggregation).
//   * SplitDeterministic — coefficients derived from a PRF of the value, so
//                    equal values yield equal shares at each provider. This
//                    is what makes the provider-side exact-match rewriting
//                    of §V.A ("salary = share(20, i)") and the same-domain
//                    share joins work. It trades information-theoretic
//                    secrecy for PRF security and leaks the equality
//                    pattern, exactly like deterministic encryption.
//
// Shares are additively homomorphic: all polynomials for provider i are
// evaluated at the same x_i, so the sum of stored shares is a valid share
// of the sum of the secrets. Providers exploit this to compute SUM/AVERAGE
// partial aggregates locally (§V.A Aggregation Queries).

#ifndef SSDB_SSS_SHAMIR_H_
#define SSDB_SSS_SHAMIR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "crypto/prf.h"
#include "field/fp61.h"
#include "field/poly.h"

namespace ssdb {

/// One provider's contribution to a reconstruction: (provider index, y).
struct IndexedShare {
  size_t provider;
  Fp61 y;
};

/// \brief The data source's sharing state for a fixed (n, k, X).
class SharingContext {
 public:
  /// Creates a context with explicit evaluation points (|xs| = n, all
  /// distinct and non-zero).
  static Result<SharingContext> Create(size_t n, size_t k,
                                       std::vector<Fp61> xs);

  /// Creates a context with pseudo-random secret points drawn from `rng`.
  static Result<SharingContext> CreateRandom(size_t n, size_t k, Rng* rng);

  size_t n() const { return xs_.size(); }
  size_t k() const { return k_; }
  const std::vector<Fp61>& xs() const { return xs_; }

  /// Splits `secret` into n shares with fresh random coefficients.
  std::vector<Fp61> Split(Fp61 secret, Rng* rng) const;

  /// Splits with coefficients PRF-derived from (domain_tag, secret): equal
  /// secrets give equal shares. `domain_tag` separates attribute domains
  /// (the paper builds "polynomials ... for each domain, not for each
  /// attribute", §V.A Join).
  std::vector<Fp61> SplitDeterministic(const Prf& prf, uint64_t domain_tag,
                                       Fp61 secret) const;

  /// Computes only provider i's share under deterministic splitting —
  /// this is the query-rewriting kernel: share(v, i) of §V.A.
  Fp61 DeterministicShareFor(const Prf& prf, uint64_t domain_tag, Fp61 secret,
                             size_t provider) const;

  /// Reconstructs the secret from >= k shares (any subset of providers).
  /// Extra shares beyond k are used for consistency checking: if the
  /// points do not lie on one degree-(k-1) polynomial, returns Corruption.
  Result<Fp61> Reconstruct(const std::vector<IndexedShare>& shares) const;

  /// Shares of zero with fresh randomness; adding them to existing shares
  /// re-randomizes the sharing without changing the secret (proactive
  /// refresh, a §VI(b) extension).
  std::vector<Fp61> ZeroShares(Rng* rng) const;

 private:
  SharingContext(size_t k, std::vector<Fp61> xs)
      : k_(k), xs_(std::move(xs)) {}

  size_t k_;
  std::vector<Fp61> xs_;
};

}  // namespace ssdb

#endif  // SSDB_SSS_SHAMIR_H_
