#include "sss/shamir.h"

#include <algorithm>

namespace ssdb {

Result<SharingContext> SharingContext::Create(size_t n, size_t k,
                                              std::vector<Fp61> xs) {
  if (n == 0 || k == 0 || k > n) {
    return Status::InvalidArgument(
        "SharingContext: require 1 <= k <= n and n > 0");
  }
  if (xs.size() != n) {
    return Status::InvalidArgument("SharingContext: |X| must equal n");
  }
  for (size_t i = 0; i < n; ++i) {
    if (xs[i].is_zero()) {
      return Status::InvalidArgument(
          "SharingContext: x = 0 would hand a provider the secret");
    }
    for (size_t j = i + 1; j < n; ++j) {
      if (xs[i] == xs[j]) {
        return Status::InvalidArgument(
            "SharingContext: evaluation points must be distinct");
      }
    }
  }
  return SharingContext(k, std::move(xs));
}

Result<SharingContext> SharingContext::CreateRandom(size_t n, size_t k,
                                                    Rng* rng) {
  std::vector<Fp61> xs;
  xs.reserve(n);
  while (xs.size() < n) {
    const Fp61 x = Fp61::FromU64(rng->Uniform(Fp61::kP - 1) + 1);
    if (std::find(xs.begin(), xs.end(), x) == xs.end()) xs.push_back(x);
  }
  return Create(n, k, std::move(xs));
}

std::vector<Fp61> SharingContext::Split(Fp61 secret, Rng* rng) const {
  const FpPoly poly = FpPoly::Random(secret, k_, [&](size_t) {
    return Fp61::FromU64(rng->Uniform(Fp61::kP));
  });
  std::vector<Fp61> shares(xs_.size());
  for (size_t i = 0; i < xs_.size(); ++i) shares[i] = poly.Eval(xs_[i]);
  return shares;
}

std::vector<Fp61> SharingContext::SplitDeterministic(const Prf& prf,
                                                     uint64_t domain_tag,
                                                     Fp61 secret) const {
  std::vector<Fp61> shares(xs_.size());
  for (size_t i = 0; i < xs_.size(); ++i) {
    shares[i] = DeterministicShareFor(prf, domain_tag, secret, i);
  }
  return shares;
}

Fp61 SharingContext::DeterministicShareFor(const Prf& prf,
                                           uint64_t domain_tag, Fp61 secret,
                                           size_t provider) const {
  // coeff_j = PRF(secret, domain_tag || j), reduced into the field; the
  // polynomial is identical for equal secrets within a domain, so the
  // share at a fixed x_i is equality-preserving.
  Fp61 acc;
  const Fp61 x = xs_[provider];
  for (size_t j = k_ - 1; j >= 1; --j) {
    const uint64_t raw = prf.EvalUniform(
        secret.value(), domain_tag * 131 + j, Fp61::kP);
    acc = (acc + Fp61::FromCanonical(raw)) * x;
  }
  return acc + secret;
}

Result<Fp61> SharingContext::Reconstruct(
    const std::vector<IndexedShare>& shares) const {
  if (shares.size() < k_) {
    return Status::Unavailable(
        "Reconstruct: fewer than k shares available");
  }
  std::vector<FpPoint> points;
  points.reserve(shares.size());
  for (const IndexedShare& s : shares) {
    if (s.provider >= xs_.size()) {
      return Status::InvalidArgument("Reconstruct: provider index out of range");
    }
    points.push_back(FpPoint{xs_[s.provider], s.y});
    for (size_t j = 0; j + 1 < points.size(); ++j) {
      if (points[j].x == points.back().x) {
        return Status::InvalidArgument(
            "Reconstruct: duplicate share from one provider");
      }
    }
  }
  // Interpolate through the first k points, then check the rest lie on the
  // same polynomial (cheap consistency / corruption detection).
  std::vector<FpPoint> head(points.begin(),
                            points.begin() + static_cast<long>(k_));
  SSDB_ASSIGN_OR_RETURN(FpPoly poly, Interpolate(head));
  for (size_t i = k_; i < points.size(); ++i) {
    if (poly.Eval(points[i].x) != points[i].y) {
      return Status::Corruption(
          "Reconstruct: shares are inconsistent (corrupt or mixed secrets)");
    }
  }
  return poly.Eval(Fp61());
}

std::vector<Fp61> SharingContext::ZeroShares(Rng* rng) const {
  return Split(Fp61(), rng);
}

}  // namespace ssdb
