#include "sss/shamir.h"

#include <algorithm>
#include <array>
#include <mutex>
#include <numeric>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace ssdb {

/// One cached Lagrange basis for a sorted provider subset of size m >= k.
struct SharingContext::BasisEntry {
  /// k weights: secret = sum_j at_zero[j] * y_{sorted j}.
  std::vector<Fp61> at_zero;
  /// (m - k) rows of k weights: extra share e is consistent iff
  /// y_e == sum_j check[e-k][j] * y_{sorted j}. Exactly equivalent to the
  /// seed's poly.Eval(x_e) == y_e check in exact field arithmetic.
  std::vector<std::vector<Fp61>> check;
};

struct SharingContext::BasisCache {
  mutable std::shared_mutex mu;
  // Key: sorted provider indices, 4 bytes LE each. unique_ptr values keep
  // entry addresses stable across rehashes, so BasisRef handles stay valid
  // for the context's lifetime.
  std::unordered_map<std::string, std::unique_ptr<BasisEntry>> entries;
};

SharingContext::SharingContext(size_t k, std::vector<Fp61> xs)
    : k_(k), xs_(std::move(xs)), cache_(std::make_unique<BasisCache>()) {}

SharingContext::SharingContext(const SharingContext& o)
    : k_(o.k_), xs_(o.xs_), cache_(std::make_unique<BasisCache>()) {}

SharingContext& SharingContext::operator=(const SharingContext& o) {
  if (this != &o) {
    k_ = o.k_;
    xs_ = o.xs_;
    cache_ = std::make_unique<BasisCache>();
  }
  return *this;
}

SharingContext::SharingContext(SharingContext&&) noexcept = default;
SharingContext& SharingContext::operator=(SharingContext&&) noexcept = default;

SharingContext::~SharingContext() = default;

Result<SharingContext> SharingContext::Create(size_t n, size_t k,
                                              std::vector<Fp61> xs) {
  if (n == 0 || k == 0 || k > n) {
    return Status::InvalidArgument(
        "SharingContext: require 1 <= k <= n and n > 0");
  }
  if (k > kMaxThreshold) {
    return Status::InvalidArgument(
        "SharingContext: k > 131 would collide deterministic-share PRF "
        "tweaks across adjacent domain tags");
  }
  if (xs.size() != n) {
    return Status::InvalidArgument("SharingContext: |X| must equal n");
  }
  for (size_t i = 0; i < n; ++i) {
    if (xs[i].is_zero()) {
      return Status::InvalidArgument(
          "SharingContext: x = 0 would hand a provider the secret");
    }
    for (size_t j = i + 1; j < n; ++j) {
      if (xs[i] == xs[j]) {
        return Status::InvalidArgument(
            "SharingContext: evaluation points must be distinct");
      }
    }
  }
  return SharingContext(k, std::move(xs));
}

Result<SharingContext> SharingContext::CreateRandom(size_t n, size_t k,
                                                    Rng* rng) {
  std::vector<Fp61> xs;
  xs.reserve(n);
  // Same accept/reject decisions as the seed's linear-scan loop (a draw is
  // rejected iff already present), so the Rng draw sequence — and thus
  // every seeded fingerprint — is unchanged.
  std::unordered_set<uint64_t> seen;
  seen.reserve(n * 2);
  while (xs.size() < n) {
    const Fp61 x = Fp61::FromU64(rng->Uniform(Fp61::kP - 1) + 1);
    if (seen.insert(x.value()).second) xs.push_back(x);
  }
  return Create(n, k, std::move(xs));
}

std::vector<Fp61> SharingContext::Split(Fp61 secret, Rng* rng) const {
  const FpPoly poly = FpPoly::Random(secret, k_, [&](size_t) {
    return Fp61::FromU64(rng->Uniform(Fp61::kP));
  });
  std::vector<Fp61> shares(xs_.size());
  for (size_t i = 0; i < xs_.size(); ++i) shares[i] = poly.Eval(xs_[i]);
  return shares;
}

std::vector<Fp61> SharingContext::SplitDeterministic(const Prf& prf,
                                                     uint64_t domain_tag,
                                                     Fp61 secret) const {
  std::vector<Fp61> shares(xs_.size());
  for (size_t i = 0; i < xs_.size(); ++i) {
    shares[i] = DeterministicShareFor(prf, domain_tag, secret, i);
  }
  return shares;
}

Fp61 SharingContext::DeterministicShareFor(const Prf& prf,
                                           uint64_t domain_tag, Fp61 secret,
                                           size_t provider) const {
  // coeff_j = PRF(secret, domain_tag || j), reduced into the field; the
  // polynomial is identical for equal secrets within a domain, so the
  // share at a fixed x_i is equality-preserving. Tweaks cannot collide
  // across domains because Create enforces k <= 131.
  Fp61 acc;
  const Fp61 x = xs_[provider];
  for (size_t j = k_ - 1; j >= 1; --j) {
    const uint64_t raw = prf.EvalUniform(
        secret.value(), domain_tag * 131 + j, Fp61::kP);
    acc = (acc + Fp61::FromCanonical(raw)) * x;
  }
  return acc + secret;
}

namespace {

/// Provider-index presence bitmap: fixed 256-bit fast path (every deployed
/// topology caps providers-per-shard at 255), heap fallback beyond that.
class ProviderBitmap {
 public:
  explicit ProviderBitmap(size_t n) {
    if (n > 256) heap_.assign((n + 63) / 64, 0);
    else inline_.fill(0);
  }
  /// Sets bit i; returns false if it was already set.
  bool TestAndSet(size_t i) {
    uint64_t* w = heap_.empty() ? &inline_[i >> 6] : &heap_[i >> 6];
    const uint64_t bit = 1ULL << (i & 63);
    if (*w & bit) return false;
    *w |= bit;
    return true;
  }

 private:
  std::array<uint64_t, 4> inline_;
  std::vector<uint64_t> heap_;
};

}  // namespace

const SharingContext::BasisEntry* SharingContext::ResolveBasis(
    const std::vector<uint32_t>& order,
    const std::vector<size_t>& providers) const {
  std::string key;
  key.reserve(order.size() * 4);
  for (uint32_t pos : order) {
    const uint32_t p = static_cast<uint32_t>(providers[pos]);
    key.push_back(static_cast<char>(p & 0xFF));
    key.push_back(static_cast<char>((p >> 8) & 0xFF));
    key.push_back(static_cast<char>((p >> 16) & 0xFF));
    key.push_back(static_cast<char>((p >> 24) & 0xFF));
  }
  {
    std::shared_lock<std::shared_mutex> lock(cache_->mu);
    auto it = cache_->entries.find(key);
    if (it != cache_->entries.end()) return it->second.get();
  }
  // Build outside any lock: pure math on immutable xs_.
  std::vector<Fp61> head(k_);
  for (size_t j = 0; j < k_; ++j) head[j] = xs_[providers[order[j]]];
  auto entry = std::make_unique<BasisEntry>();
  auto at_zero = LagrangeBasisAtZero(head);
  if (!at_zero.ok()) return nullptr;  // unreachable: xs_ distinct, non-zero
  entry->at_zero = std::move(*at_zero);
  entry->check.reserve(order.size() - k_);
  for (size_t e = k_; e < order.size(); ++e) {
    auto row = LagrangeBasisAt(head, xs_[providers[order[e]]]);
    if (!row.ok()) return nullptr;
    entry->check.push_back(std::move(*row));
  }
  std::unique_lock<std::shared_mutex> lock(cache_->mu);
  auto [it, inserted] = cache_->entries.try_emplace(key, std::move(entry));
  return it->second.get();
}

Result<SharingContext::BasisRef> SharingContext::GetBasis(
    const std::vector<size_t>& providers) const {
  if (providers.size() < k_) {
    return Status::Unavailable(
        "Reconstruct: fewer than k shares available");
  }
  // Bounds + duplicate validation in caller order, so which error fires
  // first matches the seed's per-share scan exactly.
  ProviderBitmap seen(xs_.size());
  for (size_t provider : providers) {
    if (provider >= xs_.size()) {
      return Status::InvalidArgument("Reconstruct: provider index out of range");
    }
    if (!seen.TestAndSet(provider)) {
      return Status::InvalidArgument(
          "Reconstruct: duplicate share from one provider");
    }
  }
  std::vector<uint32_t> order(providers.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return providers[a] < providers[b];
  });
  const BasisEntry* entry = ResolveBasis(order, providers);
  if (entry == nullptr) {
    return Status::Internal("Reconstruct: basis construction failed");
  }
  BasisRef ref;
  ref.entry_ = entry;
  ref.order_ = std::move(order);
  return ref;
}

Result<Fp61> SharingContext::ReconstructWithBasis(
    const BasisRef& basis, const std::vector<Fp61>& ys) const {
  const auto* entry = static_cast<const BasisEntry*>(basis.entry_);
  if (entry == nullptr || ys.size() != basis.order_.size()) {
    return Status::InvalidArgument(
        "ReconstructWithBasis: basis does not match the share vector");
  }
  // secret = sum over any k of the shares — for a consistent set every
  // k-subset interpolates the same polynomial, so summing the sorted head
  // is bit-identical to the seed's interpolate-the-caller's-head path.
  Fp61 secret;
  for (size_t j = 0; j < k_; ++j) {
    secret += entry->at_zero[j] * ys[basis.order_[j]];
  }
  for (size_t e = 0; e < entry->check.size(); ++e) {
    const std::vector<Fp61>& row = entry->check[e];
    Fp61 expect;
    for (size_t j = 0; j < k_; ++j) {
      expect += row[j] * ys[basis.order_[j]];
    }
    if (expect != ys[basis.order_[k_ + e]]) {
      return Status::Corruption(
          "Reconstruct: shares are inconsistent (corrupt or mixed secrets)");
    }
  }
  return secret;
}

Result<Fp61> SharingContext::Reconstruct(
    const std::vector<IndexedShare>& shares) const {
  std::vector<size_t> providers(shares.size());
  std::vector<Fp61> ys(shares.size());
  for (size_t i = 0; i < shares.size(); ++i) {
    providers[i] = shares[i].provider;
    ys[i] = shares[i].y;
  }
  SSDB_ASSIGN_OR_RETURN(BasisRef basis, GetBasis(providers));
  return ReconstructWithBasis(basis, ys);
}

std::vector<Fp61> SharingContext::ZeroShares(Rng* rng) const {
  return Split(Fp61(), rng);
}

}  // namespace ssdb
