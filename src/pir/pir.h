// Private information retrieval schemes (Section II.B).
//
// The paper frames PIR as the theory answer to private queries: retrieve
// element i of an N-element database without the server learning i, with
// k-server replication buying communication sublinear in N, versus Sion &
// Carbunar's observation that in practice the trivial protocol (download
// everything) often wins. Three schemes let experiment E6 measure that
// trade-off directly:
//
//   * TrivialPir      — download the whole database. O(N) down, perfect
//                       privacy, no server computation beyond a memcpy.
//   * TwoServerXorPir — the classic CGKS square scheme: the database is a
//                       sqrt(N) x sqrt(N) grid; each of 2 non-colluding
//                       servers gets a random column subset (one differing
//                       in the target column) and returns per-row XORs.
//                       O(sqrt(N)) communication.
//   * PolyPir         — k-server polynomial scheme: records are encoded as
//                       a degree-(k-1) multilinear polynomial over
//                       F_{2^61-1}; the client shares the index point along
//                       a random line and interpolates. O(k * N^(1/(k-1)))
//                       communication. (The O(N^(1/(2k-1))) refinement the
//                       paper cites needs derivative sharing —
//                       Woodruff-Yekhanin — noted as future work.)
//
// All records are single field elements (callers chunk larger records).
// Servers are modelled in-process with explicit byte accounting.

#ifndef SSDB_PIR_PIR_H_
#define SSDB_PIR_PIR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "field/fp61.h"

namespace ssdb {

/// Per-query communication/computation accounting.
struct PirStats {
  uint64_t bytes_up = 0;       ///< Client -> all servers.
  uint64_t bytes_down = 0;     ///< All servers -> client.
  uint64_t server_word_ops = 0;  ///< Database words touched server-side.

  uint64_t total_bytes() const { return bytes_up + bytes_down; }
};

/// \brief Baseline: ship the entire database.
class TrivialPir {
 public:
  explicit TrivialPir(std::vector<uint64_t> database)
      : db_(std::move(database)) {}

  size_t size() const { return db_.size(); }

  /// Retrieves record i; charges the full database to bytes_down.
  Result<uint64_t> Fetch(size_t index, PirStats* stats) const;

 private:
  std::vector<uint64_t> db_;
};

/// \brief Two-server XOR scheme over a sqrt(N) x sqrt(N) layout.
///
/// Privacy holds against each single server (the two queries are
/// individually uniform random column subsets).
class TwoServerXorPir {
 public:
  explicit TwoServerXorPir(std::vector<uint64_t> database);

  size_t size() const { return n_; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  Result<uint64_t> Fetch(size_t index, Rng* rng, PirStats* stats) const;

 private:
  /// Server computation: per-row XOR over the selected columns.
  std::vector<uint64_t> ServerAnswer(const std::vector<uint8_t>& col_mask,
                                     PirStats* stats) const;

  std::vector<uint64_t> db_;  // row-major rows_ x cols_ (zero padded)
  size_t n_;
  size_t rows_;
  size_t cols_;
};

/// \brief k-server polynomial-interpolation scheme (k >= 2).
///
/// Records live in F_{2^61-1}. Index i is embedded as a 0/1 point e(i) in
/// F^(d*m) (d = k-1 digit blocks of one-hot width m = ceil(N^(1/d))); the
/// database polynomial F is multilinear of degree d with F(e(i)) = x_i.
/// The client samples a random direction r and sends e(i) + t_j * r to
/// server j; any single server's view is uniform, and k evaluations of
/// the degree-d univariate restriction recover F(e(i)).
class PolyPir {
 public:
  static Result<PolyPir> Create(std::vector<uint64_t> database,
                                size_t num_servers);

  size_t size() const { return db_.size(); }
  size_t num_servers() const { return degree_ + 1; }
  size_t point_dims() const { return static_cast<size_t>(degree_) * m_; }

  Result<uint64_t> Fetch(size_t index, Rng* rng, PirStats* stats) const;

  /// Server computation, exposed for tests: evaluates the database
  /// polynomial at an arbitrary point.
  Fp61 EvaluateAt(const std::vector<Fp61>& point, PirStats* stats) const;

 private:
  PolyPir(std::vector<uint64_t> database, size_t degree, size_t m)
      : db_(std::move(database)), degree_(degree), m_(m) {}

  std::vector<uint64_t> db_;
  size_t degree_;  // d = k-1
  size_t m_;       // digits per block, N <= m^d
};

/// \brief Woodruff-Yekhanin PIR: the O(N^{1/(2k-1)}) family the paper
/// cites in §II.B.
///
/// The database polynomial F is multilinear of degree d = 2k-1 in
/// d * m coordinates (m = ceil(N^{1/d})). Each of the k servers receives
/// one point of the line e(i) + t*r and returns BOTH F at that point and
/// the full gradient of F there. The client forms f(t_j) = F(p_j) and
/// f'(t_j) = <grad F(p_j), r>, giving 2k constraints on the degree-(2k-1)
/// univariate restriction f — enough for Hermite interpolation of f(0) =
/// x_i. Communication per server: d*m field elements up, d*m + 1 down,
/// i.e. O(k^2 * N^{1/(2k-1)}) total.
class WoodruffYekhaninPir {
 public:
  static Result<WoodruffYekhaninPir> Create(std::vector<uint64_t> database,
                                            size_t num_servers);

  size_t size() const { return db_.size(); }
  size_t num_servers() const { return servers_; }
  size_t degree() const { return 2 * servers_ - 1; }
  size_t point_dims() const { return degree() * m_; }

  Result<uint64_t> Fetch(size_t index, Rng* rng, PirStats* stats) const;

  /// Server computation, exposed for tests: F(point) and its gradient.
  Fp61 EvaluateWithGradient(const std::vector<Fp61>& point,
                            std::vector<Fp61>* gradient,
                            PirStats* stats) const;

 private:
  WoodruffYekhaninPir(std::vector<uint64_t> database, size_t servers,
                      size_t m)
      : db_(std::move(database)), servers_(servers), m_(m) {}

  std::vector<uint64_t> db_;
  size_t servers_;  // k
  size_t m_;        // digits per block, N <= m^(2k-1)
};

}  // namespace ssdb

#endif  // SSDB_PIR_PIR_H_
