#include "pir/pir.h"

#include <cmath>

#include "field/linalg.h"
#include "field/poly.h"

namespace ssdb {

// --- Trivial -----------------------------------------------------------------

Result<uint64_t> TrivialPir::Fetch(size_t index, PirStats* stats) const {
  if (index >= db_.size()) {
    return Status::InvalidArgument("trivial pir: index out of range");
  }
  // The server streams the entire database; model the read pass so the
  // wall-clock comparison against the multi-server schemes is fair (their
  // servers also touch every word).
  uint64_t checksum = 0;
  for (uint64_t word : db_) checksum ^= word;
  volatile uint64_t sink = checksum;  // keep the read pass observable
  (void)sink;
  if (stats != nullptr) {
    stats->bytes_up += 1;  // a single "send me everything" byte
    stats->bytes_down += db_.size() * sizeof(uint64_t);
    stats->server_word_ops += db_.size();
  }
  return db_[index];
}

// --- Two-server XOR ----------------------------------------------------------

TwoServerXorPir::TwoServerXorPir(std::vector<uint64_t> database)
    : n_(database.size()) {
  rows_ = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(n_ == 0 ? 1 : n_))));
  if (rows_ == 0) rows_ = 1;
  cols_ = (n_ + rows_ - 1) / rows_;
  if (cols_ == 0) cols_ = 1;
  db_.assign(rows_ * cols_, 0);
  for (size_t i = 0; i < database.size(); ++i) db_[i] = database[i];
}

std::vector<uint64_t> TwoServerXorPir::ServerAnswer(
    const std::vector<uint8_t>& col_mask, PirStats* stats) const {
  std::vector<uint64_t> answer(rows_, 0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      if (col_mask[c] != 0) answer[r] ^= db_[r * cols_ + c];
    }
  }
  if (stats != nullptr) stats->server_word_ops += rows_ * cols_;
  return answer;
}

Result<uint64_t> TwoServerXorPir::Fetch(size_t index, Rng* rng,
                                        PirStats* stats) const {
  if (index >= n_) {
    return Status::InvalidArgument("xor pir: index out of range");
  }
  const size_t target_row = index / cols_;
  const size_t target_col = index % cols_;

  std::vector<uint8_t> mask1(cols_);
  for (auto& b : mask1) b = static_cast<uint8_t>(rng->Next() & 1);
  std::vector<uint8_t> mask2 = mask1;
  mask2[target_col] ^= 1;

  if (stats != nullptr) {
    stats->bytes_up += 2 * ((cols_ + 7) / 8);  // one bit per column, twice
    stats->bytes_down += 2 * rows_ * sizeof(uint64_t);
  }
  const std::vector<uint64_t> a1 = ServerAnswer(mask1, stats);
  const std::vector<uint64_t> a2 = ServerAnswer(mask2, stats);
  return a1[target_row] ^ a2[target_row];
}

// --- k-server polynomial -----------------------------------------------------

Result<PolyPir> PolyPir::Create(std::vector<uint64_t> database,
                                size_t num_servers) {
  if (num_servers < 2 || num_servers > 8) {
    return Status::InvalidArgument("poly pir: 2 <= servers <= 8");
  }
  if (database.empty()) {
    return Status::InvalidArgument("poly pir: empty database");
  }
  for (uint64_t x : database) {
    if (x >= Fp61::kP) {
      return Status::InvalidArgument(
          "poly pir: records must be field elements (< 2^61-1)");
    }
  }
  const size_t d = num_servers - 1;
  // Smallest m with m^d >= N.
  size_t m = 1;
  auto covers = [&](size_t mm) {
    u128 cap = 1;
    for (size_t b = 0; b < d; ++b) {
      cap *= mm;
      if (cap >= database.size()) return true;
    }
    return cap >= database.size();
  };
  while (!covers(m)) ++m;
  return PolyPir(std::move(database), d, m);
}

Fp61 PolyPir::EvaluateAt(const std::vector<Fp61>& point,
                         PirStats* stats) const {
  // F(z) = sum_i x_i * prod_b z[b * m + digit_b(i)].
  Fp61 acc;
  for (size_t i = 0; i < db_.size(); ++i) {
    Fp61 term = Fp61::FromCanonical(db_[i]);
    size_t rest = i;
    for (size_t b = 0; b < degree_; ++b) {
      const size_t digit = rest % m_;
      rest /= m_;
      term *= point[b * m_ + digit];
    }
    acc += term;
  }
  if (stats != nullptr) stats->server_word_ops += db_.size() * degree_;
  return acc;
}

Result<uint64_t> PolyPir::Fetch(size_t index, Rng* rng,
                                PirStats* stats) const {
  if (index >= db_.size()) {
    return Status::InvalidArgument("poly pir: index out of range");
  }
  const size_t dims = point_dims();

  // Index embedding e(index): one-hot per digit block.
  std::vector<Fp61> e(dims);
  size_t rest = index;
  for (size_t b = 0; b < degree_; ++b) {
    e[b * m_ + rest % m_] = Fp61::FromCanonical(1);
    rest /= m_;
  }
  // Random direction r.
  std::vector<Fp61> r(dims);
  for (auto& v : r) v = Fp61::FromU64(rng->Uniform(Fp61::kP));

  // Query server j at t_j = j+1; collect evaluations of the univariate
  // restriction f(t) = F(e + t*r) (degree <= d).
  const size_t k = degree_ + 1;
  std::vector<FpPoint> evals;
  std::vector<Fp61> point(dims);
  for (size_t j = 0; j < k; ++j) {
    const Fp61 t = Fp61::FromU64(j + 1);
    for (size_t dim = 0; dim < dims; ++dim) {
      point[dim] = e[dim] + t * r[dim];
    }
    if (stats != nullptr) {
      stats->bytes_up += dims * sizeof(uint64_t);
      stats->bytes_down += sizeof(uint64_t);
    }
    evals.push_back(FpPoint{t, EvaluateAt(point, stats)});
  }
  SSDB_ASSIGN_OR_RETURN(Fp61 secret, LagrangeAtZero(evals));
  return secret.value();
}

// --- Woodruff-Yekhanin -------------------------------------------------------

Result<WoodruffYekhaninPir> WoodruffYekhaninPir::Create(
    std::vector<uint64_t> database, size_t num_servers) {
  if (num_servers < 2 || num_servers > 5) {
    return Status::InvalidArgument("wy pir: 2 <= servers <= 5");
  }
  if (database.empty()) {
    return Status::InvalidArgument("wy pir: empty database");
  }
  for (uint64_t x : database) {
    if (x >= Fp61::kP) {
      return Status::InvalidArgument(
          "wy pir: records must be field elements (< 2^61-1)");
    }
  }
  const size_t d = 2 * num_servers - 1;
  size_t m = 1;
  auto covers = [&](size_t mm) {
    u128 cap = 1;
    for (size_t b = 0; b < d; ++b) {
      cap *= mm;
      if (cap >= database.size()) return true;
    }
    return cap >= database.size();
  };
  while (!covers(m)) ++m;
  return WoodruffYekhaninPir(std::move(database), num_servers, m);
}

Fp61 WoodruffYekhaninPir::EvaluateWithGradient(const std::vector<Fp61>& point,
                                               std::vector<Fp61>* gradient,
                                               PirStats* stats) const {
  const size_t d = degree();
  gradient->assign(point_dims(), Fp61());
  Fp61 value;
  // Per record: prefix/suffix products over its d block coordinates give
  // both the full product (the value contribution) and the
  // product-excluding-block-b (the gradient contribution), in O(d) each.
  std::vector<Fp61> coords(d), prefix(d + 1), suffix(d + 1);
  for (size_t i = 0; i < db_.size(); ++i) {
    const Fp61 x = Fp61::FromCanonical(db_[i]);
    size_t rest = i;
    for (size_t b = 0; b < d; ++b) {
      coords[b] = point[b * m_ + rest % m_];
      rest /= m_;
    }
    prefix[0] = Fp61::FromCanonical(1);
    for (size_t b = 0; b < d; ++b) prefix[b + 1] = prefix[b] * coords[b];
    suffix[d] = Fp61::FromCanonical(1);
    for (size_t b = d; b-- > 0;) suffix[b] = suffix[b + 1] * coords[b];
    value += x * prefix[d];
    rest = i;
    for (size_t b = 0; b < d; ++b) {
      const size_t digit = rest % m_;
      rest /= m_;
      (*gradient)[b * m_ + digit] += x * prefix[b] * suffix[b + 1];
    }
  }
  if (stats != nullptr) stats->server_word_ops += db_.size() * d;
  return value;
}

Result<uint64_t> WoodruffYekhaninPir::Fetch(size_t index, Rng* rng,
                                            PirStats* stats) const {
  if (index >= db_.size()) {
    return Status::InvalidArgument("wy pir: index out of range");
  }
  const size_t d = degree();
  const size_t dims = point_dims();

  std::vector<Fp61> e(dims);
  size_t rest = index;
  for (size_t b = 0; b < d; ++b) {
    e[b * m_ + rest % m_] = Fp61::FromCanonical(1);
    rest /= m_;
  }
  std::vector<Fp61> r(dims);
  for (auto& v : r) v = Fp61::FromU64(rng->Uniform(Fp61::kP));

  // Query each server; collect f(t_j) and f'(t_j) = <grad, r>.
  std::vector<Fp61> ts(servers_), fs(servers_), dfs(servers_);
  std::vector<Fp61> point(dims), grad;
  for (size_t j = 0; j < servers_; ++j) {
    const Fp61 t = Fp61::FromU64(j + 1);
    ts[j] = t;
    for (size_t dim = 0; dim < dims; ++dim) point[dim] = e[dim] + t * r[dim];
    if (stats != nullptr) {
      stats->bytes_up += dims * sizeof(uint64_t);
      stats->bytes_down += (dims + 1) * sizeof(uint64_t);
    }
    fs[j] = EvaluateWithGradient(point, &grad, stats);
    Fp61 dot;
    for (size_t dim = 0; dim < dims; ++dim) dot += grad[dim] * r[dim];
    dfs[j] = dot;
  }

  // Hermite interpolation: find c_0..c_d of f with f(t_j) and f'(t_j).
  const size_t unknowns = d + 1;  // == 2k
  FpMatrix a(unknowns);
  std::vector<Fp61> rhs(unknowns);
  for (size_t j = 0; j < servers_; ++j) {
    // Row 2j: sum_a c_a t^a = f(t_j).
    Fp61 pow = Fp61::FromCanonical(1);
    for (size_t col = 0; col < unknowns; ++col) {
      a.at(2 * j, col) = pow;
      pow *= ts[j];
    }
    rhs[2 * j] = fs[j];
    // Row 2j+1: sum_a a * c_a t^(a-1) = f'(t_j).
    pow = Fp61::FromCanonical(1);
    a.at(2 * j + 1, 0) = Fp61();
    for (size_t col = 1; col < unknowns; ++col) {
      a.at(2 * j + 1, col) = Fp61::FromU64(col) * pow;
      pow *= ts[j];
    }
    rhs[2 * j + 1] = dfs[j];
  }
  SSDB_ASSIGN_OR_RETURN(std::vector<Fp61> coeffs,
                        SolveLinearSystem(std::move(a), std::move(rhs)));
  return coeffs[0].value();  // f(0) = F(e(index)) = x_index
}

}  // namespace ssdb
