// Wire protocol between the data source and the service providers.
//
// Every request is one message: a type byte followed by a type-specific
// payload (common/buffer.h encoding). Every response starts with a status
// byte (0 = OK, otherwise a StatusCode) and, on error, a message string;
// on success the payload follows.
//
// Providers operate exclusively on shares. A query request carries
// predicates already rewritten into share space by the client
// (client/rewriter.h): exact-match predicates carry this provider's
// deterministic share of the constant, range predicates carry this
// provider's order-preserving shares of the bounds — precisely the §V.A
// rewriting ("retrieve ... whose salary is share(20, i)").

#ifndef SSDB_PROVIDER_PROTOCOL_H_
#define SSDB_PROVIDER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "codec/schema.h"
#include "codec/value.h"
#include "common/buffer.h"
#include "common/status.h"
#include "net/batch.h"
#include "storage/share_table.h"

namespace ssdb {

enum class MsgType : uint8_t {
  kCreateTable = 1,
  kDropTable = 2,
  kInsertRows = 3,
  kDeleteRows = 4,
  kUpdateRows = 5,
  kGetRows = 6,
  kQuery = 7,
  kJoin = 8,
  kCreatePublicTable = 9,
  kInsertPublicRows = 10,
  kFetchPublicColumn = 11,
  kAttachShareIndex = 12,
  kPublicFilter = 13,
  kTableStats = 14,
  kRefreshRows = 15,
  /// A batched envelope of complete sub-requests (net/batch.h). Nested
  /// envelopes are rejected.
  kBatch = 16,
};
static_assert(static_cast<uint8_t>(MsgType::kBatch) == kBatchMsgTag,
              "MsgType::kBatch must match the net-layer envelope tag");

/// True for messages that create/drop tables or rewrite row state. The
/// provider serializes these exclusively, WAL-logs them (storage/engine.h),
/// and the client queues them for catch-up when their target is killed
/// (kBatch envelopes are classified by their sub-messages, not here).
inline bool IsMutatingMessage(MsgType type) {
  switch (type) {
    case MsgType::kCreateTable:
    case MsgType::kDropTable:
    case MsgType::kInsertRows:
    case MsgType::kDeleteRows:
    case MsgType::kUpdateRows:
    case MsgType::kCreatePublicTable:
    case MsgType::kInsertPublicRows:
    case MsgType::kAttachShareIndex:
    case MsgType::kRefreshRows:
      return true;
    default:
      return false;
  }
}

/// Provider-side evaluation strategy for a query.
enum class QueryAction : uint8_t {
  kFetchRows = 0,   ///< Return the matching share rows.
  kFetchRowIds = 1, ///< Return matching row ids only.
  kCount = 2,       ///< Return the match count.
  kPartialSum = 3,  ///< Return (sum of secret shares of target, count).
  kArgMin = 4,      ///< Return row(s) minimizing target's op share.
  kArgMax = 5,      ///< Return row(s) maximizing target's op share.
  kMedian = 6,      ///< Return the (lower) median row by target's op share.
  kGroupedSum = 7,  ///< Group by group_column's det share; per group return
                    ///< (representative row, key share, sum share, count).
};

enum class PredicateKind : uint8_t {
  kExactDet = 0,  ///< det share of column == det_share.
  kRangeOp = 1,   ///< op share of column in [op_lo, op_hi].
};

/// One share-space predicate (conjunctive).
struct SharePredicate {
  uint32_t column = 0;
  PredicateKind kind = PredicateKind::kExactDet;
  uint64_t det_share = 0;
  u128 op_lo = 0;
  u128 op_hi = 0;

  void EncodeTo(Buffer* buf) const;
  static Status DecodeFrom(Decoder* dec, SharePredicate* out);
};

/// A query over one table.
struct QueryRequest {
  uint32_t table_id = 0;
  std::vector<SharePredicate> predicates;
  QueryAction action = QueryAction::kFetchRows;
  uint32_t target_column = 0;  ///< For aggregate actions.
  uint32_t group_column = 0;   ///< For kGroupedSum.
  /// Column indices to return for row-fetching actions (empty = all).
  /// Projection is pushed down so unrequested share columns never travel.
  std::vector<uint32_t> projection;

  void EncodeTo(Buffer* buf) const;
  static Status DecodeFrom(Decoder* dec, QueryRequest* out);
};

/// A same-domain equi-join executed at the provider (§V.A Join).
struct JoinRequest {
  uint32_t left_table = 0;
  uint32_t left_column = 0;
  uint32_t right_table = 0;
  uint32_t right_column = 0;
  /// Optional pre-filters applied before joining.
  std::vector<SharePredicate> left_predicates;
  std::vector<SharePredicate> right_predicates;

  void EncodeTo(Buffer* buf) const;
  static Status DecodeFrom(Decoder* dec, JoinRequest* out);
};

/// Entry of a client share index over a public column (§V.D mash-up).
struct ShareIndexEntry {
  uint64_t row_id = 0;
  uint64_t det_share = 0;
  u128 op_share = 0;
};

// --- Request encoders (client side) ----------------------------------------

void EncodeCreateTable(uint32_t table_id,
                       const std::vector<ProviderColumnLayout>& layout,
                       Buffer* out);
void EncodeDropTable(uint32_t table_id, Buffer* out);
void EncodeInsertRows(uint32_t table_id,
                      const std::vector<ProviderColumnLayout>& layout,
                      const std::vector<StoredRow>& rows, Buffer* out);
void EncodeDeleteRows(uint32_t table_id, const std::vector<uint64_t>& row_ids,
                      Buffer* out);
void EncodeUpdateRows(uint32_t table_id,
                      const std::vector<ProviderColumnLayout>& layout,
                      const std::vector<StoredRow>& rows, Buffer* out);
void EncodeGetRows(uint32_t table_id, const std::vector<uint64_t>& row_ids,
                   Buffer* out);
void EncodeQuery(const QueryRequest& query, Buffer* out);
void EncodeJoin(const JoinRequest& join, Buffer* out);
void EncodeCreatePublicTable(uint32_t table_id, uint32_t num_columns,
                             Buffer* out);
void EncodeInsertPublicRows(uint32_t table_id,
                            const std::vector<std::vector<Value>>& rows,
                            Buffer* out);
void EncodeFetchPublicColumn(uint32_t table_id, uint32_t column, Buffer* out);
void EncodeAttachShareIndex(uint32_t table_id, uint32_t column,
                            const std::vector<ShareIndexEntry>& entries,
                            Buffer* out);
/// Filter a public table through an attached share index.
void EncodePublicFilter(uint32_t table_id, uint32_t column,
                        const SharePredicate& predicate, Buffer* out);
void EncodeTableStats(uint32_t table_id, Buffer* out);

// --- Response framing -------------------------------------------------------

/// Writes the OK header.
void EncodeOkHeader(Buffer* out);
/// Writes an error response.
void EncodeErrorResponse(const Status& status, Buffer* out);
/// Reads the response header; returns the embedded error if any. On OK the
/// decoder is positioned at the payload.
Status DecodeResponseHeader(Decoder* dec);

// --- Response payloads ------------------------------------------------------

void EncodeRowsResponse(const std::vector<StoredRow>& rows,
                        const std::vector<ProviderColumnLayout>& layout,
                        Buffer* out);
Status DecodeRowsResponse(Decoder* dec,
                          const std::vector<ProviderColumnLayout>& layout,
                          std::vector<StoredRow>* out);

void EncodeRowIdsResponse(const std::vector<uint64_t>& ids, Buffer* out);
Status DecodeRowIdsResponse(Decoder* dec, std::vector<uint64_t>* out);

struct PartialAggregate {
  uint64_t sum_share = 0;  ///< Sum of secret shares mod p.
  uint64_t count = 0;
};
void EncodeAggResponse(const PartialAggregate& agg, Buffer* out);
Status DecodeAggResponse(Decoder* dec, PartialAggregate* out);

/// One group of a kGroupedSum response. Groups are ordered by their
/// representative (minimal) row id, which is identical at every provider,
/// so the client can zip k responses together.
struct GroupPartial {
  uint64_t rep_row_id = 0;    ///< Smallest row id in the group.
  uint64_t key_share = 0;     ///< Secret share of the group key (rep row).
  uint64_t sum_share = 0;     ///< Sum of target secret shares mod p.
  uint64_t count = 0;
};
void EncodeGroupedAggResponse(const std::vector<GroupPartial>& groups,
                              Buffer* out);
Status DecodeGroupedAggResponse(Decoder* dec,
                                std::vector<GroupPartial>* out);

/// One row's refresh deltas: added to the stored secret shares (the
/// deltas are shares of zero, so the secrets are unchanged while the
/// shares re-randomize — proactive refresh, §VI(b)).
struct RefreshDelta {
  uint64_t row_id = 0;
  std::vector<uint64_t> column_deltas;  ///< One Fp61 delta per column.
};
void EncodeRefreshRows(uint32_t table_id,
                       const std::vector<RefreshDelta>& deltas, Buffer* out);

/// Join result: pairs of (left row, right row).
struct JoinedRowPair {
  StoredRow left;
  StoredRow right;
};
void EncodeJoinResponse(const std::vector<JoinedRowPair>& pairs,
                        const std::vector<ProviderColumnLayout>& left_layout,
                        const std::vector<ProviderColumnLayout>& right_layout,
                        Buffer* out);
Status DecodeJoinResponse(Decoder* dec,
                          const std::vector<ProviderColumnLayout>& left_layout,
                          const std::vector<ProviderColumnLayout>& right_layout,
                          std::vector<JoinedRowPair>* out);

void EncodePublicRowsResponse(const std::vector<std::vector<Value>>& rows,
                              const std::vector<uint64_t>& row_ids,
                              Buffer* out);
Status DecodePublicRowsResponse(Decoder* dec,
                                std::vector<std::vector<Value>>* rows,
                                std::vector<uint64_t>* row_ids);

void EncodeCountResponse(uint64_t count, Buffer* out);
Status DecodeCountResponse(Decoder* dec, uint64_t* out);

}  // namespace ssdb

#endif  // SSDB_PROVIDER_PROTOCOL_H_
