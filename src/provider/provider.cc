#include "provider/provider.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "field/fp61.h"

namespace ssdb {

void Provider::AttachMetrics(MetricsRegistry* registry,
                             const std::string& label) {
  const MetricLabels labels = {{"provider", label}};
  metric_requests_ = registry->GetCounter("ssdb_provider_requests_total", labels);
  metric_rows_examined_ =
      registry->GetCounter("ssdb_provider_rows_examined_total", labels);
  metric_rows_returned_ =
      registry->GetCounter("ssdb_provider_rows_returned_total", labels);
  metric_index_lookups_ =
      registry->GetCounter("ssdb_provider_index_lookups_total", labels);
}

Result<Buffer> Provider::Handle(Slice request) {
  // A batch envelope counts as ONE request, mirroring the network's
  // one-call-per-envelope accounting.
  BumpRequests();
  Decoder dec(request);
  uint8_t type = 0;
  Buffer out;
  Status st = dec.GetU8(&type);
  if (st.ok()) {
    if (static_cast<MsgType>(type) == MsgType::kBatch) {
      st = HandleBatch(&dec, &out);
    } else {
      std::shared_lock<std::shared_mutex> read_lock(state_mu_,
                                                    std::defer_lock);
      std::unique_lock<std::shared_mutex> write_lock(state_mu_,
                                                     std::defer_lock);
      const bool mutating = IsMutatingMessage(static_cast<MsgType>(type));
      if (mutating) {
        write_lock.lock();
      } else {
        read_lock.lock();
      }
      st = Dispatch(static_cast<MsgType>(type), &dec, &out);
      if (mutating) {
        // WAL-log every dispatched mutating message, successful or not:
        // handlers are deterministic, so replaying a partially-applied
        // message reproduces the partial application exactly. Logged
        // under the exclusive lock — log order equals apply order.
        Status log_st = engine_->LogMutation(request);
        if (st.ok() && !log_st.ok()) st = log_st;
      }
    }
  }
  if (!st.ok()) {
    // Errors travel inside a well-formed response, never as a transport
    // failure (a malformed request must not crash or wedge a provider).
    Buffer err;
    EncodeErrorResponse(st, &err);
    return err;
  }
  return out;
}

Status Provider::Dispatch(MsgType type, Decoder* dec, Buffer* out) {
  switch (type) {
    case MsgType::kCreateTable:
      return HandleCreateTable(dec, out);
    case MsgType::kDropTable:
      return HandleDropTable(dec, out);
    case MsgType::kInsertRows:
      return HandleInsertRows(dec, out);
    case MsgType::kDeleteRows:
      return HandleDeleteRows(dec, out);
    case MsgType::kUpdateRows:
      return HandleUpdateRows(dec, out);
    case MsgType::kGetRows:
      return HandleGetRows(dec, out);
    case MsgType::kQuery:
      return HandleQuery(dec, out);
    case MsgType::kJoin:
      return HandleJoin(dec, out);
    case MsgType::kCreatePublicTable:
      return HandleCreatePublicTable(dec, out);
    case MsgType::kInsertPublicRows:
      return HandleInsertPublicRows(dec, out);
    case MsgType::kFetchPublicColumn:
      return HandleFetchPublicColumn(dec, out);
    case MsgType::kAttachShareIndex:
      return HandleAttachShareIndex(dec, out);
    case MsgType::kPublicFilter:
      return HandlePublicFilter(dec, out);
    case MsgType::kTableStats:
      return HandleTableStats(dec, out);
    case MsgType::kRefreshRows:
      return HandleRefreshRows(dec, out);
    case MsgType::kBatch:
      return Status::InvalidArgument("provider: nested batch envelope");
  }
  return Status::InvalidArgument("provider: unknown message type");
}

Status Provider::HandleBatch(Decoder* dec, Buffer* out) {
  std::vector<Slice> ops;
  SSDB_RETURN_IF_ERROR(DecodeBatchRequestPayload(dec, &ops));

  // One lock acquisition covers the whole envelope, exclusive iff any
  // sub-op mutates: a batch executes atomically with respect to other
  // messages, in sub-op order.
  std::shared_lock<std::shared_mutex> read_lock(state_mu_, std::defer_lock);
  std::unique_lock<std::shared_mutex> write_lock(state_mu_, std::defer_lock);
  bool mutating = false;
  for (const Slice& op : ops) {
    if (!op.empty() && IsMutatingMessage(static_cast<MsgType>(op.data()[0]))) {
      mutating = true;
      break;
    }
  }
  if (mutating) {
    write_lock.lock();
  } else {
    read_lock.lock();
  }

  // Per-op errors are embedded as error sub-responses inside an OK outer
  // envelope, so one malformed op can never mask its siblings' results.
  std::vector<Buffer> responses(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    Decoder op_dec(ops[i]);
    uint8_t sub_type = 0;
    Status st = op_dec.GetU8(&sub_type);
    if (st.ok()) {
      st = Dispatch(static_cast<MsgType>(sub_type), &op_dec, &responses[i]);
      // Mutating sub-ops are WAL-logged individually, in envelope order,
      // successful or not (see Handle) — replay re-applies the envelope's
      // effects op for op.
      if (IsMutatingMessage(static_cast<MsgType>(sub_type))) {
        SSDB_RETURN_IF_ERROR(engine_->LogMutation(ops[i]));
      }
    }
    if (!st.ok()) {
      responses[i].clear();
      EncodeErrorResponse(st, &responses[i]);
    }
  }
  EncodeOkHeader(out);
  EncodeBatchResponsePayload(responses, out);
  return Status::OK();
}

Result<ShareTable*> Provider::FindTable(uint32_t table_id) {
  auto& tables = engine_->state().tables;
  auto it = tables.find(table_id);
  if (it == tables.end()) {
    return Status::NotFound("provider: unknown table id");
  }
  return &it->second;
}

Result<PublicTable*> Provider::FindPublicTable(uint32_t table_id) {
  auto& public_tables = engine_->state().public_tables;
  auto it = public_tables.find(table_id);
  if (it == public_tables.end()) {
    return Status::NotFound("provider: unknown public table id");
  }
  return &it->second;
}

Result<const ShareTable*> Provider::GetTableForTest(uint32_t table_id) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  const auto& tables = engine_->state().tables;
  auto it = tables.find(table_id);
  if (it == tables.end()) {
    return Status::NotFound("provider: unknown table id");
  }
  return &it->second;
}

Status Provider::HandleCreateTable(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  if (n == 0 || n > 4096) {
    return Status::InvalidArgument("provider: implausible column count");
  }
  std::vector<ProviderColumnLayout> layout(n);
  for (auto& c : layout) {
    SSDB_RETURN_IF_ERROR(ProviderColumnLayout::DecodeFrom(dec, &c));
  }
  auto& tables = engine_->state().tables;
  if (tables.count(table_id) != 0) {
    return Status::AlreadyExists("provider: table id already exists");
  }
  tables.emplace(table_id, ShareTable(std::move(layout)));
  EncodeOkHeader(out);
  return Status::OK();
}

Status Provider::HandleDropTable(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  if (engine_->state().tables.erase(table_id) == 0) {
    return Status::NotFound("provider: unknown table id");
  }
  EncodeOkHeader(out);
  return Status::OK();
}

Status Provider::HandleInsertRows(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_ASSIGN_OR_RETURN(ShareTable * table, FindTable(table_id));
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    StoredRow row;
    SSDB_RETURN_IF_ERROR(DecodeStoredRow(dec, table->layout(), &row));
    SSDB_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  EncodeOkHeader(out);
  return Status::OK();
}

Status Provider::HandleDeleteRows(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_ASSIGN_OR_RETURN(ShareTable * table, FindTable(table_id));
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    SSDB_RETURN_IF_ERROR(dec->GetU64(&id));
    SSDB_RETURN_IF_ERROR(table->Delete(id));
  }
  EncodeOkHeader(out);
  return Status::OK();
}

Status Provider::HandleUpdateRows(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_ASSIGN_OR_RETURN(ShareTable * table, FindTable(table_id));
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    StoredRow row;
    SSDB_RETURN_IF_ERROR(DecodeStoredRow(dec, table->layout(), &row));
    SSDB_RETURN_IF_ERROR(table->Update(std::move(row)));
  }
  EncodeOkHeader(out);
  return Status::OK();
}

Status Provider::HandleGetRows(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_ASSIGN_OR_RETURN(ShareTable * table, FindTable(table_id));
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  std::vector<uint64_t> ids(n);
  for (uint64_t i = 0; i < n; ++i) {
    SSDB_RETURN_IF_ERROR(dec->GetU64(&ids[i]));
  }
  // Stream rows straight into the response under one table lock: on any
  // error the caller discards `out`, so the partial encode never leaks.
  EncodeOkHeader(out);
  out->PutVarint(ids.size());
  out->reserve(out->size() + ids.size() * StoredRowWireSize(table->layout()));
  SSDB_RETURN_IF_ERROR(table->VisitRows(ids, [&](const StoredRow& row) {
    EncodeStoredRow(row, table->layout(), out);
    return Status::OK();
  }));
  BumpRowsReturned(ids.size());
  return Status::OK();
}

Result<bool> Provider::RowMatches(const ShareTable& table,
                                  const StoredRow& row,
                                  const SharePredicate& pred) {
  if (pred.column >= table.num_columns()) {
    return Status::InvalidArgument("provider: predicate column out of range");
  }
  const StoredCell& cell = row.cells[pred.column];
  if (pred.kind == PredicateKind::kExactDet) {
    if (!table.layout()[pred.column].has_det) {
      return Status::NotSupported(
          "provider: exact predicate on column without deterministic shares");
    }
    return cell.det == pred.det_share;
  }
  if (!table.layout()[pred.column].has_op) {
    return Status::NotSupported(
        "provider: range predicate on column without order-preserving shares");
  }
  return cell.op >= pred.op_lo && cell.op <= pred.op_hi;
}

Result<std::vector<uint64_t>> Provider::EvaluatePredicates(
    const ShareTable& table, const std::vector<SharePredicate>& preds) {
  std::vector<uint64_t> candidates;
  if (preds.empty()) {
    candidates = table.AllRowIds();
    BumpRowsExamined(candidates.size());
    return candidates;
  }
  // The first predicate is the index access path; the rest are filtered.
  const SharePredicate& p = preds[0];
  BumpIndexLookups();
  if (p.kind == PredicateKind::kExactDet) {
    SSDB_ASSIGN_OR_RETURN(candidates, table.ExactMatch(p.column, p.det_share));
  } else {
    SSDB_ASSIGN_OR_RETURN(candidates,
                          table.RangeScan(p.column, p.op_lo, p.op_hi));
    std::sort(candidates.begin(), candidates.end());
  }
  BumpRowsExamined(candidates.size());
  if (preds.size() == 1) return candidates;

  std::vector<uint64_t> out;
  SSDB_RETURN_IF_ERROR(
      table.VisitRows(candidates, [&](const StoredRow& row) -> Status {
        bool all = true;
        for (size_t i = 1; i < preds.size(); ++i) {
          SSDB_ASSIGN_OR_RETURN(bool m, RowMatches(table, row, preds[i]));
          if (!m) {
            all = false;
            break;
          }
        }
        if (all) out.push_back(row.row_id);
        return Status::OK();
      }));
  return out;
}

namespace {

/// Builds the projected layout and a projector for rows; an empty
/// projection keeps every column.
Status MakeProjection(const ShareTable& table,
                      const std::vector<uint32_t>& projection,
                      std::vector<ProviderColumnLayout>* layout_out,
                      std::vector<uint32_t>* columns_out) {
  if (projection.empty()) {
    *layout_out = table.layout();
    columns_out->resize(table.num_columns());
    for (uint32_t c = 0; c < table.num_columns(); ++c) (*columns_out)[c] = c;
    return Status::OK();
  }
  layout_out->clear();
  columns_out->clear();
  for (uint32_t c : projection) {
    if (c >= table.num_columns()) {
      return Status::InvalidArgument("provider: projection column out of range");
    }
    layout_out->push_back(table.layout()[c]);
    columns_out->push_back(c);
  }
  return Status::OK();
}

}  // namespace

Status Provider::HandleQuery(Decoder* dec, Buffer* out) {
  QueryRequest q;
  SSDB_RETURN_IF_ERROR(QueryRequest::DecodeFrom(dec, &q));
  SSDB_ASSIGN_OR_RETURN(ShareTable * table, FindTable(q.table_id));

  // A query with no predicates matches every row; visiting the table
  // directly (ascending row-id order, same as VisitRows over AllRowIds)
  // skips materializing the id list and one map lookup per row.
  const bool full_scan = q.predicates.empty();
  std::vector<uint64_t> ids;
  size_t matched = 0;
  if (full_scan) {
    matched = table->size();
    BumpRowsExamined(matched);
    if (q.action == QueryAction::kFetchRowIds) ids = table->AllRowIds();
  } else {
    SSDB_ASSIGN_OR_RETURN(ids, EvaluatePredicates(*table, q.predicates));
    matched = ids.size();
  }
  const auto visit_matched = [&](const auto& fn) -> Status {
    if (full_scan) return table->VisitAllRows(fn);
    return table->VisitRows(ids, fn);
  };

  std::vector<ProviderColumnLayout> proj_layout;
  std::vector<uint32_t> proj_columns;
  SSDB_RETURN_IF_ERROR(
      MakeProjection(*table, q.projection, &proj_layout, &proj_columns));

  switch (q.action) {
    case QueryAction::kFetchRows: {
      // One lock for the whole result, no intermediate row copies: each
      // matched row is projected straight into the response buffer.
      EncodeOkHeader(out);
      out->PutVarint(matched);
      out->reserve(out->size() + matched * StoredRowWireSize(proj_layout));
      SSDB_RETURN_IF_ERROR(visit_matched([&](const StoredRow& row) {
        EncodeStoredRowProjected(row, proj_layout, proj_columns, out);
        return Status::OK();
      }));
      BumpRowsReturned(matched);
      return Status::OK();
    }
    case QueryAction::kGroupedSum: {
      if (q.target_column >= table->num_columns() ||
          q.group_column >= table->num_columns()) {
        return Status::InvalidArgument("provider: bad grouped-sum columns");
      }
      if (!table->layout()[q.group_column].has_det) {
        return Status::NotSupported(
            "provider: GROUP BY needs deterministic shares on the group "
            "column");
      }
      // Group matched rows by the group column's det share; groups are
      // identified across providers by their minimal row id.
      std::unordered_map<uint64_t, GroupPartial> groups;
      SSDB_RETURN_IF_ERROR(visit_matched([&](const StoredRow& row) {
        const uint64_t det = row.cells[q.group_column].det;
        auto [it, inserted] = groups.try_emplace(det);
        GroupPartial& g = it->second;
        if (inserted || row.row_id < g.rep_row_id) {
          g.rep_row_id = row.row_id;
          g.key_share = row.cells[q.group_column].secret;
        }
        g.sum_share = (Fp61::FromCanonical(g.sum_share) +
                       Fp61::FromCanonical(row.cells[q.target_column].secret))
                          .value();
        g.count++;
        return Status::OK();
      }));
      std::vector<GroupPartial> ordered;
      ordered.reserve(groups.size());
      for (auto& [det, g] : groups) ordered.push_back(g);
      std::sort(ordered.begin(), ordered.end(),
                [](const GroupPartial& a, const GroupPartial& b) {
                  return a.rep_row_id < b.rep_row_id;
                });
      EncodeOkHeader(out);
      EncodeGroupedAggResponse(ordered, out);
      return Status::OK();
    }
    case QueryAction::kFetchRowIds: {
      EncodeOkHeader(out);
      EncodeRowIdsResponse(ids, out);
      return Status::OK();
    }
    case QueryAction::kCount: {
      EncodeOkHeader(out);
      EncodeCountResponse(matched, out);
      return Status::OK();
    }
    case QueryAction::kPartialSum: {
      if (q.target_column >= table->num_columns()) {
        return Status::InvalidArgument("provider: bad aggregate target");
      }
      // Additive homomorphism: the sum of secret shares is a share of the
      // sum (all polynomials are evaluated at this provider's x_i).
      Fp61 sum;
      SSDB_RETURN_IF_ERROR(visit_matched([&](const StoredRow& row) {
        sum += Fp61::FromCanonical(row.cells[q.target_column].secret);
        return Status::OK();
      }));
      EncodeOkHeader(out);
      EncodeAggResponse(PartialAggregate{sum.value(), matched}, out);
      return Status::OK();
    }
    case QueryAction::kArgMin:
    case QueryAction::kArgMax:
    case QueryAction::kMedian: {
      if (q.target_column >= table->num_columns()) {
        return Status::InvalidArgument("provider: bad aggregate target");
      }
      if (!table->layout()[q.target_column].has_op) {
        return Status::NotSupported(
            "provider: MIN/MAX/MEDIAN need order-preserving shares on the "
            "target column");
      }
      if (matched == 0) {
        EncodeOkHeader(out);
        EncodeRowsResponse({}, proj_layout, out);
        return Status::OK();
      }
      // Rank matching rows by (op share, row id): identical at every
      // provider since op order mirrors value order. Pairs are distinct
      // (row ids are unique), so the order statistics below select exactly
      // the element a full sort would put at that rank — without the
      // O(n log n) sort.
      std::vector<std::pair<u128, uint64_t>> ordered;
      ordered.reserve(matched);
      SSDB_RETURN_IF_ERROR(visit_matched([&](const StoredRow& row) {
        ordered.emplace_back(row.cells[q.target_column].op, row.row_id);
        return Status::OK();
      }));
      std::vector<uint64_t> picked;
      if (q.action == QueryAction::kMedian) {
        const size_t mid = (ordered.size() - 1) / 2;
        std::nth_element(ordered.begin(),
                         ordered.begin() + static_cast<ptrdiff_t>(mid),
                         ordered.end());
        picked.push_back(ordered[mid].second);
      } else {
        u128 extreme = ordered.front().first;
        for (const auto& [op, id] : ordered) {
          if (q.action == QueryAction::kArgMin ? op < extreme : op > extreme) {
            extreme = op;
          }
        }
        for (const auto& [op, id] : ordered) {
          if (op == extreme) picked.push_back(id);
        }
        // Ties come out in visit order; sorted ids match the sorted-pairs
        // order the full sort produced.
        std::sort(picked.begin(), picked.end());
      }
      BumpRowsReturned(picked.size());
      EncodeOkHeader(out);
      out->PutVarint(picked.size());
      SSDB_RETURN_IF_ERROR(table->VisitRows(picked, [&](const StoredRow& row) {
        EncodeStoredRowProjected(row, proj_layout, proj_columns, out);
        return Status::OK();
      }));
      return Status::OK();
    }
  }
  return Status::Internal("provider: unhandled query action");
}

Status Provider::HandleJoin(Decoder* dec, Buffer* out) {
  JoinRequest j;
  SSDB_RETURN_IF_ERROR(JoinRequest::DecodeFrom(dec, &j));
  SSDB_ASSIGN_OR_RETURN(ShareTable * left, FindTable(j.left_table));
  SSDB_ASSIGN_OR_RETURN(ShareTable * right, FindTable(j.right_table));
  if (j.left_column >= left->num_columns() ||
      j.right_column >= right->num_columns()) {
    return Status::InvalidArgument("provider: join column out of range");
  }
  if (!left->layout()[j.left_column].has_det ||
      !right->layout()[j.right_column].has_det) {
    return Status::NotSupported(
        "provider: join requires deterministic shares on both sides");
  }
  SSDB_ASSIGN_OR_RETURN(std::vector<uint64_t> left_ids,
                        EvaluatePredicates(*left, j.left_predicates));
  SSDB_ASSIGN_OR_RETURN(std::vector<uint64_t> right_ids,
                        EvaluatePredicates(*right, j.right_predicates));

  // Hash join on deterministic shares (equal shares <=> equal values for
  // same-domain attributes).
  std::unordered_multimap<uint64_t, uint64_t> build;
  build.reserve(right_ids.size());
  SSDB_RETURN_IF_ERROR(right->VisitRows(right_ids, [&](const StoredRow& row) {
    build.emplace(row.cells[j.right_column].det, row.row_id);
    return Status::OK();
  }));
  BumpRowsExamined(left_ids.size() + right_ids.size());

  // Two flat passes instead of per-pair point reads: pass 1 pins each
  // matching left row and lists its right row ids (sorted for
  // determinism); pass 2 pins the right rows in that order. Pointers stay
  // valid after the table locks drop because the provider's state lock
  // keeps mutators out for the whole request. Locks are never nested, so
  // self-joins (left == right) cannot re-enter one shared_mutex.
  std::vector<const StoredRow*> lefts;
  std::vector<uint64_t> rid_seq;
  std::vector<uint64_t> rids;
  SSDB_RETURN_IF_ERROR(
      left->VisitRows(left_ids, [&](const StoredRow& lrow) -> Status {
        auto range = build.equal_range(lrow.cells[j.left_column].det);
        rids.clear();
        for (auto it = range.first; it != range.second; ++it) {
          rids.push_back(it->second);
        }
        std::sort(rids.begin(), rids.end());
        for (uint64_t rid : rids) {
          lefts.push_back(&lrow);
          rid_seq.push_back(rid);
        }
        return Status::OK();
      }));
  std::vector<const StoredRow*> rights;
  rights.reserve(rid_seq.size());
  SSDB_RETURN_IF_ERROR(right->VisitRows(rid_seq, [&](const StoredRow& rrow) {
    rights.push_back(&rrow);
    return Status::OK();
  }));
  BumpRowsReturned(2 * lefts.size());
  EncodeOkHeader(out);
  out->PutVarint(lefts.size());
  out->reserve(out->size() +
               lefts.size() * (StoredRowWireSize(left->layout()) +
                               StoredRowWireSize(right->layout())));
  for (size_t i = 0; i < lefts.size(); ++i) {
    EncodeStoredRow(*lefts[i], left->layout(), out);
    EncodeStoredRow(*rights[i], right->layout(), out);
  }
  return Status::OK();
}

Status Provider::HandleCreatePublicTable(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0, num_columns = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_RETURN_IF_ERROR(dec->GetU32(&num_columns));
  if (num_columns == 0 || num_columns > 4096) {
    return Status::InvalidArgument("provider: implausible public column count");
  }
  auto& public_tables = engine_->state().public_tables;
  if (public_tables.count(table_id) != 0) {
    return Status::AlreadyExists("provider: public table id already exists");
  }
  PublicTable t;
  t.num_columns = num_columns;
  public_tables.emplace(table_id, std::move(t));
  EncodeOkHeader(out);
  return Status::OK();
}

Status Provider::HandleInsertPublicRows(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_ASSIGN_OR_RETURN(PublicTable * table, FindPublicTable(table_id));
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t cols = 0;
    SSDB_RETURN_IF_ERROR(dec->GetVarint(&cols));
    if (cols != table->num_columns) {
      return Status::InvalidArgument("provider: public row arity mismatch");
    }
    std::vector<Value> row(cols);
    for (auto& v : row) SSDB_RETURN_IF_ERROR(Value::DecodeFrom(dec, &v));
    table->rows.push_back(std::move(row));
  }
  EncodeOkHeader(out);
  return Status::OK();
}

Status Provider::HandleFetchPublicColumn(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0, column = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_RETURN_IF_ERROR(dec->GetU32(&column));
  SSDB_ASSIGN_OR_RETURN(PublicTable * table, FindPublicTable(table_id));
  if (column >= table->num_columns) {
    return Status::InvalidArgument("provider: public column out of range");
  }
  std::vector<std::vector<Value>> rows;
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < table->rows.size(); ++i) {
    rows.push_back({table->rows[i][column]});
    ids.push_back(i);
  }
  BumpRowsReturned(rows.size());
  EncodeOkHeader(out);
  EncodePublicRowsResponse(rows, ids, out);
  return Status::OK();
}

Status Provider::HandleAttachShareIndex(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0, column = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_RETURN_IF_ERROR(dec->GetU32(&column));
  SSDB_ASSIGN_OR_RETURN(PublicTable * table, FindPublicTable(table_id));
  if (column >= table->num_columns) {
    return Status::InvalidArgument("provider: public column out of range");
  }
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  PublicColumnIndex& idx = table->share_index[column];
  idx.det.clear();
  idx.op = BPlusTree();
  for (uint64_t i = 0; i < n; ++i) {
    ShareIndexEntry e;
    SSDB_RETURN_IF_ERROR(dec->GetU64(&e.row_id));
    SSDB_RETURN_IF_ERROR(dec->GetU64(&e.det_share));
    SSDB_RETURN_IF_ERROR(dec->GetU128(&e.op_share));
    if (e.row_id >= table->rows.size()) {
      return Status::InvalidArgument("provider: share index row out of range");
    }
    idx.det.emplace(e.det_share, e.row_id);
    idx.op.Insert(e.op_share, e.row_id);
  }
  EncodeOkHeader(out);
  return Status::OK();
}

Status Provider::HandlePublicFilter(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0, column = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_RETURN_IF_ERROR(dec->GetU32(&column));
  SharePredicate pred;
  SSDB_RETURN_IF_ERROR(SharePredicate::DecodeFrom(dec, &pred));
  SSDB_ASSIGN_OR_RETURN(PublicTable * table, FindPublicTable(table_id));
  auto idx_it = table->share_index.find(column);
  if (idx_it == table->share_index.end()) {
    return Status::NotSupported(
        "provider: no share index attached to this public column");
  }
  BumpIndexLookups();
  std::vector<uint64_t> ids;
  if (pred.kind == PredicateKind::kExactDet) {
    auto range = idx_it->second.det.equal_range(pred.det_share);
    for (auto it = range.first; it != range.second; ++it) {
      ids.push_back(it->second);
    }
    std::sort(ids.begin(), ids.end());
  } else {
    ids = idx_it->second.op.Range(pred.op_lo, pred.op_hi);
    std::sort(ids.begin(), ids.end());
  }
  std::vector<std::vector<Value>> rows;
  for (uint64_t id : ids) rows.push_back(table->rows[id]);
  BumpRowsReturned(rows.size());
  EncodeOkHeader(out);
  EncodePublicRowsResponse(rows, ids, out);
  return Status::OK();
}

Status Provider::HandleRefreshRows(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_ASSIGN_OR_RETURN(ShareTable * table, FindTable(table_id));
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t row_id = 0;
    SSDB_RETURN_IF_ERROR(dec->GetU64(&row_id));
    uint64_t cols = 0;
    SSDB_RETURN_IF_ERROR(dec->GetVarint(&cols));
    if (cols != table->num_columns()) {
      return Status::InvalidArgument("provider: refresh delta arity mismatch");
    }
    std::vector<uint64_t> deltas(cols);
    for (auto& d : deltas) SSDB_RETURN_IF_ERROR(dec->GetU64(&d));
    SSDB_RETURN_IF_ERROR(table->AddSecretDeltas(row_id, deltas));
  }
  EncodeOkHeader(out);
  return Status::OK();
}

Status Provider::HandleTableStats(Decoder* dec, Buffer* out) {
  uint32_t table_id = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU32(&table_id));
  SSDB_ASSIGN_OR_RETURN(ShareTable * table, FindTable(table_id));
  EncodeOkHeader(out);
  EncodeCountResponse(table->size(), out);
  return Status::OK();
}

// --- Durability & lifecycle ---------------------------------------------------

Status Provider::OpenStorage() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  // Replay re-dispatches each logged wire message through the live
  // handlers (the lock is already held; Dispatch never takes it). The
  // mutating handlers bump no work counters, so recovery leaves
  // ProviderStats and the ssdb_provider_* series untouched.
  return engine_->Open(name_, [this](Slice record) {
    Decoder dec(record);
    uint8_t type = 0;
    SSDB_RETURN_IF_ERROR(dec.GetU8(&type));
    Buffer scratch;
    return Dispatch(static_cast<MsgType>(type), &dec, &scratch);
  });
}

void Provider::Crash() {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  engine_->Crash();
}

// --- Snapshots ---------------------------------------------------------------

void Provider::SaveSnapshot(Buffer* out) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  EncodeProviderState(engine_->state(), name_, out);
}

Status Provider::LoadSnapshot(Slice snapshot) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  std::string name;
  ProviderState state;
  SSDB_RETURN_IF_ERROR(DecodeProviderState(snapshot, &name, &state));
  name_ = std::move(name);
  engine_->state() = std::move(state);
  return Status::OK();
}

Status Provider::SaveSnapshotToFile(const std::string& path) const {
  Buffer buf;
  SaveSnapshot(&buf);
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("provider snapshot: cannot open " + path);
  }
  const size_t written = fwrite(buf.data(), 1, buf.size(), f);
  const int close_rc = fclose(f);
  if (written != buf.size() || close_rc != 0) {
    return Status::Internal("provider snapshot: short write to " + path);
  }
  return Status::OK();
}

Status Provider::LoadSnapshotFromFile(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("provider snapshot: cannot open " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[4096];
  size_t got = 0;
  while ((got = fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  fclose(f);
  return LoadSnapshot(Slice(bytes));
}

}  // namespace ssdb
