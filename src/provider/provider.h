// The Database Service Provider (DAS_i).
//
// A Provider is one of the n independent services the data source
// outsources to. It stores share rows (storage/share_table.h) and answers
// the share-space protocol of provider/protocol.h. It never holds
// plaintext, the sharing polynomials, or the secret evaluation points —
// everything it can compute is computable from the shares alone, which is
// the Section III security argument.
//
// Providers may additionally host *public* plaintext tables (restaurant
// directories, watch lists — §V.D). A client can attach a private share
// index over a public column, after which it can filter public data with
// share-space predicates without revealing which rows it cares about on a
// per-query basis.

#ifndef SSDB_PROVIDER_PROVIDER_H_
#define SSDB_PROVIDER_PROVIDER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "provider/protocol.h"
#include "storage/btree.h"
#include "storage/engine.h"
#include "storage/share_table.h"

namespace ssdb {

/// Provider-side work counters (for the benchmarks' cost accounting).
/// Fields are atomic so concurrent fan-out legs can bump them racelessly;
/// they read as plain uint64_t.
struct ProviderStats {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> rows_examined{0};  ///< Rows touched by filters/joins.
  std::atomic<uint64_t> rows_returned{0};  ///< Share rows shipped back.
  std::atomic<uint64_t> index_lookups{0};
};

/// \brief One database service provider.
///
/// The Provider owns the protocol: request decoding, locking, handler
/// dispatch and response encoding. All stored state — share tables and
/// hosted public tables — lives in a pluggable StorageEngine
/// (storage/engine.h): MemoryEngine (the default; the seed system's
/// RAM-only behavior) or DurableEngine (per-provider WAL + snapshots,
/// surviving Crash()/Restart()).
class Provider : public ProviderEndpoint {
 public:
  /// A null `engine` means MemoryEngine (the seed system's provider).
  explicit Provider(std::string name,
                    std::unique_ptr<StorageEngine> engine = nullptr)
      : name_(std::move(name)),
        engine_(engine != nullptr ? std::move(engine)
                                  : std::make_unique<MemoryEngine>()) {}

  // ProviderEndpoint:
  Result<Buffer> Handle(Slice request) override;
  std::string name() const override { return name_; }

  const ProviderStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.requests = 0;
    stats_.rows_examined = 0;
    stats_.rows_returned = 0;
    stats_.index_lookups = 0;
  }

  /// Mirrors every ProviderStats bump into `registry` under the
  /// `ssdb_provider_*` series, labelled {provider: `label`}. Handles are
  /// cached, so each bump is one extra relaxed atomic add; registry
  /// totals track stats() exactly from any common reset point.
  void AttachMetrics(MetricsRegistry* registry, const std::string& label);

  /// Number of share tables currently hosted.
  size_t num_tables() const {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    return engine_->state().tables.size();
  }

  /// Total share rows hosted across all tables. Under a multi-shard
  /// topology this is the provider's partition of the row space, so the
  /// per-group sums expose the partitioner's balance (sql_shell TOPOLOGY).
  size_t num_rows() const {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    size_t total = 0;
    for (const auto& [id, table] : engine_->state().tables) {
      total += table.size();
    }
    return total;
  }

  /// Direct (test-only) access to a hosted table.
  Result<const ShareTable*> GetTableForTest(uint32_t table_id) const;

  // --- Durability & lifecycle -------------------------------------------

  /// The storage engine backing this provider's state.
  StorageEngine& engine() { return *engine_; }
  const StorageEngine& engine() const { return *engine_; }

  /// Opens the storage engine: for a DurableEngine this loads the last
  /// snapshot and redo-replays the WAL through the provider's own
  /// handlers; for MemoryEngine it is a no-op. Called once after
  /// construction (OutsourcedDatabase::Create) and again by Restart().
  Status OpenStorage();

  /// Simulates process death: all in-memory state is dropped without any
  /// flush. Combine with FailureMode::kKill on the network link so
  /// in-flight and subsequent calls fail Unavailable.
  void Crash();

  /// Restarts a crashed provider from durable storage: snapshot load +
  /// WAL replay (MemoryEngine restarts empty). The caller resyncs missed
  /// writes afterwards (DataSourceClient::ResyncProvider).
  Status Restart() { return OpenStorage(); }

  /// Mirrors the engine's `ssdb_wal_*` / `ssdb_recovery_*` counters into
  /// `registry`. Only durable deployments attach this, so MemoryEngine
  /// telemetry exports stay byte-identical to the seed.
  void AttachDurabilityMetrics(MetricsRegistry* registry,
                               const std::string& label) {
    engine_->AttachMetrics(registry, label);
  }

  /// Serializes the provider's entire state — share tables, public tables
  /// and attached share indexes — so a provider process can restart from
  /// durable storage (the paper's "reliable data storage" promise).
  void SaveSnapshot(Buffer* out) const;
  /// Replaces the provider's state with a snapshot's.
  Status LoadSnapshot(Slice snapshot);
  /// File-based convenience wrappers.
  Status SaveSnapshotToFile(const std::string& path) const;
  Status LoadSnapshotFromFile(const std::string& path);

 private:
  /// Runs one already-typed message under the caller-held state lock and
  /// appends its full response. Rejects kBatch (no nested envelopes).
  Status Dispatch(MsgType type, Decoder* dec, Buffer* out);
  /// Executes a batch envelope: every sub-op runs in order under one lock
  /// acquisition, per-op errors are embedded as error sub-responses inside
  /// an OK outer response (net/batch.h).
  Status HandleBatch(Decoder* dec, Buffer* out);

  // Dispatch helpers; each appends its full response (header + payload).
  Status HandleCreateTable(Decoder* dec, Buffer* out);
  Status HandleDropTable(Decoder* dec, Buffer* out);
  Status HandleInsertRows(Decoder* dec, Buffer* out);
  Status HandleDeleteRows(Decoder* dec, Buffer* out);
  Status HandleUpdateRows(Decoder* dec, Buffer* out);
  Status HandleGetRows(Decoder* dec, Buffer* out);
  Status HandleQuery(Decoder* dec, Buffer* out);
  Status HandleJoin(Decoder* dec, Buffer* out);
  Status HandleCreatePublicTable(Decoder* dec, Buffer* out);
  Status HandleInsertPublicRows(Decoder* dec, Buffer* out);
  Status HandleFetchPublicColumn(Decoder* dec, Buffer* out);
  Status HandleAttachShareIndex(Decoder* dec, Buffer* out);
  Status HandlePublicFilter(Decoder* dec, Buffer* out);
  Status HandleTableStats(Decoder* dec, Buffer* out);
  Status HandleRefreshRows(Decoder* dec, Buffer* out);

  Result<ShareTable*> FindTable(uint32_t table_id);
  Result<PublicTable*> FindPublicTable(uint32_t table_id);

  /// Row ids satisfying all predicates (ascending); uses the first
  /// indexable predicate as the access path and filters the rest.
  Result<std::vector<uint64_t>> EvaluatePredicates(
      const ShareTable& table, const std::vector<SharePredicate>& preds);

  /// True iff `row` satisfies `pred`.
  static Result<bool> RowMatches(const ShareTable& table, const StoredRow& row,
                                 const SharePredicate& pred);

  // Stats bumps route through these so the registry mirror stays exact.
  void BumpRequests() {
    ++stats_.requests;
    if (metric_requests_ != nullptr) metric_requests_->Inc();
  }
  void BumpRowsExamined(uint64_t n) {
    stats_.rows_examined += n;
    if (metric_rows_examined_ != nullptr && n) metric_rows_examined_->Inc(n);
  }
  void BumpRowsReturned(uint64_t n) {
    stats_.rows_returned += n;
    if (metric_rows_returned_ != nullptr && n) metric_rows_returned_->Inc(n);
  }
  void BumpIndexLookups() {
    ++stats_.index_lookups;
    if (metric_index_lookups_ != nullptr) metric_index_lookups_->Inc();
  }

  std::string name_;
  ProviderStats stats_;
  MetricCounter* metric_requests_ = nullptr;
  MetricCounter* metric_rows_examined_ = nullptr;
  MetricCounter* metric_rows_returned_ = nullptr;
  MetricCounter* metric_index_lookups_ = nullptr;
  /// Guards the engine's table maps (not the tables' contents — each
  /// ShareTable has its own lock). Handle takes it exclusively for
  /// messages that create, drop or rewrite tables, shared otherwise, so
  /// read-only fan-out legs proceed in parallel while DDL/DML serializes
  /// against them. WAL appends happen under the exclusive lock, so each
  /// provider's log order equals its apply order.
  mutable std::shared_mutex state_mu_;
  std::unique_ptr<StorageEngine> engine_;
};

}  // namespace ssdb

#endif  // SSDB_PROVIDER_PROVIDER_H_
