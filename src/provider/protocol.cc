#include "provider/protocol.h"

namespace ssdb {

namespace {
constexpr uint64_t kMaxVectorLength = 1u << 26;  // decode-side sanity bound

Status CheckLength(uint64_t n, const char* what) {
  if (n > kMaxVectorLength) {
    return Status::Corruption(std::string("protocol: implausible ") + what +
                              " length");
  }
  return Status::OK();
}
}  // namespace

void SharePredicate::EncodeTo(Buffer* buf) const {
  buf->PutU32(column);
  buf->PutU8(static_cast<uint8_t>(kind));
  if (kind == PredicateKind::kExactDet) {
    buf->PutU64(det_share);
  } else {
    buf->PutU128(op_lo);
    buf->PutU128(op_hi);
  }
}

Status SharePredicate::DecodeFrom(Decoder* dec, SharePredicate* out) {
  SSDB_RETURN_IF_ERROR(dec->GetU32(&out->column));
  uint8_t kind = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU8(&kind));
  if (kind > static_cast<uint8_t>(PredicateKind::kRangeOp)) {
    return Status::Corruption("protocol: bad predicate kind");
  }
  out->kind = static_cast<PredicateKind>(kind);
  if (out->kind == PredicateKind::kExactDet) {
    SSDB_RETURN_IF_ERROR(dec->GetU64(&out->det_share));
  } else {
    SSDB_RETURN_IF_ERROR(dec->GetU128(&out->op_lo));
    SSDB_RETURN_IF_ERROR(dec->GetU128(&out->op_hi));
  }
  return Status::OK();
}

void QueryRequest::EncodeTo(Buffer* buf) const {
  buf->PutU32(table_id);
  buf->PutVarint(predicates.size());
  for (const auto& p : predicates) p.EncodeTo(buf);
  buf->PutU8(static_cast<uint8_t>(action));
  buf->PutU32(target_column);
  buf->PutU32(group_column);
  buf->PutVarint(projection.size());
  for (uint32_t c : projection) buf->PutU32(c);
}

Status QueryRequest::DecodeFrom(Decoder* dec, QueryRequest* out) {
  SSDB_RETURN_IF_ERROR(dec->GetU32(&out->table_id));
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  SSDB_RETURN_IF_ERROR(CheckLength(n, "predicate"));
  out->predicates.resize(n);
  for (auto& p : out->predicates) {
    SSDB_RETURN_IF_ERROR(SharePredicate::DecodeFrom(dec, &p));
  }
  uint8_t action = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU8(&action));
  if (action > static_cast<uint8_t>(QueryAction::kGroupedSum)) {
    return Status::Corruption("protocol: bad query action");
  }
  out->action = static_cast<QueryAction>(action);
  SSDB_RETURN_IF_ERROR(dec->GetU32(&out->target_column));
  SSDB_RETURN_IF_ERROR(dec->GetU32(&out->group_column));
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  SSDB_RETURN_IF_ERROR(CheckLength(n, "projection"));
  out->projection.resize(n);
  for (auto& c : out->projection) SSDB_RETURN_IF_ERROR(dec->GetU32(&c));
  return Status::OK();
}

void JoinRequest::EncodeTo(Buffer* buf) const {
  buf->PutU32(left_table);
  buf->PutU32(left_column);
  buf->PutU32(right_table);
  buf->PutU32(right_column);
  buf->PutVarint(left_predicates.size());
  for (const auto& p : left_predicates) p.EncodeTo(buf);
  buf->PutVarint(right_predicates.size());
  for (const auto& p : right_predicates) p.EncodeTo(buf);
}

Status JoinRequest::DecodeFrom(Decoder* dec, JoinRequest* out) {
  SSDB_RETURN_IF_ERROR(dec->GetU32(&out->left_table));
  SSDB_RETURN_IF_ERROR(dec->GetU32(&out->left_column));
  SSDB_RETURN_IF_ERROR(dec->GetU32(&out->right_table));
  SSDB_RETURN_IF_ERROR(dec->GetU32(&out->right_column));
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  SSDB_RETURN_IF_ERROR(CheckLength(n, "left predicate"));
  out->left_predicates.resize(n);
  for (auto& p : out->left_predicates) {
    SSDB_RETURN_IF_ERROR(SharePredicate::DecodeFrom(dec, &p));
  }
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  SSDB_RETURN_IF_ERROR(CheckLength(n, "right predicate"));
  out->right_predicates.resize(n);
  for (auto& p : out->right_predicates) {
    SSDB_RETURN_IF_ERROR(SharePredicate::DecodeFrom(dec, &p));
  }
  return Status::OK();
}

// --- Requests ---------------------------------------------------------------

void EncodeCreateTable(uint32_t table_id,
                       const std::vector<ProviderColumnLayout>& layout,
                       Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kCreateTable));
  out->PutU32(table_id);
  out->PutVarint(layout.size());
  for (const auto& c : layout) c.EncodeTo(out);
}

void EncodeDropTable(uint32_t table_id, Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kDropTable));
  out->PutU32(table_id);
}

namespace {
void EncodeRowsMessage(MsgType type, uint32_t table_id,
                       const std::vector<ProviderColumnLayout>& layout,
                       const std::vector<StoredRow>& rows, Buffer* out) {
  out->reserve(out->size() + 5 + VarintLength(rows.size()) +
               rows.size() * StoredRowWireSize(layout));
  out->PutU8(static_cast<uint8_t>(type));
  out->PutU32(table_id);
  out->PutVarint(rows.size());
  for (const StoredRow& r : rows) EncodeStoredRow(r, layout, out);
}
}  // namespace

void EncodeInsertRows(uint32_t table_id,
                      const std::vector<ProviderColumnLayout>& layout,
                      const std::vector<StoredRow>& rows, Buffer* out) {
  EncodeRowsMessage(MsgType::kInsertRows, table_id, layout, rows, out);
}

void EncodeUpdateRows(uint32_t table_id,
                      const std::vector<ProviderColumnLayout>& layout,
                      const std::vector<StoredRow>& rows, Buffer* out) {
  EncodeRowsMessage(MsgType::kUpdateRows, table_id, layout, rows, out);
}

void EncodeDeleteRows(uint32_t table_id, const std::vector<uint64_t>& row_ids,
                      Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kDeleteRows));
  out->PutU32(table_id);
  out->PutVarint(row_ids.size());
  for (uint64_t id : row_ids) out->PutU64(id);
}

void EncodeGetRows(uint32_t table_id, const std::vector<uint64_t>& row_ids,
                   Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kGetRows));
  out->PutU32(table_id);
  out->PutVarint(row_ids.size());
  for (uint64_t id : row_ids) out->PutU64(id);
}

void EncodeQuery(const QueryRequest& query, Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kQuery));
  query.EncodeTo(out);
}

void EncodeJoin(const JoinRequest& join, Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kJoin));
  join.EncodeTo(out);
}

void EncodeCreatePublicTable(uint32_t table_id, uint32_t num_columns,
                             Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kCreatePublicTable));
  out->PutU32(table_id);
  out->PutU32(num_columns);
}

void EncodeInsertPublicRows(uint32_t table_id,
                            const std::vector<std::vector<Value>>& rows,
                            Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kInsertPublicRows));
  out->PutU32(table_id);
  out->PutVarint(rows.size());
  for (const auto& row : rows) {
    out->PutVarint(row.size());
    for (const Value& v : row) v.EncodeTo(out);
  }
}

void EncodeFetchPublicColumn(uint32_t table_id, uint32_t column, Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kFetchPublicColumn));
  out->PutU32(table_id);
  out->PutU32(column);
}

void EncodeAttachShareIndex(uint32_t table_id, uint32_t column,
                            const std::vector<ShareIndexEntry>& entries,
                            Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kAttachShareIndex));
  out->PutU32(table_id);
  out->PutU32(column);
  out->PutVarint(entries.size());
  for (const auto& e : entries) {
    out->PutU64(e.row_id);
    out->PutU64(e.det_share);
    out->PutU128(e.op_share);
  }
}

void EncodePublicFilter(uint32_t table_id, uint32_t column,
                        const SharePredicate& predicate, Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kPublicFilter));
  out->PutU32(table_id);
  out->PutU32(column);
  predicate.EncodeTo(out);
}

void EncodeTableStats(uint32_t table_id, Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kTableStats));
  out->PutU32(table_id);
}

// --- Response framing -------------------------------------------------------

void EncodeOkHeader(Buffer* out) { out->PutU8(0); }

void EncodeErrorResponse(const Status& status, Buffer* out) {
  out->PutU8(static_cast<uint8_t>(status.code()));
  out->PutLengthPrefixed(Slice(status.message()));
}

Status DecodeResponseHeader(Decoder* dec) {
  uint8_t code = 0;
  SSDB_RETURN_IF_ERROR(dec->GetU8(&code));
  if (code == 0) return Status::OK();
  std::string msg;
  SSDB_RETURN_IF_ERROR(dec->GetLengthPrefixedString(&msg));
  if (code > static_cast<uint8_t>(StatusCode::kPermissionDenied)) {
    return Status::Corruption("protocol: unknown status code in response");
  }
  return Status(static_cast<StatusCode>(code), std::move(msg));
}

// --- Response payloads ------------------------------------------------------

void EncodeRowsResponse(const std::vector<StoredRow>& rows,
                        const std::vector<ProviderColumnLayout>& layout,
                        Buffer* out) {
  out->reserve(out->size() + VarintLength(rows.size()) +
               rows.size() * StoredRowWireSize(layout));
  out->PutVarint(rows.size());
  for (const StoredRow& r : rows) EncodeStoredRow(r, layout, out);
}

Status DecodeRowsResponse(Decoder* dec,
                          const std::vector<ProviderColumnLayout>& layout,
                          std::vector<StoredRow>* out) {
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  SSDB_RETURN_IF_ERROR(CheckLength(n, "row"));
  out->resize(n);
  for (auto& r : *out) {
    SSDB_RETURN_IF_ERROR(DecodeStoredRow(dec, layout, &r));
  }
  return Status::OK();
}

void EncodeRowIdsResponse(const std::vector<uint64_t>& ids, Buffer* out) {
  out->PutVarint(ids.size());
  for (uint64_t id : ids) out->PutU64(id);
}

Status DecodeRowIdsResponse(Decoder* dec, std::vector<uint64_t>* out) {
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  SSDB_RETURN_IF_ERROR(CheckLength(n, "row id"));
  out->resize(n);
  for (auto& id : *out) SSDB_RETURN_IF_ERROR(dec->GetU64(&id));
  return Status::OK();
}

void EncodeAggResponse(const PartialAggregate& agg, Buffer* out) {
  out->PutU64(agg.sum_share);
  out->PutU64(agg.count);
}

Status DecodeAggResponse(Decoder* dec, PartialAggregate* out) {
  SSDB_RETURN_IF_ERROR(dec->GetU64(&out->sum_share));
  SSDB_RETURN_IF_ERROR(dec->GetU64(&out->count));
  return Status::OK();
}

void EncodeGroupedAggResponse(const std::vector<GroupPartial>& groups,
                              Buffer* out) {
  out->PutVarint(groups.size());
  for (const GroupPartial& g : groups) {
    out->PutU64(g.rep_row_id);
    out->PutU64(g.key_share);
    out->PutU64(g.sum_share);
    out->PutU64(g.count);
  }
}

Status DecodeGroupedAggResponse(Decoder* dec,
                                std::vector<GroupPartial>* out) {
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  SSDB_RETURN_IF_ERROR(CheckLength(n, "group"));
  out->resize(n);
  for (auto& g : *out) {
    SSDB_RETURN_IF_ERROR(dec->GetU64(&g.rep_row_id));
    SSDB_RETURN_IF_ERROR(dec->GetU64(&g.key_share));
    SSDB_RETURN_IF_ERROR(dec->GetU64(&g.sum_share));
    SSDB_RETURN_IF_ERROR(dec->GetU64(&g.count));
  }
  return Status::OK();
}

void EncodeRefreshRows(uint32_t table_id,
                       const std::vector<RefreshDelta>& deltas, Buffer* out) {
  out->PutU8(static_cast<uint8_t>(MsgType::kRefreshRows));
  out->PutU32(table_id);
  out->PutVarint(deltas.size());
  for (const RefreshDelta& d : deltas) {
    out->PutU64(d.row_id);
    out->PutVarint(d.column_deltas.size());
    for (uint64_t delta : d.column_deltas) out->PutU64(delta);
  }
}

void EncodeJoinResponse(const std::vector<JoinedRowPair>& pairs,
                        const std::vector<ProviderColumnLayout>& left_layout,
                        const std::vector<ProviderColumnLayout>& right_layout,
                        Buffer* out) {
  out->reserve(out->size() + VarintLength(pairs.size()) +
               pairs.size() * (StoredRowWireSize(left_layout) +
                               StoredRowWireSize(right_layout)));
  out->PutVarint(pairs.size());
  for (const auto& p : pairs) {
    EncodeStoredRow(p.left, left_layout, out);
    EncodeStoredRow(p.right, right_layout, out);
  }
}

Status DecodeJoinResponse(Decoder* dec,
                          const std::vector<ProviderColumnLayout>& left_layout,
                          const std::vector<ProviderColumnLayout>& right_layout,
                          std::vector<JoinedRowPair>* out) {
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  SSDB_RETURN_IF_ERROR(CheckLength(n, "join pair"));
  out->resize(n);
  for (auto& p : *out) {
    SSDB_RETURN_IF_ERROR(DecodeStoredRow(dec, left_layout, &p.left));
    SSDB_RETURN_IF_ERROR(DecodeStoredRow(dec, right_layout, &p.right));
  }
  return Status::OK();
}

void EncodePublicRowsResponse(const std::vector<std::vector<Value>>& rows,
                              const std::vector<uint64_t>& row_ids,
                              Buffer* out) {
  out->PutVarint(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    out->PutU64(row_ids[i]);
    out->PutVarint(rows[i].size());
    for (const Value& v : rows[i]) v.EncodeTo(out);
  }
}

Status DecodePublicRowsResponse(Decoder* dec,
                                std::vector<std::vector<Value>>* rows,
                                std::vector<uint64_t>* row_ids) {
  uint64_t n = 0;
  SSDB_RETURN_IF_ERROR(dec->GetVarint(&n));
  SSDB_RETURN_IF_ERROR(CheckLength(n, "public row"));
  rows->resize(n);
  row_ids->resize(n);
  for (size_t i = 0; i < n; ++i) {
    SSDB_RETURN_IF_ERROR(dec->GetU64(&(*row_ids)[i]));
    uint64_t cols = 0;
    SSDB_RETURN_IF_ERROR(dec->GetVarint(&cols));
    SSDB_RETURN_IF_ERROR(CheckLength(cols, "public column"));
    (*rows)[i].resize(cols);
    for (auto& v : (*rows)[i]) {
      SSDB_RETURN_IF_ERROR(Value::DecodeFrom(dec, &v));
    }
  }
  return Status::OK();
}

void EncodeCountResponse(uint64_t count, Buffer* out) { out->PutU64(count); }

Status DecodeCountResponse(Decoder* dec, uint64_t* out) {
  return dec->GetU64(out);
}

}  // namespace ssdb
