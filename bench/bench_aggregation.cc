// E4 — aggregation queries (§V.A Aggregation).
//
// SUM/AVG exploit the additive homomorphism of the shares: providers sum
// locally and ship one share each ("intermediate computation" in the
// paper); MIN/MAX/MEDIAN exploit order-preserving shares to ship one
// candidate row each. The encrypted baseline must ship the matching
// superset and aggregate at the client. Counters show the bytes gap.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"

namespace ssdb {
namespace {

using bench::SharedEmployeeDb;
using bench::SharedEncryptedDb;

constexpr size_t kRows = 20000;
// Aggregate over salary in [40000, 120000] (~40% of rows).
constexpr int64_t kLo = 40000, kHi = 120000;

void BM_Agg_SharedSum(benchmark::State& state) {
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(kLo),
                                            Value::Int(kHi)))
                             .Aggregate(AggregateOp::kSum, "salary"));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Agg_SharedSum);

void BM_Agg_SharedSum_ClientSide(benchmark::State& state) {
  // Same SUM but without provider-side aggregation: fetch matching rows,
  // reconstruct, add at the client (what §IV calls the impractical path).
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(kLo),
                                            Value::Int(kHi))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    int64_t sum = 0;
    for (const auto& row : r->rows) sum += row[1].AsInt();
    benchmark::DoNotOptimize(sum);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Agg_SharedSum_ClientSide);

void BM_Agg_EncryptedSum(benchmark::State& state) {
  EncryptedDas* das = SharedEncryptedDb(kRows, 64, EncIndexKind::kOpe);
  if (das == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  das->ResetStats();
  for (auto _ : state) {
    auto r = das->Sum("salary", "salary", Value::Int(kLo), Value::Int(kHi));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(das->network_stats().total_bytes()) /
      state.iterations());
  state.counters["decrypts/query"] = benchmark::Counter(
      static_cast<double>(das->stats().tuples_decrypted) / state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Agg_EncryptedSum);

void RunOrderAggregate(benchmark::State& state, AggregateOp op) {
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(kLo),
                                            Value::Int(kHi)))
                             .Aggregate(op, "salary"));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}

void BM_Agg_SharedMin(benchmark::State& state) {
  RunOrderAggregate(state, AggregateOp::kMin);
}
BENCHMARK(BM_Agg_SharedMin);

void BM_Agg_SharedMax(benchmark::State& state) {
  RunOrderAggregate(state, AggregateOp::kMax);
}
BENCHMARK(BM_Agg_SharedMax);

void BM_Agg_SharedMedian(benchmark::State& state) {
  RunOrderAggregate(state, AggregateOp::kMedian);
}
BENCHMARK(BM_Agg_SharedMedian);

void BM_Agg_SharedCount(benchmark::State& state) {
  RunOrderAggregate(state, AggregateOp::kCount);
}
BENCHMARK(BM_Agg_SharedCount);

void BM_Agg_GroupedSum(benchmark::State& state) {
  // GROUP BY dept (100 groups): providers return one partial per group.
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  uint64_t groups = 0;
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(kLo),
                                            Value::Int(kHi)))
                             .Aggregate(AggregateOp::kSum, "salary")
                             .GroupBy("dept"));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    groups = r->groups.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.counters["groups"] = benchmark::Counter(static_cast<double>(groups));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Agg_GroupedSum);

void BM_Agg_GroupedSum_ClientSide(benchmark::State& state) {
  // Reference: fetch rows, group at the client.
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(kLo),
                                            Value::Int(kHi))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    std::map<int64_t, int64_t> sums;
    for (const auto& row : r->rows) sums[row[2].AsInt()] += row[1].AsInt();
    benchmark::DoNotOptimize(sums);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Agg_GroupedSum_ClientSide);

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
