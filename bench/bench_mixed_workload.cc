// Mixed-workload benchmark: the system under a realistic operation blend
// (YCSB-style), across table sizes, thresholds and update modes. This is
// not tied to a single paper claim; it is the "would you actually run
// this" sanity experiment a systems reviewer asks for.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "workload/query_mix.h"

namespace ssdb {
namespace {

std::unique_ptr<OutsourcedDatabase> FreshDb(size_t n, size_t k, bool lazy,
                                            size_t rows,
                                            size_t batch_max_ops = 128) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/n, /*k=*/k);
  options.client.lazy_updates = lazy;
  options.client.batch_max_ops = batch_max_ops;
  auto db = OutsourcedDatabase::Create(options);
  if (!db.ok()) return nullptr;
  if (!db.value()->CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) {
    return nullptr;
  }
  EmployeeGenerator gen(0xC0FFEE, Distribution::kUniform);
  if (!db.value()->Insert("Employees", gen.Rows(rows)).ok()) return nullptr;
  if (!db.value()->Flush().ok()) return nullptr;
  return std::move(db).value();
}

void BM_Mix_Standard(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  auto db = FreshDb(4, k, /*lazy=*/false, rows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  QueryMixDriver driver(db.get(), "Employees", /*seed=*/99);
  db->ResetAllStats();
  for (auto _ : state) {
    if (!driver.RunOps(10).ok()) {
      state.SkipWithError("op failed");
      return;
    }
  }
  const MixStats& mix = driver.stats();
  state.counters["bytes/op"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      static_cast<double>(mix.total_ops()));
  state.counters["rows_touched"] =
      benchmark::Counter(static_cast<double>(mix.rows_touched));
  state.SetItemsProcessed(static_cast<int64_t>(mix.total_ops()));
  bench::SnapshotDeployment("mix_standard_rows" + std::to_string(rows) +
                                "_k" + std::to_string(k),
                            db.get());
}
BENCHMARK(BM_Mix_Standard)
    ->Args({2000, 2})
    ->Args({20000, 2})
    ->Args({20000, 3})
    ->Unit(benchmark::kMillisecond);

void BM_Mix_LazyVsEager(benchmark::State& state) {
  const bool lazy = state.range(0) != 0;
  auto db = FreshDb(4, 2, lazy, 5000);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  MixRatios write_heavy;
  write_heavy.point_lookup = 0.2;
  write_heavy.range_scan = 0.1;
  write_heavy.aggregate = 0.05;
  write_heavy.update = 0.4;
  write_heavy.insert = 0.2;
  write_heavy.erase = 0.05;
  QueryMixDriver driver(db.get(), "Employees", 7, write_heavy);
  db->ResetAllStats();
  for (auto _ : state) {
    if (!driver.RunOps(10).ok()) {
      state.SkipWithError("op failed");
      return;
    }
  }
  if (!db->Flush().ok()) {
    state.SkipWithError("flush failed");
    return;
  }
  state.counters["bytes/op"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      static_cast<double>(driver.stats().total_ops()));
  state.counters["calls/op"] = benchmark::Counter(
      static_cast<double>(db->network_stats().calls) /
      static_cast<double>(driver.stats().total_ops()));
  state.SetLabel(lazy ? "lazy" : "eager");
  state.SetItemsProcessed(static_cast<int64_t>(driver.stats().total_ops()));
  bench::SnapshotDeployment(lazy ? "mix_write_heavy_lazy"
                                 : "mix_write_heavy_eager",
                            db.get());
}
BENCHMARK(BM_Mix_LazyVsEager)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Mix_BatchedPointReads(benchmark::State& state) {
  // ExecuteBatch over 16 independent point lookups: with
  // batch_max_ops=1 every query pays its own quorum round trips; with
  // the default 128 all compatible fan-outs fuse into one envelope per
  // contacted provider.
  const size_t batch_max = static_cast<size_t>(state.range(0));
  auto db = FreshDb(4, 2, /*lazy=*/false, 5000, batch_max);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  std::vector<Query> queries;
  for (int dept = 0; dept < 16; ++dept) {
    queries.push_back(
        Query::Select("Employees").Where(Eq("dept", Value::Int(dept))));
  }
  db->ResetAllStats();
  bench::WallSimTimer timer(db.get());
  uint64_t ops = 0;
  for (auto _ : state) {
    auto results = db->ExecuteBatch(queries);
    for (const auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    ops += results.size();
  }
  state.counters["sim_us/op"] =
      benchmark::Counter(timer.SimMicros() / static_cast<double>(ops));
  state.counters["calls/op"] = benchmark::Counter(
      static_cast<double>(db->network_stats().calls) /
      static_cast<double>(ops));
  state.counters["bytes/op"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      static_cast<double>(ops));
  state.SetLabel("batch_max_ops=" + std::to_string(batch_max));
  state.SetItemsProcessed(static_cast<int64_t>(ops));
  bench::SnapshotDeployment(
      "mix_batched_point_reads_batch" + std::to_string(batch_max), db.get());
}
BENCHMARK(BM_Mix_BatchedPointReads)
    ->Arg(1)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_Mix_UnderFailures(benchmark::State& state) {
  // The blend keeps running while one provider is down — but note that
  // writes need all n, so this configuration uses reads/aggregates only.
  auto db = FreshDb(5, 2, false, 5000);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->faults().Down(0);
  MixRatios read_only;
  read_only.point_lookup = 0.4;
  read_only.range_scan = 0.3;
  read_only.aggregate = 0.3;
  read_only.update = 0;
  read_only.insert = 0;
  read_only.erase = 0;
  QueryMixDriver driver(db.get(), "Employees", 8, read_only);
  db->ResetAllStats();
  for (auto _ : state) {
    if (!driver.RunOps(10).ok()) {
      state.SkipWithError("op failed");
      return;
    }
  }
  db->faults().HealAll();
  state.counters["bytes/op"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      static_cast<double>(driver.stats().total_ops()));
  state.SetItemsProcessed(static_cast<int64_t>(driver.stats().total_ops()));
  bench::SnapshotDeployment("mix_read_only_one_down", db.get());
}
BENCHMARK(BM_Mix_UnderFailures)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
