// Standing capacity benchmark: open-loop multi-tenant traffic against
// representative deployment shapes (shards, n, k, batch_max_ops).
//
//   * BM_TrafficKnee — sweeps the offered arrival rate with
//     KneeFinder::Sweep and reports the saturation knee (offered qps at
//     the last latency-flat point) plus the pre-knee p99.
//   * BM_TrafficSlo — re-runs single points at 50% / 90% of the located
//     knee: the steady-state SLO figures a capacity planner quotes.
//   * BM_TrafficQuota — offers 20% MORE than the knee, once unprotected
//     and once with per-tenant token-bucket quotas sized below capacity;
//     reports how far admission control pulls p99 back toward the
//     pre-knee value and how many requests it sheds to get there.
//
// Every figure is derived from the deterministic virtual-clock queue
// model, so counters are identical run to run; wall time only reflects
// the host. Extra flags on top of the usual benchmark ones:
//
//   --metrics_json=<path>  registry snapshots (ssdb_traffic_* /
//                          ssdb_admission_* series) per labelled run
//   --knee_json=<path>     the seed baseline document recorded in
//                          BENCH_traffic.json (knee + 50%/90% points)
//   --monitor_json=<path>  one monitored run on the flat shape: the full
//                          TrafficReport JSON with the monitor block
//                          (windows, billing, alerts, slow log) — the
//                          BENCH_monitor.json baseline diffed in CI

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "traffic/knee.h"
#include "traffic/traffic.h"

namespace ssdb {
namespace bench {
namespace {

/// One swept deployment shape.
struct Shape {
  const char* label;
  size_t shards;
  size_t providers_per_shard;
  size_t k;
  size_t batch_max_ops;
};

// m=1 is the paper's flat deployment; m=4 shards the row space; the
// third shape shrinks the wire batch to expose batching headroom.
constexpr Shape kShapes[] = {
    {"m1_n4_k2_b128", 1, 4, 2, 128},
    {"m4_n4_k2_b128", 4, 4, 2, 128},
    {"m1_n4_k2_b16", 1, 4, 2, 16},
};

DeploymentFactory FactoryFor(const Shape& shape) {
  return [shape]() -> Result<std::unique_ptr<OutsourcedDatabase>> {
    OutsourcedDbOptions options;
    options.topology = Topology(shape.shards, shape.providers_per_shard,
                                shape.k, Partitioner::kHash);
    options.client.batch_max_ops = shape.batch_max_ops;
    return OutsourcedDatabase::Create(options);
  };
}

/// The shared tenant mix: eight tenants, mostly reads with a write
/// trickle, join-free so the same specs run on every shape (sharded
/// joins need the partition key on both sides).
std::vector<TenantSpec> BenchTenants() {
  std::vector<TenantSpec> tenants;
  for (int i = 0; i < 8; ++i) {
    TenantSpec spec;
    spec.name = "tenant" + std::to_string(i);
    spec.rows = 64;
    spec.requests = 40;
    spec.arrival_qps = 16.0;  // 128 qps offered at scale 1.0
    spec.arrivals = ArrivalProcess::kPoisson;
    spec.mix.point_read = 0.60;
    spec.mix.range_scan = 0.15;
    spec.mix.aggregate = 0.10;
    spec.mix.update = 0.10;
    spec.mix.insert = 0.05;
    spec.mix.join = 0.0;
    tenants.push_back(std::move(spec));
  }
  return tenants;
}

TrafficOptions BenchOptions() {
  TrafficOptions options;
  options.seed = 0x7EA44C;
  options.service_workers = 4;
  return options;
}

/// Sweeps are deterministic and reused across benchmarks and the
/// baseline writer, so each shape runs its sweep once per process.
const KneeReport& SweepFor(const Shape& shape) {
  static std::map<std::string, KneeReport> cache;
  auto it = cache.find(shape.label);
  if (it != cache.end()) return it->second;

  KneeSweepOptions sweep;
  sweep.rate_scales = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  auto report =
      KneeFinder::Sweep(FactoryFor(shape), BenchTenants(), BenchOptions(), sweep);
  if (!report.ok()) {
    std::fprintf(stderr, "sweep failed for %s: %s\n", shape.label,
                 report.status().ToString().c_str());
    return cache.emplace(shape.label, KneeReport{}).first->second;
  }
  return cache.emplace(shape.label, std::move(report).value()).first->second;
}

void BM_TrafficKnee(benchmark::State& state) {
  const Shape& shape = kShapes[state.range(0)];
  state.SetLabel(shape.label);
  for (auto _ : state) {
    const KneeReport& report = SweepFor(shape);
    benchmark::DoNotOptimize(report.knee_qps);
  }
  const KneeReport& report = SweepFor(shape);
  state.counters["knee_found"] = benchmark::Counter(report.found ? 1 : 0);
  state.counters["knee_scale"] = benchmark::Counter(report.knee_scale);
  state.counters["knee_qps"] = benchmark::Counter(report.knee_qps);
  state.counters["pre_knee_p99_us"] =
      benchmark::Counter(static_cast<double>(report.pre_knee_p99_us));
}
BENCHMARK(BM_TrafficKnee)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

/// Runs one point at `fraction` of the located knee and snapshots the
/// deployment registry so --metrics_json captures the traffic series.
Result<TrafficReport> SloPoint(const Shape& shape, double fraction,
                               const std::string& snapshot_label) {
  const KneeReport& knee = SweepFor(shape);
  const double scale = knee.found ? knee.knee_scale * fraction : fraction;
  auto factory = FactoryFor(shape);
  std::vector<TenantSpec> tenants = BenchTenants();
  for (TenantSpec& spec : tenants) spec.arrival_qps *= scale;
  SSDB_ASSIGN_OR_RETURN(std::unique_ptr<OutsourcedDatabase> db, factory());
  TrafficHarness harness(db.get(), std::move(tenants), BenchOptions());
  SSDB_RETURN_IF_ERROR(harness.Setup());
  SSDB_ASSIGN_OR_RETURN(TrafficReport report, harness.Run());
  SnapshotDeployment(snapshot_label, db.get());
  return report;
}

void BM_TrafficSlo(benchmark::State& state) {
  const Shape& shape = kShapes[state.range(0)];
  const double fraction = state.range(1) / 100.0;
  const std::string label =
      std::string(shape.label) + "_slo" + std::to_string(state.range(1));
  state.SetLabel(label);
  Result<TrafficReport> report = Status::Internal("never ran");
  for (auto _ : state) {
    report = SloPoint(shape, fraction, label);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
  }
  state.counters["offered_qps"] = benchmark::Counter(report.value().offered_qps());
  state.counters["completed_qps"] =
      benchmark::Counter(report.value().completed_qps());
  state.counters["p50_us"] =
      benchmark::Counter(static_cast<double>(report.value().global.p50_us));
  state.counters["p99_us"] =
      benchmark::Counter(static_cast<double>(report.value().global.p99_us));
  state.counters["p999_us"] =
      benchmark::Counter(static_cast<double>(report.value().global.p999_us));
}
BENCHMARK(BM_TrafficSlo)
    ->ArgsProduct({{0, 1, 2}, {50, 90}})
    ->Unit(benchmark::kMillisecond);

void BM_TrafficQuota(benchmark::State& state) {
  const Shape& shape = kShapes[state.range(0)];
  const std::string label = std::string(shape.label) + "_quota";
  state.SetLabel(label);
  const KneeReport& knee = SweepFor(shape);
  if (!knee.found) {
    state.SkipWithError("no knee located");
    return;
  }
  // 20% past the knee; quotas cap each tenant at its fair share of ~70%
  // of knee capacity, so admission sheds the excess deterministically.
  std::vector<TenantSpec> tenants = BenchTenants();
  const double quota_per_tenant =
      0.7 * knee.knee_qps / static_cast<double>(tenants.size());
  for (TenantSpec& spec : tenants) spec.quota_qps = quota_per_tenant;

  Result<TrafficReport> unprotected = Status::Internal("never ran");
  Result<TrafficReport> protected_run = Status::Internal("never ran");
  for (auto _ : state) {
    unprotected = KneeFinder::RunPoint(FactoryFor(shape), BenchTenants(),
                                       knee.knee_scale * 1.2, BenchOptions());
    protected_run = KneeFinder::RunPoint(FactoryFor(shape), tenants,
                                         knee.knee_scale * 1.2, BenchOptions());
    if (!unprotected.ok() || !protected_run.ok()) {
      state.SkipWithError("quota point failed");
      return;
    }
  }
  const TrafficReport& raw = unprotected.value();
  const TrafficReport& gated = protected_run.value();
  state.counters["pre_knee_p99_us"] =
      benchmark::Counter(static_cast<double>(knee.pre_knee_p99_us));
  state.counters["unprotected_p99_us"] =
      benchmark::Counter(static_cast<double>(raw.global.p99_us));
  state.counters["quota_p99_us"] =
      benchmark::Counter(static_cast<double>(gated.global.p99_us));
  state.counters["quota_rejected"] =
      benchmark::Counter(static_cast<double>(gated.global.rejected_quota));
  state.counters["quota_completed"] =
      benchmark::Counter(static_cast<double>(gated.global.completed));
}
BENCHMARK(BM_TrafficQuota)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

/// Writes the BENCH_traffic.json seed baseline: per shape, the sweep and
/// fresh points at 50% / 90% of the knee.
bool WriteKneeBaseline(const std::string& path) {
  std::ofstream outf(path, std::ios::binary);
  if (!outf) {
    std::fprintf(stderr, "cannot write knee baseline to '%s'\n", path.c_str());
    return false;
  }
  outf << "{\n  \"comment\": \"Seed baseline for bench_traffic: saturation "
          "knee per deployment shape and steady-state p99 at 50%/90% of the "
          "knee. All figures derive from the deterministic virtual-clock "
          "queue model (seed 0x7EA44C), so they are exact expectations, not "
          "measurements.\",\n";
  bool first_shape = true;
  for (const Shape& shape : kShapes) {
    const KneeReport& knee = SweepFor(shape);
    if (!first_shape) outf << ",\n";
    first_shape = false;
    outf << "  \"" << shape.label << "\": {\n    \"knee\": ";
    // Indent the nested documents to keep the file readable.
    std::string knee_json = knee.ToJson();
    outf << knee_json.substr(0, knee_json.size() - 1);  // trim trailing \n
    for (int pct : {50, 90}) {
      auto point = SloPoint(shape, pct / 100.0,
                            std::string(shape.label) + "_baseline" +
                                std::to_string(pct));
      outf << ",\n    \"slo" << pct << "\": ";
      if (point.ok()) {
        outf << "{\"offered_qps\": " << point.value().offered_qps()
             << ", \"p50_us\": " << point.value().global.p50_us
             << ", \"p99_us\": " << point.value().global.p99_us
             << ", \"p999_us\": " << point.value().global.p999_us
             << ", \"completed\": " << point.value().global.completed << "}";
      } else {
        outf << "{\"error\": \"" << point.status().ToString() << "\"}";
      }
    }
    outf << "\n  }";
  }
  outf << "\n}\n";
  return true;
}

/// Removes --knee_json=<path> from argv (mirrors ConsumeMetricsJsonFlag).
std::string ConsumeKneeJsonFlag(int* argc, char** argv) {
  static constexpr char kPrefix[] = "--knee_json=";
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      path = argv[i] + sizeof(kPrefix) - 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Removes --monitor_json=<path> from argv.
std::string ConsumeMonitorJsonFlag(int* argc, char** argv) {
  static constexpr char kPrefix[] = "--monitor_json=";
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      path = argv[i] + sizeof(kPrefix) - 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Writes the BENCH_monitor.json baseline: one monitored run of the flat
/// shape at the bench mix, 1s windows, default alert rules against a
/// 500ms p99 SLO. Every figure is a pure integer function of the seed,
/// so CI diffs the file byte-for-byte.
bool WriteMonitorBaseline(const std::string& path) {
  const Shape& shape = kShapes[0];
  auto factory = FactoryFor(shape);
  auto db_r = factory();
  if (!db_r.ok()) {
    std::fprintf(stderr, "monitor baseline: %s\n",
                 db_r.status().ToString().c_str());
    return false;
  }
  TrafficOptions options = BenchOptions();
  options.monitor = true;
  options.monitor_options.window_us = 1000000;
  options.monitor_options.slow_k = 4;
  options.monitor_options.rules = DefaultAlertRules(/*p99_slo_us=*/500000);
  TrafficHarness harness(db_r.value().get(), BenchTenants(), options);
  Status setup = harness.Setup();
  if (!setup.ok()) {
    std::fprintf(stderr, "monitor baseline: %s\n", setup.ToString().c_str());
    return false;
  }
  auto report = harness.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "monitor baseline: %s\n",
                 report.status().ToString().c_str());
    return false;
  }
  std::ofstream outf(path, std::ios::binary);
  if (!outf) {
    std::fprintf(stderr, "cannot write monitor baseline to '%s'\n",
                 path.c_str());
    return false;
  }
  outf << report.value().ExportJson();
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace ssdb

int main(int argc, char** argv) {
  const std::string metrics_path =
      ::ssdb::bench::ConsumeMetricsJsonFlag(&argc, argv);
  const std::string knee_path =
      ::ssdb::bench::ConsumeKneeJsonFlag(&argc, argv);
  const std::string monitor_path =
      ::ssdb::bench::ConsumeMonitorJsonFlag(&argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!knee_path.empty() && !::ssdb::bench::WriteKneeBaseline(knee_path)) {
    return 1;
  }
  if (!monitor_path.empty() &&
      !::ssdb::bench::WriteMonitorBaseline(monitor_path)) {
    return 1;
  }
  if (!metrics_path.empty() &&
      !::ssdb::bench::WriteMetricsSnapshot(metrics_path)) {
    return 1;
  }
  return 0;
}
