// E7 — privacy-preserving intersection (§II.A's quoted costs).
//
// Reproduces the shape of the paper's anecdote: the encryption-based
// intersection protocol ([26]) versus the secret-sharing alternative
// ([31][32]) across corpus sizes, including the paper's 10x100-document
// configuration. The paper quotes ~2 h / ~3 Gbit (documents) and
// ~4 h / ~8 Gbit (1M medical records) for the encrypted protocol on 2009
// hardware; what must reproduce is encryption >> sharing in compute, with
// comparable or higher bytes.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "common/rng.h"
#include "workload/generators.h"
#include "workload/intersection.h"

namespace ssdb {
namespace {

struct Corpora {
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
};

const Corpora& SharedCorpora(size_t docs_a, size_t docs_b, size_t words) {
  static std::map<std::tuple<size_t, size_t, size_t>, Corpora> cache;
  auto key = std::make_tuple(docs_a, docs_b, words);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  DocumentGenerator ga(7, 200000), gb(8, 200000);
  Corpora c;
  c.a = ga.Corpus(docs_a, words);
  c.b = gb.Corpus(docs_b, words);
  return cache.emplace(key, std::move(c)).first->second;
}

void BM_Intersection_Encrypted(benchmark::State& state) {
  const auto& corpora = SharedCorpora(static_cast<size_t>(state.range(0)),
                                      static_cast<size_t>(state.range(1)),
                                      1000);
  Rng rng(9);
  IntersectionReport report;
  for (auto _ : state) {
    auto r = EncryptedIntersection(corpora.a, corpora.b, &rng);
    if (!r.ok()) {
      state.SkipWithError("protocol failed");
      return;
    }
    report = *r;
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes"] =
      benchmark::Counter(static_cast<double>(report.bytes_transferred));
  state.counters["modexp"] =
      benchmark::Counter(static_cast<double>(report.modexp_ops));
  state.counters["matches"] =
      benchmark::Counter(static_cast<double>(report.matches));
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(corpora.a.size() + corpora.b.size()));
}
BENCHMARK(BM_Intersection_Encrypted)
    ->Args({2, 20})
    ->Args({10, 100})  // the paper's configuration, 1000 words per doc
    ->Unit(benchmark::kMillisecond);

void BM_Intersection_SecretShared(benchmark::State& state) {
  const auto& corpora = SharedCorpora(static_cast<size_t>(state.range(0)),
                                      static_cast<size_t>(state.range(1)),
                                      1000);
  IntersectionReport report;
  for (auto _ : state) {
    auto r = SharedIntersection(corpora.a, corpora.b, /*n=*/4, /*k=*/2,
                                /*key_seed=*/11);
    if (!r.ok()) {
      state.SkipWithError("protocol failed");
      return;
    }
    report = *r;
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes"] =
      benchmark::Counter(static_cast<double>(report.bytes_transferred));
  state.counters["prf_ops"] =
      benchmark::Counter(static_cast<double>(report.prf_ops));
  state.counters["matches"] =
      benchmark::Counter(static_cast<double>(report.matches));
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(corpora.a.size() + corpora.b.size()));
}
BENCHMARK(BM_Intersection_SecretShared)
    ->Args({2, 20})
    ->Args({10, 100})
    ->Unit(benchmark::kMillisecond);

void BM_Intersection_MedicalScale(benchmark::State& state) {
  // The paper's second data point, scaled: intersecting patient-id sets
  // (the "1 million medical records" anecdote at 1/20 scale so the
  // encrypted arm completes in benchmark time; scale linearly).
  const size_t n_records = 50000;
  static std::vector<uint64_t> a, b;
  if (a.empty()) {
    Rng rng(12);
    for (size_t i = 0; i < n_records; ++i) {
      a.push_back(rng.Uniform(10'000'000));
      b.push_back(rng.Uniform(10'000'000));
    }
  }
  const bool encrypted = state.range(0) != 0;
  Rng rng(13);
  IntersectionReport report;
  for (auto _ : state) {
    auto r = encrypted ? EncryptedIntersection(a, b, &rng)
                       : SharedIntersection(a, b, 4, 2, 14);
    if (!r.ok()) {
      state.SkipWithError("protocol failed");
      return;
    }
    report = *r;
  }
  state.counters["bytes"] =
      benchmark::Counter(static_cast<double>(report.bytes_transferred));
  state.SetLabel(encrypted ? "encrypted" : "secret-shared");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_Intersection_MedicalScale)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
