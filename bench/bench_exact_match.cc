// E2 — exact-match query cost across the three designs (§V.A Exact Match).
//
// For each table size: an exact-match lookup answered by
//   (a) secret sharing  — k providers filter deterministic shares,
//   (b) encrypted DAS   — one bucket retrieved, client decrypts superset,
//   (c) trivial         — whole encrypted table shipped and filtered.
// Counters report application bytes moved per query so the communication
// shape is visible next to wall-clock time.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ssdb {
namespace {

using bench::SharedEmployeeDb;
using bench::SharedEncryptedDb;

void BM_ExactMatch_SecretSharing(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, rows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  EmployeeGenerator probe(1234, Distribution::kUniform);
  std::vector<std::string> names;
  for (size_t i = 0; i < 64; ++i) names.push_back(probe.Next().name);
  db->ResetAllStats();
  size_t q = 0;
  QueryTrace last_trace;
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Eq("name", Value::Str(names[q++ % 64]))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    last_trace = std::move(r->trace);
    benchmark::DoNotOptimize(r);
  }
  const ChannelStats net = db->network_stats();
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(net.total_bytes()) / state.iterations());
  bench::AddTraceCounters(state, last_trace);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactMatch_SecretSharing)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ExactMatch_FanOutThreads(benchmark::State& state) {
  // Thread sweep for the concurrent fan-out runtime: n=8 providers, the
  // same query stream, varying worker counts. wall_us/query should drop
  // as threads grow (the legs really run in parallel) while sim_us/query
  // — the virtual-clock network cost — must stay identical.
  const size_t threads = static_cast<size_t>(state.range(0));
  OutsourcedDatabase* db = SharedEmployeeDb(8, 2, 20000, threads);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  EmployeeGenerator probe(1234, Distribution::kUniform);
  std::vector<std::string> names;
  for (size_t i = 0; i < 64; ++i) names.push_back(probe.Next().name);
  db->ResetAllStats();
  size_t q = 0;
  bench::WallSimTimer timer(db);
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Eq("name", Value::Str(names[q++ % 64]))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["wall_us/query"] = benchmark::Counter(
      timer.WallMicros() / static_cast<double>(state.iterations()));
  state.counters["sim_us/query"] = benchmark::Counter(
      timer.SimMicros() / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactMatch_FanOutThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->UseRealTime();

void BM_ExactMatch_EncryptedBuckets(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  EncryptedDas* das =
      SharedEncryptedDb(rows, 256, EncIndexKind::kBucketRange);
  if (das == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  EmployeeGenerator probe(1234, Distribution::kUniform);
  std::vector<std::string> names;
  for (size_t i = 0; i < 64; ++i) names.push_back(probe.Next().name);
  das->ResetStats();
  size_t q = 0;
  for (auto _ : state) {
    auto r = das->ExecuteExact("name", Value::Str(names[q++ % 64]));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(das->network_stats().total_bytes()) /
      state.iterations());
  state.counters["falsepos/query"] = benchmark::Counter(
      static_cast<double>(das->stats().false_positives) / state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactMatch_EncryptedBuckets)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ExactMatch_TrivialTransfer(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  EncryptedDas* das =
      SharedEncryptedDb(rows, 256, EncIndexKind::kBucketRange);
  if (das == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  das->ResetStats();
  for (auto _ : state) {
    auto r = das->FetchAllAndFilter("salary", Value::Int(50000),
                                    Value::Int(50000));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(das->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactMatch_TrivialTransfer)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
