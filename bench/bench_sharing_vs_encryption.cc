// E1 — "encryption is computationally expensive; Shamir's algorithm is
// computationally efficient" (§I / §II.C).
//
// Per-value micro-costs of every client-side transform the two designs
// need: random/deterministic/order-preserving sharing and reconstruction
// versus AES-CTR encryption/decryption and order-preserving encryption.
// The paper's claim holds if the sharing column of this table is
// comparable to or cheaper than the encryption column.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/ope.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "sss/order_preserving.h"
#include "sss/shamir.h"

namespace ssdb {
namespace {

SharingContext MakeCtx(size_t n, size_t k) {
  Rng rng(7);
  return std::move(SharingContext::CreateRandom(n, k, &rng)).value();
}

// --- Secret sharing side ------------------------------------------------

void BM_ShamirSplit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const SharingContext ctx = MakeCtx(n, k);
  Rng rng(1);
  uint64_t v = 0;
  for (auto _ : state) {
    auto shares = ctx.Split(Fp61::FromU64(v++), &rng);
    benchmark::DoNotOptimize(shares);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShamirSplit)->Args({3, 2})->Args({5, 3})->Args({16, 8});

void BM_ShamirReconstruct(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const SharingContext ctx = MakeCtx(k + 1, k);
  Rng rng(2);
  const auto shares = ctx.Split(Fp61::FromU64(123456), &rng);
  std::vector<IndexedShare> subset;
  for (size_t i = 0; i < k; ++i) subset.push_back({i, shares[i]});
  for (auto _ : state) {
    auto v = ctx.Reconstruct(subset);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShamirReconstruct)->Arg(2)->Arg(3)->Arg(8);

void BM_DeterministicShare(benchmark::State& state) {
  const SharingContext ctx = MakeCtx(4, 2);
  const Prf prf(1, 2);
  uint64_t v = 0;
  for (auto _ : state) {
    auto shares = ctx.SplitDeterministic(prf, 9, Fp61::FromU64(v++));
    benchmark::DoNotOptimize(shares);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeterministicShare);

void BM_OrderPreservingShare(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const bool recursive = state.range(1) != 0;
  auto scheme = OrderPreservingScheme::Create(
      Prf(3, 4), OpDomain{0, 1'000'000'000}, degree, {7, 33, 101, 250},
      recursive ? OpSlotMode::kRecursive : OpSlotMode::kPaperSlots);
  int64_t v = 0;
  for (auto _ : state) {
    auto shares = scheme->ShareAll(v);
    v = (v + 999'983) % 1'000'000'000;
    benchmark::DoNotOptimize(shares);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(recursive ? "recursive" : "paper-slots");
}
BENCHMARK(BM_OrderPreservingShare)
    ->Args({1, 0})
    ->Args({3, 0})
    ->Args({3, 1});

void BM_OrderPreservingReconstruct(benchmark::State& state) {
  auto scheme = OrderPreservingScheme::Create(
      Prf(3, 4), OpDomain{0, 1'000'000'000}, 3, {7, 33, 101, 250});
  auto shares = scheme->ShareAll(123'456'789);
  std::vector<IndexedOpShare> subset;
  for (size_t i = 0; i < 4; ++i) subset.push_back({i, shares.value()[i]});
  for (auto _ : state) {
    auto v = scheme->Reconstruct(subset);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OrderPreservingReconstruct);

// --- Encryption side ------------------------------------------------------

void BM_AesEncryptBlock(benchmark::State& state) {
  Aes128::Key key = {};
  Aes128 aes(key);
  uint8_t block[16] = {1, 2, 3};
  for (auto _ : state) {
    aes.EncryptBlock(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_AesCtrRow(benchmark::State& state) {
  // A typical 64-byte tuple, encrypt + decrypt round trip (the client pays
  // both on every query in the encrypted-DAS model).
  Aes128::Key key = {};
  AesCtr ctr(key, 42);
  uint8_t row[64];
  for (size_t i = 0; i < sizeof(row); ++i) row[i] = static_cast<uint8_t>(i);
  for (auto _ : state) {
    ctr.Transform(row, sizeof(row));
    ctr.Transform(row, sizeof(row));
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_AesCtrRow);

void BM_OpeEncrypt(benchmark::State& state) {
  OrderPreservingEncryption ope(Prf(5, 6), 40);
  uint64_t v = 0;
  for (auto _ : state) {
    auto c = ope.Encrypt(v);
    v = (v + 997) & ((1ULL << 40) - 1);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpeEncrypt);

void BM_Sha256Row(benchmark::State& state) {
  uint8_t row[64] = {9};
  for (auto _ : state) {
    auto d = Sha256::Hash(Slice(row, sizeof(row)));
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256Row);

void BM_ModExp(benchmark::State& state) {
  // The commutative-encryption primitive of the §II.A intersection
  // protocol: one modular exponentiation per element per pass.
  Rng rng(8);
  const uint64_t e = rng.Next() | 1;
  Fp61 x = Fp61::FromU64(rng.Next());
  for (auto _ : state) {
    x = x.Pow(e);
    if (x.is_zero()) x = Fp61::FromU64(3);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModExp);

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
