// E12 — scalability with the number of providers (§III: the approach
// "exploits the paradigm of Internet-scale computing by taking advantage
// of the large number of available resources").
//
// Sweeps n (providers) and k (threshold): outsourcing cost grows linearly
// in n (n share rows per tuple), read cost grows with k only, and the
// reconstruction kernel grows with k. The crossing of those curves is the
// design trade the paper sells.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

OutsourcedDatabase* SharedDbNK(size_t n, size_t k) {
  static std::map<std::pair<size_t, size_t>,
                  std::unique_ptr<OutsourcedDatabase>>
      cache;
  auto key = std::make_pair(n, k);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/n, /*k=*/k);
  auto db = OutsourcedDatabase::Create(options);
  if (!db.ok()) return nullptr;
  if (!db.value()->CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) {
    return nullptr;
  }
  EmployeeGenerator gen(9, Distribution::kUniform);
  if (!db.value()->Insert("Employees", gen.Rows(2000)).ok()) return nullptr;
  auto* raw = db.value().get();
  cache.emplace(key, std::move(db).value());
  return raw;
}

void BM_Scal_Outsource(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/n, /*k=*/k);
  auto db = OutsourcedDatabase::Create(options);
  if (!db.ok() ||
      !db.value()->CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  EmployeeGenerator gen(10, Distribution::kUniform);
  db.value()->ResetAllStats();
  uint64_t rows = 0;
  for (auto _ : state) {
    if (!db.value()->Insert("Employees", gen.Rows(200)).ok()) {
      state.SkipWithError("insert failed");
      return;
    }
    rows += 200;
  }
  state.counters["bytes/row"] = benchmark::Counter(
      static_cast<double>(db.value()->network_stats().total_bytes()) /
      static_cast<double>(rows));
  state.SetItemsProcessed(static_cast<int64_t>(rows));
}
BENCHMARK(BM_Scal_Outsource)
    ->Args({2, 2})
    ->Args({4, 2})
    ->Args({8, 2})
    ->Args({16, 2})
    ->Args({32, 2});

void BM_Scal_RangeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  OutsourcedDatabase* db = SharedDbNK(n, k);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(80000),
                                            Value::Int(90000))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Scal_RangeQuery)
    ->Args({2, 2})
    ->Args({8, 2})
    ->Args({32, 2})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Args({32, 16});

/// Deployments for the shard sweep: m shard groups of 4 providers (k=2),
/// hash-partitioned, holding the same 2000-row table. Tracked so
/// --metrics_json snapshots include the ssdb_shard_* series.
OutsourcedDatabase* SharedShardedDb(size_t shards) {
  static std::map<size_t, std::unique_ptr<OutsourcedDatabase>> cache;
  auto it = cache.find(shards);
  if (it != cache.end()) return it->second.get();
  OutsourcedDbOptions options;
  options.topology = Topology(shards, /*n_per=*/4, /*k=*/2);
  auto db = OutsourcedDatabase::Create(options);
  if (!db.ok()) return nullptr;
  if (!db.value()->CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) {
    return nullptr;
  }
  EmployeeGenerator gen(9, Distribution::kUniform);
  if (!db.value()->BulkLoad("Employees", gen.Rows(2000)).ok()) return nullptr;
  auto* raw = db.value().get();
  cache.emplace(shards, std::move(db).value());
  bench::TrackedDeployments().emplace_back(
      "shards" + std::to_string(shards) + "_nper4_k2", raw);
  return raw;
}

// Scan-heavy workload across the shard sweep: every group scans its own
// 1/m of the row space in the same parallel round, so the response
// transfer on the slowest leg — and with it sim_us/query — shrinks as the
// shard count grows. This is the tentpole's horizontal-scaling claim.
void BM_Scal_ShardedScan(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  OutsourcedDatabase* db = SharedShardedDb(shards);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  const uint64_t sim_start = db->simulated_time_us();
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(0),
                                            Value::Int(200000))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["sim_us/query"] = benchmark::Counter(
      static_cast<double>(db->simulated_time_us() - sim_start) /
      state.iterations());
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Scal_ShardedScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Point lookups route to the key's single owning group: the wire bytes
// per query stay flat as the deployment grows to m groups.
void BM_Scal_ShardedPointLookup(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  OutsourcedDatabase* db = SharedShardedDb(shards);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  const uint64_t sim_start = db->simulated_time_us();
  for (auto _ : state) {
    auto r = db->Execute(
        Query::Select("Employees").Where(Eq("name", Value::Str("BOB"))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["sim_us/query"] = benchmark::Counter(
      static_cast<double>(db->simulated_time_us() - sim_start) /
      state.iterations());
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Scal_ShardedPointLookup)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Scal_SumQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  OutsourcedDatabase* db = SharedDbNK(n, k);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Aggregate(AggregateOp::kSum, "salary"));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Scal_SumQuery)->Args({4, 2})->Args({16, 8})->Args({32, 16});

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
