// F1 — Figure 1 reproduction.
//
// Prints the paper's worked example (the exact share table of Figure 1)
// and then benchmarks the two kernels it illustrates: splitting a salary
// into 3 shares with a degree-1 polynomial, and reconstructing from any 2.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "field/poly.h"
#include "sss/shamir.h"

namespace ssdb {
namespace {

SharingContext Fig1Context() {
  auto ctx = SharingContext::Create(
      3, 2, {Fp61::FromU64(2), Fp61::FromU64(4), Fp61::FromU64(1)});
  return std::move(ctx).value();
}

void PrintFigure1() {
  std::printf("---- Figure 1 (paper page 1712) ----\n");
  std::printf("X = {x1=2, x2=4, x3=1}; salaries and their polynomials:\n");
  const uint64_t salaries[5] = {10, 20, 40, 60, 80};
  const uint64_t slopes[5] = {100, 5, 1, 2, 4};
  const char* das[3] = {"DAS1", "DAS2", "DAS3"};
  const uint64_t xs[3] = {2, 4, 1};
  for (int p = 0; p < 3; ++p) {
    std::printf("  %s stores { ", das[p]);
    for (int i = 0; i < 5; ++i) {
      FpPoly q({Fp61::FromU64(salaries[i]), Fp61::FromU64(slopes[i])});
      std::printf("%llu ", static_cast<unsigned long long>(
                               q.Eval(Fp61::FromU64(xs[p])).value()));
    }
    std::printf("}\n");
  }
  std::printf("(paper: DAS1 {210 30 42 64 88}, DAS2 {410 40 44 68 96}, "
              "DAS3 {110 25 41 62 84})\n\n");
}

void BM_Fig1Split(benchmark::State& state) {
  const SharingContext ctx = Fig1Context();
  Rng rng(1);
  for (auto _ : state) {
    auto shares = ctx.Split(Fp61::FromU64(40), &rng);
    benchmark::DoNotOptimize(shares);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig1Split);

void BM_Fig1Reconstruct(benchmark::State& state) {
  const SharingContext ctx = Fig1Context();
  Rng rng(2);
  const auto shares = ctx.Split(Fp61::FromU64(40), &rng);
  std::vector<IndexedShare> subset = {{0, shares[0]}, {2, shares[2]}};
  for (auto _ : state) {
    auto v = ctx.Reconstruct(subset);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig1Reconstruct);

}  // namespace
}  // namespace ssdb

int main(int argc, char** argv) {
  const std::string metrics_path =
      ssdb::bench::ConsumeMetricsJsonFlag(&argc, argv);
  ssdb::PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_path.empty() &&
      !ssdb::bench::WriteMetricsSnapshot(metrics_path)) {
    return 1;
  }
  return 0;
}
