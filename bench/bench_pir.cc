// E6 — private information retrieval (§II.B).
//
// Sweeps database size for trivial / 2-server XOR / k-server polynomial
// PIR, reporting bytes moved and wall-clock time. Two claims to observe:
//   * k-server replication gives communication sublinear in N (the
//     O(N^{1/(2k-1)}) family of results the paper cites), and
//   * per Sion & Carbunar, PIR servers still touch the whole database, so
//     on *time* the trivial protocol wins whenever bandwidth is cheap —
//     the "server_words" counter makes the Omega(N) server cost visible.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "common/rng.h"
#include "pir/pir.h"

namespace ssdb {
namespace {

const std::vector<uint64_t>& SharedDb(size_t n) {
  static std::map<size_t, std::vector<uint64_t>> cache;
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  Rng rng(42);
  std::vector<uint64_t> db(n);
  for (auto& x : db) x = rng.Uniform(Fp61::kP);
  return cache.emplace(n, std::move(db)).first->second;
}

void Report(benchmark::State& state, const PirStats& stats) {
  state.counters["bytes_up"] =
      benchmark::Counter(static_cast<double>(stats.bytes_up));
  state.counters["bytes_down"] =
      benchmark::Counter(static_cast<double>(stats.bytes_down));
  state.counters["server_words"] =
      benchmark::Counter(static_cast<double>(stats.server_word_ops));
  state.SetItemsProcessed(state.iterations());
}

void BM_Pir_Trivial(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  TrivialPir pir(SharedDb(n));
  PirStats stats;
  for (auto _ : state) {
    stats = PirStats();
    auto r = pir.Fetch(n / 2, &stats);
    benchmark::DoNotOptimize(r);
  }
  Report(state, stats);
}
BENCHMARK(BM_Pir_Trivial)->Range(1 << 10, 1 << 20)->RangeMultiplier(16);

void BM_Pir_TwoServerXor(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  TwoServerXorPir pir(SharedDb(n));
  Rng rng(1);
  PirStats stats;
  for (auto _ : state) {
    stats = PirStats();
    auto r = pir.Fetch(n / 2, &rng, &stats);
    benchmark::DoNotOptimize(r);
  }
  Report(state, stats);
}
BENCHMARK(BM_Pir_TwoServerXor)->Range(1 << 10, 1 << 20)->RangeMultiplier(16);

void BM_Pir_Poly(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t servers = static_cast<size_t>(state.range(1));
  auto pir = PolyPir::Create(SharedDb(n), servers);
  if (!pir.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  Rng rng(2);
  PirStats stats;
  for (auto _ : state) {
    stats = PirStats();
    auto r = pir->Fetch(n / 2, &rng, &stats);
    benchmark::DoNotOptimize(r);
  }
  Report(state, stats);
}
BENCHMARK(BM_Pir_Poly)
    ->Args({1 << 10, 3})
    ->Args({1 << 14, 3})
    ->Args({1 << 18, 3})
    ->Args({1 << 10, 4})
    ->Args({1 << 14, 4})
    ->Args({1 << 18, 4});

void BM_Pir_WoodruffYekhanin(benchmark::State& state) {
  // The O(N^{1/(2k-1)}) refinement the paper cites (§II.B): k servers,
  // derivative sharing, Hermite interpolation.
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t servers = static_cast<size_t>(state.range(1));
  auto pir = WoodruffYekhaninPir::Create(SharedDb(n), servers);
  if (!pir.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  Rng rng(3);
  PirStats stats;
  for (auto _ : state) {
    stats = PirStats();
    auto r = pir->Fetch(n / 2, &rng, &stats);
    benchmark::DoNotOptimize(r);
  }
  Report(state, stats);
}
BENCHMARK(BM_Pir_WoodruffYekhanin)
    ->Args({1 << 10, 2})
    ->Args({1 << 14, 2})
    ->Args({1 << 18, 2})
    ->Args({1 << 14, 3})
    ->Args({1 << 18, 3});

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
