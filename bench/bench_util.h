// Shared helpers for the experiment benchmarks: lazily-built, cached
// deployments so each (configuration, size) pair is loaded once per
// binary run.

#ifndef SSDB_BENCH_BENCH_UTIL_H_
#define SSDB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/encrypted_das.h"
#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {
namespace bench {

/// Wall-clock + virtual-clock timing for one benchmark section, so
/// fan-out sweeps can report real parallel speedup (wall_us) next to the
/// simulated network cost (sim_us), which must stay thread-independent.
class WallSimTimer {
 public:
  explicit WallSimTimer(OutsourcedDatabase* db)
      : db_(db), sim_start_(db->simulated_time_us()) {}
  double WallMicros() const { return wall_.ElapsedMicros(); }
  double SimMicros() const {
    return static_cast<double>(db_->simulated_time_us() - sim_start_);
  }

 private:
  OutsourcedDatabase* db_;
  StopWatch wall_;
  uint64_t sim_start_;
};

/// Publishes one query's QueryTrace as per-query counters: exact request/
/// response bytes, virtual-clock charge, provider legs and plan nodes run.
/// Traces are deterministic per query shape, so the last iteration's trace
/// stands for all of them.
inline void AddTraceCounters(benchmark::State& state,
                             const QueryTrace& trace) {
  state.counters["trace_up_B"] =
      benchmark::Counter(static_cast<double>(trace.total_bytes_sent()));
  state.counters["trace_down_B"] =
      benchmark::Counter(static_cast<double>(trace.total_bytes_received()));
  state.counters["trace_clock_us"] =
      benchmark::Counter(static_cast<double>(trace.total_clock_us()));
  state.counters["trace_legs"] =
      benchmark::Counter(static_cast<double>(trace.total_provider_legs()));
  state.counters["trace_nodes"] =
      benchmark::Counter(static_cast<double>(trace.nodes.size()));
  // Resilience counters; published only when the trace saw resilience
  // activity so classic benchmark output stays unchanged.
  if (trace.total_attempts() != 0 || trace.total_hedged() != 0 ||
      trace.total_deadline_exceeded() != 0 ||
      trace.total_breaker_skips() != 0) {
    state.counters["trace_retries"] =
        benchmark::Counter(static_cast<double>(trace.total_attempts()));
    state.counters["trace_hedged"] =
        benchmark::Counter(static_cast<double>(trace.total_hedged()));
    state.counters["trace_deadline_exceeded"] = benchmark::Counter(
        static_cast<double>(trace.total_deadline_exceeded()));
    state.counters["trace_breaker_skips"] =
        benchmark::Counter(static_cast<double>(trace.total_breaker_skips()));
  }
}

/// Deployments built by SharedEmployeeDb this run, in creation order, so
/// --metrics_json can snapshot every registry after the benchmarks ran.
inline std::vector<std::pair<std::string, OutsourcedDatabase*>>&
TrackedDeployments() {
  static std::vector<std::pair<std::string, OutsourcedDatabase*>> list;
  return list;
}

/// An OutsourcedDatabase pre-loaded with `rows` uniform employees,
/// cached per (n, k, rows, fanout_threads).
inline OutsourcedDatabase* SharedEmployeeDb(size_t n, size_t k, size_t rows,
                                            size_t fanout_threads = 0) {
  static std::map<std::tuple<size_t, size_t, size_t, size_t>,
                  std::unique_ptr<OutsourcedDatabase>>
      cache;
  auto key = std::make_tuple(n, k, rows, fanout_threads);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();

  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/n, /*k=*/k);
  options.fanout_threads = fanout_threads;
  auto db = OutsourcedDatabase::Create(options);
  if (!db.ok()) return nullptr;
  if (!db.value()->CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) {
    return nullptr;
  }
  EmployeeGenerator gen(1234, Distribution::kUniform);
  if (!db.value()->Insert("Employees", gen.Rows(rows)).ok()) return nullptr;
  auto* raw = db.value().get();
  cache.emplace(key, std::move(db).value());
  TrackedDeployments().emplace_back(
      "n" + std::to_string(n) + "_k" + std::to_string(k) + "_rows" +
          std::to_string(rows) + "_threads" + std::to_string(fanout_threads),
      raw);
  return raw;
}

/// An EncryptedDas pre-loaded with the same employee workload, cached per
/// (rows, buckets, index kind).
inline EncryptedDas* SharedEncryptedDb(size_t rows, size_t buckets,
                                       EncIndexKind kind) {
  static std::map<std::tuple<size_t, size_t, int>,
                  std::unique_ptr<EncryptedDas>>
      cache;
  auto key = std::make_tuple(rows, buckets, static_cast<int>(kind));
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();

  EncryptedDasOptions options;
  options.buckets = buckets;
  options.range_index = kind;
  auto das =
      EncryptedDas::Create(EmployeeGenerator::EmployeesSchema(), options);
  if (!das.ok()) return nullptr;
  EmployeeGenerator gen(1234, Distribution::kUniform);
  if (!das.value()->Insert(gen.Rows(rows)).ok()) return nullptr;
  auto* raw = das.value().get();
  cache.emplace(key, std::move(das).value());
  return raw;
}

/// Removes --metrics_json=<path> from argv (benchmark's own flag parser
/// rejects flags it does not know) and returns the path, or "" when the
/// flag was not given.
inline std::string ConsumeMetricsJsonFlag(int* argc, char** argv) {
  static constexpr char kPrefix[] = "--metrics_json=";
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      path = argv[i] + sizeof(kPrefix) - 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

/// Registry snapshots captured eagerly (benches that build a deployment
/// per benchmark and tear it down before main() returns).
inline std::vector<std::pair<std::string, std::string>>&
SnapshottedDeployments() {
  static std::vector<std::pair<std::string, std::string>> list;
  return list;
}

/// Captures `db`'s registry as JSON right now, under `label`. Use from
/// benchmarks whose deployment does not outlive the benchmark function.
/// Re-snapshotting a label replaces the earlier capture (benchmark
/// reruns each function while calibrating iteration counts; the last
/// run is the measured one).
inline void SnapshotDeployment(const std::string& label,
                               OutsourcedDatabase* db) {
  if (db == nullptr) return;
  auto& list = SnapshottedDeployments();
  for (auto& entry : list) {
    if (entry.first == label) {
      entry.second = db->metrics().ExportJson();
      return;
    }
  }
  list.emplace_back(label, db->metrics().ExportJson());
}

/// Writes one JSON document holding the registry snapshot of every
/// deployment the binary built, keyed by its cache label. Series names,
/// labels and ordering are deterministic; counter magnitudes scale with
/// the iteration counts benchmark chose for this run.
inline bool WriteMetricsSnapshot(const std::string& path) {
  std::ofstream outf(path, std::ios::binary);
  if (!outf) {
    std::fprintf(stderr, "cannot write metrics snapshot to '%s'\n",
                 path.c_str());
    return false;
  }
  outf << "{\"deployments\": [";
  bool first = true;
  for (const auto& entry : SnapshottedDeployments()) {
    if (!first) outf << ", ";
    first = false;
    outf << "{\"label\": \"" << entry.first
         << "\", \"metrics\": " << entry.second << "}";
  }
  for (const auto& entry : TrackedDeployments()) {
    if (!first) outf << ", ";
    first = false;
    outf << "{\"label\": \"" << entry.first
         << "\", \"metrics\": " << entry.second->metrics().ExportJson() << "}";
  }
  outf << "]}\n";
  return true;
}

}  // namespace bench
}  // namespace ssdb

/// Drop-in replacement for BENCHMARK_MAIN() that also understands
/// --metrics_json=<path>: after the benchmarks run, the metrics registry
/// of every SharedEmployeeDb deployment is dumped as one JSON document.
#define SSDB_BENCH_MAIN()                                                    \
  int main(int argc, char** argv) {                                          \
    const std::string ssdb_metrics_path =                                    \
        ::ssdb::bench::ConsumeMetricsJsonFlag(&argc, argv);                  \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    ::benchmark::RunSpecifiedBenchmarks();                                   \
    ::benchmark::Shutdown();                                                 \
    if (!ssdb_metrics_path.empty() &&                                        \
        !::ssdb::bench::WriteMetricsSnapshot(ssdb_metrics_path)) {           \
      return 1;                                                              \
    }                                                                        \
    return 0;                                                                \
  }                                                                          \
  int main(int, char**)

#endif  // SSDB_BENCH_BENCH_UTIL_H_
