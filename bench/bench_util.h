// Shared helpers for the experiment benchmarks: lazily-built, cached
// deployments so each (configuration, size) pair is loaded once per
// binary run.

#ifndef SSDB_BENCH_BENCH_UTIL_H_
#define SSDB_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "baseline/encrypted_das.h"
#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {
namespace bench {

/// Wall-clock + virtual-clock timing for one benchmark section, so
/// fan-out sweeps can report real parallel speedup (wall_us) next to the
/// simulated network cost (sim_us), which must stay thread-independent.
class WallSimTimer {
 public:
  explicit WallSimTimer(OutsourcedDatabase* db)
      : db_(db), sim_start_(db->simulated_time_us()) {}
  double WallMicros() const { return wall_.ElapsedMicros(); }
  double SimMicros() const {
    return static_cast<double>(db_->simulated_time_us() - sim_start_);
  }

 private:
  OutsourcedDatabase* db_;
  StopWatch wall_;
  uint64_t sim_start_;
};

/// Publishes one query's QueryTrace as per-query counters: exact request/
/// response bytes, virtual-clock charge, provider legs and plan nodes run.
/// Traces are deterministic per query shape, so the last iteration's trace
/// stands for all of them.
inline void AddTraceCounters(benchmark::State& state,
                             const QueryTrace& trace) {
  state.counters["trace_up_B"] =
      benchmark::Counter(static_cast<double>(trace.total_bytes_sent()));
  state.counters["trace_down_B"] =
      benchmark::Counter(static_cast<double>(trace.total_bytes_received()));
  state.counters["trace_clock_us"] =
      benchmark::Counter(static_cast<double>(trace.total_clock_us()));
  state.counters["trace_legs"] =
      benchmark::Counter(static_cast<double>(trace.total_provider_legs()));
  state.counters["trace_nodes"] =
      benchmark::Counter(static_cast<double>(trace.nodes.size()));
  // Resilience counters; published only when the trace saw resilience
  // activity so classic benchmark output stays unchanged.
  if (trace.total_attempts() != 0 || trace.total_hedged() != 0 ||
      trace.total_deadline_exceeded() != 0 ||
      trace.total_breaker_skips() != 0) {
    state.counters["trace_retries"] =
        benchmark::Counter(static_cast<double>(trace.total_attempts()));
    state.counters["trace_hedged"] =
        benchmark::Counter(static_cast<double>(trace.total_hedged()));
    state.counters["trace_deadline_exceeded"] = benchmark::Counter(
        static_cast<double>(trace.total_deadline_exceeded()));
    state.counters["trace_breaker_skips"] =
        benchmark::Counter(static_cast<double>(trace.total_breaker_skips()));
  }
}

/// An OutsourcedDatabase pre-loaded with `rows` uniform employees,
/// cached per (n, k, rows, fanout_threads).
inline OutsourcedDatabase* SharedEmployeeDb(size_t n, size_t k, size_t rows,
                                            size_t fanout_threads = 0) {
  static std::map<std::tuple<size_t, size_t, size_t, size_t>,
                  std::unique_ptr<OutsourcedDatabase>>
      cache;
  auto key = std::make_tuple(n, k, rows, fanout_threads);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();

  OutsourcedDbOptions options;
  options.n = n;
  options.client.k = k;
  options.fanout_threads = fanout_threads;
  auto db = OutsourcedDatabase::Create(options);
  if (!db.ok()) return nullptr;
  if (!db.value()->CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) {
    return nullptr;
  }
  EmployeeGenerator gen(1234, Distribution::kUniform);
  if (!db.value()->Insert("Employees", gen.Rows(rows)).ok()) return nullptr;
  auto* raw = db.value().get();
  cache.emplace(key, std::move(db).value());
  return raw;
}

/// An EncryptedDas pre-loaded with the same employee workload, cached per
/// (rows, buckets, index kind).
inline EncryptedDas* SharedEncryptedDb(size_t rows, size_t buckets,
                                       EncIndexKind kind) {
  static std::map<std::tuple<size_t, size_t, int>,
                  std::unique_ptr<EncryptedDas>>
      cache;
  auto key = std::make_tuple(rows, buckets, static_cast<int>(kind));
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();

  EncryptedDasOptions options;
  options.buckets = buckets;
  options.range_index = kind;
  auto das =
      EncryptedDas::Create(EmployeeGenerator::EmployeesSchema(), options);
  if (!das.ok()) return nullptr;
  EmployeeGenerator gen(1234, Distribution::kUniform);
  if (!das.value()->Insert(gen.Rows(rows)).ok()) return nullptr;
  auto* raw = das.value().get();
  cache.emplace(key, std::move(das).value());
  return raw;
}

}  // namespace bench
}  // namespace ssdb

#endif  // SSDB_BENCH_BENCH_UTIL_H_
