// E9 — database updates (§V.C).
//
// Eager updates pay read-reconstruct-reshare per statement against all n
// providers; the lazy client log batches the reshare traffic. Counters
// report bytes and network round trips per updated row for both modes and
// several batch sizes.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

std::unique_ptr<OutsourcedDatabase> FreshDb(bool lazy, size_t rows,
                                            size_t batch_max_ops = 128) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
  options.client.lazy_updates = lazy;
  options.client.lazy_flush_threshold = 1'000'000;  // manual flush
  options.client.batch_max_ops = batch_max_ops;
  auto db = OutsourcedDatabase::Create(options);
  if (!db.ok()) return nullptr;
  if (!db.value()->CreateTable(EmployeeGenerator::EmployeesSchema()).ok()) {
    return nullptr;
  }
  EmployeeGenerator gen(77, Distribution::kSequential);
  if (!db.value()->Insert("Employees", gen.Rows(rows)).ok()) return nullptr;
  if (!db.value()->Flush().ok()) return nullptr;
  return std::move(db).value();
}

void RunUpdateBatch(benchmark::State& state, bool lazy) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t rows = 2000;
  auto db = FreshDb(lazy, rows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  uint64_t updated_total = 0;
  int64_t target = 0;
  for (auto _ : state) {
    // `batch` single-row updates (sequential salaries -> each salary value
    // hits exactly one or two rows), then one flush in lazy mode.
    for (size_t i = 0; i < batch; ++i) {
      target = (target + 1) % static_cast<int64_t>(rows);
      auto r = db->Update(
          "Employees",
          {Between("salary", Value::Int(target), Value::Int(target))},
          "dept", Value::Int(7));
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      updated_total += *r;
    }
    if (lazy) {
      if (!db->Flush().ok()) {
        state.SkipWithError("flush failed");
        return;
      }
    }
  }
  const ChannelStats net = db->network_stats();
  state.counters["bytes/updated_row"] =
      benchmark::Counter(updated_total == 0
                             ? 0.0
                             : static_cast<double>(net.total_bytes()) /
                                   static_cast<double>(updated_total));
  state.counters["calls/updated_row"] =
      benchmark::Counter(updated_total == 0
                             ? 0.0
                             : static_cast<double>(net.calls) /
                                   static_cast<double>(updated_total));
  state.SetLabel(lazy ? "lazy" : "eager");
  state.SetItemsProcessed(static_cast<int64_t>(updated_total));
}

void BM_Update_Eager(benchmark::State& state) { RunUpdateBatch(state, false); }
BENCHMARK(BM_Update_Eager)->Arg(1)->Arg(10)->Arg(50);

void BM_Update_LazyBatched(benchmark::State& state) {
  RunUpdateBatch(state, true);
}
BENCHMARK(BM_Update_LazyBatched)->Arg(1)->Arg(10)->Arg(50);

void BM_Update_DeleteEager(benchmark::State& state) {
  // Deletes: resolve ids (k reads) then delete at all n.
  const size_t rows = 5000;
  auto db = FreshDb(false, rows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  int64_t lo = 0;
  uint64_t deleted = 0;
  for (auto _ : state) {
    auto r = db->Delete("Employees", {Between("salary", Value::Int(lo),
                                              Value::Int(lo + 4))});
    lo += 5;
    if (!r.ok()) {
      state.SkipWithError("delete failed");
      return;
    }
    deleted += *r;
    if (lo >= static_cast<int64_t>(rows)) break;  // table drained
  }
  state.counters["bytes/deleted_row"] =
      benchmark::Counter(deleted == 0
                             ? 0.0
                             : static_cast<double>(
                                   db->network_stats().total_bytes()) /
                                   static_cast<double>(deleted));
  state.SetItemsProcessed(static_cast<int64_t>(deleted));
}
BENCHMARK(BM_Update_DeleteEager)->Iterations(100);

void BM_Update_BulkLoad(benchmark::State& state) {
  // Initial outsourcing through the batch envelope: arg is
  // batch_max_ops, where 1 reproduces the per-op wire traffic (one
  // round trip per row per provider) and 128 coalesces a whole chunk
  // into one envelope per provider.
  const size_t batch_max = static_cast<size_t>(state.range(0));
  auto db = FreshDb(false, 0, batch_max);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  EmployeeGenerator gen(77, Distribution::kSequential);
  bench::WallSimTimer timer(db.get());
  uint64_t rows_loaded = 0;
  for (auto _ : state) {
    if (!db->BulkLoad("Employees", gen.Rows(100)).ok()) {
      state.SkipWithError("bulk load failed");
      return;
    }
    rows_loaded += 100;
  }
  const ChannelStats net = db->network_stats();
  state.counters["sim_us/row"] = benchmark::Counter(
      timer.SimMicros() / static_cast<double>(rows_loaded));
  state.counters["calls/row"] = benchmark::Counter(
      static_cast<double>(net.calls) / static_cast<double>(rows_loaded));
  state.counters["bytes/row"] = benchmark::Counter(
      static_cast<double>(net.total_bytes()) /
      static_cast<double>(rows_loaded));
  state.SetLabel("batch_max_ops=" + std::to_string(batch_max));
  state.SetItemsProcessed(static_cast<int64_t>(rows_loaded));
  bench::SnapshotDeployment(
      "updates_bulkload_batch" + std::to_string(batch_max), db.get());
}
BENCHMARK(BM_Update_BulkLoad)->Arg(1)->Arg(128)->Iterations(20);

void BM_Update_FlushCoalescing(benchmark::State& state) {
  // The lazy write log's flush round over a multi-table log. The classic
  // flush already groups same-kind ops per table into one message, so
  // its cost is one round trip per (table, op kind); the envelope fuses
  // the whole log into ONE round trip per provider.
  const size_t batch_max = static_cast<size_t>(state.range(0));
  const size_t tables = 8;
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
  options.client.lazy_updates = true;
  options.client.lazy_flush_threshold = 1'000'000;  // manual flush
  options.client.batch_max_ops = batch_max;
  auto created = OutsourcedDatabase::Create(options);
  if (!created.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  auto db = std::move(created).value();
  for (size_t t = 0; t < tables; ++t) {
    TableSchema schema;
    schema.table_name = "T" + std::to_string(t);
    schema.columns = {IntColumn("v", 0, 1'000'000)};
    if (!db->CreateTable(schema).ok()) {
      state.SkipWithError("setup failed");
      return;
    }
  }
  db->ResetAllStats();
  bench::WallSimTimer timer(db.get());
  uint64_t inserted_total = 0;
  int64_t v = 0;
  for (auto _ : state) {
    for (size_t t = 0; t < tables; ++t) {
      if (!db->Insert("T" + std::to_string(t),
                      {{Value::Int(v)}, {Value::Int(v + 1)}})
               .ok()) {
        state.SkipWithError("insert failed");
        return;
      }
      v = (v + 2) % 1'000'000;
      inserted_total += 2;
    }
    if (!db->Flush().ok()) {
      state.SkipWithError("flush failed");
      return;
    }
  }
  const ChannelStats net = db->network_stats();
  state.counters["sim_us/inserted_row"] = benchmark::Counter(
      timer.SimMicros() / static_cast<double>(inserted_total));
  state.counters["calls/inserted_row"] = benchmark::Counter(
      static_cast<double>(net.calls) / static_cast<double>(inserted_total));
  state.SetLabel("batch_max_ops=" + std::to_string(batch_max));
  state.SetItemsProcessed(static_cast<int64_t>(inserted_total));
  bench::SnapshotDeployment(
      "updates_flush_batch" + std::to_string(batch_max), db.get());
}
BENCHMARK(BM_Update_FlushCoalescing)->Arg(1)->Arg(128)->Iterations(20);

void BM_Update_ProactiveRefresh(benchmark::State& state) {
  // §VI(b) extension: re-randomize every stored share of a table.
  const size_t rows = static_cast<size_t>(state.range(0));
  auto db = FreshDb(false, rows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  uint64_t refreshes = 0;
  for (auto _ : state) {
    if (!db->RefreshTable("Employees").ok()) {
      state.SkipWithError("refresh failed");
      return;
    }
    ++refreshes;
  }
  state.counters["bytes/row"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      static_cast<double>(refreshes * rows));
  state.SetItemsProcessed(static_cast<int64_t>(refreshes * rows));
}
BENCHMARK(BM_Update_ProactiveRefresh)->Arg(1000)->Iterations(20);

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
