// E3 — range queries and the Section IV order-preserving construction.
//
// Sweeps selectivity on a fixed table and compares tuples moved:
//   (a) order-preserving shares — providers filter exactly (§IV's goal),
//   (b) basic shares, no OP     — the "idealized" §III scheme: the whole
//       table is retrieved per query and filtered at the client,
//   (c) encrypted bucketization — superset retrieval, false positives,
//   (d) OPE                     — exact filtering on ciphertext.
// The paper's argument: (a) needs k providers but moves only the answer;
// (b) is what §IV calls "not practical"; (c) trades privacy for precision.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ssdb {
namespace {

using bench::SharedEmployeeDb;
using bench::SharedEncryptedDb;

constexpr size_t kRows = 20000;

// Selectivity expressed in tenths of a percent via state.range(0).
std::pair<int64_t, int64_t> RangeFor(int64_t permille) {
  const int64_t span =
      (EmployeeGenerator::kSalaryHi - EmployeeGenerator::kSalaryLo);
  const int64_t width = span * permille / 1000;
  const int64_t lo = 50000;
  return {lo, lo + width};
}

void BM_Range_OrderPreservingShares(benchmark::State& state) {
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  const auto [lo, hi] = RangeFor(state.range(0));
  db->ResetAllStats();
  uint64_t matched = 0;
  QueryTrace last_trace;
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(lo),
                                            Value::Int(hi))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    matched = r->count;
    last_trace = std::move(r->trace);
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.counters["matched"] = benchmark::Counter(static_cast<double>(matched));
  bench::AddTraceCounters(state, last_trace);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Range_OrderPreservingShares)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->ArgName("permille");

void BM_Range_FanOutThreads(benchmark::State& state) {
  // Fan-out thread sweep on a 10-permille range query at n=8: wall-clock
  // per query should shrink with more workers; the simulated network
  // cost per query is thread-count-invariant by construction.
  const size_t threads = static_cast<size_t>(state.range(0));
  OutsourcedDatabase* db = SharedEmployeeDb(8, 2, kRows, threads);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  const auto [lo, hi] = RangeFor(10);
  db->ResetAllStats();
  bench::WallSimTimer timer(db);
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(lo),
                                            Value::Int(hi))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["wall_us/query"] = benchmark::Counter(
      timer.WallMicros() / static_cast<double>(state.iterations()));
  state.counters["sim_us/query"] = benchmark::Counter(
      timer.SimMicros() / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Range_FanOutThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->UseRealTime();

void BM_Range_BasicSharesFetchAll(benchmark::State& state) {
  // §III idealized scheme: providers are pure storage; every query ships
  // the entire share table to the client.
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  const auto [lo, hi] = RangeFor(state.range(0));
  db->ResetAllStats();
  for (auto _ : state) {
    auto all = db->Execute(Query::Select("Employees"));
    if (!all.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    // Client-side filter.
    size_t hits = 0;
    for (const auto& row : all->rows) {
      const int64_t s = row[1].AsInt();
      if (s >= lo && s <= hi) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Range_BasicSharesFetchAll)->Arg(10)->ArgName("permille");

void BM_Range_EncryptedBuckets(benchmark::State& state) {
  EncryptedDas* das =
      SharedEncryptedDb(kRows, 64, EncIndexKind::kBucketRange);
  if (das == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  const auto [lo, hi] = RangeFor(state.range(0));
  das->ResetStats();
  for (auto _ : state) {
    auto r = das->ExecuteRange("salary", Value::Int(lo), Value::Int(hi));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(das->network_stats().total_bytes()) /
      state.iterations());
  state.counters["falsepos/query"] = benchmark::Counter(
      static_cast<double>(das->stats().false_positives) / state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Range_EncryptedBuckets)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->ArgName("permille");

void BM_Range_EncryptedOpe(benchmark::State& state) {
  EncryptedDas* das = SharedEncryptedDb(kRows, 64, EncIndexKind::kOpe);
  if (das == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  const auto [lo, hi] = RangeFor(state.range(0));
  das->ResetStats();
  for (auto _ : state) {
    auto r = das->ExecuteRange("salary", Value::Int(lo), Value::Int(hi));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(das->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Range_EncryptedOpe)->Arg(1)->Arg(10)->Arg(100)->ArgName("permille");

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
