// E5 — same-domain equi-joins (§V.A Join).
//
// Employees x Managers on a shared eid domain. Compares:
//   (a) provider-side share join — each provider hash-joins deterministic
//       shares locally and ships only the joined pairs,
//   (b) ship-and-join            — both tables are fetched and joined at
//       the client (what a scheme without same-domain polynomials is
//       forced to do).

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include <unordered_map>

#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

struct JoinSetup {
  std::unique_ptr<OutsourcedDatabase> db;
};

JoinSetup* SharedJoinDb(size_t employees, size_t managers) {
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<JoinSetup>>
      cache;
  auto key = std::make_pair(employees, managers);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();

  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
  auto db = OutsourcedDatabase::Create(options);
  if (!db.ok()) return nullptr;

  TableSchema emp;
  emp.table_name = "Employees";
  emp.columns = {
      IntColumn("eid", 0, 1'000'000, kCapExactMatch | kCapRange, "eid"),
      IntColumn("salary", 0, 200000),
  };
  TableSchema mgr;
  mgr.table_name = "Managers";
  mgr.columns = {
      IntColumn("eid", 0, 1'000'000, kCapExactMatch | kCapRange, "eid"),
      IntColumn("level", 0, 10),
  };
  if (!db.value()->CreateTable(emp).ok()) return nullptr;
  if (!db.value()->CreateTable(mgr).ok()) return nullptr;

  Rng rng(55);
  std::vector<std::vector<Value>> emp_rows, mgr_rows;
  for (size_t i = 0; i < employees; ++i) {
    emp_rows.push_back({Value::Int(static_cast<int64_t>(i)),
                        Value::Int(rng.UniformInt(0, 200000))});
  }
  for (size_t i = 0; i < managers; ++i) {
    // Managers reference a random existing employee: every manager joins.
    mgr_rows.push_back(
        {Value::Int(rng.UniformInt(0, static_cast<int64_t>(employees) - 1)),
         Value::Int(rng.UniformInt(0, 10))});
  }
  if (!db.value()->Insert("Employees", emp_rows).ok()) return nullptr;
  if (!db.value()->Insert("Managers", mgr_rows).ok()) return nullptr;

  auto setup = std::make_unique<JoinSetup>();
  setup->db = std::move(db).value();
  auto* raw = setup.get();
  cache.emplace(key, std::move(setup));
  return raw;
}

void BM_Join_ProviderSide(benchmark::State& state) {
  JoinSetup* setup = SharedJoinDb(static_cast<size_t>(state.range(0)),
                                  static_cast<size_t>(state.range(1)));
  if (setup == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  setup->db->ResetAllStats();
  JoinQuery jq;
  jq.left_table = "Employees";
  jq.left_column = "eid";
  jq.right_table = "Managers";
  jq.right_column = "eid";
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto r = setup->db->Execute(jq);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    pairs = r->rows.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(setup->db->network_stats().total_bytes()) /
      state.iterations());
  state.counters["pairs"] = benchmark::Counter(static_cast<double>(pairs));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Join_ProviderSide)
    ->Args({1000, 100})
    ->Args({5000, 500})
    ->Args({10000, 2000});

void BM_Join_ShipAndJoin(benchmark::State& state) {
  JoinSetup* setup = SharedJoinDb(static_cast<size_t>(state.range(0)),
                                  static_cast<size_t>(state.range(1)));
  if (setup == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  setup->db->ResetAllStats();
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto left = setup->db->Execute(Query::Select("Employees"));
    auto right = setup->db->Execute(Query::Select("Managers"));
    if (!left.ok() || !right.ok()) {
      state.SkipWithError("fetch failed");
      return;
    }
    std::unordered_multimap<int64_t, size_t> build;
    for (size_t i = 0; i < left->rows.size(); ++i) {
      build.emplace(left->rows[i][0].AsInt(), i);
    }
    pairs = 0;
    for (const auto& mrow : right->rows) {
      auto range = build.equal_range(mrow[0].AsInt());
      for (auto it = range.first; it != range.second; ++it) ++pairs;
    }
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(setup->db->network_stats().total_bytes()) /
      state.iterations());
  state.counters["pairs"] = benchmark::Counter(static_cast<double>(pairs));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Join_ShipAndJoin)
    ->Args({1000, 100})
    ->Args({5000, 500})
    ->Args({10000, 2000});

void BM_Join_WithSelection(benchmark::State& state) {
  // §V.A's manager-salaries query with an extra filter: join restricted to
  // high salaries; the providers apply both the predicate and the join.
  JoinSetup* setup = SharedJoinDb(10000, 2000);
  if (setup == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  setup->db->ResetAllStats();
  JoinQuery jq;
  jq.left_table = "Employees";
  jq.left_column = "eid";
  jq.right_table = "Managers";
  jq.right_column = "eid";
  jq.left_predicates = {
      Between("salary", Value::Int(150000), Value::Int(200000))};
  for (auto _ : state) {
    auto r = setup->db->Execute(jq);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(setup->db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Join_WithSelection);

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
