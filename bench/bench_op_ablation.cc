// E11 — order-preserving construction ablation (§IV).
//
// Three arms, attacked identically with the two-known-pairs affine fit:
//   * straw-man (monotone affine coefficients) — the paper's negative
//     example: 100% exact recovery,
//   * paper slots (equal-width slots + keyed hash) — the paper's proposed
//     fix: exact recovery drops, but values still leak to within +-1
//     (a finding this reproduction documents; see EXPERIMENTS.md),
//   * recursive coefficients (our hardening) — exact recovery ~0 and large
//     errors.
// Also reports the share-computation overhead of each arm.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/rng.h"
#include "sss/order_preserving.h"

namespace ssdb {
namespace {

constexpr int64_t kDomainHi = 1'000'000;
constexpr int kColumnSize = 2000;

struct AttackOutcome {
  double exact_fraction = 0.0;
  int64_t max_abs_error = 0;
};

template <typename ShareFn>
AttackOutcome RunAffineAttack(ShareFn&& share_of, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> values;
  std::vector<u128> column;
  for (int i = 0; i < kColumnSize; ++i) {
    values.push_back(rng.UniformInt(0, kDomainHi));
    column.push_back(share_of(values.back()));
  }
  if (values[0] == values[1]) values[1] = values[0] + 1;
  const i128 s1 = static_cast<i128>(column[0]);
  const i128 s2 = static_cast<i128>(column[1]);
  const i128 a = (s1 - s2) / (values[0] - values[1]);
  const i128 b = s1 - a * values[0];
  AttackOutcome out;
  int exact = 0;
  for (size_t i = 2; i < values.size(); ++i) {
    const i128 guess = (static_cast<i128>(column[i]) - b) / a;
    const int64_t err =
        std::llabs(static_cast<long long>(guess - values[i]));
    if (err == 0) ++exact;
    out.max_abs_error = std::max(out.max_abs_error, err);
  }
  out.exact_fraction =
      static_cast<double>(exact) / static_cast<double>(values.size() - 2);
  return out;
}

void PrintAttackTable() {
  std::printf("---- E11: two-known-pairs affine attack, domain [0, 1e6], "
              "%d stored values ----\n",
              kColumnSize);
  std::printf("%-22s %18s %14s\n", "construction", "exact recovery",
              "max |error|");

  auto strawman = StrawmanOrderPreserving::Create({0, kDomainHi},
                                                  {2, 4, 1, 9}, 0xF00D);
  auto sm_outcome = RunAffineAttack(
      [&](int64_t v) { return strawman->Share(v, 0).value(); }, 101);
  std::printf("%-22s %17.1f%% %14lld\n", "straw-man (affine)",
              sm_outcome.exact_fraction * 100,
              static_cast<long long>(sm_outcome.max_abs_error));

  auto slots = OrderPreservingScheme::Create(
      Prf(1, 2), {0, kDomainHi}, 3, {2, 4, 1, 9}, OpSlotMode::kPaperSlots);
  auto slot_outcome = RunAffineAttack(
      [&](int64_t v) { return slots->Share(v, 0).value(); }, 102);
  std::printf("%-22s %17.1f%% %14lld\n", "paper slots (Sec. IV)",
              slot_outcome.exact_fraction * 100,
              static_cast<long long>(slot_outcome.max_abs_error));

  auto recursive = OrderPreservingScheme::Create(
      Prf(1, 2), {0, kDomainHi}, 3, {2, 4, 1, 9}, OpSlotMode::kRecursive);
  auto rec_outcome = RunAffineAttack(
      [&](int64_t v) { return recursive->Share(v, 0).value(); }, 103);
  std::printf("%-22s %17.1f%% %14lld\n\n", "recursive (hardened)",
              rec_outcome.exact_fraction * 100,
              static_cast<long long>(rec_outcome.max_abs_error));
}

void BM_OpShare_Strawman(benchmark::State& state) {
  auto scheme = StrawmanOrderPreserving::Create({0, kDomainHi}, {2, 4, 1, 9},
                                                0xF00D);
  int64_t v = 0;
  for (auto _ : state) {
    auto s = scheme->Share(v, 0);
    v = (v + 997) % kDomainHi;
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpShare_Strawman);

void BM_OpShare_PaperSlots(benchmark::State& state) {
  auto scheme = OrderPreservingScheme::Create(
      Prf(1, 2), {0, kDomainHi}, 3, {2, 4, 1, 9}, OpSlotMode::kPaperSlots);
  int64_t v = 0;
  for (auto _ : state) {
    auto s = scheme->Share(v, 0);
    v = (v + 997) % kDomainHi;
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpShare_PaperSlots);

void BM_OpShare_Recursive(benchmark::State& state) {
  auto scheme = OrderPreservingScheme::Create(
      Prf(1, 2), {0, kDomainHi}, 3, {2, 4, 1, 9}, OpSlotMode::kRecursive);
  int64_t v = 0;
  for (auto _ : state) {
    auto s = scheme->Share(v, 0);
    v = (v + 997) % kDomainHi;
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpShare_Recursive);

}  // namespace
}  // namespace ssdb

int main(int argc, char** argv) {
  const std::string metrics_path =
      ssdb::bench::ConsumeMetricsJsonFlag(&argc, argv);
  ssdb::PrintAttackTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_path.empty() &&
      !ssdb::bench::WriteMetricsSnapshot(metrics_path)) {
    return 1;
  }
  return 0;
}
