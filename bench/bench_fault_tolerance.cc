// E8 — fault tolerance and availability (§V.A's "greater fault-tolerance
// and data availability in the presence of failures"; §VI challenge (b)).
//
// Measures, for n = 5 providers:
//   * query latency and bytes as providers go down (reads survive up to
//     n - k failures; the replacement legs cost extra round trips),
//   * the n-of-n write amplification versus k-of-n reads,
//   * read availability under probabilistic message loss, as a function
//     of k.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace ssdb {
namespace {

using bench::SharedEmployeeDb;

constexpr size_t kRows = 5000;

void BM_Fault_QueryWithDownProviders(benchmark::State& state) {
  const size_t down = static_cast<size_t>(state.range(0));
  OutsourcedDatabase* db = SharedEmployeeDb(5, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->faults().HealAll();
  for (size_t i = 0; i < down; ++i) {
    db->faults().Down(i);
  }
  db->ResetAllStats();
  const uint64_t sim_start = db->simulated_time_us();
  uint64_t failures = 0;
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(100000),
                                            Value::Int(101000))));
    if (!r.ok()) ++failures;
    benchmark::DoNotOptimize(r);
  }
  db->faults().HealAll();
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.counters["sim_us/query"] = benchmark::Counter(
      static_cast<double>(db->simulated_time_us() - sim_start) /
      state.iterations());
  state.counters["failed_queries"] =
      benchmark::Counter(static_cast<double>(failures));
  state.SetItemsProcessed(state.iterations());
}
// k=2, n=5: up to 3 failures survivable; 4 exhausts the quorum.
BENCHMARK(BM_Fault_QueryWithDownProviders)->Arg(0)->Arg(1)->Arg(3)->Arg(4);

void BM_Fault_CorruptProviderRecovery(benchmark::State& state) {
  OutsourcedDatabase* db = SharedEmployeeDb(5, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->faults().HealAll();
  db->faults().Corrupt(1);
  db->ResetAllStats();
  uint64_t failures = 0;
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(100000),
                                            Value::Int(100500))));
    if (!r.ok()) ++failures;
    benchmark::DoNotOptimize(r);
  }
  db->faults().HealAll();
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.counters["failed_queries"] =
      benchmark::Counter(static_cast<double>(failures));
  state.counters["corruption_retries"] = benchmark::Counter(
      static_cast<double>(db->client_stats().corruption_retries));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fault_CorruptProviderRecovery);

void BM_Fault_AvailabilityUnderLoss(benchmark::State& state) {
  // 20% message loss on every link; availability is the fraction of
  // queries that still assemble k responses (phase-2 retries help).
  const size_t k = static_cast<size_t>(state.range(0));
  static std::map<size_t, std::unique_ptr<OutsourcedDatabase>> cache;
  OutsourcedDatabase* db = nullptr;
  auto it = cache.find(k);
  if (it != cache.end()) {
    db = it->second.get();
  } else {
    OutsourcedDbOptions options;
    options.topology = Topology(/*m=*/1, /*n_per=*/5, /*k=*/k);
    auto created = OutsourcedDatabase::Create(options);
    if (!created.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    (void)created.value()->CreateTable(EmployeeGenerator::EmployeesSchema());
    EmployeeGenerator gen(5, Distribution::kUniform);
    (void)created.value()->Insert("Employees", gen.Rows(1000));
    db = created.value().get();
    cache.emplace(k, std::move(created).value());
  }
  for (size_t p = 0; p < 5; ++p) {
    db->faults().Drop(p, 0.2);
  }
  uint64_t ok = 0, total = 0;
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(0),
                                            Value::Int(1000))));
    ++total;
    if (r.ok()) ++ok;
    benchmark::DoNotOptimize(r);
  }
  db->faults().HealAll();
  state.counters["availability"] = benchmark::Counter(
      total == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(total));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fault_AvailabilityUnderLoss)->Arg(2)->Arg(3)->Arg(5);

void BM_Fault_StragglerHedging(benchmark::State& state) {
  // One straggler provider answers 10x slower than modelled. Unhedged
  // (arg 0), every query inherits the straggler's tail; hedged (arg 1), a
  // duplicate leg to a spare provider wins the race and the simulated
  // latency collapses to threshold + one healthy round trip.
  const bool hedged = state.range(0) != 0;
  static std::map<bool, std::unique_ptr<OutsourcedDatabase>> cache;
  OutsourcedDatabase* db = nullptr;
  auto it = cache.find(hedged);
  if (it != cache.end()) {
    db = it->second.get();
  } else {
    OutsourcedDbOptions options;
    options.topology = Topology(/*m=*/1, /*n_per=*/5, /*k=*/2);
    options.client.resilience.hedge.enabled = hedged;
    options.client.resilience.hedge.threshold_us = 100000;
    auto created = OutsourcedDatabase::Create(options);
    if (!created.ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    (void)created.value()->CreateTable(EmployeeGenerator::EmployeesSchema());
    EmployeeGenerator gen(7, Distribution::kUniform);
    (void)created.value()->Insert("Employees", gen.Rows(1000));
    db = created.value().get();
    cache.emplace(hedged, std::move(created).value());
  }
  db->faults().HealAll();
  db->faults().Slow(0, 10.0);
  const uint64_t sim_start = db->simulated_time_us();
  QueryTrace last_trace;
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(50000),
                                            Value::Int(52000))));
    if (r.ok()) last_trace = std::move(r->trace);
    benchmark::DoNotOptimize(r);
  }
  db->faults().HealAll();
  state.counters["sim_us/query"] = benchmark::Counter(
      static_cast<double>(db->simulated_time_us() - sim_start) /
      state.iterations());
  bench::AddTraceCounters(state, last_trace);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fault_StragglerHedging)->Arg(0)->Arg(1);

void BM_Fault_WriteAmplification(benchmark::State& state) {
  // Writes must reach all n providers; reads only k. The counter shows
  // bytes per inserted row at n=5 (the §V.A "overhead ... does result in
  // greater fault-tolerance" trade).
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/5, /*k=*/2);
  auto db = OutsourcedDatabase::Create(options);
  if (!db.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  (void)db.value()->CreateTable(EmployeeGenerator::EmployeesSchema());
  EmployeeGenerator gen(6, Distribution::kUniform);
  db.value()->ResetAllStats();
  uint64_t rows = 0;
  for (auto _ : state) {
    if (!db.value()->Insert("Employees", gen.Rows(100)).ok()) {
      state.SkipWithError("insert failed");
      return;
    }
    rows += 100;
  }
  state.counters["bytes/row"] = benchmark::Counter(
      static_cast<double>(db.value()->network_stats().total_bytes()) /
      static_cast<double>(rows));
  state.SetItemsProcessed(static_cast<int64_t>(rows));
}
BENCHMARK(BM_Fault_WriteAmplification);

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
