// E10 — non-numeric data through the base-27 encoding (§V.B).
//
// String exact-match, prefix ("name starts with AB") and lexicographic
// range ("between ALBERT and JACK") queries must cost the same as their
// numeric counterparts once encoded. Also microbenchmarks the codec
// itself.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codec/string27.h"

namespace ssdb {
namespace {

using bench::SharedEmployeeDb;

constexpr size_t kRows = 20000;

void BM_String_Encode(benchmark::State& state) {
  auto codec = String27::Create(8);
  NameGenerator names(3);
  std::vector<std::string> batch;
  for (int i = 0; i < 256; ++i) batch.push_back(names.Next(8));
  size_t i = 0;
  for (auto _ : state) {
    auto code = codec->Encode(batch[i++ % 256]);
    benchmark::DoNotOptimize(code);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_String_Encode);

void BM_String_Decode(benchmark::State& state) {
  auto codec = String27::Create(8);
  NameGenerator names(4);
  std::vector<int64_t> codes;
  for (int i = 0; i < 256; ++i) {
    codes.push_back(codec->Encode(names.Next(8)).value());
  }
  size_t i = 0;
  for (auto _ : state) {
    auto s = codec->Decode(codes[i++ % 256]);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_String_Decode);

void BM_String_ExactMatchQuery(benchmark::State& state) {
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  EmployeeGenerator probe(1234, Distribution::kUniform);
  std::vector<std::string> names;
  for (int i = 0; i < 64; ++i) names.push_back(probe.Next().name);
  db->ResetAllStats();
  size_t q = 0;
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Eq("name", Value::Str(names[q++ % 64]))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_String_ExactMatchQuery);

void BM_String_PrefixQuery(benchmark::State& state) {
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  static const char* kPrefixes[] = {"BA", "KO", "SU", "TE", "MI"};
  db->ResetAllStats();
  size_t q = 0;
  uint64_t matched = 0;
  for (auto _ : state) {
    auto r = db->Execute(
        Query::Select("Employees").Where(Prefix("name", kPrefixes[q++ % 5])));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    matched = r->count;
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.counters["matched"] = benchmark::Counter(static_cast<double>(matched));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_String_PrefixQuery);

void BM_String_LexRangeQuery(benchmark::State& state) {
  // The paper's "between Albert and Jack" query.
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  uint64_t matched = 0;
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("name", Value::Str("BA"),
                                            Value::Str("DO"))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    matched = r->count;
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.counters["matched"] = benchmark::Counter(static_cast<double>(matched));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_String_LexRangeQuery);

void BM_Numeric_RangeQueryReference(benchmark::State& state) {
  // Numeric range of comparable selectivity, for the strings-vs-numbers
  // cost comparison the §V.B design implies.
  OutsourcedDatabase* db = SharedEmployeeDb(4, 2, kRows);
  if (db == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  db->ResetAllStats();
  for (auto _ : state) {
    auto r = db->Execute(Query::Select("Employees")
                             .Where(Between("salary", Value::Int(50000),
                                            Value::Int(70000))));
    if (!r.ok()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["bytes/query"] = benchmark::Counter(
      static_cast<double>(db->network_stats().total_bytes()) /
      state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Numeric_RangeQueryReference);

}  // namespace
}  // namespace ssdb

SSDB_BENCH_MAIN();
