# Empty dependencies file for bench_pir.
# This may be replaced when dependencies are built.
