# Empty dependencies file for bench_strings.
# This may be replaced when dependencies are built.
