file(REMOVE_RECURSE
  "CMakeFiles/bench_strings.dir/bench_strings.cc.o"
  "CMakeFiles/bench_strings.dir/bench_strings.cc.o.d"
  "bench_strings"
  "bench_strings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
