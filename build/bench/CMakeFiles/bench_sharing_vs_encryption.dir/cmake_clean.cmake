file(REMOVE_RECURSE
  "CMakeFiles/bench_sharing_vs_encryption.dir/bench_sharing_vs_encryption.cc.o"
  "CMakeFiles/bench_sharing_vs_encryption.dir/bench_sharing_vs_encryption.cc.o.d"
  "bench_sharing_vs_encryption"
  "bench_sharing_vs_encryption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharing_vs_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
