# Empty dependencies file for bench_sharing_vs_encryption.
# This may be replaced when dependencies are built.
