file(REMOVE_RECURSE
  "CMakeFiles/bench_op_ablation.dir/bench_op_ablation.cc.o"
  "CMakeFiles/bench_op_ablation.dir/bench_op_ablation.cc.o.d"
  "bench_op_ablation"
  "bench_op_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_op_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
