# Empty compiler generated dependencies file for bench_op_ablation.
# This may be replaced when dependencies are built.
