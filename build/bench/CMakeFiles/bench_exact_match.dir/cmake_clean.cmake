file(REMOVE_RECURSE
  "CMakeFiles/bench_exact_match.dir/bench_exact_match.cc.o"
  "CMakeFiles/bench_exact_match.dir/bench_exact_match.cc.o.d"
  "bench_exact_match"
  "bench_exact_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exact_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
