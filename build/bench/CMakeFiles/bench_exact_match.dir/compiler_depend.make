# Empty compiler generated dependencies file for bench_exact_match.
# This may be replaced when dependencies are built.
