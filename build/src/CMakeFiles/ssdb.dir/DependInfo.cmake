
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/encrypted_das.cc" "src/CMakeFiles/ssdb.dir/baseline/encrypted_das.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/baseline/encrypted_das.cc.o.d"
  "/root/repo/src/client/client.cc" "src/CMakeFiles/ssdb.dir/client/client.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/client/client.cc.o.d"
  "/root/repo/src/client/sql.cc" "src/CMakeFiles/ssdb.dir/client/sql.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/client/sql.cc.o.d"
  "/root/repo/src/codec/schema.cc" "src/CMakeFiles/ssdb.dir/codec/schema.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/codec/schema.cc.o.d"
  "/root/repo/src/codec/string27.cc" "src/CMakeFiles/ssdb.dir/codec/string27.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/codec/string27.cc.o.d"
  "/root/repo/src/codec/value.cc" "src/CMakeFiles/ssdb.dir/codec/value.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/codec/value.cc.o.d"
  "/root/repo/src/common/buffer.cc" "src/CMakeFiles/ssdb.dir/common/buffer.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/common/buffer.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/ssdb.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/common/hash.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ssdb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ssdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/common/status.cc.o.d"
  "/root/repo/src/common/wide_int.cc" "src/CMakeFiles/ssdb.dir/common/wide_int.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/common/wide_int.cc.o.d"
  "/root/repo/src/core/outsourced_db.cc" "src/CMakeFiles/ssdb.dir/core/outsourced_db.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/core/outsourced_db.cc.o.d"
  "/root/repo/src/crypto/aes.cc" "src/CMakeFiles/ssdb.dir/crypto/aes.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/crypto/aes.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/CMakeFiles/ssdb.dir/crypto/hmac.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/ope.cc" "src/CMakeFiles/ssdb.dir/crypto/ope.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/crypto/ope.cc.o.d"
  "/root/repo/src/crypto/prf.cc" "src/CMakeFiles/ssdb.dir/crypto/prf.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/crypto/prf.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/ssdb.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/field/fp61.cc" "src/CMakeFiles/ssdb.dir/field/fp61.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/field/fp61.cc.o.d"
  "/root/repo/src/field/linalg.cc" "src/CMakeFiles/ssdb.dir/field/linalg.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/field/linalg.cc.o.d"
  "/root/repo/src/field/poly.cc" "src/CMakeFiles/ssdb.dir/field/poly.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/field/poly.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/ssdb.dir/net/network.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/net/network.cc.o.d"
  "/root/repo/src/pir/pir.cc" "src/CMakeFiles/ssdb.dir/pir/pir.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/pir/pir.cc.o.d"
  "/root/repo/src/provider/protocol.cc" "src/CMakeFiles/ssdb.dir/provider/protocol.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/provider/protocol.cc.o.d"
  "/root/repo/src/provider/provider.cc" "src/CMakeFiles/ssdb.dir/provider/provider.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/provider/provider.cc.o.d"
  "/root/repo/src/sss/order_preserving.cc" "src/CMakeFiles/ssdb.dir/sss/order_preserving.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/sss/order_preserving.cc.o.d"
  "/root/repo/src/sss/shamir.cc" "src/CMakeFiles/ssdb.dir/sss/shamir.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/sss/shamir.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/ssdb.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/share_table.cc" "src/CMakeFiles/ssdb.dir/storage/share_table.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/storage/share_table.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/ssdb.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/workload/generators.cc.o.d"
  "/root/repo/src/workload/intersection.cc" "src/CMakeFiles/ssdb.dir/workload/intersection.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/workload/intersection.cc.o.d"
  "/root/repo/src/workload/query_mix.cc" "src/CMakeFiles/ssdb.dir/workload/query_mix.cc.o" "gcc" "src/CMakeFiles/ssdb.dir/workload/query_mix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
