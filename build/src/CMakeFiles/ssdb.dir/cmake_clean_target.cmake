file(REMOVE_RECURSE
  "libssdb.a"
)
