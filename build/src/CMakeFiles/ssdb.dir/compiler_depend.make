# Empty compiler generated dependencies file for ssdb.
# This may be replaced when dependencies are built.
