# Empty compiler generated dependencies file for ssdb_tests.
# This may be replaced when dependencies are built.
