
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/ssdb_tests.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/baseline_test.cc.o.d"
  "/root/repo/tests/client_test.cc" "tests/CMakeFiles/ssdb_tests.dir/client_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/client_test.cc.o.d"
  "/root/repo/tests/codec_test.cc" "tests/CMakeFiles/ssdb_tests.dir/codec_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/codec_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/ssdb_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/ssdb_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/edge_test.cc" "tests/CMakeFiles/ssdb_tests.dir/edge_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/edge_test.cc.o.d"
  "/root/repo/tests/features_test.cc" "tests/CMakeFiles/ssdb_tests.dir/features_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/features_test.cc.o.d"
  "/root/repo/tests/field_test.cc" "tests/CMakeFiles/ssdb_tests.dir/field_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/field_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/ssdb_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/ssdb_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/pir_test.cc" "tests/CMakeFiles/ssdb_tests.dir/pir_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/pir_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/ssdb_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/provider_test.cc" "tests/CMakeFiles/ssdb_tests.dir/provider_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/provider_test.cc.o.d"
  "/root/repo/tests/scenario_test.cc" "tests/CMakeFiles/ssdb_tests.dir/scenario_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/scenario_test.cc.o.d"
  "/root/repo/tests/security_test.cc" "tests/CMakeFiles/ssdb_tests.dir/security_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/security_test.cc.o.d"
  "/root/repo/tests/snapshot_test.cc" "tests/CMakeFiles/ssdb_tests.dir/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/snapshot_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/ssdb_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/sss_test.cc" "tests/CMakeFiles/ssdb_tests.dir/sss_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/sss_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/ssdb_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/ssdb_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/ssdb_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ssdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
