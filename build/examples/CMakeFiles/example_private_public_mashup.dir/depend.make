# Empty dependencies file for example_private_public_mashup.
# This may be replaced when dependencies are built.
