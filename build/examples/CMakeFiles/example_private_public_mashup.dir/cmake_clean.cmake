file(REMOVE_RECURSE
  "CMakeFiles/example_private_public_mashup.dir/private_public_mashup.cc.o"
  "CMakeFiles/example_private_public_mashup.dir/private_public_mashup.cc.o.d"
  "example_private_public_mashup"
  "example_private_public_mashup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_private_public_mashup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
