file(REMOVE_RECURSE
  "CMakeFiles/example_document_intersection.dir/document_intersection.cc.o"
  "CMakeFiles/example_document_intersection.dir/document_intersection.cc.o.d"
  "example_document_intersection"
  "example_document_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_document_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
