# Empty compiler generated dependencies file for example_document_intersection.
# This may be replaced when dependencies are built.
