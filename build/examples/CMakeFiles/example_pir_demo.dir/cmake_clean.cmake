file(REMOVE_RECURSE
  "CMakeFiles/example_pir_demo.dir/pir_demo.cc.o"
  "CMakeFiles/example_pir_demo.dir/pir_demo.cc.o.d"
  "example_pir_demo"
  "example_pir_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pir_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
