# Empty dependencies file for example_pir_demo.
# This may be replaced when dependencies are built.
