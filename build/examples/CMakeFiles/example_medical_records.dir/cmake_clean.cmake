file(REMOVE_RECURSE
  "CMakeFiles/example_medical_records.dir/medical_records.cc.o"
  "CMakeFiles/example_medical_records.dir/medical_records.cc.o.d"
  "example_medical_records"
  "example_medical_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_medical_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
