file(REMOVE_RECURSE
  "CMakeFiles/example_failure_drill.dir/failure_drill.cc.o"
  "CMakeFiles/example_failure_drill.dir/failure_drill.cc.o.d"
  "example_failure_drill"
  "example_failure_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failure_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
