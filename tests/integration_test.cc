// End-to-end tests through the OutsourcedDatabase facade: the full path
// client -> network -> providers -> reconstruction for every query class
// of §V.A, plus updates, failures, and the §V.D mash-up.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/outsourced_db.h"

namespace ssdb {
namespace {

TableSchema EmployeesSchema() {
  TableSchema schema;
  schema.table_name = "Employees";
  schema.columns = {
      StringColumn("name", 8),
      IntColumn("salary", 0, 1'000'000),
      IntColumn("dept", 0, 100),
  };
  return schema;
}

std::unique_ptr<OutsourcedDatabase> MakeDb(size_t n = 4, size_t k = 2,
                                           bool lazy = false) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/n, /*k=*/k);
  options.client.lazy_updates = lazy;
  auto db = OutsourcedDatabase::Create(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

void InsertEmployees(OutsourcedDatabase* db) {
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  const Status st = db->Insert(
      "Employees",
      {
          {Value::Str("JOHN"), Value::Int(20000), Value::Int(1)},
          {Value::Str("ALICE"), Value::Int(35000), Value::Int(1)},
          {Value::Str("BOB"), Value::Int(50000), Value::Int(2)},
          {Value::Str("CAROL"), Value::Int(10000), Value::Int(2)},
          {Value::Str("JOHN"), Value::Int(42000), Value::Int(3)},
          {Value::Str("DAVE"), Value::Int(78000), Value::Int(3)},
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(Integration, ExactMatchQuery) {
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto r = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("JOHN"))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  std::multiset<int64_t> salaries;
  for (const auto& row : r->rows) {
    EXPECT_EQ(row[0].AsString(), "JOHN");
    salaries.insert(row[1].AsInt());
  }
  EXPECT_EQ(salaries, (std::multiset<int64_t>{20000, 42000}));
}

TEST(Integration, ExactMatchNoHits) {
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto r = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("NOBODY"))));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST(Integration, RangeQueryPaperExample) {
  // "Retrieve all information about employees whose salary is between
  // 10K and 40K" (§III).
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Between("salary", Value::Int(10000),
                                          Value::Int(40000))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::multiset<int64_t> got;
  for (const auto& row : r->rows) got.insert(row[1].AsInt());
  EXPECT_EQ(got, (std::multiset<int64_t>{20000, 35000, 10000}));
}

TEST(Integration, RangeBoundsAreInclusive) {
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Between("salary", Value::Int(10000),
                                          Value::Int(10000))));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "CAROL");
}

TEST(Integration, RangeOutsideDomainClampsOrEmpty) {
  auto db = MakeDb();
  InsertEmployees(db.get());
  // Clamped to the domain.
  auto r1 = db->Execute(Query::Select("Employees")
                            .Where(Between("salary", Value::Int(-500000),
                                           Value::Int(2'000'000))));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->rows.size(), 6u);
  // Provably empty: answered without contacting any provider.
  const uint64_t calls_before = db->network_stats().calls;
  auto r2 = db->Execute(Query::Select("Employees")
                            .Where(Between("salary", Value::Int(2'000'001),
                                           Value::Int(3'000'000))));
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->rows.empty());
  EXPECT_EQ(db->network_stats().calls, calls_before);
}

TEST(Integration, ConjunctivePredicates) {
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Eq("dept", Value::Int(3)))
                           .Where(Between("salary", Value::Int(40000),
                                          Value::Int(50000))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "JOHN");
  EXPECT_EQ(r->rows[0][1].AsInt(), 42000);
}

TEST(Integration, AggregatesOverExactMatch) {
  // "Average of the salaries of all employees whose name is John" (§III).
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto sum = db->Execute(Query::Select("Employees")
                             .Where(Eq("name", Value::Str("JOHN")))
                             .Aggregate(AggregateOp::kSum, "salary"));
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(sum->aggregate_int, 62000);
  EXPECT_EQ(sum->count, 2u);

  auto avg = db->Execute(Query::Select("Employees")
                             .Where(Eq("name", Value::Str("JOHN")))
                             .Aggregate(AggregateOp::kAvg, "salary"));
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->aggregate_double, 31000.0);
}

TEST(Integration, AggregatesOverRanges) {
  // "Sum of the salaries of employees whose salary is between 10K and
  // 40K" (§III).
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Between("salary", Value::Int(10000),
                                          Value::Int(40000)))
                           .Aggregate(AggregateOp::kSum, "salary"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->aggregate_int, 10000 + 20000 + 35000);
  EXPECT_EQ(r->count, 3u);
}

TEST(Integration, MinMaxMedian) {
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto mn = db->Execute(
      Query::Select("Employees").Aggregate(AggregateOp::kMin, "salary"));
  ASSERT_TRUE(mn.ok()) << mn.status().ToString();
  EXPECT_EQ(mn->aggregate_int, 10000);
  EXPECT_EQ(mn->rows[0][0].AsString(), "CAROL");

  auto mx = db->Execute(
      Query::Select("Employees").Aggregate(AggregateOp::kMax, "salary"));
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(mx->aggregate_int, 78000);

  // Salaries sorted: 10000 20000 35000 42000 50000 78000 -> lower median
  // 35000.
  auto med = db->Execute(
      Query::Select("Employees").Aggregate(AggregateOp::kMedian, "salary"));
  ASSERT_TRUE(med.ok());
  EXPECT_EQ(med->aggregate_int, 35000);

  // Min over a filtered range.
  auto mn2 = db->Execute(Query::Select("Employees")
                             .Where(Eq("dept", Value::Int(3)))
                             .Aggregate(AggregateOp::kMin, "salary"));
  ASSERT_TRUE(mn2.ok());
  EXPECT_EQ(mn2->aggregate_int, 42000);
}

TEST(Integration, CountAggregate) {
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Eq("dept", Value::Int(2)))
                           .Aggregate(AggregateOp::kCount));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->count, 2u);
}

TEST(Integration, StringPrefixAndLexRange) {
  // §V.B: "employees whose name starts with AB" and "between Albert and
  // Jack" become range queries.
  auto db = MakeDb();
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  ASSERT_TRUE(db->Insert("Employees",
                         {
                             {Value::Str("ALBERT"), Value::Int(100), Value::Int(1)},
                             {Value::Str("ABEL"), Value::Int(200), Value::Int(1)},
                             {Value::Str("ABRAHAM"), Value::Int(300), Value::Int(1)},
                             {Value::Str("JACK"), Value::Int(400), Value::Int(1)},
                             {Value::Str("JACKSON"), Value::Int(500), Value::Int(1)},
                             {Value::Str("ZOE"), Value::Int(600), Value::Int(1)},
                         })
                  .ok());
  auto pre = db->Execute(Query::Select("Employees").Where(Prefix("name", "AB")));
  ASSERT_TRUE(pre.ok()) << pre.status().ToString();
  std::multiset<std::string> names;
  for (const auto& row : pre->rows) names.insert(row[0].AsString());
  EXPECT_EQ(names, (std::multiset<std::string>{"ABEL", "ABRAHAM"}));

  auto lex = db->Execute(Query::Select("Employees")
                             .Where(Between("name", Value::Str("ALBERT"),
                                            Value::Str("JACK"))));
  ASSERT_TRUE(lex.ok());
  names.clear();
  for (const auto& row : lex->rows) names.insert(row[0].AsString());
  // "JACKSON" starts with "JACK" so the paper's inclusive upper prefix
  // semantics admit it.
  EXPECT_EQ(names, (std::multiset<std::string>{"ALBERT", "JACK", "JACKSON"}));
}

TEST(Integration, JoinOnSharedDomain) {
  // §V.A Join: Employees x Managers on EID.
  auto db = MakeDb();
  TableSchema employees;
  employees.table_name = "Employees";
  employees.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid_domain"),
      StringColumn("name", 8),
      IntColumn("salary", 0, 1'000'000),
  };
  TableSchema managers;
  managers.table_name = "Managers";
  managers.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid_domain"),
      IntColumn("manager_id", 0, 100000, kCapExactMatch | kCapRange,
                "eid_domain"),
  };
  ASSERT_TRUE(db->CreateTable(employees).ok());
  ASSERT_TRUE(db->CreateTable(managers).ok());
  ASSERT_TRUE(db->Insert("Employees",
                         {
                             {Value::Int(1), Value::Str("JOHN"), Value::Int(20000)},
                             {Value::Int(2), Value::Str("ALICE"), Value::Int(35000)},
                             {Value::Int(3), Value::Str("BOB"), Value::Int(50000)},
                         })
                  .ok());
  ASSERT_TRUE(db->Insert("Managers",
                         {
                             {Value::Int(1), Value::Int(3)},
                             {Value::Int(3), Value::Int(3)},
                         })
                  .ok());

  JoinQuery jq;
  jq.left_table = "Employees";
  jq.left_column = "eid";
  jq.right_table = "Managers";
  jq.right_column = "eid";
  auto r = db->Execute(jq);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  // Unified join results: each row is left ++ right, split at
  // join_left_columns.
  ASSERT_EQ(r->join_left_columns, 3u);
  std::multiset<std::string> joined_names;
  for (const auto& row : r->rows) {
    EXPECT_EQ(row[0].AsInt(), row[r->join_left_columns].AsInt());
    joined_names.insert(row[1].AsString());
  }
  EXPECT_EQ(joined_names, (std::multiset<std::string>{"JOHN", "BOB"}));
}

TEST(Integration, CrossDomainJoinRejected) {
  // The paper: joins over attributes from different domains "cannot be
  // answered with the proposed scheme".
  auto db = MakeDb();
  TableSchema a;
  a.table_name = "A";
  a.columns = {IntColumn("x", 0, 1000, kCapExactMatch, "domain_a")};
  TableSchema b;
  b.table_name = "B";
  b.columns = {IntColumn("y", 0, 1000, kCapExactMatch, "domain_b")};
  ASSERT_TRUE(db->CreateTable(a).ok());
  ASSERT_TRUE(db->CreateTable(b).ok());
  JoinQuery jq;
  jq.left_table = "A";
  jq.left_column = "x";
  jq.right_table = "B";
  jq.right_column = "y";
  auto r = db->Execute(jq);
  EXPECT_TRUE(r.status().IsNotSupported()) << r.status().ToString();
}

TEST(Integration, UpdateEager) {
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto updated = db->Update("Employees", {Eq("name", Value::Str("JOHN"))},
                            "salary", Value::Int(99000));
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(updated.value(), 2u);
  auto r = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("JOHN"))));
  ASSERT_TRUE(r.ok());
  for (const auto& row : r->rows) EXPECT_EQ(row[1].AsInt(), 99000);
  // Range index must reflect the update.
  auto range = db->Execute(Query::Select("Employees")
                               .Where(Between("salary", Value::Int(99000),
                                              Value::Int(99000))));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->rows.size(), 2u);
}

TEST(Integration, DeleteEager) {
  auto db = MakeDb();
  InsertEmployees(db.get());
  auto deleted = db->Delete("Employees", {Eq("dept", Value::Int(2))});
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted.value(), 2u);
  auto r = db->Execute(Query::Select("Employees"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 4u);
}

TEST(Integration, LazyUpdatesMergeAndFlush) {
  auto db = MakeDb(4, 2, /*lazy=*/true);
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  ASSERT_TRUE(db->Insert("Employees",
                         {{Value::Str("EVE"), Value::Int(1000), Value::Int(1)}})
                  .ok());
  // Nothing shipped yet...
  EXPECT_GT(db->client().pending_lazy_ops(), 0u);
  // ...but reads see the pending insert.
  auto r = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("EVE"))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsInt(), 1000);

  // Lazy update coalesces with the pending insert.
  auto updated = db->Update("Employees", {Eq("name", Value::Str("EVE"))},
                            "salary", Value::Int(2000));
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(updated.value(), 1u);
  auto r2 = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("EVE"))));
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->rows.size(), 1u);
  EXPECT_EQ(r2->rows[0][1].AsInt(), 2000);

  // Flush and verify durable state.
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_EQ(db->client().pending_lazy_ops(), 0u);
  auto r3 = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("EVE"))));
  ASSERT_TRUE(r3.ok());
  ASSERT_EQ(r3->rows.size(), 1u);
  EXPECT_EQ(r3->rows[0][1].AsInt(), 2000);
}

TEST(Integration, LazyDeleteOfPendingInsertNeverShips) {
  auto db = MakeDb(3, 2, /*lazy=*/true);
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  ASSERT_TRUE(db->Insert("Employees",
                         {{Value::Str("TMP"), Value::Int(5), Value::Int(1)}})
                  .ok());
  auto deleted = db->Delete("Employees", {Eq("name", Value::Str("TMP"))});
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted.value(), 1u);
  ASSERT_TRUE(db->Flush().ok());
  auto r = db->Execute(Query::Select("Employees"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST(Integration, SurvivesProviderFailuresUpToNMinusK) {
  auto db = MakeDb(5, 2);
  InsertEmployees(db.get());
  // Take down 3 of 5 providers: k=2 still reachable.
  db->faults().Down(0);
  db->faults().Down(2);
  db->faults().Down(4);
  auto r = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("JOHN"))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
  // A 4th failure leaves only 1 < k providers.
  db->faults().Down(1);
  auto r2 = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("JOHN"))));
  EXPECT_TRUE(r2.status().IsUnavailable());
}

TEST(Integration, RecoversFromOneCorruptProvider) {
  auto db = MakeDb(5, 2);
  InsertEmployees(db.get());
  db->faults().Corrupt(1);
  auto r = db->Execute(
      Query::Select("Employees").Where(Eq("name", Value::Str("ALICE"))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsInt(), 35000);
}

TEST(Integration, ProvidersNeverSeePlaintext) {
  // Grab a provider's stored bytes and check that no plaintext salary or
  // encoded name appears among the stored shares.
  auto db = MakeDb(3, 2);
  InsertEmployees(db.get());
  const Provider& p = db->provider(0);
  auto table = p.GetTableForTest(1);
  ASSERT_TRUE(table.ok());
  std::set<uint64_t> salaries = {20000, 35000, 50000, 10000, 42000, 78000};
  size_t plaintext_hits = 0;
  (*table)->ScanAll([&](const StoredRow& row) {
    for (const StoredCell& cell : row.cells) {
      if (salaries.count(cell.secret) != 0) ++plaintext_hits;
      if (salaries.count(cell.det) != 0) ++plaintext_hits;
    }
    return true;
  });
  // A random share could collide with a salary by astronomical luck; all
  // 6 salaries appearing would mean plaintext storage.
  EXPECT_LT(plaintext_hits, 2u);
}

TEST(Integration, PublicPrivateMashup) {
  // §V.D: private friends table + public restaurants table; find
  // restaurants in a friend's zipcode without a plaintext query.
  auto db = MakeDb(4, 2);
  TableSchema friends;
  friends.table_name = "Friends";
  friends.columns = {
      StringColumn("name", 10),
      IntColumn("zipcode", 10000, 99999, kCapExactMatch | kCapRange, "zip"),
  };
  ASSERT_TRUE(db->CreateTable(friends).ok());
  ASSERT_TRUE(db->Insert("Friends",
                         {
                             {Value::Str("ALICE"), Value::Int(93106)},
                             {Value::Str("BOB"), Value::Int(94043)},
                         })
                  .ok());

  std::vector<ColumnSpec> restaurant_cols = {
      IntColumn("zipcode", 10000, 99999, kCapExactMatch | kCapRange, "zip"),
      StringColumn("rname", 12),
  };
  ASSERT_TRUE(db->PublishPublicTable(
                    "Restaurants", restaurant_cols,
                    {
                        {Value::Int(93106), Value::Str("CAMPUSCAFE")},
                        {Value::Int(93106), Value::Str("LAGOONGRILL")},
                        {Value::Int(94043), Value::Str("BAYVIEW")},
                        {Value::Int(10001), Value::Str("EMPIREDELI")},
                    })
                  .ok());
  ASSERT_TRUE(db->SubscribePublicColumn("Restaurants", "zipcode").ok());

  // Look up ALICE's zipcode privately, then filter the public table in
  // share space.
  auto alice = db->Execute(
      Query::Select("Friends").Where(Eq("name", Value::Str("ALICE"))));
  ASSERT_TRUE(alice.ok());
  ASSERT_EQ(alice->rows.size(), 1u);
  const int64_t zip = alice->rows[0][1].AsInt();

  auto nearby = db->QueryPublic("Restaurants", Eq("zipcode", Value::Int(zip)));
  ASSERT_TRUE(nearby.ok()) << nearby.status().ToString();
  std::multiset<std::string> names;
  for (const auto& row : nearby->rows) names.insert(row[1].AsString());
  EXPECT_EQ(names, (std::multiset<std::string>{"CAMPUSCAFE", "LAGOONGRILL"}));

  // Range filter over the public data also works (zip neighbourhood).
  auto range = db->QueryPublic(
      "Restaurants", Between("zipcode", Value::Int(93000), Value::Int(94099)));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->rows.size(), 3u);
}

TEST(Integration, SchemaErrors) {
  auto db = MakeDb();
  ASSERT_TRUE(db->CreateTable(EmployeesSchema()).ok());
  EXPECT_TRUE(db->CreateTable(EmployeesSchema()).IsAlreadyExists());
  EXPECT_TRUE(db->Insert("Nope", {}).IsNotFound());
  // Wrong arity.
  EXPECT_TRUE(
      db->Insert("Employees", {{Value::Str("X")}}).IsInvalidArgument());
  // Out-of-domain value.
  EXPECT_TRUE(db->Insert("Employees", {{Value::Str("X"), Value::Int(-5),
                                        Value::Int(1)}})
                  .IsOutOfRange());
  // Unknown column in a query.
  auto r = db->Execute(
      Query::Select("Employees").Where(Eq("nope", Value::Int(1))));
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(Integration, WorksAcrossThresholds) {
  for (size_t n : {2, 3, 5, 7}) {
    for (size_t k = 2; k <= n; ++k) {
      auto db = MakeDb(n, k);
      InsertEmployees(db.get());
      auto r = db->Execute(Query::Select("Employees")
                               .Where(Between("salary", Value::Int(10000),
                                              Value::Int(40000))));
      ASSERT_TRUE(r.ok()) << "n=" << n << " k=" << k << ": "
                          << r.status().ToString();
      EXPECT_EQ(r->rows.size(), 3u) << "n=" << n << " k=" << k;
      auto s = db->Execute(Query::Select("Employees")
                               .Aggregate(AggregateOp::kSum, "salary"));
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(s->aggregate_int, 235000) << "n=" << n << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace ssdb
