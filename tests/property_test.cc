// Randomized end-to-end property tests: the outsourced database must
// answer exactly like a plaintext reference model under random workloads
// of inserts, updates, deletes, and every query class — across n/k
// configurations, update modes, and both order-preserving constructions.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/outsourced_db.h"
#include "traffic/traffic.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

struct PlainRow {
  std::string name;
  int64_t salary;
  int64_t dept;
};

/// A naive, obviously-correct reference database.
class ReferenceDb {
 public:
  void Insert(const PlainRow& row) { rows_.push_back(row); }

  size_t UpdateSalary(int64_t dept, int64_t new_salary) {
    size_t n = 0;
    for (auto& r : rows_) {
      if (r.dept == dept) {
        r.salary = new_salary;
        ++n;
      }
    }
    return n;
  }

  size_t DeleteDept(int64_t dept) {
    const size_t before = rows_.size();
    rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                               [&](const PlainRow& r) { return r.dept == dept; }),
                rows_.end());
    return before - rows_.size();
  }

  std::multiset<int64_t> SalariesInRange(int64_t lo, int64_t hi) const {
    std::multiset<int64_t> out;
    for (const auto& r : rows_) {
      if (r.salary >= lo && r.salary <= hi) out.insert(r.salary);
    }
    return out;
  }

  std::multiset<std::string> NamesEq(const std::string& name) const {
    std::multiset<std::string> out;
    for (const auto& r : rows_) {
      if (r.name == name) out.insert(r.name);
    }
    return out;
  }

  int64_t SumInRange(int64_t lo, int64_t hi, uint64_t* count) const {
    int64_t sum = 0;
    *count = 0;
    for (const auto& r : rows_) {
      if (r.salary >= lo && r.salary <= hi) {
        sum += r.salary;
        ++*count;
      }
    }
    return sum;
  }

  bool MinMaxMedian(int64_t* mn, int64_t* mx, int64_t* med) const {
    if (rows_.empty()) return false;
    std::vector<int64_t> s;
    for (const auto& r : rows_) s.push_back(r.salary);
    std::sort(s.begin(), s.end());
    *mn = s.front();
    *mx = s.back();
    *med = s[(s.size() - 1) / 2];
    return true;
  }

  std::multiset<std::string> NamesWithPrefix(const std::string& prefix) const {
    std::multiset<std::string> out;
    for (const auto& r : rows_) {
      if (r.name.size() >= prefix.size() &&
          r.name.compare(0, prefix.size(), prefix) == 0) {
        out.insert(r.name);
      }
    }
    return out;
  }

  size_t size() const { return rows_.size(); }

 private:
  std::vector<PlainRow> rows_;
};

struct Config {
  size_t n;
  size_t k;
  bool lazy;
  OpSlotMode mode;
};

class RandomWorkload : public ::testing::TestWithParam<Config> {};

TEST_P(RandomWorkload, MatchesReferenceModel) {
  const Config config = GetParam();
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/config.n, /*k=*/config.k);
  options.client.lazy_updates = config.lazy;
  options.client.op_mode = config.mode;
  auto db_r = OutsourcedDatabase::Create(options);
  ASSERT_TRUE(db_r.ok());
  auto& db = *db_r.value();

  TableSchema schema;
  schema.table_name = "T";
  schema.columns = {StringColumn("name", 6),
                    IntColumn("salary", 0, 100000),
                    IntColumn("dept", 0, 20)};
  ASSERT_TRUE(db.CreateTable(schema).ok());

  ReferenceDb ref;
  Rng rng(config.n * 1000 + config.k * 10 + (config.lazy ? 1 : 0));
  NameGenerator names(42);

  for (int step = 0; step < 120; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.45 || ref.size() == 0) {
      // Insert a small batch.
      const size_t batch = 1 + rng.Uniform(4);
      std::vector<std::vector<Value>> rows;
      for (size_t i = 0; i < batch; ++i) {
        PlainRow row{names.Next(6), rng.UniformInt(0, 100000),
                     rng.UniformInt(0, 20)};
        ref.Insert(row);
        rows.push_back({Value::Str(row.name), Value::Int(row.salary),
                        Value::Int(row.dept)});
      }
      ASSERT_TRUE(db.Insert("T", rows).ok());
    } else if (dice < 0.55) {
      const int64_t dept = rng.UniformInt(0, 20);
      const int64_t new_salary = rng.UniformInt(0, 100000);
      auto updated = db.Update("T", {Eq("dept", Value::Int(dept))}, "salary",
                               Value::Int(new_salary));
      ASSERT_TRUE(updated.ok()) << updated.status().ToString();
      EXPECT_EQ(*updated, ref.UpdateSalary(dept, new_salary)) << "step " << step;
    } else if (dice < 0.62) {
      const int64_t dept = rng.UniformInt(0, 20);
      auto deleted = db.Delete("T", {Eq("dept", Value::Int(dept))});
      ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
      EXPECT_EQ(*deleted, ref.DeleteDept(dept)) << "step " << step;
    } else if (dice < 0.75) {
      // Range query.
      int64_t lo = rng.UniformInt(0, 100000), hi = rng.UniformInt(0, 100000);
      if (lo > hi) std::swap(lo, hi);
      auto r = db.Execute(Query::Select("T").Where(
          Between("salary", Value::Int(lo), Value::Int(hi))));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      std::multiset<int64_t> got;
      for (const auto& row : r->rows) got.insert(row[1].AsInt());
      EXPECT_EQ(got, ref.SalariesInRange(lo, hi)) << "step " << step;
    } else if (dice < 0.85) {
      // Sum aggregate.
      int64_t lo = rng.UniformInt(0, 100000), hi = rng.UniformInt(0, 100000);
      if (lo > hi) std::swap(lo, hi);
      auto r = db.Execute(Query::Select("T")
                              .Where(Between("salary", Value::Int(lo),
                                             Value::Int(hi)))
                              .Aggregate(AggregateOp::kSum, "salary"));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      uint64_t ref_count = 0;
      const int64_t ref_sum = ref.SumInRange(lo, hi, &ref_count);
      EXPECT_EQ(r->aggregate_int, ref_sum) << "step " << step;
      EXPECT_EQ(r->count, ref_count) << "step " << step;
    } else if (dice < 0.93) {
      // Min/Max/Median.
      int64_t mn, mx, med;
      if (!ref.MinMaxMedian(&mn, &mx, &med)) continue;
      auto rmin =
          db.Execute(Query::Select("T").Aggregate(AggregateOp::kMin, "salary"));
      auto rmax =
          db.Execute(Query::Select("T").Aggregate(AggregateOp::kMax, "salary"));
      auto rmed = db.Execute(
          Query::Select("T").Aggregate(AggregateOp::kMedian, "salary"));
      ASSERT_TRUE(rmin.ok() && rmax.ok() && rmed.ok());
      EXPECT_EQ(rmin->aggregate_int, mn) << "step " << step;
      EXPECT_EQ(rmax->aggregate_int, mx) << "step " << step;
      EXPECT_EQ(rmed->aggregate_int, med) << "step " << step;
    } else {
      // Prefix query.
      const std::string probe = names.Next(6).substr(0, 2);
      auto r = db.Execute(Query::Select("T").Where(Prefix("name", probe)));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      std::multiset<std::string> got;
      for (const auto& row : r->rows) got.insert(row[0].AsString());
      EXPECT_EQ(got, ref.NamesWithPrefix(probe)) << "step " << step;
    }
  }
  ASSERT_TRUE(db.Flush().ok());
  // Final full-state check.
  auto all = db.Execute(Query::Select("T"));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RandomWorkload,
    ::testing::Values(Config{3, 2, false, OpSlotMode::kPaperSlots},
                      Config{4, 2, true, OpSlotMode::kPaperSlots},
                      Config{5, 4, false, OpSlotMode::kPaperSlots},
                      Config{5, 5, false, OpSlotMode::kPaperSlots},
                      Config{4, 3, true, OpSlotMode::kRecursive},
                      Config{7, 2, false, OpSlotMode::kRecursive}),
    [](const ::testing::TestParamInfo<Config>& info) {
      const Config& c = info.param;
      return "n" + std::to_string(c.n) + "k" + std::to_string(c.k) +
             (c.lazy ? "lazy" : "eager") +
             (c.mode == OpSlotMode::kRecursive ? "Rec" : "Slots");
    });

TEST(RandomFailures, QueriesSurviveRandomFailureChurn) {
  // Queries keep answering correctly while failure modes churn randomly,
  // as long as k healthy providers remain reachable.
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/6, /*k=*/2);
  auto db_r = OutsourcedDatabase::Create(options);
  ASSERT_TRUE(db_r.ok());
  auto& db = *db_r.value();
  ASSERT_TRUE(db.CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(5, Distribution::kUniform);
  const auto rows = gen.Rows(500);
  ASSERT_TRUE(db.Insert("Employees", rows).ok());

  Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    // Randomly fail up to n-k providers (down or corrupting).
    db.faults().HealAll();
    std::vector<size_t> order = {0, 1, 2, 3, 4, 5};
    rng.Shuffle(&order);
    const size_t failures = rng.Uniform(5);  // 0..4 <= n-k
    for (size_t i = 0; i < failures; ++i) {
      db.faults().Set(order[i], rng.Bernoulli(0.5)
                                    ? FailureMode::kDown
                                    : FailureMode::kCorruptResponse);
    }
    const int64_t lo = rng.UniformInt(0, 150000);
    auto r = db.Execute(Query::Select("Employees")
                            .Where(Between("salary", Value::Int(lo),
                                           Value::Int(lo + 20000))));
    ASSERT_TRUE(r.ok()) << "round " << round << ": " << r.status().ToString();
    size_t expect = 0;
    for (const auto& row : rows) {
      const int64_t s = row[1].AsInt();
      if (s >= lo && s <= lo + 20000) ++expect;
    }
    EXPECT_EQ(r->rows.size(), expect) << "round " << round;
  }
}

TEST(QuorumDegradation, AllSurvivableFailureCountsSucceedWithoutBreakerLeaks) {
  // Property: for every f < n - k + 1 downed providers, every query still
  // succeeds (the quorum degrades onto the spares), and once a downed
  // provider's breaker opens it is never contacted again beyond the
  // half-open probe budget — with the cooldown longer than the run, that
  // budget is zero, so its call count must freeze after the opening query.
  constexpr size_t n = 5, k = 2;
  EmployeeGenerator gen(17, Distribution::kUniform);
  const auto rows = gen.Rows(300);

  for (size_t f = 0; f < n - k + 1; ++f) {
    OutsourcedDbOptions options;
    options.topology = Topology(/*m=*/1, /*n_per=*/n, /*k=*/k);
    options.client.resilience.breaker.enabled = true;
    options.client.resilience.breaker.failures_to_open = 1;
    options.client.resilience.breaker.open_cooldown_us = 1ull << 60;
    auto db_r = OutsourcedDatabase::Create(options);
    ASSERT_TRUE(db_r.ok());
    auto& db = *db_r.value();
    ASSERT_TRUE(db.CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
    ASSERT_TRUE(db.Insert("Employees", rows).ok());

    for (size_t i = 0; i < f; ++i) db.faults().Down(i);

    // Query 1 may contact each downed provider once; that failure opens
    // its breaker.
    auto first = db.Execute(Query::Select("Employees").Aggregate(AggregateOp::kCount));
    ASSERT_TRUE(first.ok()) << "f=" << f << ": " << first.status().ToString();
    EXPECT_EQ(first->count, rows.size()) << "f=" << f;
    std::vector<uint64_t> calls_after_first(n);
    for (size_t i = 0; i < n; ++i) {
      calls_after_first[i] = db.network().stats(i).calls;
    }

    Rng rng(1000 + f);
    for (int round = 0; round < 8; ++round) {
      const int64_t lo = rng.UniformInt(0, 150000);
      auto r = db.Execute(Query::Select("Employees")
                              .Where(Between("salary", Value::Int(lo),
                                             Value::Int(lo + 30000))));
      ASSERT_TRUE(r.ok()) << "f=" << f << " round " << round << ": "
                          << r.status().ToString();
      size_t expect = 0;
      for (const auto& row : rows) {
        const int64_t s = row[1].AsInt();
        if (s >= lo && s <= lo + 30000) ++expect;
      }
      EXPECT_EQ(r->rows.size(), expect) << "f=" << f << " round " << round;
    }
    for (size_t i = 0; i < f; ++i) {
      EXPECT_EQ(db.network().stats(i).calls, calls_after_first[i])
          << "breaker-open provider " << i << " was contacted again (f=" << f
          << ")";
    }

    // Healing (which resets the scoreboard) readmits the providers.
    db.faults().HealAll();
    auto after = db.Execute(Query::Select("Employees").Aggregate(AggregateOp::kCount));
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->count, rows.size());
    if (f > 0) {
      EXPECT_GT(db.network().stats(0).calls, calls_after_first[0])
          << "healed provider 0 never readmitted (f=" << f << ")";
    }
  }
}

TEST(TrafficConservation, HoldsAcrossRandomAdmissionConfigs) {
  // Open-loop accounting is closed under any admission configuration:
  // after the drain every offered request is exactly one of completed,
  // failed or rejected; the global row is the tenant sum; and the
  // latency histograms hold exactly one observation per completion,
  // mirrored under tenant="_all".
  Rng dice(0xC0FFEE);
  for (int config = 0; config < 3; ++config) {
    OutsourcedDbOptions options;
    options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
    auto db = std::move(OutsourcedDatabase::Create(options)).value();

    std::vector<TenantSpec> tenants(2);
    for (size_t t = 0; t < tenants.size(); ++t) {
      TenantSpec& spec = tenants[t];
      spec.name = "t" + std::to_string(t);
      spec.rows = 16 + dice.Uniform(16);
      spec.requests = 20 + dice.Uniform(20);
      spec.arrival_qps = 20.0 + static_cast<double>(dice.Uniform(400));
      if (dice.Bernoulli(0.5)) spec.max_queue_depth = 1 + dice.Uniform(4);
      if (dice.Bernoulli(0.5)) {
        spec.quota_qps = 5.0 + static_cast<double>(dice.Uniform(50));
      }
    }
    TrafficOptions traffic_options;
    traffic_options.seed = dice.Next();
    TrafficHarness harness(db.get(), tenants, traffic_options);
    ASSERT_TRUE(harness.Setup().ok());
    auto report = harness.Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    uint64_t offered = 0, completed = 0, failed = 0, rejected = 0;
    for (const TenantTraffic& t : report.value().tenants) {
      EXPECT_EQ(t.offered, t.completed + t.failed + t.rejected())
          << "config " << config << " tenant " << t.tenant;
      EXPECT_EQ(db->metrics()
                    .GetHistogram("ssdb_traffic_latency_us",
                                  {{"tenant", t.tenant}})
                    ->count(),
                t.completed);
      offered += t.offered;
      completed += t.completed;
      failed += t.failed;
      rejected += t.rejected();
    }
    const TenantTraffic& global = report.value().global;
    EXPECT_EQ(global.offered, offered) << "config " << config;
    EXPECT_EQ(global.completed, completed);
    EXPECT_EQ(global.failed, failed);
    EXPECT_EQ(global.rejected(), rejected);
    EXPECT_EQ(db->metrics()
                  .GetHistogram("ssdb_traffic_latency_us", {{"tenant", "_all"}})
                  ->count(),
              completed);
  }
}

}  // namespace
}  // namespace ssdb
