// Tests for the resilient provider RPC layer (net/resilience.h):
// backoff schedule arithmetic, deadline capping, hedged-read races,
// scoreboard EWMA / circuit-breaker transitions, and the fault
// controller's interactions with the scoreboard.

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/fault_controller.h"
#include "net/network.h"
#include "net/resilience.h"

namespace ssdb {
namespace {

/// Endpoint that echoes the request with a fixed-size padding.
class EchoEndpoint : public ProviderEndpoint {
 public:
  explicit EchoEndpoint(size_t pad, std::string name = "echo")
      : pad_(pad), name_(std::move(name)) {}
  Result<Buffer> Handle(Slice request) override {
    Buffer out;
    out.Append(request);
    for (size_t i = 0; i < pad_; ++i) out.PutU8(0);
    return out;
  }
  std::string name() const override { return name_; }

 private:
  size_t pad_;
  std::string name_;
};

/// latency 1000us, 10 B/us; a 10-byte request to EchoEndpoint(90) costs
/// 2*1000 + (10+100)/10 = 2011us per round trip.
NetworkCostModel TestModel() {
  NetworkCostModel model;
  model.latency_us = 1000;
  model.bandwidth_bytes_per_us = 10.0;
  return model;
}
constexpr uint64_t kRtt = 2011;

Buffer TenByteRequest() {
  Buffer req;
  for (int i = 0; i < 10; ++i) req.PutU8(1);
  return req;
}

std::vector<Buffer> Requests(size_t n) {
  std::vector<Buffer> reqs;
  for (size_t i = 0; i < n; ++i) reqs.push_back(TenByteRequest());
  return reqs;
}

// --- RetryPolicy arithmetic ----------------------------------------------

TEST(RetryPolicy, ExponentialScheduleWithoutJitter) {
  RetryPolicy retry;
  retry.initial_backoff_us = 100;
  retry.multiplier = 2.0;
  retry.max_backoff_us = 350;
  EXPECT_EQ(retry.BackoffUs(0, 0), 0u);
  EXPECT_EQ(retry.BackoffUs(1, 0), 100u);
  EXPECT_EQ(retry.BackoffUs(2, 0), 200u);
  EXPECT_EQ(retry.BackoffUs(3, 0), 350u);  // 400 capped at max_backoff_us
  EXPECT_EQ(retry.BackoffUs(4, 0), 350u);
  // The un-jittered schedule is provider-independent.
  EXPECT_EQ(retry.BackoffUs(2, 0), retry.BackoffUs(2, 7));
}

TEST(RetryPolicy, JitterIsBoundedAndDeterministic) {
  RetryPolicy retry;
  retry.initial_backoff_us = 1000;
  retry.multiplier = 1.0;
  retry.jitter = 0.5;
  for (size_t provider = 0; provider < 4; ++provider) {
    const uint64_t b = retry.BackoffUs(1, provider);
    EXPECT_GE(b, 500u);
    EXPECT_LE(b, 1000u);
    // Pure function of (seed, provider, retry number).
    EXPECT_EQ(b, retry.BackoffUs(1, provider));
  }
  // Distinct providers draw from distinct jitter streams.
  EXPECT_NE(retry.BackoffUs(1, 0), retry.BackoffUs(1, 1));
}

TEST(ResilientQuorum, RetriesChargeBackoffsAndRoundTripsToClock) {
  Network net(TestModel());
  net.AddProvider(std::make_shared<EchoEndpoint>(90, "p0"));
  net.AddProvider(std::make_shared<EchoEndpoint>(90, "p1"));
  net.SetFailure(0, FailureMode::kDown);

  ResiliencePolicy policy;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_us = 100;
  policy.retry.multiplier = 2.0;
  policy.retry.jitter = 0.0;

  QuorumResult q = RunResilientQuorum(&net, {0, 1}, Requests(2),
                                      /*desired=*/2, /*minimum=*/1,
                                      /*order=*/{}, policy, nullptr);
  ASSERT_TRUE(q.status.ok());
  ASSERT_EQ(q.responses.size(), 1u);
  EXPECT_EQ(q.responses[0].slot, 1u);
  // Leg 0 (down, latency charged per attempt): 1000 + 100 + 1000 + 200 +
  // 1000 = 3300us; leg 1: one healthy 2011us round trip. The legs ran in
  // parallel, so the clock advances by the slower chain.
  EXPECT_EQ(q.clock_advance_us, 3300u);
  EXPECT_EQ(net.clock().now_us(), 3300u);
  ASSERT_EQ(q.legs.size(), 4u);  // 3 attempts at p0 + 1 at p1
  EXPECT_EQ(net.stats(0).calls, 3u);
  EXPECT_EQ(net.stats(0).failures, 3u);
  uint64_t retries = 0;
  for (const ResilientLeg& leg : q.legs) {
    if (leg.attempt > 1) ++retries;
  }
  EXPECT_EQ(retries, 2u);
  EXPECT_EQ(q.fanout_rounds, 1u);
}

// --- Deadlines ------------------------------------------------------------

TEST(Deadline, OverrunningLegChargesExactlyTheDeadline) {
  Network net(TestModel());
  const size_t p = net.AddProvider(std::make_shared<EchoEndpoint>(90));
  CallTrace trace;
  auto r = net.Call(p, TenByteRequest().AsSlice(), &trace,
                    /*deadline_us=*/1500);
  EXPECT_TRUE(r.status().IsDeadlineExceeded());
  EXPECT_TRUE(trace.deadline_exceeded);
  EXPECT_EQ(trace.elapsed_us, 1500u);
  EXPECT_EQ(net.clock().now_us(), 1500u);
  // The request went out; the response never reached the client.
  EXPECT_EQ(net.stats(p).bytes_sent, 10u);
  EXPECT_EQ(net.stats(p).bytes_received, 0u);
  EXPECT_EQ(net.stats(p).failures, 1u);

  // A deadline with headroom changes nothing.
  auto ok = net.Call(p, TenByteRequest().AsSlice(), &trace,
                     /*deadline_us=*/kRtt + 1);
  EXPECT_TRUE(ok.ok());
  EXPECT_FALSE(trace.deadline_exceeded);
  EXPECT_EQ(trace.elapsed_us, kRtt);
}

TEST(Deadline, CapsFailurePathCharges) {
  Network net(TestModel());
  const size_t p = net.AddProvider(std::make_shared<EchoEndpoint>(0));
  net.SetFailure(p, FailureMode::kDown);
  CallTrace trace;
  // Down-provider timeout (one latency = 1000us) overruns a 500us
  // deadline: the client sees a timeout at the deadline.
  auto r = net.Call(p, Slice("x"), &trace, /*deadline_us=*/500);
  EXPECT_TRUE(r.status().IsDeadlineExceeded());
  EXPECT_EQ(trace.elapsed_us, 500u);
  // With headroom the original Unavailable surfaces at full charge.
  auto r2 = net.Call(p, Slice("x"), &trace, /*deadline_us=*/2000);
  EXPECT_TRUE(r2.status().IsUnavailable());
  EXPECT_EQ(trace.elapsed_us, 1000u);
}

// --- New failure modes ----------------------------------------------------

TEST(FailureModes, SlowMultipliesTheRoundTrip) {
  Network net(TestModel());
  const size_t p = net.AddProvider(std::make_shared<EchoEndpoint>(90));
  net.SetFailure(p, FailureMode::kSlow, 3.0);
  auto r = net.Call(p, TenByteRequest().AsSlice());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(net.clock().now_us(), 3 * kRtt);
  // Bytes are unaffected; only time stretches.
  EXPECT_EQ(net.stats(p).bytes_received, 100u);
}

TEST(FailureModes, FlakyTogglesBetweenGoodAndBadPhases) {
  Network net(TestModel());
  const size_t p = net.AddProvider(std::make_shared<EchoEndpoint>(0));
  // Phase-flip probability 1: every call flips the link, so calls
  // alternate bad, good, bad, ... starting from the healthy state.
  net.SetFailure(p, FailureMode::kFlaky, 1.0);
  EXPECT_TRUE(net.Call(p, Slice("x")).status().IsUnavailable());
  EXPECT_TRUE(net.Call(p, Slice("x")).ok());
  EXPECT_TRUE(net.Call(p, Slice("x")).status().IsUnavailable());
  EXPECT_EQ(net.stats(p).failures, 2u);
  // Re-arming the fault resets the phase.
  net.SetFailure(p, FailureMode::kFlaky, 0.0);
  EXPECT_TRUE(net.Call(p, Slice("x")).ok());
}

// --- Hedged reads ---------------------------------------------------------

TEST(Hedging, HedgeWinsAgainstAStraggler) {
  Network net(TestModel());
  for (int i = 0; i < 3; ++i) {
    net.AddProvider(std::make_shared<EchoEndpoint>(90));
  }
  net.SetFailure(0, FailureMode::kSlow, 10.0);  // 20110us round trips

  ResiliencePolicy policy;
  policy.hedge.enabled = true;
  policy.hedge.threshold_us = 5000;

  QuorumResult q = RunResilientQuorum(&net, {0, 1, 2}, Requests(3),
                                      /*desired=*/2, /*minimum=*/2,
                                      /*order=*/{}, policy, nullptr);
  ASSERT_TRUE(q.status.ok());
  EXPECT_EQ(q.hedges, 1u);
  ASSERT_EQ(q.responses.size(), 2u);
  // The straggler's slot was won by the hedge to spare position 2.
  EXPECT_EQ(q.responses[0].slot, 2u);
  EXPECT_EQ(q.responses[1].slot, 1u);
  // Effective completion: hedge launched at the 5000us threshold plus one
  // healthy round trip; the cancelled straggler leg's charge is capped.
  EXPECT_EQ(q.clock_advance_us, 5000u + kRtt);
  // Both legs' bytes remain charged (the requests really went out).
  EXPECT_EQ(net.stats(0).bytes_received, 100u);
  EXPECT_EQ(net.stats(2).bytes_received, 100u);
  uint64_t hedge_legs = 0;
  for (const ResilientLeg& leg : q.legs) {
    if (leg.hedge) ++hedge_legs;
  }
  EXPECT_EQ(hedge_legs, 1u);
  EXPECT_EQ(q.fanout_rounds, 2u);
}

TEST(Hedging, OriginalWinsWhenHedgeIsSlower) {
  Network net(TestModel());
  for (int i = 0; i < 3; ++i) {
    net.AddProvider(std::make_shared<EchoEndpoint>(90));
  }
  net.SetFailure(0, FailureMode::kSlow, 3.0);  // 6033us: past threshold
  net.SetFailure(2, FailureMode::kSlow, 2.0);  // hedge costs 4022us

  ResiliencePolicy policy;
  policy.hedge.enabled = true;
  policy.hedge.threshold_us = 5000;

  QuorumResult q = RunResilientQuorum(&net, {0, 1, 2}, Requests(3),
                                      /*desired=*/2, /*minimum=*/2,
                                      /*order=*/{}, policy, nullptr);
  ASSERT_TRUE(q.status.ok());
  EXPECT_EQ(q.hedges, 1u);
  ASSERT_EQ(q.responses.size(), 2u);
  // Hedge completes at 5000 + 4022 = 9022us; the original straggler at
  // 3 * 2011 = 6033us keeps its slot and the hedge is cancelled.
  EXPECT_EQ(q.responses[0].slot, 0u);
  EXPECT_EQ(q.responses[1].slot, 1u);
  EXPECT_EQ(q.clock_advance_us, 3 * kRtt);
}

// --- Scoreboard / breaker -------------------------------------------------

TEST(Scoreboard, EwmaTracksSuccessfulRoundTrips) {
  ProviderScoreboard board;
  BreakerPolicy breaker;
  board.RecordOutcome(0, true, 1000, breaker, 0);
  EXPECT_DOUBLE_EQ(board.Snapshot(0).ewma_us, 1000.0);
  board.RecordOutcome(0, true, 2000, breaker, 0);
  // alpha = 0.25: 0.25 * 2000 + 0.75 * 1000.
  EXPECT_DOUBLE_EQ(board.Snapshot(0).ewma_us, 1250.0);
  EXPECT_EQ(board.Snapshot(0).samples, 2u);
  // Failures never pollute the latency estimate.
  board.RecordOutcome(0, false, 999999, breaker, 0);
  EXPECT_DOUBLE_EQ(board.Snapshot(0).ewma_us, 1250.0);
  EXPECT_EQ(board.Snapshot(0).consecutive_failures, 1u);
}

TEST(Scoreboard, BreakerOpensHalfOpensAndCloses) {
  ProviderScoreboard board;
  BreakerPolicy breaker;
  breaker.enabled = true;
  breaker.failures_to_open = 2;
  breaker.open_cooldown_us = 1000;
  breaker.half_open_probes = 1;

  EXPECT_TRUE(board.AllowRequest(0, breaker, 0));
  board.RecordOutcome(0, false, 100, breaker, 0);
  EXPECT_TRUE(board.AllowRequest(0, breaker, 0));
  board.RecordOutcome(0, false, 100, breaker, 0);
  // Two consecutive failures: open until t=1000.
  EXPECT_EQ(board.Snapshot(0).state, ProviderScoreboard::BreakerState::kOpen);
  EXPECT_FALSE(board.AllowRequest(0, breaker, 500));
  // Cooldown over: half-open with a one-probe budget.
  EXPECT_TRUE(board.AllowRequest(0, breaker, 1001));
  EXPECT_EQ(board.Snapshot(0).state,
            ProviderScoreboard::BreakerState::kHalfOpen);
  EXPECT_FALSE(board.AllowRequest(0, breaker, 1001));  // budget spent
  // The probe succeeds: closed again.
  board.RecordOutcome(0, true, 100, breaker, 1001);
  EXPECT_EQ(board.Snapshot(0).state, ProviderScoreboard::BreakerState::kClosed);
  EXPECT_TRUE(board.AllowRequest(0, breaker, 1001));
}

TEST(Scoreboard, FailedProbeReopensTheBreaker) {
  ProviderScoreboard board;
  BreakerPolicy breaker;
  breaker.enabled = true;
  breaker.failures_to_open = 1;
  breaker.open_cooldown_us = 1000;
  board.RecordOutcome(0, false, 100, breaker, 0);
  EXPECT_TRUE(board.AllowRequest(0, breaker, 1500));  // half-open probe
  board.RecordOutcome(0, false, 100, breaker, 1500);
  EXPECT_EQ(board.Snapshot(0).state, ProviderScoreboard::BreakerState::kOpen);
  EXPECT_EQ(board.Snapshot(0).open_until_us, 2500u);
  EXPECT_FALSE(board.AllowRequest(0, breaker, 2000));
}

TEST(Scoreboard, RankedPositionsOrdersByHealth) {
  ProviderScoreboard board;
  BreakerPolicy breaker;
  breaker.enabled = true;
  breaker.failures_to_open = 1;
  breaker.open_cooldown_us = 1000000;
  board.RecordOutcome(0, true, 500, breaker, 0);
  board.RecordOutcome(1, true, 100, breaker, 0);
  board.RecordOutcome(2, false, 100, breaker, 0);  // breaker opens
  // Position 3 has no history (optimistic); then by ascending EWMA; the
  // breaker-open provider goes last.
  EXPECT_EQ(board.RankedPositions(4, 1),
            (std::vector<size_t>{3, 1, 0, 2}));
}

TEST(Scoreboard, HedgeThresholdFromEwmaQuantile) {
  ProviderScoreboard board;
  BreakerPolicy breaker;
  HedgePolicy hedge;
  hedge.enabled = true;
  hedge.quantile = 0.5;
  hedge.multiplier = 2.0;
  hedge.min_samples = 3;
  // Too little history: no hedging.
  board.RecordOutcome(0, true, 1000, breaker, 0);
  board.RecordOutcome(1, true, 2000, breaker, 0);
  EXPECT_EQ(board.HedgeThresholdUs(hedge), 0u);
  board.RecordOutcome(2, true, 3000, breaker, 0);
  // Median EWMA = 2000, times the safety multiplier.
  EXPECT_EQ(board.HedgeThresholdUs(hedge), 4000u);
  // A fixed threshold short-circuits the estimate.
  hedge.threshold_us = 123;
  EXPECT_EQ(board.HedgeThresholdUs(hedge), 123u);
}

// --- Breaker inside the quorum path --------------------------------------

TEST(ResilientQuorum, BreakerSkipsOpenProvidersAndRecoversAfterReset) {
  Network net(TestModel());
  for (int i = 0; i < 3; ++i) {
    net.AddProvider(std::make_shared<EchoEndpoint>(90));
  }
  net.SetFailure(0, FailureMode::kDown);

  ProviderScoreboard board;
  ResiliencePolicy policy;
  policy.breaker.enabled = true;
  policy.breaker.failures_to_open = 1;
  policy.breaker.open_cooldown_us = 1000000000;  // effectively forever

  // First quorum: position 0 fails, spare position 2 replaces it, and the
  // recorded failure opens provider 0's breaker.
  QuorumResult q1 = RunResilientQuorum(&net, {0, 1, 2}, Requests(3), 2, 2,
                                       {}, policy, &board);
  ASSERT_TRUE(q1.status.ok());
  EXPECT_EQ(net.stats(0).calls, 1u);
  EXPECT_EQ(board.Snapshot(0).state, ProviderScoreboard::BreakerState::kOpen);

  // Second quorum: provider 0 is never contacted (breaker skip).
  QuorumResult q2 = RunResilientQuorum(&net, {0, 1, 2}, Requests(3), 2, 2,
                                       {}, policy, &board);
  ASSERT_TRUE(q2.status.ok());
  EXPECT_EQ(net.stats(0).calls, 1u);
  EXPECT_GE(q2.breaker_skips, 1u);

  // Heal + scoreboard reset: provider 0 reappears in the quorum.
  net.SetFailure(0, FailureMode::kHealthy);
  board.Reset();
  QuorumResult q3 = RunResilientQuorum(&net, {0, 1, 2}, Requests(3), 2, 2,
                                       {}, policy, &board);
  ASSERT_TRUE(q3.status.ok());
  EXPECT_EQ(net.stats(0).calls, 2u);
  EXPECT_EQ(q3.breaker_skips, 0u);
}

// --- Fault controller -----------------------------------------------------

TEST(FaultController, SlowAndFlakySettersExposeModeAndParam) {
  Network net(TestModel());
  net.AddProvider(std::make_shared<EchoEndpoint>(0));
  FaultController faults(&net);
  faults.Slow(0, 4.0);
  EXPECT_EQ(faults.mode(0), FailureMode::kSlow);
  EXPECT_DOUBLE_EQ(faults.param(0), 4.0);
  faults.Flaky(0, 0.25);
  EXPECT_EQ(faults.mode(0), FailureMode::kFlaky);
  EXPECT_DOUBLE_EQ(faults.param(0), 0.25);
}

TEST(FaultController, HealAllResetsTheScoreboard) {
  Network net(TestModel());
  net.AddProvider(std::make_shared<EchoEndpoint>(0));
  FaultController faults(&net);
  ProviderScoreboard board;
  faults.AttachScoreboard(&board);
  BreakerPolicy breaker;
  breaker.enabled = true;
  breaker.failures_to_open = 1;
  board.RecordOutcome(0, false, 100, breaker, 0);
  ASSERT_EQ(board.Snapshot(0).state, ProviderScoreboard::BreakerState::kOpen);
  faults.HealAll();
  EXPECT_EQ(board.Snapshot(0).state, ProviderScoreboard::BreakerState::kClosed);
  EXPECT_EQ(board.Snapshot(0).samples, 0u);
}

TEST(ScopedFault, HealsOnExceptionUnwind) {
  Network net(TestModel());
  net.AddProvider(std::make_shared<EchoEndpoint>(0));
  FaultController faults(&net);
  try {
    ScopedFault outage(faults, 0, FailureMode::kDown);
    EXPECT_EQ(faults.mode(0), FailureMode::kDown);
    throw std::runtime_error("test body exploded");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(faults.mode(0), FailureMode::kHealthy);
}

TEST(ScopedFault, RestoresThePreviousFaultOnExit) {
  Network net(TestModel());
  net.AddProvider(std::make_shared<EchoEndpoint>(0));
  FaultController faults(&net);
  faults.Drop(0, 0.25);
  {
    ScopedFault outage(faults, 0, FailureMode::kDown);
    EXPECT_EQ(faults.mode(0), FailureMode::kDown);
  }
  EXPECT_EQ(faults.mode(0), FailureMode::kDropSome);
  EXPECT_DOUBLE_EQ(faults.param(0), 0.25);
}

}  // namespace
}  // namespace ssdb
