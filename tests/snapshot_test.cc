// Tests for provider snapshot persistence: a provider can serialize its
// full state, "crash", restart from the snapshot, and keep serving.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/outsourced_db.h"
#include "storage/share_table.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

TEST(ShareTableSnapshot, RoundTripWithIndexes) {
  std::vector<ProviderColumnLayout> layout = {{true, true}, {false, false}};
  ShareTable table(layout);
  for (uint64_t i = 1; i <= 50; ++i) {
    StoredRow row;
    row.row_id = i;
    row.tag = i * 7;
    row.cells.resize(2);
    row.cells[0].secret = i;
    row.cells[0].det = i % 5;
    row.cells[0].op = i * 100;
    row.cells[1].secret = i * 3;
    ASSERT_TRUE(table.Insert(std::move(row)).ok());
  }
  Buffer buf;
  table.SaveSnapshot(&buf);

  Decoder dec(buf.AsSlice());
  auto loaded = ShareTable::LoadSnapshot(&dec);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 50u);
  // Indexes were rebuilt.
  EXPECT_EQ(loaded->ExactMatch(0, 2)->size(), 10u);
  EXPECT_EQ(loaded->RangeScan(0, 1000, 2000)->size(), 11u);
  auto row = loaded->Get(17);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)->tag, 17u * 7);
}

TEST(ShareTableSnapshot, CorruptSnapshotRejected) {
  ShareTable table({{false, false}});
  StoredRow row;
  row.row_id = 1;
  row.cells.resize(1);
  ASSERT_TRUE(table.Insert(std::move(row)).ok());
  Buffer buf;
  table.SaveSnapshot(&buf);

  // Bad magic.
  std::vector<uint8_t> bytes(buf.data(), buf.data() + buf.size());
  bytes[0] ^= 0xFF;
  Decoder bad_magic{Slice(bytes)};
  EXPECT_TRUE(ShareTable::LoadSnapshot(&bad_magic).status().IsCorruption());

  // Truncation.
  Decoder truncated{Slice(buf.data(), buf.size() - 2)};
  EXPECT_FALSE(ShareTable::LoadSnapshot(&truncated).ok());
}

TEST(ProviderSnapshot, CrashAndRestartKeepsServing) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/3, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(42, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("Employees", gen.Rows(200)).ok());

  // Also exercise public tables + share index in the snapshot.
  std::vector<ColumnSpec> pub_cols = {
      IntColumn("zip", 10000, 99999, kCapExactMatch | kCapRange, "zip")};
  ASSERT_TRUE(db->PublishPublicTable("Zips", pub_cols,
                                     {{Value::Int(90210)}, {Value::Int(10001)}})
                  .ok());
  ASSERT_TRUE(db->SubscribePublicColumn("Zips", "zip").ok());

  auto before = db->Execute(Query::Select("Employees")
                                .Where(Between("salary", Value::Int(50000),
                                               Value::Int(60000))));
  ASSERT_TRUE(before.ok());

  // Snapshot provider 1, wipe it by loading the snapshot into a fresh
  // in-place state, and re-run the query.
  Buffer snapshot;
  db->provider(1).SaveSnapshot(&snapshot);
  ASSERT_TRUE(db->provider(1).LoadSnapshot(snapshot.AsSlice()).ok());

  auto after = db->Execute(Query::Select("Employees")
                               .Where(Between("salary", Value::Int(50000),
                                              Value::Int(60000))));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows.size(), before->rows.size());

  auto pub = db->QueryPublic("Zips", Eq("zip", Value::Int(90210)));
  ASSERT_TRUE(pub.ok()) << pub.status().ToString();
  EXPECT_EQ(pub->rows.size(), 1u);
}

TEST(ProviderSnapshot, FileRoundTrip) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/2, /*k=*/2);
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  ASSERT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(7, Distribution::kUniform);
  ASSERT_TRUE(db->Insert("Employees", gen.Rows(50)).ok());

  const std::string path = "/tmp/ssdb_provider_snapshot_test.bin";
  ASSERT_TRUE(db->provider(0).SaveSnapshotToFile(path).ok());
  ASSERT_TRUE(db->provider(0).LoadSnapshotFromFile(path).ok());
  std::remove(path.c_str());

  auto r = db->Execute(Query::Select("Employees").Aggregate(AggregateOp::kCount));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->count, 50u);

  EXPECT_TRUE(db->provider(0)
                  .LoadSnapshotFromFile("/tmp/ssdb_no_such_snapshot.bin")
                  .IsNotFound());
}

}  // namespace
}  // namespace ssdb
