// Telemetry subsystem tests: registry/histogram unit behaviour, exact
// reconciliation of registry series against ChannelStats and QueryTrace
// on every query shape, span-tree agreement with the per-query trace,
// and bit-identical exports across fanout_threads counts and same-seed
// runs.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

// --- MetricHistogram / MetricsRegistry unit behaviour ------------------

TEST(MetricHistogram, BucketIndexIsBase2Log) {
  // Bucket 0 holds value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(MetricHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(MetricHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(MetricHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(MetricHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(MetricHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(MetricHistogram::BucketIndex(1023), 10u);
  EXPECT_EQ(MetricHistogram::BucketIndex(1024), 11u);
  EXPECT_EQ(MetricHistogram::BucketIndex(~0ULL), 64u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(64), ~0ULL);
}

TEST(MetricHistogram, ValueAtQuantileIsBucketUpperBoundOfCeilRank) {
  MetricHistogram h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);  // empty histogram
  // Samples 1..100: sample v lands in bucket floor(log2 v)+1, so the
  // ceil(q*n)-th sample's bucket upper bound is the reported quantile.
  for (uint64_t v = 1; v <= 100; ++v) h.Observe(v);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 1u);    // rank clamps to 1 -> value 1
  EXPECT_EQ(h.ValueAtQuantile(0.01), 1u);   // rank 1
  EXPECT_EQ(h.ValueAtQuantile(0.5), 63u);   // rank 50 -> bucket [32,64)
  EXPECT_EQ(h.ValueAtQuantile(0.99), 127u);  // rank 99 -> bucket [64,128)
  EXPECT_EQ(h.ValueAtQuantile(1.0), 127u);
  EXPECT_EQ(h.ValueAtQuantile(2.0), 127u);   // q clamps to 1
  // All-zero samples sit in bucket 0.
  MetricHistogram zeros;
  zeros.Observe(0);
  zeros.Observe(0);
  EXPECT_EQ(zeros.ValueAtQuantile(0.999), 0u);
}

TEST(MetricsRegistry, HandlesAreStableAndResetKeepsRegistrations) {
  MetricsRegistry registry;
  MetricCounter* a = registry.GetCounter("ssdb_test_total",
                                         {{"provider", "0"}});
  MetricCounter* b = registry.GetCounter("ssdb_test_total",
                                         {{"provider", "1"}});
  EXPECT_NE(a, b);
  a->Inc(3);
  b->Inc(4);
  EXPECT_EQ(registry.CounterValue("ssdb_test_total", {{"provider", "0"}}),
            3u);
  EXPECT_EQ(registry.CounterTotal("ssdb_test_total"), 7u);
  // Same (name, labels) -> same handle, regardless of label order.
  EXPECT_EQ(registry.GetCounter("ssdb_test_total", {{"provider", "0"}}), a);

  MetricHistogram* h = registry.GetHistogram("ssdb_test_us");
  h->Observe(0);
  h->Observe(5);
  h->Observe(5);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 10u);
  EXPECT_EQ(h->bucket(MetricHistogram::BucketIndex(5)), 2u);

  registry.Reset();
  // Values zeroed, handles still live and still registered.
  EXPECT_EQ(a->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  a->Inc();
  EXPECT_EQ(registry.CounterTotal("ssdb_test_total"), 1u);
}

TEST(MetricsRegistry, LabelFilteredCounterTotalSelectsOneStratum) {
  // Regression: metrics that keep per-tenant series AND a tenant="_all"
  // aggregate double-count under the unfiltered CounterTotal. The
  // label-filtered overload reads one stratum.
  MetricsRegistry registry;
  registry.GetCounter("ssdb_strata_total", {{"tenant", "alpha"}})->Inc(3);
  registry.GetCounter("ssdb_strata_total", {{"tenant", "beta"}})->Inc(4);
  registry.GetCounter("ssdb_strata_total", {{"tenant", "_all"}})->Inc(7);
  EXPECT_EQ(registry.CounterTotal("ssdb_strata_total"), 14u);  // both strata
  EXPECT_EQ(registry.CounterTotal("ssdb_strata_total", "tenant", "_all"), 7u);
  EXPECT_EQ(registry.CounterTotal("ssdb_strata_total", "tenant", "alpha"), 3u);
  // Several series may share the filter value (per-reason breakdowns).
  registry.GetCounter("ssdb_strata_total",
                      {{"tenant", "alpha"}, {"reason", "quota"}})
      ->Inc(2);
  EXPECT_EQ(registry.CounterTotal("ssdb_strata_total", "tenant", "alpha"), 5u);
  // No matching label value (or an unregistered name) reads zero.
  EXPECT_EQ(registry.CounterTotal("ssdb_strata_total", "tenant", "gamma"), 0u);
  EXPECT_EQ(registry.CounterTotal("ssdb_missing_total", "tenant", "_all"), 0u);
}

TEST(MetricsRegistry, ExportsAreSortedAndWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("ssdb_z_total")->Inc(9);
  registry.GetCounter("ssdb_a_total", {{"kind", "range"}})->Inc(2);
  registry.GetHistogram("ssdb_lat_us")->Observe(3);

  const std::string prom = registry.ExportPrometheus();
  EXPECT_NE(prom.find("# TYPE ssdb_a_total counter"), std::string::npos);
  EXPECT_NE(prom.find("ssdb_a_total{kind=\"range\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("ssdb_z_total 9"), std::string::npos);
  EXPECT_NE(prom.find("ssdb_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  // Series are emitted in sorted order: ssdb_a_total before ssdb_z_total.
  EXPECT_LT(prom.find("ssdb_a_total"), prom.find("ssdb_z_total"));

  const std::string json = registry.ExportJson();
  EXPECT_NE(json.find("\"name\": \"ssdb_a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"range\""), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 3"), std::string::npos);
}

// --- Full-deployment reconciliation ------------------------------------

/// A two-table deployment (Employees + Managers on a shared eid domain)
/// so the workload below can cover exact / range / aggregate / join.
std::unique_ptr<OutsourcedDatabase> MakeTwoTableDb(size_t fanout_threads) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
  options.fanout_threads = fanout_threads;
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  TableSchema employees;
  employees.table_name = "Employees";
  employees.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid"),
      IntColumn("salary", 0, 200000),
      IntColumn("dept", 0, 50),
  };
  TableSchema managers;
  managers.table_name = "Managers";
  managers.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid"),
      IntColumn("level", 0, 5),
  };
  EXPECT_TRUE(db->CreateTable(employees).ok());
  EXPECT_TRUE(db->CreateTable(managers).ok());
  Rng rng(41);
  std::vector<std::vector<Value>> emp_rows;
  for (int64_t i = 0; i < 200; ++i) {
    emp_rows.push_back({Value::Int(i), Value::Int(rng.UniformInt(0, 200000)),
                        Value::Int(rng.UniformInt(0, 50))});
  }
  EXPECT_TRUE(db->Insert("Employees", emp_rows).ok());
  std::vector<std::vector<Value>> mgr_rows;
  for (int64_t i = 0; i < 20; ++i) {
    mgr_rows.push_back({Value::Int(i * 10), Value::Int(rng.UniformInt(0, 5))});
  }
  EXPECT_TRUE(db->Insert("Managers", mgr_rows).ok());
  return db;
}

/// Runs the fixed exact / range / aggregate / join workload and returns
/// every trace. Fails the test on any query error.
std::vector<QueryTrace> RunMixedWorkload(OutsourcedDatabase& db) {
  std::vector<QueryTrace> traces;
  auto take = [&traces](Result<QueryResult> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    traces.push_back(std::move(r->trace));
  };
  take(db.Execute(Query::Select("Employees").Where(Eq("eid", Value::Int(7)))));
  take(db.Execute(Query::Select("Employees").Where(
      Between("salary", Value::Int(40000), Value::Int(90000)))));
  take(db.Execute(Query::Select("Employees")
                      .Where(Between("salary", Value::Int(0),
                                     Value::Int(100000)))
                      .Aggregate(AggregateOp::kSum, "salary")));
  JoinQuery jq;
  jq.left_table = "Employees";
  jq.left_column = "eid";
  jq.right_table = "Managers";
  jq.right_column = "eid";
  take(db.Execute(jq));
  return traces;
}

TEST(ObsReconcile, NetSeriesMatchChannelStatsPerProvider) {
  auto db = MakeTwoTableDb(/*fanout_threads=*/1);
  db->ResetAllStats();
  std::vector<QueryTrace> traces = RunMixedWorkload(*db);
  ASSERT_EQ(traces.size(), 4u);

  // Per-provider trace totals, for the three-way reconciliation
  // trace == ChannelStats == registry.
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> per_provider;
  uint64_t legs = 0;
  for (const QueryTrace& t : traces) {
    legs += t.total_provider_legs();
    for (const auto& entry : t.PerProviderBytes()) {
      per_provider[entry.first].first += entry.second.first;
      per_provider[entry.first].second += entry.second.second;
    }
  }

  MetricsRegistry& m = db->metrics();
  uint64_t calls = 0;
  for (uint32_t p = 0; p < 4; ++p) {
    const MetricLabels labels = {{"provider", std::to_string(p)}};
    const ChannelStats& ch = db->network().stats(p);
    EXPECT_EQ(m.CounterValue("ssdb_net_bytes_sent_total", labels),
              ch.bytes_sent)
        << "provider " << p;
    EXPECT_EQ(m.CounterValue("ssdb_net_bytes_received_total", labels),
              ch.bytes_received)
        << "provider " << p;
    EXPECT_EQ(m.CounterValue("ssdb_net_calls_total", labels), ch.calls);
    EXPECT_EQ(m.CounterValue("ssdb_net_failures_total", labels), ch.failures);
    EXPECT_EQ(ch.bytes_sent, per_provider[p].first) << "provider " << p;
    EXPECT_EQ(ch.bytes_received, per_provider[p].second) << "provider " << p;
    calls += ch.calls;
    // The per-link latency histogram saw exactly the link's calls.
    EXPECT_EQ(m.GetHistogram("ssdb_net_round_trip_us", labels)->count(),
              ch.calls);
  }
  EXPECT_EQ(calls, legs);
  EXPECT_EQ(m.CounterValue("ssdb_client_queries_total"), 4u);
}

TEST(ObsReconcile, QueryHistogramBucketsAreExact) {
  auto db = MakeTwoTableDb(/*fanout_threads=*/1);
  db->ResetAllStats();

  // Five range scans of different widths; the expected histogram is
  // computed from the traces with the same pure bucket function.
  uint64_t expected_buckets[MetricHistogram::kBuckets] = {};
  uint64_t expected_sum = 0;
  for (int i = 0; i < 5; ++i) {
    auto r = db->Execute(Query::Select("Employees").Where(
        Between("salary", Value::Int(10000 * i), Value::Int(150000))));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const uint64_t clock = r->trace.total_clock_us();
    ++expected_buckets[MetricHistogram::BucketIndex(clock)];
    expected_sum += clock;
  }

  MetricHistogram* h = db->metrics().GetHistogram("ssdb_query_clock_us",
                                                  {{"kind", "fetch"}});
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), expected_sum);
  for (size_t b = 0; b < MetricHistogram::kBuckets; ++b) {
    EXPECT_EQ(h->bucket(b), expected_buckets[b]) << "bucket " << b;
  }
  EXPECT_EQ(db->metrics().CounterValue("ssdb_query_total",
                                       {{"kind", "fetch"}}),
            5u);
}

TEST(ObsReconcile, ProviderSeriesMatchProviderStats) {
  auto db = MakeTwoTableDb(/*fanout_threads=*/1);
  db->ResetAllStats();
  RunMixedWorkload(*db);
  const MetricsRegistry& m = db->metrics();
  for (uint32_t p = 0; p < 4; ++p) {
    const MetricLabels labels = {{"provider", std::to_string(p)}};
    const ProviderStats& stats = db->provider(p).stats();
    EXPECT_EQ(m.CounterValue("ssdb_provider_requests_total", labels),
              stats.requests.load());
    EXPECT_EQ(m.CounterValue("ssdb_provider_rows_examined_total", labels),
              stats.rows_examined.load());
    EXPECT_EQ(m.CounterValue("ssdb_provider_rows_returned_total", labels),
              stats.rows_returned.load());
    EXPECT_EQ(m.CounterValue("ssdb_provider_index_lookups_total", labels),
              stats.index_lookups.load());
  }
}

// --- Span tree <-> QueryTrace agreement --------------------------------

TEST(ObsSpans, SpanTreeMatchesQueryTrace) {
  auto db = MakeTwoTableDb(/*fanout_threads=*/1);
  db->tracer().Enable(true);
  db->ResetAllStats();

  auto r = db->Execute(Query::Select("Employees").Where(
      Between("salary", Value::Int(40000), Value::Int(90000))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryTrace& trace = r->trace;

  const std::vector<SpanRecord> spans = db->tracer().Snapshot();
  ASSERT_FALSE(spans.empty());

  // Exactly one root query span, named for the query kind.
  const SpanRecord* query_span = nullptr;
  std::vector<const SpanRecord*> node_spans;
  std::vector<const SpanRecord*> leg_spans;
  for (const SpanRecord& s : spans) {
    if (s.category == "query") {
      ASSERT_EQ(query_span, nullptr) << "more than one query span";
      query_span = &s;
    } else if (s.category == "node") {
      node_spans.push_back(&s);
    } else if (s.category == "leg") {
      leg_spans.push_back(&s);
    }
  }
  ASSERT_NE(query_span, nullptr);
  EXPECT_EQ(query_span->name, "query:fetch");
  EXPECT_EQ(query_span->parent, 0u);

  // One node span per trace node, in pre-order, names matching.
  ASSERT_EQ(node_spans.size(), trace.nodes.size());
  std::map<uint64_t, size_t> span_to_node;
  for (size_t i = 0; i < trace.nodes.size(); ++i) {
    EXPECT_EQ(node_spans[i]->name, "node:" + trace.nodes[i].name);
    EXPECT_EQ(node_spans[i]->dur_us, trace.nodes[i].clock_us);
    span_to_node[node_spans[i]->id] = i;
  }

  // Parentage mirrors the plan tree: a node span's parent is the query
  // span for depth-0 nodes, else the nearest shallower preceding node.
  for (size_t i = 0; i < trace.nodes.size(); ++i) {
    if (trace.nodes[i].depth == 0) {
      EXPECT_EQ(node_spans[i]->parent, query_span->id) << "node " << i;
    } else {
      auto it = span_to_node.find(node_spans[i]->parent);
      ASSERT_NE(it, span_to_node.end()) << "node " << i;
      const size_t parent_index = it->second;
      EXPECT_LT(parent_index, i);
      EXPECT_EQ(trace.nodes[parent_index].depth, trace.nodes[i].depth - 1);
    }
  }

  // Every trace leg appears as exactly one leg span under its node.
  uint64_t trace_leg_count = 0;
  for (const PlanNodeTrace& node : trace.nodes) {
    trace_leg_count += node.legs.size();
  }
  EXPECT_EQ(leg_spans.size(), trace_leg_count);
  for (const SpanRecord* leg : leg_spans) {
    EXPECT_NE(span_to_node.find(leg->parent), span_to_node.end());
  }
}

// --- Export determinism -------------------------------------------------

struct TelemetrySnapshot {
  std::string prometheus;
  std::string json;
  std::string chrome_trace;
};

TelemetrySnapshot RunDeterministicSession(size_t fanout_threads) {
  auto db = MakeTwoTableDb(fanout_threads);
  db->tracer().Enable(true);
  db->ResetAllStats();
  RunMixedWorkload(*db);
  TelemetrySnapshot snap;
  snap.prometheus = db->metrics().ExportPrometheus();
  snap.json = db->metrics().ExportJson();
  snap.chrome_trace = db->tracer().ExportChromeTrace();
  return snap;
}

TEST(ObsDeterminism, ExportsBitIdenticalAcrossFanoutThreadCounts) {
  const TelemetrySnapshot one = RunDeterministicSession(1);
  const TelemetrySnapshot four = RunDeterministicSession(4);
  const TelemetrySnapshot eight = RunDeterministicSession(8);
  EXPECT_EQ(one.prometheus, four.prometheus);
  EXPECT_EQ(one.prometheus, eight.prometheus);
  EXPECT_EQ(one.json, four.json);
  EXPECT_EQ(one.json, eight.json);
  EXPECT_EQ(one.chrome_trace, four.chrome_trace);
  EXPECT_EQ(one.chrome_trace, eight.chrome_trace);
}

TEST(ObsDeterminism, ExportsBitIdenticalAcrossSameSeedRuns) {
  const TelemetrySnapshot first = RunDeterministicSession(4);
  const TelemetrySnapshot second = RunDeterministicSession(4);
  EXPECT_EQ(first.prometheus, second.prometheus);
  EXPECT_EQ(first.json, second.json);
  EXPECT_EQ(first.chrome_trace, second.chrome_trace);
}

// --- ResetAllStats ------------------------------------------------------

TEST(ObsReset, ResetAllStatsClearsEveryLayerAtomically) {
  auto db = MakeTwoTableDb(/*fanout_threads=*/1);
  db->tracer().Enable(true);
  RunMixedWorkload(*db);
  EXPECT_GT(db->network_stats().calls, 0u);
  EXPECT_GT(db->metrics().CounterTotal("ssdb_net_calls_total"), 0u);
  EXPECT_GT(db->tracer().span_count(), 0u);

  db->ResetAllStats();
  EXPECT_EQ(db->network_stats().calls, 0u);
  EXPECT_EQ(db->network_stats().total_bytes(), 0u);
  EXPECT_EQ(db->metrics().CounterTotal("ssdb_net_calls_total"), 0u);
  EXPECT_EQ(db->metrics().CounterValue("ssdb_client_queries_total"), 0u);
  EXPECT_EQ(db->tracer().span_count(), 0u);
  for (uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(db->provider(p).stats().requests.load(), 0u);
  }
  const ClientStats stats = db->client_stats();
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.traced_bytes_sent, 0u);

  // Reconciliation still holds for deltas from the reset point.
  RunMixedWorkload(*db);
  EXPECT_EQ(db->metrics().CounterTotal("ssdb_net_calls_total"),
            db->network_stats().calls);
}

}  // namespace
}  // namespace ssdb
