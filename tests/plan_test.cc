// Plan-layer tests: planner strategy selection, EXPLAIN <-> trace
// agreement, and exact reconciliation of per-query traces against the
// network's channel statistics and virtual clock — for any fan-out
// thread count.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/outsourced_db.h"
#include "workload/generators.h"

namespace ssdb {
namespace {

std::unique_ptr<OutsourcedDatabase> MakeEmployeeDb(size_t n, size_t k,
                                                   size_t rows,
                                                   size_t fanout_threads = 0,
                                                   bool lazy = false) {
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/n, /*k=*/k);
  options.fanout_threads = fanout_threads;
  options.client.lazy_updates = lazy;
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  EXPECT_TRUE(db->CreateTable(EmployeeGenerator::EmployeesSchema()).ok());
  EmployeeGenerator gen(77, Distribution::kUniform);
  EXPECT_TRUE(db->Insert("Employees", gen.Rows(rows)).ok());
  return db;
}

std::vector<std::string> ExecutedNodeNames(const QueryTrace& trace) {
  std::vector<std::string> names;
  for (const PlanNodeTrace& n : trace.nodes) {
    if (n.executed) names.push_back(n.name);
  }
  return names;
}

bool Contains(const std::vector<std::string>& names, const std::string& want) {
  for (const std::string& n : names) {
    if (n == want) return true;
  }
  return false;
}

TEST(PlanNodes, ScanKindSelection) {
  auto db = MakeEmployeeDb(4, 2, 200);

  // Equality predicate -> deterministic-share filter.
  auto eq = db->Execute(Query::Select("Employees")
                            .Where(Eq("dept", Value::Int(3))));
  ASSERT_TRUE(eq.ok()) << eq.status().ToString();
  auto names = ExecutedNodeNames(eq->trace);
  EXPECT_TRUE(Contains(names, "ExactMatchScan")) << eq->trace.ToString();
  EXPECT_FALSE(Contains(names, "RangeScan"));
  EXPECT_TRUE(Contains(names, "Reconstruct"));

  // Range predicate -> order-preserving-share filter.
  auto range = db->Execute(
      Query::Select("Employees")
          .Where(Between("salary", Value::Int(40000), Value::Int(90000))));
  ASSERT_TRUE(range.ok());
  names = ExecutedNodeNames(range->trace);
  EXPECT_TRUE(Contains(names, "RangeScan")) << range->trace.ToString();
  EXPECT_FALSE(Contains(names, "ExactMatchScan"));

  // No predicate -> full scan.
  auto all = db->Execute(Query::Select("Employees"));
  ASSERT_TRUE(all.ok());
  names = ExecutedNodeNames(all->trace);
  EXPECT_TRUE(Contains(names, "FetchAllScan")) << all->trace.ToString();

  // Aggregates get an Aggregate node above the scan.
  auto sum = db->Execute(Query::Select("Employees")
                             .Aggregate(AggregateOp::kSum, "salary")
                             .Where(Eq("dept", Value::Int(3))));
  ASSERT_TRUE(sum.ok());
  names = ExecutedNodeNames(sum->trace);
  EXPECT_TRUE(Contains(names, "Aggregate")) << sum->trace.ToString();
  EXPECT_TRUE(Contains(names, "ExactMatchScan"));

  // Disjunctions run one pipeline per disjunct under a union root.
  auto disj = db->Execute(Query::Select("Employees")
                              .WhereAny({Eq("dept", Value::Int(1)),
                                         Eq("dept", Value::Int(2))}));
  ASSERT_TRUE(disj.ok());
  ASSERT_FALSE(disj->trace.nodes.empty());
  EXPECT_EQ(disj->trace.nodes[0].name, "DisjunctUnion");
  names = ExecutedNodeNames(disj->trace);
  int exact_scans = 0;
  for (const std::string& n : names) exact_scans += (n == "ExactMatchScan");
  EXPECT_EQ(exact_scans, 2) << disj->trace.ToString();
}

TEST(PlanNodes, ReversedRangesShortCircuitWithoutProviderContact) {
  // Regression: BETWEEN with lo > hi must return an empty result with a
  // well-formed zero-leg trace. Reversed string ranges used to surface
  // the lexicographic codec's InvalidArgument as a query error; reversed
  // ranges must match nothing instead, without contacting any provider.
  auto db = MakeEmployeeDb(3, 2, 50);
  const uint64_t calls_before = db->network_stats().calls;
  uint64_t requests_before = 0;
  for (size_t i = 0; i < db->n(); ++i) {
    requests_before += db->provider(i).stats().requests.load();
  }
  const uint64_t clock_before = db->simulated_time_us();

  auto num = db->Execute(
      Query::Select("Employees")
          .Where(Between("salary", Value::Int(90000), Value::Int(40000))));
  ASSERT_TRUE(num.ok()) << num.status().ToString();
  EXPECT_TRUE(num->rows.empty());
  EXPECT_EQ(num->trace.total_provider_legs(), 0u);
  EXPECT_FALSE(num->trace.nodes.empty());

  auto lex = db->Execute(
      Query::Select("Employees")
          .Where(Between("name", Value::Str("ZZ"), Value::Str("AA"))));
  ASSERT_TRUE(lex.ok()) << lex.status().ToString();
  EXPECT_TRUE(lex->rows.empty());
  EXPECT_EQ(lex->trace.total_provider_legs(), 0u);

  // No wire traffic, no provider requests, no virtual time.
  EXPECT_EQ(db->network_stats().calls, calls_before);
  uint64_t requests_after = 0;
  for (size_t i = 0; i < db->n(); ++i) {
    requests_after += db->provider(i).stats().requests.load();
  }
  EXPECT_EQ(requests_after, requests_before);
  EXPECT_EQ(db->simulated_time_us(), clock_before);
}

TEST(PlanNodes, LazyOverlayAppears) {
  auto db = MakeEmployeeDb(4, 2, 50, /*fanout_threads=*/0, /*lazy=*/true);
  // Buffer a write client-side; a row query must merge the pending log
  // through a LazyOverlay node.
  ASSERT_TRUE(db->Insert("Employees", {{Value::Str("ZZTOP"),
                                        Value::Int(123456), Value::Int(3)}})
                  .ok());
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Eq("dept", Value::Int(3))));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(Contains(ExecutedNodeNames(r->trace), "LazyOverlay"))
      << r->trace.ToString();
}

TEST(PlanNodes, ExplainNamesTheNodesTheExecutorRan) {
  auto db = MakeEmployeeDb(4, 2, 200);
  const std::vector<Query> queries = {
      Query::Select("Employees").Where(Eq("dept", Value::Int(3))),
      Query::Select("Employees")
          .Where(Between("salary", Value::Int(40000), Value::Int(90000))),
      Query::Select("Employees"),
      Query::Select("Employees")
          .Aggregate(AggregateOp::kSum, "salary")
          .Where(Eq("dept", Value::Int(3))),
      Query::Select("Employees")
          .Aggregate(AggregateOp::kAvg, "salary")
          .GroupBy("dept"),
      Query::Select("Employees").WhereAny(
          {Eq("dept", Value::Int(1)), Eq("dept", Value::Int(2))}),
      Query::Select("Employees").Aggregate(AggregateOp::kMedian, "salary"),
  };
  for (const Query& q : queries) {
    auto explain = db->Explain(q);
    ASSERT_TRUE(explain.ok()) << explain.status().ToString();
    auto r = db->Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r->trace.nodes.empty());
    // Every node the executor recorded — executed or short-circuited —
    // appears verbatim (full label) in the EXPLAIN rendering: both are
    // generated from the same QueryPlan, so they cannot drift.
    for (const PlanNodeTrace& node : r->trace.nodes) {
      EXPECT_NE(explain->find(node.label), std::string::npos)
          << "label '" << node.label << "' missing from:\n"
          << *explain;
    }
  }
}

// --- Trace <-> channel-stat reconciliation ------------------------------
//
// The acceptance bar for traces: per-provider bytes and the virtual-clock
// total must equal the Network's own accounting exactly, for every query
// shape, at any fanout_threads setting.

struct QueryCost {
  uint64_t sent = 0;
  uint64_t received = 0;
  uint64_t clock_us = 0;
  uint64_t legs = 0;
};

class PlanTraceReconciliation : public ::testing::TestWithParam<size_t> {};

TEST_P(PlanTraceReconciliation, TraceMatchesChannelStatsExactly) {
  const size_t threads = GetParam();
  auto db = MakeEmployeeDb(4, 2, 300, threads);

  const std::vector<Query> queries = {
      Query::Select("Employees").Where(Eq("dept", Value::Int(3))),
      Query::Select("Employees")
          .Where(Between("salary", Value::Int(40000), Value::Int(90000))),
      Query::Select("Employees").Aggregate(AggregateOp::kCount),
      Query::Select("Employees")
          .Aggregate(AggregateOp::kSum, "salary")
          .Where(Eq("dept", Value::Int(3))),
      Query::Select("Employees")
          .Aggregate(AggregateOp::kAvg, "salary")
          .GroupBy("dept"),
      Query::Select("Employees").WhereAny(
          {Eq("dept", Value::Int(1)), Eq("dept", Value::Int(2))}),
  };

  for (const Query& q : queries) {
    std::vector<ChannelStats> before;
    for (size_t i = 0; i < db->n(); ++i) before.push_back(db->network().stats(i));
    const uint64_t clock_before = db->simulated_time_us();

    auto r = db->Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();

    const uint64_t clock_delta = db->simulated_time_us() - clock_before;
    EXPECT_EQ(r->trace.total_clock_us(), clock_delta);

    const auto per_provider = r->trace.PerProviderBytes();
    for (size_t i = 0; i < db->n(); ++i) {
      const ChannelStats& after = db->network().stats(i);
      const uint64_t sent = after.bytes_sent - before[i].bytes_sent;
      const uint64_t received = after.bytes_received - before[i].bytes_received;
      auto it = per_provider.find(static_cast<uint32_t>(i));
      const uint64_t traced_sent = it == per_provider.end() ? 0 : it->second.first;
      const uint64_t traced_received =
          it == per_provider.end() ? 0 : it->second.second;
      EXPECT_EQ(traced_sent, sent) << "provider " << i << "\n"
                                   << r->trace.ToString();
      EXPECT_EQ(traced_received, received) << "provider " << i << "\n"
                                           << r->trace.ToString();
    }
  }
}

TEST_P(PlanTraceReconciliation, JoinTraceMatchesChannelStatsExactly) {
  const size_t threads = GetParam();
  OutsourcedDbOptions options;
  options.topology = Topology(/*m=*/1, /*n_per=*/4, /*k=*/2);
  options.fanout_threads = threads;
  auto db = std::move(OutsourcedDatabase::Create(options)).value();
  TableSchema employees;
  employees.table_name = "Employees";
  employees.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid_domain"),
      StringColumn("name", 8),
  };
  TableSchema managers;
  managers.table_name = "Managers";
  managers.columns = {
      IntColumn("eid", 0, 100000, kCapExactMatch | kCapRange, "eid_domain"),
      IntColumn("boss", 0, 100000, kCapExactMatch | kCapRange, "eid_domain"),
  };
  ASSERT_TRUE(db->CreateTable(employees).ok());
  ASSERT_TRUE(db->CreateTable(managers).ok());
  ASSERT_TRUE(db->Insert("Employees", {{Value::Int(1), Value::Str("JOHN")},
                                       {Value::Int(2), Value::Str("ALICE")},
                                       {Value::Int(3), Value::Str("BOB")}})
                  .ok());
  ASSERT_TRUE(
      db->Insert("Managers", {{Value::Int(1), Value::Int(3)},
                              {Value::Int(3), Value::Int(3)}})
          .ok());

  JoinQuery jq;
  jq.left_table = "Employees";
  jq.left_column = "eid";
  jq.right_table = "Managers";
  jq.right_column = "eid";

  std::vector<ChannelStats> before;
  for (size_t i = 0; i < db->n(); ++i) before.push_back(db->network().stats(i));
  const uint64_t clock_before = db->simulated_time_us();

  auto r = db->Execute(jq);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
  EXPECT_TRUE(Contains(ExecutedNodeNames(r->trace), "EquiJoin"))
      << r->trace.ToString();

  EXPECT_EQ(r->trace.total_clock_us(),
            db->simulated_time_us() - clock_before);
  const auto per_provider = r->trace.PerProviderBytes();
  for (size_t i = 0; i < db->n(); ++i) {
    const ChannelStats& after = db->network().stats(i);
    auto it = per_provider.find(static_cast<uint32_t>(i));
    const uint64_t traced_sent = it == per_provider.end() ? 0 : it->second.first;
    const uint64_t traced_received =
        it == per_provider.end() ? 0 : it->second.second;
    EXPECT_EQ(traced_sent, after.bytes_sent - before[i].bytes_sent);
    EXPECT_EQ(traced_received,
              after.bytes_received - before[i].bytes_received);
  }
}

INSTANTIATE_TEST_SUITE_P(FanoutThreads, PlanTraceReconciliation,
                         ::testing::Values(1, 4, 8));

TEST(PlanTrace, DeterministicAcrossFanoutThreadCounts) {
  // The whole cost model is thread-count-invariant; the traces must be
  // too. Run the same query sequence on fresh deployments at 1, 4 and 8
  // fan-out workers and demand identical per-query cost vectors.
  std::vector<std::vector<QueryCost>> runs;
  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    auto db = MakeEmployeeDb(4, 2, 300, threads);
    std::vector<QueryCost> costs;
    const std::vector<Query> queries = {
        Query::Select("Employees").Where(Eq("dept", Value::Int(3))),
        Query::Select("Employees")
            .Where(Between("salary", Value::Int(40000), Value::Int(90000))),
        Query::Select("Employees")
            .Aggregate(AggregateOp::kSum, "salary")
            .GroupBy("dept"),
        Query::Select("Employees").Aggregate(AggregateOp::kMedian, "salary"),
    };
    for (const Query& q : queries) {
      auto r = db->Execute(q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      costs.push_back({r->trace.total_bytes_sent(),
                       r->trace.total_bytes_received(),
                       r->trace.total_clock_us(),
                       r->trace.total_provider_legs()});
    }
    runs.push_back(std::move(costs));
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (size_t q = 0; q < runs[0].size(); ++q) {
      EXPECT_EQ(runs[run][q].sent, runs[0][q].sent) << "query " << q;
      EXPECT_EQ(runs[run][q].received, runs[0][q].received) << "query " << q;
      EXPECT_EQ(runs[run][q].clock_us, runs[0][q].clock_us) << "query " << q;
      EXPECT_EQ(runs[run][q].legs, runs[0][q].legs) << "query " << q;
    }
  }
}

TEST(PlanTrace, StatsAggregateTraceTotals) {
  auto db = MakeEmployeeDb(4, 2, 100);
  auto r = db->Execute(Query::Select("Employees")
                           .Where(Eq("dept", Value::Int(3))));
  ASSERT_TRUE(r.ok());
  const ClientStats stats = db->client_stats();
  EXPECT_EQ(stats.traced_bytes_sent, r->trace.total_bytes_sent());
  EXPECT_EQ(stats.traced_bytes_received, r->trace.total_bytes_received());
  EXPECT_EQ(stats.traced_clock_us, r->trace.total_clock_us());
  EXPECT_EQ(stats.provider_legs, r->trace.total_provider_legs());
  EXPECT_GT(stats.plan_nodes_executed, 0u);
}

}  // namespace
}  // namespace ssdb
